package mcbnet_test

import (
	"errors"
	"fmt"
	"testing"

	"mcbnet"
)

func ExampleSort() {
	inputs := [][]int64{
		{42, 7, 19},
		{3, 88},
		{55, 21, 64, 10},
		{30},
	}
	outputs, _, err := mcbnet.Sort(inputs, mcbnet.SortOptions{K: 2})
	if err != nil {
		panic(err)
	}
	for i, out := range outputs {
		fmt.Printf("P%d: %v\n", i+1, out)
	}
	// Output:
	// P1: [88 64 55]
	// P2: [42 30]
	// P3: [21 19 10 7]
	// P4: [3]
}

func ExampleSelect() {
	inputs := [][]int64{{9, 3}, {7}, {1, 5, 4}}
	median, _, err := mcbnet.Select(inputs, mcbnet.SelectOptions{K: 2, D: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println(median)
	// Output: 5
}

func ExampleMultiSelect() {
	inputs := [][]int64{{10, 40}, {20, 60}, {30, 50}}
	vals, _, err := mcbnet.MultiSelect(inputs, []int{1, 3, 6}, mcbnet.SelectOptions{K: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(vals)
	// Output: [60 40 10]
}

func TestFacadeSortAscending(t *testing.T) {
	inputs := [][]int64{{5, 1}, {3}, {4, 2}}
	outputs, rep, err := mcbnet.Sort(inputs, mcbnet.SortOptions{K: 2, Order: mcbnet.Ascending})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 2}, {3}, {4, 5}}
	for i := range want {
		for j := range want[i] {
			if outputs[i][j] != want[i][j] {
				t.Fatalf("outputs = %v, want %v", outputs, want)
			}
		}
	}
	if rep.Stats.Cycles == 0 {
		t.Error("no cycles recorded")
	}
}

func TestFacadeAlgorithmConstants(t *testing.T) {
	inputs := [][]int64{{4, 2}, {3, 1}}
	for _, algo := range []mcbnet.Algorithm{
		mcbnet.AlgoAuto, mcbnet.AlgoColumnsortGather, mcbnet.AlgoColumnsortVirtual,
		mcbnet.AlgoRankSort, mcbnet.AlgoMergeSort, mcbnet.AlgoColumnsortRecursive,
	} {
		outputs, _, err := mcbnet.Sort(inputs, mcbnet.SortOptions{K: 2, Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if outputs[0][0] != 4 || outputs[1][1] != 1 {
			t.Fatalf("%v: outputs = %v", algo, outputs)
		}
	}
}

func TestFacadeSelectBaseline(t *testing.T) {
	inputs := [][]int64{{10, 30}, {20}}
	got, rep, err := mcbnet.Select(inputs, mcbnet.SelectOptions{K: 1, D: 2, Algorithm: mcbnet.SelSortBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("got %d, want 20", got)
	}
	if rep.Algorithm != mcbnet.SelSortBaseline {
		t.Errorf("algorithm = %v", rep.Algorithm)
	}
}

func TestFacadeMedian(t *testing.T) {
	inputs := [][]int64{{1, 9}, {5, 3}, {7}}
	got, _, err := mcbnet.Median(inputs, mcbnet.SelectOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// n=5, descending rank 3 = 5.
	if got != 5 {
		t.Errorf("median = %d, want 5", got)
	}
}

// TestFacadeFailurePlane exercises the re-exported fault-injection and
// recovery surface: external users cannot import internal/mcb, so the
// aliases must be enough to script faults, match the taxonomy and retry.
func TestFacadeFailurePlane(t *testing.T) {
	inputs := [][]int64{{4, 1}, {3, 2}, {9, 5}}

	// A scripted crash surfaces as a typed *CrashError wrapping ErrAborted.
	plan := &mcbnet.FaultPlan{
		Seed:    1,
		Crashes: []mcbnet.FaultCrash{{Proc: 1, Cycle: 2}},
		Outages: []mcbnet.FaultOutage{{Ch: 0, From: 50, To: 60}},
	}
	_, _, err := mcbnet.Sort(inputs, mcbnet.SortOptions{K: 2, Faults: plan})
	var ce *mcbnet.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *mcbnet.CrashError", err)
	}
	if !errors.Is(err, mcbnet.ErrAborted) {
		t.Fatal("facade ErrAborted does not match the engine's")
	}

	// The retry layer with a verifier-visible policy recovers a clean run.
	outs, rep, err := mcbnet.SortWithRetry(inputs, mcbnet.SortOptions{
		K:     2,
		Retry: mcbnet.RetryPolicy{MaxAttempts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 1 {
		t.Fatalf("clean run used %d attempts, want 1", rep.Attempts)
	}
	if verr := mcbnet.VerifySort(inputs, outs, mcbnet.Descending); verr != nil {
		t.Fatal(verr)
	}

	// Graceful degradation through the facade.
	val, selRep, err := mcbnet.SelectWithRetry(inputs, mcbnet.SelectOptions{
		K:      1,
		D:      2,
		Faults: &mcbnet.FaultPlan{Crashes: []mcbnet.FaultCrash{{Proc: 2, Cycle: 1}}},
		Retry:  mcbnet.RetryPolicy{MaxAttempts: 3, DegradeOnCrash: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Survivors: 4 1 3 2 → rank 2 descending is 3.
	if val != 3 {
		t.Fatalf("degraded selection = %d, want 3", val)
	}
	if len(selRep.DeadProcs) != 1 || selRep.DeadProcs[0] != 2 {
		t.Fatalf("DeadProcs = %v, want [2]", selRep.DeadProcs)
	}
	if verr := mcbnet.VerifySelect([][]int64{{4, 1}, {3, 2}, nil}, 2, val); verr != nil {
		t.Fatal(verr)
	}
}
