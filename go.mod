module mcbnet

go 1.24
