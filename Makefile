# Development targets. `make verify` is the gate CI and pre-commit use;
# `make lint` mirrors the CI lint job (staticcheck and govulncheck are
# skipped with a note when not installed — CI always runs them).

GO ?= go

.PHONY: build test vet race verify bench lint bench-gate bench-baseline profile-engine trace-sample fuzz transport-chaos service-smoke load-bench service-baseline

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (CI runs it)"; \
	fi

# The CI benchmark regression gate, runnable locally: fresh sweep of both
# execution engines (goroutine + sharded) vs the committed artifact, each
# against its own baseline entries, ±20%. Refuses a baseline recorded on a
# different machine (go version / GOMAXPROCS / CPU count are part of the
# artifact); regenerate with `make bench-baseline` or, to merely smoke the
# sweep, add -allow-env-mismatch as CI's hosted runners do.
bench-gate:
	$(GO) run ./cmd/mcbbench -engine -compare BENCH_engine.json -threshold 0.20 \
		-out BENCH_engine.fresh.json

# Regenerate the committed benchmark artifact on this machine, carrying the
# previous entries over as the embedded before/after baseline.
bench-baseline:
	$(GO) run ./cmd/mcbbench -engine -baseline BENCH_engine.json -out BENCH_engine.json

# CPU-profile the sharded engine's hot loops: one dense + one sparse sweep at
# p=16384 under pprof, then the top of the profile. CI archives the .pprof so
# a regression's flame graph is one `go tool pprof` away.
profile-engine:
	$(GO) run ./cmd/mcbbench -engine -engines sharded -engine-sizes 16384 \
		-cpuprofile engine_cpu.pprof -out /dev/null
	$(GO) tool pprof -top -nodecount 15 engine_cpu.pprof

# Checkpoint-codec fuzz smoke (CI runs the same, shorter): coverage-guided
# decoding of mutated snapshots — anything malformed must surface as a typed
# ErrInvalid, never a panic or a silently accepted wrong state.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)

# Transport robustness gate, mirroring the CI transport-chaos job: the
# conformance suite over the in-process and TCP transports (plain and under
# flaky links), the socket chaos tests (kill-and-resume, permanent link
# loss with channel degradation, partition/reconnect, corruption recovery,
# sequencer failover to a standby candidate), all race-enabled, plus the
# OS-process mcbpeer smoke (clean-run report parity, SIGKILL + -resume
# rejoin, and SIGKILL-the-active-sequencer failover to a standby).
transport-chaos:
	$(GO) test -race -count=1 ./internal/transport/...
	MCBNET_MULTIPROC=1 $(GO) test -race -count=1 -run TestMultiProcSmoke ./internal/transport/tcp

# Service smoke, mirroring the CI service-smoke job: build mcbd + mcbload,
# start the daemon with a modest queue depth (so the overload phase's
# admission rejections are deterministic), run the smoke-mixed profile (all
# five ops, a fault-injected segment, an over-rate segment — every response
# oracle-verified), then SIGTERM and require a clean drain.
service-smoke:
	$(GO) build -o mcbd.bin ./cmd/mcbd
	$(GO) build -o mcbload.bin ./cmd/mcbload
	./mcbd.bin -addr 127.0.0.1:8326 -queue-depth 8 > mcbd.log 2>&1 & \
	MCBD_PID=$$!; \
	./mcbload.bin -addr http://127.0.0.1:8326 -profile smoke-mixed -v; RC=$$?; \
	kill -TERM $$MCBD_PID; wait $$MCBD_PID; DRAIN=$$?; \
	cat mcbd.log; rm -f mcbd.bin mcbload.bin; \
	[ $$RC -eq 0 ] && [ $$DRAIN -eq 0 ]

# The CI service benchmark gate, runnable locally: the service-bench profile
# (batch-win pair + sustained mixed load) against a fresh daemon, gated on
# the committed BENCH_service.json baseline and the >= 2x batching win.
# Like bench-gate, a baseline recorded on a different machine is refused —
# regenerate with `make service-baseline`.
load-bench:
	$(GO) build -o mcbd.bin ./cmd/mcbd
	$(GO) build -o mcbload.bin ./cmd/mcbload
	./mcbd.bin -addr 127.0.0.1:8326 > mcbd.log 2>&1 & \
	MCBD_PID=$$!; \
	./mcbload.bin -addr http://127.0.0.1:8326 -profile service-bench \
		-out BENCH_service.fresh.json -compare BENCH_service.json \
		-threshold 0.35 -min-batch-win 2.0 -v; RC=$$?; \
	kill -TERM $$MCBD_PID; wait $$MCBD_PID; \
	rm -f mcbd.bin mcbload.bin; exit $$RC

# Regenerate the committed service benchmark baseline on this machine.
service-baseline:
	$(GO) build -o mcbd.bin ./cmd/mcbd
	$(GO) build -o mcbload.bin ./cmd/mcbload
	./mcbd.bin -addr 127.0.0.1:8326 > mcbd.log 2>&1 & \
	MCBD_PID=$$!; \
	./mcbload.bin -addr http://127.0.0.1:8326 -profile service-bench \
		-out BENCH_service.json -min-batch-win 2.0; RC=$$?; \
	kill -TERM $$MCBD_PID; wait $$MCBD_PID; \
	rm -f mcbd.bin mcbload.bin; exit $$RC

# The acceptance-shape cycle trace (p=16, k=4 sort), Perfetto-loadable.
trace-sample:
	$(GO) run ./cmd/mcbtrace -n 64 -p 16 -k 4 -format perfetto -o trace_sample.perfetto.json
	@echo "wrote trace_sample.perfetto.json — open it in https://ui.perfetto.dev"
