# Development targets. `make verify` is the gate CI and pre-commit use.

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
