// Package mcbnet is a faithful implementation of the multi-channel
// broadcast (MCB) network model and the distributed sorting and selection
// algorithms of Marberg and Gafni, "Sorting and Selection in Multi-Channel
// Broadcast Networks" (UCLA CSD-850002 / ICPP 1985).
//
// An MCB(p, k) network has p processors sharing k broadcast channels; in
// each synchronous cycle a processor may write one channel, read one
// channel, and compute locally. The package simulates the model exactly
// (counting the paper's two cost measures, cycles and messages) and provides
// the paper's algorithms over it:
//
//   - Sort: Columnsort-based distributed sorting — Theta(n) messages and
//     Theta(max{n/k, n_max}) cycles — with gathered-column, virtual-column
//     (memory-efficient), single-channel (Rank-Sort, Merge-Sort) and
//     recursive variants.
//   - Select: selection by rank via median-of-medians filtering —
//     Theta(p log(kn/p)) messages and Theta((p/k) log(kn/p)) cycles.
//
// This file re-exports the library's public surface; the implementation
// lives under internal/ (see DESIGN.md for the system inventory).
package mcbnet

import (
	"mcbnet/internal/checkpoint"
	"mcbnet/internal/core"
	"mcbnet/internal/mcb"
	"mcbnet/internal/trace"
	"mcbnet/internal/transport"
	"mcbnet/internal/transport/tcp"
)

// Sort options and results.
type (
	// SortOptions configures a distributed sort; see core.SortOptions.
	SortOptions = core.SortOptions
	// Report carries the model costs and diagnostics of a sort.
	Report = core.Report
	// Order selects descending (the paper's canonical order) or ascending.
	Order = core.Order
	// Algorithm names a sorting algorithm.
	Algorithm = core.Algorithm
)

// Selection options and results.
type (
	// SelectOptions configures a distributed selection.
	SelectOptions = core.SelectOptions
	// SelectReport carries the model costs and filtering diagnostics.
	SelectReport = core.SelectReport
	// SelectAlgorithm names a selection strategy.
	SelectAlgorithm = core.SelectAlgorithm
)

// Sorting order constants.
const (
	Descending = core.Descending
	Ascending  = core.Ascending
)

// Sorting algorithm constants.
const (
	AlgoAuto                = core.AlgoAuto
	AlgoColumnsortGather    = core.AlgoColumnsortGather
	AlgoColumnsortVirtual   = core.AlgoColumnsortVirtual
	AlgoRankSort            = core.AlgoRankSort
	AlgoMergeSort           = core.AlgoMergeSort
	AlgoColumnsortRecursive = core.AlgoColumnsortRecursive
)

// Selection algorithm constants.
const (
	SelFiltering    = core.SelFiltering
	SelSortBaseline = core.SelSortBaseline
)

// EngineMode selects the execution engine that steps the p processors of a
// run (SortOptions.Engine / SelectOptions.Engine). Both engines produce
// byte-identical reports; they differ only in how cycles are scheduled onto
// OS threads.
type EngineMode = mcb.EngineMode

// Execution engine constants.
const (
	// EngineAuto (the zero value) picks per run: sharded coordination once
	// p reaches the p >> cores regime, the classic barrier below it.
	EngineAuto = mcb.EngineAuto
	// EngineGoroutine coordinates all p processor goroutines through one
	// sense-reversing barrier — the classic engine, best when p is within a
	// small factor of the core count.
	EngineGoroutine = mcb.EngineGoroutine
	// EngineSharded rendezvouses ~GOMAXPROCS shard workers instead of p
	// processors, batching idle stretches without waking their processors —
	// the p >> cores engine (see DESIGN.md "Engine internals").
	EngineSharded = mcb.EngineSharded
)

// Failure plane: deterministic fault injection, the typed error taxonomy,
// and the verify-and-retry recovery layer (see internal/mcb and DESIGN.md
// §4 "Failure semantics").
type (
	// FaultPlan describes deterministic, seeded fault injection for a run:
	// message drops, payload corruption (optionally checksum-guarded),
	// channel outages and processor crash-stops.
	FaultPlan = mcb.FaultPlan
	// FaultOutage marks a channel dead over a cycle range.
	FaultOutage = mcb.Outage
	// FaultCrash schedules a processor crash-stop at a cycle.
	FaultCrash = mcb.Crash
	// FaultStats counts the faults injected during a run.
	FaultStats = mcb.FaultStats
	// RetryPolicy configures SortWithRetry / SelectWithRetry.
	RetryPolicy = mcb.RetryPolicy

	// CollisionError: two processors wrote one channel in one cycle (the
	// model's "computation fails").
	CollisionError = mcb.CollisionError
	// AbortError: a processor program detected an invariant violation and
	// aborted (carries the processor id, and the virtual id under
	// simulation).
	AbortError = mcb.AbortError
	// CrashError: one or more processors crash-stopped (fault injection).
	CrashError = mcb.CrashError
	// StallError: the lock-step protocol wedged; carries per-processor
	// last-issued-op diagnostics.
	StallError = mcb.StallError
	// BudgetError: a cycle-count or message-size budget was exceeded.
	BudgetError = mcb.BudgetError
	// CorruptionError: a run "succeeded" but its output failed
	// verification.
	CorruptionError = mcb.CorruptionError

	// SortVerifier / SelectVerifier are pluggable output checks for the
	// retry layer.
	SortVerifier   = core.SortVerifier
	SelectVerifier = core.SelectVerifier
)

// ErrAborted is wrapped by every typed abort error; errors.Is works
// against it.
var ErrAborted = mcb.ErrAborted

// Checkpointed recovery: with SortOptions.Checkpoints /
// SelectOptions.Checkpoints set, SortWithRetry and SelectWithRetry run the
// algorithms as phase segments, snapshotting the verified distributed state
// into the store at every phase boundary. A typed failure then resumes from
// the last accepted checkpoint (replaying only the failed segment), and with
// Resume set a new process continues a previous run from an on-disk store —
// see DESIGN.md §4 and the cmd/mcbsort -checkpoint-dir / -resume flags.
type (
	// CheckpointStore persists phase-boundary snapshots; implementations
	// must return isolated, checksum-verified copies.
	CheckpointStore = checkpoint.Store
	// CheckpointSnapshot is one phase-boundary state capture.
	CheckpointSnapshot = checkpoint.Snapshot
)

// ErrCheckpointInvalid is wrapped by every snapshot-decoding failure
// (truncation, bit flips, version or shape mismatches); errors.Is works
// against it.
var ErrCheckpointInvalid = checkpoint.ErrInvalid

// NewMemCheckpointStore returns an in-memory checkpoint store: recovery
// survives retry attempts within one process but not a process restart.
func NewMemCheckpointStore() CheckpointStore { return checkpoint.NewMem() }

// NewDirCheckpointStore returns an on-disk checkpoint store rooted at dir
// (created if needed): snapshots survive a process kill and a later
// invocation with SortOptions.Resume / SelectOptions.Resume continues from
// the last accepted phase boundary.
func NewDirCheckpointStore(dir string) (CheckpointStore, error) {
	return checkpoint.NewDir(dir)
}

// Cycle tracing: the structured observability plane (see internal/trace and
// DESIGN.md "Observability"). Attach a recorder via SortOptions.Recorder /
// SelectOptions.Recorder, then export the captured run as JSONL or
// Perfetto-loadable Chrome trace-event JSON.
type (
	// TraceRecorder collects fixed-size per-cycle events (writes, reads,
	// silences, idles, collisions, faults, phase switches) in preallocated
	// per-processor ring buffers; recording never allocates.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded cycle event.
	TraceEvent = trace.Event
	// TracePhaseSummary is the per-phase rollup (cycle range, channel
	// utilization, silences, collisions, fault counts) of a captured trace.
	TracePhaseSummary = trace.PhaseSummary
)

// NewTraceRecorder returns a recorder for an MCB(procs, channels) network
// holding up to eventsPerProc events per processor (oldest events are
// overwritten beyond that). Export with its WriteJSONL / WritePerfetto /
// Summaries methods after the run.
func NewTraceRecorder(procs, channels, eventsPerProc int) *TraceRecorder {
	return trace.New(procs, channels, eventsPerProc)
}

// Sort sorts a set distributed as inputs[i] at processor i over an
// MCB(len(inputs), opts.K) network, preserving per-processor cardinalities:
// under the default Descending order, processor 0 receives the largest
// elements. See core.Sort.
func Sort(inputs [][]int64, opts SortOptions) ([][]int64, *Report, error) {
	return core.Sort(inputs, opts)
}

// Select returns the element of descending rank opts.D (1 = maximum) of the
// distributed set. See core.Select.
func Select(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	return core.Select(inputs, opts)
}

// MultiSelect finds several ranks in one network computation (the filtering
// selections run back to back in lock-step); results are in the order of ds.
// See core.MultiSelect.
func MultiSelect(inputs [][]int64, ds []int, opts SelectOptions) ([]int64, *SelectReport, error) {
	return core.MultiSelect(inputs, ds, opts)
}

// SortWithRetry sorts like Sort but re-executes faulted runs under
// opts.Retry: an attempt is accepted only when the engine reports no error
// and the output passes verification (sortedness, cardinality preservation,
// multiset-permutation of the input — or opts.Verifier). See
// core.SortWithRetry.
func SortWithRetry(inputs [][]int64, opts SortOptions) ([][]int64, *Report, error) {
	return core.SortWithRetry(inputs, opts)
}

// SelectWithRetry selects like Select but re-executes faulted runs and
// verifies the answer by recount; with opts.Retry.DegradeOnCrash it degrades
// gracefully after processor crash-stops (the dead processors' elements are
// given up). See core.SelectWithRetry.
func SelectWithRetry(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	return core.SelectWithRetry(inputs, opts)
}

// VerifySort is the default sort verifier (exported for standalone audits).
func VerifySort(inputs, outputs [][]int64, order Order) error {
	return core.VerifySort(inputs, outputs, order)
}

// VerifySelect is the default selection verifier: rank check by recount.
func VerifySelect(inputs [][]int64, d int, value int64) error {
	return core.VerifySelect(inputs, d, value)
}

// Median selects the paper's median — the element of descending rank
// ceil(n/2) — of the distributed set.
func Median(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	n := 0
	for _, in := range inputs {
		n += len(in)
	}
	opts.D = (n + 1) / 2
	return core.Select(inputs, opts)
}

// Batched entry points: several small jobs share one engine run, each on a
// disjoint (processor range, channel range) subnet of the network — the
// coalescing machinery behind the cmd/mcbd request batcher (see
// internal/core/batch.go and DESIGN.md §5 "Service layer").
type (
	// BatchJob is one job of a coalesced batch: an operation over its own
	// value set, with an optional per-job cycle budget.
	BatchJob = core.BatchJob
	// BatchResult is the per-job outcome; Batched reports whether a shared
	// run served it.
	BatchResult = core.BatchResult
	// BatchOptions fixes the network geometry and engine for a batch.
	BatchOptions = core.BatchOptions
	// BatchOp names the operation of a BatchJob.
	BatchOp = core.BatchOp
)

// Batch operation constants.
const (
	BatchSort        = core.BatchSort
	BatchTopK        = core.BatchTopK
	BatchMedian      = core.BatchMedian
	BatchRank        = core.BatchRank
	BatchMultiSelect = core.BatchMultiSelect
)

// RunBatch serves a set of jobs on one MCB(opts.P, opts.K) network,
// coalescing up to opts.K jobs per shared engine run (each job on a disjoint
// subnet). A typed failure of a shared run re-executes every job of that run
// individually, so one job's failure never poisons its siblings' answers.
// See core.RunBatch.
func RunBatch(jobs []BatchJob, opts BatchOptions) ([]BatchResult, error) {
	return core.RunBatch(jobs, opts)
}

// Transport layer: where the processor programs of a run execute (see
// internal/transport and DESIGN.md "Transport layer"). The default — a nil
// SortOptions.Transport / SelectOptions.Transport — is the in-process
// transport, byte-for-byte the classic fast path. The tcp transport splits
// one logical MCB network across OS processes: a sequencer process hosts
// the shared engine and each peer process runs a contiguous processor
// range against it over length-prefixed checksummed frames.
type (
	// Transport hosts the processor programs of engine runs; see
	// transport.Transport for the contract.
	Transport = transport.Transport
	// LocalTransport is the in-process transport (the default).
	LocalTransport = transport.Local
	// LinkError: a transport link failed (dial, read, write, frame
	// corruption, sequence gap). Retryable — errors.Is(err, ErrAborted).
	LinkError = transport.LinkError
	// FlakyOptions configures the deterministic fault-injecting connection
	// wrapper for transport chaos testing.
	FlakyOptions = transport.FlakyOptions

	// TCPClientOptions configures one peer process of a tcp transport
	// group; TCPSequencerOptions configures the sequencer process.
	TCPClientOptions    = tcp.ClientOptions
	TCPSequencerOptions = tcp.SequencerOptions
	// TCPPeerFile is the JSON group configuration of cmd/mcbpeer: the
	// sequencer address, the processor range of every peer, and declared
	// permanent channel cuts.
	TCPPeerFile = tcp.PeerFile
)

// NewTCPClient returns a Transport that runs this process's processor range
// [opts.Lo, opts.Hi) against the sequencer at opts.Addr.
func NewTCPClient(opts TCPClientOptions) (*tcp.Client, error) { return tcp.NewClient(opts) }

// NewTCPSequencer starts the engine-hosting process of a tcp transport
// group listening on opts.Addr; drive it with Serve.
func NewTCPSequencer(opts TCPSequencerOptions) (*tcp.Sequencer, error) { return tcp.NewSequencer(opts) }

// LoadTCPPeerFile reads and validates a peer-group configuration file.
func LoadTCPPeerFile(path string) (*TCPPeerFile, error) { return tcp.LoadPeerFile(path) }
