// Package mcbnet is a faithful implementation of the multi-channel
// broadcast (MCB) network model and the distributed sorting and selection
// algorithms of Marberg and Gafni, "Sorting and Selection in Multi-Channel
// Broadcast Networks" (UCLA CSD-850002 / ICPP 1985).
//
// An MCB(p, k) network has p processors sharing k broadcast channels; in
// each synchronous cycle a processor may write one channel, read one
// channel, and compute locally. The package simulates the model exactly
// (counting the paper's two cost measures, cycles and messages) and provides
// the paper's algorithms over it:
//
//   - Sort: Columnsort-based distributed sorting — Theta(n) messages and
//     Theta(max{n/k, n_max}) cycles — with gathered-column, virtual-column
//     (memory-efficient), single-channel (Rank-Sort, Merge-Sort) and
//     recursive variants.
//   - Select: selection by rank via median-of-medians filtering —
//     Theta(p log(kn/p)) messages and Theta((p/k) log(kn/p)) cycles.
//
// This file re-exports the library's public surface; the implementation
// lives under internal/ (see DESIGN.md for the system inventory).
package mcbnet

import "mcbnet/internal/core"

// Sort options and results.
type (
	// SortOptions configures a distributed sort; see core.SortOptions.
	SortOptions = core.SortOptions
	// Report carries the model costs and diagnostics of a sort.
	Report = core.Report
	// Order selects descending (the paper's canonical order) or ascending.
	Order = core.Order
	// Algorithm names a sorting algorithm.
	Algorithm = core.Algorithm
)

// Selection options and results.
type (
	// SelectOptions configures a distributed selection.
	SelectOptions = core.SelectOptions
	// SelectReport carries the model costs and filtering diagnostics.
	SelectReport = core.SelectReport
	// SelectAlgorithm names a selection strategy.
	SelectAlgorithm = core.SelectAlgorithm
)

// Sorting order constants.
const (
	Descending = core.Descending
	Ascending  = core.Ascending
)

// Sorting algorithm constants.
const (
	AlgoAuto                = core.AlgoAuto
	AlgoColumnsortGather    = core.AlgoColumnsortGather
	AlgoColumnsortVirtual   = core.AlgoColumnsortVirtual
	AlgoRankSort            = core.AlgoRankSort
	AlgoMergeSort           = core.AlgoMergeSort
	AlgoColumnsortRecursive = core.AlgoColumnsortRecursive
)

// Selection algorithm constants.
const (
	SelFiltering    = core.SelFiltering
	SelSortBaseline = core.SelSortBaseline
)

// Sort sorts a set distributed as inputs[i] at processor i over an
// MCB(len(inputs), opts.K) network, preserving per-processor cardinalities:
// under the default Descending order, processor 0 receives the largest
// elements. See core.Sort.
func Sort(inputs [][]int64, opts SortOptions) ([][]int64, *Report, error) {
	return core.Sort(inputs, opts)
}

// Select returns the element of descending rank opts.D (1 = maximum) of the
// distributed set. See core.Select.
func Select(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	return core.Select(inputs, opts)
}

// MultiSelect finds several ranks in one network computation (the filtering
// selections run back to back in lock-step); results are in the order of ds.
// See core.MultiSelect.
func MultiSelect(inputs [][]int64, ds []int, opts SelectOptions) ([]int64, *SelectReport, error) {
	return core.MultiSelect(inputs, ds, opts)
}

// Median selects the paper's median — the element of descending rank
// ceil(n/2) — of the distributed set.
func Median(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	n := 0
	for _, in := range inputs {
		n += len(in)
	}
	opts.D = (n + 1) / 2
	return core.Select(inputs, opts)
}
