// Command mcbpeer joins a multi-process MCB(p, k) group over TCP: each
// invocation is one peer process hosting a contiguous range of processors,
// and one of them (-seq) additionally hosts the sequencer that resolves the
// broadcast rounds. Every peer runs the same deterministic driver over the
// same seeded workload, so all of them finish with the full result and a
// report identical to the in-process engine's for the same (seed, config).
//
// Usage:
//
//	mcbpeer -peers group.json -name a [-seq | -standby-seq N]
//	        [-op sort|select] [-n 4096] [-seed 1] [-d rank]
//	        [-algo auto|gather|virtual|rank|merge|recursive] [-asc]
//	        [-retries 3] [-checkpoint-dir DIR] [-resume] [-degrade-outage]
//	        [-timeout 5m] [-gather-timeout 30s] [-json] [-v]
//
// The group file (see tcp.PeerFile) names the sequencer address — or, for
// failover, an ordered "sequencers" candidate list — the shape (p, k), each
// peer's processor range and optional declared channel cuts:
//
//	{
//	  "job": "sort-demo",
//	  "sequencers": ["127.0.0.1:7700", "127.0.0.1:7701"],
//	  "p": 8, "k": 3,
//	  "peers": [
//	    {"name": "a", "lo": 0, "hi": 2},
//	    {"name": "b", "lo": 2, "hi": 4},
//	    {"name": "c", "lo": 4, "hi": 6},
//	    {"name": "d", "lo": 6, "hi": 8}
//	  ]
//	}
//
// Sequencer failover: -standby-seq N hosts candidate N of the "sequencers"
// list (-seq is shorthand for candidate 0). Omitting -name makes the process
// a dedicated sequencer: it serves its candidate slot without driving any
// processors, and exits when the group's session ends. Epoch e of a group is
// served by candidate e mod C; if the active sequencer process dies, every
// peer's dial sweep advances to the next candidate and the run resumes from
// the peers' checkpoints — no sequencer-side state is needed.
//
// Kill-and-rejoin: run every peer with -checkpoint-dir (a per-peer
// directory) and -retries > 1. If a peer process dies mid-run, the
// survivors' attempts fail with a typed link error and retry with backoff;
// restarting the dead peer with the same -name plus -resume makes it rejoin
// the job from its last accepted phase-boundary snapshot, and the whole
// group completes. Declared "cut_channels" become permanent scripted
// outages; with -degrade-outage the group finishes on the k' < k surviving
// channels.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
	"mcbnet/internal/transport/tcp"
)

func main() {
	peersPath := flag.String("peers", "", "peer group file (required; see tcp.PeerFile)")
	name := flag.String("name", "", "this peer's name in the group file (omit to run a dedicated sequencer)")
	seqRole := flag.Bool("seq", false, "also host the group's sequencer (candidate 0 of its list)")
	standbySeq := flag.Int("standby-seq", -1, "host sequencer candidate N of the group file's list")
	gatherTimeout := flag.Duration("gather-timeout", 0, "sequencer: max wait for a full proposal round (0 = default)")
	op := flag.String("op", "sort", "operation: sort or select")
	n := flag.Int("n", 4096, "total number of elements")
	seed := flag.Uint64("seed", 1, "workload seed (identical on every peer)")
	d := flag.Int("d", 0, "rank to select for -op select, 1-based descending (0 = median)")
	algo := flag.String("algo", "auto", "sort algorithm: auto, gather, virtual, rank, merge, recursive")
	asc := flag.Bool("asc", false, "sort ascending instead of the paper's descending order")
	retries := flag.Int("retries", 1, "max retry attempts (failures from peer loss are retryable)")
	checkpointDir := flag.String("checkpoint-dir", "", "per-peer directory for phase-boundary snapshots")
	resume := flag.Bool("resume", false, "continue from a compatible snapshot in -checkpoint-dir")
	degradeOutage := flag.Bool("degrade-outage", false, "finish on k' < k channels after a declared cut")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-attempt stall timeout")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
	verbose := flag.Bool("v", false, "log connection and retry events to stderr")
	flag.Parse()

	seqIdx := *standbySeq
	if *seqRole {
		if seqIdx > 0 {
			fatal(fmt.Errorf("-seq hosts candidate 0; it conflicts with -standby-seq %d", seqIdx))
		}
		seqIdx = 0
	}
	if *peersPath == "" {
		fatal(fmt.Errorf("-peers is required"))
	}
	if *name == "" && seqIdx < 0 {
		fatal(fmt.Errorf("-name is required unless hosting a sequencer (-seq or -standby-seq)"))
	}
	pf, err := tcp.LoadPeerFile(*peersPath)
	if err != nil {
		fatal(err)
	}
	cands := pf.Candidates()
	if seqIdx >= len(cands) {
		fatal(fmt.Errorf("-standby-seq %d: the group file lists only %d sequencer candidate(s)", seqIdx, len(cands)))
	}
	algorithm, err := parseAlgo(*algo)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tag := *name
	if tag == "" {
		tag = fmt.Sprintf("seq%d", seqIdx)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mcbpeer[%s]: %s\n", tag, fmt.Sprintf(format, args...))
		}
	}

	if seqIdx >= 0 {
		seq, serr := tcp.NewSequencer(tcp.SequencerOptions{
			Addr: cands[seqIdx], Job: pf.Job, P: pf.P,
			Index: seqIdx, Candidates: len(cands),
			GatherTimeout: *gatherTimeout, Logf: logf,
		})
		if serr != nil {
			fatal(serr)
		}
		defer seq.Close()
		if *name == "" {
			// Dedicated sequencer: serve the candidate slot in the foreground
			// and exit with the session. No processors are hosted here, so a
			// SIGKILL of this process is exactly the failover drill — peers
			// sweep to the next candidate and resume from their checkpoints.
			logf("sequencer candidate %d listening on %s", seqIdx, seq.Addr())
			if err := seq.Serve(ctx); err != nil && ctx.Err() == nil {
				fatal(err)
			}
			return
		}
		go seq.Serve(ctx)
		logf("sequencer candidate %d listening on %s", seqIdx, seq.Addr())
	}

	spec := pf.Find(*name)
	if spec == nil {
		fatal(fmt.Errorf("peer %q is not in %s", *name, *peersPath))
	}

	cl, err := tcp.NewClient(tcp.ClientOptions{
		Addrs: cands, Job: pf.Job, Name: spec.Name,
		Lo: spec.Lo, Hi: spec.Hi,
		JitterSeed: *seed ^ uint64(spec.Lo+1),
		Logf:       logf,
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	// Every peer derives the identical full workload from the seed; only the
	// engine rounds and result exchanges touch the network.
	card := dist.NearlyEven(*n, pf.P)
	inputs := dist.Values(dist.NewRNG(*seed), card)

	var store checkpoint.Store
	if *checkpointDir != "" {
		ds, derr := checkpoint.NewDir(*checkpointDir)
		if derr != nil {
			fatal(derr)
		}
		store = ds
	}
	var faults *mcb.FaultPlan
	if cuts := pf.Outages(); len(cuts) > 0 {
		faults = &mcb.FaultPlan{Outages: cuts}
	}
	retry := mcb.RetryPolicy{
		MaxAttempts:     *retries,
		Backoff:         250 * time.Millisecond,
		JitterSeed:      *seed ^ uint64(spec.Hi),
		DegradeOnOutage: *degradeOutage,
	}

	start := time.Now()
	switch *op {
	case "sort":
		opts := core.SortOptions{
			K: pf.K, Algorithm: algorithm, StallTimeout: *timeout,
			Faults: faults, Retry: retry,
			Checkpoints: store, Resume: *resume,
			Transport: cl, Ctx: ctx,
		}
		if *asc {
			opts.Order = core.Ascending
		}
		outputs, rep, err := core.SortWithRetry(inputs, opts)
		if err != nil {
			fatal(err)
		}
		emitSort(pf, spec, *n, *seed, outputs, rep, time.Since(start), *jsonOut, *verbose)
	case "select":
		rank := *d
		if rank == 0 {
			rank = (*n + 1) / 2
		}
		opts := core.SelectOptions{
			K: pf.K, D: rank, StallTimeout: *timeout,
			Faults: faults, Retry: retry,
			Checkpoints: store, Resume: *resume,
			Transport: cl, Ctx: ctx,
		}
		val, rep, err := core.SelectWithRetry(inputs, opts)
		if err != nil {
			fatal(err)
		}
		emitSelect(pf, *n, *seed, rank, val, rep, time.Since(start), *jsonOut)
	default:
		fatal(fmt.Errorf("unknown -op %q: want sort or select", *op))
	}
}

func emitSort(pf *tcp.PeerFile, spec *tcp.PeerSpec, n int, seed uint64, outputs [][]int64, rep *core.Report, wall time.Duration, jsonOut, verbose bool) {
	if jsonOut {
		jr := mcb.NewReport(mcb.Config{P: pf.P, K: pf.K}, &rep.Stats)
		jr.Attempts = rep.Attempts
		jr.Resumes = rep.Resumes
		jr.CheckpointPhase = rep.CheckpointPhase
		jr.ReplayedCycles = rep.ReplayedCycles
		jr.DegradedK = rep.DegradedK
		jr.DeadChannels = rep.DeadChannels
		jr.Extra = map[string]any{
			"op":        "sort",
			"n":         n,
			"algorithm": rep.Algorithm.String(),
			"seed":      seed,
			"job":       pf.Job,
			"peer":      spec.Name,
			"wall_ms":   wall.Milliseconds(),
		}
		if rep.Columns > 0 {
			jr.Extra["columns"] = rep.Columns
			jr.Extra["column_len"] = rep.ColumnLen
		}
		if err := jr.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("peer %s: sorted n=%d on MCB(p=%d, k=%d) with %s\n", spec.Name, n, pf.P, pf.K, rep.Algorithm)
	fmt.Printf("cycles:   %d\nmessages: %d\n", rep.Stats.Cycles, rep.Stats.Messages)
	if rep.Attempts > 1 || rep.Resumes > 0 {
		fmt.Printf("recovery: %d attempt(s), %d resume(s) from checkpoint %q\n",
			rep.Attempts, rep.Resumes, rep.CheckpointPhase)
	}
	if rep.DegradedK > 0 {
		fmt.Printf("degraded: finished on k'=%d channels after losing %v\n", rep.DegradedK, rep.DeadChannels)
	}
	if verbose {
		fmt.Println("per-processor boundaries (first, last):")
		for i, out := range outputs {
			fmt.Printf("  P%-3d n_i=%-6d [%d .. %d]\n", i+1, len(out), out[0], out[len(out)-1])
		}
	}
}

func emitSelect(pf *tcp.PeerFile, n int, seed uint64, rank int, val int64, rep *core.SelectReport, wall time.Duration, jsonOut bool) {
	if jsonOut {
		jr := mcb.NewReport(mcb.Config{P: pf.P, K: pf.K}, &rep.Stats)
		jr.Attempts = rep.Attempts
		jr.Resumes = rep.Resumes
		jr.CheckpointPhase = rep.CheckpointPhase
		jr.ReplayedCycles = rep.ReplayedCycles
		jr.DegradedK = rep.DegradedK
		jr.DeadChannels = rep.DeadChannels
		jr.Extra = map[string]any{
			"op":      "select",
			"n":       n,
			"d":       rank,
			"value":   val,
			"seed":    seed,
			"job":     pf.Job,
			"wall_ms": wall.Milliseconds(),
		}
		if err := jr.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("selected rank %d of n=%d on MCB(p=%d, k=%d): %d\n", rank, n, pf.P, pf.K, val)
	fmt.Printf("cycles:   %d\nmessages: %d\n", rep.Stats.Cycles, rep.Stats.Messages)
	if rep.Attempts > 1 || rep.Resumes > 0 {
		fmt.Printf("recovery: %d attempt(s), %d resume(s) from checkpoint %q\n",
			rep.Attempts, rep.Resumes, rep.CheckpointPhase)
	}
	if rep.DegradedK > 0 {
		fmt.Printf("degraded: finished on k'=%d channels after losing %v\n", rep.DegradedK, rep.DeadChannels)
	}
}

func parseAlgo(s string) (core.Algorithm, error) {
	switch s {
	case "auto":
		return core.AlgoAuto, nil
	case "gather":
		return core.AlgoColumnsortGather, nil
	case "virtual":
		return core.AlgoColumnsortVirtual, nil
	case "rank":
		return core.AlgoRankSort, nil
	case "merge":
		return core.AlgoMergeSort, nil
	case "recursive":
		return core.AlgoColumnsortRecursive, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbpeer:", err)
	os.Exit(1)
}
