// Command mcbd is the long-lived MCB sort/select daemon: a warm pool of
// simulated MCB(p, k) networks serving sort, top-k, median, rank-d and
// multiselect over an HTTP JSON API, with request batching (small jobs
// arriving within a window coalesce into one shared engine run on disjoint
// subnets) and admission control (a bounded queue that answers 429/503 with
// Retry-After instead of queueing without bound).
//
// Usage:
//
//	mcbd [-addr :8326] [-instances 1] [-p 32] [-k 8]
//	     [-engine auto|goroutine|sharded] [-batch-window 2ms]
//	     [-max-batch 0] [-queue-depth 64] [-stall-timeout 0]
//
// Endpoints (all request/response bodies are JSON):
//
//	POST /v1/sort         {"values": [...], "order": "desc"|"asc"}
//	POST /v1/topk         {"values": [...], "k": 10}
//	POST /v1/median       {"values": [...]}
//	POST /v1/rank         {"values": [...], "d": 3}
//	POST /v1/multiselect  {"values": [...], "ds": [1, 5, 9]}
//	GET  /v1/healthz
//	GET  /v1/stats
//
// Every operation accepts optional "budget_cycles" (per-request cycle budget,
// exceeded -> 422), "no_batch" (dedicated engine run), and "fault_rate" /
// "fault_seed" / "retries" (deterministic fault injection served through the
// verify-and-retry recovery layer).
//
// On SIGTERM/SIGINT the daemon drains: admission stops (503), in-flight and
// queued requests complete, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcbnet/internal/mcb"
	"mcbnet/internal/service"
)

func main() {
	addr := flag.String("addr", ":8326", "listen address (host:port; :0 picks a free port)")
	instances := flag.Int("instances", 1, "pooled network instances (concurrent batches)")
	p := flag.Int("p", 32, "processors per pooled network")
	k := flag.Int("k", 8, "broadcast channels per pooled network")
	engine := flag.String("engine", "auto", "execution engine: auto, goroutine, sharded")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long the first job of a batch waits for siblings")
	maxBatch := flag.Int("max-batch", 0, "max jobs per coalesced run (0 = k)")
	queueDepth := flag.Int("queue-depth", 64, "bounded admission queue depth")
	stallTimeout := flag.Duration("stall-timeout", 0, "engine stall watchdog (0 = engine default)")
	flag.Parse()

	mode, err := parseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbd:", err)
		os.Exit(2)
	}
	srv, err := service.NewServer(service.Config{
		Instances:    *instances,
		P:            *p,
		K:            *k,
		Engine:       mode,
		BatchWindow:  *batchWindow,
		MaxBatch:     *maxBatch,
		QueueDepth:   *queueDepth,
		StallTimeout: *stallTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbd:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbd:", err)
		os.Exit(2)
	}
	cfg := srv.Pool().Config()
	fmt.Printf("mcbd: listening on %s (instances=%d p=%d k=%d batch-window=%v max-batch=%d queue-depth=%d)\n",
		ln.Addr(), cfg.Instances, cfg.P, cfg.K, cfg.BatchWindow, cfg.MaxBatch, cfg.QueueDepth)

	httpSrv := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Printf("mcbd: %v, draining\n", sig)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mcbd:", err)
		os.Exit(1)
	}

	// Graceful drain: stop admitting (the pool answers 503 while the HTTP
	// server finishes in-flight responses), then stop the listener.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mcbd: shutdown:", err)
		os.Exit(1)
	}
	st := srv.Pool().Stats()
	fmt.Printf("mcbd: drained (accepted=%d completed=%d failed=%d rejected=%d coalesced_runs=%d coalesced_jobs=%d)\n",
		st.Accepted, st.Completed, st.Failed, st.Rejected, st.CoalescedRuns, st.CoalescedJobs)
}

func parseEngine(name string) (mcb.EngineMode, error) {
	switch name {
	case "auto", "":
		return mcb.EngineAuto, nil
	case "goroutine":
		return mcb.EngineGoroutine, nil
	case "sharded":
		return mcb.EngineSharded, nil
	}
	return mcb.EngineAuto, fmt.Errorf("unknown engine %q (want auto, goroutine, or sharded)", name)
}
