// Command mcbbench regenerates the paper's evaluation artifacts: one table
// (or figure) per experiment E1..E13 as indexed in DESIGN.md.
//
// Usage:
//
//	mcbbench            # run everything (full sweeps)
//	mcbbench -quick     # smaller sweeps
//	mcbbench -exp E3    # one experiment
//	mcbbench -list      # list experiments and their claims
//	mcbbench -json      # emit results as JSON instead of text tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mcbnet/internal/experiments"
	"mcbnet/internal/stats"
)

// jsonTable and jsonExperiment are the -json output schema: the experiment
// id and claim plus each table's title, headers and formatted rows.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonExperiment struct {
	ID     string      `json:"id"`
	Claim  string      `json:"claim"`
	Tables []jsonTable `json:"tables"`
}

func main() {
	exp := flag.String("exp", "", "run a single experiment id (e.g. E3); empty = all")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	list := flag.Bool("list", false, "list experiments")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text tables")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	var collected []jsonExperiment
	run := func(e experiments.Experiment) {
		if *jsonOut {
			collected = append(collected, jsonExperiment{
				ID: e.ID, Claim: e.Claim, Tables: toJSONTables(e.Run(*quick)),
			})
			return
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Claim)
		start := time.Now()
		for _, tb := range e.Run(*quick) {
			fmt.Println(tb.String())
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp != "" {
		e, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mcbbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		run(e)
	} else {
		for _, e := range experiments.All() {
			run(e)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, "mcbbench:", err)
			os.Exit(1)
		}
	}
}

func toJSONTables(tbs []*stats.Table) []jsonTable {
	out := make([]jsonTable, len(tbs))
	for i, tb := range tbs {
		out[i] = jsonTable{Title: tb.Title, Headers: tb.Headers, Rows: tb.Rows}
	}
	return out
}
