// Command mcbbench regenerates the paper's evaluation artifacts: one table
// (or figure) per experiment E1..E13 as indexed in DESIGN.md.
//
// Usage:
//
//	mcbbench            # run everything (full sweeps)
//	mcbbench -quick     # smaller sweeps
//	mcbbench -exp E3    # one experiment
//	mcbbench -list      # list experiments and their claims
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mcbnet/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment id (e.g. E3); empty = all")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("### %s — %s\n\n", e.ID, e.Claim)
		start := time.Now()
		for _, tb := range e.Run(*quick) {
			fmt.Println(tb.String())
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp != "" {
		e, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mcbbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		run(e)
		return
	}
	for _, e := range experiments.All() {
		run(e)
	}
}
