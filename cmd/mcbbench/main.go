// Command mcbbench regenerates the paper's evaluation artifacts: one table
// (or figure) per experiment E1..E13 as indexed in DESIGN.md.
//
// Usage:
//
//	mcbbench            # run everything (full sweeps)
//	mcbbench -quick     # smaller sweeps
//	mcbbench -exp E3    # one experiment
//	mcbbench -list      # list experiments and their claims
//	mcbbench -json      # emit results as JSON instead of text tables
//
// Engine microbenchmark mode (perf trajectory, see BENCH_engine.json):
//
//	mcbbench -engine                                  # print the sweep as JSON
//	mcbbench -engine -out BENCH_engine.json           # write the artifact
//	mcbbench -engine -baseline BENCH_engine.json \
//	         -out BENCH_engine.json                   # keep previous numbers as baseline
//
// CI regression gate: compare a fresh sweep against the committed artifact
// and fail (exit 2) when throughput or allocations regressed beyond the
// threshold. The sweep covers both execution engines (goroutine and sharded;
// see mcb.EngineMode), each gated against its own baseline entries. A
// baseline generated in a different environment (go version, GOMAXPROCS,
// CPU count) is refused with the mismatched fields named; pass
// -allow-env-mismatch to skip the comparison (with the reason printed)
// instead of failing:
//
//	mcbbench -engine -compare BENCH_engine.json -threshold 0.20 \
//	         -out BENCH_engine.fresh.json
//	mcbbench -engine -compare BENCH_engine.json -allow-env-mismatch  # CI runners
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mcbnet/internal/experiments"
	"mcbnet/internal/mcb"
	"mcbnet/internal/stats"
)

// jsonTable and jsonExperiment are the -json output schema: the experiment
// id and claim plus each table's title, headers and formatted rows.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonExperiment struct {
	ID     string      `json:"id"`
	Claim  string      `json:"claim"`
	Tables []jsonTable `json:"tables"`
}

// engineBenchFile is the on-disk schema of BENCH_engine.json: the engine
// microbenchmark sweep of this build (Entries, covering both execution
// engines) plus, optionally, the numbers of the previous build (Baseline) so
// the perf trajectory stays reviewable. The embedded mcb.BenchEnv fields
// (go/gomaxprocs/num_cpu) record the provenance a later -compare is checked
// against.
type engineBenchFile struct {
	Schema string `json:"schema"`
	mcb.BenchEnv
	GeneratedAt string                 `json:"generated_at"`
	Entries     []mcb.EngineBenchEntry `json:"entries"`
	Baseline    []mcb.EngineBenchEntry `json:"baseline,omitempty"`
}

// errRegression marks a failed -compare gate (exit code 2, distinguishing a
// perf regression from an operational error).
var errRegression = fmt.Errorf("engine benchmark regression")

// loadEngineBench reads a previous BENCH_engine.json: its entries and its
// recorded provenance.
func loadEngineBench(path string) ([]mcb.EngineBenchEntry, mcb.BenchEnv, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, mcb.BenchEnv{}, fmt.Errorf("read baseline: %w", err)
	}
	var prev engineBenchFile
	if err := json.Unmarshal(b, &prev); err != nil {
		return nil, mcb.BenchEnv{}, fmt.Errorf("parse baseline: %w", err)
	}
	return prev.Entries, prev.BenchEnv, nil
}

// runEngineBench executes the engine microbenchmark sweep — both execution
// engines, each over its default grid — and writes the JSON artifact to
// outPath ("" = stdout). baselinePath, when set, names a previous artifact
// whose entries are carried over as the baseline. comparePath, when set,
// names the artifact the fresh sweep is regression-checked against with the
// given relative threshold; regressions are reported on stderr and returned
// as errRegression.
//
// A comparison is only meaningful between sweeps of the same environment:
// if the baseline's recorded go version, GOMAXPROCS or CPU count differ from
// the runner's, the gate refuses (naming the mismatched fields) — or, with
// allowEnvMismatch, explicitly skips the comparison with the same named
// reasons and passes.
func runEngineBench(outPath, baselinePath, comparePath string, threshold float64, cycles int64, allowEnvMismatch bool, engines []mcb.EngineMode, sizes []int) error {
	var baseline []mcb.EngineBenchEntry
	if baselinePath != "" {
		var err error
		if baseline, _, err = loadEngineBench(baselinePath); err != nil {
			return err
		}
	}
	if len(engines) == 0 {
		engines = []mcb.EngineMode{mcb.EngineGoroutine, mcb.EngineSharded}
	}
	var entries []mcb.EngineBenchEntry
	for _, engine := range engines {
		es, err := mcb.EngineBenchSweep(engine, sizes, cycles)
		if err != nil {
			return err
		}
		entries = append(entries, es...)
	}
	compareSkipped := false
	var regressions []string
	if comparePath != "" {
		gate, gateEnv, err := loadEngineBench(comparePath)
		if err != nil {
			return err
		}
		if mismatches := mcb.CurrentBenchEnv().Mismatch(gateEnv); len(mismatches) > 0 {
			for _, m := range mismatches {
				fmt.Fprintln(os.Stderr, "mcbbench: baseline environment mismatch:", m)
			}
			if !allowEnvMismatch {
				return fmt.Errorf("baseline %s was generated in a different environment (%d field(s) differ, listed above); "+
					"regenerate it on this runner or pass -allow-env-mismatch to skip the comparison",
					comparePath, len(mismatches))
			}
			fmt.Fprintf(os.Stderr, "mcbbench: SKIPPING regression gate against %s: environment mismatch allowed by -allow-env-mismatch\n", comparePath)
			compareSkipped = true
		} else {
			regressions = mcb.CompareEngineBench(entries, gate, threshold)
		}
	}
	out := engineBenchFile{
		Schema:      "mcbnet/engine-bench/v1",
		BenchEnv:    mcb.CurrentBenchEnv(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Entries:     entries,
		Baseline:    baseline,
	}
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		if _, err := os.Stdout.Write(b); err != nil {
			return err
		}
	} else if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	if comparePath != "" && !compareSkipped {
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "mcbbench: REGRESSION:", r)
			}
			return errRegression
		}
		fmt.Fprintf(os.Stderr, "mcbbench: regression gate passed (%d configurations within ±%.0f%% of %s)\n",
			len(entries), 100*threshold, comparePath)
	}
	return nil
}

func main() {
	exp := flag.String("exp", "", "run a single experiment id (e.g. E3); empty = all")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	list := flag.Bool("list", false, "list experiments")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text tables")
	engine := flag.Bool("engine", false, "run the engine microbenchmark sweep instead of the experiments")
	out := flag.String("out", "", "with -engine: write the JSON artifact to this file (default stdout)")
	baseline := flag.String("baseline", "", "with -engine: carry the entries of this previous artifact over as baseline")
	engineCycles := flag.Int64("engine-cycles", 0, "with -engine: cycles per configuration (0 = per-size default)")
	compare := flag.String("compare", "", "with -engine: regression-gate the sweep against this artifact (exit 2 on regression)")
	threshold := flag.Float64("threshold", 0.20, "with -engine -compare: relative regression threshold")
	allowEnvMismatch := flag.Bool("allow-env-mismatch", false,
		"with -engine -compare: on go/gomaxprocs/num_cpu provenance mismatch, warn and skip the comparison instead of failing")
	engineList := flag.String("engines", "", "with -engine: comma-separated engines to sweep (goroutine,sharded; empty = both)")
	engineSizes := flag.String("engine-sizes", "", "with -engine: comma-separated processor counts (empty = per-engine default grid)")
	cpuProfile := flag.String("cpuprofile", "", "with -engine: write a pprof CPU profile of the sweep to this file")
	flag.Parse()

	if *engine {
		engines, sizes, err := parseEngineSelection(*engineList, *engineSizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcbbench:", err)
			os.Exit(1)
		}
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcbbench:", err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mcbbench:", err)
				os.Exit(1)
			}
			defer func() {
				pprof.StopCPUProfile()
				f.Close()
			}()
		}
		if err := runEngineBench(*out, *baseline, *compare, *threshold, *engineCycles, *allowEnvMismatch, engines, sizes); err != nil {
			if *cpuProfile != "" {
				pprof.StopCPUProfile()
			}
			if err == errRegression {
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "mcbbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	var collected []jsonExperiment
	run := func(e experiments.Experiment) {
		if *jsonOut {
			collected = append(collected, jsonExperiment{
				ID: e.ID, Claim: e.Claim, Tables: toJSONTables(e.Run(*quick)),
			})
			return
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Claim)
		start := time.Now()
		for _, tb := range e.Run(*quick) {
			fmt.Println(tb.String())
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp != "" {
		e, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mcbbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		run(e)
	} else {
		for _, e := range experiments.All() {
			run(e)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, "mcbbench:", err)
			os.Exit(1)
		}
	}
}

// parseEngineSelection parses the -engines and -engine-sizes flag values.
func parseEngineSelection(engineList, engineSizes string) ([]mcb.EngineMode, []int, error) {
	var engines []mcb.EngineMode
	if engineList != "" {
		for _, s := range strings.Split(engineList, ",") {
			switch m := mcb.EngineMode(strings.TrimSpace(s)); m {
			case mcb.EngineGoroutine, mcb.EngineSharded:
				engines = append(engines, m)
			default:
				return nil, nil, fmt.Errorf("unknown engine %q in -engines (want %q or %q)", s, mcb.EngineGoroutine, mcb.EngineSharded)
			}
		}
	}
	var sizes []int
	if engineSizes != "" {
		for _, s := range strings.Split(engineSizes, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p < 1 {
				return nil, nil, fmt.Errorf("invalid processor count %q in -engine-sizes", s)
			}
			sizes = append(sizes, p)
		}
	}
	return engines, sizes, nil
}

func toJSONTables(tbs []*stats.Table) []jsonTable {
	out := make([]jsonTable, len(tbs))
	for i, tb := range tbs {
		out[i] = jsonTable{Title: tb.Title, Headers: tb.Headers, Rows: tb.Rows}
	}
	return out
}
