// Command mcbload is the load generator and benchmark gate for mcbd: it
// drives a declarative workload profile (request mix, arrival process,
// concurrency, phased ramp) against a live daemon, verifies EVERY successful
// response against a sequential oracle, and writes a BENCH_service.json
// artifact with requests/sec and latency percentiles per (phase, op, mode).
//
// Usage:
//
//	mcbload -addr http://127.0.0.1:8326 -profile smoke-mixed [-v]
//	mcbload -addr ... -profile service-bench -out BENCH_service.fresh.json \
//	        -compare BENCH_service.json -threshold 0.35 [-allow-env-mismatch] \
//	        -min-batch-win 2.0
//	mcbload -addr ... -profile-file custom.json -duration-scale 0.25
//	mcbload -list
//
// Exit codes: 0 = run verified (and gate passed); 1 = verification
// violations (an incorrect answer, unexpected errors, or a missing expected
// rejection); 2 = benchmark gate failure or usage error.
//
// The -compare gate refuses a baseline generated in a different environment
// (go version, GOMAXPROCS, CPU count) unless -allow-env-mismatch is passed,
// in which case only the verification assertions and -min-batch-win gate
// (both environment-independent) apply.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mcbnet/internal/service"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8326", "mcbd base URL")
	profileName := flag.String("profile", "smoke-mixed", "builtin profile name (see -list)")
	profileFile := flag.String("profile-file", "", "load the profile from this JSON file instead")
	list := flag.Bool("list", false, "list builtin profiles and exit")
	durationScale := flag.Float64("duration-scale", 1, "multiply every phase duration (CI smoke shrinks profiles)")
	waitReady := flag.Duration("wait-ready", 10*time.Second, "poll /v1/healthz this long before starting")
	out := flag.String("out", "", "write the BENCH_service.json artifact here")
	compare := flag.String("compare", "", "regression-gate the run against this baseline artifact (exit 2 on regression)")
	threshold := flag.Float64("threshold", 0.35, "with -compare: allowed requests/sec drift (fraction)")
	allowEnvMismatch := flag.Bool("allow-env-mismatch", false, "with -compare: tolerate a baseline from a different environment (skips the rps gate)")
	minBatchWin := flag.Float64("min-batch-win", 0, "fail (exit 2) unless batched/unbatched rps ratio reaches this")
	verbose := flag.Bool("v", false, "print per-phase progress")
	flag.Parse()

	if *list {
		for _, name := range service.BuiltinProfileNames() {
			p, _ := service.BuiltinProfile(name)
			fmt.Printf("%-14s %d phase(s), dist=%s\n", name, len(p.Phases), distName(p.Dist))
			if p.Notes != "" {
				fmt.Printf("               %s\n", p.Notes)
			}
		}
		return
	}

	profile, err := loadProfile(*profileName, *profileFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbload:", err)
		os.Exit(2)
	}
	if err := service.WaitReady(*addr, *waitReady); err != nil {
		fmt.Fprintln(os.Stderr, "mcbload:", err)
		os.Exit(2)
	}

	opts := service.LoadOptions{Addr: *addr, DurationScale: *durationScale}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	report, violations, err := service.RunProfile(profile, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbload:", err)
		os.Exit(2)
	}
	if report.BatchWin != nil {
		fmt.Printf("mcbload: batch win %.2fx (unbatched %.1f rps -> batched %.1f rps)\n",
			report.BatchWin.Ratio, report.BatchWin.UnbatchedRPS, report.BatchWin.BatchedRPS)
	}
	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "mcbload:", err)
			os.Exit(2)
		}
		fmt.Printf("mcbload: wrote %s (%d entries)\n", *out, len(report.Entries))
	}

	gateFailures := gate(report, *compare, *threshold, *allowEnvMismatch, *minBatchWin)

	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "mcbload: VIOLATION:", v)
	}
	for _, g := range gateFailures {
		fmt.Fprintln(os.Stderr, "mcbload: GATE:", g)
	}
	switch {
	case len(gateFailures) > 0:
		os.Exit(2)
	case len(violations) > 0:
		os.Exit(1)
	}
	fmt.Printf("mcbload: profile %s verified: every response matched the oracle\n", profile.Name)
}

// gate applies the -compare baseline and -min-batch-win assertions and
// returns one line per failure.
func gate(report *service.BenchReport, comparePath string, threshold float64, allowEnvMismatch bool, minBatchWin float64) []string {
	var failures []string
	if minBatchWin > 0 {
		switch {
		case report.BatchWin == nil:
			failures = append(failures, fmt.Sprintf("-min-batch-win %.2f set but the profile produced no batched/unbatched topk pair", minBatchWin))
		case report.BatchWin.Ratio < minBatchWin:
			failures = append(failures, fmt.Sprintf("batch win %.2fx below required %.2fx", report.BatchWin.Ratio, minBatchWin))
		}
	}
	if comparePath == "" {
		return failures
	}
	baseline, err := service.LoadBenchReport(comparePath)
	if err != nil {
		return append(failures, err.Error())
	}
	if mismatches := report.Env.Mismatch(baseline.Env); len(mismatches) > 0 {
		for _, m := range mismatches {
			fmt.Fprintln(os.Stderr, "mcbload: env mismatch:", m)
		}
		if !allowEnvMismatch {
			return append(failures, fmt.Sprintf("baseline %s was generated in a different environment (%d field(s) differ, listed above); "+
				"regenerate it on this runner or pass -allow-env-mismatch to skip the comparison", comparePath, len(mismatches)))
		}
		fmt.Fprintf(os.Stderr, "mcbload: SKIPPING rps gate against %s: environment mismatch allowed by -allow-env-mismatch\n", comparePath)
		return failures
	}
	return append(failures, service.CompareServiceBench(report, baseline, threshold)...)
}

func loadProfile(name, file string) (service.Profile, error) {
	if file == "" {
		return service.BuiltinProfile(name)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return service.Profile{}, err
	}
	var p service.Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return service.Profile{}, fmt.Errorf("%s: %w", file, err)
	}
	return p, p.Validate()
}

func distName(d string) string {
	if d == "" {
		return "uniform"
	}
	return d
}
