// Command mcbselect runs distributed selection by rank on a simulated
// MCB(p, k) network and reports the model costs.
//
// Usage:
//
//	mcbselect -n 65536 -p 16 -k 8 [-d 0] [-algo filter|sort]
//	          [-dist even|random|oneheavy|geometric] [-seed 1] [-v] [-json]
//	          [-fault-rate 0.01 -fault-seed 7 -retries 3 [-degrade]]
//
// -d is the descending rank (1 = maximum); 0 means the median. -v prints
// the per-phase candidate counts and purge fractions (Figure 2). -json
// replaces the text output with a machine-readable mcb.Report whose phases
// carry the per-filter-iteration costs and candidate counts.
//
// -fault-rate enables deterministic seeded fault injection (drops plus
// checksum-guarded corruptions) and -retries the verify-and-retry layer:
// every accepted answer is re-checked by rank recount. -degrade additionally
// continues after processor crash-stops with the dead processors' elements
// given up (rank -d is then taken over the survivors).
//
// -checkpoint-dir enables checkpointed recovery: the filtering selection
// runs as per-iteration segments with verified phase-boundary snapshots, and
// failures resume from the last accepted one; -resume continues a previous
// (killed or failed) run from the directory. -outage ch:from[:to] scripts a
// channel outage and -degrade-outage finishes on the k' < k surviving
// channels when the failure is attributable to scripted outages.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mcbnet/internal/adversary"
	"mcbnet/internal/checkpoint"
	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
)

func main() {
	n := flag.Int("n", 65536, "total number of elements")
	p := flag.Int("p", 16, "number of processors")
	k := flag.Int("k", 8, "number of broadcast channels")
	d := flag.Int("d", 0, "descending rank to select (1 = max); 0 = median")
	algoName := flag.String("algo", "filter", "algorithm: filter (Sec 8) or sort (naive baseline)")
	distName := flag.String("dist", "even", "distribution: even, random, oneheavy, geometric")
	heavy := flag.Float64("heavy", 0.5, "n_max/n fraction for -dist oneheavy")
	seed := flag.Uint64("seed", 1, "workload seed")
	verbose := flag.Bool("v", false, "print filtering phase details")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
	faultRate := flag.Float64("fault-rate", 0, "per-delivery drop and corruption probability (0 = no fault injection)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed (independent of the workload seed)")
	retries := flag.Int("retries", 1, "max verify-and-retry attempts (1 = single unverified run)")
	degrade := flag.Bool("degrade", false, "continue after processor crashes with the dead processors' elements given up")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for phase-boundary snapshots (enables checkpointed recovery)")
	resume := flag.Bool("resume", false, "continue from a compatible snapshot in -checkpoint-dir, if one exists")
	outageSpec := flag.String("outage", "", "scripted channel outage ch:from[:to] (to omitted = permanent)")
	degradeOutage := flag.Bool("degrade-outage", false, "drop outage-stricken channels and finish on the survivors (k' < k)")
	flag.Parse()

	rank := *d
	if rank == 0 {
		rank = (*n + 1) / 2
	}
	algo := core.SelFiltering
	switch *algoName {
	case "filter":
	case "sort":
		algo = core.SelSortBaseline
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	card, err := makeCard(*distName, *n, *p, *heavy, *seed)
	if err != nil {
		fatal(err)
	}
	inputs := dist.Values(dist.NewRNG(*seed), card)

	opts := core.SelectOptions{
		K: *k, D: rank, Algorithm: algo, StallTimeout: 5 * time.Minute,
	}
	faulted := *faultRate > 0 || *outageSpec != ""
	if faulted {
		plan := &mcb.FaultPlan{
			Seed:        *faultSeed,
			DropRate:    *faultRate,
			CorruptRate: *faultRate,
			Checksum:    *faultRate > 0,
		}
		if *outageSpec != "" {
			o, oerr := parseOutage(*outageSpec, *k)
			if oerr != nil {
				fatal(oerr)
			}
			plan.Outages = append(plan.Outages, o)
		}
		opts.Faults = plan
		opts.MaxCycles = 64*int64(*n) + 1<<20
	}
	if *checkpointDir != "" {
		store, serr := checkpoint.NewDir(*checkpointDir)
		if serr != nil {
			fatal(serr)
		}
		opts.Checkpoints = store
		opts.Resume = *resume
	}
	start := time.Now()
	var (
		val int64
		rep *core.SelectReport
	)
	if faulted || *retries > 1 || opts.Checkpoints != nil {
		opts.Retry = mcb.RetryPolicy{MaxAttempts: *retries, DegradeOnCrash: *degrade, DegradeOnOutage: *degradeOutage}
		val, rep, err = core.SelectWithRetry(inputs, opts)
	} else {
		val, rep, err = core.Select(inputs, opts)
	}
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if *jsonOut {
		jr := mcb.NewReport(mcb.Config{P: *p, K: *k}, &rep.Stats)
		jr.Attempts = rep.Attempts
		jr.Resumes = rep.Resumes
		jr.CheckpointPhase = rep.CheckpointPhase
		jr.ReplayedCycles = rep.ReplayedCycles
		jr.DegradedK = rep.DegradedK
		jr.DeadChannels = rep.DeadChannels
		jr.Extra = map[string]any{
			"op":              "select",
			"n":               *n,
			"d":               rank,
			"algorithm":       rep.Algorithm.String(),
			"dist":            *distName,
			"seed":            *seed,
			"value":           val,
			"filter_phases":   rep.FilterPhases,
			"candidates":      rep.Candidates,
			"purge_fractions": rep.PurgeFractions,
			"wall_ms":         wall.Milliseconds(),
		}
		if faulted {
			jr.Extra["fault_rate"] = *faultRate
			jr.Extra["fault_seed"] = *faultSeed
		}
		if len(rep.DeadProcs) > 0 {
			jr.Extra["dead_procs"] = rep.DeadProcs
		}
		if err := jr.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("selected rank %d of n=%d on MCB(p=%d, k=%d) with %s: value = %d\n",
		rank, *n, *p, *k, rep.Algorithm, val)
	fmt.Printf("cycles:   %d\n", rep.Stats.Cycles)
	fmt.Printf("messages: %d\n", rep.Stats.Messages)
	fmt.Printf("lower bounds: %.1f messages, %.1f cycles (Sec 4)\n",
		adversary.SelectionMessagesLB(card, rank),
		adversary.SelectionCyclesLB(card, rank, *k))
	fmt.Printf("filtering phases: %d; wall time %v\n", rep.FilterPhases, wall.Round(time.Millisecond))
	if rep.Attempts > 1 || rep.Stats.Faults.Total() > 0 {
		f := &rep.Stats.Faults
		fmt.Printf("faults (final attempt %d of %d): %d dropped, %d corrupted (%d detected), %d crash(es)\n",
			rep.Attempts, *retries, f.Drops, f.Corruptions+f.Detected, f.Detected, len(f.Crashes))
	}
	if len(rep.DeadProcs) > 0 {
		fmt.Printf("degraded: gave up on processors %v; rank taken over survivors\n", rep.DeadProcs)
	}
	if rep.Resumes > 0 || rep.ReplayedCycles > 0 || rep.CheckpointPhase != "" {
		fmt.Printf("recovery: %d resume(s) from checkpoint %q, %d cycles replayed (accepted path: %d)\n",
			rep.Resumes, rep.CheckpointPhase, rep.ReplayedCycles, rep.Stats.Cycles)
	}
	if rep.DegradedK > 0 {
		fmt.Printf("degraded: finished on k'=%d channels after losing %v\n", rep.DegradedK, rep.DeadChannels)
	}

	if *verbose && rep.FilterPhases > 0 {
		fmt.Println("\nfiltering phases (Figure 2):")
		for i, f := range rep.PurgeFractions {
			fmt.Printf("  phase %-3d candidates %-8d purged %.3f\n", i+1, rep.Candidates[i], f)
		}
	}
}

func makeCard(name string, n, p int, heavy float64, seed uint64) (dist.Cardinalities, error) {
	if n < p {
		return nil, fmt.Errorf("need n >= p")
	}
	switch name {
	case "even":
		return dist.NearlyEven(n, p), nil
	case "random":
		return dist.RandomComposition(dist.NewRNG(seed^0xabcd), n, p), nil
	case "oneheavy":
		return dist.OneHeavy(n, p, heavy), nil
	case "geometric":
		return dist.Geometric(n, p), nil
	}
	return nil, fmt.Errorf("unknown distribution %q", name)
}

// parseOutage parses "ch:from[:to]" into a scripted outage window; an
// omitted to means the channel never heals.
func parseOutage(s string, k int) (mcb.Outage, error) {
	var o mcb.Outage
	o.To = 1 << 50
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return o, fmt.Errorf("bad -outage %q: want ch:from[:to]", s)
	}
	vals := make([]int64, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil || v < 0 {
			return o, fmt.Errorf("bad -outage %q: %q is not a non-negative integer", s, part)
		}
		vals[i] = v
	}
	o.Ch, o.From = int(vals[0]), vals[1]
	if len(vals) == 3 {
		o.To = vals[2]
	}
	if o.Ch >= k {
		return o, fmt.Errorf("bad -outage %q: channel %d out of range [0, %d)", s, o.Ch, k)
	}
	if o.To <= o.From {
		return o, fmt.Errorf("bad -outage %q: empty window", s)
	}
	return o, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbselect:", err)
	os.Exit(1)
}
