// Command mcbsort runs a distributed sort on a simulated MCB(p, k) network
// and reports the model costs (cycles and broadcast messages).
//
// Usage:
//
//	mcbsort -n 65536 -p 16 -k 8 [-algo auto|gather|virtual|rank|merge|recursive]
//	        [-dist even|random|oneheavy|geometric] [-seed 1] [-asc] [-v] [-json]
//	        [-fault-rate 0.01 -fault-seed 7 -retries 3]
//
// The workload is generated deterministically from -seed; -v prints the
// per-phase cycle breakdown and the sorted boundaries of each processor.
// -json replaces the text output with a machine-readable mcb.Report
// (including the per-phase breakdown) on stdout.
//
// -fault-rate enables deterministic fault injection: every message delivery
// is dropped or corrupted with the given probability, seeded by -fault-seed
// (checksums detect corruptions, so they read as silence). -retries runs the
// verify-and-retry layer: each attempt's output is verified and faulted
// attempts are re-executed under a re-derived fault plan; the report then
// carries attempts and fault counts. Note a fixed per-message rate compounds
// over the ~n deliveries of a sort, so recovery demos want small n, e.g.
// mcbsort -n 64 -p 8 -k 4 -fault-rate 0.01 -retries 8.
//
// -checkpoint-dir enables checkpointed recovery: the sort runs as phase
// segments, snapshotting the verified distributed state into the directory
// at every phase boundary, and a typed failure resumes from the last
// accepted snapshot instead of restarting from cycle 0. With -resume, a new
// invocation first looks for a compatible snapshot in the directory and
// continues a previous (killed or failed) run from it. -outage ch:from[:to]
// scripts a channel outage (to omitted = permanent) and -degrade-outage lets
// the retry layer drop outage-stricken channels and finish on the k' < k
// survivors; the report then carries resumes, replayed cycles and the
// degraded channel set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mcbnet/internal/adversary"
	"mcbnet/internal/checkpoint"
	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
)

func main() {
	n := flag.Int("n", 65536, "total number of elements")
	p := flag.Int("p", 16, "number of processors")
	k := flag.Int("k", 8, "number of broadcast channels")
	algo := flag.String("algo", "auto", "algorithm: auto, gather, virtual, rank, merge, recursive")
	distName := flag.String("dist", "even", "distribution: even, random, oneheavy, geometric")
	heavy := flag.Float64("heavy", 0.5, "n_max/n fraction for -dist oneheavy")
	seed := flag.Uint64("seed", 1, "workload seed")
	asc := flag.Bool("asc", false, "sort ascending instead of the paper's descending order")
	verbose := flag.Bool("v", false, "print phase breakdown and processor boundaries")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
	faultRate := flag.Float64("fault-rate", 0, "per-delivery drop and corruption probability (0 = no fault injection)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed (independent of the workload seed)")
	retries := flag.Int("retries", 1, "max verify-and-retry attempts (1 = single unverified run)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for phase-boundary snapshots (enables checkpointed recovery)")
	resume := flag.Bool("resume", false, "continue from a compatible snapshot in -checkpoint-dir, if one exists")
	outageSpec := flag.String("outage", "", "scripted channel outage ch:from[:to] (to omitted = permanent)")
	degradeOutage := flag.Bool("degrade-outage", false, "drop outage-stricken channels and finish on the survivors (k' < k)")
	flag.Parse()

	algorithm, err := parseAlgo(*algo)
	if err != nil {
		fatal(err)
	}
	card, err := makeCard(*distName, *n, *p, *heavy, *seed)
	if err != nil {
		fatal(err)
	}
	r := dist.NewRNG(*seed)
	inputs := dist.Values(r, card)

	opts := core.SortOptions{K: *k, Algorithm: algorithm, StallTimeout: 5 * time.Minute}
	if *asc {
		opts.Order = core.Ascending
	}
	faulted := *faultRate > 0 || *outageSpec != ""
	if faulted {
		plan := &mcb.FaultPlan{
			Seed:        *faultSeed,
			DropRate:    *faultRate,
			CorruptRate: *faultRate,
			Checksum:    *faultRate > 0,
		}
		if *outageSpec != "" {
			o, oerr := parseOutage(*outageSpec, *k)
			if oerr != nil {
				fatal(oerr)
			}
			plan.Outages = append(plan.Outages, o)
		}
		opts.Faults = plan
		// Dropped messages can wedge or derail a lock-step protocol; a cycle
		// budget turns runaway runs into a typed BudgetError the retry layer
		// can act on.
		opts.MaxCycles = 64*int64(*n) + 1<<20
	}
	if *checkpointDir != "" {
		store, serr := checkpoint.NewDir(*checkpointDir)
		if serr != nil {
			fatal(serr)
		}
		opts.Checkpoints = store
		opts.Resume = *resume
	}
	start := time.Now()
	var (
		outputs [][]int64
		rep     *core.Report
	)
	if faulted || *retries > 1 || opts.Checkpoints != nil {
		opts.Retry = mcb.RetryPolicy{MaxAttempts: *retries, DegradeOnOutage: *degradeOutage}
		outputs, rep, err = core.SortWithRetry(inputs, opts)
	} else {
		outputs, rep, err = core.Sort(inputs, opts)
	}
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if *jsonOut {
		jr := mcb.NewReport(mcb.Config{P: *p, K: *k}, &rep.Stats)
		jr.Attempts = rep.Attempts
		jr.Resumes = rep.Resumes
		jr.CheckpointPhase = rep.CheckpointPhase
		jr.ReplayedCycles = rep.ReplayedCycles
		jr.DegradedK = rep.DegradedK
		jr.DeadChannels = rep.DeadChannels
		jr.Extra = map[string]any{
			"op":        "sort",
			"n":         *n,
			"algorithm": rep.Algorithm.String(),
			"dist":      *distName,
			"seed":      *seed,
			"wall_ms":   wall.Milliseconds(),
		}
		if faulted {
			jr.Extra["fault_rate"] = *faultRate
			jr.Extra["fault_seed"] = *faultSeed
		}
		if rep.Columns > 0 {
			jr.Extra["columns"] = rep.Columns
			jr.Extra["column_len"] = rep.ColumnLen
		}
		if err := jr.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("sorted n=%d on MCB(p=%d, k=%d) with %s\n", *n, *p, *k, rep.Algorithm)
	if rep.Columns > 0 {
		fmt.Printf("columns: %d of length %d\n", rep.Columns, rep.ColumnLen)
	}
	fmt.Printf("cycles:   %d   (n/k = %d, n_max = %d)\n", rep.Stats.Cycles, *n / *k, card.Max())
	fmt.Printf("messages: %d   (n = %d)\n", rep.Stats.Messages, *n)
	fmt.Printf("lower bounds: %.0f messages, %.0f cycles (Sec 4)\n",
		adversary.SortingMessagesLB(card), adversary.SortingCyclesLB(card, *k))
	fmt.Printf("max aux memory: %d words; wall time %v\n", rep.Stats.MaxAux, wall.Round(time.Millisecond))
	if rep.Attempts > 1 || rep.Stats.Faults.Total() > 0 {
		f := &rep.Stats.Faults
		fmt.Printf("faults (final attempt %d of %d): %d dropped, %d corrupted (%d detected), %d crash(es)\n",
			rep.Attempts, *retries, f.Drops, f.Corruptions+f.Detected, f.Detected, len(f.Crashes))
	}
	if rep.Resumes > 0 || rep.ReplayedCycles > 0 || rep.CheckpointPhase != "" {
		fmt.Printf("recovery: %d resume(s) from checkpoint %q, %d cycles replayed (accepted path: %d)\n",
			rep.Resumes, rep.CheckpointPhase, rep.ReplayedCycles, rep.Stats.Cycles)
	}
	if rep.DegradedK > 0 {
		fmt.Printf("degraded: finished on k'=%d channels after losing %v\n", rep.DegradedK, rep.DeadChannels)
	}

	if *verbose {
		fmt.Println("\nphase breakdown (cycles):")
		for _, pc := range rep.PhaseCycles {
			fmt.Printf("  %-28s %d\n", pc.Label, pc.Cycles)
		}
		fmt.Println("\nper-processor boundaries (first, last):")
		for i, out := range outputs {
			fmt.Printf("  P%-3d n_i=%-6d [%d .. %d]\n", i+1, len(out), out[0], out[len(out)-1])
		}
	}
}

func parseAlgo(s string) (core.Algorithm, error) {
	switch s {
	case "auto":
		return core.AlgoAuto, nil
	case "gather":
		return core.AlgoColumnsortGather, nil
	case "virtual":
		return core.AlgoColumnsortVirtual, nil
	case "rank":
		return core.AlgoRankSort, nil
	case "merge":
		return core.AlgoMergeSort, nil
	case "recursive":
		return core.AlgoColumnsortRecursive, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func makeCard(name string, n, p int, heavy float64, seed uint64) (dist.Cardinalities, error) {
	if n < p {
		return nil, fmt.Errorf("need n >= p (every processor holds at least one element)")
	}
	switch name {
	case "even":
		return dist.NearlyEven(n, p), nil
	case "random":
		return dist.RandomComposition(dist.NewRNG(seed^0xabcd), n, p), nil
	case "oneheavy":
		return dist.OneHeavy(n, p, heavy), nil
	case "geometric":
		return dist.Geometric(n, p), nil
	}
	return nil, fmt.Errorf("unknown distribution %q", name)
}

// parseOutage parses "ch:from[:to]" into a scripted outage window; an
// omitted to means the channel never heals.
func parseOutage(s string, k int) (mcb.Outage, error) {
	var o mcb.Outage
	o.To = 1 << 50
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return o, fmt.Errorf("bad -outage %q: want ch:from[:to]", s)
	}
	vals := make([]int64, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil || v < 0 {
			return o, fmt.Errorf("bad -outage %q: %q is not a non-negative integer", s, part)
		}
		vals[i] = v
	}
	o.Ch, o.From = int(vals[0]), vals[1]
	if len(vals) == 3 {
		o.To = vals[2]
	}
	if o.Ch >= k {
		return o, fmt.Errorf("bad -outage %q: channel %d out of range [0, %d)", s, o.Ch, k)
	}
	if o.To <= o.From {
		return o, fmt.Errorf("bad -outage %q: empty window", s)
	}
	return o, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbsort:", err)
	os.Exit(1)
}
