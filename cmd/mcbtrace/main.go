// Command mcbtrace runs a small distributed sort or selection with cycle
// tracing enabled and exports the captured run — a debugging and teaching
// view of the collision-free schedules, and the producer of the Perfetto
// traces CI archives.
//
// Usage:
//
//	mcbtrace -n 24 -p 4 -k 2 [-op sort|select] [-format text|jsonl|perfetto|summary]
//	         [-o FILE] [-cycles 40] [-readers] [-seed 1]
//	         [-fault-rate 0.001] [-fault-seed 7]
//	         [-checkpoint -retries 4 -outage ch:from[:to] [-degrade-outage]]
//
// -checkpoint runs the operation under checkpointed recovery (an in-memory
// store): failed segments resume from the last accepted phase-boundary
// snapshot, the trace then spans every attempt, and -format summary carries
// the recovery metadata (attempts, resumes, checkpoint phase, replayed
// cycles, degraded channel set). -outage scripts a channel outage to
// recover from; -degrade-outage lets the run finish on k' < k channels.
//
// Formats:
//
//	text      per-cycle channel grid: `Pi>v` when processor i broadcast
//	          value v, `.` for silence, `*` marking fault-plane events;
//	          phase boundaries are separator lines (default)
//	jsonl     one JSON object per recorded event (re-parseable)
//	perfetto  Chrome trace-event JSON — open in https://ui.perfetto.dev or
//	          chrome://tracing: one track per channel, one per processor,
//	          phase spans on their own track
//	summary   the run's mcb Report JSON with the per-phase trace timeline
//	          (utilization / silences / collisions / faults) merged in
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
	"mcbnet/internal/trace"
)

func main() {
	n := flag.Int("n", 24, "total elements")
	p := flag.Int("p", 4, "processors")
	k := flag.Int("k", 2, "channels")
	op := flag.String("op", "sort", "operation: sort or select")
	format := flag.String("format", "text", "output format: text, jsonl, perfetto or summary")
	outPath := flag.String("o", "", "write output to this file (default stdout)")
	limit := flag.Int("cycles", 60, "text format: print at most this many cycles (0 = all)")
	readers := flag.Bool("readers", false, "text format: also print the readers of each channel")
	seed := flag.Uint64("seed", 1, "workload seed")
	buf := flag.Int("buf", 1<<16, "recorder ring capacity, events per processor")
	faultRate := flag.Float64("fault-rate", 0, "inject seeded faults: per-delivery drop rate (plus corruption at half the rate, checksum-guarded)")
	faultSeed := flag.Uint64("fault-seed", 7, "seed for -fault-rate")
	checkpointed := flag.Bool("checkpoint", false, "run under checkpointed recovery (in-memory store); -format summary carries the resume metadata")
	retries := flag.Int("retries", 1, "max retry attempts for -checkpoint runs")
	outageSpec := flag.String("outage", "", "scripted channel outage ch:from[:to] (to omitted = permanent)")
	degradeOutage := flag.Bool("degrade-outage", false, "drop outage-stricken channels and finish on the survivors (k' < k)")
	flag.Parse()

	r := dist.NewRNG(*seed)
	inputs := dist.Values(r, dist.NearlyEven(*n, *p))

	var plan *mcb.FaultPlan
	if *faultRate > 0 || *outageSpec != "" {
		plan = &mcb.FaultPlan{
			Seed:        *faultSeed,
			DropRate:    *faultRate,
			CorruptRate: *faultRate / 2,
			Checksum:    *faultRate > 0,
		}
		if *outageSpec != "" {
			o, oerr := parseOutage(*outageSpec, *k)
			if oerr != nil {
				fatal(oerr)
			}
			plan.Outages = append(plan.Outages, o)
		}
	}

	rec := trace.New(*p, *k, *buf)
	retrying := *checkpointed || *retries > 1
	var stats mcb.Stats
	var rcv recoveryMeta
	switch *op {
	case "sort":
		sopts := core.SortOptions{K: *k, Recorder: rec, Faults: plan}
		var rep *core.Report
		var err error
		if retrying {
			if *checkpointed {
				sopts.Checkpoints = checkpoint.NewMem()
			}
			if plan != nil {
				sopts.MaxCycles = 64*int64(*n) + 1<<20
			}
			sopts.Retry = mcb.RetryPolicy{MaxAttempts: *retries, DegradeOnOutage: *degradeOutage}
			_, rep, err = core.SortWithRetry(inputs, sopts)
		} else {
			_, rep, err = core.Sort(inputs, sopts)
		}
		if err != nil {
			runFailed(err, rep == nil)
		}
		if rep != nil {
			stats = rep.Stats
			rcv = recoveryMeta{rep.Attempts, rep.Resumes, rep.CheckpointPhase, rep.ReplayedCycles, rep.DegradedK, rep.DeadChannels}
		}
	case "select":
		sopts := core.SelectOptions{K: *k, D: (*n + 1) / 2, Recorder: rec, Faults: plan}
		var rep *core.SelectReport
		var err error
		if retrying {
			if *checkpointed {
				sopts.Checkpoints = checkpoint.NewMem()
			}
			if plan != nil {
				sopts.MaxCycles = 64*int64(*n) + 1<<20
			}
			sopts.Retry = mcb.RetryPolicy{MaxAttempts: *retries, DegradeOnOutage: *degradeOutage}
			_, rep, err = core.SelectWithRetry(inputs, sopts)
		} else {
			_, rep, err = core.Select(inputs, sopts)
		}
		if err != nil {
			runFailed(err, rep == nil)
		}
		if rep != nil {
			stats = rep.Stats
			rcv = recoveryMeta{rep.Attempts, rep.Resumes, rep.CheckpointPhase, rep.ReplayedCycles, rep.DegradedK, rep.DeadChannels}
		}
	default:
		fatal(fmt.Errorf("unknown op %q", *op))
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	var err error
	switch *format {
	case "jsonl":
		err = rec.WriteJSONL(out)
	case "perfetto":
		err = rec.WritePerfetto(out)
	case "summary":
		rep := mcb.NewReport(mcb.Config{P: *p, K: *k}, &stats)
		rep.Attempts = rcv.attempts
		rep.Resumes = rcv.resumes
		rep.CheckpointPhase = rcv.checkpointPhase
		rep.ReplayedCycles = rcv.replayedCycles
		rep.DegradedK = rcv.degradedK
		rep.DeadChannels = rcv.deadChannels
		rep.Extra = map[string]any{"op": *op, "n": *n, "seed": *seed}
		mcb.AttachTraceSummary(rep, rec)
		err = rep.WriteJSON(out)
	case "text":
		err = writeText(out, rec, &stats, *op, *n, *p, *k, *limit, *readers)
	default:
		err = fmt.Errorf("unknown format %q (want text, jsonl, perfetto or summary)", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// recoveryMeta is the retry/checkpoint metadata the summary report carries.
type recoveryMeta struct {
	attempts        int
	resumes         int
	checkpointPhase string
	replayedCycles  int64
	degradedK       int
	deadChannels    []int
}

// parseOutage parses "ch:from[:to]" into a scripted outage window; an
// omitted to means the channel never heals.
func parseOutage(s string, k int) (mcb.Outage, error) {
	var o mcb.Outage
	o.To = 1 << 50
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return o, fmt.Errorf("bad -outage %q: want ch:from[:to]", s)
	}
	vals := make([]int64, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil || v < 0 {
			return o, fmt.Errorf("bad -outage %q: %q is not a non-negative integer", s, part)
		}
		vals[i] = v
	}
	o.Ch, o.From = int(vals[0]), vals[1]
	if len(vals) == 3 {
		o.To = vals[2]
	}
	if o.Ch >= k {
		return o, fmt.Errorf("bad -outage %q: channel %d out of range [0, %d)", s, o.Ch, k)
	}
	if o.To <= o.From {
		return o, fmt.Errorf("bad -outage %q: empty window", s)
	}
	return o, nil
}

// writeText renders the per-cycle channel grid from the recorded events.
func writeText(w io.Writer, rec *trace.Recorder, stats *mcb.Stats, op string, n, p, k, limit int, readers bool) error {
	events := rec.Events()
	phases := rec.Phases()
	phaseName := func(id int32) string {
		if id >= 0 && int(id) < len(phases) {
			return phases[id]
		}
		return ""
	}

	util := 0.0
	if stats.Cycles > 0 {
		util = float64(stats.Messages) / (float64(stats.Cycles) * float64(k))
	}
	fmt.Fprintf(w, "%s of n=%d on MCB(p=%d, k=%d): %d cycles, %d messages, %.1f%% channel utilization (%d events recorded",
		op, n, p, k, stats.Cycles, stats.Messages, util*100, rec.Total())
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(w, ", %d dropped — raise -buf", d)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintln(w)

	if len(stats.Phases) > 0 {
		fmt.Fprintln(w, "phases:")
		for _, ph := range stats.Phases {
			fmt.Fprintf(w, "  %-32s %6d cycles  %6d messages  %5.1f%% util\n",
				ph.Name, ph.Cycles, ph.Messages, ph.Utilization*100)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "%6s", "cycle")
	for c := 0; c < k; c++ {
		fmt.Fprintf(w, "  %-12s", fmt.Sprintf("ch%d", c))
	}
	fmt.Fprintln(w)

	shown := 0
	curPhase := ""
	// Walk the cycle-sorted events, rendering one row per cycle.
	for i := 0; i < len(events); {
		cyc := events[i].Cycle
		j := i
		for j < len(events) && events[j].Cycle == cyc {
			j++
		}
		if limit > 0 && shown >= limit {
			remaining := 0
			for s := i; s < len(events); {
				c := events[s].Cycle
				for s < len(events) && events[s].Cycle == c {
					s++
				}
				remaining++
			}
			fmt.Fprintf(w, "... (%d more cycles)\n", remaining)
			break
		}
		cells := make([]string, k)
		for c := range cells {
			cells[c] = "."
		}
		rd := make([][]string, k)
		phase := curPhase
		for _, e := range events[i:j] {
			if name := phaseName(e.Phase); e.Phase >= 0 {
				phase = name
			}
			switch e.Kind {
			case trace.KindWrite:
				cells[e.Ch] = fmt.Sprintf("P%d>%d", e.Proc+1, e.Arg)
			case trace.KindCollision:
				cells[e.Ch] = fmt.Sprintf("P%d/P%d!", e.Arg+1, e.Proc+1)
			case trace.KindFault:
				if e.Ch >= 0 && int(e.Ch) < k {
					cells[e.Ch] += "*"
				}
			case trace.KindRead, trace.KindSilence:
				if readers {
					rd[e.Ch] = append(rd[e.Ch], fmt.Sprintf("P%d", e.Proc+1))
				}
			}
		}
		if phase != curPhase {
			curPhase = phase
			fmt.Fprintf(w, "------ phase: %s ------\n", curPhase)
		}
		if readers {
			for c := range cells {
				if len(rd[c]) > 0 {
					cells[c] += "->" + strings.Join(rd[c], ",")
				}
			}
		}
		fmt.Fprintf(w, "%6d", cyc)
		for _, cell := range cells {
			fmt.Fprintf(w, "  %-12s", cell)
		}
		fmt.Fprintln(w)
		shown++
		i = j
	}
	return nil
}

// runFailed reports a failed run. With a partial report the trace still
// covers the completed cycles, so rendering proceeds; without one there is
// nothing to show.
func runFailed(err error, noReport bool) {
	fmt.Fprintln(os.Stderr, "mcbtrace: run failed:", err)
	if noReport {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mcbtrace: rendering the completed cycles")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbtrace:", err)
	os.Exit(1)
}
