// Command mcbtrace runs a small distributed sort or selection with full
// tracing enabled and prints the per-cycle channel activity — a debugging
// and teaching view of the collision-free schedules.
//
// Usage:
//
//	mcbtrace -n 24 -p 4 -k 2 [-op sort|select] [-cycles 40]
//
// Each line is one cycle; each column is one channel, showing `Pi>v` when
// processor i broadcast value v and `.` for silence. The reader set is shown
// when -readers is given. Phase boundaries (from the engine's phase
// accounting) are rendered as separator lines, and a per-phase cost summary
// precedes the cycle listing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
)

func main() {
	n := flag.Int("n", 24, "total elements")
	p := flag.Int("p", 4, "processors")
	k := flag.Int("k", 2, "channels")
	op := flag.String("op", "sort", "operation: sort or select")
	limit := flag.Int("cycles", 60, "print at most this many cycles (0 = all)")
	readers := flag.Bool("readers", false, "also print the readers of each channel")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	r := dist.NewRNG(*seed)
	inputs := dist.Values(r, dist.NearlyEven(*n, *p))

	var trace *mcb.Trace
	var stats mcb.Stats
	switch *op {
	case "sort":
		_, rep, err := core.Sort(inputs, core.SortOptions{K: *k, Trace: true})
		if err != nil {
			fatal(err)
		}
		trace, stats = rep.Trace, rep.Stats
	case "select":
		_, rep, err := core.Select(inputs, core.SelectOptions{K: *k, D: (*n + 1) / 2, Trace: true})
		if err != nil {
			fatal(err)
		}
		trace, stats = rep.Trace, rep.Stats
	default:
		fatal(fmt.Errorf("unknown op %q", *op))
	}

	if err := mcb.ValidateTrace(trace, *p, *k); err != nil {
		fatal(fmt.Errorf("trace failed model validation: %w", err))
	}
	util := mcb.TraceUtilization(trace, *k)
	fmt.Printf("%s of n=%d on MCB(p=%d, k=%d): %d cycles, %d messages, %.1f%% channel utilization (trace validated)\n\n",
		*op, *n, *p, *k, stats.Cycles, stats.Messages, util.Overall*100)

	if len(stats.Phases) > 0 {
		fmt.Println("phases:")
		for _, ph := range stats.Phases {
			fmt.Printf("  %-32s %6d cycles  %6d messages  %5.1f%% util\n",
				ph.Name, ph.Cycles, ph.Messages, ph.Utilization*100)
		}
		fmt.Println()
	}

	fmt.Printf("%6s", "cycle")
	for c := 0; c < *k; c++ {
		fmt.Printf("  %-12s", fmt.Sprintf("ch%d", c))
	}
	fmt.Println()
	shown := 0
	curPhase := ""
	for _, cyc := range trace.Cycles {
		if *limit > 0 && shown >= *limit {
			fmt.Printf("... (%d more cycles)\n", int64(len(trace.Cycles))-int64(shown))
			break
		}
		if cyc.Phase != curPhase {
			curPhase = cyc.Phase
			fmt.Printf("------ phase: %s ------\n", curPhase)
		}
		cells := make([]string, *k)
		for i := range cells {
			cells[i] = "."
		}
		for _, w := range cyc.Writes {
			cells[w.Ch] = fmt.Sprintf("P%d>%d", w.Proc+1, w.Msg.X)
		}
		if *readers {
			rd := make([][]string, *k)
			for _, e := range cyc.Reads {
				rd[e.Ch] = append(rd[e.Ch], fmt.Sprintf("P%d", e.Proc+1))
			}
			for c := range cells {
				if len(rd[c]) > 0 {
					cells[c] += "->" + strings.Join(rd[c], ",")
				}
			}
		}
		fmt.Printf("%6d", cyc.Cycle)
		for _, cell := range cells {
			fmt.Printf("  %-12s", cell)
		}
		fmt.Println()
		shown++
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbtrace:", err)
	os.Exit(1)
}
