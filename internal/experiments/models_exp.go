package experiments

import (
	"fmt"
	"math"
	"time"

	"mcbnet/internal/core"
	"mcbnet/internal/crew"
	"mcbnet/internal/dist"
	"mcbnet/internal/ipbam"
	"mcbnet/internal/mcb"
	"mcbnet/internal/shoutecho"
	"mcbnet/internal/stats"
)

func init() {
	register("E14",
		"Shout-Echo port (Sec 9 / [Marb85]): selection in O(log n) shout-echo rounds — 3 rounds per filtering phase, ~1/2 purged per phase",
		func(quick bool) []*stats.Table {
			ns := []int{1024, 4096, 16384, 65536}
			if quick {
				ns = []int{1024, 4096}
			}
			p := 16
			tb := stats.NewTable(fmt.Sprintf("E14 Shout-Echo selection, p=%d, d=n/2", p),
				"n", "log2(n)", "rounds", "rounds/log2(n)", "phases", "messages (p per round)")
			for _, n := range ns {
				r := dist.NewRNG(uint64(n))
				inputs := dist.Values(r, dist.Even(n, p))
				_, rep, err := shoutecho.Select(inputs, n/2, shoutecho.Config{StallTimeout: time.Minute})
				if err != nil {
					panic(err)
				}
				tb.AddRow(n, math.Log2(float64(n)), rep.Stats.Rounds,
					float64(rep.Stats.Rounds)/math.Log2(float64(n)),
					rep.FilterPhases, rep.Stats.Messages)
			}
			return []*stats.Table{tb}
		})

	register("E15",
		"CREW port (Sec 9): MCB Columnsort on a CREW PRAM through the channel-as-cell adapter — auxiliary shared memory is k <= p cells",
		func(quick bool) []*stats.Table {
			configs := []struct{ n, p, k int }{
				{512, 8, 4}, {2048, 16, 8}, {8192, 16, 8},
			}
			if quick {
				configs = configs[:2]
			}
			tb := stats.NewTable("E15 Columnsort on CREW shared memory",
				"n", "p", "k", "CREW steps", "steps/(n/k)", "shared cells touched", "cells <= p?")
			for _, c := range configs {
				r := dist.NewRNG(uint64(c.n))
				inputs := dist.Values(r, dist.Even(c.n, c.p))
				outputs := make([][]int64, c.p)
				res, err := crew.RunUniform(crew.Config{P: c.p, Cells: c.k, StallTimeout: time.Minute},
					func(pr *crew.Proc) {
						node := crew.NewMCBNode(pr, c.k)
						outputs[node.ID()] = core.SortNode(node, inputs[node.ID()], core.AlgoColumnsortGather)
					})
				if err != nil {
					panic(err)
				}
				tb.AddRow(c.n, c.p, c.k, res.Stats.Steps,
					float64(res.Stats.Steps)/(float64(c.n)/float64(c.k)),
					res.Stats.CellsTouched,
					res.Stats.CellsTouched <= c.p)
			}
			return []*stats.Table{tb}
		})
}

func init() {
	register("E16",
		"Extrema finding across models (Sec 1/9): IPBAM's concurrent-write collisions find the max in O(log beta) slots; the collision-free MCB needs Partial-Sums (O(p/k + log k) cycles); Shout-Echo needs 2 rounds of p messages",
		func(quick bool) []*stats.Table {
			ps := []int{16, 64, 256}
			if quick {
				ps = ps[:2]
			}
			tb := stats.NewTable("E16 extrema: slots/cycles/rounds and messages by model (values < 2^20)",
				"p", "IPBAM slots", "IPBAM transmissions", "MCB(k=4) cycles", "MCB msgs", "Shout-Echo rounds", "SE msgs")
			for _, p := range ps {
				r := dist.NewRNG(uint64(p))
				card := dist.NearlyEven(4*p, p)
				inputs := make([][]int64, p)
				for i, ni := range card {
					inputs[i] = make([]int64, ni)
					for j := range inputs[i] {
						inputs[i][j] = int64(r.Intn(1 << 20))
					}
				}
				_, ipRes, err := ipbam.FindMax(inputs, ipbam.Config{StallTimeout: time.Minute})
				if err != nil {
					panic(err)
				}
				k := 4
				mcbRes, err := mcb.RunUniform(mcb.Config{P: p, K: k, StallTimeout: time.Minute}, func(pr mcb.Node) {
					core.MaxNode(pr, inputs[pr.ID()])
				})
				if err != nil {
					panic(err)
				}
				_, seRes, err := shoutecho.Max(inputs, shoutecho.Config{StallTimeout: time.Minute})
				if err != nil {
					panic(err)
				}
				tb.AddRow(p, ipRes.Stats.Slots, ipRes.Stats.Transmissions,
					mcbRes.Stats.Cycles, mcbRes.Stats.Messages,
					seRes.Stats.Rounds, seRes.Stats.Messages)
			}
			return []*stats.Table{tb}
		})
}
