// Package experiments regenerates every table and figure of the evaluation:
// the paper is a theory paper, so its "results" are the tight bounds of the
// abstract (reproduced as measured-vs-predicted tables over parameter
// sweeps) and its two figures (the matrix transformations and the filtering
// phase). Each experiment has an id (E1..E13), a one-line claim, and a
// generator that returns printable tables. DESIGN.md carries the index;
// EXPERIMENTS.md records the outcomes.
package experiments

import (
	"fmt"
	"sort"

	"mcbnet/internal/stats"
)

// Experiment is one reproducible table/figure generator. Quick mode shrinks
// the sweeps for use under `go test`; full mode is what cmd/mcbbench runs.
type Experiment struct {
	ID    string
	Claim string
	Run   func(quick bool) []*stats.Table
}

var registry = map[string]Experiment{}

func register(id, claim string, run func(quick bool) []*stats.Table) {
	registry[id] = Experiment{ID: id, Claim: claim, Run: run}
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns all experiments ordered by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// E2 < E10: compare by numeric suffix.
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}
