package experiments

import (
	"time"

	"mcbnet/internal/matrix"
	"mcbnet/internal/mcb"
	"mcbnet/internal/schedule"
	"mcbnet/internal/stats"
)

func init() {
	register("E9",
		"Figure 1: the four Columnsort matrix transformations on an example matrix",
		func(quick bool) []*stats.Table {
			sh := matrix.Shape{M: 6, K: 3}
			data := make([]int64, sh.N())
			for i := range data {
				data[i] = int64(i + 1) // column-major 1..18
			}
			var out []*stats.Table
			render := func(title string, d []int64) {
				tb := stats.NewTable(title, "row", "col1", "col2", "col3")
				for r := 0; r < sh.M; r++ {
					tb.AddRow(r+1, d[sh.Pos(0, r)], d[sh.Pos(1, r)], d[sh.Pos(2, r)])
				}
				out = append(out, tb)
			}
			render("E9 Figure 1 input (6x3, column-major 1..18)", data)
			for _, tr := range []struct {
				name string
				f    matrix.Transform
			}{
				{"transpose", matrix.Transpose},
				{"un-diagonalize", matrix.UnDiagonalize},
				{"up-shift", matrix.UpShift},
				{"down-shift", matrix.DownShift},
			} {
				buf := matrix.Apply(sh, data, tr.f, make([]int64, sh.N()))
				render("E9 after "+tr.name, buf)
			}
			return out
		})

	register("E10",
		"Simulation theorem (Sec 2): MCB(p',k') on MCB(p,k) costs ceil(p'/p)^2 * ceil(k'/k) host cycles per virtual cycle with ceil(p'/p) message repetitions (the paper states (p'/p)(k'/k) cycles; the extra p'/p factor pays the one-read-per-cycle port)",
		func(quick bool) []*stats.Table {
			vcycles := 50
			if quick {
				vcycles = 20
			}
			prog := func(v *mcb.VProc) {
				for i := 0; i < vcycles; i++ {
					if v.ID() == i%v.P() {
						v.Write(i%v.K(), mcb.MsgX(0, int64(i)))
					} else {
						v.Read(i % v.K())
					}
				}
			}
			tb := stats.NewTable("E10 simulation overhead (virtual MCB(16,4), varying host)",
				"host p", "host k", "q=ceil(p'/p)", "G=ceil(k'/k)", "host cycles", "cyc/vcycle", "q*q*G", "messages", "msgs/vmsg (expect ~q)")
			hosts := []struct{ p, k int }{{16, 4}, {8, 4}, {8, 2}, {4, 4}, {4, 2}, {2, 2}, {2, 1}}
			if quick {
				hosts = hosts[:5]
			}
			for _, h := range hosts {
				res, err := mcb.SimulateUniform(
					mcb.Config{P: h.p, K: h.k, StallTimeout: 60 * time.Second}, 16, 4, prog)
				if err != nil {
					panic(err)
				}
				q := (16 + h.p - 1) / h.p
				G := (4 + h.k - 1) / h.k
				tb.AddRow(h.p, h.k, q, G, res.Stats.Cycles,
					float64(res.Stats.Cycles)/float64(vcycles),
					q*q*G, res.Stats.Messages,
					float64(res.Stats.Messages)/float64(vcycles))
			}
			return []*stats.Table{tb}
		})

	register("E11",
		"Schedule ablation (Sec 5.2): the paper's closed-form transpose schedule vs the generic edge-coloring router — identical cycle counts, different precompute cost",
		func(quick bool) []*stats.Table {
			shapes := []matrix.Shape{{M: 64, K: 8}, {M: 256, K: 16}, {M: 1024, K: 16}}
			if quick {
				shapes = shapes[:2]
			}
			tb := stats.NewTable("E11 transpose schedule: closed form vs generic edge coloring",
				"m", "k", "closed cycles", "generic cycles", "closed build", "generic build")
			for _, sh := range shapes {
				t0 := time.Now()
				cs := schedule.TransposeClosed(sh)
				closedBuild := time.Since(t0)
				t0 = time.Now()
				gs := schedule.RouteMatching(sh, matrix.Transpose)
				genericBuild := time.Since(t0)
				tb.AddRow(sh.M, sh.K, cs.NumCycles(), gs.NumCycles(),
					closedBuild.String(), genericBuild.String())
			}
			// The un-diagonalize has no closed form; show the generic router
			// still achieves the optimal m cycles.
			tb2 := stats.NewTable("E11 un-diagonalize via edge coloring (no closed form exists)",
				"m", "k", "cycles", "optimal m", "build")
			for _, sh := range shapes {
				t0 := time.Now()
				s := schedule.RouteMatching(sh, matrix.UnDiagonalize)
				build := time.Since(t0)
				tb2.AddRow(sh.M, sh.K, s.NumCycles(), sh.M, build.String())
			}
			return []*stats.Table{tb, tb2}
		})
}
