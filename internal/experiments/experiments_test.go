package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	all := All()
	if len(all) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(want))
	}
	// Ordered by numeric id.
	for i := 1; i < len(all); i++ {
		var a, b int
		if _, err := sscan(all[i-1].ID, &a); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(all[i].ID, &b); err != nil {
			t.Fatal(err)
		}
		if a >= b {
			t.Errorf("registry not ordered: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
}

func sscan(id string, out *int) (int, error) {
	n := 0
	for _, c := range strings.TrimPrefix(id, "E") {
		n = n*10 + int(c-'0')
	}
	*out = n
	return n, nil
}

// TestAllExperimentsRunQuick executes every experiment in quick mode —
// this is the end-to-end check that the whole harness regenerates every
// table and figure without error.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(true)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				s := tb.String()
				if len(s) < 20 || !strings.Contains(s, "==") {
					t.Errorf("%s: suspicious table output:\n%s", e.ID, s)
				}
				if len(tb.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
			}
		})
	}
}
