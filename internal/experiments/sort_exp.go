package experiments

import (
	"fmt"
	"time"

	"mcbnet/internal/adversary"
	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/stats"
)

func sortOpts(k int, algo core.Algorithm) core.SortOptions {
	return core.SortOptions{K: k, Algorithm: algo, StallTimeout: 60 * time.Second}
}

func mustSort(inputs [][]int64, k int, algo core.Algorithm) *core.Report {
	_, rep, err := core.Sort(inputs, sortOpts(k, algo))
	if err != nil {
		panic(fmt.Sprintf("experiment sort failed: %v", err))
	}
	return rep
}

func mustSelect(inputs [][]int64, k, d int, algo core.SelectAlgorithm) *core.SelectReport {
	_, rep, err := core.Select(inputs, core.SelectOptions{
		K: k, D: d, Algorithm: algo, StallTimeout: 60 * time.Second,
	})
	if err != nil {
		panic(fmt.Sprintf("experiment select failed: %v", err))
	}
	return rep
}

func init() {
	register("E1",
		"Even sort (Cor 5): Theta(n) messages and Theta(n/k) cycles — msgs/n and cycles/(n/k) flat across n",
		func(quick bool) []*stats.Table {
			ns := []int{4096, 8192, 16384, 32768, 65536}
			if quick {
				ns = []int{4096, 8192, 16384}
			}
			p, k := 16, 8
			tb := stats.NewTable(
				fmt.Sprintf("E1 even sort, p=%d k=%d (gather Columnsort)", p, k),
				"n", "messages", "msgs/n", "cycles", "cycles/(n/k)", "LBmsg", "LBcyc")
			var xs, msgsY, cycY []float64
			var last *core.Report
			for _, n := range ns {
				r := dist.NewRNG(uint64(n))
				card := dist.Even(n, p)
				rep := mustSort(dist.Values(r, card), k, core.AlgoColumnsortGather)
				lbM := adversary.SortingMessagesLB(card)
				lbC := adversary.SortingCyclesLB(card, k)
				tb.AddRow(n, rep.Stats.Messages,
					float64(rep.Stats.Messages)/float64(n),
					rep.Stats.Cycles,
					float64(rep.Stats.Cycles)/(float64(n)/float64(k)),
					lbM, lbC)
				xs = append(xs, float64(n))
				msgsY = append(msgsY, float64(rep.Stats.Messages))
				cycY = append(cycY, float64(rep.Stats.Cycles))
				last = rep
			}
			fit := stats.NewTable("E1 growth fit (expect ~1.0 for both)",
				"quantity", "loglog slope vs n")
			fit.AddRow("messages", stats.LogLogSlope(xs, msgsY))
			fit.AddRow("cycles", stats.LogLogSlope(xs, cycY))
			// Per-phase breakdown at the largest n, straight from the
			// engine's phase accounting: gather and scatter dominate, the
			// nine Columnsort phases are the cheap middle.
			ph := stats.NewTable(
				fmt.Sprintf("E1b per-phase breakdown at n=%d (engine Stats.Phases)", ns[len(ns)-1]),
				"phase", "cycles", "cyc%", "messages", "msg%", "utilization")
			for _, f := range last.Stats.Phases {
				ph.AddRow(f.Name, f.Cycles,
					100*float64(f.Cycles)/float64(last.Stats.Cycles),
					f.Messages,
					100*float64(f.Messages)/float64(last.Stats.Messages),
					f.Utilization)
			}
			return []*stats.Table{tb, fit, ph}
		})

	register("E2",
		"Uneven sort (Cor 6): cycles track max{n/k, n_max} as skew grows; messages stay Theta(n)",
		func(quick bool) []*stats.Table {
			n, p, k := 16384, 16, 8
			if quick {
				n = 4096
			}
			fracs := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.85}
			tb := stats.NewTable(
				fmt.Sprintf("E2 uneven sort, n=%d p=%d k=%d (one-heavy profile)", n, p, k),
				"n_max/n", "n_max", "max(n/k,n_max)", "cycles", "cycles/pred", "messages", "msgs/n")
			for _, f := range fracs {
				r := dist.NewRNG(uint64(f * 1000))
				card := dist.OneHeavy(n, p, f)
				rep := mustSort(dist.Values(r, card), k, core.AlgoColumnsortGather)
				pred := max(n/k, card.Max())
				tb.AddRow(fmt.Sprintf("%.2f", float64(card.Max())/float64(n)),
					card.Max(), pred, rep.Stats.Cycles,
					float64(rep.Stats.Cycles)/float64(pred),
					rep.Stats.Messages, float64(rep.Stats.Messages)/float64(n))
			}
			// Other skew shapes at the same n, p, k.
			tb2 := stats.NewTable("E2b other uneven profiles",
				"profile", "n_max", "max(n/k,n_max)", "cycles", "cycles/pred", "msgs/n")
			r := dist.NewRNG(2)
			for _, prof := range []struct {
				name string
				card dist.Cardinalities
			}{
				{"random composition", dist.RandomComposition(r, n, p)},
				{"geometric", dist.Geometric(n, p)},
				{"circular adversarial", dist.NearlyEven(n, p)},
			} {
				var inputs [][]int64
				if prof.name == "circular adversarial" {
					inputs = dist.AdversarialCircular(prof.card)
				} else {
					inputs = dist.Values(r, prof.card)
				}
				rep := mustSort(inputs, k, core.AlgoColumnsortGather)
				pred := max(n/k, prof.card.Max())
				tb2.AddRow(prof.name, prof.card.Max(), pred, rep.Stats.Cycles,
					float64(rep.Stats.Cycles)/float64(pred),
					float64(rep.Stats.Messages)/float64(n))
			}
			return []*stats.Table{tb, tb2}
		})

	register("E5",
		"Channel scaling (Cor 3/Thm 4): even-sort cycles fall as 1/k; one-heavy cycles flatten at n_max",
		func(quick bool) []*stats.Table {
			n, p := 16384, 16
			if quick {
				n = 4096
			}
			ks := []int{1, 2, 4, 8, 16}
			even := stats.NewTable(
				fmt.Sprintf("E5a even sort cycles vs k, n=%d p=%d", n, p),
				"k", "cycles", "cycles*k/n", "messages")
			for _, k := range ks {
				r := dist.NewRNG(uint64(k))
				algo := core.AlgoColumnsortGather
				if k == 1 {
					algo = core.AlgoRankSort
				}
				rep := mustSort(dist.Values(r, dist.Even(n, p)), k, algo)
				even.AddRow(k, rep.Stats.Cycles,
					float64(rep.Stats.Cycles)*float64(k)/float64(n), rep.Stats.Messages)
			}
			heavy := stats.NewTable(
				fmt.Sprintf("E5b one-heavy (n_max=n/2) cycles vs k, n=%d p=%d — flattens at n_max", n, p),
				"k", "cycles", "cycles/n_max")
			card := dist.OneHeavy(n, p, 0.5)
			for _, k := range []int{2, 4, 8, 16} {
				r := dist.NewRNG(uint64(100 + k))
				rep := mustSort(dist.Values(r, card), k, core.AlgoColumnsortGather)
				heavy.AddRow(k, rep.Stats.Cycles,
					float64(rep.Stats.Cycles)/float64(card.Max()))
			}
			return []*stats.Table{even, heavy}
		})

	register("E7",
		"Single-channel sorts (Sec 6.1): Rank-Sort, Merge-Sort and gather Columnsort are all Theta(n) on k=1, with different constants and memory",
		func(quick bool) []*stats.Table {
			ns := []int{512, 1024, 2048, 4096}
			if quick {
				ns = []int{512, 1024}
			}
			p := 8
			tb := stats.NewTable("E7 single-channel sorts, p=8 k=1",
				"n", "algorithm", "cycles", "cycles/n", "messages", "msgs/n", "max aux words")
			for _, n := range ns {
				for _, algo := range []core.Algorithm{core.AlgoRankSort, core.AlgoMergeSort, core.AlgoColumnsortGather} {
					r := dist.NewRNG(uint64(n))
					rep := mustSort(dist.Values(r, dist.Even(n, p)), 1, algo)
					tb.AddRow(n, algo.String(), rep.Stats.Cycles,
						float64(rep.Stats.Cycles)/float64(n),
						rep.Stats.Messages, float64(rep.Stats.Messages)/float64(n),
						rep.Stats.MaxAux)
				}
			}
			return []*stats.Table{tb}
		})

	register("E8",
		"Recursive Columnsort (Cor 5 / Sec 6.2): for n < k^2(k-1), cycles ~ s*n/k instead of the direct algorithm's column-starved cost",
		func(quick bool) []*stats.Table {
			tb := stats.NewTable("E8 recursive vs direct on small n / large k (even distributions)",
				"n", "p", "k", "k^2(k-1)", "algorithm", "columns", "cycles", "messages")
			configs := []struct{ p, ni, k int }{
				{16, 4, 16}, {32, 4, 16}, {64, 4, 16}, {64, 8, 16},
			}
			if quick {
				configs = configs[:2]
			}
			for _, c := range configs {
				n := c.p * c.ni
				r := dist.NewRNG(uint64(n))
				inputs := dist.Values(r, dist.Even(n, c.p))
				repR := mustSort(inputs, c.k, core.AlgoColumnsortRecursive)
				repG := mustSort(inputs, c.k, core.AlgoColumnsortGather)
				lim := c.k * c.k * (c.k - 1)
				tb.AddRow(n, c.p, c.k, lim, "recursive", repR.Columns, repR.Stats.Cycles, repR.Stats.Messages)
				tb.AddRow(n, c.p, c.k, lim, "gather", repG.Columns, repG.Stats.Cycles, repG.Stats.Messages)
			}
			return []*stats.Table{tb}
		})

	register("E12",
		"Lower bounds (Sec 4): every measured run sits above the adversary bounds; the gap is the constant factor",
		func(quick bool) []*stats.Table {
			tb := stats.NewTable("E12 measured vs lower bound",
				"workload", "measured msgs", "LB msgs", "ratio", "measured cyc", "LB cyc", "ratio")
			n, p, k := 8192, 16, 8
			if quick {
				n = 2048
			}
			type wl struct {
				name string
				card dist.Cardinalities
			}
			wls := []wl{
				{"sort even", dist.Even(n, p)},
				{"sort one-heavy", dist.OneHeavy(n, p, 0.5)},
				{"sort circular", dist.NearlyEven(n, p)},
			}
			for _, w := range wls {
				var inputs [][]int64
				if w.name == "sort circular" {
					inputs = dist.AdversarialCircular(w.card)
				} else {
					inputs = dist.Values(dist.NewRNG(7), w.card)
				}
				rep := mustSort(inputs, k, core.AlgoColumnsortGather)
				lbM := adversary.SortingMessagesLB(w.card)
				lbC := adversary.SortingCyclesLB(w.card, k)
				tb.AddRow(w.name, rep.Stats.Messages, lbM,
					float64(rep.Stats.Messages)/lbM,
					rep.Stats.Cycles, lbC, float64(rep.Stats.Cycles)/lbC)
			}
			// Selection.
			card := dist.Even(n, p)
			inputs := dist.Values(dist.NewRNG(8), card)
			rep := mustSelect(inputs, k, n/2, core.SelFiltering)
			lbM := adversary.SelectionMessagesLB(card, n/2)
			lbC := adversary.SelectionCyclesLB(card, n/2, k)
			tb.AddRow("select median", rep.Stats.Messages, lbM,
				float64(rep.Stats.Messages)/lbM,
				rep.Stats.Cycles, lbC, float64(rep.Stats.Cycles)/lbC)
			return []*stats.Table{tb}
		})

	register("E13",
		"Memory modes (Sec 6.1): virtual columns cut per-processor auxiliary memory from O(n/k) to O(n_i), at ~2x cycles",
		func(quick bool) []*stats.Table {
			n, p, k := 16384, 32, 4
			if quick {
				n = 4096
			}
			tb := stats.NewTable(fmt.Sprintf("E13 gather vs virtual columns, n=%d p=%d k=%d", n, p, k),
				"mode", "max aux words", "aux/(n/k)", "aux/(n/p)", "cycles", "messages")
			r := dist.NewRNG(13)
			inputs := dist.Values(r, dist.Even(n, p))
			for _, algo := range []core.Algorithm{core.AlgoColumnsortGather, core.AlgoColumnsortVirtual} {
				rep := mustSort(inputs, k, algo)
				tb.AddRow(algo.String(), rep.Stats.MaxAux,
					float64(rep.Stats.MaxAux)/(float64(n)/float64(k)),
					float64(rep.Stats.MaxAux)/(float64(n)/float64(p)),
					rep.Stats.Cycles, rep.Stats.Messages)
			}
			return []*stats.Table{tb}
		})
}
