package experiments

import (
	"fmt"
	"math"

	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/stats"
)

func init() {
	register("E3",
		"Selection (Cor 7): Theta(p log(kn/p)) messages and Theta((p/k) log(kn/p)) cycles — ratios flat across n, p, k",
		func(quick bool) []*stats.Table {
			var out []*stats.Table
			// Sweep n.
			ns := []int{4096, 16384, 65536}
			if quick {
				ns = []int{2048, 8192}
			}
			p, k := 16, 4
			tn := stats.NewTable(fmt.Sprintf("E3a selection vs n, p=%d k=%d, d=n/2", p, k),
				"n", "log2(kn/p)", "messages", "msgs/(p log)", "cycles", "cyc/((p/k) log)", "phases")
			for _, n := range ns {
				r := dist.NewRNG(uint64(n))
				rep := mustSelect(dist.Values(r, dist.Even(n, p)), k, n/2, core.SelFiltering)
				logT := math.Log2(float64(k*n) / float64(p))
				tn.AddRow(n, logT, rep.Stats.Messages,
					float64(rep.Stats.Messages)/(float64(p)*logT),
					rep.Stats.Cycles,
					float64(rep.Stats.Cycles)/(float64(p)/float64(k)*logT),
					rep.FilterPhases)
			}
			out = append(out, tn)
			// Sweep p at fixed n, k.
			n := 16384
			if quick {
				n = 8192
			}
			tp := stats.NewTable(fmt.Sprintf("E3b selection vs p, n=%d k=4, d=n/2", n),
				"p", "messages", "msgs/(p log)", "cycles")
			for _, pp := range []int{8, 16, 32, 64} {
				r := dist.NewRNG(uint64(pp))
				rep := mustSelect(dist.Values(r, dist.Even(n, pp)), 4, n/2, core.SelFiltering)
				logT := math.Log2(float64(4*n) / float64(pp))
				tp.AddRow(pp, rep.Stats.Messages,
					float64(rep.Stats.Messages)/(float64(pp)*logT), rep.Stats.Cycles)
			}
			out = append(out, tp)
			// Sweep k at fixed n, p.
			tk := stats.NewTable(fmt.Sprintf("E3c selection vs k, n=%d p=32, d=n/2", n),
				"k", "messages", "cycles", "cyc/((p/k) log)")
			for _, kk := range []int{1, 2, 4, 8, 16} {
				r := dist.NewRNG(uint64(1000 + kk))
				rep := mustSelect(dist.Values(r, dist.Even(n, 32)), kk, n/2, core.SelFiltering)
				logT := math.Log2(float64(kk*n) / 32.0)
				tk.AddRow(kk, rep.Stats.Messages, rep.Stats.Cycles,
					float64(rep.Stats.Cycles)/(32.0/float64(kk)*logT))
			}
			out = append(out, tk)
			return out
		})

	register("E4",
		"Filtering vs sort-then-pick (Sec 8 intro): the naive baseline pays Theta(n) messages; filtering wins by ~n/(p log(kn/p)) and the factor grows with n",
		func(quick bool) []*stats.Table {
			p, k := 16, 4
			ns := []int{1024, 4096, 16384, 65536}
			if quick {
				ns = []int{1024, 4096}
			}
			tb := stats.NewTable(fmt.Sprintf("E4 filtering vs sort baseline, p=%d k=%d, d=n/2", p, k),
				"n", "filter msgs", "baseline msgs", "msg speedup", "filter cyc", "baseline cyc", "cyc speedup")
			for _, n := range ns {
				r := dist.NewRNG(uint64(n))
				inputs := dist.Values(r, dist.Even(n, p))
				f := mustSelect(inputs, k, n/2, core.SelFiltering)
				b := mustSelect(inputs, k, n/2, core.SelSortBaseline)
				tb.AddRow(n, f.Stats.Messages, b.Stats.Messages,
					float64(b.Stats.Messages)/float64(f.Stats.Messages),
					f.Stats.Cycles, b.Stats.Cycles,
					float64(b.Stats.Cycles)/float64(f.Stats.Cycles))
			}
			return []*stats.Table{tb}
		})

	register("E6",
		"Filtering phase (Fig 2 / Sec 8.2): every phase purges >= 1/4 of the candidates; phase count <= log_{4/3}(n/m*)",
		func(quick bool) []*stats.Table {
			n, p, k := 65536, 16, 4
			if quick {
				n = 8192
			}
			r := dist.NewRNG(6)
			rep := mustSelect(dist.Values(r, dist.Even(n, p)), k, n/2, core.SelFiltering)
			// Rendered from the engine's per-phase accounting (Stats.Phases
			// via SelectReport.Filter): candidate counts, purge fractions and
			// the cycle/message cost of each iteration come from one source.
			tb := stats.NewTable(fmt.Sprintf("E6 per-phase candidate counts, n=%d p=%d k=%d d=n/2", n, p, k),
				"phase", "candidates before", "purged fraction", "cycles", "messages")
			for i, f := range rep.Filter {
				tb.AddRow(i+1, f.Candidates, f.PurgedFraction, f.Cycles, f.Messages)
			}
			summary := stats.NewTable("E6 summary", "quantity", "value")
			minF := 1.0
			for _, f := range rep.PurgeFractions {
				if f < minF {
					minF = f
				}
			}
			bound := math.Log(float64(n)/float64(max(1, p/k))) / math.Log(4.0/3.0)
			summary.AddRow("phases", rep.FilterPhases)
			summary.AddRow("log_{4/3}(n/m*) bound", bound)
			summary.AddRow("min purge fraction (must be >= 0.25)", minF)
			return []*stats.Table{tb, summary}
		})
}
