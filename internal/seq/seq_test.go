package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func refSortedAsc(s []int64) []int64 {
	out := make([]int64, len(s))
	copy(out, s)
	// Reference: simple bottom-up merge sort, independent of the code under test.
	for width := 1; width < len(out); width *= 2 {
		tmp := make([]int64, len(out))
		for lo := 0; lo < len(out); lo += 2 * width {
			mid := min(lo+width, len(out))
			hi := min(lo+2*width, len(out))
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if out[i] <= out[j] {
					tmp[k] = out[i]
					i++
				} else {
					tmp[k] = out[j]
					j++
				}
				k++
			}
			for i < mid {
				tmp[k] = out[i]
				i++
				k++
			}
			for j < hi {
				tmp[k] = out[j]
				j++
				k++
			}
		}
		copy(out, tmp)
	}
	return out
}

func TestSortInt64AscBasic(t *testing.T) {
	cases := [][]int64{
		{}, {1}, {2, 1}, {1, 2}, {3, 3, 3},
		{5, 4, 3, 2, 1}, {1, 2, 3, 4, 5},
		{7, 1, 7, 1, 7, 1, 0, -3, 9},
	}
	for _, c := range cases {
		s := append([]int64(nil), c...)
		SortInt64Asc(s)
		want := refSortedAsc(c)
		for i := range s {
			if s[i] != want[i] {
				t.Errorf("SortInt64Asc(%v) = %v, want %v", c, s, want)
				break
			}
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(in []int64) bool {
		s := append([]int64(nil), in...)
		SortInt64Asc(s)
		want := refSortedAsc(in)
		if len(s) != len(want) {
			return false
		}
		for i := range s {
			if s[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortDescProperty(t *testing.T) {
	f := func(in []int64) bool {
		s := append([]int64(nil), in...)
		SortInt64Desc(s)
		return IsSorted(s, func(a, b int64) bool { return a > b })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortLargeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{15, 16, 17, 100, 1000, 65536} {
		s := make([]int64, n)
		for i := range s {
			s[i] = rng.Int63n(int64(n) * 4)
		}
		want := refSortedAsc(s)
		SortInt64Asc(s)
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("n=%d mismatch at %d", n, i)
			}
		}
	}
}

func TestSortAdversarialPatterns(t *testing.T) {
	// Patterns that degrade naive quicksort; introsort must stay O(n log n)
	// and correct.
	n := 4096
	patterns := map[string]func(i int) int64{
		"sorted":    func(i int) int64 { return int64(i) },
		"reverse":   func(i int) int64 { return int64(n - i) },
		"constant":  func(i int) int64 { return 7 },
		"organpipe": func(i int) int64 { return int64(min(i, n-i)) },
		"twovalue":  func(i int) int64 { return int64(i % 2) },
		"sawtooth":  func(i int) int64 { return int64(i % 17) },
	}
	for name, f := range patterns {
		s := make([]int64, n)
		for i := range s {
			s[i] = f(i)
		}
		want := refSortedAsc(s)
		SortInt64Asc(s)
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("%s: mismatch at %d", name, i)
			}
		}
	}
}

func TestGenericSortPairs(t *testing.T) {
	type pair struct{ k, v int64 }
	rng := rand.New(rand.NewSource(2))
	s := make([]pair, 500)
	for i := range s {
		s[i] = pair{rng.Int63n(50), int64(i)}
	}
	Sort(s, func(a, b pair) bool { return a.k < b.k || (a.k == b.k && a.v < b.v) })
	for i := 1; i < len(s); i++ {
		if s[i-1].k > s[i].k || (s[i-1].k == s[i].k && s[i-1].v > s[i].v) {
			t.Fatalf("pairs out of order at %d", i)
		}
	}
}

func TestMerge(t *testing.T) {
	less := func(a, b int64) bool { return a < b }
	a := []int64{1, 3, 5}
	b := []int64{2, 3, 4, 8}
	got := Merge(a, b, less)
	want := []int64{1, 2, 3, 3, 4, 5, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge = %v, want %v", got, want)
		}
	}
	if got := Merge(nil, b, less); len(got) != len(b) {
		t.Fatalf("Merge(nil, b) = %v", got)
	}
	// Merge must be stable with respect to a (ties take from a first).
	got = Merge([]int64{3}, []int64{3}, less)
	if len(got) != 2 || got[0] != 3 {
		t.Fatalf("stability check failed: %v", got)
	}
}

func TestKthSmallestExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 24; n++ {
		for trial := 0; trial < 20; trial++ {
			s := make([]int64, n)
			for i := range s {
				s[i] = rng.Int63n(10)
			}
			sorted := refSortedAsc(s)
			for k := 1; k <= n; k++ {
				if got := KthSmallest(s, k); got != sorted[k-1] {
					t.Fatalf("KthSmallest(%v, %d) = %d, want %d", s, k, got, sorted[k-1])
				}
			}
		}
	}
}

func TestKthLargestAndMedian(t *testing.T) {
	s := []int64{10, 40, 30, 20, 50}
	if got := KthLargest(s, 1); got != 50 {
		t.Errorf("KthLargest d=1: %d", got)
	}
	if got := KthLargest(s, 5); got != 10 {
		t.Errorf("KthLargest d=5: %d", got)
	}
	// n=5: median = descending rank 3 = 30.
	if got := Median(s); got != 30 {
		t.Errorf("Median = %d, want 30", got)
	}
	// n=4: descending rank ceil(4/2)=2 -> second largest.
	if got := Median([]int64{1, 2, 3, 4}); got != 3 {
		t.Errorf("Median(1..4) = %d, want 3", got)
	}
	if got := Median([]int64{9}); got != 9 {
		t.Errorf("Median([9]) = %d", got)
	}
}

func TestSelectProperty(t *testing.T) {
	f := func(in []int64, kRaw uint) bool {
		if len(in) == 0 {
			return true
		}
		k := int(kRaw%uint(len(in))) + 1
		sorted := refSortedAsc(in)
		return KthSmallest(in, k) == sorted[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectDoesNotModifyInput(t *testing.T) {
	s := []int64{5, 1, 4, 2, 3}
	orig := append([]int64(nil), s...)
	_ = KthSmallest(s, 3)
	for i := range s {
		if s[i] != orig[i] {
			t.Fatalf("input modified: %v", s)
		}
	}
}

func TestSelectInPlacePartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := make([]int64, 200)
	for i := range s {
		s[i] = rng.Int63n(100)
	}
	k := 77
	v := SelectInPlace(s, k)
	if s[k] != v {
		t.Fatalf("s[k]=%d, want %d", s[k], v)
	}
	for i := 0; i < k; i++ {
		if s[i] > v {
			t.Fatalf("left side has %d > pivot %d", s[i], v)
		}
	}
	for i := k + 1; i < len(s); i++ {
		if s[i] < v {
			t.Fatalf("right side has %d < pivot %d", s[i], v)
		}
	}
}

func TestSelectLinearComparisonPattern(t *testing.T) {
	// Worst-case-ish inputs: sorted, reverse, many duplicates. BFPRT must
	// return the correct value on all of them.
	n := 10000
	mk := func(f func(int) int64) []int64 {
		s := make([]int64, n)
		for i := range s {
			s[i] = f(i)
		}
		return s
	}
	inputs := [][]int64{
		mk(func(i int) int64 { return int64(i) }),
		mk(func(i int) int64 { return int64(n - i) }),
		mk(func(i int) int64 { return int64(i % 3) }),
	}
	for _, s := range inputs {
		sorted := refSortedAsc(s)
		for _, k := range []int{1, 2, n / 4, n / 2, n - 1, n} {
			if got := KthSmallest(s, k); got != sorted[k-1] {
				t.Fatalf("k=%d got %d want %d", k, got, sorted[k-1])
			}
		}
	}
}

func TestRankCounts(t *testing.T) {
	s := []int64{5, 3, 8, 3, 1}
	if got := Rank(s, 3); got != 4 {
		t.Errorf("Rank(3) = %d, want 4", got)
	}
	if got := Rank(s, 9); got != 0 {
		t.Errorf("Rank(9) = %d, want 0", got)
	}
	if got := CountLE(s, 3); got != 3 {
		t.Errorf("CountLE(3) = %d, want 3", got)
	}
	if got := CountGE(s, 100); got != 0 {
		t.Errorf("CountGE(100) = %d", got)
	}
}

func TestRankOutOfRangePanics(t *testing.T) {
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			KthSmallest([]int64{1, 2, 3}, k)
		}()
	}
}

func BenchmarkSortInt64_64k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	src := make([]int64, 65536)
	for i := range src {
		src[i] = rng.Int63()
	}
	buf := make([]int64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SortInt64Asc(buf)
	}
}

func BenchmarkSelect_64k(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	src := make([]int64, 65536)
	for i := range src {
		src[i] = rng.Int63()
	}
	buf := make([]int64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SelectInPlace(buf, len(buf)/2)
	}
}
