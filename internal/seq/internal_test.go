package seq

import (
	"math/rand"
	"testing"
)

// White-box coverage of the introsort internals: each path (insertion sort,
// heapsort fallback, partition) verified directly.

func TestInsertionSortDirect(t *testing.T) {
	s := []int64{5, 2, 8, 1, 9, 3}
	insertionSort(s, func(a, b int64) bool { return a < b })
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatalf("not sorted: %v", s)
		}
	}
	// Empty and single-element inputs.
	insertionSort([]int64{}, func(a, b int64) bool { return a < b })
	insertionSort([]int64{1}, func(a, b int64) bool { return a < b })
}

func TestHeapsortDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 3, 17, 100, 1000} {
		s := make([]int64, n)
		for i := range s {
			s[i] = rng.Int63n(50)
		}
		heapsort(s, func(a, b int64) bool { return a < b })
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d not sorted at %d", n, i)
			}
		}
	}
}

func TestPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	less := func(a, b int64) bool { return a < b }
	for trial := 0; trial < 200; trial++ {
		n := 17 + rng.Intn(100) // above the insertion threshold
		s := make([]int64, n)
		for i := range s {
			s[i] = rng.Int63n(30)
		}
		p := partition(s, less)
		for i := 0; i < p; i++ {
			if s[i] > s[p] {
				t.Fatalf("left[%d]=%d > pivot %d", i, s[i], s[p])
			}
		}
		for i := p + 1; i < n; i++ {
			if s[i] < s[p] {
				t.Fatalf("right[%d]=%d < pivot %d", i, s[i], s[p])
			}
		}
	}
}

func TestIntrosortDepthLimitFallsBackToHeapsort(t *testing.T) {
	// Force the fallback by calling with limit 0: must still sort.
	rng := rand.New(rand.NewSource(11))
	s := make([]int64, 5000)
	for i := range s {
		s[i] = rng.Int63n(100)
	}
	introsort(s, func(a, b int64) bool { return a < b }, 0)
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatal("depth-limited introsort failed to sort")
		}
	}
}

func TestIlog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for n, want := range cases {
		if got := ilog2(n); got != want {
			t.Errorf("ilog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMedianOfMediansPivotQuality(t *testing.T) {
	// The BFPRT pivot must land within the middle 40-ish percent for large
	// inputs (the linear-time guarantee); verify the rank bound loosely.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := 100 + rng.Intn(400)
		s := make([]int64, n)
		for i := range s {
			s[i] = rng.Int63()
		}
		pivot := medianOfMedians(s)
		rank := 0
		for _, v := range s {
			if v < pivot {
				rank++
			}
		}
		if rank < n/10 || rank > n-n/10 {
			t.Fatalf("n=%d: pivot rank %d outside [n/10, 9n/10]", n, rank)
		}
	}
}

func TestThreeWayPartitionBounds(t *testing.T) {
	s := []int64{3, 1, 3, 2, 3, 5, 0, 3}
	lt, gt := threeWayPartition(s, 3)
	for i := 0; i < lt; i++ {
		if s[i] >= 3 {
			t.Fatalf("prefix violation at %d: %v", i, s)
		}
	}
	for i := lt; i < gt; i++ {
		if s[i] != 3 {
			t.Fatalf("middle violation at %d: %v", i, s)
		}
	}
	for i := gt; i < len(s); i++ {
		if s[i] <= 3 {
			t.Fatalf("suffix violation at %d: %v", i, s)
		}
	}
	if gt-lt != 4 {
		t.Fatalf("equal run length %d, want 4", gt-lt)
	}
}
