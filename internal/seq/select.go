package seq

// This file implements worst-case linear-time selection by rank — the BFPRT
// median-of-medians algorithm of Blum, Floyd, Pratt, Rivest and Tarjan
// ("Time bounds for selection", 1973), which the paper cites as [Blum73] for
// computing local medians during the filtering phases of the selection
// algorithm.

// KthSmallest returns the k-th smallest element of s, k in [1, len(s)].
// It runs in O(n) worst case and does not modify s.
func KthSmallest(s []int64, k int) int64 {
	if k < 1 || k > len(s) {
		panic("seq: rank out of range")
	}
	buf := make([]int64, len(s))
	copy(buf, s)
	return selectInPlace(buf, k-1)
}

// KthLargest returns the element of rank d in the paper's descending order
// (d = 1 is the maximum), d in [1, len(s)]. It does not modify s.
func KthLargest(s []int64, d int) int64 {
	return KthSmallest(s, len(s)-d+1)
}

// Median returns the paper's median of s: the element of descending rank
// ceil(n/2) (equivalently, ascending rank floor(n/2)+1), where rank 1 is the
// largest. s must be non-empty; s is not modified.
func Median(s []int64) int64 {
	return KthLargest(s, (len(s)+1)/2)
}

// SelectInPlace returns the k-th smallest (0-based) element of s,
// partitioning s as a side effect: afterwards s[k] holds the answer, with
// smaller-or-equal elements before it and greater-or-equal after it.
func SelectInPlace(s []int64, k int) int64 {
	if k < 0 || k >= len(s) {
		panic("seq: rank out of range")
	}
	return selectInPlace(s, k)
}

func selectInPlace(s []int64, k int) int64 {
	for {
		n := len(s)
		if n <= 10 {
			insertionSort(s, func(a, b int64) bool { return a < b })
			return s[k]
		}
		pivot := medianOfMedians(s)
		lt, gt := threeWayPartition(s, pivot)
		switch {
		case k < lt:
			s = s[:lt]
		case k >= gt:
			s = s[gt:]
			k -= gt
		default:
			return pivot
		}
	}
}

// medianOfMedians computes the BFPRT pivot: the median of the medians of
// groups of five, found recursively. It reorders prefixes of s.
func medianOfMedians(s []int64) int64 {
	n := len(s)
	groups := (n + 4) / 5
	for g := 0; g < groups; g++ {
		lo := g * 5
		hi := lo + 5
		if hi > n {
			hi = n
		}
		insertionSort(s[lo:hi], func(a, b int64) bool { return a < b })
		mid := lo + (hi-lo)/2
		s[g], s[mid] = s[mid], s[g]
	}
	if groups == 1 {
		return s[0]
	}
	return selectInPlace(s[:groups], groups/2)
}

// threeWayPartition rearranges s into [< pivot | == pivot | > pivot] and
// returns the boundaries (lt, gt): s[:lt] < pivot, s[lt:gt] == pivot,
// s[gt:] > pivot.
func threeWayPartition(s []int64, pivot int64) (lt, gt int) {
	lo, mid, hi := 0, 0, len(s)
	for mid < hi {
		switch {
		case s[mid] < pivot:
			s[lo], s[mid] = s[mid], s[lo]
			lo++
			mid++
		case s[mid] > pivot:
			hi--
			s[mid], s[hi] = s[hi], s[mid]
		default:
			mid++
		}
	}
	return lo, hi
}

// Rank returns how many elements of s are greater than or equal to x — the
// descending rank x would have if it were inserted into s (when x is present,
// this is its rank). Runs in O(n); s need not be sorted.
func Rank(s []int64, x int64) int {
	r := 0
	for _, v := range s {
		if v >= x {
			r++
		}
	}
	return r
}

// CountGE returns the number of elements >= x.
func CountGE(s []int64, x int64) int { return Rank(s, x) }

// CountLE returns the number of elements <= x.
func CountLE(s []int64, x int64) int {
	r := 0
	for _, v := range s {
		if v <= x {
			r++
		}
	}
	return r
}
