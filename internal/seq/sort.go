// Package seq provides the sequential building blocks the MCB algorithms run
// locally at each processor: comparison sorting (the paper's [Knut73]
// reference) and worst-case linear-time selection by rank (the paper's
// [Blum73] reference, the BFPRT median-of-medians algorithm).
//
// The package is self-contained — the algorithm path does not rely on the
// standard library's sort — so that local computation is part of the
// reproduction rather than assumed.
package seq

// Sort sorts s in place using less as a strict weak ordering. It is an
// introsort: quicksort with median-of-three pivots, switching to heapsort
// past a depth limit and to insertion sort on small ranges, giving
// O(n log n) worst case and no allocation.
func Sort[T any](s []T, less func(a, b T) bool) {
	if len(s) < 2 {
		return
	}
	limit := 2 * ilog2(len(s))
	introsort(s, less, limit)
}

// SortInt64Desc sorts s in place in descending order, the paper's canonical
// order (rank 1 = largest).
func SortInt64Desc(s []int64) {
	Sort(s, func(a, b int64) bool { return a > b })
}

// SortInt64Asc sorts s in place in ascending order.
func SortInt64Asc(s []int64) {
	Sort(s, func(a, b int64) bool { return a < b })
}

// IsSorted reports whether s is ordered under less (no element is strictly
// less than its predecessor).
func IsSorted[T any](s []T, less func(a, b T) bool) bool {
	for i := 1; i < len(s); i++ {
		if less(s[i], s[i-1]) {
			return false
		}
	}
	return true
}

func ilog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

const insertionThreshold = 16

func introsort[T any](s []T, less func(a, b T) bool, limit int) {
	for len(s) > insertionThreshold {
		if limit == 0 {
			heapsort(s, less)
			return
		}
		limit--
		p := partition(s, less)
		// Recurse into the smaller side, loop on the larger: O(log n) stack.
		if p < len(s)-p-1 {
			introsort(s[:p], less, limit)
			s = s[p+1:]
		} else {
			introsort(s[p+1:], less, limit)
			s = s[:p]
		}
	}
	insertionSort(s, less)
}

// partition places a median-of-three pivot and returns its final index.
func partition[T any](s []T, less func(a, b T) bool) int {
	n := len(s)
	m := n / 2
	// Order s[0], s[m], s[n-1]; use s[m] as pivot moved to s[n-2]... simpler:
	// median-of-three into s[0] as sentinel arrangement.
	if less(s[m], s[0]) {
		s[m], s[0] = s[0], s[m]
	}
	if less(s[n-1], s[0]) {
		s[n-1], s[0] = s[0], s[n-1]
	}
	if less(s[n-1], s[m]) {
		s[n-1], s[m] = s[m], s[n-1]
	}
	// Pivot = s[m]; stash it at n-2 and partition s[1:n-2].
	s[m], s[n-2] = s[n-2], s[m]
	pivot := s[n-2]
	i, j := 0, n-2
	for {
		i++
		for less(s[i], pivot) {
			i++
		}
		j--
		for less(pivot, s[j]) {
			j--
		}
		if i >= j {
			break
		}
		s[i], s[j] = s[j], s[i]
	}
	s[i], s[n-2] = s[n-2], s[i]
	return i
}

func insertionSort[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && less(v, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func heapsort[T any](s []T, less func(a, b T) bool) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(s, i, n, less)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftDown(s, 0, i, less)
	}
}

func siftDown[T any](s []T, root, hi int, less func(a, b T) bool) {
	for {
		child := 2*root + 1
		if child >= hi {
			return
		}
		if child+1 < hi && less(s[child], s[child+1]) {
			child++
		}
		if !less(s[root], s[child]) {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}

// Merge merges two slices each sorted under less into a freshly allocated
// sorted slice.
func Merge[T any](a, b []T, less func(x, y T) bool) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
