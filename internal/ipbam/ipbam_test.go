package ipbam

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
	"mcbnet/internal/seq"
)

func cfg(p int) Config {
	return Config{P: p, StallTimeout: 10 * time.Second}
}

func TestTernaryFeedback(t *testing.T) {
	// Slot 1: silence. Slot 2: single. Slot 3: collision.
	const p = 3
	var fbs [3][p]Feedback
	prog := func(pr *Proc) {
		fbs[0][pr.ID()], _ = pr.Listen()
		if pr.ID() == 1 {
			fbs[1][pr.ID()], _ = pr.Transmit(mcb.MsgX(0, 5))
		} else {
			fbs[1][pr.ID()], _ = pr.Listen()
		}
		if pr.ID() <= 1 {
			fbs[2][pr.ID()], _ = pr.Transmit(mcb.MsgX(0, int64(pr.ID())))
		} else {
			fbs[2][pr.ID()], _ = pr.Listen()
		}
	}
	res, err := RunUniform(cfg(p), prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		if fbs[0][i] != Empty || fbs[1][i] != Single || fbs[2][i] != Collision {
			t.Errorf("proc %d feedback = %v %v %v", i, fbs[0][i], fbs[1][i], fbs[2][i])
		}
	}
	if res.Stats.Slots != 3 || res.Stats.Collisions != 1 || res.Stats.Transmissions != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestSingleDeliversToAll(t *testing.T) {
	const p = 5
	got := make([]int64, p)
	prog := func(pr *Proc) {
		if pr.ID() == 3 {
			_, m := pr.Transmit(mcb.MsgX(0, 99))
			got[pr.ID()] = m.X
		} else {
			_, m := pr.Listen()
			got[pr.ID()] = m.X
		}
	}
	if _, err := RunUniform(cfg(p), prog); err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != 99 {
			t.Errorf("proc %d got %d", i, g)
		}
	}
}

func TestFindMaxBasic(t *testing.T) {
	inputs := [][]int64{{3, 17, 5}, {12}, {9, 16}}
	got, res, err := FindMax(inputs, cfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 17 {
		t.Errorf("max = %d, want 17", got)
	}
	// bits(17)=5, +1 announcement slot.
	if res.Stats.Slots > 5+2+1 { // 5 value bits + 2 id bits + announcement
		t.Errorf("slots = %d, want <= 8", res.Stats.Slots)
	}
}

func TestFindMaxEdgeValues(t *testing.T) {
	cases := []struct {
		inputs [][]int64
		want   int64
	}{
		{[][]int64{{0}, {0}}, 0},
		{[][]int64{{1}}, 1},
		{[][]int64{{7, 7}, {7}}, 7}, // duplicated maximum across processors
		{[][]int64{{1 << 40}, {1<<40 - 1}}, 1 << 40},
	}
	for _, c := range cases {
		got, _, err := FindMax(c.inputs, cfg(0))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("FindMax(%v) = %d, want %d", c.inputs, got, c.want)
		}
	}
}

func TestFindMaxSlotsLogarithmicInValue(t *testing.T) {
	// Slots depend on log2(max value), not on n or p.
	r := dist.NewRNG(61)
	mk := func(p, n int, maxVal int64) [][]int64 {
		card := dist.NearlyEven(n, p)
		out := make([][]int64, p)
		for i, ni := range card {
			out[i] = make([]int64, ni)
			for j := range out[i] {
				out[i][j] = int64(r.Intn(int(maxVal)))
			}
		}
		return out
	}
	_, small, err := FindMax(mk(4, 16, 1<<10), cfg(0))
	if err != nil {
		t.Fatal(err)
	}
	_, bigP, err := FindMax(mk(64, 1024, 1<<10), cfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if d := bigP.Stats.Slots - small.Stats.Slots; d > 8 || d < -8 { // log2(64)-log2(4)=4 id-resolution slots
		t.Errorf("slots should not depend on n, p: %d vs %d", small.Stats.Slots, bigP.Stats.Slots)
	}
	_, bigV, err := FindMax(mk(4, 16, 1<<40), cfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if bigV.Stats.Slots <= small.Stats.Slots+20 {
		t.Errorf("slots should grow with log(value): %d vs %d", small.Stats.Slots, bigV.Stats.Slots)
	}
}

func TestFindMaxProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := dist.NewRNG(seed)
		p := 1 + r.Intn(8)
		n := p + r.Intn(60)
		card := dist.NearlyEven(n, p)
		inputs := make([][]int64, p)
		want := int64(0)
		for i, ni := range card {
			inputs[i] = make([]int64, ni)
			for j := range inputs[i] {
				inputs[i][j] = int64(r.Intn(1 << 20))
				if inputs[i][j] > want {
					want = inputs[i][j]
				}
			}
		}
		got, _, err := FindMax(inputs, cfg(0))
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFindMaxRejectsNegative(t *testing.T) {
	if _, _, err := FindMax([][]int64{{-1}}, cfg(0)); err == nil {
		t.Error("expected error for negative values")
	}
}

// TestMergeSortOnIPBAM is the Section 9 claim: the paper's single-channel
// Merge-Sort runs on the IPBAM without a single collision (no concurrent
// write needed).
func TestMergeSortOnIPBAM(t *testing.T) {
	const n, p = 240, 6
	r := dist.NewRNG(62)
	inputs := dist.Values(r, dist.RandomComposition(r, n, p))
	outputs := make([][]int64, p)
	res, err := RunUniform(cfg(p), func(pr *Proc) {
		node := NewMCBNode(pr)
		outputs[node.ID()] = core.SortNode(node, inputs[node.ID()], core.AlgoMergeSort)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Collisions != 0 {
		t.Errorf("collision-free algorithm collided %d times", res.Stats.Collisions)
	}
	flat := dist.Flatten(inputs)
	seq.SortInt64Desc(flat)
	idx := 0
	for i := range outputs {
		for _, v := range outputs[i] {
			if v != flat[idx] {
				t.Fatalf("rank %d: got %d want %d", idx, v, flat[idx])
			}
			idx++
		}
	}
	t.Logf("Merge-Sort on IPBAM: %d slots, 0 collisions", res.Stats.Slots)
}

func TestRankSortOnIPBAM(t *testing.T) {
	const n, p = 120, 4
	r := dist.NewRNG(63)
	inputs := dist.Values(r, dist.NearlyEven(n, p))
	outputs := make([][]int64, p)
	res, err := RunUniform(cfg(p), func(pr *Proc) {
		node := NewMCBNode(pr)
		outputs[node.ID()] = core.SortNode(node, inputs[node.ID()], core.AlgoRankSort)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Collisions != 0 {
		t.Errorf("collisions = %d", res.Stats.Collisions)
	}
	flat := dist.Flatten(inputs)
	seq.SortInt64Desc(flat)
	idx := 0
	for i := range outputs {
		for _, v := range outputs[i] {
			if v != flat[idx] {
				t.Fatalf("rank %d mismatch", idx)
			}
			idx++
		}
	}
}

func TestAdapterCollisionAborts(t *testing.T) {
	// A buggy "MCB" program that writes concurrently must abort, not corrupt.
	_, err := RunUniform(cfg(3), func(pr *Proc) {
		node := NewMCBNode(pr)
		node.Write(0, mcb.MsgX(0, int64(pr.ID())))
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
}

func TestSlotLimit(t *testing.T) {
	c := cfg(2)
	c.MaxSlots = 3
	_, err := RunUniform(c, func(pr *Proc) {
		for {
			pr.Listen()
		}
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
}

func TestFeedbackString(t *testing.T) {
	if Empty.String() != "empty" || Single.String() != "single" || Collision.String() != "collision" {
		t.Error("Feedback strings wrong")
	}
}

func TestFindMaxEmptyProcessors(t *testing.T) {
	got, _, err := FindMax([][]int64{{}, {8, 3}, {}}, cfg(0))
	if err != nil || got != 8 {
		t.Fatalf("got %d, %v", got, err)
	}
	if _, _, err := FindMax([][]int64{{}, {}}, cfg(0)); err == nil {
		t.Error("expected error for empty set")
	}
}
