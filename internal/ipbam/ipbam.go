// Package ipbam implements the single-channel broadcast model of Dechter
// and Kleinrock ([Dech81, Dech84] in the paper; Levitan's BPM [Levi82] is
// identical): p processors share one broadcast channel, any number of them
// may transmit in a slot, and a global collision-resolution mechanism gives
// every processor ternary feedback — the slot was empty, carried exactly one
// message (delivered to all), or collided.
//
// The paper's Section 9 observes that its single-channel Merge-Sort matches
// the sorting complexity of [Dech84] in this model *without ever using
// concurrent write*; the adapter at the bottom of this package runs the MCB
// algorithms on an IPBAM channel to make that claim executable. The package
// also implements the model's signature algorithm — extrema finding by
// bitwise descent, where collisions themselves carry information — as the
// comparison point of experiment E16.
package ipbam

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mcbnet/internal/mcb"
)

// Message reuses the MCB message format.
type Message = mcb.Message

// Feedback is the ternary channel outcome of a slot.
type Feedback uint8

const (
	// Empty: no processor transmitted.
	Empty Feedback = iota
	// Single: exactly one processor transmitted; the message was delivered.
	Single
	// Collision: two or more processors transmitted; nothing was delivered.
	Collision
)

func (f Feedback) String() string {
	switch f {
	case Empty:
		return "empty"
	case Single:
		return "single"
	case Collision:
		return "collision"
	}
	return "?"
}

// Config describes an IPBAM network.
type Config struct {
	P            int
	MaxSlots     int64
	StallTimeout time.Duration
}

// Stats counts the model's costs.
type Stats struct {
	// Slots is the number of channel slots (the model's time measure).
	Slots int64
	// Transmissions counts individual transmit attempts (several per slot
	// under concurrent write).
	Transmissions int64
	// Collisions counts collided slots.
	Collisions int64
}

// Result is the outcome of a run.
type Result struct {
	Stats Stats
}

// ErrAborted is wrapped by all abort errors.
var ErrAborted = errors.New("ipbam: run aborted")

type slotOp struct {
	transmit bool
	exit     bool
	msg      Message
}

type slotResult struct {
	fb  Feedback
	msg Message
}

type generation struct{ ch chan struct{} }

// Proc is the per-processor handle. Each slot every live processor must call
// exactly one of Transmit or Listen.
type Proc struct {
	id int
	e  *engine
}

// ID returns the processor index.
func (p *Proc) ID() int { return p.id }

// P returns the number of processors.
func (p *Proc) P() int { return p.e.cfg.P }

// Transmit attempts to send m this slot and returns the slot's feedback
// (and the delivered message when feedback is Single — possibly its own).
func (p *Proc) Transmit(m Message) (Feedback, Message) {
	r := p.e.step(p.id, slotOp{transmit: true, msg: m})
	return r.fb, r.msg
}

// Listen observes the slot without transmitting.
func (p *Proc) Listen() (Feedback, Message) {
	r := p.e.step(p.id, slotOp{})
	return r.fb, r.msg
}

// Abortf fails the whole computation.
func (p *Proc) Abortf(format string, args ...any) {
	err := fmt.Errorf("%w: processor %d: %s", ErrAborted, p.id, fmt.Sprintf(format, args...))
	p.e.abort(err)
	panic(ipbamAbort{err})
}

type ipbamAbort struct{ err error }

type engine struct {
	cfg    Config
	slots  []slotOp
	result slotResult
	live   []bool
	liveN  int

	mu       sync.Mutex
	arrived  int32
	expected int32
	gen      *generation

	stats    Stats
	ticks    int64
	failed   bool
	abortErr error
	aborted  chan struct{}
	abortOne sync.Once
	allDone  chan struct{}
}

func (e *engine) abort(err error) {
	e.mu.Lock()
	if e.abortErr == nil {
		e.abortErr = err
	}
	e.failed = true
	e.mu.Unlock()
	e.abortOne.Do(func() { close(e.aborted) })
}

func (e *engine) isFailed() (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failed, e.abortErr
}

func (e *engine) step(id int, op slotOp) slotResult {
	if failed, err := e.isFailed(); failed {
		panic(ipbamAbort{err})
	}
	e.mu.Lock()
	g := e.gen
	e.slots[id] = op
	e.arrived++
	leader := e.arrived == e.expected
	e.mu.Unlock()
	if leader {
		e.resolve(g)
		if op.exit {
			return slotResult{}
		}
		if failed, err := e.isFailed(); failed {
			panic(ipbamAbort{err})
		}
		return e.result
	}
	if op.exit {
		return slotResult{}
	}
	select {
	case <-g.ch:
	case <-e.aborted:
		_, err := e.isFailed()
		panic(ipbamAbort{err})
	}
	if failed, err := e.isFailed(); failed {
		panic(ipbamAbort{err})
	}
	return e.result
}

func (e *engine) resolve(g *generation) {
	writers := 0
	anyWork := false
	var msg Message
	for id := 0; id < e.cfg.P; id++ {
		if !e.live[id] {
			continue
		}
		op := &e.slots[id]
		if op.exit {
			continue
		}
		anyWork = true
		if op.transmit {
			writers++
			msg = op.msg
			e.stats.Transmissions++
		}
	}
	if anyWork {
		switch {
		case writers == 0:
			e.result = slotResult{fb: Empty}
		case writers == 1:
			e.result = slotResult{fb: Single, msg: msg}
		default:
			e.result = slotResult{fb: Collision}
			e.stats.Collisions++
		}
		e.stats.Slots++
		e.ticks = e.stats.Slots
	}
	for id := 0; id < e.cfg.P; id++ {
		if e.live[id] && e.slots[id].exit {
			e.live[id] = false
			e.liveN--
		}
	}
	if e.cfg.MaxSlots > 0 && e.stats.Slots > e.cfg.MaxSlots {
		e.abort(fmt.Errorf("%w: slot limit %d exceeded", ErrAborted, e.cfg.MaxSlots))
		close(g.ch)
		return
	}
	if e.liveN == 0 {
		close(e.allDone)
		close(g.ch)
		return
	}
	e.mu.Lock()
	e.arrived = 0
	e.expected = int32(e.liveN)
	e.gen = &generation{ch: make(chan struct{})}
	e.mu.Unlock()
	close(g.ch)
}

// Run executes one program per processor.
func Run(cfg Config, programs []func(*Proc)) (*Result, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("ipbam: P must be >= 1, got %d", cfg.P)
	}
	if len(programs) != cfg.P {
		return nil, fmt.Errorf("ipbam: %d programs for %d processors", len(programs), cfg.P)
	}
	e := &engine{
		cfg:     cfg,
		slots:   make([]slotOp, cfg.P),
		live:    make([]bool, cfg.P),
		aborted: make(chan struct{}),
		allDone: make(chan struct{}),
	}
	for i := range e.live {
		e.live[i] = true
	}
	e.liveN = cfg.P
	e.expected = int32(cfg.P)
	e.gen = &generation{ch: make(chan struct{})}

	var wg sync.WaitGroup
	for i := 0; i < cfg.P; i++ {
		pr := &Proc{id: i, e: e}
		prog := programs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				switch r := recover().(type) {
				case nil:
					pr.exit()
				case ipbamAbort:
				default:
					e.abort(fmt.Errorf("%w: processor %d panicked: %v", ErrAborted, pr.id, r))
					pr.exit()
				}
			}()
			prog(pr)
		}()
	}

	stall := cfg.StallTimeout
	if stall == 0 {
		stall = 30 * time.Second
	}
	tick := time.NewTicker(stall)
	defer tick.Stop()
	last := int64(-1)
	for {
		select {
		case <-e.allDone:
			wg.Wait()
			if _, err := e.isFailed(); err != nil {
				return nil, err
			}
			return &Result{Stats: e.stats}, nil
		case <-e.aborted:
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
			}
			_, err := e.isFailed()
			return nil, err
		case <-tick.C:
			e.mu.Lock()
			cur := e.ticks
			e.mu.Unlock()
			if cur == last {
				e.abort(fmt.Errorf("%w: no slot completed in %v", ErrAborted, stall))
			} else {
				last = cur
			}
		}
	}
}

// RunUniform runs the same program on every processor.
func RunUniform(cfg Config, program func(*Proc)) (*Result, error) {
	progs := make([]func(*Proc), cfg.P)
	for i := range progs {
		progs[i] = program
	}
	return Run(cfg, progs)
}

func (p *Proc) exit() {
	defer func() { _ = recover() }()
	p.e.step(p.id, slotOp{exit: true})
}
