package ipbam

import (
	"fmt"

	"mcbnet/internal/mcb"
)

// FindMax locates the maximum of a distributed set of non-negative values
// using the model's signature trick: collisions carry information. The
// candidates descend the value bit by bit, from the most significant: every
// processor whose best local candidate has the current bit set transmits; a
// non-empty slot (single OR collision) tells everyone that a candidate with
// the bit exists, eliminating all candidates without it. After B bit slots
// exactly the maximum's holders remain; one more slot delivers the value
// (the model resolves among identical survivors by processor id here: the
// lowest-id survivor transmits).
//
// Cost: bits+1 slots — O(log beta), independent of both n and p — versus
// Omega(p/k) cycles for the same task on a collision-free MCB. Requires
// values in [0, 2^62).
func FindMax(inputs [][]int64, cfg Config) (int64, *Result, error) {
	p := len(inputs)
	if p == 0 {
		return 0, nil, fmt.Errorf("ipbam: no processors")
	}
	cfg.P = p
	maxV := int64(0)
	n := 0
	for _, in := range inputs {
		n += len(in)
		for _, v := range in {
			if v < 0 || v >= 1<<62 {
				return 0, nil, fmt.Errorf("ipbam: FindMax requires values in [0, 2^62), got %d", v)
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if n == 0 {
		return 0, nil, fmt.Errorf("ipbam: the distributed set is empty")
	}
	bits := 1
	for 1<<bits <= maxV {
		bits++
	}

	var result int64
	progs := make([]func(*Proc), p)
	for i := range progs {
		id := i
		in := inputs[i]
		progs[i] = func(pr *Proc) {
			local := int64(-1) // empty processors hold no candidate
			for _, v := range in {
				if v > local {
					local = v
				}
			}
			alive := len(in) > 0
			prefix := int64(0)
			for b := bits - 1; b >= 0; b-- {
				bit := int64(1) << b
				claim := alive && local&bit != 0
				var fb Feedback
				if claim {
					fb, _ = pr.Transmit(mcb.MsgX(0x40, 1))
				} else {
					fb, _ = pr.Listen()
				}
				if fb != Empty {
					prefix |= bit
					if alive && local&bit == 0 {
						alive = false
					}
				}
			}
			// Survivors all hold the maximum, but a joint transmission would
			// collide; resolve to a single winner by the same collision
			// trick over processor-id bits (log2 p slots): at each bit,
			// survivors with the bit clear transmit, and a non-empty slot
			// eliminates the survivors with the bit set.
			idBits := 0
			for 1<<idBits < p {
				idBits++
			}
			for b := idBits - 1; b >= 0; b-- {
				claim := alive && id&(1<<b) == 0
				var fb Feedback
				if claim {
					fb, _ = pr.Transmit(mcb.MsgX(0x41, 1))
				} else {
					fb, _ = pr.Listen()
				}
				if fb != Empty && alive && id&(1<<b) != 0 {
					alive = false
				}
			}
			// Exactly one survivor remains; it announces the maximum.
			var fb Feedback
			var m Message
			if alive {
				fb, m = pr.Transmit(mcb.MsgX(0x42, prefix))
			} else {
				fb, m = pr.Listen()
			}
			if fb != Single {
				pr.Abortf("ipbam: announcement slot was %v", fb)
			}
			if id == 0 {
				result = m.X
			}
		}
	}
	res, err := Run(cfg, progs)
	if err != nil {
		return 0, nil, err
	}
	return result, res, nil
}

// MCBNode adapts an IPBAM processor to the single-channel MCB node
// interface: MCB(p, 1) is exactly the IPBAM restricted to collision-free
// use, so the paper's Merge-Sort and Rank-Sort run on this channel without
// ever causing a collision — Section 9's point about matching [Dech84]
// without concurrent write. A collision through this adapter is an
// algorithm bug and aborts.
type MCBNode struct {
	pr    *Proc
	cycle int64
	aux   int64
}

var _ mcb.Node = (*MCBNode)(nil)

// NewMCBNode wraps an IPBAM processor as an MCB(p, 1) node.
func NewMCBNode(pr *Proc) *MCBNode { return &MCBNode{pr: pr} }

// ID returns the processor index.
func (n *MCBNode) ID() int { return n.pr.ID() }

// P returns the number of processors.
func (n *MCBNode) P() int { return n.pr.P() }

// K returns 1: the IPBAM has a single channel.
func (n *MCBNode) K() int { return 1 }

func (n *MCBNode) check(ch int) {
	if ch != 0 {
		n.pr.Abortf("ipbam: channel %d on a single-channel model", ch)
	}
}

// WriteRead transmits and observes the slot (the writer hears itself).
func (n *MCBNode) WriteRead(writeCh int, m mcb.Message, readCh int) (mcb.Message, bool) {
	n.check(writeCh)
	n.check(readCh)
	n.cycle++
	fb, got := n.pr.Transmit(m)
	if fb == Collision {
		n.pr.Abortf("ipbam: collision through the collision-free adapter")
	}
	return got, fb == Single
}

// Write transmits without caring about the feedback.
func (n *MCBNode) Write(writeCh int, m mcb.Message) {
	n.check(writeCh)
	n.cycle++
	fb, _ := n.pr.Transmit(m)
	if fb == Collision {
		n.pr.Abortf("ipbam: collision through the collision-free adapter")
	}
}

// Read listens to the slot.
func (n *MCBNode) Read(readCh int) (mcb.Message, bool) {
	n.check(readCh)
	n.cycle++
	fb, got := n.pr.Listen()
	if fb == Collision {
		n.pr.Abortf("ipbam: collision through the collision-free adapter")
	}
	return got, fb == Single
}

// Idle listens without using the result.
func (n *MCBNode) Idle() {
	n.cycle++
	_, _ = n.pr.Listen()
}

// IdleN idles nn slots.
func (n *MCBNode) IdleN(nn int) {
	for i := 0; i < nn; i++ {
		n.Idle()
	}
}

// Abortf fails the computation.
func (n *MCBNode) Abortf(format string, args ...any) { n.pr.Abortf(format, args...) }

// AccountAux tracks the auxiliary estimate locally.
func (n *MCBNode) AccountAux(delta int64) { n.aux += delta }

// Phase is a no-op: the IPBAM run owns the slot accounting and has no
// phase attribution of its own.
func (n *MCBNode) Phase(name string) {}

// Cycles returns the number of slots used through this adapter.
func (n *MCBNode) Cycles() int64 { return n.cycle }
