package partial

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mcbnet/internal/mcb"
)

func runSums(t *testing.T, p, k int, vals []int64, op Op) (before, at, next []int64, stats mcb.Stats) {
	t.Helper()
	before = make([]int64, p)
	at = make([]int64, p)
	next = make([]int64, p)
	res, err := mcb.RunUniform(mcb.Config{P: p, K: k, StallTimeout: 10 * time.Second}, func(pr mcb.Node) {
		b, a, n := Sums(pr, vals[pr.ID()], op)
		before[pr.ID()], at[pr.ID()], next[pr.ID()] = b, a, n
	})
	if err != nil {
		t.Fatalf("p=%d k=%d: %v", p, k, err)
	}
	return before, at, next, res.Stats
}

func TestSumsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	configs := []struct{ p, k int }{
		{1, 1}, {2, 1}, {2, 2}, {3, 1}, {4, 2}, {5, 2}, {7, 3}, {8, 8},
		{9, 4}, {16, 4}, {17, 4}, {31, 5}, {32, 8}, {33, 1}, {64, 16},
	}
	for _, c := range configs {
		vals := make([]int64, c.p)
		for i := range vals {
			vals[i] = rng.Int63n(1000) - 500
		}
		before, at, next, _ := runSums(t, c.p, c.k, vals, Sum)
		acc := int64(0)
		for i := 0; i < c.p; i++ {
			if before[i] != acc {
				t.Fatalf("p=%d k=%d: before[%d] = %d, want %d", c.p, c.k, i, before[i], acc)
			}
			acc += vals[i]
			if at[i] != acc {
				t.Fatalf("p=%d k=%d: at[%d] = %d, want %d", c.p, c.k, i, at[i], acc)
			}
		}
		for i := 0; i < c.p-1; i++ {
			if next[i] != at[i+1] {
				t.Fatalf("p=%d k=%d: next[%d] = %d, want %d", c.p, c.k, i, next[i], at[i+1])
			}
		}
		if next[c.p-1] != Sum.Identity {
			t.Fatalf("p=%d k=%d: last next = %d", c.p, c.k, next[c.p-1])
		}
	}
}

func TestSumsMaxOperator(t *testing.T) {
	vals := []int64{3, -7, 12, 5, 12, 1, 0, 99}
	_, at, _, _ := runSums(t, len(vals), 2, vals, Max)
	m := Max.Identity
	for i, v := range vals {
		if v > m {
			m = v
		}
		if at[i] != m {
			t.Fatalf("at[%d] = %d, want %d", i, at[i], m)
		}
	}
}

func TestSumsMinOperator(t *testing.T) {
	vals := []int64{5, 2, 9, -4, 7}
	_, at, _, _ := runSums(t, len(vals), 2, vals, Min)
	if at[len(vals)-1] != -4 {
		t.Fatalf("total min = %d, want -4", at[len(vals)-1])
	}
}

func TestTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, c := range []struct{ p, k int }{{1, 1}, {2, 1}, {8, 2}, {13, 3}, {32, 8}} {
		vals := make([]int64, c.p)
		want := int64(0)
		for i := range vals {
			vals[i] = rng.Int63n(100)
			want += vals[i]
		}
		got := make([]int64, c.p)
		_, err := mcb.RunUniform(mcb.Config{P: c.p, K: c.k}, func(pr mcb.Node) {
			got[pr.ID()] = Total(pr, vals[pr.ID()], Sum)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range got {
			if g != want {
				t.Fatalf("p=%d k=%d proc %d: total = %d, want %d", c.p, c.k, i, g, want)
			}
		}
	}
}

func TestSumsComplexity(t *testing.T) {
	// O(p/k + log k) cycles per phase; with three phases plus the neighbor
	// exchange, the constant is small. Verify cycles <= 6*(p/k) + 8*log2(p)+8
	// and messages <= 4p.
	for _, c := range []struct{ p, k int }{{16, 1}, {64, 4}, {256, 16}, {128, 128}, {100, 7}} {
		vals := make([]int64, c.p)
		for i := range vals {
			vals[i] = int64(i)
		}
		_, _, _, stats := runSums(t, c.p, c.k, vals, Sum)
		lg := 0
		for 1<<lg < c.p {
			lg++
		}
		cycleBound := int64(6*(c.p/c.k) + 8*lg + 8)
		if stats.Cycles > cycleBound {
			t.Errorf("p=%d k=%d: %d cycles > bound %d", c.p, c.k, stats.Cycles, cycleBound)
		}
		if stats.Messages > int64(4*c.p) {
			t.Errorf("p=%d k=%d: %d messages > 4p", c.p, c.k, stats.Messages)
		}
	}
}

func TestSumsProperty(t *testing.T) {
	f := func(raw []int16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		p := len(raw)
		k := int(kRaw)%p + 1
		vals := make([]int64, p)
		for i, r := range raw {
			vals[i] = int64(r)
		}
		before := make([]int64, p)
		res := make([]int64, p)
		_, err := mcb.RunUniform(mcb.Config{P: p, K: k}, func(pr mcb.Node) {
			b, a, _ := Sums(pr, vals[pr.ID()], Sum)
			before[pr.ID()], res[pr.ID()] = b, a
		})
		if err != nil {
			return false
		}
		acc := int64(0)
		for i := 0; i < p; i++ {
			if before[i] != acc {
				return false
			}
			acc += vals[i]
			if res[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSumsNoNeighborCheaper(t *testing.T) {
	const p, k = 32, 4
	vals := make([]int64, p)
	for i := range vals {
		vals[i] = 1
	}
	run := func(withNeighbor bool) int64 {
		res, err := mcb.RunUniform(mcb.Config{P: p, K: k}, func(pr mcb.Node) {
			if withNeighbor {
				Sums(pr, vals[pr.ID()], Sum)
			} else {
				SumsNoNeighbor(pr, vals[pr.ID()], Sum)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	with, without := run(true), run(false)
	if without >= with {
		t.Errorf("SumsNoNeighbor (%d cycles) not cheaper than Sums (%d)", without, with)
	}
}

func BenchmarkPartialSums(b *testing.B) {
	const p, k = 256, 16
	vals := make([]int64, p)
	for i := range vals {
		vals[i] = int64(i)
	}
	for i := 0; i < b.N; i++ {
		_, err := mcb.RunUniform(mcb.Config{P: p, K: k}, func(pr mcb.Node) {
			Sums(pr, vals[pr.ID()], Sum)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
