// Package partial implements the Partial-Sums algorithm of Section 7.1: the
// simulation of Vishkin's fetch-and-add tree machine on an MCB(p, k)
// network. Given a value a_i at each processor P_i and a commutative,
// associative operator ⊕, every processor learns the prefix sums
// a⊕_{i-1}, a⊕_i and a⊕_{i+1} in O(p/k + log k) cycles and O(p) messages.
//
// The full binary tree over (the next power of two of) p leaves is simulated
// level by level, bottom-up then top-down. A father node is simulated by the
// same processor that simulates its left son, so only right-son/father
// messages are sent: during the bottom-up phase the processor simulating
// node (l, 2j) writes channel (j-1 mod k)+1 in cycle ceil(j/k) of the level,
// read by the simulator of node (l+1, j); the top-down phase mirrors this.
// Virtual leaves introduced by rounding p up to a power of two never
// broadcast; their parents observe silence and substitute the identity.
//
// Every processor of the network must call the same entry point in the same
// cycle; all control flow depends only on globally known quantities (p, k),
// so the processors stay in lock-step.
package partial

import "mcbnet/internal/mcb"

// Op is a commutative and associative operator with identity, e.g. "+" or
// "max" — the ⊕ of the paper.
type Op struct {
	Name     string
	Identity int64
	Apply    func(a, b int64) int64
}

// Sum is integer addition.
var Sum = Op{Name: "sum", Identity: 0, Apply: func(a, b int64) int64 { return a + b }}

// Max is the maximum operator (identity MinInt64).
var Max = Op{Name: "max", Identity: -1 << 63, Apply: func(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}}

// Min is the minimum operator (identity MaxInt64).
var Min = Op{Name: "min", Identity: 1<<63 - 1, Apply: func(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}}

const tagPartial = 0x10

// levels returns the tree height for p leaves: smallest L with 2^L >= p.
func levels(p int) int {
	l := 0
	for 1<<l < p {
		l++
	}
	return l
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Sums computes the prefix sums of the values a_i under op. It returns
// before = a_1 ⊕ ... ⊕ a_{i-1} (op.Identity at P_1), at = before ⊕ a_i, and
// next = the inclusive prefix of P_{i+1} (op.Identity at the last
// processor). All p processors must call Sums in the same cycle.
func Sums(p mcb.Node, a int64, op Op) (before, at, next int64) {
	before = bottomUpTopDown(p, a, op)
	at = op.Apply(before, a)
	next = neighborFromRight(p, at)
	if p.ID() == p.P()-1 {
		next = op.Identity // no right neighbor
	}
	return before, at, next
}

// PhasedSums is Sums with phase accounting: the tree simulation is marked
// prefix+":tree" and the neighbor exchange prefix+":neighbor" (see
// mcb.Proc.Phase). Every processor marks; same-name markers coalesce.
func PhasedSums(p mcb.Node, a int64, op Op, prefix string) (before, at, next int64) {
	p.Phase(prefix + ":tree")
	before = bottomUpTopDown(p, a, op)
	at = op.Apply(before, a)
	p.Phase(prefix + ":neighbor")
	next = neighborFromRight(p, at)
	if p.ID() == p.P()-1 {
		next = op.Identity // no right neighbor
	}
	return before, at, next
}

// PhasedTotal is Total with phase accounting: the bottom-up tree simulation
// is marked prefix+":tree" and the root broadcast prefix+":broadcast".
func PhasedTotal(p mcb.Node, a int64, op Op, prefix string) int64 {
	P := p.P()
	if P == 1 {
		return a
	}
	p.Phase(prefix + ":tree")
	nodeVal := bottomUp(p, a, op)
	L := levels(P)
	p.Phase(prefix + ":broadcast")
	var total int64
	if p.ID() == 0 {
		total = nodeVal[L]
		p.Write(0, mcb.MsgX(tagPartial, total))
	} else {
		m, ok := p.Read(0)
		if !ok {
			p.Abortf("partial: missing total broadcast")
		}
		total = m.X
	}
	return total
}

// SumsNoNeighbor is Sums without the final neighbor exchange (saves p
// messages and ceil(p/k) cycles when a⊕_{i+1} is not needed).
func SumsNoNeighbor(p mcb.Node, a int64, op Op) (before, at int64) {
	before = bottomUpTopDown(p, a, op)
	return before, op.Apply(before, a)
}

// Total computes only the total sum a_1 ⊕ ... ⊕ a_p at every processor:
// the bottom-up phase followed by a single broadcast from P_1 (which
// simulates the root).
func Total(p mcb.Node, a int64, op Op) int64 {
	P := p.P()
	if P == 1 {
		return a
	}
	nodeVal := bottomUp(p, a, op)
	L := levels(P)
	// P_0 holds the root value nodeVal[L].
	var total int64
	if p.ID() == 0 {
		total = nodeVal[L]
		p.Write(0, mcb.MsgX(tagPartial, total))
	} else {
		m, ok := p.Read(0)
		if !ok {
			p.Abortf("partial: missing total broadcast")
		}
		total = m.X
	}
	return total
}

// bottomUp runs the bottom-up phase. It returns this processor's node values
// per level: nodeVal[l] is the ⊕ of the real leaves covered by the level-l
// node simulated by this processor (valid only for levels this processor
// simulates, i.e. while id % 2^l == 0).
func bottomUp(p mcb.Node, a int64, op Op) []int64 {
	P, K, id := p.P(), p.K(), p.ID()
	L := levels(P)
	nodeVal := make([]int64, L+1)
	nodeVal[0] = a
	for l := 0; l < L; l++ {
		span := 1 << (l + 1)        // leaves covered by a level-(l+1) node
		parents := ceilDiv(P, span) // parents with at least one real leaf
		batches := ceilDiv(parents, K)
		// Parent j0 covers leaves [j0*span, (j0+1)*span); its right child
		// simulator is leaf j0*span + span/2 and its own simulator is leaf
		// j0*span. Parent j0 communicates in batch j0/K on channel j0%K.
		for b := 0; b < batches; b++ {
			isRightChild := id%span == span/2 && id/span >= b*K && id/span < (b+1)*K
			isParent := id%span == 0 && id/span >= b*K && id/span < (b+1)*K
			switch {
			case isRightChild:
				p.Write(id/span%K, mcb.MsgX(tagPartial, nodeVal[l]))
			case isParent:
				m, ok := p.Read(id / span % K)
				r := op.Identity
				if ok {
					r = m.X
				}
				nodeVal[l+1] = op.Apply(nodeVal[l], r)
				continue
			default:
				p.Idle()
			}
		}
	}
	return nodeVal
}

// bottomUpTopDown runs both phases and returns the exclusive prefix at this
// processor (the F ⊕ at the leaf, before applying its own value).
func bottomUpTopDown(p mcb.Node, a int64, op Op) int64 {
	P, K, id := p.P(), p.K(), p.ID()
	if P == 1 {
		return op.Identity
	}
	nodeVal := bottomUp(p, a, op)
	L := levels(P)
	// f[l] is the prefix arriving from above at this processor's level-l
	// node. The root (level L, simulated by P_0) starts with the identity.
	f := op.Identity
	for l := L; l >= 1; l-- {
		span := 1 << l
		parents := ceilDiv(P, span)
		batches := ceilDiv(parents, K)
		for b := 0; b < batches; b++ {
			isParent := id%span == 0 && id/span >= b*K && id/span < (b+1)*K
			isRightChild := id%span == span/2 && id/span >= b*K && id/span < (b+1)*K
			switch {
			case isParent:
				// Send F ⊕ L to the right son; keep F for the left son
				// (same simulator). nodeVal[l-1] is the left child value.
				p.Write(id/span%K, mcb.MsgX(tagPartial, op.Apply(f, nodeVal[l-1])))
			case isRightChild:
				m, ok := p.Read(id / span % K)
				if !ok {
					p.Abortf("partial: missing top-down message at level %d", l)
				}
				f = m.X
			default:
				p.Idle()
			}
		}
	}
	return f
}

// neighborFromRight delivers each processor's value to its left neighbor:
// P_i learns v_{i+1}. Processor i (i > 0; P_0 has no left neighbor to serve)
// writes v on channel i mod k in batch floor(i/k); processor i-1 reads it,
// possibly in the same cycle as its own write. The last processor has no
// right neighbor and returns 0; the caller substitutes its own default.
// Costs ceil(p/k) cycles and p-1 messages.
func neighborFromRight(p mcb.Node, v int64) int64 {
	P, K, id := p.P(), p.K(), p.ID()
	if P == 1 {
		return 0
	}
	batches := ceilDiv(P, K)
	var got int64
	for b := 0; b < batches; b++ {
		writes := id >= b*K && id < (b+1)*K && id > 0
		reads := id+1 >= b*K && id+1 < (b+1)*K && id+1 < P
		switch {
		case writes && reads:
			m, ok := p.WriteRead(id%K, mcb.MsgX(tagPartial, v), (id+1)%K)
			if !ok {
				p.Abortf("partial: missing neighbor value")
			}
			got = m.X
		case writes:
			p.Write(id%K, mcb.MsgX(tagPartial, v))
		case reads:
			m, ok := p.Read((id + 1) % K)
			if !ok {
				p.Abortf("partial: missing neighbor value")
			}
			got = m.X
		default:
			p.Idle()
		}
	}
	return got
}
