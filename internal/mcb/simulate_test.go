package mcb

import (
	"testing"
	"time"
)

func simCfg(p, k int) Config {
	return Config{P: p, K: k, StallTimeout: 10 * time.Second}
}

func TestSimulateBroadcast(t *testing.T) {
	// A virtual MCB(8, 4) broadcast observed by all virtual processors,
	// hosted on MCB(2, 2).
	const pv, kv = 8, 4
	got := make([]int64, pv)
	prog := func(v *VProc) {
		if v.ID() == 5 {
			m, ok := v.WriteRead(3, MsgX(1, 77), 3)
			if !ok {
				panic("writer lost own message")
			}
			got[v.ID()] = m.X
			return
		}
		m, ok := v.Read(3)
		if !ok {
			panic("missing broadcast")
		}
		got[v.ID()] = m.X
	}
	res, err := SimulateUniform(simCfg(2, 2), pv, kv, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 77 {
			t.Errorf("vproc %d got %d", i, v)
		}
	}
	// One virtual cycle: q=4 slots, so q*q*G = 4*4*2 = 32 host cycles plus
	// the termination reduction.
	if res.Stats.Cycles < 32 {
		t.Errorf("cycles = %d, expected >= 32", res.Stats.Cycles)
	}
}

func TestSimulateParallelPairs(t *testing.T) {
	// kv disjoint virtual conversations in one virtual cycle.
	const pv, kv = 8, 4
	got := make([]int64, pv)
	prog := func(v *VProc) {
		id := v.ID()
		if id < kv {
			v.Write(id, MsgX(0, int64(100+id)))
			return
		}
		m, ok := v.Read(id - kv)
		if !ok {
			panic("silence")
		}
		got[id] = m.X
	}
	if _, err := SimulateUniform(simCfg(4, 2), pv, kv, prog); err != nil {
		t.Fatal(err)
	}
	for i := kv; i < pv; i++ {
		if got[i] != int64(100+i-kv) {
			t.Errorf("vproc %d got %d", i, got[i])
		}
	}
}

func TestSimulateSilence(t *testing.T) {
	prog := func(v *VProc) {
		if _, ok := v.Read(v.ID() % v.K()); ok {
			panic("expected silence")
		}
	}
	if _, err := SimulateUniform(simCfg(2, 1), 4, 3, prog); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateVirtualCollision(t *testing.T) {
	prog := func(v *VProc) {
		v.Write(2, MsgX(0, int64(v.ID())))
	}
	if _, err := SimulateUniform(simCfg(2, 2), 4, 4, prog); err == nil {
		t.Fatal("expected virtual collision to fail the computation")
	}
}

func TestSimulateUnevenTermination(t *testing.T) {
	// Virtual processors exit at different virtual times.
	const pv = 6
	count := make([]int, pv)
	prog := func(v *VProc) {
		for i := 0; i <= v.ID(); i++ {
			v.Idle()
			count[v.ID()]++
		}
	}
	if _, err := SimulateUniform(simCfg(2, 2), pv, 2, prog); err != nil {
		t.Fatal(err)
	}
	for i, c := range count {
		if c != i+1 {
			t.Errorf("vproc %d ran %d virtual cycles", i, c)
		}
	}
}

func TestSimulateMultiCycleProtocol(t *testing.T) {
	// A sequential token pass over pv virtual cycles: in virtual cycle
	// `turn`, vproc `turn` broadcasts and its successor records the value.
	const pv, kv = 6, 3
	token := make([]int64, pv)
	prog := func(v *VProc) {
		id := v.ID()
		for turn := 0; turn < pv; turn++ {
			if turn == id {
				v.Write(0, MsgX(0, int64(id*10)))
			} else {
				m, ok := v.Read(0)
				if !ok {
					panic("token: silence")
				}
				if turn == (id+1)%pv {
					token[id] = m.X
				}
			}
		}
	}
	if _, err := SimulateUniform(simCfg(3, 2), pv, kv, prog); err != nil {
		t.Fatal(err)
	}
	for i := range token {
		want := int64(((i + 1) % pv) * 10)
		if token[i] != want {
			t.Errorf("vproc %d token %d, want %d", i, token[i], want)
		}
	}
}

func TestSimulateRequiresLargerVirtual(t *testing.T) {
	if _, err := SimulateUniform(simCfg(4, 2), 2, 2, func(v *VProc) {}); err == nil {
		t.Error("expected error for pv < P")
	}
	if _, err := SimulateUniform(simCfg(2, 2), 4, 1, func(v *VProc) {}); err == nil {
		t.Error("expected error for kv < K")
	}
}

func TestSimulateOverheadScaling(t *testing.T) {
	// Overhead per virtual cycle grows with q^2 * G (see simulate.go).
	run := func(p, k, pv, kv int) int64 {
		prog := func(v *VProc) {
			for i := 0; i < 10; i++ {
				if v.ID() == 0 {
					v.Write(0, MsgX(0, int64(i)))
				} else {
					v.Read(0)
				}
			}
		}
		res, err := SimulateUniform(simCfg(p, k), pv, kv, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	c1 := run(8, 2, 8, 4) // q=1, G=2
	c2 := run(4, 2, 8, 4) // q=2, G=2
	c4 := run(2, 2, 8, 4) // q=4, G=2
	if !(c1 < c2 && c2 < c4) {
		t.Errorf("overhead not increasing: %d %d %d", c1, c2, c4)
	}
}
