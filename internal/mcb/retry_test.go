package mcb

import (
	"math"
	"testing"
	"time"
)

// TestBackoffExponentCapped pins the fix for the Backoff<<attempt overflow:
// the doubling exponent is capped, and even a pathological base duration
// never yields a non-positive wait.
func TestBackoffExponentCapped(t *testing.T) {
	p := RetryPolicy{Backoff: time.Millisecond}
	if got := p.BackoffFor(0); got != time.Millisecond {
		t.Fatalf("backoffFor(0) = %v, want 1ms", got)
	}
	if got := p.BackoffFor(3); got != 8*time.Millisecond {
		t.Fatalf("backoffFor(3) = %v, want 8ms", got)
	}
	capped := p.BackoffFor(maxBackoffShift)
	for _, a := range []int{maxBackoffShift + 1, 40, 63, 64, 100, math.MaxInt32} {
		got := p.BackoffFor(a)
		if got != capped {
			t.Fatalf("backoffFor(%d) = %v, want capped %v", a, got, capped)
		}
		if got <= 0 {
			t.Fatalf("backoffFor(%d) = %v, not positive", a, got)
		}
	}
	// A base so large that even the capped shift overflows falls back to the
	// un-doubled base instead of wrapping negative.
	huge := RetryPolicy{Backoff: time.Duration(math.MaxInt64 / 2)}
	if got := huge.BackoffFor(10); got != huge.Backoff {
		t.Fatalf("huge base backoffFor(10) = %v, want base %v", got, huge.Backoff)
	}
	zero := RetryPolicy{}
	if got := zero.BackoffFor(5); got != 0 {
		t.Fatalf("zero policy backoffFor = %v, want 0", got)
	}
}
