package mcb

import (
	"fmt"
	"runtime"
	"time"
)

// This file is the engine's self-measurement harness: the same microbenchmark
// workloads as bench_test.go, but runnable from a CLI (`mcbbench -engine`) so
// the repository can record a perf trajectory (BENCH_engine.json) that future
// PRs regress-check against. Throughput is measured directly; the per-cycle
// allocation figure is the *marginal* cost between a short and a long run of
// the same workload, so one-time setup (engine, goroutines, Proc handles)
// cancels out and steady-state cycles are measured alone.

// Engine benchmark workload names, accepted by EngineBench.
const (
	// BenchBarrier measures the bare cycle barrier: every processor idles,
	// so a cycle is one arrive/resolve/release round-trip with no traffic.
	BenchBarrier = "barrier"
	// BenchWriteRead measures a full traffic cycle: processors 0..k-1 each
	// write (and read back) their own channel, the rest read.
	BenchWriteRead = "writeread"
	// BenchSparse measures the selection-phase shape: one processor is active
	// per cycle (writing and reading back channel 0) while the other p-1 sit
	// in long IdleN batches, with the writer role rotating between segments.
	// The sharded engine's active-list skip makes a cycle cost O(active), so
	// this workload's throughput should be nearly independent of p.
	BenchSparse = "sparse"
)

// sparseSegLen is the BenchSparse segment length: how many consecutive cycles
// one processor stays the sole writer while the rest idle through a single
// IdleN batch of the same length.
const sparseSegLen = 256

// EngineBenchEntry is one measured engine microbenchmark configuration, in
// the stable schema recorded in BENCH_engine.json.
type EngineBenchEntry struct {
	Name           string  `json:"name"`             // BenchBarrier or BenchWriteRead
	Engine         string  `json:"engine,omitempty"` // execution engine; "" means goroutine (pre-sharded artifacts)
	P              int     `json:"p"`
	K              int     `json:"k"`
	Cycles         int64   `json:"cycles"`           // cycles in the timed run
	NsPerCycle     float64 `json:"ns_per_cycle"`     // wall time per cycle
	CyclesPerSec   float64 `json:"cycles_per_sec"`   // throughput
	AllocsPerCycle float64 `json:"allocs_per_cycle"` // marginal heap allocations per cycle
}

// BenchEnv is the provenance of a benchmark artifact: the runner properties
// that make throughput numbers comparable. Two sweeps measured under
// different Go versions, GOMAXPROCS or core counts are different experiments
// — gating one against the other yields nonsense in both directions (a
// single-core baseline makes any multi-core run look like a huge win, and
// vice versa), which is why CompareEngineBench consumers must check
// Mismatch first.
type BenchEnv struct {
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CurrentBenchEnv captures the provenance of the running process.
func CurrentBenchEnv() BenchEnv {
	return BenchEnv{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Mismatch compares this (runner) environment against a baseline's recorded
// provenance and returns one human-readable line per differing field, naming
// the field and both values. Empty means the environments match and a
// benchmark comparison is meaningful. A baseline with no recorded provenance
// (all zero values, pre-provenance artifacts) mismatches on every field.
func (e BenchEnv) Mismatch(base BenchEnv) []string {
	var out []string
	if e.GoVersion != base.GoVersion {
		out = append(out, fmt.Sprintf("go: runner %q vs baseline %q", e.GoVersion, base.GoVersion))
	}
	if e.GOMAXPROCS != base.GOMAXPROCS {
		out = append(out, fmt.Sprintf("gomaxprocs: runner %d vs baseline %d", e.GOMAXPROCS, base.GOMAXPROCS))
	}
	if e.NumCPU != base.NumCPU {
		out = append(out, fmt.Sprintf("num_cpu: runner %d vs baseline %d", e.NumCPU, base.NumCPU))
	}
	return out
}

// engineBenchProgram returns the uniform processor program for one workload:
// every processor participates in exactly cycles cycles.
func engineBenchProgram(name string, k int, cycles int64) (func(Node), error) {
	switch name {
	case BenchBarrier:
		return func(pr Node) {
			pr.IdleN(int(cycles))
		}, nil
	case BenchWriteRead:
		return func(pr Node) {
			id := pr.ID()
			if id < k {
				m := MsgX(1, int64(id))
				for i := int64(0); i < cycles; i++ {
					pr.WriteRead(id, m, id)
				}
				return
			}
			c := id % k
			for i := int64(0); i < cycles; i++ {
				pr.Read(c)
			}
		}, nil
	case BenchSparse:
		return func(pr Node) {
			id, p := pr.ID(), pr.P()
			var done int64
			for seg := 0; done < cycles; seg++ {
				n := cycles - done
				if n > sparseSegLen {
					n = sparseSegLen
				}
				if seg%p == id {
					m := MsgX(1, int64(id))
					for i := int64(0); i < n; i++ {
						pr.WriteRead(0, m, 0)
					}
				} else {
					pr.IdleN(int(n))
				}
				done += n
			}
		}, nil
	default:
		return nil, fmt.Errorf("mcb: unknown engine benchmark %q", name)
	}
}

// EngineBench runs one engine microbenchmark workload on an MCB(p, k) engine
// for the given number of cycles under the given execution engine and returns
// the measured entry. It runs the workload twice (full length and half
// length) to separate steady-state per-cycle allocations from run setup.
func EngineBench(engine EngineMode, name string, p, k int, cycles int64) (EngineBenchEntry, error) {
	if engine == EngineAuto {
		engine = EngineGoroutine
	}
	if cycles < 4 {
		cycles = 4
	}
	run := func(n int64) (time.Duration, uint64, error) {
		prog, err := engineBenchProgram(name, k, n)
		if err != nil {
			return 0, 0, err
		}
		cfg := Config{P: p, K: k, Engine: engine, StallTimeout: 5 * time.Minute}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := RunUniform(cfg, prog)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return 0, 0, err
		}
		if res.Stats.Cycles != n {
			return 0, 0, fmt.Errorf("mcb: benchmark ran %d cycles, want %d", res.Stats.Cycles, n)
		}
		return elapsed, m1.Mallocs - m0.Mallocs, nil
	}
	// Warm up once (scheduler, allocator) before the timed run.
	if _, _, err := run(cycles / 4); err != nil {
		return EngineBenchEntry{}, err
	}
	elapsed, allocsFull, err := run(cycles)
	if err != nil {
		return EngineBenchEntry{}, err
	}
	half := cycles / 2
	_, allocsHalf, err := run(half)
	if err != nil {
		return EngineBenchEntry{}, err
	}
	perCycle := (float64(allocsFull) - float64(allocsHalf)) / float64(cycles-half)
	if perCycle < 0 {
		perCycle = 0
	}
	ns := float64(elapsed.Nanoseconds()) / float64(cycles)
	e := EngineBenchEntry{
		Name:           name,
		Engine:         string(engine),
		P:              p,
		K:              k,
		Cycles:         cycles,
		NsPerCycle:     ns,
		AllocsPerCycle: perCycle,
	}
	if elapsed > 0 {
		e.CyclesPerSec = float64(cycles) / elapsed.Seconds()
	}
	return e, nil
}

// CompareEngineBench compares a fresh engine-benchmark sweep against a
// baseline (the committed BENCH_engine.json) and returns one human-readable
// line per regression: a configuration whose throughput fell below
// (1-threshold) of the baseline, or whose per-cycle allocation count grew
// beyond the baseline by more than the threshold plus a 0.05 absolute fudge
// (the measured figure is ~0, so a pure ratio would trip on noise).
// Configurations present in only one of the two sweeps are ignored. An
// empty result means the gate passes.
func CompareEngineBench(fresh, baseline []EngineBenchEntry, threshold float64) []string {
	key := func(e *EngineBenchEntry) string {
		eng := e.Engine
		if eng == "" {
			// Pre-sharded artifacts carry no engine field; they measured the
			// goroutine engine.
			eng = string(EngineGoroutine)
		}
		return fmt.Sprintf("%s/%s/p=%d/k=%d", eng, e.Name, e.P, e.K)
	}
	base := make(map[string]*EngineBenchEntry, len(baseline))
	for i := range baseline {
		base[key(&baseline[i])] = &baseline[i]
	}
	var regressions []string
	for i := range fresh {
		f := &fresh[i]
		b, ok := base[key(f)]
		if !ok {
			continue
		}
		if b.CyclesPerSec > 0 && f.CyclesPerSec < b.CyclesPerSec*(1-threshold) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: cycles/sec %.0f -> %.0f (%.1f%% drop, limit %.0f%%)",
				key(f), b.CyclesPerSec, f.CyclesPerSec,
				100*(1-f.CyclesPerSec/b.CyclesPerSec), 100*threshold))
		}
		if f.AllocsPerCycle > b.AllocsPerCycle*(1+threshold)+0.05 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/cycle %.4f -> %.4f (limit %.4f)",
				key(f), b.AllocsPerCycle, f.AllocsPerCycle,
				b.AllocsPerCycle*(1+threshold)+0.05))
		}
	}
	return regressions
}

// engineSweepSizes is the default processor grid per (engine, workload). The
// goroutine engine's dense workloads stop at p=4096, where one OS goroutine
// per processor already costs milliseconds per cycle; the sharded engine —
// the p >> cores mode — sweeps on to p=65536. The sparse workload runs the
// full grid on both engines: with one active processor per cycle its cost is
// dominated by the idle-processor machinery (parked goroutines vs the sharded
// active-list skip), which is exactly the contrast worth recording.
func engineSweepSizes(engine EngineMode, name string) []int {
	if engine == EngineSharded || name == BenchSparse {
		return []int{4, 16, 64, 256, 1024, 4096, 16384, 65536}
	}
	return []int{4, 16, 64, 256, 1024, 4096}
}

// engineSweepCycles picks the per-size default cycle count: the historical
// 262144/p (floor 2048) for the small sizes the trajectory was recorded at,
// relaxed to a floor of 64 for the large-p extension so the full sweep stays
// in CI-friendly time even at millisecond cycles.
func engineSweepCycles(p int) int64 {
	n := 262144 / int64(p)
	switch {
	case p <= 256:
		if n < 2048 {
			n = 2048
		}
	default:
		if n < 64 {
			n = 64
		}
	}
	return n
}

// EngineBenchSweep runs the standard engine benchmark grid for one execution
// engine: every workload over p in ps with k = max(1, p/4). ps nil picks the
// per-(engine, workload) default grid; cycles <= 0 picks a per-size default
// that keeps the sweep under a few tens of seconds.
func EngineBenchSweep(engine EngineMode, ps []int, cycles int64) ([]EngineBenchEntry, error) {
	if engine == EngineAuto {
		engine = EngineGoroutine
	}
	var out []EngineBenchEntry
	for _, name := range []string{BenchBarrier, BenchWriteRead, BenchSparse} {
		sizes := ps
		if len(sizes) == 0 {
			sizes = engineSweepSizes(engine, name)
		}
		for _, p := range sizes {
			k := p / 4
			if k < 1 {
				k = 1
			}
			n := cycles
			if n <= 0 {
				n = engineSweepCycles(p)
			}
			e, err := EngineBench(engine, name, p, k, n)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}
