// Package mcb implements the Multi-Channel Broadcast (MCB) network model of
// Marberg and Gafni (1985): p independent processors communicating over k
// shared broadcast channels, k <= p, in synchronous cycles.
//
// During each cycle every processor may write one channel, read one channel,
// and then perform arbitrary local computation. A message written on a
// channel in a cycle is received exactly by the processors reading that
// channel in the same cycle; readers of an unwritten channel detect silence.
// Algorithms must be collision-free: if two processors write the same channel
// in the same cycle the computation fails, which the engine reports as an
// error.
//
// Each processor runs as a goroutine executing an ordinary Go function; the
// engine enforces lock-step cycle semantics with a barrier, resolves all
// channel traffic centrally and deterministically, and accounts for the two
// complexity measures of the model: total cycles and total broadcast
// messages.
package mcb

import "fmt"

// Message is the unit of broadcast communication. The model allows messages
// of O(log beta) bits, where beta is the largest parameter or datum in the
// computation; Message therefore carries a constant number of machine words:
// a small tag identifying the protocol step and three integer fields whose
// interpretation is up to the algorithm. The engine records the largest
// absolute field value observed so that the O(log beta) claim can be checked
// against the input magnitude.
type Message struct {
	Tag     uint8
	X, Y, Z int64
}

// Msg is shorthand for constructing a Message.
func Msg(tag uint8, x, y, z int64) Message { return Message{Tag: tag, X: x, Y: y, Z: z} }

// MsgX constructs a Message carrying a single value.
func MsgX(tag uint8, x int64) Message { return Message{Tag: tag, X: x} }

func (m Message) String() string {
	return fmt.Sprintf("{tag=%d x=%d y=%d z=%d}", m.Tag, m.X, m.Y, m.Z)
}

// maxAbs returns the largest absolute value among the payload fields,
// saturating at MaxInt64 for MinInt64 inputs.
func (m Message) maxAbs() int64 {
	max := func(a, b int64) int64 {
		if a < 0 {
			a = -a
		}
		if a < 0 { // MinInt64
			a = 1<<63 - 1
		}
		if a > b {
			return a
		}
		return b
	}
	v := max(m.X, 0)
	v = max(m.Y, v)
	return max(m.Z, v)
}
