package mcb

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"mcbnet/internal/trace"
)

// Engine-side regression nets for the cycle recorder: trace determinism
// across schedules and resolver paths, lossless JSONL round-trips, and
// event/Stats consistency. These mirror TestCrossPathDeterminism, which
// holds Report JSON to the same standard.

// traceJSONL runs detWorkload under cfg with a fresh recorder attached and
// returns the exported JSONL bytes plus the run's stats.
func traceJSONL(t *testing.T, cfg Config, p, k, cycles int) ([]byte, Stats) {
	t.Helper()
	rec := trace.New(p, k, 4*cycles)
	cfg.Recorder = rec
	res, err := RunUniform(cfg, detWorkload(p, k, cycles))
	if res == nil {
		t.Fatalf("run returned nil result (err=%v)", err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("ring overwrote %d events; size the test recorder up", rec.Dropped())
	}
	return buf.Bytes(), res.Stats
}

// TestTraceDeterminism holds recorded traces to byte-identical JSONL across
// GOMAXPROCS settings and repeated runs, for all three resolver situations:
// a recorder on an otherwise fast-eligible run, a recorder alongside the
// legacy full trace, and a recorder on a faulted run (drops, corruption,
// outage, crash-stop). The first two must also agree with each other — the
// legacy trace must not perturb the event stream.
func TestTraceDeterminism(t *testing.T) {
	const p, k, cycles = 9, 3, 96
	plan := &FaultPlan{
		Seed:        42,
		DropRate:    0.05,
		CorruptRate: 0.05,
		Checksum:    true,
		Outages:     []Outage{{Ch: 1, From: 20, To: 40}},
		Crashes:     []Crash{{Proc: 7, Cycle: 60}},
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var plainRef, faultRef []byte
	for _, gmp := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(gmp)
		for rep := 0; rep < 2; rep++ {
			tag := fmt.Sprintf("GOMAXPROCS=%d rep=%d", gmp, rep)

			plain, _ := traceJSONL(t, detConfig(p, k, nil, false), p, k, cycles)
			withLegacy, _ := traceJSONL(t, detConfig(p, k, nil, true), p, k, cycles)
			if plainRef == nil {
				plainRef = plain
			}
			if !bytes.Equal(plain, plainRef) {
				t.Fatalf("%s: recorded trace diverged from reference", tag)
			}
			if !bytes.Equal(withLegacy, plainRef) {
				t.Fatalf("%s: legacy Trace perturbed the recorded events", tag)
			}

			faulty, _ := traceJSONL(t, detConfig(p, k, plan.Clone(), false), p, k, cycles)
			if faultRef == nil {
				faultRef = faulty
			}
			if !bytes.Equal(faulty, faultRef) {
				t.Fatalf("%s: faulted trace diverged from reference", tag)
			}
		}
	}
	if bytes.Equal(plainRef, faultRef) {
		t.Fatal("fault plan left no mark on the trace; fault coverage lost")
	}
	// The scheduled crash-stop (proc 7 after 60 cycles) must appear as a
	// phase-less crash fault event sorted into its cycle.
	crashLine := fmt.Sprintf(`{"cycle":60,"kind":"fault","proc":7,"ch":-1,"phase":"","arg":%d}`, trace.FaultCrash)
	if !strings.Contains(string(faultRef), crashLine) {
		t.Fatalf("faulted trace lacks the crash event %s", crashLine)
	}
}

// TestTraceEngineRoundTrip is the engine-level golden round-trip: a recorded
// run exported to JSONL, re-parsed and re-exported must be byte-identical,
// and the event stream must agree with the engine's own Stats.
func TestTraceEngineRoundTrip(t *testing.T) {
	const p, k, cycles = 8, 2, 64
	first, stats := traceJSONL(t, detConfig(p, k, nil, false), p, k, cycles)
	events, phases, err := trace.ParseJSONL(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := trace.WriteJSONL(&second, events, phases); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second.Bytes()) {
		t.Fatal("re-export of a parsed engine trace is not byte-identical")
	}

	var writes int64
	perProc := make([]int64, p)
	for _, e := range events {
		if e.Kind == trace.KindWrite {
			writes++
			perProc[e.Proc]++
		}
	}
	if writes != stats.Messages {
		t.Fatalf("trace carries %d writes, Stats.Messages = %d", writes, stats.Messages)
	}
	for i, n := range perProc {
		if n != stats.PerProc[i] {
			t.Fatalf("proc %d: %d trace writes, Stats.PerProc = %d", i, n, stats.PerProc[i])
		}
	}
	// Per-phase summary cycles must match the engine's phase accounting.
	sums := trace.Summarize(events, phases, k)
	byName := map[string]trace.PhaseSummary{}
	for _, s := range sums {
		byName[s.Phase] = s
	}
	for _, ph := range stats.Phases {
		s, ok := byName[ph.Name]
		if !ok {
			t.Fatalf("phase %q missing from trace summary", ph.Name)
		}
		if s.Cycles != ph.Cycles || s.Writes != ph.Messages {
			t.Fatalf("phase %q: summary cycles/writes = %d/%d, Stats = %d/%d",
				ph.Name, s.Cycles, s.Writes, ph.Cycles, ph.Messages)
		}
	}
}

// TestTraceCollisionEvent: a collision-freedom violation must land in the
// trace as a collision event naming both writers, alongside the engine's
// CollisionError.
func TestTraceCollisionEvent(t *testing.T) {
	rec := trace.New(2, 1, 64)
	cfg := Config{P: 2, K: 1, Recorder: rec, StallTimeout: time.Minute}
	_, err := RunUniform(cfg, func(pr Node) {
		pr.Write(0, MsgX(1, int64(pr.ID())))
	})
	if err == nil {
		t.Fatal("colliding program did not fail")
	}
	var found bool
	for _, e := range rec.Events() {
		if e.Kind == trace.KindCollision && e.Ch == 0 && e.Proc == 1 && e.Arg == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no collision event recorded; events: %+v", rec.Events())
	}
}
