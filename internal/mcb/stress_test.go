package mcb

import (
	"runtime"
	"testing"
	"time"

	"mcbnet/internal/dist"
)

// TestRandomLockStepStress drives the engine with randomized but
// collision-free traffic and validates the trace against the model's
// per-cycle constraints.
func TestRandomLockStepStress(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		r := dist.NewRNG(uint64(1000 + trial))
		p := 2 + r.Intn(12)
		k := 1 + r.Intn(p)
		cycles := 50 + r.Intn(200)
		// Precompute a schedule: per cycle, a random subset of k' <= k
		// distinct writers on distinct channels.
		writers := make([][]int, cycles) // writers[c][ch] = proc or -1
		for c := range writers {
			writers[c] = make([]int, k)
			perm := r.Perm(p)
			nw := r.Intn(k + 1)
			for ch := 0; ch < k; ch++ {
				if ch < nw {
					writers[c][ch] = perm[ch]
				} else {
					writers[c][ch] = -1
				}
			}
		}
		cfgT := Config{P: p, K: k, Trace: true, StallTimeout: 10 * time.Second}
		res, err := RunUniform(cfgT, func(pr Node) {
			id := pr.ID()
			rl := dist.NewRNG(uint64(id))
			for c := 0; c < cycles; c++ {
				myCh := -1
				for ch, w := range writers[c] {
					if w == id {
						myCh = ch
					}
				}
				if myCh >= 0 {
					pr.WriteRead(myCh, MsgX(1, int64(c)), rl.Intn(k))
				} else {
					pr.Read(rl.Intn(k))
				}
			}
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Stats.Cycles != int64(cycles) {
			t.Fatalf("trial %d: cycles %d, want %d", trial, res.Stats.Cycles, cycles)
		}
		// Validate trace against the schedule.
		var wantMsgs int64
		for c := range writers {
			for _, w := range writers[c] {
				if w >= 0 {
					wantMsgs++
				}
			}
		}
		if res.Stats.Messages != wantMsgs {
			t.Fatalf("trial %d: messages %d, want %d", trial, res.Stats.Messages, wantMsgs)
		}
		for c, tr := range res.Trace.Cycles {
			for _, w := range tr.Writes {
				if writers[c][w.Ch] != w.Proc {
					t.Fatalf("trial %d cycle %d: writer %d on ch %d, want %d",
						trial, c, w.Proc, w.Ch, writers[c][w.Ch])
				}
			}
			for _, e := range tr.Reads {
				wrote := writers[c][e.Ch] >= 0
				if e.OK != wrote {
					t.Fatalf("trial %d cycle %d: read ok=%v but channel written=%v",
						trial, c, e.OK, wrote)
				}
			}
		}
	}
}

// TestNoGoroutineLeakAcrossRuns churns many engine runs and checks the
// goroutine count returns to baseline.
func TestNoGoroutineLeakAcrossRuns(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		_, err := RunUniform(Config{P: 8, K: 2}, func(pr Node) {
			for c := 0; c < 5; c++ {
				if pr.ID() == c%8 {
					pr.Write(0, MsgX(0, int64(c)))
				} else {
					pr.Read(0)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+5 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after 200 runs", base, runtime.NumGoroutine())
}

// TestManyProcessorsOneCycle exercises the barrier at larger p.
func TestManyProcessorsOneCycle(t *testing.T) {
	const p = 512
	res, err := RunUniform(Config{P: p, K: 16, StallTimeout: 20 * time.Second}, func(pr Node) {
		if pr.ID() < 16 {
			pr.Write(pr.ID(), MsgX(0, int64(pr.ID())))
		} else {
			m, ok := pr.Read(pr.ID() % 16)
			if !ok || m.X != int64(pr.ID()%16) {
				pr.Abortf("bad read")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 1 || res.Stats.Messages != 16 {
		t.Errorf("cycles=%d messages=%d", res.Stats.Cycles, res.Stats.Messages)
	}
}

// TestBarrierAbortStorm is the lost-wakeup regression for the barrier park
// protocol (engine.await / engine.advance / engine.abort), pinned to
// GOMAXPROCS=1 where busySpins == 0 and every waiter actually parks on
// barCond instead of catching the generation bump while spinning.
//
// The protocol's soundness argument (audited with this test as its witness):
// a waiter publishes parked.Add(1) under barMu and then re-checks the
// generation and the failed flag before calling Wait, while advance() bumps
// barGen before reading parked, and abort() sets failed before taking barMu
// to Broadcast. sync/atomic gives these operations a single total order, so
// either the releaser observes the waiter's parked increment (and broadcasts
// — for abort, the Broadcast serializes on barMu, which the waiter holds
// until Wait releases it, so the wakeup cannot slip between the waiter's
// re-check and its Wait), or the waiter's re-check observes the new
// generation / failed flag and never parks. A regression in that ordering
// makes a waiter sleep forever; this test turns it into a hang caught by the
// deadline below, hammering aborts from every protocol stage: mid-cycle
// Abortf, collisions detected by the resolver, and a laggard that forces the
// other processors past their yield budget into the parked state first.
func TestBarrierAbortStorm(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)

	const p, k = 8, 2
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 150; i++ {
			abortCycle := i % 7
			aborter := i % p
			laggard := (i + 3) % p
			collide := i%3 == 0 // every third run aborts via resolver-detected collision
			_, err := RunUniform(cfg(p, k), func(pr Node) {
				id := pr.ID()
				for c := 0; ; c++ {
					if id == laggard && c == abortCycle {
						// Let the other processors burn their yield budget
						// and park before the abort lands.
						time.Sleep(200 * time.Microsecond)
					}
					if c == abortCycle && id == aborter {
						if collide {
							pr.Write(0, MsgX(1, int64(id)))
							continue
						}
						pr.Abortf("storm %d", i)
					}
					if collide && c == abortCycle && id == (aborter+1)%p {
						pr.Write(0, MsgX(1, int64(id))) // second writer: collision
						continue
					}
					pr.Idle()
				}
			})
			if err == nil {
				t.Errorf("iteration %d: run succeeded, abort lost", i)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("abort storm wedged: a barrier wakeup was lost\n%s", buf)
	}
}

// TestAbortDuringSimulation covers the failure path of the simulation
// driver: a virtual program that aborts must surface as a host error.
func TestAbortDuringSimulation(t *testing.T) {
	_, err := SimulateUniform(Config{P: 2, K: 1, StallTimeout: 5 * time.Second}, 4, 2,
		func(v *VProc) {
			v.Idle()
			if v.ID() == 2 {
				v.Abortf("virtual invariant broken")
			}
			v.Idle()
		})
	if err == nil {
		t.Fatal("expected simulation abort")
	}
}
