package mcb

import (
	"testing"
	"time"

	"mcbnet/internal/trace"
)

// Steady-state allocation regression: a cycle with tracing off, no fault
// plan and no pending phase markers must not allocate at all, and phase
// markers must cost a bounded constant. Measured as the marginal allocation
// count between a short and a long run of the same workload, so one-time
// setup (engine, goroutines, Proc handles) cancels out.

// allocsForRun returns the average allocations of one engine run of the
// given cycle count, with markerEvery > 0 adding a coalescing phase marker
// on processor 0 every markerEvery cycles, and rec (optional, shared across
// runs) attaching the cycle recorder.
func allocsForRun(t *testing.T, p, k, cycles, markerEvery int, rec *trace.Recorder) float64 {
	t.Helper()
	cfg := Config{P: p, K: k, StallTimeout: time.Minute, Recorder: rec}
	return testing.AllocsPerRun(4, func() {
		res, err := RunUniform(cfg, func(pr Node) {
			id := pr.ID()
			if id < k {
				m := MsgX(1, int64(id))
				for i := 0; i < cycles; i++ {
					if markerEvery > 0 && id == 0 && i%markerEvery == 0 {
						pr.Phase("steady")
					}
					pr.WriteRead(id, m, id)
				}
				return
			}
			c := id % k
			for i := 0; i < cycles; i++ {
				pr.Read(c)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Cycles != int64(cycles) {
			t.Fatalf("ran %d cycles, want %d", res.Stats.Cycles, cycles)
		}
	})
}

// TestSteadyStateCycleZeroAllocs asserts that steady-state cycles are
// allocation-free: growing a run by 2000 cycles must not grow its
// allocation count.
func TestSteadyStateCycleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const p, k = 8, 2
	short := allocsForRun(t, p, k, 100, 0, nil)
	long := allocsForRun(t, p, k, 2100, 0, nil)
	perCycle := (long - short) / 2000
	if perCycle > 0.01 {
		t.Fatalf("steady-state cycle allocates: %.4f allocs/cycle (short run %.1f, long run %.1f)",
			perCycle, short, long)
	}
	// Idle-only cycles (the bare barrier, including the IdleN fast path)
	// must be allocation-free too.
	idle := func(cycles int) float64 {
		cfg := Config{P: p, K: k, StallTimeout: time.Minute}
		return testing.AllocsPerRun(4, func() {
			if _, err := RunUniform(cfg, func(pr Node) { pr.IdleN(cycles) }); err != nil {
				t.Fatal(err)
			}
		})
	}
	shortIdle := idle(100)
	longIdle := idle(2100)
	if perCycle := (longIdle - shortIdle) / 2000; perCycle > 0.01 {
		t.Fatalf("steady-state idle cycle allocates: %.4f allocs/cycle (short %.1f, long %.1f)",
			perCycle, shortIdle, longIdle)
	}
}

// TestPhaseMarkerAllocsBounded asserts that a pending phase marker costs a
// bounded constant number of allocations, independent of run length: the
// marker queue itself plus nothing hidden in the resolver.
func TestPhaseMarkerAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const p, k = 8, 2
	// 100 extra markers between the two runs (every 20 cycles over +2000).
	few := allocsForRun(t, p, k, 100, 20, nil)
	many := allocsForRun(t, p, k, 2100, 20, nil)
	markers := float64((2100 - 100) / 20)
	perMarker := (many - few) / markers
	if perMarker > 4 {
		t.Fatalf("phase marker costs %.2f allocs, want <= 4 (few %.1f, many %.1f)", perMarker, few, many)
	}
}

// TestTracingEnabledCycleAllocsAmortizedO1 asserts the recorder's overhead
// contract: with a cycle recorder attached (and its rings preallocated once,
// outside the measured runs), steady-state cycles still allocate nothing —
// every event lands in the rings, which wrap in place rather than grow.
func TestTracingEnabledCycleAllocsAmortizedO1(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const p, k = 8, 2
	// Rings deliberately smaller than the long run's event volume, so the
	// measurement covers wrap-around reuse, not just the pre-wrap fill.
	rec := trace.New(p, k, 1024)
	short := allocsForRun(t, p, k, 100, 0, rec)
	long := allocsForRun(t, p, k, 2100, 0, rec)
	perCycle := (long - short) / 2000
	if perCycle > 0.01 {
		t.Fatalf("tracing-enabled cycle allocates: %.4f allocs/cycle (short run %.1f, long run %.1f)",
			perCycle, short, long)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder captured nothing; the guard measured the wrong path")
	}
}
