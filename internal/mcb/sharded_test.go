package mcb

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Tests of the sharded execution engine's own machinery: mode selection,
// failure-path unwinding (no goroutine leaks, no wedged barriers), the IdleN
// batch replay, large-p operation and the zero-alloc steady state. The
// cross-engine Report equivalence lives in determinism_test.go.

func shardedCfg(p, k int) Config {
	c := cfg(p, k)
	c.Engine = EngineSharded
	return c
}

func TestEngineModeResolution(t *testing.T) {
	cases := []struct {
		cfg  Config
		want EngineMode
	}{
		{Config{P: 4, K: 1}, EngineGoroutine},
		{Config{P: autoShardP, K: 1}, EngineSharded},
		{Config{P: 4, K: 1, Engine: EngineSharded}, EngineSharded},
		{Config{P: autoShardP, K: 1, Engine: EngineGoroutine}, EngineGoroutine},
	}
	for _, c := range cases {
		if got := c.cfg.engineMode(); got != c.want {
			t.Errorf("engineMode(P=%d, Engine=%q) = %q, want %q", c.cfg.P, c.cfg.Engine, got, c.want)
		}
	}
	bad := Config{P: 2, K: 1, Engine: EngineMode("threads")}
	if err := bad.validate(); err == nil {
		t.Error("validate accepted an unknown engine mode")
	}
}

// TestShardedRelayTraffic runs real collision-free traffic (every processor
// writes in turn, everyone reads) through the sharded engine and checks the
// model accounting, at worker counts both below and above the processor count.
func TestShardedRelayTraffic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gmp := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(gmp)
		const p, k, cycles = 6, 2, 30
		res, err := Run(shardedCfg(p, k), relayPrograms(p, k, cycles, nil))
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", gmp, err)
		}
		if res.Stats.Cycles != cycles {
			t.Fatalf("GOMAXPROCS=%d: Cycles = %d, want %d", gmp, res.Stats.Cycles, cycles)
		}
		if res.Stats.Messages != cycles {
			t.Fatalf("GOMAXPROCS=%d: Messages = %d, want %d (one writer per cycle)", gmp, res.Stats.Messages, cycles)
		}
	}
}

// TestShardedIdleNBatch pins the IdleN batch replay to the per-cycle
// semantics: ragged idle stretches across processors must produce exactly the
// same cycle count as the goroutine engine, and a mid-stretch crash-stop must
// still fire on its exact cycle.
func TestShardedIdleNBatch(t *testing.T) {
	prog := func(pr Node) {
		id := pr.ID()
		pr.IdleN(5 + id*3) // ragged: batches of different lengths interleave
		if id == 0 {
			pr.Write(0, MsgX(1, 42))
		} else {
			pr.Read(0)
		}
		pr.IdleN(4)
	}
	g, err := RunUniform(cfg(4, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunUniform(shardedCfg(4, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.Cycles != s.Stats.Cycles || g.Stats.Messages != s.Stats.Messages {
		t.Fatalf("sharded (cycles=%d msgs=%d) != goroutine (cycles=%d msgs=%d)",
			s.Stats.Cycles, s.Stats.Messages, g.Stats.Cycles, g.Stats.Messages)
	}

	// Crash inside the idle stretch: IdleN must fall back to per-cycle issue
	// so the processor completes exactly 7 operations.
	c := shardedCfg(3, 1)
	c.Faults = &FaultPlan{Seed: 9, Crashes: []Crash{{Proc: 1, Cycle: 7}}}
	res, err := RunUniform(c, func(pr Node) { pr.IdleN(20) })
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want CrashError", err)
	}
	if len(res.Stats.Faults.Crashes) != 1 || res.Stats.Faults.Crashes[0].Cycle != 7 {
		t.Fatalf("crash events = %+v, want one crash after cycle 7", res.Stats.Faults.Crashes)
	}
}

// TestShardedLargeP exercises the p >> GOMAXPROCS regime the engine exists
// for: 4096 processors, real traffic, a ragged IdleN tail.
func TestShardedLargeP(t *testing.T) {
	const p, k, cycles = 4096, 8, 4
	res, err := RunUniform(shardedCfg(p, k), func(pr Node) {
		id := pr.ID()
		for c := 0; c < cycles; c++ {
			if id == c*k/cycles { // unique writer per (cycle, channel 0)
				pr.Write(0, MsgX(1, int64(id)))
			} else {
				pr.Read(0)
			}
		}
		pr.IdleN(id % 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != cycles+2 || res.Stats.Messages != cycles {
		t.Fatalf("Cycles=%d Messages=%d, want %d and %d", res.Stats.Cycles, res.Stats.Messages, cycles+2, cycles)
	}
}

// TestShardedNoLeakAfterAborts drives every abort flavour through the sharded
// engine and checks that workers, processors and the run itself all drain:
// a failure while workers sleep on their submission tokens and processors
// park on their gates must wake everybody.
func TestShardedNoLeakAfterAborts(t *testing.T) {
	base := runtime.NumGoroutine()

	for i := 0; i < 10; i++ {
		// Collision.
		_, err := RunUniform(shardedCfg(4, 2), func(pr Node) {
			pr.Write(0, MsgX(1, int64(pr.ID())))
			pr.IdleN(3)
		})
		var colErr *CollisionError
		if !errors.As(err, &colErr) {
			t.Fatalf("iteration %d: got %v, want CollisionError", i, err)
		}

		// Abortf, with the other processors parked mid-IdleN-batch.
		_, err = RunUniform(shardedCfg(4, 2), func(pr Node) {
			pr.Idle()
			if pr.ID() == 1 {
				pr.Idle()
				pr.Abortf("deliberate")
			}
			pr.IdleN(40)
		})
		var ae *AbortError
		if !errors.As(err, &ae) {
			t.Fatalf("iteration %d: got %v, want AbortError", i, err)
		}
		if ae.Proc != 1 {
			t.Fatalf("iteration %d: AbortError.Proc = %d, want 1", i, ae.Proc)
		}

		// Crash-stop of a whole shard: every processor a worker owns exits.
		c := shardedCfg(4, 2)
		c.Faults = &FaultPlan{Seed: uint64(i + 1), Crashes: []Crash{{Proc: 2, Cycle: 3}}}
		_, err = Run(c, relayPrograms(4, 2, 10, nil))
		var ce *CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("iteration %d: got %v, want CrashError", i, err)
		}

		// MaxCycles budget, firing while every processor sits in one big
		// batch (the resolver aborts from inside a worker).
		c = shardedCfg(4, 2)
		c.MaxCycles = 16
		_, err = RunUniform(c, func(pr Node) { pr.IdleN(1000) })
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("iteration %d: got %v, want BudgetError", i, err)
		}
	}
	waitGoroutines(t, base, 5*time.Second)
}

// TestShardedStallWatchdog: a processor that stops issuing ops leaves its
// worker asleep on the submission token; the stall watchdog must still fire
// and the run must drain.
func TestShardedStallWatchdog(t *testing.T) {
	base := runtime.NumGoroutine()
	c := shardedCfg(3, 1)
	c.StallTimeout = 50 * time.Millisecond
	progs := []func(Node){
		func(pr Node) { pr.IdleN(8) },
		func(pr Node) { pr.IdleN(8) },
		func(pr Node) {
			pr.Idle()
			time.Sleep(300 * time.Millisecond)
			pr.IdleN(7)
		},
	}
	_, err := Run(c, progs)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}
	waitGoroutines(t, base, 3*time.Second)
}

// TestShardedSteadyStateZeroAllocs is the sharded-engine variant of
// TestSteadyStateCycleZeroAllocs: worker rounds, gate handoffs and the batched
// resolver must all be allocation-free in the steady state.
func TestShardedSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const p, k = 8, 2
	run := func(cycles int, idleOnly bool) float64 {
		c := Config{P: p, K: k, StallTimeout: time.Minute, Engine: EngineSharded}
		return testingAllocsPerRun(t, c, cycles, idleOnly)
	}
	short := run(100, false)
	long := run(2100, false)
	if perCycle := (long - short) / 2000; perCycle > 0.01 {
		t.Fatalf("sharded steady-state cycle allocates: %.4f allocs/cycle (short %.1f, long %.1f)",
			perCycle, short, long)
	}
	shortIdle := run(100, true)
	longIdle := run(2100, true)
	if perCycle := (longIdle - shortIdle) / 2000; perCycle > 0.01 {
		t.Fatalf("sharded idle cycle allocates: %.4f allocs/cycle (short %.1f, long %.1f)",
			perCycle, shortIdle, longIdle)
	}
}

// testingAllocsPerRun measures the average allocations of one run of the
// write/read (or idle-only) steady-state workload under the given config.
func testingAllocsPerRun(t *testing.T, c Config, cycles int, idleOnly bool) float64 {
	t.Helper()
	return testing.AllocsPerRun(4, func() {
		var res *Result
		var err error
		if idleOnly {
			res, err = RunUniform(c, func(pr Node) { pr.IdleN(cycles) })
		} else {
			res, err = RunUniform(c, func(pr Node) {
				id := pr.ID()
				if id < c.K {
					m := MsgX(1, int64(id))
					for i := 0; i < cycles; i++ {
						pr.WriteRead(id, m, id)
					}
					return
				}
				ch := id % c.K
				for i := 0; i < cycles; i++ {
					pr.Read(ch)
				}
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !idleOnly && res.Stats.Cycles != int64(cycles) {
			t.Fatalf("ran %d cycles, want %d", res.Stats.Cycles, cycles)
		}
	})
}

// TestShardedPanicUnwinds: a plain panic in a program under the sharded
// engine surfaces as an engine error and the run drains (the panicking
// processor exits the protocol; the survivors finish).
func TestShardedPanicUnwinds(t *testing.T) {
	base := runtime.NumGoroutine()
	_, err := RunUniform(shardedCfg(4, 2), func(pr Node) {
		pr.Idle()
		if pr.ID() == 2 {
			panic(fmt.Sprintf("boom from %d", pr.ID()))
		}
		pr.IdleN(3)
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v, want an abort wrapping ErrAborted", err)
	}
	waitGoroutines(t, base, 3*time.Second)
}
