package mcb

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Tests of the sharded execution engine's own machinery: mode selection,
// failure-path unwinding (no goroutine leaks, no wedged barriers), the IdleN
// batch replay, large-p operation and the zero-alloc steady state. The
// cross-engine Report equivalence lives in determinism_test.go.

func shardedCfg(p, k int) Config {
	c := cfg(p, k)
	c.Engine = EngineSharded
	return c
}

func TestEngineModeResolution(t *testing.T) {
	cases := []struct {
		cfg  Config
		want EngineMode
	}{
		{Config{P: 4, K: 1}, EngineGoroutine},
		{Config{P: autoShardP, K: 1}, EngineSharded},
		{Config{P: 4, K: 1, Engine: EngineSharded}, EngineSharded},
		{Config{P: autoShardP, K: 1, Engine: EngineGoroutine}, EngineGoroutine},
	}
	for _, c := range cases {
		if got := c.cfg.engineMode(); got != c.want {
			t.Errorf("engineMode(P=%d, Engine=%q) = %q, want %q", c.cfg.P, c.cfg.Engine, got, c.want)
		}
	}
	bad := Config{P: 2, K: 1, Engine: EngineMode("threads")}
	if err := bad.validate(); err == nil {
		t.Error("validate accepted an unknown engine mode")
	}
}

// TestShardedRelayTraffic runs real collision-free traffic (every processor
// writes in turn, everyone reads) through the sharded engine and checks the
// model accounting, at worker counts both below and above the processor count.
func TestShardedRelayTraffic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gmp := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(gmp)
		const p, k, cycles = 6, 2, 30
		res, err := Run(shardedCfg(p, k), relayPrograms(p, k, cycles, nil))
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", gmp, err)
		}
		if res.Stats.Cycles != cycles {
			t.Fatalf("GOMAXPROCS=%d: Cycles = %d, want %d", gmp, res.Stats.Cycles, cycles)
		}
		if res.Stats.Messages != cycles {
			t.Fatalf("GOMAXPROCS=%d: Messages = %d, want %d (one writer per cycle)", gmp, res.Stats.Messages, cycles)
		}
	}
}

// TestShardedIdleNBatch pins the IdleN batch replay to the per-cycle
// semantics: ragged idle stretches across processors must produce exactly the
// same cycle count as the goroutine engine, and a mid-stretch crash-stop must
// still fire on its exact cycle.
func TestShardedIdleNBatch(t *testing.T) {
	prog := func(pr Node) {
		id := pr.ID()
		pr.IdleN(5 + id*3) // ragged: batches of different lengths interleave
		if id == 0 {
			pr.Write(0, MsgX(1, 42))
		} else {
			pr.Read(0)
		}
		pr.IdleN(4)
	}
	g, err := RunUniform(cfg(4, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunUniform(shardedCfg(4, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.Cycles != s.Stats.Cycles || g.Stats.Messages != s.Stats.Messages {
		t.Fatalf("sharded (cycles=%d msgs=%d) != goroutine (cycles=%d msgs=%d)",
			s.Stats.Cycles, s.Stats.Messages, g.Stats.Cycles, g.Stats.Messages)
	}

	// Crash inside the idle stretch: IdleN must fall back to per-cycle issue
	// so the processor completes exactly 7 operations.
	c := shardedCfg(3, 1)
	c.Faults = &FaultPlan{Seed: 9, Crashes: []Crash{{Proc: 1, Cycle: 7}}}
	res, err := RunUniform(c, func(pr Node) { pr.IdleN(20) })
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want CrashError", err)
	}
	if len(res.Stats.Faults.Crashes) != 1 || res.Stats.Faults.Crashes[0].Cycle != 7 {
		t.Fatalf("crash events = %+v, want one crash after cycle 7", res.Stats.Faults.Crashes)
	}
}

// TestShardedLargeP exercises the p >> GOMAXPROCS regime the engine exists
// for: 4096 processors, real traffic, a ragged IdleN tail.
func TestShardedLargeP(t *testing.T) {
	const p, k, cycles = 4096, 8, 4
	res, err := RunUniform(shardedCfg(p, k), func(pr Node) {
		id := pr.ID()
		for c := 0; c < cycles; c++ {
			if id == c*k/cycles { // unique writer per (cycle, channel 0)
				pr.Write(0, MsgX(1, int64(id)))
			} else {
				pr.Read(0)
			}
		}
		pr.IdleN(id % 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != cycles+2 || res.Stats.Messages != cycles {
		t.Fatalf("Cycles=%d Messages=%d, want %d and %d", res.Stats.Cycles, res.Stats.Messages, cycles+2, cycles)
	}
}

// TestShardedNoLeakAfterAborts drives every abort flavour through the sharded
// engine and checks that workers, processors and the run itself all drain:
// a failure while workers sleep on their submission tokens and processors
// park on their gates must wake everybody.
func TestShardedNoLeakAfterAborts(t *testing.T) {
	base := runtime.NumGoroutine()

	for i := 0; i < 10; i++ {
		// Collision.
		_, err := RunUniform(shardedCfg(4, 2), func(pr Node) {
			pr.Write(0, MsgX(1, int64(pr.ID())))
			pr.IdleN(3)
		})
		var colErr *CollisionError
		if !errors.As(err, &colErr) {
			t.Fatalf("iteration %d: got %v, want CollisionError", i, err)
		}

		// Abortf, with the other processors parked mid-IdleN-batch.
		_, err = RunUniform(shardedCfg(4, 2), func(pr Node) {
			pr.Idle()
			if pr.ID() == 1 {
				pr.Idle()
				pr.Abortf("deliberate")
			}
			pr.IdleN(40)
		})
		var ae *AbortError
		if !errors.As(err, &ae) {
			t.Fatalf("iteration %d: got %v, want AbortError", i, err)
		}
		if ae.Proc != 1 {
			t.Fatalf("iteration %d: AbortError.Proc = %d, want 1", i, ae.Proc)
		}

		// Crash-stop of a whole shard: every processor a worker owns exits.
		c := shardedCfg(4, 2)
		c.Faults = &FaultPlan{Seed: uint64(i + 1), Crashes: []Crash{{Proc: 2, Cycle: 3}}}
		_, err = Run(c, relayPrograms(4, 2, 10, nil))
		var ce *CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("iteration %d: got %v, want CrashError", i, err)
		}

		// MaxCycles budget, firing while every processor sits in one big
		// batch (the resolver aborts from inside a worker).
		c = shardedCfg(4, 2)
		c.MaxCycles = 16
		_, err = RunUniform(c, func(pr Node) { pr.IdleN(1000) })
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("iteration %d: got %v, want BudgetError", i, err)
		}
	}
	waitGoroutines(t, base, 5*time.Second)
}

// TestShardedStallWatchdog: a processor that stops issuing ops leaves its
// worker asleep on the submission token; the stall watchdog must still fire
// and the run must drain.
func TestShardedStallWatchdog(t *testing.T) {
	base := runtime.NumGoroutine()
	c := shardedCfg(3, 1)
	c.StallTimeout = 50 * time.Millisecond
	progs := []func(Node){
		func(pr Node) { pr.IdleN(8) },
		func(pr Node) { pr.IdleN(8) },
		func(pr Node) {
			pr.Idle()
			time.Sleep(300 * time.Millisecond)
			pr.IdleN(7)
		},
	}
	_, err := Run(c, progs)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}
	waitGoroutines(t, base, 3*time.Second)
}

// TestShardedSteadyStateZeroAllocs is the sharded-engine variant of
// TestSteadyStateCycleZeroAllocs: worker rounds, gate handoffs and the batched
// resolver must all be allocation-free in the steady state.
func TestShardedSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const p, k = 8, 2
	run := func(cycles int, idleOnly bool) float64 {
		c := Config{P: p, K: k, StallTimeout: time.Minute, Engine: EngineSharded}
		return testingAllocsPerRun(t, c, cycles, idleOnly)
	}
	short := run(100, false)
	long := run(2100, false)
	if perCycle := (long - short) / 2000; perCycle > 0.01 {
		t.Fatalf("sharded steady-state cycle allocates: %.4f allocs/cycle (short %.1f, long %.1f)",
			perCycle, short, long)
	}
	shortIdle := run(100, true)
	longIdle := run(2100, true)
	if perCycle := (longIdle - shortIdle) / 2000; perCycle > 0.01 {
		t.Fatalf("sharded idle cycle allocates: %.4f allocs/cycle (short %.1f, long %.1f)",
			perCycle, shortIdle, longIdle)
	}
}

// testingAllocsPerRun measures the average allocations of one run of the
// write/read (or idle-only) steady-state workload under the given config.
func testingAllocsPerRun(t *testing.T, c Config, cycles int, idleOnly bool) float64 {
	t.Helper()
	return testing.AllocsPerRun(4, func() {
		var res *Result
		var err error
		if idleOnly {
			res, err = RunUniform(c, func(pr Node) { pr.IdleN(cycles) })
		} else {
			res, err = RunUniform(c, func(pr Node) {
				id := pr.ID()
				if id < c.K {
					m := MsgX(1, int64(id))
					for i := 0; i < cycles; i++ {
						pr.WriteRead(id, m, id)
					}
					return
				}
				ch := id % c.K
				for i := 0; i < cycles; i++ {
					pr.Read(ch)
				}
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !idleOnly && res.Stats.Cycles != int64(cycles) {
			t.Fatalf("ran %d cycles, want %d", res.Stats.Cycles, cycles)
		}
	})
}

// shardedVsGoroutineReport runs prog under c on both engines and fails unless
// the two canonical Reports (with any run error folded into Extra) are
// byte-identical.
func shardedVsGoroutineReport(t *testing.T, tag string, c Config, prog func(Node)) {
	t.Helper()
	var ref []byte
	for _, mode := range []EngineMode{EngineGoroutine, EngineSharded} {
		rc := c
		rc.Engine = mode
		if rc.Faults != nil {
			rc.Faults = rc.Faults.Clone()
		}
		res, err := RunUniform(rc, prog)
		if res == nil {
			t.Fatalf("%s engine=%s: nil result (err=%v)", tag, mode, err)
		}
		rep := NewReport(rc, &res.Stats)
		if err != nil {
			rep.Extra = map[string]any{"error": err.Error()}
		}
		b, jerr := rep.JSON()
		if jerr != nil {
			t.Fatal(jerr)
		}
		if ref == nil {
			ref = b
		} else if !bytes.Equal(b, ref) {
			t.Fatalf("%s: engine reports diverge:\n%s\n--- want ---\n%s", tag, b, ref)
		}
	}
}

// TestShardedCrashStopMidCycle crash-stops processors in the middle of a
// sparse segment — once while the victim is the sole active writer, once
// while it sleeps inside an IdleN batch — across worker counts, and holds
// the sharded engine's Report to the goroutine engine's byte for byte.
func TestShardedCrashStopMidCycle(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	const p, k, segLen = 8, 2, 8
	prog := func(pr Node) {
		id := pr.ID()
		for seg := 0; seg < 6; seg++ {
			if seg%p == id {
				for i := 0; i < segLen; i++ {
					pr.WriteRead(0, MsgX(1, int64(seg*segLen+i)), 0)
				}
			} else {
				pr.IdleN(segLen)
			}
		}
	}
	crashes := []Crash{
		{Proc: 2, Cycle: 20}, // mid-segment 2: proc 2 is the active writer
		{Proc: 6, Cycle: 35}, // mid-segment 4: proc 6 is a mid-batch sleeper
	}
	for _, gmp := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(gmp)
		for _, cr := range crashes {
			c := cfg(p, k)
			c.Faults = &FaultPlan{Seed: 3, Crashes: []Crash{cr}}
			shardedVsGoroutineReport(t, fmt.Sprintf("GOMAXPROCS=%d crash=%+v", gmp, cr), c, prog)
		}
	}
}

// TestShardedAbortDuringScatter aborts the run on a cycle where every other
// processor has a read result in flight: the failure races the workers'
// post-release scatter stage, which must neither wedge the barrier nor leak.
// The aborting processor's attribution must survive the race.
func TestShardedAbortDuringScatter(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	base := runtime.NumGoroutine()
	const p, k = 32, 2
	for _, gmp := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(gmp)
		for abortCycle := 1; abortCycle <= 5; abortCycle++ {
			_, err := RunUniform(shardedCfg(p, k), func(pr Node) {
				id := pr.ID()
				for c := 0; c < 40; c++ {
					switch {
					case id == 0:
						pr.WriteRead(0, MsgX(1, int64(c)), 0)
					case id == 9 && c == abortCycle:
						pr.Abortf("scatter abort at cycle %d", c)
					default:
						pr.Read(0)
					}
				}
			})
			var ae *AbortError
			if !errors.As(err, &ae) {
				t.Fatalf("GOMAXPROCS=%d abortCycle=%d: got %v, want AbortError", gmp, abortCycle, err)
			}
			if ae.Proc != 9 {
				t.Fatalf("GOMAXPROCS=%d abortCycle=%d: AbortError.Proc = %d, want 9", gmp, abortCycle, ae.Proc)
			}
		}
	}
	waitGoroutines(t, base, 5*time.Second)
}

// TestShardedIdleNBoundaries pins the sleeper wake arithmetic at its edges:
// length-1 batches (the announcement round is the whole batch), back-to-back
// batches, a batch whose wake cycle is the processor's last (straight into
// exit), and phase markers attached to batch announcements. Both engines
// must produce byte-identical Reports at every worker count.
func TestShardedIdleNBoundaries(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	prog := func(pr Node) {
		id := pr.ID()
		pr.Phase("warm")
		pr.IdleN(1) // announcement round is the whole batch
		pr.IdleN(1) // back-to-back batches
		pr.IdleN(3)
		if id == 0 {
			pr.Write(0, MsgX(1, 7))
		} else {
			pr.Read(0)
		}
		pr.Phase("tail") // attached to the next batch's announcement
		pr.IdleN(id + 1) // ragged: each processor wakes straight into exit
	}
	for _, gmp := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(gmp)
		shardedVsGoroutineReport(t, fmt.Sprintf("GOMAXPROCS=%d", gmp), cfg(5, 1), prog)
	}
}

// TestShardedPanicUnwinds: a plain panic in a program under the sharded
// engine surfaces as an engine error and the run drains (the panicking
// processor exits the protocol; the survivors finish).
func TestShardedPanicUnwinds(t *testing.T) {
	base := runtime.NumGoroutine()
	_, err := RunUniform(shardedCfg(4, 2), func(pr Node) {
		pr.Idle()
		if pr.ID() == 2 {
			panic(fmt.Sprintf("boom from %d", pr.ID()))
		}
		pr.IdleN(3)
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v, want an abort wrapping ErrAborted", err)
	}
	waitGoroutines(t, base, 3*time.Second)
}
