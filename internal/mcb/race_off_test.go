//go:build !race

package mcb

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are skipped under -race because instrumentation perturbs the
// allocator.
const raceEnabled = false
