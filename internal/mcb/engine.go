package mcb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"mcbnet/internal/trace"
)

// EngineMode selects the execution engine of a run. Both engines implement
// the same lock-step cycle semantics and produce byte-identical Reports for
// identical (Config, FaultPlan, programs), so the choice is purely a
// performance decision; the cross-engine determinism tests hold them to it.
type EngineMode string

const (
	// EngineAuto (the zero value) picks EngineSharded for large networks
	// (P >= autoShardP) and EngineGoroutine otherwise.
	EngineAuto EngineMode = ""
	// EngineGoroutine binds one goroutine per processor; every processor
	// arrives at a shared sense-reversing barrier each cycle and the last
	// arriver resolves. Fastest for small p, where the spin window catches
	// the resolver finishing on another core; degrades superlinearly as p
	// grows (O(p) parked goroutines woken per cycle).
	EngineGoroutine EngineMode = "goroutine"
	// EngineSharded coordinates the cycle through M ~ GOMAXPROCS workers,
	// each owning a contiguous shard of p/M processors. Resolution is a
	// two-stage parallel protocol: each worker pre-aggregates its shard's
	// submissions before arriving at the O(M) worker barrier (stage 1), the
	// last arriver merges the M shard aggregates in processor-id order and
	// commits (stage 2), and after release every worker scatters read
	// results to its own shard in parallel (stage 3). Processors inside
	// IdleN batches sleep off the workers' active lists, so idle-heavy
	// cycles cost O(active), not O(p). Built for p in the tens of thousands
	// (see DESIGN.md "The sharded engine").
	EngineSharded EngineMode = "sharded"
)

// autoShardP is the processor count at which EngineAuto switches to the
// sharded engine: below it the goroutine engine's spin window wins, above it
// the O(p) barrier wake-up dominates everything else.
const autoShardP = 1024

// engineMode resolves EngineAuto to a concrete engine.
func (c Config) engineMode() EngineMode {
	if c.Engine == EngineAuto {
		if c.P >= autoShardP {
			return EngineSharded
		}
		return EngineGoroutine
	}
	return c.Engine
}

// Config describes an MCB(p, k) network and run options.
type Config struct {
	// P is the number of processors (p >= 1).
	P int
	// K is the number of shared broadcast channels (1 <= k <= p).
	K int
	// Engine selects the execution engine: EngineGoroutine (one goroutine
	// per processor), EngineSharded (M ~ GOMAXPROCS workers stepping p/M
	// virtual processors each), or EngineAuto (the default: sharded for
	// P >= 1024). Reports are byte-identical across engines.
	Engine EngineMode
	// Trace enables full per-cycle traffic recording (expensive; tests only).
	Trace bool
	// MaxCycles aborts the run once this many cycles have elapsed: the run
	// executes exactly MaxCycles cycles, then fails before delivering the
	// results of the last one. Zero means no limit.
	MaxCycles int64
	// StallTimeout aborts the run if no cycle completes for this long,
	// which indicates a processor program that stopped issuing cycle
	// operations (a lock-step protocol bug). Zero means 30 seconds.
	StallTimeout time.Duration
	// MaxAbs, when positive, enforces the model's O(log beta) message-size
	// rule at runtime: any broadcast payload field whose absolute value
	// exceeds this budget aborts the run. Zero disables the check.
	MaxAbs int64
	// Faults enables deterministic fault injection (see FaultPlan). Nil
	// injects nothing.
	Faults *FaultPlan
	// Recorder, when non-nil, streams fixed-size binary cycle events
	// (writes, reads, silences, idles, collisions, faults, phase switches)
	// into the recorder's preallocated per-processor ring buffers for later
	// export (JSONL, Perfetto; see internal/trace). Unlike Trace it never
	// allocates per event and never grows: a full ring overwrites its
	// oldest events. The recorder must be sized for at least P processors
	// and must not be shared between concurrent runs; consecutive runs
	// (e.g. retry attempts) may share one, appending their events.
	Recorder *trace.Recorder
	// ProfileLabels attaches pprof goroutine labels (processor id, current
	// accounting phase) to processor goroutines, so CPU profiles attribute
	// samples to algorithm phases (Columnsort stages, selection filter
	// rounds). Off by default; labeling costs a few allocations per phase
	// switch.
	ProfileLabels bool
	// AbortGrace bounds how long Run waits for processor goroutines to
	// unwind after an abort before giving up and returning a nil Result
	// (the stragglers' goroutines leak; see Run). Zero means 2 seconds.
	AbortGrace time.Duration
	// AbortC, when non-nil, is closed as soon as the run fails, before Run
	// returns. Programs that block on sources other than the engine (e.g. a
	// transport relay waiting for a remote processor's next op) select on it
	// to unwind promptly instead of wedging the abort grace period. It is
	// never closed on a successful run.
	AbortC chan struct{}
}

func (c Config) validate() error {
	if c.P < 1 {
		return fmt.Errorf("mcb: P must be >= 1, got %d", c.P)
	}
	if c.K < 1 || c.K > c.P {
		return fmt.Errorf("mcb: K must satisfy 1 <= K <= P, got K=%d P=%d", c.K, c.P)
	}
	if c.Recorder != nil && c.Recorder.Procs() < c.P {
		return fmt.Errorf("mcb: recorder sized for %d processors, network has %d", c.Recorder.Procs(), c.P)
	}
	switch c.Engine {
	case EngineAuto, EngineGoroutine, EngineSharded:
	default:
		return fmt.Errorf("mcb: unknown engine mode %q (want %q, %q or auto)", c.Engine, EngineGoroutine, EngineSharded)
	}
	return nil
}

// fastEligible reports whether a run can take the specialized fast resolver:
// no active fault plan, no full trace, no cycle recorder. Kept as a function
// so the fast-path selection test pins the exact condition.
func fastEligible(cfg Config, fs *faultState) bool {
	return fs == nil && !cfg.Trace && cfg.Recorder == nil
}

// CollisionError reports a violation of the collision-freedom requirement:
// two processors wrote the same channel in the same cycle. Per the model,
// the computation fails.
type CollisionError struct {
	Cycle        int64
	Ch           int
	ProcA, ProcB int
}

func (e *CollisionError) Error() string {
	return fmt.Sprintf("mcb: collision on channel %d at cycle %d (processors %d and %d)",
		e.Ch, e.Cycle, e.ProcA, e.ProcB)
}

// ErrAborted is returned when the run was aborted (stall, cycle limit, or
// a processor called Abortf); errors.Is works against it.
var ErrAborted = errors.New("mcb: run aborted")

// Result is the outcome of a completed run.
type Result struct {
	Stats Stats
	Trace *Trace // nil unless Config.Trace
}

type opKind uint8

const (
	opIdle opKind = iota
	opWrite
	opRead
	opWriteRead
	opExit
)

// cycleOp is one processor's submission for one cycle. It is kept slim (no
// pointers in the common case) so a padded slot fits one cache line; the
// rarely-used phase markers travel in engine.phaseSlots, flagged here by
// hasPhases.
type cycleOp struct {
	kind      opKind
	hasPhases bool // phase markers for this op are in engine.phaseSlots
	writeCh   int32
	readCh    int32
	msg       Message
}

type readResult struct {
	msg Message
	ok  bool
}

// cacheLine is the padding granularity for the per-processor hot arrays.
// 64 bytes matches amd64 and most arm64 parts; on machines with larger
// effective lines the padding merely halves, it never breaks correctness.
const cacheLine = 64

// paddedOp, paddedResult and paddedMirror pad their payload to a cache-line
// multiple so that neighbouring processors' slot writes (each processor
// stores only its own index; the resolver reads them all) never contend on
// a shared line (false sharing).
type paddedOp struct {
	op cycleOp
	_  [(cacheLine - unsafe.Sizeof(cycleOp{})%cacheLine) % cacheLine]byte
}

type paddedResult struct {
	r readResult
	_ [(cacheLine - unsafe.Sizeof(readResult{})%cacheLine) % cacheLine]byte
}

type paddedMirror struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// abortPanic unwinds processor goroutines when the engine has failed.
type abortPanic struct{ err error }

// crashPanic unwinds a single processor goroutine when its scheduled
// crash-stop fires; the run itself keeps going.
type crashPanic struct{}

// paddedInt64 is a cache-line-isolated signed atomic, used for the per-worker
// outstanding-submission countdowns of the sharded engine.
type paddedInt64 struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

type engine struct {
	cfg  Config
	fast bool       // no faults and no trace: resolve takes the specialized path
	mode EngineMode // resolved execution mode, never EngineAuto

	// Sharded-engine state (nil / zero in goroutine mode). Processor id i is
	// owned by worker i/shardChunk; workers rendezvous at the arrived/expected
	// barrier in place of the processors. workerLive and activeWorkers are
	// resolver-owned (synchronized by the barrier like live/liveN).
	shardChunk    int
	shards        []shardWorker
	gates         []chan struct{} // per-processor wake gates, cap 1
	idleBatch     []paddedMirror  // per-processor pending IdleN batch length
	shardPend     []paddedInt64   // per-worker outstanding submissions this cycle
	workerWake    []chan struct{} // per-worker "all submissions in" tokens, cap 1
	workerLive    []int           // per-worker live processor count
	activeWorkers int             // workers with at least one live processor

	slots      []paddedOp     // per-processor cycle submissions
	results    []paddedResult // per-processor read results
	phaseSlots [][]string     // per-processor pending phase markers (cold)
	live       []bool
	liveN      int

	// channel registers for the cycle being resolved
	chWriter []int // writer proc id per channel, -1 if none
	chMsg    []Message
	chOutage []bool // per-channel outage flag, recomputed once per cycle

	// chTouched lists the channels written this cycle (fast sharded path
	// only): resolveMerge clears the previous cycle's registers through it in
	// O(writes) instead of sweeping all K. chWriter starts all -1 to match.
	chTouched []int32
	// genAct is resolveGeneral's per-cycle active-processor scratch (only
	// allocated on the general path): ascending ids of the live processors
	// with a fresh submission this cycle, excluding IdleN-batch sleepers.
	genAct []int32

	// Cycle barrier: a sense-reversing generation counter plus spin-then-park
	// waiters. Arrival is counted in arrived; the last arriver resolves the
	// cycle and advances barGen (the "sense"), which releases the spinners;
	// waiters that gave up spinning park on barCond and are woken only when
	// parked says somebody is actually there. The three atomics live on
	// separate cache lines: arrived takes a contended RMW per processor per
	// cycle, barGen is read-spun by every waiter.
	_pad0    [cacheLine]byte
	arrived  atomic.Int32
	_pad1    [cacheLine - 4]byte
	expected atomic.Int32
	_pad2    [cacheLine - 4]byte
	barGen   atomic.Uint64
	_pad3    [cacheLine - 8]byte

	parked    atomic.Int32
	barMu     sync.Mutex
	barCond   sync.Cond
	busySpins int // pure-spin probes before yielding; 0 on GOMAXPROCS=1

	cycles atomic.Int64 // progress counter for the watchdog
	// procMirror[i] is an atomic mirror of processor i's slot-table state,
	// packed (steps << 3 | opKind). Written only by processor i (in step),
	// read by the stall watchdog for diagnostics.
	procMirror []paddedMirror
	faults     *faultState
	stats      Stats
	phaseIdx   map[string]int // phase name -> index in stats.Phases
	curPhase   int            // index of the active phase, -1 before any marker
	trace      *Trace
	rec        *trace.Recorder // cycle event recorder, nil when tracing is off
	recPhase   int32           // recorder-interned id of the active phase, -1 before any
	failed     atomic.Bool
	abortErr   error
	abortMu    sync.Mutex
	aborted    chan struct{} // closed on failure
	abortOne   sync.Once
	allDone    chan struct{} // closed when all processors exit

	maxAux atomic.Int64
}

func (e *engine) abort(err error) {
	e.abortMu.Lock()
	if e.abortErr == nil {
		e.abortErr = err
	}
	e.abortMu.Unlock()
	e.failed.Store(true)
	e.abortOne.Do(func() {
		close(e.aborted)
		if e.cfg.AbortC != nil {
			close(e.cfg.AbortC)
		}
	})
	// Wake parked waiters so they observe the failure; spinners check the
	// failed flag on every probe. failed is stored before taking barMu, and a
	// waiter holds barMu from its parked re-check until Wait releases it, so
	// this Broadcast cannot slip into that window: the waiter either sees
	// failed set and never parks, or parks before we acquire the lock and is
	// woken by the Broadcast.
	e.barMu.Lock()
	e.barCond.Broadcast()
	e.barMu.Unlock()
	// Sharded mode: also wake workers sleeping on their submission token so
	// they observe the failure and release their parked processors.
	for w := range e.workerWake {
		select {
		case e.workerWake[w] <- struct{}{}:
		default:
		}
	}
}

func (e *engine) abortError() error {
	e.abortMu.Lock()
	defer e.abortMu.Unlock()
	return e.abortErr
}

// softErr records a processor program error without tearing down the barrier
// immediately; the processor exits normally and the run fails at the end.
func (e *engine) softErr(err error) {
	e.abortMu.Lock()
	if e.abortErr == nil {
		e.abortErr = err
	}
	e.abortMu.Unlock()
}

// step counts processor id's arrival for the current cycle — the processor
// has already written its submission into slots[id] — and, once every live
// processor has arrived, resolves the cycle. It blocks until resolution and
// returns the read result for reading ops.
func (e *engine) step(id int, kind opKind) readResult {
	if e.mode == EngineSharded {
		return e.stepSharded(id, kind)
	}
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
	g := e.barGen.Load()
	if e.arrived.Add(1) == e.expected.Load() {
		e.resolve()
		if kind == opExit {
			return readResult{}
		}
	} else {
		if kind == opExit {
			// Exiting processors do not wait for the cycle outcome.
			return readResult{}
		}
		e.await(g)
	}
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
	return e.results[id].r
}

// barrierYields bounds how many scheduler yields a waiter spends probing the
// generation counter before parking on the condition variable. A cycle
// resolves in O(p) work once every processor has arrived, so on a healthy
// run a couple of yields suffice; the park path is the backstop for
// oversubscribed machines and programs doing long local computation.
const barrierYields = 16

// await blocks until the barrier generation has advanced past g (the cycle
// this waiter submitted to has been resolved) or the run has failed. It
// spins first — pure probes while other cores may be resolving, then
// scheduler yields — and parks on barCond as a last resort.
func (e *engine) await(g uint64) {
	for i := 0; i < e.busySpins; i++ {
		if e.barGen.Load() != g || e.failed.Load() {
			return
		}
	}
	for i := 0; i < barrierYields; i++ {
		if e.barGen.Load() != g || e.failed.Load() {
			return
		}
		runtime.Gosched()
	}
	e.barMu.Lock()
	for e.barGen.Load() == g && !e.failed.Load() {
		e.parked.Add(1)
		// Re-check after publishing parked: advance() reads parked after
		// bumping the generation, so either it sees our increment and
		// broadcasts, or this probe sees the new generation — never neither.
		if e.barGen.Load() != g || e.failed.Load() {
			e.parked.Add(-1)
			break
		}
		e.barCond.Wait()
		e.parked.Add(-1)
	}
	e.barMu.Unlock()
}

// advance opens the next barrier generation and releases this cycle's
// waiters. The generation bump is the release edge for all plain stores the
// resolver made (results, stats): waiters synchronize on loading the new
// value. Called only by the resolver. In goroutine mode the barrier counts
// live processors; in sharded mode it counts workers with live processors.
func (e *engine) advance() {
	e.arrived.Store(0)
	if e.mode == EngineSharded {
		e.expected.Store(int32(e.activeWorkers))
	} else {
		e.expected.Store(int32(e.liveN))
	}
	e.barGen.Add(1)
	// Park-ordering invariant (see TestBarrierAbortStorm): parked is read
	// only after the generation bump above, while a waiter publishes its
	// parked increment before re-checking the generation (under barMu, before
	// Wait). sync/atomic's total order over these four operations leaves no
	// interleaving where the waiter parks and this load misses it: either we
	// observe parked > 0 and broadcast, or the waiter's re-check observes the
	// new generation and never waits.
	if e.parked.Load() > 0 {
		e.barMu.Lock()
		e.barCond.Broadcast()
		e.barMu.Unlock()
	}
}

// switchPhase makes name the active accounting phase, creating its Stats
// entry on first sight. Re-marking the active phase is a no-op; segments
// sharing a name share one entry. id is the processor whose marker caused
// the switch (trace attribution only).
func (e *engine) switchPhase(id int, name string) {
	if e.curPhase >= 0 && e.stats.Phases[e.curPhase].Name == name {
		return
	}
	idx, ok := e.phaseIdx[name]
	if !ok {
		idx = len(e.stats.Phases)
		// PerChannel is allocated here, at phase creation, so the per-cycle
		// commit loops stay branch- and allocation-free; finalize drops it
		// again for phases that never broadcast, keeping the documented
		// "nil if the phase broadcast nothing" Report shape.
		e.stats.Phases = append(e.stats.Phases, PhaseStats{Name: name, PerChannel: make([]int64, e.cfg.K)})
		e.phaseIdx[name] = idx
	}
	e.curPhase = idx
	if e.rec != nil {
		e.recPhase = e.rec.PhaseID(name)
		e.rec.Record(trace.Event{Cycle: e.stats.Cycles, Proc: int32(id), Ch: -1,
			Phase: e.recPhase, Kind: trace.KindPhase})
	}
}

// consumePhases registers processor id's pending phase markers, if any.
func (e *engine) consumePhases(id int) {
	for _, name := range e.phaseSlots[id] {
		e.switchPhase(id, name)
	}
	e.phaseSlots[id] = nil
}

// stageWrite validates processor id's write and registers it in the channel
// slots. It returns false when the write aborted the run. Stats are not
// touched here (see the invariant on resolveGeneral).
func (e *engine) stageWrite(id int, op *cycleOp) bool {
	c := int(op.writeCh)
	if c < 0 || c >= e.cfg.K {
		e.abort(fmt.Errorf("%w: processor %d wrote invalid channel %d", ErrAborted, id, c))
		return false
	}
	if prev := e.chWriter[c]; prev >= 0 {
		if e.rec != nil {
			e.rec.Record(trace.Event{Cycle: e.stats.Cycles, Proc: int32(id), Ch: int32(c),
				Phase: e.recPhase, Arg: int64(prev), Kind: trace.KindCollision})
		}
		e.abort(&CollisionError{Cycle: e.stats.Cycles, Ch: c, ProcA: prev, ProcB: id})
		return false
	}
	if e.cfg.MaxAbs > 0 {
		if a := op.msg.maxAbs(); a > e.cfg.MaxAbs {
			e.abort(&BudgetError{Budget: "message-size", Limit: e.cfg.MaxAbs, Observed: a, Proc: id})
			return false
		}
	}
	e.chWriter[c] = id
	e.chMsg[c] = op.msg
	return true
}

// markExited removes processor id from the lock-step protocol. Called only by
// the resolver (pass 3); in sharded mode it also retires the owning worker
// from the barrier head count when its last processor leaves.
func (e *engine) markExited(id int) {
	e.live[id] = false
	e.liveN--
	if e.mode == EngineSharded {
		w := id / e.shardChunk
		if e.workerLive[w]--; e.workerLive[w] == 0 {
			e.activeWorkers--
		}
	}
}

// endCycle applies the run budgets and either finishes the run or opens the
// next barrier generation. Shared tail of both resolver paths. On abort the
// generation is left closed: waiters observe the failed flag instead.
func (e *engine) endCycle() {
	if e.cfg.MaxCycles > 0 && e.stats.Cycles >= e.cfg.MaxCycles {
		e.abort(&BudgetError{Budget: "cycles", Limit: e.cfg.MaxCycles, Observed: e.stats.Cycles, Proc: -1})
		return
	}
	if e.liveN == 0 {
		close(e.allDone)
		if e.mode == EngineSharded {
			// Exiting processors never wait on the cycle outcome, but the
			// OTHER workers are parked at the rendezvous: open the generation
			// so they observe termination and return (expected is already 0,
			// so nothing resolves again).
			e.advance()
		}
		return
	}
	e.advance()
}

// resolve is executed by exactly one goroutine per cycle (the last arriver)
// and is therefore free of data races. It processes the submitted ops in
// processor-id order, making runs deterministic. The fast path handles the
// common case — no fault plan, no trace — with no fault dispatch, no trace
// bookkeeping and no staged fault counters; the general path handles the
// rest. Both paths must stay observably identical under a nil plan: the
// cross-path determinism test holds them to byte-identical Report output.
func (e *engine) resolve() {
	if e.fast {
		if e.mode == EngineSharded {
			e.resolveMerge()
		} else {
			e.resolveFast()
		}
	} else {
		e.resolveGeneral()
	}
}

// resolveFast is the no-fault/no-trace cycle resolver. Steady-state cycles
// (no phase markers pending) allocate nothing here.
func (e *engine) resolveFast() {
	p := e.cfg.P
	for c := range e.chWriter {
		e.chWriter[c] = -1
	}
	sawWork := false
	sawExit := false
	// Pass 1: phase markers (processor-id order, so an entry exists even for
	// a zero-traffic phase) and writes. Validation runs before any counter
	// is touched, exactly like the general path.
	for id := 0; id < p; id++ {
		if !e.live[id] {
			continue
		}
		op := &e.slots[id].op
		if op.hasPhases {
			e.consumePhases(id)
		}
		switch op.kind {
		case opWrite, opWriteRead:
			sawWork = true
			if !e.stageWrite(id, op) {
				return
			}
		case opRead, opIdle:
			sawWork = true
		case opExit:
			sawExit = true
		}
	}
	// Pass 2: reads observe the channel registers; no fault dispatch.
	for id := 0; id < p; id++ {
		if !e.live[id] {
			continue
		}
		op := &e.slots[id].op
		if op.kind != opRead && op.kind != opWriteRead {
			continue
		}
		c := int(op.readCh)
		if c < 0 || c >= e.cfg.K {
			e.abort(fmt.Errorf("%w: processor %d read invalid channel %d", ErrAborted, id, c))
			return
		}
		if e.chWriter[c] >= 0 {
			e.results[id].r = readResult{msg: e.chMsg[c], ok: true}
		} else {
			e.results[id].r = readResult{}
		}
	}
	// Pass 3: exits (skipped entirely on the usual all-live cycle).
	if sawExit {
		for id := 0; id < p; id++ {
			if e.live[id] && e.slots[id].op.kind == opExit {
				e.markExited(id)
			}
		}
	}
	// Commit.
	var ph *PhaseStats
	if e.curPhase >= 0 {
		ph = &e.stats.Phases[e.curPhase]
	}
	for c, id := range e.chWriter {
		if id < 0 {
			continue
		}
		e.stats.Messages++
		e.stats.PerProc[id]++
		e.stats.PerChannel[c]++
		if a := e.chMsg[c].maxAbs(); a > e.stats.MaxAbs {
			e.stats.MaxAbs = a
		}
		if ph != nil {
			ph.Messages++
			ph.PerChannel[c]++
		}
	}
	if sawWork {
		e.stats.Cycles++
		e.cycles.Store(e.stats.Cycles)
		if ph != nil {
			ph.Cycles++
		}
	}
	e.endCycle()
}

// resolveGeneral is the full cycle resolver: fault injection at delivery,
// channel outages, and optional per-cycle trace recording.
//
// Invariant: Stats reflects only fully resolved cycles. Validation (channel
// range, collision-freedom, the message-size budget) runs before any counter
// is touched, so a run that aborts mid-cycle leaves no partial increments
// from the failed cycle behind.
func (e *engine) resolveGeneral() {
	for c := range e.chWriter {
		e.chWriter[c] = -1
	}
	// Build this cycle's active list: live processors with a fresh
	// submission, in ascending id order. In sharded mode the workers maintain
	// the split incrementally and concatenating the shard lists in order
	// yields id order; processors sleeping through IdleN batches are known
	// bare opIdle slots and enter only as a count, so idle-heavy phases cost
	// O(active) here too. In goroutine mode it is simply the live set.
	act := e.genAct[:0]
	sleepers := 0
	if e.mode == EngineSharded {
		// Skip retired shards (workerLive == 0): their worker left the
		// barrier when its last processor exited, so its lists are no longer
		// synchronized with this resolution — they are stale leftovers of its
		// final round, and the worker may still be mutating them on its way
		// out. A live shard's worker arrived this round, which orders its
		// updates before this read.
		for w := range e.shards {
			if e.workerLive[w] == 0 {
				continue
			}
			act = append(act, e.shards[w].active...)
			sleepers += len(e.shards[w].sleep)
		}
	} else {
		for id := 0; id < e.cfg.P; id++ {
			if e.live[id] {
				act = append(act, int32(id))
			}
		}
	}
	e.genAct = act
	// Phase markers: consumed up front, in processor-id order, so an entry
	// exists even for a zero-traffic phase (a marker riding on the final
	// exit op still registers). Sleepers never carry markers: an IdleN
	// batch's first cycle goes through the full per-cycle path.
	for _, id := range act {
		if e.slots[id].op.hasPhases {
			e.consumePhases(int(id))
		}
	}
	// A sleeping processor idles this cycle by definition, so the cycle saw
	// work even if every active submission is an exit.
	sawWork := sleepers > 0
	var tr *CycleTrace
	if e.trace != nil {
		tr = &CycleTrace{Cycle: e.stats.Cycles}
		if e.curPhase >= 0 {
			tr.Phase = e.stats.Phases[e.curPhase].Name
		}
	}
	cycle := e.stats.Cycles
	var plan *FaultPlan
	if e.faults != nil {
		plan = e.faults.plan
	}
	// Outage status is a function of (channel, cycle) only: compute it once
	// per channel here instead of once per reader plus once per written
	// channel at commit. chOutage stays all-false when the plan has no
	// outage windows (it is never written then).
	if plan != nil && len(plan.Outages) > 0 {
		for c := range e.chOutage {
			e.chOutage[c] = plan.outageAt(c, cycle)
		}
	}
	// Sleeper idle events: each processor mid-IdleN-batch idles this cycle.
	// Recorded after the phase pass so the events carry the cycle's active
	// phase, exactly like a per-cycle opIdle would; the recorder's rings are
	// per-processor, so emitting them ahead of the active scan (rather than
	// interleaved in id order) changes no observable ordering.
	if e.rec != nil && sleepers > 0 {
		for w := range e.shards {
			if e.workerLive[w] == 0 {
				continue
			}
			for _, s := range e.shards[w].sleep {
				e.rec.Record(trace.Event{Cycle: cycle, Proc: s.id, Ch: -1,
					Phase: e.recPhase, Kind: trace.KindIdle})
			}
		}
	}
	// Pass 1: writes — register into the channel slots and validate, but do
	// not touch Stats yet (see the invariant above).
	for _, id32 := range act {
		id := int(id32)
		op := &e.slots[id].op
		switch op.kind {
		case opWrite, opWriteRead:
			sawWork = true
			if !e.stageWrite(id, op) {
				return
			}
			if tr != nil {
				tr.Writes = append(tr.Writes, WriteEvent{Proc: id, Ch: int(op.writeCh), Msg: op.msg})
			}
			if e.rec != nil {
				e.rec.Record(trace.Event{Cycle: cycle, Proc: int32(id), Ch: op.writeCh,
					Phase: e.recPhase, Arg: op.msg.X, Kind: trace.KindWrite})
			}
		case opRead, opIdle, opExit:
			if op.kind != opExit {
				sawWork = true
				if op.kind == opIdle && e.rec != nil {
					e.rec.Record(trace.Event{Cycle: cycle, Proc: int32(id), Ch: -1,
						Phase: e.recPhase, Kind: trace.KindIdle})
				}
			}
		}
	}
	// Pass 2: reads, with fault injection at delivery. Fault counters are
	// staged locally and committed with the cycle (see the invariant above).
	var fDelta FaultStats
	for _, id32 := range act {
		id := int(id32)
		op := &e.slots[id].op
		if op.kind != opRead && op.kind != opWriteRead {
			continue
		}
		c := int(op.readCh)
		if c < 0 || c >= e.cfg.K {
			e.abort(fmt.Errorf("%w: processor %d read invalid channel %d", ErrAborted, id, c))
			return
		}
		var rr readResult
		var faultCode int64
		if e.chWriter[c] >= 0 && !e.chOutage[c] {
			msg := e.chMsg[c]
			switch {
			case plan.dropAt(cycle, id, c):
				fDelta.Drops++ // reader sees silence
				faultCode = trace.FaultDrop
			default:
				if cm, garbled := plan.corruptAt(cycle, id, c, msg); garbled {
					if plan.Checksum && msgSum(msg) != msgSum(cm) {
						// Detected: the garbled frame is discarded, the
						// reader observes silence.
						fDelta.Detected++
						faultCode = trace.FaultDetected
					} else {
						fDelta.Corruptions++
						faultCode = trace.FaultCorrupt
						rr = readResult{msg: cm, ok: true}
					}
				} else {
					rr = readResult{msg: msg, ok: true}
				}
			}
		}
		e.results[id].r = rr
		if tr != nil {
			tr.Reads = append(tr.Reads, ReadEvent{Proc: id, Ch: c, Msg: rr.msg, OK: rr.ok})
		}
		if e.rec != nil {
			if faultCode != 0 {
				e.rec.Record(trace.Event{Cycle: cycle, Proc: int32(id), Ch: int32(c),
					Phase: e.recPhase, Arg: faultCode, Kind: trace.KindFault})
			}
			ev := trace.Event{Cycle: cycle, Proc: int32(id), Ch: int32(c), Phase: e.recPhase}
			if rr.ok {
				ev.Kind, ev.Arg = trace.KindRead, rr.msg.X
			} else {
				ev.Kind = trace.KindSilence
			}
			e.rec.Record(ev)
		}
	}
	// Pass 3: exits.
	for _, id32 := range act {
		if e.slots[id32].op.kind == opExit {
			e.markExited(int(id32))
		}
	}
	// Commit: the cycle resolved without failure, so fold its traffic into
	// Stats (and the active phase) now.
	var ph *PhaseStats
	if e.curPhase >= 0 {
		ph = &e.stats.Phases[e.curPhase]
	}
	for c, id := range e.chWriter {
		if id < 0 {
			continue
		}
		e.stats.Messages++
		e.stats.PerProc[id]++
		e.stats.PerChannel[c]++
		if e.chOutage[c] {
			fDelta.OutageLosses++
			// Per-channel attribution for the degradation retry. Allocated
			// lazily on the first actual loss, so fault-free runs (and faulted
			// runs without outages) keep the steady-state zero-alloc invariant.
			if e.stats.Faults.OutagePerChannel == nil {
				e.stats.Faults.OutagePerChannel = make([]int64, e.cfg.K)
			}
			e.stats.Faults.OutagePerChannel[c]++
			if e.rec != nil {
				e.rec.Record(trace.Event{Cycle: cycle, Proc: int32(id), Ch: int32(c),
					Phase: e.recPhase, Arg: trace.FaultOutage, Kind: trace.KindFault})
			}
		}
		if a := e.chMsg[c].maxAbs(); a > e.stats.MaxAbs {
			e.stats.MaxAbs = a
		}
		if ph != nil {
			ph.Messages++
			ph.PerChannel[c]++
		}
	}
	e.stats.Faults.add(&fDelta)
	if sawWork {
		e.stats.Cycles++
		e.cycles.Store(e.stats.Cycles)
		if ph != nil {
			ph.Cycles++
		}
		if tr != nil {
			e.trace.Cycles = append(e.trace.Cycles, *tr)
		}
	}
	e.endCycle()
}

// finalize folds the cross-goroutine watermarks and the derived per-phase
// utilization into Stats. Called once, after every processor goroutine has
// stopped.
func (e *engine) finalize() {
	if aux := e.maxAux.Load(); aux > e.stats.MaxAux {
		e.stats.MaxAux = aux
	}
	if evs, _ := e.faults.crashes(); len(evs) > 0 {
		e.stats.Faults.Crashes = evs
		if e.rec != nil {
			// Crashes fire on processor goroutines, so they are recorded
			// here, after quiescence, rather than racing with the resolver.
			// The canonical event order sorts them into their cycle.
			for _, ev := range evs {
				e.rec.Record(trace.Event{Cycle: ev.Cycle, Proc: int32(ev.Proc), Ch: -1,
					Phase: -1, Arg: trace.FaultCrash, Kind: trace.KindFault})
			}
		}
	}
	for i := range e.stats.Phases {
		ph := &e.stats.Phases[i]
		if ph.Cycles > 0 {
			ph.Utilization = float64(ph.Messages) / (float64(ph.Cycles) * float64(e.cfg.K))
		}
		// switchPhase preallocates PerChannel so the commit loops never
		// branch on it; restore the documented nil-when-silent shape here.
		if ph.Messages == 0 {
			ph.PerChannel = nil
		}
	}
}

// Run executes one program per processor on an MCB(cfg.P, cfg.K) network.
// programs[i] runs as processor i; it must follow the lock-step discipline
// of issuing exactly one cycle operation (WriteRead, Write, Read or Idle)
// whenever any other live processor does. Run returns when every program
// has returned, or with an error on collision, abort, panic or stall.
//
// On failure the error is accompanied by a partial *Result covering the
// cycles that completed before the abort, when the engine could collect it
// safely; the Result is nil if a processor goroutine could not be stopped.
func Run(cfg Config, programs []func(Node)) (*Result, error) {
	return RunContext(context.Background(), cfg, programs)
}

// RunContext is Run with cancellation: when ctx is cancelled the run aborts
// like any other typed failure. The abort error is context.Cause(ctx) when
// the caller installed a typed cause (context.WithCancelCause — the transport
// layer maps peer loss to a *StallError this way), otherwise a generic
// *AbortError carrying the context error, so errors.Is(err, ErrAborted)
// holds either way. A background context adds no per-cycle cost: the engine
// hot path never consults it; only the supervisor select does.
func RunContext(ctx context.Context, cfg Config, programs []func(Node)) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(programs) != cfg.P {
		return nil, fmt.Errorf("mcb: %d programs for %d processors", len(programs), cfg.P)
	}
	e := &engine{
		cfg:        cfg,
		slots:      make([]paddedOp, cfg.P),
		results:    make([]paddedResult, cfg.P),
		phaseSlots: make([][]string, cfg.P),
		live:       make([]bool, cfg.P),
		chWriter:   make([]int, cfg.K),
		chMsg:      make([]Message, cfg.K),
		chOutage:   make([]bool, cfg.K),
		procMirror: make([]paddedMirror, cfg.P),
		faults:     newFaultState(cfg.Faults, cfg.P),
		phaseIdx:   make(map[string]int),
		curPhase:   -1,
		aborted:    make(chan struct{}),
		allDone:    make(chan struct{}),
		rec:        cfg.Recorder,
		recPhase:   -1,
	}
	e.fast = fastEligible(cfg, e.faults)
	// The merge path clears registers through its touched list instead of
	// sweeping all K, so the registers must start empty; the serial resolvers
	// re-clear every cycle regardless.
	for c := range e.chWriter {
		e.chWriter[c] = -1
	}
	if !e.fast {
		e.genAct = make([]int32, 0, cfg.P)
	}
	e.stats.PerProc = make([]int64, cfg.P)
	e.stats.PerChannel = make([]int64, cfg.K)
	if cfg.Trace {
		e.trace = &Trace{}
	}
	for i := range e.live {
		e.live[i] = true
	}
	e.liveN = cfg.P
	e.mode = cfg.engineMode()
	e.barCond.L = &e.barMu
	if runtime.GOMAXPROCS(0) > 1 {
		// With real parallelism a short pure-spin window usually catches the
		// resolver finishing on another core; on a single-P runtime it would
		// only delay the resolver, so waiters go straight to yielding.
		e.busySpins = 96
	}
	if e.mode == EngineSharded {
		e.initShards()
	} else {
		e.expected.Store(int32(cfg.P))
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.P; i++ {
		p := &Proc{id: i, e: e}
		prog := programs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cfg.ProfileLabels {
				p.setProfileLabels("")
			}
			defer func() {
				r := recover()
				switch r := r.(type) {
				case nil:
					// Normal return: leave the lock-step protocol.
					p.exit()
				case abortPanic:
					// Engine already failed; nobody waits for us.
				case crashPanic:
					// Injected crash-stop: the processor dies silently but
					// leaves the barrier protocol so the survivors keep
					// running. The crash is surfaced as a CrashError at the
					// end of the run, not as an immediate abort.
					p.exit()
				default:
					// Program bug: record it, then exit the protocol so the
					// remaining processors are not deadlocked.
					e.softErr(fmt.Errorf("%w: processor %d panicked: %v", ErrAborted, p.id, r))
					p.exit()
				}
			}()
			prog(p)
		}()
	}
	for w := range e.shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.workerRun(w)
		}(w)
	}

	stall := cfg.StallTimeout
	if stall == 0 {
		stall = 30 * time.Second
	}
	timer := time.NewTicker(stall)
	defer timer.Stop()
	last := int64(-1)
	grace := cfg.AbortGrace
	if grace == 0 {
		grace = 2 * time.Second
	}
	// outcome resolves the final error once the engine is quiescent: an
	// injected crash-stop dominates any secondary abort it provoked (the
	// crash is the root cause; a "missing broadcast" Abortf downstream of a
	// dead processor is a symptom).
	outcome := func() error {
		if evs, first := e.faults.crashes(); len(evs) > 0 {
			procs := make([]int, len(evs))
			for i, ev := range evs {
				procs[i] = ev.Proc
			}
			return &CrashError{Procs: procs, Cycle: first}
		}
		return e.abortError()
	}
	ctxDone := ctx.Done()
	for {
		select {
		case <-ctxDone:
			// Cancelled from outside: fail the run with the caller's typed
			// cause when one was installed, then let the abort path below
			// collect the partial result. Nil the channel so this case fires
			// once.
			cause := context.Cause(ctx)
			if cause == nil || cause == ctx.Err() {
				cause = &AbortError{Proc: -1, VProc: -1, Msg: "context: " + ctx.Err().Error()}
			}
			e.abort(cause)
			ctxDone = nil
		case <-e.allDone:
			wg.Wait()
			e.finalize()
			return &Result{Stats: e.stats, Trace: e.trace}, outcome()
		case <-e.aborted:
			// Give processor goroutines a chance to unwind; those blocked in
			// local computation will hit the failed check on their next step.
			// A program spinning forever without issuing cycle ops cannot be
			// stopped; give up waiting after the grace period (its goroutine
			// leaks, but Run still reports the abort).
			unwound := make(chan struct{})
			go func() { wg.Wait(); close(unwound) }()
			select {
			case <-unwound:
				// Every goroutine unwound, so Stats is quiescent: return it
				// alongside the error. It covers completed cycles only.
				e.finalize()
				return &Result{Stats: e.stats, Trace: e.trace}, outcome()
			case <-time.After(grace):
				// A goroutine may still be running; touching Stats would race.
				return nil, e.abortError()
			}
		case <-timer.C:
			if c := e.cycles.Load(); c == last {
				e.abort(&StallError{Timeout: stall, Cycle: c, Stalled: e.stallDiagnostics()})
			} else {
				last = c
			}
		}
	}
}

// RunUniform runs the same program on every processor; the program
// distinguishes processors via Proc.ID.
func RunUniform(cfg Config, program func(Node)) (*Result, error) {
	progs := make([]func(Node), cfg.P)
	for i := range progs {
		progs[i] = program
	}
	return Run(cfg, progs)
}
