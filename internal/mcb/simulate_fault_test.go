package mcb

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestSimulateVProcAbortTyped: a virtual processor calling Abortf must
// surface as a structured *AbortError carrying the virtual id (and the host
// id it was simulated on), not a generic "processor panicked" string.
func TestSimulateVProcAbortTyped(t *testing.T) {
	_, err := SimulateUniform(simCfg(2, 1), 6, 2, func(v *VProc) {
		v.Idle()
		if v.ID() == 3 {
			v.Abortf("deliberate virtual failure %d", v.ID())
		}
		v.IdleN(3)
	})
	if err == nil {
		t.Fatal("expected the virtual abort to fail the run")
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("virtual abort must wrap ErrAborted, got %v", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("got %T (%v), want *AbortError", err, err)
	}
	if ae.VProc != 3 {
		t.Fatalf("AbortError.VProc = %d, want virtual processor 3", ae.VProc)
	}
	// Virtual ids are dealt round-robin (vid = slot*p + host), so vid 3 runs
	// on host processor 3 mod 2 = 1.
	if ae.Proc != 1 {
		t.Fatalf("AbortError.Proc = %d, want host processor 1", ae.Proc)
	}
}

// TestSimulateVProcPanicReported: a plain panic inside a virtual program is
// still reported as an engine abort (no hang, errors.Is ErrAborted), and the
// abort stays attributed to the panicking VIRTUAL processor — not merely to
// the host processor that happened to be stepping it.
func TestSimulateVProcPanicReported(t *testing.T) {
	_, err := SimulateUniform(simCfg(2, 1), 4, 2, func(v *VProc) {
		v.Idle()
		if v.ID() == 2 {
			panic("boom")
		}
		v.IdleN(2)
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v, want an abort wrapping ErrAborted", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("got %T (%v), want *AbortError", err, err)
	}
	if ae.VProc != 2 {
		t.Fatalf("AbortError.VProc = %d, want virtual processor 2", ae.VProc)
	}
	if ae.Proc != 0 { // vid 2 runs on host processor 2 mod 2 = 0
		t.Fatalf("AbortError.Proc = %d, want host processor 0", ae.Proc)
	}
}

// TestSimulateVProcAbortSharded re-runs the virtual abort and panic
// attribution under the sharded engine, where the host processors are stepped
// by shared workers: the AbortError must still carry the virtual processor id
// (not a worker's), the run must not wedge the worker rendezvous, and the
// goroutine count must drain (virtual programs, host drivers, workers).
func TestSimulateVProcAbortSharded(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		host := simCfg(2, 1)
		host.Engine = EngineSharded
		_, err := SimulateUniform(host, 6, 2, func(v *VProc) {
			v.Idle()
			if v.ID() == 3 {
				v.Abortf("deliberate virtual failure %d", v.ID())
			}
			v.IdleN(3)
		})
		var ae *AbortError
		if !errors.As(err, &ae) {
			t.Fatalf("iteration %d: got %T (%v), want *AbortError", i, err, err)
		}
		if ae.VProc != 3 || ae.Proc != 1 {
			t.Fatalf("iteration %d: AbortError = Proc %d / VProc %d, want Proc 1 / VProc 3", i, ae.Proc, ae.VProc)
		}

		host = simCfg(2, 1)
		host.Engine = EngineSharded
		_, err = SimulateUniform(host, 4, 2, func(v *VProc) {
			v.Idle()
			if v.ID() == 2 {
				panic("boom")
			}
			v.IdleN(2)
		})
		if !errors.As(err, &ae) {
			t.Fatalf("iteration %d: got %T (%v), want *AbortError", i, err, err)
		}
		if ae.VProc != 2 {
			t.Fatalf("iteration %d: AbortError.VProc = %d, want 2", i, ae.VProc)
		}
	}
	waitGoroutines(t, base, 5*time.Second)
}

// TestSimulateHostDropFaultSurfaces: faults injected on the HOST network
// while it simulates an MCB(p', k') break the simulation protocol itself
// (repeated messages and the termination reduction go missing). The run must
// fail with a typed abort — never hang and never return a silent success.
func TestSimulateHostDropFaultSurfaces(t *testing.T) {
	host := simCfg(2, 1)
	host.Faults = &FaultPlan{Seed: 3, DropRate: 1}
	host.StallTimeout = 2 * time.Second
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = SimulateUniform(host, 4, 2, func(v *VProc) {
			if v.ID() == 0 {
				v.Write(0, MsgX(1, 42))
			} else {
				v.Read(0)
			}
			v.IdleN(2)
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("simulation under host faults hung")
	}
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v, want an abort wrapping ErrAborted", err)
	}
}

// TestSimulateHostCrashSurfaces: a host processor crash-stopping mid-
// simulation kills all its virtual processors; the run must end with a
// CrashError naming the host processor.
func TestSimulateHostCrashSurfaces(t *testing.T) {
	host := simCfg(2, 1)
	host.Faults = &FaultPlan{Seed: 1, Crashes: []Crash{{Proc: 0, Cycle: 2}}}
	host.StallTimeout = 2 * time.Second
	host.MaxCycles = 10000
	_, err := SimulateUniform(host, 4, 2, func(v *VProc) {
		v.IdleN(5)
	})
	if err == nil {
		t.Fatal("expected the host crash to fail the simulation")
	}
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *CrashError", err, err)
	}
	if len(ce.Procs) != 1 || ce.Procs[0] != 0 {
		t.Fatalf("CrashError.Procs = %v, want [0]", ce.Procs)
	}
}
