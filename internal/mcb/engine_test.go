package mcb

import (
	"errors"
	"testing"
	"time"
)

func cfg(p, k int) Config {
	return Config{P: p, K: k, StallTimeout: 5 * time.Second}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		p, k int
		ok   bool
	}{
		{1, 1, true}, {4, 4, true}, {8, 2, true},
		{0, 1, false}, {2, 0, false}, {2, 3, false}, {-1, -1, false},
	}
	for _, c := range cases {
		_, err := Run(Config{P: c.p, K: c.k}, make([]func(Node), max(c.p, 0)))
		if c.ok && err != nil && c.p > 0 {
			// nil programs will panic at run; only check validation outcomes
			// for invalid configs here.
			continue
		}
		if !c.ok && err == nil {
			t.Errorf("P=%d K=%d: expected config error", c.p, c.k)
		}
	}
}

func TestBroadcastOneToAll(t *testing.T) {
	const p = 8
	got := make([]int64, p)
	prog := func(pr Node) {
		if pr.ID() == 3 {
			m, ok := pr.WriteRead(0, MsgX(1, 42), 0)
			if !ok || m.X != 42 {
				pr.Abortf("writer did not read back own message: %v %v", m, ok)
			}
			got[pr.ID()] = m.X
			return
		}
		m, ok := pr.Read(0)
		if !ok {
			pr.Abortf("expected message")
		}
		got[pr.ID()] = m.X
	}
	res, err := RunUniform(cfg(p, 2), prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 42 {
			t.Errorf("proc %d got %d, want 42", i, v)
		}
	}
	if res.Stats.Cycles != 1 {
		t.Errorf("cycles = %d, want 1", res.Stats.Cycles)
	}
	if res.Stats.Messages != 1 {
		t.Errorf("messages = %d, want 1", res.Stats.Messages)
	}
}

func TestSilenceDetection(t *testing.T) {
	prog := func(pr Node) {
		if _, ok := pr.Read(0); ok {
			pr.Abortf("expected silence")
		}
	}
	res, err := RunUniform(cfg(4, 2), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 0 {
		t.Errorf("messages = %d, want 0", res.Stats.Messages)
	}
	if res.Stats.Cycles != 1 {
		t.Errorf("cycles = %d, want 1", res.Stats.Cycles)
	}
}

func TestCollisionFails(t *testing.T) {
	prog := func(pr Node) {
		pr.Write(1, MsgX(0, int64(pr.ID())))
	}
	_, err := RunUniform(cfg(4, 2), prog)
	var ce *CollisionError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CollisionError, got %v", err)
	}
	if ce.Ch != 1 {
		t.Errorf("collision channel = %d, want 1", ce.Ch)
	}
}

func TestParallelChannels(t *testing.T) {
	// k disjoint pairs talk simultaneously in one cycle.
	const k = 4
	const p = 2 * k
	got := make([]int64, p)
	prog := func(pr Node) {
		id := pr.ID()
		if id < k {
			pr.Write(id, MsgX(0, int64(100+id)))
			return
		}
		m, ok := pr.Read(id - k)
		if !ok {
			pr.Abortf("silence on %d", id-k)
		}
		got[id] = m.X
	}
	res, err := RunUniform(cfg(p, k), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 1 || res.Stats.Messages != int64(k) {
		t.Errorf("cycles=%d messages=%d, want 1, %d", res.Stats.Cycles, res.Stats.Messages, k)
	}
	for i := k; i < p; i++ {
		if got[i] != int64(100+i-k) {
			t.Errorf("proc %d got %d", i, got[i])
		}
	}
}

func TestUnevenTermination(t *testing.T) {
	// Processors exit at different times; survivors keep cycling. The global
	// cycle count equals the longest-running processor's cycle count.
	const p = 6
	prog := func(pr Node) {
		for i := 0; i <= pr.ID(); i++ {
			pr.Idle()
		}
	}
	res, err := RunUniform(cfg(p, 2), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != p {
		t.Errorf("cycles = %d, want %d", res.Stats.Cycles, p)
	}
}

func TestLateJoinerSeesOnlySameCycleMessage(t *testing.T) {
	// Channels are memoryless: a message written in cycle 0 is not visible
	// in cycle 1.
	prog := func(pr Node) {
		if pr.ID() == 0 {
			pr.Write(0, MsgX(0, 7))
			pr.Idle()
			return
		}
		pr.Idle()
		if _, ok := pr.Read(0); ok {
			pr.Abortf("channel should be memoryless")
		}
	}
	if _, err := RunUniform(cfg(2, 1), prog); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	// Same run twice: identical stats and traces.
	run := func() *Result {
		c := cfg(16, 4)
		c.Trace = true
		prog := func(pr Node) {
			id := pr.ID()
			for i := 0; i < 10; i++ {
				if id%4 == i%4 {
					// Four writers per cycle, each on its own channel.
					ch := id / 4
					pr.WriteRead(ch, Msg(1, int64(id), int64(i), 0), (ch+1)%pr.K())
				} else {
					pr.Read(id / 4)
				}
			}
		}
		res, err := RunUniform(c, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Messages != b.Stats.Messages {
		t.Fatalf("nondeterministic stats: %v vs %v", a.Stats, b.Stats)
	}
	if len(a.Trace.Cycles) != len(b.Trace.Cycles) {
		t.Fatalf("trace lengths differ")
	}
	for i := range a.Trace.Cycles {
		ta, tb := a.Trace.Cycles[i], b.Trace.Cycles[i]
		if len(ta.Writes) != len(tb.Writes) || len(ta.Reads) != len(tb.Reads) {
			t.Fatalf("cycle %d trace differs", i)
		}
		for j := range ta.Writes {
			if ta.Writes[j] != tb.Writes[j] {
				t.Fatalf("cycle %d write %d differs", i, j)
			}
		}
	}
}

func TestMaxCycles(t *testing.T) {
	c := cfg(2, 1)
	c.MaxCycles = 10
	prog := func(pr Node) {
		for {
			pr.Idle()
		}
	}
	_, err := RunUniform(c, prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected ErrAborted, got %v", err)
	}
}

func TestStallDetection(t *testing.T) {
	c := cfg(2, 1)
	c.StallTimeout = 100 * time.Millisecond
	prog := func(pr Node) {
		if pr.ID() == 0 {
			// Breaks lock-step: blocks forever without issuing a cycle op.
			select {}
		}
		pr.Idle()
	}
	_, err := RunUniform(c, prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected ErrAborted, got %v", err)
	}
}

func TestProgramPanicReported(t *testing.T) {
	prog := func(pr Node) {
		pr.Idle()
		if pr.ID() == 1 {
			panic("algorithm bug")
		}
		pr.Idle()
		pr.Idle()
	}
	_, err := RunUniform(cfg(3, 1), prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected ErrAborted, got %v", err)
	}
}

func TestAbortf(t *testing.T) {
	prog := func(pr Node) {
		pr.Idle()
		if pr.ID() == 2 {
			pr.Abortf("invariant violated: %d", 42)
		}
		for {
			pr.Idle()
		}
	}
	_, err := RunUniform(cfg(4, 2), prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected ErrAborted, got %v", err)
	}
}

func TestInvalidChannelAborts(t *testing.T) {
	for _, ch := range []int{-1, 99} {
		prog := func(pr Node) { pr.Write(ch, MsgX(0, 0)) }
		if _, err := RunUniform(cfg(2, 2), prog); !errors.Is(err, ErrAborted) {
			t.Errorf("channel %d: expected abort, got %v", ch, err)
		}
		prog = func(pr Node) { pr.Read(ch) }
		if _, err := RunUniform(cfg(2, 2), prog); !errors.Is(err, ErrAborted) {
			t.Errorf("read channel %d: expected abort, got %v", ch, err)
		}
	}
}

func TestPerProcAndPerChannelCounts(t *testing.T) {
	const p = 4
	// Processor i writes i messages, each on its own channel (k = p), so no
	// two processors ever share a channel.
	prog := func(pr Node) {
		for i := 0; i < pr.ID(); i++ {
			pr.Write(pr.ID(), MsgX(0, int64(i)))
		}
	}
	res, err := RunUniform(cfg(p, p), prog)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 3}
	for i, w := range want {
		if res.Stats.PerProc[i] != w {
			t.Errorf("PerProc[%d] = %d, want %d", i, res.Stats.PerProc[i], w)
		}
		if res.Stats.PerChannel[i] != w {
			t.Errorf("PerChannel[%d] = %d, want %d", i, res.Stats.PerChannel[i], w)
		}
	}
	if res.Stats.Messages != 6 {
		t.Errorf("messages = %d, want 6", res.Stats.Messages)
	}
}

func TestMaxAbsTracked(t *testing.T) {
	prog := func(pr Node) {
		if pr.ID() == 0 {
			pr.Write(0, Msg(0, -1234567, 3, 99))
		} else {
			pr.Read(0)
		}
	}
	res, err := RunUniform(cfg(2, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxAbs != 1234567 {
		t.Errorf("MaxAbs = %d, want 1234567", res.Stats.MaxAbs)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cycles: 3, Messages: 5, MaxAbs: 10, PerProc: []int64{1, 2}, PerChannel: []int64{5}}
	b := Stats{Cycles: 7, Messages: 1, MaxAbs: 4, MaxAux: 9, PerProc: []int64{0, 1, 1}, PerChannel: []int64{0, 1}}
	a.Add(&b)
	if a.Cycles != 10 || a.Messages != 6 || a.MaxAbs != 10 || a.MaxAux != 9 {
		t.Errorf("bad sum: %+v", a)
	}
	if len(a.PerProc) != 3 || a.PerProc[0] != 1 || a.PerProc[1] != 3 || a.PerProc[2] != 1 {
		t.Errorf("PerProc = %v", a.PerProc)
	}
	if len(a.PerChannel) != 2 || a.PerChannel[0] != 5 || a.PerChannel[1] != 1 {
		t.Errorf("PerChannel = %v", a.PerChannel)
	}
}

func TestAccountAux(t *testing.T) {
	prog := func(pr Node) {
		pr.AccountAux(int64(10 * (pr.ID() + 1)))
		pr.Idle()
		pr.AccountAux(-5)
		pr.Idle()
	}
	res, err := RunUniform(cfg(3, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxAux != 30 {
		t.Errorf("MaxAux = %d, want 30", res.Stats.MaxAux)
	}
}

func TestRunEachDifferentPrograms(t *testing.T) {
	sum := make([]int64, 2)
	progs := []func(Node){
		func(pr Node) { pr.Write(0, MsgX(0, 5)) },
		func(pr Node) {
			m, ok := pr.Read(0)
			if ok {
				sum[1] = m.X
			}
		},
	}
	if _, err := Run(cfg(2, 1), progs); err != nil {
		t.Fatal(err)
	}
	if sum[1] != 5 {
		t.Errorf("got %d, want 5", sum[1])
	}
}

func TestManyCyclesThroughput(t *testing.T) {
	// Sanity/perf smoke: 2000 cycles on 32 procs completes quickly.
	const p, cycles = 32, 2000
	prog := func(pr Node) {
		for i := 0; i < cycles; i++ {
			if i%p == pr.ID() {
				pr.Write(0, MsgX(0, int64(i)))
			} else {
				pr.Read(0)
			}
		}
	}
	res, err := RunUniform(cfg(p, 4), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != cycles || res.Stats.Messages != cycles {
		t.Errorf("cycles=%d messages=%d", res.Stats.Cycles, res.Stats.Messages)
	}
}

func TestMessageMaxAbs(t *testing.T) {
	m := Message{X: -5, Y: 3, Z: -9}
	if got := m.maxAbs(); got != 9 {
		t.Errorf("maxAbs = %d, want 9", got)
	}
	m = Message{X: -1 << 63}
	if got := m.maxAbs(); got != 1<<63-1 {
		t.Errorf("maxAbs(MinInt64) = %d", got)
	}
}

func TestMessageSizeBudgetEnforced(t *testing.T) {
	c := cfg(2, 1)
	c.MaxAbs = 100
	prog := func(pr Node) {
		if pr.ID() == 0 {
			pr.Write(0, MsgX(0, 101))
		} else {
			pr.Read(0)
		}
	}
	if _, err := RunUniform(c, prog); !errors.Is(err, ErrAborted) {
		t.Fatalf("expected budget abort, got %v", err)
	}
	// Within budget: fine.
	prog = func(pr Node) {
		if pr.ID() == 0 {
			pr.Write(0, MsgX(0, 100))
		} else {
			pr.Read(0)
		}
	}
	if _, err := RunUniform(c, prog); err != nil {
		t.Fatalf("within-budget run failed: %v", err)
	}
}
