package mcb

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// TestPhaseRecording checks the core phase accounting: markers open named
// entries, every cycle and message lands in the active phase, and the
// per-phase breakdown sums back to the whole-run totals.
func TestPhaseRecording(t *testing.T) {
	c := cfg(2, 1)
	c.Trace = true
	prog := func(pr Node) {
		pr.Phase("work")
		for i := 0; i < 2; i++ {
			if pr.ID() == 0 {
				pr.Write(0, MsgX(0, int64(i)))
			} else {
				pr.Read(0)
			}
		}
		pr.Phase("drain")
		for i := 0; i < 3; i++ {
			pr.Idle()
		}
	}
	res, err := RunUniform(c, prog)
	if err != nil {
		t.Fatal(err)
	}
	s := &res.Stats
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %+v, want 2 entries", s.Phases)
	}
	work, drain := s.Phases[0], s.Phases[1]
	if work.Name != "work" || drain.Name != "drain" {
		t.Fatalf("phase order = %q, %q", work.Name, drain.Name)
	}
	if work.Cycles != 2 || work.Messages != 2 {
		t.Errorf("work = %+v, want 2 cycles 2 messages", work)
	}
	if work.Utilization != 1.0 {
		t.Errorf("work utilization = %v, want 1.0", work.Utilization)
	}
	if len(work.PerChannel) != 1 || work.PerChannel[0] != 2 {
		t.Errorf("work per-channel = %v", work.PerChannel)
	}
	if drain.Cycles != 3 || drain.Messages != 0 {
		t.Errorf("drain = %+v, want 3 cycles 0 messages", drain)
	}
	var cyc, msg int64
	for _, ph := range s.Phases {
		cyc += ph.Cycles
		msg += ph.Messages
	}
	if cyc != s.Cycles || msg != s.Messages {
		t.Errorf("phase sums %d/%d != totals %d/%d", cyc, msg, s.Cycles, s.Messages)
	}
	// The trace labels each cycle with the active phase.
	wantPhase := []string{"work", "work", "drain", "drain", "drain"}
	if len(res.Trace.Cycles) != len(wantPhase) {
		t.Fatalf("trace has %d cycles", len(res.Trace.Cycles))
	}
	for i, tc := range res.Trace.Cycles {
		if tc.Phase != wantPhase[i] {
			t.Errorf("trace cycle %d phase = %q, want %q", i, tc.Phase, wantPhase[i])
		}
	}
}

// TestPhaseMergeByName: re-entering a phase name folds into the existing
// entry instead of appending a duplicate; first-seen order is kept.
func TestPhaseMergeByName(t *testing.T) {
	prog := func(pr Node) {
		pr.Phase("a")
		pr.Idle()
		pr.Phase("b")
		pr.Idle()
		pr.Idle()
		pr.Phase("a")
		pr.Idle()
	}
	res, err := RunUniform(cfg(3, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	s := &res.Stats
	if len(s.Phases) != 2 || s.Phases[0].Name != "a" || s.Phases[1].Name != "b" {
		t.Fatalf("phases = %+v", s.Phases)
	}
	if s.Phases[0].Cycles != 2 {
		t.Errorf("a cycles = %d, want 2 (merged segments)", s.Phases[0].Cycles)
	}
	if s.Phases[1].Cycles != 2 {
		t.Errorf("b cycles = %d, want 2", s.Phases[1].Cycles)
	}
}

// TestPhaseZeroCycle: a marker issued right before the program returns rides
// on the exit op and still registers, as a zero-cycle entry.
func TestPhaseZeroCycle(t *testing.T) {
	prog := func(pr Node) {
		pr.Phase("work")
		pr.Idle()
		pr.Phase("done")
	}
	res, err := RunUniform(cfg(2, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	done := res.Stats.PhaseByName("done")
	if done == nil {
		t.Fatalf("zero-cycle phase missing: %+v", res.Stats.Phases)
	}
	if done.Cycles != 0 || done.Messages != 0 {
		t.Errorf("done = %+v, want zero cycles and messages", done)
	}
}

// TestPhaseCyclesBeforeFirstMarker: traffic before any marker stays out of
// the phase breakdown but still counts toward the run totals.
func TestPhaseCyclesBeforeFirstMarker(t *testing.T) {
	prog := func(pr Node) {
		pr.Idle()
		pr.Idle()
		pr.Phase("late")
		pr.Idle()
	}
	res, err := RunUniform(cfg(2, 1), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", res.Stats.Cycles)
	}
	if len(res.Stats.Phases) != 1 || res.Stats.Phases[0].Cycles != 1 {
		t.Errorf("phases = %+v, want one 1-cycle entry", res.Stats.Phases)
	}
}

// TestMaxCyclesExact pins the cycle-limit semantics: the run executes exactly
// MaxCycles cycles and fails before delivering the results of the last one,
// so programs observe MaxCycles-1 completed operations and the partial
// Result reports Cycles == MaxCycles.
func TestMaxCyclesExact(t *testing.T) {
	const limit = 10
	c := cfg(2, 1)
	c.MaxCycles = limit
	completed := make([]int, 2)
	prog := func(pr Node) {
		for {
			pr.Idle()
			completed[pr.ID()]++
		}
	}
	res, err := RunUniform(c, prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected ErrAborted, got %v", err)
	}
	if res == nil {
		t.Fatal("expected a partial Result on cycle-limit abort")
	}
	if res.Stats.Cycles != limit {
		t.Errorf("Cycles = %d, want exactly %d", res.Stats.Cycles, limit)
	}
	for id, n := range completed {
		if n != limit-1 {
			t.Errorf("proc %d observed %d completed ops, want %d", id, n, limit-1)
		}
	}
}

// Abort-path consistency: the partial Result returned alongside an error must
// reflect only fully resolved cycles — no counter increments from the cycle
// that failed validation.

func TestAbortStatsCollision(t *testing.T) {
	prog := func(pr Node) {
		// Two clean cycles on disjoint channels, then both write channel 0.
		for i := 0; i < 2; i++ {
			pr.Write(pr.ID(), MsgX(0, int64(i)))
		}
		pr.Write(0, MsgX(0, 9))
	}
	res, err := RunUniform(cfg(2, 2), prog)
	var ce *CollisionError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CollisionError, got %v", err)
	}
	if res == nil {
		t.Fatal("expected a partial Result")
	}
	s := &res.Stats
	if s.Cycles != 2 || s.Messages != 4 {
		t.Errorf("stats = %v, want 2 cycles 4 messages (failed cycle excluded)", s)
	}
	if s.PerProc[0] != 2 || s.PerProc[1] != 2 || s.PerChannel[0] != 2 || s.PerChannel[1] != 2 {
		t.Errorf("vectors = %v %v, want [2 2] [2 2]", s.PerProc, s.PerChannel)
	}
}

func TestAbortStatsInvalidChannel(t *testing.T) {
	prog := func(pr Node) {
		for i := 0; i < 3; i++ {
			if pr.ID() == 0 {
				pr.Write(0, MsgX(0, int64(i)))
			} else {
				pr.Read(0)
			}
		}
		if pr.ID() == 0 {
			pr.Write(99, MsgX(0, 0))
		} else {
			pr.Idle()
		}
	}
	res, err := RunUniform(cfg(2, 2), prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
	if res == nil {
		t.Fatal("expected a partial Result")
	}
	if res.Stats.Cycles != 3 || res.Stats.Messages != 3 {
		t.Errorf("stats = %v, want 3 cycles 3 messages", &res.Stats)
	}
}

func TestAbortStatsBudget(t *testing.T) {
	c := cfg(2, 1)
	c.MaxAbs = 100
	prog := func(pr Node) {
		for i := 0; i < 2; i++ {
			if pr.ID() == 0 {
				pr.Write(0, MsgX(0, 50))
			} else {
				pr.Read(0)
			}
		}
		if pr.ID() == 0 {
			pr.Write(0, MsgX(0, 101))
		} else {
			pr.Read(0)
		}
	}
	res, err := RunUniform(c, prog)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected budget abort, got %v", err)
	}
	if res == nil {
		t.Fatal("expected a partial Result")
	}
	if res.Stats.Cycles != 2 || res.Stats.Messages != 2 {
		t.Errorf("stats = %v, want 2 cycles 2 messages", &res.Stats)
	}
	// The over-budget payload never committed, so the watermark must not
	// include it.
	if res.Stats.MaxAbs != 50 {
		t.Errorf("MaxAbs = %d, want 50", res.Stats.MaxAbs)
	}
}

// TestStatsAddPhases: Add merges phase entries by name, summing counters,
// recomputing utilization from the merged totals, and appending unseen names
// in order.
func TestStatsAddPhases(t *testing.T) {
	a := Stats{
		Cycles: 4, Messages: 4,
		Phases: []PhaseStats{
			{Name: "x", Cycles: 2, Messages: 2, PerChannel: []int64{2}, Utilization: 1.0},
			{Name: "y", Cycles: 2, Messages: 2, PerChannel: []int64{2}, Utilization: 1.0},
		},
	}
	b := Stats{
		Cycles: 6, Messages: 3,
		Phases: []PhaseStats{
			{Name: "y", Cycles: 2, Messages: 0, PerChannel: []int64{0}},
			{Name: "z", Cycles: 4, Messages: 3, PerChannel: []int64{3}, Utilization: 0.75},
		},
	}
	a.Add(&b)
	if len(a.Phases) != 3 {
		t.Fatalf("phases = %+v, want x, y, z", a.Phases)
	}
	if a.Phases[0].Name != "x" || a.Phases[1].Name != "y" || a.Phases[2].Name != "z" {
		t.Fatalf("phase order = %+v", a.Phases)
	}
	y := a.Phases[1]
	if y.Cycles != 4 || y.Messages != 2 {
		t.Errorf("merged y = %+v, want 4 cycles 2 messages", y)
	}
	if y.Utilization != 0.5 {
		t.Errorf("merged y utilization = %v, want 0.5", y.Utilization)
	}
	// z was cloned, not aliased: mutating the source must not leak through.
	b.Phases[1].PerChannel[0] = 99
	if a.Phases[2].PerChannel[0] != 3 {
		t.Errorf("z per-channel aliases the source: %v", a.Phases[2].PerChannel)
	}
}

// TestStatsAddUnequalVectors: vectors of different lengths extend rather
// than truncate or panic.
func TestStatsAddUnequalVectors(t *testing.T) {
	a := Stats{PerProc: []int64{1}, PerChannel: []int64{1, 1}}
	b := Stats{PerProc: []int64{1, 2, 3}, PerChannel: []int64{1}}
	a.Add(&b)
	if !reflect.DeepEqual(a.PerProc, []int64{2, 2, 3}) {
		t.Errorf("PerProc = %v", a.PerProc)
	}
	if !reflect.DeepEqual(a.PerChannel, []int64{2, 1}) {
		t.Errorf("PerChannel = %v", a.PerChannel)
	}
}

// TestReportJSONRoundTrip: NewReport snapshots (not aliases) the stats and
// the JSON schema round-trips losslessly.
func TestReportJSONRoundTrip(t *testing.T) {
	s := Stats{
		Cycles: 10, Messages: 12, MaxAbs: 7, MaxAux: 3,
		PerProc:    []int64{5, 7},
		PerChannel: []int64{8, 4},
		Phases: []PhaseStats{
			{Name: "p1", Cycles: 6, Messages: 8, PerChannel: []int64{5, 3}, Utilization: 8.0 / 12.0},
			{Name: "p2", Cycles: 4, Messages: 4, PerChannel: []int64{3, 1}, Utilization: 0.5},
		},
	}
	r := NewReport(Config{P: 2, K: 2}, &s)
	if r.Utilization != 12.0/20.0 {
		t.Errorf("utilization = %v, want 0.6", r.Utilization)
	}
	// Snapshot semantics: mutating the source stats must not change the report.
	s.PerProc[0] = 99
	s.Phases[0].PerChannel[0] = 99
	if r.PerProc[0] != 5 || r.Phases[0].PerChannel[0] != 5 {
		t.Error("Report aliases the source Stats")
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, r) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &back, r)
	}
}
