package mcb

import (
	"fmt"
	"runtime"
)

// This file is the sharded execution engine (Config.Engine = EngineSharded):
// the p >> cores regime the paper's algorithms are stated in. Processor
// programs still run on their own goroutines (they are arbitrary blocking
// func(Node) bodies), but the per-cycle coordination is delegated to
// M = min(GOMAXPROCS, p) workers, each owning a contiguous shard of p/M
// processors, and cycle resolution runs as a two-stage parallel protocol:
//
//   - A processor submits its cycle op by writing its slot (exactly as in
//     goroutine mode), decrementing its worker's outstanding-submission
//     countdown, and parking on its private gate channel. It never touches
//     the shared barrier.
//   - Stage 1 (parallel, pre-barrier): once its countdown drains, each worker
//     folds its own shard — phase-marker ids, write ops into a per-shard
//     per-channel claim vector (first writer id + message; a second intra-
//     shard writer is a collision), read and exit lists — and only then
//     arrives at the shared arrived/expected barrier, which in this mode
//     counts workers, not processors. The fold walks the worker's ACTIVE
//     list, not the shard range: processors replaying IdleN batches sleep in
//     a (wake-round, id) min-heap and cost nothing per cycle, so idle-heavy
//     phases (the §8 selection-filter shape) cost O(active), not O(p).
//   - Stage 2 (serial, last arriver): resolveMerge merges the M claim
//     vectors in shard order — which is processor-id order, so collision
//     attribution, abort order and phase-marker order are byte-identical to
//     the serial resolver — and commits channel registers and stats over the
//     touched channels only.
//   - Stage 3 (parallel, post-release): every worker scatters the read
//     results to its own shard from the merged channel registers, then wakes
//     exactly the owned processors that owe a fresh submission.
//
// The general resolver (faults/trace/recorder) keeps its serial
// processor-id-order semantics — it scans the concatenated active lists
// instead of claim vectors — but gains the same active-list skip.
//
// The per-cycle cost model: one gate send + one countdown RMW per ACTIVE
// processor, an O(active/M) stage-1 fold and stage-3 scatter per worker in
// parallel, an O(M) worker rendezvous, and an O(writes + M) stage-2 merge —
// versus the goroutine engine's O(p) barrier arrivals and the previous
// sharded design's three serial O(p) resolver passes plus O(K) register
// clear per cycle. See DESIGN.md "The sharded engine".
//
// Memory ordering: a processor's slot write happens-before the worker's fold
// via the countdown RMW chain and the wake token; every worker's fold
// happens-before the merge via the arrived counter's RMW chain; the merge's
// register and stats writes happen-before the scatters via the barrier
// generation bump (release) and each worker's acquire load in await; a
// worker's scatter writes happen-before its processors' reads via the gate
// send, and happen-before the NEXT merge (which clears the registers) via
// the next cycle's arrived chain. All edges are sync/atomic or channel
// operations, so the race detector checks them for real.

// sleeper is one processor inside an IdleN batch: its slot keeps standing for
// a bare opIdle every cycle without any per-cycle work, and it rejoins the
// active list (regaining its gate token) at round wake.
type sleeper struct {
	wake int64
	id   int32
}

func sleeperLess(a, b sleeper) bool {
	return a.wake < b.wake || (a.wake == b.wake && a.id < b.id)
}

// readerRec is one pending read of the cycle being folded: processor id
// observes channel ch. Collected in stage 1, served in stage 3.
type readerRec struct {
	id int32
	ch int32
}

// shardWorker is the per-worker state of the sharded engine: the contiguous
// range [lo, hi) of processor ids it owns, the active/sleeping split of those
// processors, and the stage-1 fold aggregates the merge consumes.
//
// Everything here is owned by the worker goroutine between barriers; the
// resolver (one of the workers) reads it only after every worker has arrived.
type shardWorker struct {
	lo, hi int
	round  int64 // index of the round currently being collected

	// active holds the owned ids that owe a fresh submission each cycle —
	// live and not inside an IdleN batch — in ascending order, so the merge
	// visiting shards in order sees processors in id order. sleep is a
	// min-heap on (wake, id); wakes is the reactivation scratch.
	active []int32
	sleep  []sleeper
	wakes  []int32

	// Stage-1 fold aggregates (fast path only; nil under faults/trace).
	// claim[c] is the shard's first writer of channel c this cycle (-1 none)
	// with its message in claimMsg[c]; touched lists the claimed channels so
	// resetting is O(writes), not O(K).
	claim    []int32
	claimMsg []Message
	touched  []int32
	readers  []readerRec
	exits    []int32
	phaseIDs []int32 // ids with pending phase markers, ascending

	// First write-stage violation of the fold (-1 = clean): the lowest owned
	// id whose write failed validation, with the error the serial scan would
	// have raised there. Read-range violations are tracked separately because
	// the serial resolver only surfaces them after the whole write stage
	// succeeded.
	errID     int32
	err       error
	readErrID int32
	readErrCh int32
}

// pushSleep inserts a sleeper into the worker's min-heap.
func (wk *shardWorker) pushSleep(wake int64, id int32) {
	wk.sleep = append(wk.sleep, sleeper{wake: wake, id: id})
	i := len(wk.sleep) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !sleeperLess(wk.sleep[i], wk.sleep[par]) {
			break
		}
		wk.sleep[i], wk.sleep[par] = wk.sleep[par], wk.sleep[i]
		i = par
	}
}

// popSleep removes and returns the earliest-due sleeper. Equal wake rounds
// pop in ascending id order, which keeps mass reactivations (every processor
// leaving a barrier-style batch at once) presorted.
func (wk *shardWorker) popSleep() sleeper {
	top := wk.sleep[0]
	n := len(wk.sleep) - 1
	wk.sleep[0] = wk.sleep[n]
	wk.sleep = wk.sleep[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && sleeperLess(wk.sleep[r], wk.sleep[l]) {
			m = r
		}
		if !sleeperLess(wk.sleep[m], wk.sleep[i]) {
			break
		}
		wk.sleep[i], wk.sleep[m] = wk.sleep[m], wk.sleep[i]
		i = m
	}
	return top
}

// initShards sizes the worker set and allocates the sharded-mode state.
// Called from Run before any goroutine starts. The countdowns start primed:
// in round 0 the processors submit unprompted (nobody is parked yet), so the
// workers' first act is to wait for their tokens.
func (e *engine) initShards() {
	p, k := e.cfg.P, e.cfg.K
	m := runtime.GOMAXPROCS(0)
	if m > p {
		m = p
	}
	if m < 1 {
		m = 1
	}
	chunk := (p + m - 1) / m
	nw := (p + chunk - 1) / chunk
	e.shardChunk = chunk
	e.shards = make([]shardWorker, nw)
	e.gates = make([]chan struct{}, p)
	for i := range e.gates {
		e.gates[i] = make(chan struct{}, 1)
	}
	e.idleBatch = make([]paddedMirror, p)
	e.shardPend = make([]paddedInt64, nw)
	e.workerWake = make([]chan struct{}, nw)
	e.workerLive = make([]int, nw)
	if e.fast {
		e.chTouched = make([]int32, 0, k)
	}
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > p {
			hi = p
		}
		n := hi - lo
		wk := shardWorker{
			lo: lo, hi: hi,
			active:    make([]int32, n, n),
			sleep:     make([]sleeper, 0, n),
			wakes:     make([]int32, 0, n),
			errID:     -1,
			readErrID: -1,
		}
		for i := range wk.active {
			wk.active[i] = int32(lo + i)
		}
		if e.fast {
			wk.claim = make([]int32, k)
			for c := range wk.claim {
				wk.claim[c] = -1
			}
			wk.claimMsg = make([]Message, k)
			wk.touched = make([]int32, 0, n)
			wk.readers = make([]readerRec, 0, n)
			wk.phaseIDs = make([]int32, 0, n)
		}
		// exits feeds resolveMerge's sawWork/markExited in fast mode only
		// (the general resolver reads the exit ops itself), but it is cheap
		// and keeping it unconditional keeps the struct invariant simple.
		wk.exits = make([]int32, 0, n)
		e.shards[w] = wk
		e.workerLive[w] = n
		e.shardPend[w].v.Store(int64(n))
		e.workerWake[w] = make(chan struct{}, 1)
	}
	e.activeWorkers = nw
	e.expected.Store(int32(nw))
}

// stepSharded is the sharded-mode counterpart of step: processor id has
// already written its submission into slots[id]; announce it to the owning
// worker and park until the cycle is resolved. Exiting processors do not wait
// for the outcome, exactly like the goroutine engine.
func (e *engine) stepSharded(id int, kind opKind) readResult {
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
	e.submitShard(id)
	if kind == opExit {
		return readResult{}
	}
	<-e.gates[id]
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
	return e.results[id].r
}

// submitShard counts processor id's submission against its worker's
// countdown; the last submission of the shard hands the worker its wake
// token. The send is non-blocking because abort() may already have stuffed
// the buffer.
func (e *engine) submitShard(id int) {
	w := id / e.shardChunk
	if e.shardPend[w].v.Add(-1) == 0 {
		select {
		case e.workerWake[w] <- struct{}{}:
		default:
		}
	}
}

// stepIdleBatch announces an n-cycle idle stretch (the slot already holds the
// opIdle submission and the mirror has been pre-credited, see Proc.IdleN) and
// parks for the whole stretch: the worker moves this processor to its sleep
// heap, the opIdle slot stands for the remaining n-1 cycles without waking
// this goroutine, and the gate send only comes with the end of the batch.
func (e *engine) stepIdleBatch(id int, n int) {
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
	// The batch length must be visible before the submission is counted: the
	// worker reads idleBatch only after receiving the token the count drains
	// into.
	e.idleBatch[id].v.Store(uint64(n))
	e.submitShard(id)
	<-e.gates[id]
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
}

// wakeShardProcs releases every owned processor gate (non-blocking: cap-1
// buffers make the token idempotent). Called by a worker leaving its loop on
// failure, so that parked processors wake, observe the failed flag and unwind
// — including a processor that parks AFTER this runs, since the token stays
// buffered for it.
func (e *engine) wakeShardProcs(wk *shardWorker) {
	for i := wk.lo; i < wk.hi; i++ {
		select {
		case e.gates[i] <- struct{}{}:
		default:
		}
	}
}

// refreshActive brings the worker's active list up to date for the round
// about to be collected: processors that exited last cycle drop out, and
// sleepers whose batch ends this round fold back in, keeping the list
// ascending. Reactivated processors get their gate token from the caller's
// normal wake pass like everyone else.
func (e *engine) refreshActive(wk *shardWorker) {
	keep := wk.active[:0]
	for _, id := range wk.active {
		if e.live[id] {
			keep = append(keep, id)
		}
	}
	wk.active = keep
	if len(wk.sleep) == 0 || wk.sleep[0].wake > wk.round {
		return
	}
	wk.wakes = wk.wakes[:0]
	for len(wk.sleep) > 0 && wk.sleep[0].wake <= wk.round {
		wk.wakes = append(wk.wakes, wk.popSleep().id)
	}
	// The heap pops equal wake rounds in id order, so the scratch is already
	// sorted unless batches of different lengths end on the same round;
	// insertion sort handles the nearly-sorted common case in linear time.
	for i := 1; i < len(wk.wakes); i++ {
		for j := i; j > 0 && wk.wakes[j] < wk.wakes[j-1]; j-- {
			wk.wakes[j], wk.wakes[j-1] = wk.wakes[j-1], wk.wakes[j]
		}
	}
	// Backward in-place merge of the two ascending runs (active has spare
	// capacity for every owned processor, so this never allocates).
	na, nw := len(wk.active), len(wk.wakes)
	wk.active = wk.active[:na+nw]
	i, j, k := na-1, nw-1, na+nw-1
	for j >= 0 {
		if i >= 0 && wk.active[i] > wk.wakes[j] {
			wk.active[k] = wk.active[i]
			i--
		} else {
			wk.active[k] = wk.wakes[j]
			j--
		}
		k--
	}
}

// foldShard is stage 1 of the fast path: aggregate this shard's submissions
// before arriving at the barrier. It walks the active list only — sleeping
// processors are known bare opIdle slots — and mirrors the serial resolver's
// per-op validation order (channel range, collision-freedom, message-size
// budget), stopping at the shard's first write-stage violation so nothing
// past the abort point is aggregated. Cross-shard collisions cannot be seen
// here; resolveMerge detects them against the claims of earlier shards.
func (e *engine) foldShard(wk *shardWorker) {
	k := int32(e.cfg.K)
	for _, id := range wk.active {
		op := &e.slots[id].op
		if op.hasPhases {
			// Recorded before validation: the serial scan consumes a
			// processor's markers before validating its op, so the markers of
			// the aborting processor itself still register.
			wk.phaseIDs = append(wk.phaseIDs, id)
		}
		switch op.kind {
		case opWrite, opWriteRead:
			c := op.writeCh
			if c < 0 || c >= k {
				wk.errID = id
				wk.err = fmt.Errorf("%w: processor %d wrote invalid channel %d", ErrAborted, id, c)
				return
			}
			if prev := wk.claim[c]; prev >= 0 {
				wk.errID = id
				wk.err = &CollisionError{Cycle: e.stats.Cycles, Ch: int(c), ProcA: int(prev), ProcB: int(id)}
				return
			}
			// The claim registers before the budget check so that a
			// cross-shard collision on this very op still resolves as a
			// collision in the merge (stageWrite checks collisions first).
			wk.claim[c] = id
			wk.claimMsg[c] = op.msg
			wk.touched = append(wk.touched, c)
			if e.cfg.MaxAbs > 0 {
				if a := op.msg.maxAbs(); a > e.cfg.MaxAbs {
					wk.errID = id
					wk.err = &BudgetError{Budget: "message-size", Limit: e.cfg.MaxAbs, Observed: a, Proc: int(id)}
					return
				}
			}
			if op.kind == opWriteRead {
				if rc := op.readCh; rc < 0 || rc >= k {
					if wk.readErrID < 0 {
						wk.readErrID, wk.readErrCh = id, rc
					}
				} else {
					wk.readers = append(wk.readers, readerRec{id: id, ch: rc})
				}
			}
		case opRead:
			if rc := op.readCh; rc < 0 || rc >= k {
				if wk.readErrID < 0 {
					wk.readErrID, wk.readErrCh = id, rc
				}
			} else {
				wk.readers = append(wk.readers, readerRec{id: id, ch: rc})
			}
		case opExit:
			wk.exits = append(wk.exits, id)
		}
		// opIdle contributes nothing to fold state: idle work is accounted
		// globally in resolveMerge (every live processor submits exactly one
		// op, so the cycle saw work unless every submission was an exit).
	}
}

// resolveMerge is stage 2 of the fast path, executed by the last-arriving
// worker only: merge the M shard aggregates in shard order (= processor-id
// order) and commit channel registers and stats. It must be observably
// identical to resolveFast — abort attribution at the exact processor id the
// serial scan would have stopped at, phase markers consumed in id order up to
// and including that processor, and no stats from an aborted cycle.
func (e *engine) resolveMerge() {
	// Clear the previous cycle's registers via its touched list; the serial
	// resolvers sweep all K channels instead. chWriter starts all -1 (engine
	// setup), and every cycle's writes are recorded in chTouched below. The
	// previous cycle's scatters finished before their workers re-arrived, so
	// no stage-3 reader can observe this clear.
	for _, c := range e.chTouched {
		e.chWriter[c] = -1
	}
	e.chTouched = e.chTouched[:0]

	// Every loop below skips retired shards (workerLive == 0): their worker
	// left the barrier when its last processor exited, so its fold aggregates
	// are not synchronized with this resolution — they are stale leftovers of
	// its final round, possibly still being reset on the worker's way out. A
	// live shard's worker arrived this round, ordering its fold before this
	// merge.
	for w := range e.shards {
		if e.workerLive[w] == 0 {
			continue
		}
		wk := &e.shards[w]
		failID, failErr := wk.errID, wk.err
		// Cross-shard collisions: this shard's first claimant of a channel an
		// earlier shard already registered. The lowest such id is where the
		// serial scan would have aborted. A tie against the shard's own
		// violation resolves to the collision, because stageWrite checks
		// collision-freedom before the message-size budget.
		for _, c := range wk.touched {
			if prev := e.chWriter[c]; prev >= 0 {
				if id := wk.claim[c]; failID < 0 || id <= failID {
					failID = id
					failErr = &CollisionError{Cycle: e.stats.Cycles, Ch: int(c), ProcA: prev, ProcB: int(id)}
				}
			}
		}
		if failID >= 0 {
			// Serial abort semantics: markers up to and including the failing
			// processor are consumed, stats are untouched. Later shards hold
			// only higher ids, so this shard's violation is the global first.
			e.consumePhasesAborted(w, failID)
			e.abort(failErr)
			return
		}
		for _, c := range wk.touched {
			e.chWriter[c] = int(wk.claim[c])
			e.chMsg[c] = wk.claimMsg[c]
			e.chTouched = append(e.chTouched, c)
		}
	}
	// Write stage clean: consume every shard's phase markers, in id order.
	for w := range e.shards {
		if e.workerLive[w] == 0 {
			continue
		}
		for _, id := range e.shards[w].phaseIDs {
			e.consumePhases(int(id))
		}
	}
	// Read-range validation, in the serial pass-2 order: only after the whole
	// write stage (and phase consumption) succeeded, lowest id first, before
	// any exit or stat is applied.
	for w := range e.shards {
		if e.workerLive[w] == 0 {
			continue
		}
		wk := &e.shards[w]
		if wk.readErrID >= 0 {
			e.abort(fmt.Errorf("%w: processor %d read invalid channel %d", ErrAborted, wk.readErrID, wk.readErrCh))
			return
		}
	}
	// Exits and idle accounting. Every live processor submitted exactly one
	// op this cycle (sleepers replay opIdle), so the cycle saw work unless
	// every submission was an exit.
	totalExits := 0
	for w := range e.shards {
		if e.workerLive[w] == 0 {
			continue
		}
		totalExits += len(e.shards[w].exits)
	}
	sawWork := totalExits < e.liveN
	if totalExits > 0 {
		for w := range e.shards {
			if e.workerLive[w] == 0 {
				continue
			}
			for _, id := range e.shards[w].exits {
				e.markExited(int(id))
			}
		}
	}
	// Commit. The counters are sums and maxima, so the touched-list order
	// (shard-major, id order within) commits the same totals as the serial
	// resolver's channel sweep.
	var ph *PhaseStats
	if e.curPhase >= 0 {
		ph = &e.stats.Phases[e.curPhase]
	}
	for _, c := range e.chTouched {
		id := e.chWriter[c]
		e.stats.Messages++
		e.stats.PerProc[id]++
		e.stats.PerChannel[c]++
		if a := e.chMsg[c].maxAbs(); a > e.stats.MaxAbs {
			e.stats.MaxAbs = a
		}
		if ph != nil {
			ph.Messages++
			ph.PerChannel[c]++
		}
	}
	if sawWork {
		e.stats.Cycles++
		e.cycles.Store(e.stats.Cycles)
		if ph != nil {
			ph.Cycles++
		}
	}
	e.endCycle()
}

// consumePhasesAborted registers phase markers exactly as a serial scan that
// aborted at failID would have: every marker of the shards before failShard,
// plus failShard's markers up to and including failID.
func (e *engine) consumePhasesAborted(failShard int, failID int32) {
	for w := 0; w <= failShard; w++ {
		if e.workerLive[w] == 0 {
			continue
		}
		for _, id := range e.shards[w].phaseIDs {
			if w == failShard && id > failID {
				break
			}
			e.consumePhases(int(id))
		}
	}
}

// shardFinish is stage 3 of the fast path: after release, every worker
// scatters the cycle's read results to its own shard from the merged channel
// registers — in parallel with the other workers — and resets its fold
// aggregates. The registers stay stable until the next merge, which cannot
// start before every worker has re-arrived, i.e. after every scatter.
func (e *engine) shardFinish(wk *shardWorker) {
	for _, r := range wk.readers {
		if e.chWriter[r.ch] >= 0 {
			e.results[r.id].r = readResult{msg: e.chMsg[r.ch], ok: true}
		} else {
			e.results[r.id].r = readResult{}
		}
	}
	for _, c := range wk.touched {
		wk.claim[c] = -1
	}
	wk.touched = wk.touched[:0]
	wk.readers = wk.readers[:0]
	wk.exits = wk.exits[:0]
	wk.phaseIDs = wk.phaseIDs[:0]
}

// workerRun is the sharded engine's per-worker loop. One iteration is one
// cycle: refresh the active list, wake and collect the shard's submissions,
// pre-aggregate them (stage 1), rendezvous (stage 2 on the last arriver),
// then scatter results (stage 3).
func (e *engine) workerRun(w int) {
	wk := &e.shards[w]
	first := true
	for {
		if e.failed.Load() {
			e.wakeShardProcs(wk)
			return
		}
		g := e.barGen.Load()
		e.refreshActive(wk)
		if len(wk.active) == 0 && len(wk.sleep) == 0 {
			// The whole shard has exited; the resolver already retired this
			// worker from the barrier head count (markExited).
			return
		}
		if pending := len(wk.active); pending > 0 {
			// The countdown must be primed before the first gate opens: a
			// woken processor may submit immediately. Round 0 is special —
			// the countdown was primed by initShards and the processors
			// self-start, so the worker neither stores nor wakes.
			if !first {
				e.shardPend[w].v.Store(int64(pending))
				for _, id := range wk.active {
					e.gates[id] <- struct{}{}
				}
			}
			<-e.workerWake[w]
			if e.failed.Load() {
				e.wakeShardProcs(wk)
				return
			}
			// Move newly announced IdleN batches to the sleep heap: the
			// announcing submission is this round's opIdle, the processor
			// sleeps through the stretch and rejoins at round+n.
			keep := wk.active[:0]
			for _, id := range wk.active {
				if n := e.idleBatch[id].v.Load(); n != 0 {
					e.idleBatch[id].v.Store(0)
					wk.pushSleep(wk.round+int64(n), id)
				} else {
					keep = append(keep, id)
				}
			}
			wk.active = keep
		}
		// A round with no active processor skips the token wait entirely:
		// every owned live processor is mid-batch, their slots already hold
		// this cycle's opIdle, and the cycle costs this worker O(1).
		if e.fast {
			e.foldShard(wk)
		}
		// Worker rendezvous: the last arriver merges the shard aggregates
		// (fast path) or resolves serially over the active lists (general).
		if e.arrived.Add(1) == e.expected.Load() {
			e.resolve()
		} else {
			e.await(g)
		}
		if e.failed.Load() {
			e.wakeShardProcs(wk)
			return
		}
		if e.fast {
			e.shardFinish(wk)
		}
		wk.round++
		first = false
	}
}
