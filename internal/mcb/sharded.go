package mcb

import "runtime"

// This file is the sharded execution engine (Config.Engine = EngineSharded):
// the p >> cores regime the paper's algorithms are stated in. Processor
// programs still run on their own goroutines (they are arbitrary blocking
// func(Node) bodies), but the per-cycle coordination is delegated to
// M = min(GOMAXPROCS, p) workers, each owning a contiguous shard of p/M
// processors:
//
//   - A processor submits its cycle op by writing its slot (exactly as in
//     goroutine mode), decrementing its worker's outstanding-submission
//     countdown, and parking on its private gate channel. It never touches
//     the shared barrier.
//   - The processor whose decrement drains the countdown hands its worker a
//     wake token. The worker then folds newly announced IdleN batches into
//     its replay table and arrives at the shared arrived/expected barrier,
//     which in this mode counts workers, not processors.
//   - The last worker to arrive resolves the cycle with the SAME resolver as
//     the goroutine engine (resolveFast / resolveGeneral, processor-id
//     order), which is what makes Reports byte-identical across engines and
//     preserves the exact fault/outage/crash semantics.
//   - After release, each worker wakes exactly the owned processors that must
//     produce a new submission — dead processors and processors inside an
//     IdleN batch are skipped, their previous opIdle slot standing for the
//     cycle — and goes back to sleep until the countdown drains again.
//
// The per-cycle cost model: one gate send + one countdown RMW per awake
// processor (a buffered-channel handoff to a blocked receiver, the cheapest
// wake the runtime offers), plus an O(M) worker rendezvous — versus the
// goroutine engine's O(p) barrier arrivals with up to barrierYields scheduler
// passes each, and an O(p) condvar broadcast storm per cycle once spinning
// stops catching the resolver. See DESIGN.md "Sharded execution".
//
// Memory ordering: a processor's slot write happens-before the worker's (and
// resolver's) read of it via the countdown RMW chain and the wake token; the
// resolver's result write happens-before the processor's read via the barrier
// generation bump and the gate send. All edges are sync/atomic or channel
// operations, so the race detector checks them for real.

// initShards sizes the worker set and allocates the sharded-mode state.
// Called from Run before any goroutine starts. The countdowns start primed:
// in round 0 the processors submit unprompted (nobody is parked yet), so the
// workers' first act is to wait for their tokens.
func (e *engine) initShards() {
	p := e.cfg.P
	m := runtime.GOMAXPROCS(0)
	if m > p {
		m = p
	}
	if m < 1 {
		m = 1
	}
	chunk := (p + m - 1) / m
	nw := (p + chunk - 1) / chunk
	e.shardChunk = chunk
	e.shards = make([]shardWorker, nw)
	e.gates = make([]chan struct{}, p)
	for i := range e.gates {
		e.gates[i] = make(chan struct{}, 1)
	}
	e.idleBatch = make([]paddedMirror, p)
	e.shardPend = make([]paddedInt64, nw)
	e.workerWake = make([]chan struct{}, nw)
	e.workerLive = make([]int, nw)
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > p {
			hi = p
		}
		e.shards[w] = shardWorker{lo: lo, hi: hi, skip: make([]int64, hi-lo)}
		e.workerLive[w] = hi - lo
		e.shardPend[w].v.Store(int64(hi - lo))
		e.workerWake[w] = make(chan struct{}, 1)
	}
	e.activeWorkers = nw
	e.expected.Store(int32(nw))
}

// stepSharded is the sharded-mode counterpart of step: processor id has
// already written its submission into slots[id]; announce it to the owning
// worker and park until the cycle is resolved. Exiting processors do not wait
// for the outcome, exactly like the goroutine engine.
func (e *engine) stepSharded(id int, kind opKind) readResult {
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
	e.submitShard(id)
	if kind == opExit {
		return readResult{}
	}
	<-e.gates[id]
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
	return e.results[id].r
}

// submitShard counts processor id's submission against its worker's
// countdown; the last submission of the shard hands the worker its wake
// token. The send is non-blocking because abort() may already have stuffed
// the buffer.
func (e *engine) submitShard(id int) {
	w := id / e.shardChunk
	if e.shardPend[w].v.Add(-1) == 0 {
		select {
		case e.workerWake[w] <- struct{}{}:
		default:
		}
	}
}

// stepIdleBatch announces an n-cycle idle stretch (the slot already holds the
// opIdle submission and the mirror has been pre-credited, see Proc.IdleN) and
// parks for the whole stretch: the worker replays the slot for the remaining
// n-1 cycles without waking this goroutine, and the gate send only comes with
// the result of the batch's LAST cycle.
func (e *engine) stepIdleBatch(id int, n int) {
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
	// The batch length must be visible before the submission is counted: the
	// worker reads idleBatch only after receiving the token the count drains
	// into.
	e.idleBatch[id].v.Store(uint64(n))
	e.submitShard(id)
	<-e.gates[id]
	if e.failed.Load() {
		panic(abortPanic{e.abortError()})
	}
}

// wakeShardProcs releases every owned processor gate (non-blocking: cap-1
// buffers make the token idempotent). Called by a worker leaving its loop on
// failure, so that parked processors wake, observe the failed flag and unwind
// — including a processor that parks AFTER this runs, since the token stays
// buffered for it.
func (e *engine) wakeShardProcs(wk *shardWorker) {
	for i := wk.lo; i < wk.hi; i++ {
		select {
		case e.gates[i] <- struct{}{}:
		default:
		}
	}
}

// workerRun is the sharded engine's per-worker loop. One iteration is one
// cycle: collect the shard's submissions, rendezvous, (maybe) resolve, wake
// the shard for the next cycle.
func (e *engine) workerRun(w int) {
	wk := &e.shards[w]
	first := true
	for {
		if e.failed.Load() {
			e.wakeShardProcs(wk)
			return
		}
		g := e.barGen.Load()
		// Count the owned processors that owe a submission this cycle: the
		// live ones not inside an IdleN batch. skip is decremented in the
		// wake pass below so the two passes agree.
		ownLive, pending := 0, int64(0)
		for i := wk.lo; i < wk.hi; i++ {
			if e.live[i] {
				ownLive++
				if wk.skip[i-wk.lo] == 0 {
					pending++
				}
			}
		}
		if ownLive == 0 {
			// The whole shard has exited; the resolver already retired this
			// worker from the barrier head count (markExited).
			return
		}
		if pending > 0 {
			// The countdown must be primed before the first gate opens: a
			// woken processor may submit immediately. Round 0 is special —
			// the countdown was primed by initShards and the processors
			// self-start, so the worker neither stores nor wakes.
			if !first {
				e.shardPend[w].v.Store(pending)
			}
			for i := wk.lo; i < wk.hi; i++ {
				if !e.live[i] {
					continue
				}
				if s := wk.skip[i-wk.lo]; s > 0 {
					wk.skip[i-wk.lo] = s - 1
					continue
				}
				if !first {
					e.gates[i] <- struct{}{}
				}
			}
			<-e.workerWake[w]
			if e.failed.Load() {
				e.wakeShardProcs(wk)
				return
			}
			// Fold newly announced IdleN batches into the replay table: a
			// batch of n covers the cycle just submitted plus n-1 gate-free
			// replays of the same opIdle slot.
			for i := wk.lo; i < wk.hi; i++ {
				if e.idleBatch[i].v.Load() != 0 {
					wk.skip[i-wk.lo] = int64(e.idleBatch[i].v.Swap(0)) - 1
				}
			}
		} else {
			// Every live owned processor is mid-batch: their slots already
			// hold this cycle's opIdle and nobody needs waking.
			for i := wk.lo; i < wk.hi; i++ {
				if e.live[i] {
					wk.skip[i-wk.lo]--
				}
			}
		}
		first = false
		// Worker rendezvous: the last arriver resolves the cycle for all p
		// processors with the shared resolver.
		if e.arrived.Add(1) == e.expected.Load() {
			e.resolve()
		} else {
			e.await(g)
		}
	}
}
