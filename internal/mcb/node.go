package mcb

import "fmt"

// Node is the processor-side interface of the MCB model: everything an
// algorithm needs to run in lock-step on a network. Both *Proc (a processor
// of a real engine run) and *VProc (a processor of a simulated network,
// Section 2) implement it, so every algorithm in this repository can run
// natively or under simulation without change.
type Node interface {
	// ID returns the processor index in [0, P()).
	ID() int
	// P returns the number of processors.
	P() int
	// K returns the number of broadcast channels.
	K() int
	// WriteRead broadcasts on writeCh and reads readCh in the same cycle.
	WriteRead(writeCh int, m Message, readCh int) (Message, bool)
	// Write broadcasts on writeCh without reading this cycle.
	Write(writeCh int, m Message)
	// Read reads readCh; ok=false reports silence.
	Read(readCh int) (Message, bool)
	// Idle spends one cycle without touching any channel.
	Idle()
	// IdleN spends n cycles idle.
	IdleN(n int)
	// Abortf fails the whole computation with a formatted error.
	Abortf(format string, args ...any)
	// AccountAux adjusts the auxiliary-memory estimate by delta words.
	AccountAux(delta int64)
	// Phase marks the start of a named accounting phase (see Proc.Phase).
	// Implementations without phase accounting treat it as a no-op.
	Phase(name string)
	// Cycles returns the number of cycles this processor has participated
	// in so far.
	Cycles() int64
}

var (
	_ Node = (*Proc)(nil)
	_ Node = (*VProc)(nil)
)

// IdleN spends n virtual cycles idle. n <= 0 is a no-op.
func (v *VProc) IdleN(n int) {
	for i := 0; i < n; i++ {
		v.Idle()
	}
}

// Abortf fails the computation. The structured vAbort panic unwinds the
// virtual processor; the host driver surfaces it through the engine's typed
// taxonomy as an *AbortError carrying this virtual processor's id.
func (v *VProc) Abortf(format string, args ...any) {
	panic(&vAbort{vproc: v.id, msg: fmt.Sprintf(format, args...)})
}

// AccountAux is a no-op under simulation (the host engine owns the
// accounting and cannot attribute virtual memory).
func (v *VProc) AccountAux(delta int64) {}

// Phase is a no-op under simulation: the host engine owns the accounting,
// and phases of the simulated network would misattribute the host's cycles.
func (v *VProc) Phase(name string) {}

// Cycles returns the number of virtual cycles this processor has
// participated in.
func (v *VProc) Cycles() int64 { return v.vcycles }
