package mcb

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mcbnet/internal/trace"
)

// Cross-path determinism regression: the fast resolver (no faults, no trace)
// and the general resolver must be observably identical, and every resolver
// must be schedule-independent — identical seeds and fault plans produce
// byte-identical Report JSON across GOMAXPROCS settings and repeated runs.

// detWorkload is a deterministic mixed workload: every cycle c of the dense
// block has k collision-free writers (processor (c+j) mod p writes channel
// j), everyone else reads or idles, phase markers land every 16 cycles, and
// payloads vary so MaxAbs moves. A sparse coda follows — one writer per
// segment while everyone else sleeps through an IdleN batch spanning the
// whole segment — so the sharded engine's sleeper bookkeeping (wake rounds,
// phase markers attached to batch announcements, faults striking mid-batch)
// is held to the same byte-identity as the dense traffic. It never branches
// on read payloads, so fault injection cannot change the traffic pattern —
// only the observed deliveries.
func detWorkload(p, k, cycles int) func(Node) {
	return func(pr Node) {
		id := pr.ID()
		for c := 0; c < cycles; c++ {
			if c%16 == 0 {
				pr.Phase(fmt.Sprintf("seg%d", c/16))
			}
			j := id - c
			for j < 0 {
				j += p
			}
			j %= p
			switch {
			case j < k:
				// This processor is the writer of channel j this cycle.
				pr.WriteRead(j, MsgX(uint8(j), int64(c*1000+id)), (c+id)%k)
			case (c+id)%3 == 0:
				pr.Idle()
			default:
				pr.Read((c + id) % k)
			}
		}
		const segs, segLen = 4, 8
		for s := 0; s < segs; s++ {
			pr.Phase(fmt.Sprintf("sparse%d", s))
			if s%p == id {
				for i := 0; i < segLen; i++ {
					pr.WriteRead(0, MsgX(2, int64(s*segLen+i)), 0)
				}
			} else {
				pr.IdleN(segLen)
			}
		}
		pr.AccountAux(int64(id + 1))
		pr.IdleN(id % 4) // ragged tail exercises exit + IdleN interplay
	}
}

// reportJSON runs the workload and renders the (Result, error)-derived
// Report as canonical bytes. Errors are folded into the Extra field so a
// faulted run (e.g. CrashError) still yields comparable output.
func reportJSON(t *testing.T, cfg Config, p, k, cycles int) []byte {
	t.Helper()
	res, err := RunUniform(cfg, detWorkload(p, k, cycles))
	if res == nil {
		t.Fatalf("run returned nil result (err=%v)", err)
	}
	rep := NewReport(cfg, &res.Stats)
	if err != nil {
		rep.Extra = map[string]any{"error": err.Error()}
	}
	b, jerr := rep.JSON()
	if jerr != nil {
		t.Fatal(jerr)
	}
	return b
}

func detConfig(p, k int, plan *FaultPlan, trace bool) Config {
	return Config{P: p, K: k, Trace: trace, Faults: plan, StallTimeout: time.Minute}
}

// TestCrossPathDeterminism holds the fast and general resolve paths to
// byte-identical Report JSON, across GOMAXPROCS in {1, 4, NumCPU} and
// repeated runs, with and without an active fault plan.
func TestCrossPathDeterminism(t *testing.T) {
	const p, k, cycles = 9, 3, 96
	plan := &FaultPlan{
		Seed:        42,
		DropRate:    0.05,
		CorruptRate: 0.05,
		Checksum:    true,
		Outages:     []Outage{{Ch: 1, From: 20, To: 40}},
		// Proc 7 crashes mid-dense-block; proc 5 crashes as a sparse-coda
		// sleeper, mid-IdleN-batch.
		Crashes: []Crash{{Proc: 7, Cycle: 60}, {Proc: 5, Cycle: 110}},
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	procsSweep := []int{1, 4, runtime.NumCPU()}

	var fastRef, faultRef []byte
	for _, gmp := range procsSweep {
		runtime.GOMAXPROCS(gmp)
		for rep := 0; rep < 3; rep++ {
			tag := fmt.Sprintf("GOMAXPROCS=%d rep=%d", gmp, rep)

			// Fast path: no faults, no trace.
			fast := reportJSON(t, detConfig(p, k, nil, false), p, k, cycles)
			// General path, same semantics: trace on, no faults. The Report
			// schema does not include the trace, so the two paths must agree
			// byte for byte.
			general := reportJSON(t, detConfig(p, k, nil, true), p, k, cycles)
			if fastRef == nil {
				fastRef = fast
			}
			if !bytes.Equal(fast, fastRef) {
				t.Fatalf("%s: fast-path report diverged:\n%s\n--- want ---\n%s", tag, fast, fastRef)
			}
			if !bytes.Equal(general, fastRef) {
				t.Fatalf("%s: general-path report differs from fast path:\n%s\n--- want ---\n%s", tag, general, fastRef)
			}

			// General path with an active fault plan (drops, corruption,
			// outage window, crash-stop): replay must be byte-identical.
			faulty := reportJSON(t, detConfig(p, k, plan.Clone(), false), p, k, cycles)
			if faultRef == nil {
				faultRef = faulty
			}
			if !bytes.Equal(faulty, faultRef) {
				t.Fatalf("%s: faulted report diverged:\n%s\n--- want ---\n%s", tag, faulty, faultRef)
			}
		}
	}
	if bytes.Equal(fastRef, faultRef) {
		t.Fatal("fault plan injected nothing (fast and faulted reports identical); workload lost its fault coverage")
	}
}

// TestCrossEngineDeterminism holds the goroutine and sharded engines to
// byte-identical Report JSON — fast path, general path (trace) and a faulted
// run (drops, corruption, outage window, crash-stop) — across GOMAXPROCS in
// {1, 4, NumCPU} (which changes the sharded worker count) and repeated runs.
func TestCrossEngineDeterminism(t *testing.T) {
	const p, k, cycles = 9, 3, 96
	plan := &FaultPlan{
		Seed:        42,
		DropRate:    0.05,
		CorruptRate: 0.05,
		Checksum:    true,
		Outages:     []Outage{{Ch: 1, From: 20, To: 40}},
		// Proc 7 crashes mid-dense-block; proc 5 crashes as a sparse-coda
		// sleeper, mid-IdleN-batch.
		Crashes: []Crash{{Proc: 7, Cycle: 60}, {Proc: 5, Cycle: 110}},
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	procsSweep := []int{1, 4, runtime.NumCPU()}

	var fastRef, faultRef []byte
	for _, gmp := range procsSweep {
		runtime.GOMAXPROCS(gmp)
		for rep := 0; rep < 3; rep++ {
			for _, mode := range []EngineMode{EngineGoroutine, EngineSharded} {
				tag := fmt.Sprintf("GOMAXPROCS=%d rep=%d engine=%s", gmp, rep, mode)

				cfg := detConfig(p, k, nil, false)
				cfg.Engine = mode
				fast := reportJSON(t, cfg, p, k, cycles)
				if fastRef == nil {
					fastRef = fast
				}
				if !bytes.Equal(fast, fastRef) {
					t.Fatalf("%s: fast-path report diverged:\n%s\n--- want ---\n%s", tag, fast, fastRef)
				}

				cfg = detConfig(p, k, nil, true)
				cfg.Engine = mode
				general := reportJSON(t, cfg, p, k, cycles)
				if !bytes.Equal(general, fastRef) {
					t.Fatalf("%s: general-path report differs:\n%s\n--- want ---\n%s", tag, general, fastRef)
				}

				cfg = detConfig(p, k, plan.Clone(), false)
				cfg.Engine = mode
				faulty := reportJSON(t, cfg, p, k, cycles)
				if faultRef == nil {
					faultRef = faulty
				}
				if !bytes.Equal(faulty, faultRef) {
					t.Fatalf("%s: faulted report diverged:\n%s\n--- want ---\n%s", tag, faulty, faultRef)
				}
			}
		}
	}
	if bytes.Equal(fastRef, faultRef) {
		t.Fatal("fault plan injected nothing; workload lost its fault coverage")
	}
}

// TestFastPathSelection pins down which configurations take which resolver:
// an inactive (zero or nil) fault plan must not force the general path, and
// an attached cycle recorder must.
func TestFastPathSelection(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		fast bool
	}{
		{"default", Config{P: 2, K: 1}, true},
		{"zero-plan", Config{P: 2, K: 1, Faults: &FaultPlan{}}, true},
		{"trace", Config{P: 2, K: 1, Trace: true}, false},
		{"recorder", Config{P: 2, K: 1, Recorder: trace.New(2, 1, 64)}, false},
		{"drops", Config{P: 2, K: 1, Faults: &FaultPlan{DropRate: 0.1}}, false},
		{"outage", Config{P: 2, K: 1, Faults: &FaultPlan{Outages: []Outage{{Ch: 0, From: 0, To: 1}}}}, false},
	}
	for _, c := range cases {
		got := fastEligible(c.cfg, newFaultState(c.cfg.Faults, c.cfg.P))
		if got != c.fast {
			t.Errorf("%s: fast-path selection = %v, want %v", c.name, got, c.fast)
		}
	}
}
