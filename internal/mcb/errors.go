package mcb

import (
	"fmt"
	"sort"
	"time"
)

// This file is the typed failure taxonomy of the engine. Every abort reason
// has a concrete error type usable with errors.As, and every type wraps
// ErrAborted so legacy errors.Is(err, ErrAborted) checks keep working.
//
//	CollisionError  two writers on one channel (engine.go; the model's
//	                "computation fails")
//	AbortError      a processor program called Abortf (native or virtual)
//	CrashError      one or more processors crash-stopped (fault injection)
//	StallError      the lock-step protocol wedged: no cycle completed within
//	                the stall timeout
//	BudgetError     a run budget was exceeded (cycle limit or message size)
//	CorruptionError output verification failed after a run "succeeded"
//	                (silent payload corruption detected by recount)

// AbortError reports a processor-initiated abort: the program detected an
// algorithm-level invariant violation and called Abortf. VProc is the virtual
// processor id when the abort was raised inside a simulated MCB(p', k') run
// (Section 2), -1 for a native run.
type AbortError struct {
	Proc  int    // engine processor id
	VProc int    // virtual processor id, -1 if not simulated
	Msg   string // the formatted Abortf message
}

func (e *AbortError) Error() string {
	if e.VProc >= 0 {
		return fmt.Sprintf("mcb: virtual processor %d (host processor %d) aborted: %s", e.VProc, e.Proc, e.Msg)
	}
	return fmt.Sprintf("mcb: processor %d aborted: %s", e.Proc, e.Msg)
}

func (e *AbortError) Unwrap() error { return ErrAborted }

// CrashError reports that one or more processors crash-stopped during the
// run (injected via FaultPlan.Crashes). A crash-stopped processor leaves the
// lock-step protocol silently; the surviving processors keep running, so the
// run may complete — but its output cannot be trusted, which is why the
// engine surfaces the crash as an error even when every surviving program
// returned. The partial Result accompanying the error covers the completed
// cycles.
type CrashError struct {
	// Procs lists the crashed processor ids in increasing order.
	Procs []int
	// Cycle is the earliest crash cycle (the number of cycles the first
	// crashed processor completed before stopping).
	Cycle int64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("mcb: %d processor(s) crash-stopped %v (first after cycle %d)", len(e.Procs), e.Procs, e.Cycle)
}

func (e *CrashError) Unwrap() error { return ErrAborted }

// ProcState is a per-processor diagnostic snapshot taken from the engine's
// slot table when a stall is detected.
type ProcState struct {
	Proc   int    // processor id
	LastOp string // last issued cycle operation ("write", "read", ...)
	Steps  int64  // cycle operations issued so far
}

func (s ProcState) String() string {
	return fmt.Sprintf("P%d(%s@%d)", s.Proc, s.LastOp, s.Steps)
}

// StallError reports that no cycle completed within the stall timeout: some
// processor stopped issuing cycle operations, wedging the lock-step barrier.
// Stalled lists the processors the watchdog holds responsible — the live
// processors with the fewest issued operations (everyone else is blocked in
// the barrier waiting for them) — with their last issued op.
type StallError struct {
	Timeout time.Duration
	Cycle   int64 // cycles completed when the watchdog fired
	Stalled []ProcState
}

func (e *StallError) Error() string {
	return fmt.Sprintf("mcb: no cycle completed in %v (stalled after cycle %d; suspected processors: %v)",
		e.Timeout, e.Cycle, e.Stalled)
}

func (e *StallError) Unwrap() error { return ErrAborted }

// BudgetError reports that a run budget was exceeded. Budget is "cycles"
// (Config.MaxCycles) or "message-size" (Config.MaxAbs); Proc is the offending
// processor for per-processor budgets, -1 for global ones.
type BudgetError struct {
	Budget   string
	Limit    int64
	Observed int64
	Proc     int
}

func (e *BudgetError) Error() string {
	if e.Proc >= 0 {
		return fmt.Sprintf("mcb: %s budget exceeded by processor %d: observed %d, limit %d", e.Budget, e.Proc, e.Observed, e.Limit)
	}
	return fmt.Sprintf("mcb: %s budget exceeded: observed %d, limit %d", e.Budget, e.Observed, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrAborted }

// CorruptionError reports that a run completed without an engine error but
// its output failed verification: some payload was corrupted (or dropped)
// silently and the result is wrong. It is raised by the verify-and-retry
// layer, never by the engine itself (the engine cannot know an algorithm's
// correctness condition).
type CorruptionError struct {
	Op     string // the operation verified, e.g. "sort" or "select"
	Detail string // what the verifier observed
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("mcb: %s output failed verification: %s", e.Op, e.Detail)
}

func (e *CorruptionError) Unwrap() error { return ErrAborted }

// opName renders an opKind for diagnostics.
func opName(k opKind) string {
	switch k {
	case opIdle:
		return "idle"
	case opWrite:
		return "write"
	case opRead:
		return "read"
	case opWriteRead:
		return "write+read"
	case opExit:
		return "exit"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// stallDiagnostics snapshots the per-processor slot mirror and returns the
// suspected stalled processors: those that have not exited and have issued
// the fewest cycle operations. Safe to call concurrently with running
// processors (the mirror is atomic).
func (e *engine) stallDiagnostics() []ProcState {
	type snap struct {
		steps int64
		kind  opKind
	}
	snaps := make([]snap, e.cfg.P)
	min := int64(-1)
	for id := range snaps {
		v := e.procMirror[id].v.Load()
		s := snap{steps: int64(v >> 3), kind: opKind(v & 7)}
		snaps[id] = s
		if s.kind == opExit {
			continue
		}
		if min < 0 || s.steps < min {
			min = s.steps
		}
	}
	var out []ProcState
	for id, s := range snaps {
		if s.kind == opExit || s.steps != min {
			continue
		}
		op := opName(s.kind)
		if s.steps == 0 {
			op = "none"
		}
		out = append(out, ProcState{Proc: id, LastOp: op, Steps: s.steps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Proc < out[j].Proc })
	return out
}
