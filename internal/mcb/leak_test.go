package mcb

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to the baseline
// (or a small slack above it — the runtime keeps a few service goroutines
// alive) and fails the test if it never does within the deadline. Stdlib
// only: no leak-detection dependency.
func waitGoroutines(t *testing.T, base int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNoLeakAfterCollisionAbort(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		_, err := RunUniform(cfg(4, 2), func(pr Node) {
			// All four processors write channel 0: guaranteed collision.
			pr.Write(0, MsgX(1, int64(pr.ID())))
			pr.IdleN(3)
		})
		var ce *CollisionError
		if !errors.As(err, &ce) {
			t.Fatalf("iteration %d: got %v, want CollisionError", i, err)
		}
	}
	waitGoroutines(t, base, 3*time.Second)
}

func TestNoLeakAfterStallAbort(t *testing.T) {
	base := runtime.NumGoroutine()
	c := cfg(3, 1)
	c.StallTimeout = 50 * time.Millisecond
	progs := []func(Node){
		func(pr Node) { pr.IdleN(8) },
		func(pr Node) { pr.IdleN(8) },
		func(pr Node) {
			pr.Idle()
			// Wedge well past the stall timeout, then issue the next op so
			// the goroutine unwinds through the failed-run check within the
			// abort grace period.
			time.Sleep(300 * time.Millisecond)
			pr.IdleN(7)
		},
	}
	res, err := Run(c, progs)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}
	if res == nil {
		t.Fatal("the wedged processor resumed within the grace period, so a partial result must be returned")
	}
	waitGoroutines(t, base, 3*time.Second)
}

func TestNoLeakAfterCrashAbort(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		c := cfg(4, 2)
		c.Faults = &FaultPlan{Seed: uint64(i + 1), Crashes: []Crash{{Proc: 2, Cycle: 3}}}
		_, err := Run(c, relayPrograms(4, 2, 10, nil))
		var ce *CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("iteration %d: got %v, want CrashError", i, err)
		}
	}
	waitGoroutines(t, base, 3*time.Second)
}

func TestNoLeakAfterAbortf(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		_, err := RunUniform(cfg(4, 2), func(pr Node) {
			pr.Idle()
			if pr.ID() == 1 {
				pr.Abortf("deliberate")
			}
			pr.IdleN(5)
		})
		var ae *AbortError
		if !errors.As(err, &ae) {
			t.Fatalf("iteration %d: got %v, want AbortError", i, err)
		}
		if ae.Proc != 1 || ae.VProc != -1 {
			t.Fatalf("iteration %d: AbortError = %+v, want Proc=1 VProc=-1", i, ae)
		}
	}
	waitGoroutines(t, base, 3*time.Second)
}

// TestAbortGraceConfigurable covers the configurable abort grace window: a
// processor wedged in local computation for longer than AbortGrace makes Run
// give up and return a nil Result (touching Stats would race), but the
// goroutine still drains once the processor resumes — no permanent leak.
func TestAbortGraceConfigurable(t *testing.T) {
	base := runtime.NumGoroutine()
	c := cfg(2, 1)
	c.StallTimeout = 40 * time.Millisecond
	c.AbortGrace = 50 * time.Millisecond
	release := make(chan struct{})
	progs := []func(Node){
		func(pr Node) { pr.IdleN(4) },
		func(pr Node) {
			pr.Idle()
			<-release // wedged until the test releases it, far past the grace
			pr.IdleN(3)
		},
	}
	start := time.Now()
	res, err := Run(c, progs)
	elapsed := time.Since(start)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}
	if res != nil {
		t.Fatal("a straggler past AbortGrace means Stats is not quiescent: Result must be nil")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Run took %v; the 50ms AbortGrace was not honored", elapsed)
	}
	close(release)
	waitGoroutines(t, base, 3*time.Second)
}

func TestStallErrorDiagnostics(t *testing.T) {
	c := cfg(3, 1)
	c.StallTimeout = 50 * time.Millisecond
	progs := []func(Node){
		func(pr Node) {
			pr.Write(0, MsgX(1, 10))
			pr.IdleN(5)
		},
		func(pr Node) {
			pr.Read(0)
			pr.IdleN(5)
		},
		func(pr Node) {
			pr.Idle()
			pr.Idle()
			// Stops issuing ops after two idles: the wedged processor.
			time.Sleep(300 * time.Millisecond)
			pr.IdleN(4)
		},
	}
	_, err := Run(c, progs)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}
	if se.Timeout != c.StallTimeout {
		t.Fatalf("StallError.Timeout = %v, want %v", se.Timeout, c.StallTimeout)
	}
	if se.Cycle != 2 {
		t.Fatalf("StallError.Cycle = %d, want 2 completed cycles", se.Cycle)
	}
	if len(se.Stalled) != 1 || se.Stalled[0].Proc != 2 {
		t.Fatalf("Stalled = %v, want exactly processor 2", se.Stalled)
	}
	ps := se.Stalled[0]
	if ps.LastOp != "idle" || ps.Steps != 2 {
		t.Fatalf("ProcState = %+v, want LastOp=idle Steps=2", ps)
	}
}

func TestStallErrorBeforeFirstOp(t *testing.T) {
	c := cfg(2, 1)
	c.StallTimeout = 40 * time.Millisecond
	progs := []func(Node){
		func(pr Node) { pr.IdleN(3) },
		func(pr Node) {
			// Never issues an op before the watchdog fires.
			time.Sleep(250 * time.Millisecond)
			pr.IdleN(3)
		},
	}
	_, err := Run(c, progs)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}
	if len(se.Stalled) != 1 || se.Stalled[0].Proc != 1 || se.Stalled[0].LastOp != "none" || se.Stalled[0].Steps != 0 {
		t.Fatalf("Stalled = %v, want processor 1 with no op issued", se.Stalled)
	}
}
