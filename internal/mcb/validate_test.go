package mcb

import (
	"strings"
	"testing"
)

func TestValidateTraceAcceptsRealRun(t *testing.T) {
	c := cfg(8, 4)
	c.Trace = true
	res, err := RunUniform(c, func(pr Node) {
		id := pr.ID()
		for i := 0; i < 20; i++ {
			if id < 4 {
				pr.WriteRead(id, MsgX(1, int64(i)), (id+1)%4)
			} else {
				pr.Read(id % 4)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(res.Trace, 8, 4); err != nil {
		t.Fatal(err)
	}
	u := TraceUtilization(res.Trace, 4)
	if u.Overall != 1.0 {
		t.Errorf("overall utilization = %f, want 1.0 (all channels busy every cycle)", u.Overall)
	}
	for ch, f := range u.PerChannel {
		if f != 1.0 {
			t.Errorf("channel %d utilization %f", ch, f)
		}
	}
}

func TestValidateTraceRejectsCorruptTraces(t *testing.T) {
	mk := func(cycles ...CycleTrace) *Trace { return &Trace{Cycles: cycles} }
	msg := MsgX(0, 1)
	cases := []struct {
		name string
		tr   *Trace
		want string
	}{
		{"nil", nil, "nil trace"},
		{"channel-collision", mk(CycleTrace{Writes: []WriteEvent{{Proc: 0, Ch: 0, Msg: msg}, {Proc: 1, Ch: 0, Msg: msg}}}), "written twice"},
		{"double-write", mk(CycleTrace{Writes: []WriteEvent{{Proc: 0, Ch: 0, Msg: msg}, {Proc: 0, Ch: 1, Msg: msg}}}), "writes twice"},
		{"double-read", mk(CycleTrace{Reads: []ReadEvent{{Proc: 0, Ch: 0}, {Proc: 0, Ch: 1}}}), "reads twice"},
		{"bad-channel", mk(CycleTrace{Writes: []WriteEvent{{Proc: 0, Ch: 9, Msg: msg}}}), "out of range"},
		{"bad-proc", mk(CycleTrace{Writes: []WriteEvent{{Proc: 42, Ch: 0, Msg: msg}}}), "out of range"},
		{"phantom-read", mk(CycleTrace{Reads: []ReadEvent{{Proc: 0, Ch: 0, OK: true, Msg: msg}}}), "written=false"},
		{"wrong-payload", mk(CycleTrace{
			Writes: []WriteEvent{{Proc: 0, Ch: 0, Msg: msg}},
			Reads:  []ReadEvent{{Proc: 1, Ch: 0, OK: true, Msg: MsgX(0, 2)}},
		}), "differs"},
	}
	for _, c := range cases {
		err := ValidateTrace(c.tr, 4, 2)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestTraceUtilizationPartial(t *testing.T) {
	tr := &Trace{Cycles: []CycleTrace{
		{Writes: []WriteEvent{{Proc: 0, Ch: 0, Msg: MsgX(0, 1)}}},
		{Writes: []WriteEvent{{Proc: 0, Ch: 0, Msg: MsgX(0, 1)}, {Proc: 1, Ch: 1, Msg: MsgX(0, 2)}}},
		{},
		{Writes: []WriteEvent{{Proc: 1, Ch: 1, Msg: MsgX(0, 3)}}},
	}}
	u := TraceUtilization(tr, 2)
	if u.PerChannel[0] != 0.5 || u.PerChannel[1] != 0.5 {
		t.Errorf("per-channel = %v", u.PerChannel)
	}
	if u.Overall != 0.5 {
		t.Errorf("overall = %f", u.Overall)
	}
	empty := TraceUtilization(nil, 2)
	if empty.Overall != 0 {
		t.Errorf("nil trace utilization = %f", empty.Overall)
	}
}
