package mcb

import "fmt"

// Stats aggregates the two complexity measures of the MCB model, plus
// secondary accounting useful for experiments.
type Stats struct {
	// Cycles is the total number of synchronous cycles consumed by the
	// computation. Cycles advance globally: an idle processor still spends
	// the cycle.
	Cycles int64
	// Messages is the total number of broadcast messages (channel writes).
	Messages int64
	// PerProc[i] is the number of messages written by processor i.
	PerProc []int64
	// PerChannel[c] is the number of messages carried by channel c.
	PerChannel []int64
	// MaxAbs is the largest absolute payload field value broadcast, used to
	// validate the O(log beta) message-size assumption.
	MaxAbs int64
	// MaxAux is the largest auxiliary-memory watermark (in words) reported
	// by any processor via Proc.AccountAux. Zero if never reported.
	MaxAux int64
	// Phases is the per-phase breakdown of Cycles and Messages, recorded by
	// the engine from Proc.Phase markers. Empty if no program ever marked a
	// phase. Segments sharing a name are merged into one entry; entries keep
	// first-seen order.
	Phases []PhaseStats
	// Faults counts the injected faults (zero value when the run had no
	// FaultPlan). Like every other counter, it reflects fully resolved
	// cycles only.
	Faults FaultStats
}

// PhaseStats is the accounting of one named phase of a run: every cycle and
// message between this phase's marker and the next one is attributed here.
// Repeated segments with the same name (e.g. a sort invoked twice) merge
// into a single entry.
type PhaseStats struct {
	Name     string `json:"name"`
	Cycles   int64  `json:"cycles"`
	Messages int64  `json:"messages"`
	// PerChannel[c] is the number of messages carried by channel c during
	// this phase. Nil if the phase broadcast nothing.
	PerChannel []int64 `json:"per_channel,omitempty"`
	// Utilization is Messages / (Cycles * k): the fraction of channel-cycles
	// carrying a message while this phase was active.
	Utilization float64 `json:"utilization"`
}

func (p *PhaseStats) clone() PhaseStats {
	c := *p
	c.PerChannel = append([]int64(nil), p.PerChannel...)
	return c
}

// merge folds t into p (summing counters) and recomputes Utilization from
// the merged totals, inferring k from the channel vector.
func (p *PhaseStats) merge(t *PhaseStats) {
	p.Cycles += t.Cycles
	p.Messages += t.Messages
	p.PerChannel = addVec(p.PerChannel, t.PerChannel)
	p.Utilization = 0
	if k := len(p.PerChannel); k > 0 && p.Cycles > 0 {
		p.Utilization = float64(p.Messages) / (float64(p.Cycles) * float64(k))
	}
}

// PhaseByName returns the phase entry with the given name, or nil.
func (s *Stats) PhaseByName(name string) *PhaseStats {
	for i := range s.Phases {
		if s.Phases[i].Name == name {
			return &s.Phases[i]
		}
	}
	return nil
}

func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d messages=%d maxabs=%d", s.Cycles, s.Messages, s.MaxAbs)
}

// Add accumulates t into s, summing counters and taking maxima of the
// watermarks. It is used to combine stats from consecutive runs that model
// phases of one computation.
func (s *Stats) Add(t *Stats) {
	s.Cycles += t.Cycles
	s.Messages += t.Messages
	if t.MaxAbs > s.MaxAbs {
		s.MaxAbs = t.MaxAbs
	}
	if t.MaxAux > s.MaxAux {
		s.MaxAux = t.MaxAux
	}
	s.PerProc = addVec(s.PerProc, t.PerProc)
	s.PerChannel = addVec(s.PerChannel, t.PerChannel)
	s.Faults.add(&t.Faults)
	for i := range t.Phases {
		tp := &t.Phases[i]
		if sp := s.PhaseByName(tp.Name); sp != nil {
			sp.merge(tp)
		} else {
			s.Phases = append(s.Phases, tp.clone())
		}
	}
}

func addVec(a, b []int64) []int64 {
	if len(b) > len(a) {
		a = append(a, make([]int64, len(b)-len(a))...)
	}
	for i, v := range b {
		a[i] += v
	}
	return a
}

// WriteEvent records one channel write in a trace.
type WriteEvent struct {
	Proc int
	Ch   int
	Msg  Message
}

// ReadEvent records one channel read in a trace. OK reports whether the
// channel was written this cycle (false = silence observed).
type ReadEvent struct {
	Proc int
	Ch   int
	Msg  Message
	OK   bool
}

// CycleTrace records all traffic of one cycle. Phase is the name of the
// accounting phase active during the cycle (empty before the first
// Proc.Phase marker).
type CycleTrace struct {
	Cycle  int64
	Phase  string
	Writes []WriteEvent
	Reads  []ReadEvent
}

// Trace is the full per-cycle communication record of a run. It is only
// collected when Config.Trace is set; it exists for tests, debugging and
// schedule validation, not for measurement.
type Trace struct {
	Cycles []CycleTrace
}
