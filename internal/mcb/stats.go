package mcb

import "fmt"

// Stats aggregates the two complexity measures of the MCB model, plus
// secondary accounting useful for experiments.
type Stats struct {
	// Cycles is the total number of synchronous cycles consumed by the
	// computation. Cycles advance globally: an idle processor still spends
	// the cycle.
	Cycles int64
	// Messages is the total number of broadcast messages (channel writes).
	Messages int64
	// PerProc[i] is the number of messages written by processor i.
	PerProc []int64
	// PerChannel[c] is the number of messages carried by channel c.
	PerChannel []int64
	// MaxAbs is the largest absolute payload field value broadcast, used to
	// validate the O(log beta) message-size assumption.
	MaxAbs int64
	// MaxAux is the largest auxiliary-memory watermark (in words) reported
	// by any processor via Proc.AccountAux. Zero if never reported.
	MaxAux int64
}

func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d messages=%d maxabs=%d", s.Cycles, s.Messages, s.MaxAbs)
}

// Add accumulates t into s, summing counters and taking maxima of the
// watermarks. It is used to combine stats from consecutive runs that model
// phases of one computation.
func (s *Stats) Add(t *Stats) {
	s.Cycles += t.Cycles
	s.Messages += t.Messages
	if t.MaxAbs > s.MaxAbs {
		s.MaxAbs = t.MaxAbs
	}
	if t.MaxAux > s.MaxAux {
		s.MaxAux = t.MaxAux
	}
	s.PerProc = addVec(s.PerProc, t.PerProc)
	s.PerChannel = addVec(s.PerChannel, t.PerChannel)
}

func addVec(a, b []int64) []int64 {
	if len(b) > len(a) {
		a = append(a, make([]int64, len(b)-len(a))...)
	}
	for i, v := range b {
		a[i] += v
	}
	return a
}

// WriteEvent records one channel write in a trace.
type WriteEvent struct {
	Proc int
	Ch   int
	Msg  Message
}

// ReadEvent records one channel read in a trace. OK reports whether the
// channel was written this cycle (false = silence observed).
type ReadEvent struct {
	Proc int
	Ch   int
	Msg  Message
	OK   bool
}

// CycleTrace records all traffic of one cycle.
type CycleTrace struct {
	Cycle  int64
	Writes []WriteEvent
	Reads  []ReadEvent
}

// Trace is the full per-cycle communication record of a run. It is only
// collected when Config.Trace is set; it exists for tests, debugging and
// schedule validation, not for measurement.
type Trace struct {
	Cycles []CycleTrace
}
