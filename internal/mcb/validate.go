package mcb

import "fmt"

// ValidateTrace checks a recorded trace against the MCB model's rules for a
// network with k channels and p processors:
//
//   - no two writes on the same channel in one cycle (collision-freedom —
//     the engine enforces this during the run, so a violation here means the
//     trace itself is corrupt);
//   - every processor writes at most once and reads at most once per cycle;
//   - channel and processor indices are in range;
//   - a read reports ok exactly when its channel was written that cycle,
//     and then carries that message.
//
// It exists so tests and tools can audit full runs end to end, independent
// of the engine's own checks.
func ValidateTrace(tr *Trace, p, k int) error {
	if tr == nil {
		return fmt.Errorf("mcb: nil trace")
	}
	for ci, cyc := range tr.Cycles {
		written := make(map[int]Message, k)
		wrote := map[int]bool{}
		read := map[int]bool{}
		for _, w := range cyc.Writes {
			if w.Ch < 0 || w.Ch >= k {
				return fmt.Errorf("mcb: cycle %d: write on channel %d out of range", ci, w.Ch)
			}
			if w.Proc < 0 || w.Proc >= p {
				return fmt.Errorf("mcb: cycle %d: writer %d out of range", ci, w.Proc)
			}
			if _, dup := written[w.Ch]; dup {
				return fmt.Errorf("mcb: cycle %d: channel %d written twice", ci, w.Ch)
			}
			if wrote[w.Proc] {
				return fmt.Errorf("mcb: cycle %d: processor %d writes twice", ci, w.Proc)
			}
			written[w.Ch] = w.Msg
			wrote[w.Proc] = true
		}
		for _, e := range cyc.Reads {
			if e.Ch < 0 || e.Ch >= k {
				return fmt.Errorf("mcb: cycle %d: read on channel %d out of range", ci, e.Ch)
			}
			if e.Proc < 0 || e.Proc >= p {
				return fmt.Errorf("mcb: cycle %d: reader %d out of range", ci, e.Proc)
			}
			if read[e.Proc] {
				return fmt.Errorf("mcb: cycle %d: processor %d reads twice", ci, e.Proc)
			}
			read[e.Proc] = true
			msg, wroteCh := written[e.Ch]
			if e.OK != wroteCh {
				return fmt.Errorf("mcb: cycle %d: read ok=%v but channel %d written=%v", ci, e.OK, e.Ch, wroteCh)
			}
			if e.OK && msg != e.Msg {
				return fmt.Errorf("mcb: cycle %d: read message %v differs from written %v", ci, e.Msg, msg)
			}
		}
	}
	return nil
}

// Utilization summarizes channel usage over a trace: the fraction of
// channel-cycles carrying a message, per channel and overall.
type Utilization struct {
	PerChannel []float64
	Overall    float64
}

// TraceUtilization computes channel utilization from a trace.
func TraceUtilization(tr *Trace, k int) Utilization {
	u := Utilization{PerChannel: make([]float64, k)}
	if tr == nil || len(tr.Cycles) == 0 || k == 0 {
		return u
	}
	counts := make([]int64, k)
	var total int64
	for _, cyc := range tr.Cycles {
		for _, w := range cyc.Writes {
			if w.Ch >= 0 && w.Ch < k {
				counts[w.Ch]++
				total++
			}
		}
	}
	cycles := float64(len(tr.Cycles))
	for c := range counts {
		u.PerChannel[c] = float64(counts[c]) / cycles
	}
	u.Overall = float64(total) / (cycles * float64(k))
	return u
}
