package mcb

import (
	"bytes"
	"errors"
	"math/bits"
	"testing"
	"time"
)

// relayProgram builds a fixed-schedule program set: for `cycles` cycles,
// processor (cycle % p) broadcasts a known payload on channel (cycle % k) and
// everyone else reads that channel. The schedule is data-independent, so it
// terminates under any fault plan; received values land in got[reader].
func relayPrograms(p, k, cycles int, got [][]Message) []func(Node) {
	progs := make([]func(Node), p)
	for i := 0; i < p; i++ {
		id := i
		progs[i] = func(pr Node) {
			for c := 0; c < cycles; c++ {
				ch := c % k
				if c%p == id {
					pr.Write(ch, Msg(7, int64(c), int64(id), int64(c*id)))
					continue
				}
				m, ok := pr.Read(ch)
				if ok && got != nil {
					got[id] = append(got[id], m)
				}
			}
		}
	}
	return progs
}

func TestFaultPlanReplayByteIdentical(t *testing.T) {
	c := cfg(5, 3)
	c.Faults = &FaultPlan{
		Seed:        42,
		DropRate:    0.2,
		CorruptRate: 0.2,
		Outages:     []Outage{{Ch: 1, From: 4, To: 9}},
		Crashes:     []Crash{{Proc: 3, Cycle: 11}},
	}
	var reports [][]byte
	for run := 0; run < 3; run++ {
		res, err := Run(c, relayPrograms(5, 3, 20, nil))
		if err == nil {
			t.Fatalf("run %d: expected the scripted crash to surface as an error", run)
		}
		var ce *CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("run %d: got %v, want CrashError", run, err)
		}
		if res == nil {
			t.Fatalf("run %d: no partial result", run)
		}
		b, jerr := NewReport(c, &res.Stats).JSON()
		if jerr != nil {
			t.Fatal(jerr)
		}
		reports = append(reports, b)
	}
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("replaying the same (seed, FaultPlan) produced a different report:\n--- run 0:\n%s\n--- run %d:\n%s", reports[0], i, reports[i])
		}
	}
}

func TestFaultDropAllReadsSilence(t *testing.T) {
	got := make([][]Message, 2)
	c := cfg(2, 1)
	c.Faults = &FaultPlan{Seed: 1, DropRate: 1}
	res, err := Run(c, relayPrograms(2, 1, 10, got))
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0])+len(got[1]) != 0 {
		t.Fatalf("DropRate=1 still delivered %d+%d messages", len(got[0]), len(got[1]))
	}
	// Every cycle had one writer and one reader: 10 suppressed deliveries.
	if res.Stats.Faults.Drops != 10 {
		t.Fatalf("Drops = %d, want 10", res.Stats.Faults.Drops)
	}
	if res.Stats.Messages != 10 {
		t.Fatalf("Messages = %d, want 10 (drops suppress delivery, not the write)", res.Stats.Messages)
	}
}

func TestFaultChecksumDetectsCorruption(t *testing.T) {
	got := make([][]Message, 2)
	c := cfg(2, 1)
	c.Faults = &FaultPlan{Seed: 9, CorruptRate: 1, Checksum: true}
	res, err := Run(c, relayPrograms(2, 1, 12, got))
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0])+len(got[1]) != 0 {
		t.Fatalf("checksum-guarded corrupted deliveries must read as silence, got %d deliveries", len(got[0])+len(got[1]))
	}
	if res.Stats.Faults.Detected != 12 || res.Stats.Faults.Corruptions != 0 {
		t.Fatalf("Detected=%d Corruptions=%d, want 12 and 0", res.Stats.Faults.Detected, res.Stats.Faults.Corruptions)
	}
}

func TestFaultCorruptionFlipsOneBitWithoutChecksum(t *testing.T) {
	got := make([][]Message, 2)
	c := cfg(2, 1)
	c.Faults = &FaultPlan{Seed: 9, CorruptRate: 1, Checksum: false}
	res, err := Run(c, relayPrograms(2, 1, 12, got))
	if err != nil {
		t.Fatal(err)
	}
	delivered := len(got[0]) + len(got[1])
	if delivered != 12 {
		t.Fatalf("without checksum the garbled payloads must be delivered, got %d of 12", delivered)
	}
	if res.Stats.Faults.Corruptions != 12 || res.Stats.Faults.Detected != 0 {
		t.Fatalf("Corruptions=%d Detected=%d, want 12 and 0", res.Stats.Faults.Corruptions, res.Stats.Faults.Detected)
	}
	// The single-bit-flip property itself is covered by
	// TestFaultCorruptAtSingleBit; here it suffices that at least one
	// delivered payload differs from what the relay schedule sent.
	garbled := false
	for id, ms := range got {
		for _, m := range ms {
			cy := m.X // X carries the cycle unless X itself was flipped
			sent := Msg(7, cy, int64(1-id), cy*int64(1-id))
			if m != sent {
				garbled = true
			}
		}
	}
	if !garbled {
		t.Fatal("no delivered payload was garbled although CorruptRate=1")
	}
}

func TestFaultCorruptAtSingleBit(t *testing.T) {
	p := &FaultPlan{Seed: 5, CorruptRate: 1}
	orig := Msg(3, 100, -7, 42)
	for cycle := int64(0); cycle < 64; cycle++ {
		m, garbled := p.corruptAt(cycle, 1, 0, orig)
		if !garbled {
			t.Fatalf("cycle %d: CorruptRate=1 did not garble", cycle)
		}
		diff := bits.OnesCount64(uint64(m.X^orig.X)) +
			bits.OnesCount64(uint64(m.Y^orig.Y)) +
			bits.OnesCount64(uint64(m.Z^orig.Z))
		if diff != 1 {
			t.Fatalf("cycle %d: %d payload bits flipped, want exactly 1", cycle, diff)
		}
		if m.Tag != orig.Tag {
			t.Fatalf("cycle %d: tag corrupted", cycle)
		}
		if msgSum(m) == msgSum(orig) {
			t.Fatalf("cycle %d: checksum failed to detect a single-bit flip", cycle)
		}
	}
}

func TestFaultOutageWindow(t *testing.T) {
	got := make([][]Message, 2)
	c := cfg(2, 1)
	c.Faults = &FaultPlan{Seed: 1, Outages: []Outage{{Ch: 0, From: 3, To: 6}}}
	res, err := Run(c, relayPrograms(2, 1, 10, got))
	if err != nil {
		t.Fatal(err)
	}
	delivered := len(got[0]) + len(got[1])
	if delivered != 7 {
		t.Fatalf("delivered %d messages, want 7 (cycles 3,4,5 dead)", delivered)
	}
	for _, ms := range got {
		for _, m := range ms {
			if m.X >= 3 && m.X < 6 {
				t.Fatalf("message from dead cycle %d was delivered", m.X)
			}
		}
	}
	if res.Stats.Faults.OutageLosses != 3 {
		t.Fatalf("OutageLosses = %d, want 3", res.Stats.Faults.OutageLosses)
	}
	if got := res.Stats.Faults.OutagePerChannel; len(got) != 1 || got[0] != 3 {
		t.Fatalf("OutagePerChannel = %v, want [3]", got)
	}
}

func TestFaultCrashStop(t *testing.T) {
	c := cfg(3, 2)
	c.Faults = &FaultPlan{Seed: 1, Crashes: []Crash{{Proc: 1, Cycle: 4}}}
	res, err := Run(c, relayPrograms(3, 2, 12, nil))
	if err == nil {
		t.Fatal("a crashed processor must surface as an error even when the survivors complete")
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("CrashError must wrap ErrAborted, got %v", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *CrashError", err, err)
	}
	if len(ce.Procs) != 1 || ce.Procs[0] != 1 || ce.Cycle != 4 {
		t.Fatalf("CrashError = %+v, want Procs=[1] Cycle=4", ce)
	}
	if res == nil {
		t.Fatal("crash-stop must still return the partial result (the survivors ran to completion)")
	}
	want := []CrashEvent{{Proc: 1, Cycle: 4}}
	if len(res.Stats.Faults.Crashes) != 1 || res.Stats.Faults.Crashes[0] != want[0] {
		t.Fatalf("Stats.Faults.Crashes = %v, want %v", res.Stats.Faults.Crashes, want)
	}
	// The survivors ran all 12 cycles; the crashed processor wrote at most
	// during its 4 completed cycles.
	if res.Stats.Cycles != 12 {
		t.Fatalf("survivors completed %d cycles, want 12", res.Stats.Cycles)
	}
}

func TestFaultCrashAtCycleZero(t *testing.T) {
	c := cfg(2, 1)
	c.Faults = &FaultPlan{Seed: 1, Crashes: []Crash{{Proc: 0, Cycle: 0}}}
	_, err := Run(c, relayPrograms(2, 1, 5, nil))
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want CrashError", err)
	}
	if ce.Cycle != 0 {
		t.Fatalf("crash cycle = %d, want 0 (before the first operation)", ce.Cycle)
	}
}

func TestFaultPlanForAttempt(t *testing.T) {
	p := &FaultPlan{
		Seed:     7,
		DropRate: 0.1,
		Outages:  []Outage{{Ch: 0, From: 1, To: 2}},
		Crashes:  []Crash{{Proc: 2, Cycle: 3}},
	}
	if got := p.ForAttempt(0); got != p {
		t.Fatal("attempt 0 must run the plan itself")
	}
	a1 := p.ForAttempt(1)
	if a1.Seed == p.Seed {
		t.Fatal("a retry attempt must reseed the stochastic faults")
	}
	if a1.DropRate != p.DropRate || len(a1.Outages) != 1 || len(a1.Crashes) != 1 {
		t.Fatalf("ForAttempt must keep rates and scripted faults: %+v", a1)
	}
	if a2 := p.ForAttempt(2); a2.Seed == a1.Seed {
		t.Fatal("distinct attempts must use distinct seeds")
	}
	if b := p.ForAttempt(1); b.Seed != a1.Seed {
		t.Fatal("ForAttempt must be deterministic")
	}
	var nilPlan *FaultPlan
	if nilPlan.ForAttempt(3) != nil {
		t.Fatal("a nil plan stays nil")
	}
}

func TestFaultPlanWithoutCrashes(t *testing.T) {
	p := &FaultPlan{Crashes: []Crash{{Proc: 1, Cycle: 2}, {Proc: 3, Cycle: 4}, {Proc: 1, Cycle: 9}}}
	q := p.WithoutCrashes([]int{1})
	if len(q.Crashes) != 1 || q.Crashes[0].Proc != 3 {
		t.Fatalf("WithoutCrashes([1]) kept %v, want only processor 3", q.Crashes)
	}
	if len(p.Crashes) != 3 {
		t.Fatal("WithoutCrashes must not mutate the original plan")
	}
}

func TestFaultPlanWithoutOutages(t *testing.T) {
	p := &FaultPlan{Outages: []Outage{
		{Ch: 0, From: 1, To: 5},
		{Ch: 2, From: 3, To: 8},
		{Ch: 0, From: 10, To: 12},
	}}
	q := p.WithoutOutages([]int{0})
	if len(q.Outages) != 1 || q.Outages[0].Ch != 2 {
		t.Fatalf("WithoutOutages([0]) kept %v, want only channel 2", q.Outages)
	}
	if len(p.Outages) != 3 {
		t.Fatal("WithoutOutages must not mutate the original plan")
	}
	var nilPlan *FaultPlan
	if nilPlan.WithoutOutages([]int{0}) != nil {
		t.Fatal("a nil plan stays nil")
	}
}

func TestFaultPlanShift(t *testing.T) {
	p := &FaultPlan{
		Seed:    7,
		Outages: []Outage{{Ch: 0, From: 2, To: 5}, {Ch: 1, From: 10, To: 20}},
		Crashes: []Crash{{Proc: 0, Cycle: 3}, {Proc: 1, Cycle: 15}},
	}
	q := p.Shift(8)
	// The [2,5) window has fully expired; [10,20) clips to [2,12).
	if len(q.Outages) != 1 || q.Outages[0] != (Outage{Ch: 1, From: 2, To: 12}) {
		t.Fatalf("Shift(8) outages = %v, want [{1 2 12}]", q.Outages)
	}
	// An already-due crash pins to cycle 0 (the processor stays dead); a
	// future one moves earlier.
	if len(q.Crashes) != 2 || q.Crashes[0] != (Crash{Proc: 0, Cycle: 0}) || q.Crashes[1] != (Crash{Proc: 1, Cycle: 7}) {
		t.Fatalf("Shift(8) crashes = %v", q.Crashes)
	}
	if q.Seed == p.Seed {
		t.Fatal("Shift must remix the stochastic seed")
	}
	if got := p.Shift(0); got != p {
		t.Fatal("Shift(0) must return the plan unchanged")
	}
	if len(p.Outages) != 2 || p.Outages[0].From != 2 {
		t.Fatal("Shift must not mutate the original plan")
	}
}

func TestOutageSuspects(t *testing.T) {
	plan := &FaultPlan{Outages: []Outage{
		{Ch: 0, From: 0, To: 4},       // closed before the failure
		{Ch: 1, From: 0, To: 1 << 40}, // effectively permanent
		{Ch: 2, From: 50, To: 200},    // open at the failure
	}}
	stats := &FaultStats{OutagePerChannel: []int64{5, 9, 2, 0}}
	got := OutageSuspects(plan, stats, 100)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutageSuspects = %v, want [1 2]", got)
	}
	// Channel 3 never lost a message, channel 0's window closed: neither is
	// a suspect even though both appear somewhere.
	if OutageSuspects(plan, &FaultStats{}, 100) != nil {
		t.Fatal("no losses => no suspects")
	}
	if OutageSuspects(nil, stats, 100) != nil || OutageSuspects(plan, nil, 100) != nil {
		t.Fatal("nil plan or stats => no suspects")
	}
}

func TestFaultRollDeterministicAndUniform(t *testing.T) {
	p := &FaultPlan{Seed: 123}
	sum := 0.0
	const n = 4096
	for i := 0; i < n; i++ {
		v := p.roll(saltDrop, int64(i), i%7, i%3)
		if v < 0 || v >= 1 {
			t.Fatalf("roll out of [0,1): %g", v)
		}
		if v2 := p.roll(saltDrop, int64(i), i%7, i%3); v2 != v {
			t.Fatal("roll is not deterministic")
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("roll mean %g over %d samples, want ~0.5", mean, n)
	}
}

func TestRunWithRetryRecoversFreshStallBaseline(t *testing.T) {
	c := cfg(2, 1)
	c.StallTimeout = 60 * time.Millisecond
	programs := func(attempt int) []func(Node) {
		return []func(Node){
			func(pr Node) { pr.IdleN(4) },
			func(pr Node) {
				pr.Idle()
				if attempt == 0 {
					// Wedge past the stall timeout, then resume so the
					// goroutine unwinds through the failed-run check.
					time.Sleep(400 * time.Millisecond)
				}
				pr.IdleN(3)
			},
		}
	}
	res, attempts, err := RunWithRetry(c, programs, nil, RetryPolicy{MaxAttempts: 3})
	if err != nil {
		t.Fatalf("attempt 2 runs a fresh watchdog and must succeed: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (first stalls, second clean)", attempts)
	}
	if res == nil || res.Stats.Cycles != 4 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRunWithRetryVerifierRejects(t *testing.T) {
	c := cfg(2, 1)
	calls := 0
	verify := func(r *Result) error {
		calls++
		if calls == 1 {
			return errors.New("rejected")
		}
		return nil
	}
	_, attempts, err := RunWithRetry(c, func(int) []func(Node) {
		return relayPrograms(2, 1, 3, nil)
	}, verify, RetryPolicy{MaxAttempts: 3})
	if err != nil || attempts != 2 {
		t.Fatalf("attempts=%d err=%v, want 2 attempts and success", attempts, err)
	}
}

func TestRunWithRetryNonRetryableStops(t *testing.T) {
	c := cfg(0, 0) // invalid config: validation errors recur, never retry
	built := 0
	_, attempts, err := RunWithRetry(c, func(int) []func(Node) {
		built++
		return nil
	}, nil, RetryPolicy{MaxAttempts: 5})
	if err == nil {
		t.Fatal("expected a validation error")
	}
	if attempts != 1 || built != 1 {
		t.Fatalf("attempts=%d built=%d, want a single attempt for a non-retryable error", attempts, built)
	}
	if Retryable(err) {
		t.Fatalf("validation error classified retryable: %v", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, err := range []error{
		&AbortError{Proc: 1, VProc: -1, Msg: "x"},
		&CrashError{Procs: []int{0}},
		&StallError{},
		&BudgetError{Budget: "cycles"},
		&CorruptionError{Op: "sort"},
		&CollisionError{},
	} {
		if !Retryable(err) {
			t.Errorf("%T must be retryable", err)
		}
	}
	if Retryable(nil) || Retryable(errors.New("config")) {
		t.Error("nil and plain errors must not be retryable")
	}
}
