package mcb

import (
	"fmt"
	"testing"
	"time"
)

// Engine microbenchmarks. One benchmark iteration is one engine cycle, so
// ns/op is the per-cycle cost and allocs/op the per-cycle heap pressure; the
// explicit cycles/sec metric is the headline number recorded in
// BENCH_engine.json (see cmd/mcbbench -engine, which runs the same workloads
// via EngineBench).

func benchConfig(p, k int) Config {
	return Config{P: p, K: k, StallTimeout: 5 * time.Minute}
}

var benchSizes = []int{4, 16, 64, 256}

func benchK(p int) int {
	if p < 4 {
		return 1
	}
	return p / 4
}

// runCycles executes one engine run of exactly n cycles under prog and
// reports throughput metrics for it.
func runCycles(b *testing.B, cfg Config, prog func(Node), n int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	res, err := RunUniform(cfg, prog)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Stats.Cycles != int64(n) {
		b.Fatalf("ran %d cycles, want %d", res.Stats.Cycles, n)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)/sec, "cycles/sec")
	}
}

// BenchmarkBarrierRoundTrip measures the bare cycle barrier: every processor
// idles, so a cycle is one arrive/resolve/release round-trip with no channel
// traffic.
func BenchmarkBarrierRoundTrip(b *testing.B) {
	for _, p := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			n := b.N
			runCycles(b, benchConfig(p, benchK(p)), func(pr Node) {
				pr.IdleN(n)
			}, n)
		})
	}
}

// engineCycleProgram is the standard traffic workload: processors 0..k-1
// write (and read back) their own channel every cycle, the rest read.
func engineCycleProgram(k, n int) func(Node) {
	return func(pr Node) {
		id := pr.ID()
		if id < k {
			m := MsgX(1, int64(id))
			for i := 0; i < n; i++ {
				pr.WriteRead(id, m, id)
			}
			return
		}
		c := id % k
		for i := 0; i < n; i++ {
			pr.Read(c)
		}
	}
}

// BenchmarkEngineCycle measures a full write/read traffic cycle on the
// default (no-fault, no-trace) resolve path.
func BenchmarkEngineCycle(b *testing.B) {
	for _, p := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			k := benchK(p)
			runCycles(b, benchConfig(p, k), engineCycleProgram(k, b.N), b.N)
		})
	}
}

// BenchmarkEngineCycleGeneral runs the same traffic workload with a fault
// plan that never fires inside the run (a far-future outage), forcing the
// general resolve path so the fast-path gain stays measurable.
func BenchmarkEngineCycleGeneral(b *testing.B) {
	for _, p := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			k := benchK(p)
			cfg := benchConfig(p, k)
			cfg.Faults = &FaultPlan{Outages: []Outage{{Ch: 0, From: 1 << 60, To: 1<<60 + 1}}}
			runCycles(b, cfg, engineCycleProgram(k, b.N), b.N)
		})
	}
}

// shardedBenchSizes extends the grid into the p >> cores regime the sharded
// engine exists for. Kept modest here (the full p=65536 sweep lives in
// cmd/mcbbench -engine); the race-mode CI smoke runs these at -benchtime=25x.
var shardedBenchSizes = []int{16, 256, 4096}

// BenchmarkBarrierRoundTripSharded measures the sharded engine's bare cycle:
// gate handoffs, worker collection and the O(workers) rendezvous.
func BenchmarkBarrierRoundTripSharded(b *testing.B) {
	for _, p := range shardedBenchSizes {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			n := b.N
			cfg := benchConfig(p, benchK(p))
			cfg.Engine = EngineSharded
			runCycles(b, cfg, func(pr Node) {
				pr.IdleN(n)
			}, n)
		})
	}
}

// BenchmarkEngineCycleSharded measures the full traffic cycle under the
// sharded engine.
func BenchmarkEngineCycleSharded(b *testing.B) {
	for _, p := range shardedBenchSizes {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			k := benchK(p)
			cfg := benchConfig(p, k)
			cfg.Engine = EngineSharded
			runCycles(b, cfg, engineCycleProgram(k, b.N), b.N)
		})
	}
}

// TestBenchEnvMismatch pins the provenance check of the bench-gate: every
// differing field is reported by name, and matching environments report
// nothing.
func TestBenchEnvMismatch(t *testing.T) {
	cur := CurrentBenchEnv()
	if cur.GoVersion == "" || cur.GOMAXPROCS < 1 || cur.NumCPU < 1 {
		t.Fatalf("CurrentBenchEnv incomplete: %+v", cur)
	}
	if m := cur.Mismatch(cur); len(m) != 0 {
		t.Fatalf("identical environments mismatch: %v", m)
	}
	base := BenchEnv{GoVersion: "go0.0", GOMAXPROCS: cur.GOMAXPROCS + 1, NumCPU: cur.NumCPU + 7}
	m := cur.Mismatch(base)
	if len(m) != 3 {
		t.Fatalf("got %d mismatches (%v), want 3", len(m), m)
	}
	for i, field := range []string{"go:", "gomaxprocs:", "num_cpu:"} {
		if len(m[i]) < len(field) || m[i][:len(field)] != field {
			t.Errorf("mismatch %d = %q, want it to name field %q", i, m[i], field)
		}
	}
	// A pre-provenance artifact (zero env) mismatches on every field.
	if m := cur.Mismatch(BenchEnv{}); len(m) != 3 {
		t.Fatalf("zero-provenance baseline yielded %d mismatches (%v), want 3", len(m), m)
	}
}

// TestCompareEngineBenchKeyedByEngine: entries of different engines must
// never gate against each other, and a baseline without an engine field (a
// pre-sharded artifact) keys as the goroutine engine.
func TestCompareEngineBenchKeyedByEngine(t *testing.T) {
	baseline := []EngineBenchEntry{
		{Name: BenchBarrier, P: 4, K: 1, CyclesPerSec: 1e6},                                // legacy: no engine field
		{Name: BenchBarrier, Engine: string(EngineSharded), P: 4, K: 1, CyclesPerSec: 1e5}, //nolint:lll
	}
	// The sharded run is 5x slower than the goroutine BASELINE but matches
	// its own baseline: no regression may fire.
	fresh := []EngineBenchEntry{
		{Name: BenchBarrier, Engine: string(EngineGoroutine), P: 4, K: 1, CyclesPerSec: 1e6},
		{Name: BenchBarrier, Engine: string(EngineSharded), P: 4, K: 1, CyclesPerSec: 1.1e5},
	}
	if regs := CompareEngineBench(fresh, baseline, 0.2); len(regs) != 0 {
		t.Fatalf("cross-engine comparison leaked: %v", regs)
	}
	// A real sharded regression still fires, keyed to the sharded entry.
	fresh[1].CyclesPerSec = 1e4
	regs := CompareEngineBench(fresh, baseline, 0.2)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions (%v), want 1", len(regs), regs)
	}
}

// BenchmarkEnginePhaseMarker measures a cycle that carries a (repeated, so
// coalescing) phase marker each iteration: the marker path must stay cheap.
func BenchmarkEnginePhaseMarker(b *testing.B) {
	const p = 16
	k := benchK(p)
	n := b.N
	runCycles(b, benchConfig(p, k), func(pr Node) {
		id := pr.ID()
		if id < k {
			m := MsgX(1, int64(id))
			for i := 0; i < n; i++ {
				if id == 0 {
					pr.Phase("steady")
				}
				pr.WriteRead(id, m, id)
			}
			return
		}
		c := id % k
		for i := 0; i < n; i++ {
			pr.Read(c)
		}
	}, n)
}
