package mcb

import (
	"fmt"
	"testing"
	"time"
)

// Engine microbenchmarks. One benchmark iteration is one engine cycle, so
// ns/op is the per-cycle cost and allocs/op the per-cycle heap pressure; the
// explicit cycles/sec metric is the headline number recorded in
// BENCH_engine.json (see cmd/mcbbench -engine, which runs the same workloads
// via EngineBench).

func benchConfig(p, k int) Config {
	return Config{P: p, K: k, StallTimeout: 5 * time.Minute}
}

var benchSizes = []int{4, 16, 64, 256}

func benchK(p int) int {
	if p < 4 {
		return 1
	}
	return p / 4
}

// runCycles executes one engine run of exactly n cycles under prog and
// reports throughput metrics for it.
func runCycles(b *testing.B, cfg Config, prog func(Node), n int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	res, err := RunUniform(cfg, prog)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Stats.Cycles != int64(n) {
		b.Fatalf("ran %d cycles, want %d", res.Stats.Cycles, n)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)/sec, "cycles/sec")
	}
}

// BenchmarkBarrierRoundTrip measures the bare cycle barrier: every processor
// idles, so a cycle is one arrive/resolve/release round-trip with no channel
// traffic.
func BenchmarkBarrierRoundTrip(b *testing.B) {
	for _, p := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			n := b.N
			runCycles(b, benchConfig(p, benchK(p)), func(pr Node) {
				pr.IdleN(n)
			}, n)
		})
	}
}

// engineCycleProgram is the standard traffic workload: processors 0..k-1
// write (and read back) their own channel every cycle, the rest read.
func engineCycleProgram(k, n int) func(Node) {
	return func(pr Node) {
		id := pr.ID()
		if id < k {
			m := MsgX(1, int64(id))
			for i := 0; i < n; i++ {
				pr.WriteRead(id, m, id)
			}
			return
		}
		c := id % k
		for i := 0; i < n; i++ {
			pr.Read(c)
		}
	}
}

// BenchmarkEngineCycle measures a full write/read traffic cycle on the
// default (no-fault, no-trace) resolve path.
func BenchmarkEngineCycle(b *testing.B) {
	for _, p := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			k := benchK(p)
			runCycles(b, benchConfig(p, k), engineCycleProgram(k, b.N), b.N)
		})
	}
}

// BenchmarkEngineCycleGeneral runs the same traffic workload with a fault
// plan that never fires inside the run (a far-future outage), forcing the
// general resolve path so the fast-path gain stays measurable.
func BenchmarkEngineCycleGeneral(b *testing.B) {
	for _, p := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			k := benchK(p)
			cfg := benchConfig(p, k)
			cfg.Faults = &FaultPlan{Outages: []Outage{{Ch: 0, From: 1 << 60, To: 1<<60 + 1}}}
			runCycles(b, cfg, engineCycleProgram(k, b.N), b.N)
		})
	}
}

// BenchmarkEnginePhaseMarker measures a cycle that carries a (repeated, so
// coalescing) phase marker each iteration: the marker path must stay cheap.
func BenchmarkEnginePhaseMarker(b *testing.B) {
	const p = 16
	k := benchK(p)
	n := b.N
	runCycles(b, benchConfig(p, k), func(pr Node) {
		id := pr.ID()
		if id < k {
			m := MsgX(1, int64(id))
			for i := 0; i < n; i++ {
				if id == 0 {
					pr.Phase("steady")
				}
				pr.WriteRead(id, m, id)
			}
			return
		}
		c := id % k
		for i := 0; i < n; i++ {
			pr.Read(c)
		}
	}, n)
}
