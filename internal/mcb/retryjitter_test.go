package mcb

import (
	"testing"
	"time"
)

// TestBackoffJitterBounds: with JitterSeed set, every attempt's wait lands in
// [d/2, d] of the undithered doubled wait, and the maxBackoffShift clamp and
// overflow guard still apply.
func TestBackoffJitterBounds(t *testing.T) {
	base := RetryPolicy{Backoff: time.Millisecond}
	jit := RetryPolicy{Backoff: time.Millisecond, JitterSeed: 7}
	for a := 0; a < maxBackoffShift+8; a++ {
		d := base.BackoffFor(a)
		got := jit.BackoffFor(a)
		if got < d/2 || got > d {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v]", a, got, d/2, d)
		}
	}
	huge := RetryPolicy{Backoff: time.Duration(1) << 55, JitterSeed: 3}
	if got := huge.BackoffFor(10); got < huge.Backoff/2 || got > huge.Backoff {
		t.Fatalf("huge base jittered %v outside [%v, %v]", got, huge.Backoff/2, huge.Backoff)
	}
}

// TestBackoffJitterDeterministic: the schedule is a pure function of
// (JitterSeed, attempt) — same seed, same waits; distinct seeds disagree
// somewhere (the thundering-herd de-synchronization the jitter exists for).
func TestBackoffJitterDeterministic(t *testing.T) {
	a := RetryPolicy{Backoff: 10 * time.Millisecond, JitterSeed: 1}
	b := RetryPolicy{Backoff: 10 * time.Millisecond, JitterSeed: 1}
	c := RetryPolicy{Backoff: 10 * time.Millisecond, JitterSeed: 2}
	differ := false
	for at := 0; at < 12; at++ {
		if a.BackoffFor(at) != b.BackoffFor(at) {
			t.Fatalf("attempt %d: same seed, different waits", at)
		}
		if a.BackoffFor(at) != c.BackoffFor(at) {
			differ = true
		}
	}
	if !differ {
		t.Fatalf("seeds 1 and 2 produced identical 12-attempt schedules")
	}
}

// TestBackoffZeroSeedUnchanged pins that the zero value keeps the exact
// legacy undithered doubling (existing callers see no behavior change).
func TestBackoffZeroSeedUnchanged(t *testing.T) {
	p := RetryPolicy{Backoff: time.Millisecond}
	for a := 0; a < 8; a++ {
		want := time.Millisecond << a
		if got := p.BackoffFor(a); got != want {
			t.Fatalf("attempt %d: %v, want %v", a, got, want)
		}
	}
}
