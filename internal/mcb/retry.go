package mcb

import (
	"errors"
	"time"
)

// RetryPolicy configures the verify-and-retry recovery layer (RunWithRetry
// here; SortWithRetry / SelectWithRetry at the algorithm level). A faulted
// run is detected — by a typed engine error or by failed output
// verification — and re-executed on a fresh network rather than silently
// returning a wrong answer.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts; values below 1 mean a
	// single attempt (no retry).
	MaxAttempts int
	// Backoff is the wait before the second attempt; it doubles per further
	// attempt. Zero retries immediately (the default: the network is
	// simulated, there is no congestion to wait out).
	Backoff time.Duration
	// DegradeOnCrash enables graceful degradation for selection: after a
	// CrashError, the next attempt treats the crashed processors as empty
	// (their elements are lost) instead of insisting on the full set. The
	// selection protocols are silence-tolerant, so the degraded run answers
	// the rank over the surviving elements. Ignored by sorting — a sort
	// cannot deliver output to a dead processor.
	DegradeOnCrash bool
	// DegradeOnOutage enables channel-loss degradation: when a failure is
	// attributable to specific channels (scripted outage windows still open
	// at the failing cycle, per FaultStats.OutagePerChannel), the next
	// attempt drops those channels and re-runs on the k' < k survivors.
	// The paper's algorithms are valid for any k ≤ p, so shrinking k only
	// costs cycles; it beats retrying into the same dead channel forever.
	// Used by SortWithRetry / SelectWithRetry, not by raw RunWithRetry
	// (remapping channel indices requires rebuilding the programs).
	DegradeOnOutage bool
	// JitterSeed, when non-zero, dithers the exponential backoff with
	// deterministic "equal jitter": attempt a waits d/2 + r·(d/2) where d is
	// the undithered doubled wait and r ∈ [0, 1] is a pure function of
	// (JitterSeed, a). Without it every peer of a distributed run retries at
	// exactly the same instants and thundering-herds the sequencer; distinct
	// per-peer seeds de-synchronize the herd while keeping each peer's
	// schedule reproducible. Zero keeps the exact undithered doubling.
	JitterSeed uint64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// maxBackoffShift caps the exponential-backoff doubling: Backoff<<attempt
// wraps (and can go negative) once attempt reaches the duration's leading
// zeros, turning the wait into garbage for large MaxAttempts.
const maxBackoffShift = 16

// BackoffFor returns the wait after the given 0-based attempt: Backoff
// doubled per attempt, with the exponent capped and an overflow guard so a
// large MaxAttempts (or a huge base Backoff) can never wrap to a negative
// or near-zero wait. With JitterSeed set the doubled wait d is dithered into
// [d/2, d] deterministically (see JitterSeed); the result stays monotonically
// bounded by the clamp either way. Exported so transports reuse the exact
// schedule for connection dialing.
func (p RetryPolicy) BackoffFor(attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	d := p.Backoff << attempt
	if d <= 0 || d>>attempt != p.Backoff { // shift overflowed (huge base Backoff)
		d = p.Backoff
	}
	if p.JitterSeed == 0 {
		return d
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	r := mix64(p.JitterSeed ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	return half + time.Duration(r%(uint64(half)+1))
}

// sleep waits the backoff for the given 0-based attempt just completed.
func (p RetryPolicy) sleep(attempt int) {
	if d := p.BackoffFor(attempt); d > 0 {
		time.Sleep(d)
	}
}

// Retryable reports whether err is worth retrying on a fresh network: engine
// aborts (anything wrapping ErrAborted, which includes the whole typed
// taxonomy) and collisions. Configuration and validation errors are not —
// they recur deterministically regardless of faults.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrAborted) {
		return true
	}
	var ce *CollisionError
	return errors.As(err, &ce)
}

// RunWithRetry executes Run up to pol.MaxAttempts times, each attempt on a
// fresh network. programs(attempt) builds the per-attempt processor programs
// (a fresh closure set so attempt-local state is not reused); verify, if
// non-nil, checks a completed Result and returns an error to reject it.
// cfg.Faults is re-derived per attempt via FaultPlan.ForAttempt, so
// stochastic faults strike differently on each retry while scripted crashes
// and outages persist.
//
// It returns the accepted (or last) Result, the number of attempts used, and
// the first error of the last attempt (nil on success).
func RunWithRetry(cfg Config, programs func(attempt int) []func(Node), verify func(*Result) error, pol RetryPolicy) (*Result, int, error) {
	var (
		res     *Result
		lastErr error
	)
	max := pol.attempts()
	for a := 0; a < max; a++ {
		if a > 0 {
			pol.sleep(a - 1)
		}
		acfg := cfg
		acfg.Faults = cfg.Faults.ForAttempt(a)
		r, err := Run(acfg, programs(a))
		res = r
		if err != nil {
			lastErr = err
			if !Retryable(err) {
				return res, a + 1, err
			}
			continue
		}
		if verify != nil {
			if verr := verify(r); verr != nil {
				lastErr = verr
				continue
			}
		}
		return r, a + 1, nil
	}
	return res, max, lastErr
}
