package mcb

import (
	"fmt"
	"sync"
)

// This file implements the simulation result of Section 2: one cycle of an
// MCB(p', k') can be simulated on an MCB(p, k), p' >= p, k' >= k, by having
// each host processor simulate q = ceil(p'/p) virtual processors and each
// host channel carry G = ceil(k'/k) virtual channels, repeating each message
// q times.
//
// Concretely, one virtual cycle takes q*q*G host cycles, indexed (s, j, g):
// in host cycle (s, j, g) the host processor broadcasts the pending message
// of its s-th virtual processor when that message's virtual channel belongs
// to channel group g (virtual channel c' maps to host channel c' mod k in
// group c' div k), and reads on behalf of its j-th virtual processor. A
// writer therefore repeats its message q times (once per j), exactly the
// paper's repetition count; the second q factor pays for the host's
// one-read-per-cycle port, which the paper's cost statement elides. A
// successful read in any round is authoritative (at most one writer per
// virtual channel per virtual cycle), and silence across all rounds is
// virtual silence.
//
// Virtual processors may finish at different times; after each virtual
// cycle the hosts run a small tree AND-reduction ("are all virtual
// processors done?") so the host programs terminate together.

// VProc is the processor handle inside a simulated network. It mirrors the
// Proc cycle API.
type VProc struct {
	id      int
	pv, kv  int
	vcycles int64
	opCh    chan vOp
	resCh   chan readResult
	dead    chan struct{} // closed when the host driver unwinds (abort/crash)
}

type vOp struct {
	kind    opKind
	writeCh int
	readCh  int
	msg     Message
}

// vAbort is the structured panic VProc.Abortf raises. It survives the host
// driver's recover so the virtual processor id reaches the error taxonomy
// instead of degrading into a generic "processor panicked" string.
type vAbort struct {
	vproc int
	msg   string
}

func (a *vAbort) Error() string {
	return fmt.Sprintf("virtual processor %d aborted: %s", a.vproc, a.msg)
}

// hostAbort fails the host computation on behalf of a dead virtual
// processor. On a real engine processor the abort keeps its structure (an
// *AbortError with the virtual id); on other Node implementations it falls
// back to the node's own Abortf. It does not return.
func hostAbort(pr Node, err error) {
	va, structured := err.(*vAbort)
	if structured {
		if p, ok := pr.(*Proc); ok {
			p.abortWith(&AbortError{Proc: p.id, VProc: va.vproc, Msg: va.msg})
		}
		pr.Abortf("virtual processor %d aborted: %s", va.vproc, va.msg)
	}
	pr.Abortf("%v", err)
}

// ID returns the virtual processor index in [0, Pv).
func (v *VProc) ID() int { return v.id }

// P returns the number of virtual processors.
func (v *VProc) P() int { return v.pv }

// K returns the number of virtual channels.
func (v *VProc) K() int { return v.kv }

// vDead unwinds a virtual-program goroutine whose host driver died (engine
// abort or host crash-stop): without it the goroutine would block forever on
// the unbuffered op/result channels nobody services anymore.
type vDead struct{}

func (v *VProc) step(op vOp) readResult {
	v.vcycles++
	select {
	case v.opCh <- op:
	case <-v.dead:
		panic(vDead{})
	}
	select {
	case r := <-v.resCh:
		return r
	case <-v.dead:
		panic(vDead{})
	}
}

// WriteRead broadcasts on a virtual channel and reads another in the same
// virtual cycle.
func (v *VProc) WriteRead(writeCh int, m Message, readCh int) (Message, bool) {
	r := v.step(vOp{kind: opWriteRead, writeCh: writeCh, readCh: readCh, msg: m})
	return r.msg, r.ok
}

// Write broadcasts on a virtual channel.
func (v *VProc) Write(writeCh int, m Message) {
	v.step(vOp{kind: opWrite, writeCh: writeCh, msg: m})
}

// Read reads a virtual channel; ok=false reports virtual silence.
func (v *VProc) Read(readCh int) (Message, bool) {
	r := v.step(vOp{kind: opRead, readCh: readCh})
	return r.msg, r.ok
}

// Idle spends one virtual cycle.
func (v *VProc) Idle() { v.step(vOp{kind: opIdle}) }

// SimulateUniform runs the same virtual program on every processor of a
// virtual MCB(pv, kv), hosted on an MCB(host.P, host.K). Requires
// pv >= host.P and kv >= host.K. The returned stats are the host network's
// (the measured simulation cost).
func SimulateUniform(host Config, pv, kv int, program func(*VProc)) (*Result, error) {
	if pv < host.P || kv < host.K {
		return nil, fmt.Errorf("mcb: simulation requires pv >= P and kv >= K (pv=%d P=%d kv=%d K=%d)", pv, host.P, kv, host.K)
	}
	q := (pv + host.P - 1) / host.P
	progs := make([]func(Node), host.P)
	for h := 0; h < host.P; h++ {
		hostID := h
		progs[h] = func(pr Node) {
			runHostDriver(pr, hostID, q, pv, kv, program)
		}
	}
	return Run(host, progs)
}

// runHostDriver executes the simulation loop for one host processor.
func runHostDriver(pr Node, hostID, q, pv, kv int, program func(*VProc)) {
	p, k := pr.P(), pr.K()
	G := (kv + k - 1) / k

	// Spawn my virtual processors. Virtual processor ids are dealt
	// round-robin: virtual id = slot*p + hostID.
	type slotState struct {
		vp   *VProc
		live bool
		op   vOp
		res  readResult
		got  bool
		err  error // panic from the virtual program, surfaced on exit
	}
	slots := make([]*slotState, q)
	// dead releases the virtual programs if this driver unwinds (abortPanic
	// from an engine op, host crash-stop): deferred closes run while a panic
	// propagates, so the virtual goroutines never outlive the run. Their
	// drain is asynchronous — Run's grace period covers only engine
	// processors — but prompt (one select per parked virtual program).
	dead := make(chan struct{})
	defer close(dead)
	var wg sync.WaitGroup
	for s := 0; s < q; s++ {
		vid := s*p + hostID
		if vid >= pv {
			slots[s] = &slotState{live: false}
			continue
		}
		vp := &VProc{id: vid, pv: pv, kv: kv, opCh: make(chan vOp), resCh: make(chan readResult), dead: dead}
		st := &slotState{vp: vp, live: true}
		slots[s] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				switch r := recover().(type) {
				case nil:
				case *vAbort:
					st.err = r
				case vDead:
					// The host driver died first; nothing to report.
				default:
					// A plain panic is wrapped as a vAbort too, so the
					// virtual processor id stays structured: hostAbort
					// raises an *AbortError carrying it, instead of
					// attributing the failure to whichever engine processor
					// (or sharded worker batch) stepped the virtual program.
					st.err = &vAbort{vproc: vp.id, msg: fmt.Sprintf("panicked: %v", r)}
				}
				close(vp.opCh)
			}()
			program(vp)
		}()
	}

	allDone := false
	for !allDone {
		// Collect one virtual-cycle op from each live virtual processor
		// (local computation: costs no host cycles).
		for _, st := range slots {
			st.got = false
			st.res = readResult{}
			if !st.live {
				st.op = vOp{kind: opIdle}
				continue
			}
			op, ok := <-st.vp.opCh
			if !ok {
				if st.err != nil {
					hostAbort(pr, st.err)
				}
				st.live = false
				st.op = vOp{kind: opIdle}
				continue
			}
			st.op = op
			st.got = true
		}

		// The q*q*G host cycles of one virtual cycle.
		for s := 0; s < q; s++ {
			for j := 0; j < q; j++ {
				for g := 0; g < G; g++ {
					ws := slots[s]
					doWrite := ws.op.kind == opWrite || ws.op.kind == opWriteRead
					doWrite = doWrite && ws.op.writeCh/k == g
					rs := slots[j]
					doRead := (rs.op.kind == opRead || rs.op.kind == opWriteRead) &&
						rs.op.readCh/k == g && !rs.res.ok
					switch {
					case doWrite && doRead:
						m, ok := pr.WriteRead(ws.op.writeCh%k, ws.op.msg, rs.op.readCh%k)
						if ok {
							rs.res = readResult{msg: m, ok: true}
						}
					case doWrite:
						pr.Write(ws.op.writeCh%k, ws.op.msg)
					case doRead:
						m, ok := pr.Read(rs.op.readCh % k)
						if ok {
							rs.res = readResult{msg: m, ok: true}
						}
					default:
						pr.Idle()
					}
				}
			}
		}

		// Deliver results to the virtual processors that stepped.
		for _, st := range slots {
			if st.got {
				st.vp.resCh <- st.res
			}
		}

		// Termination detection: tree AND-reduction of "all my virtual
		// processors have finished", then a broadcast of the verdict.
		mineDone := true
		for _, st := range slots {
			if st.live {
				mineDone = false
			}
		}
		allDone = andReduce(pr, mineDone)
	}
	wg.Wait()
}

// andReduce computes the logical AND of one bit per processor at every
// processor: the Partial-Sums bottom-up tree (min operator) followed by a
// broadcast from processor 0. O(p/k + log k) cycles, O(p) messages.
func andReduce(pr Node, bit bool) bool {
	p, k, id := pr.P(), pr.K(), pr.ID()
	if p == 1 {
		return bit
	}
	val := int64(1)
	if !bit {
		val = 0
	}
	levels := 0
	for 1<<levels < p {
		levels++
	}
	node := val
	for l := 0; l < levels; l++ {
		span := 1 << (l + 1)
		parents := (p + span - 1) / span
		batches := (parents + k - 1) / k
		for b := 0; b < batches; b++ {
			inBatch := func(x int) bool { return x >= b*k && x < (b+1)*k }
			switch {
			case id%span == span/2 && inBatch(id/span):
				pr.Write(id/span%k, MsgX(0x7e, node))
			case id%span == 0 && inBatch(id/span):
				m, ok := pr.Read(id / span % k)
				r := int64(1) // a missing (virtual) right child is vacuously done
				if ok {
					r = m.X
				}
				if r < node {
					node = r
				}
			default:
				pr.Idle()
			}
		}
	}
	var verdict int64
	if id == 0 {
		verdict = node
		pr.Write(0, MsgX(0x7e, verdict))
	} else {
		m, ok := pr.Read(0)
		if !ok {
			panic("mcb: missing and-reduce verdict")
		}
		verdict = m.X
	}
	return verdict == 1
}
