package mcb

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the deterministic fault-injection plane of the engine. The
// MCB model of the paper assumes perfectly reliable channels and processors;
// real broadcast media lose, garble and partition messages, and nodes die.
// A FaultPlan provokes those failures on purpose — reproducibly.
//
// Determinism guarantee: every injection decision is a pure function of
// (FaultPlan, cycle, processor, channel). Drop and corruption decisions are
// derived from a splitmix64-style hash of those coordinates and applied
// inside the single-threaded cycle resolver (processor-id order); crash-stops
// trigger on a processor's own cycle counter, which in a lock-step run equals
// the global cycle index. Goroutine scheduling therefore never influences
// which faults fire: replaying the same (Config, FaultPlan, programs) yields
// an identical Result, byte for byte.

// Outage marks a broadcast channel dead for a cycle range: every message
// written on Ch during [From, To) is lost (all readers observe silence).
// The writer is not notified — broadcast media give no transmit feedback.
type Outage struct {
	Ch   int   // channel index
	From int64 // first dead cycle (inclusive)
	To   int64 // first live cycle again (exclusive)
}

// Crash schedules a crash-stop: processor Proc completes exactly Cycle cycle
// operations and then stops silently — it issues no further operations, never
// writes again, and leaves the lock-step protocol as if it had exited.
// Cycle 0 crashes the processor before its first operation.
type Crash struct {
	Proc  int
	Cycle int64
}

// FaultPlan describes deterministic, seeded fault injection for one run.
// The zero value (and a nil plan) injects nothing.
type FaultPlan struct {
	// Seed drives the stochastic fault decisions (drops and corruptions).
	// The same (Seed, rates) always yields the same faults at the same
	// (cycle, processor, channel) coordinates.
	Seed uint64
	// DropRate is the probability, per message delivery (reader, channel,
	// cycle), that the reader observes silence instead of the message.
	// Deliveries are independent: one reader of a broadcast may lose it
	// while another receives it.
	DropRate float64
	// CorruptRate is the probability, per delivery, that the reader receives
	// the message with one payload bit flipped (a seeded bit of X, Y or Z).
	CorruptRate float64
	// Checksum guards every message with a per-message checksum: a corrupted
	// delivery is detected and read as silence (like a CRC-failed radio
	// frame) instead of delivering the garbled payload. Without it,
	// corruption is silent and only output verification can catch it.
	Checksum bool
	// Outages lists channel outage windows.
	Outages []Outage
	// Crashes lists scheduled processor crash-stops.
	Crashes []Crash
}

// active reports whether the plan can inject anything.
func (p *FaultPlan) active() bool {
	if p == nil {
		return false
	}
	return p.DropRate > 0 || p.CorruptRate > 0 || len(p.Outages) > 0 || len(p.Crashes) > 0
}

// Clone returns a deep copy of the plan (nil stays nil).
func (p *FaultPlan) Clone() *FaultPlan {
	if p == nil {
		return nil
	}
	c := *p
	c.Outages = append([]Outage(nil), p.Outages...)
	c.Crashes = append([]Crash(nil), p.Crashes...)
	return &c
}

// ForAttempt derives the plan a retry attempt runs under. Attempt 0 is the
// plan itself; later attempts reseed the stochastic faults (drops and
// corruptions strike elsewhere) while keeping the scripted Outages and
// Crashes — a scheduled hardware death does not heal because the computation
// restarted.
func (p *FaultPlan) ForAttempt(attempt int) *FaultPlan {
	if p == nil || attempt == 0 {
		return p
	}
	c := p.Clone()
	c.Seed = mix64(p.Seed ^ (0x9e3779b97f4a7c15 * uint64(attempt)))
	return c
}

// WithoutCrashes returns a copy of the plan with the crash entries for the
// given processors removed. The graceful-degradation retry uses it: the
// degraded attempt models re-running with the dead processors replaced by
// empty ones, so their scheduled crashes must not recur.
func (p *FaultPlan) WithoutCrashes(procs []int) *FaultPlan {
	if p == nil {
		return nil
	}
	dead := make(map[int]bool, len(procs))
	for _, id := range procs {
		dead[id] = true
	}
	c := p.Clone()
	kept := c.Crashes[:0]
	for _, cr := range c.Crashes {
		if !dead[cr.Proc] {
			kept = append(kept, cr)
		}
	}
	c.Crashes = kept
	return c
}

// WithoutOutages returns a copy of the plan with the outage windows for the
// given channels removed. The channel-degradation retry uses it: the degraded
// attempt runs on the surviving channels only, so the outages that killed the
// dropped channels must not be re-attributed to the survivors.
func (p *FaultPlan) WithoutOutages(chs []int) *FaultPlan {
	if p == nil {
		return nil
	}
	dead := make(map[int]bool, len(chs))
	for _, ch := range chs {
		dead[ch] = true
	}
	c := p.Clone()
	kept := c.Outages[:0]
	for _, o := range c.Outages {
		if !dead[o.Ch] {
			kept = append(kept, o)
		}
	}
	c.Outages = kept
	return c
}

// Shift returns the plan as seen by a run that starts off cycles into the
// original timeline: scripted windows and crash cycles move earlier by off
// (entries that have fully expired are dropped), and the stochastic seed is
// remixed so drop/corrupt decisions do not replay the prefix pattern. A
// resumed segment uses it so that "outage on cycles [40, 60)" still means
// cycles 40–60 of the attempt, not of each segment. off <= 0 returns the
// plan unchanged.
func (p *FaultPlan) Shift(off int64) *FaultPlan {
	if p == nil || off <= 0 {
		return p
	}
	c := p.Clone()
	c.Seed = mix64(p.Seed ^ uint64(off))
	kept := c.Outages[:0]
	for _, o := range c.Outages {
		o.From -= off
		o.To -= off
		if o.To <= 0 {
			continue // window fully in the past
		}
		if o.From < 0 {
			o.From = 0
		}
		kept = append(kept, o)
	}
	c.Outages = kept
	keptCr := c.Crashes[:0]
	for _, cr := range c.Crashes {
		cr.Cycle -= off
		if cr.Cycle < 0 {
			cr.Cycle = 0 // already due: crash before the segment's first op
		}
		keptCr = append(keptCr, cr)
	}
	c.Crashes = keptCr
	return c
}

// msgSum is the per-message checksum guarding payloads when
// FaultPlan.Checksum is set: FNV-1a over the tag and payload words. Any
// single-bit flip changes it, so injected corruption is always detected.
func msgSum(m Message) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mixByte := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mixByte(m.Tag)
	for _, w := range [3]int64{m.X, m.Y, m.Z} {
		u := uint64(w)
		for i := 0; i < 8; i++ {
			mixByte(byte(u >> (8 * i)))
		}
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Event-kind salts for the fault hash, so a drop decision and a corruption
// decision at the same coordinates are independent.
const (
	saltDrop    = 0xd509
	saltCorrupt = 0xc093
	saltBit     = 0xb17f
)

// roll returns a deterministic uniform [0, 1) for one (kind, cycle, a, b)
// coordinate under the plan's seed.
func (p *FaultPlan) roll(kind uint64, cycle int64, a, b int) float64 {
	h := mix64(p.Seed ^ kind)
	h = mix64(h ^ uint64(cycle))
	h = mix64(h ^ uint64(a))
	h = mix64(h ^ uint64(b))
	return float64(h>>11) / (1 << 53)
}

// outageAt reports whether channel ch is dead at the given cycle.
func (p *FaultPlan) outageAt(ch int, cycle int64) bool {
	if p == nil {
		return false
	}
	for _, o := range p.Outages {
		if o.Ch == ch && cycle >= o.From && cycle < o.To {
			return true
		}
	}
	return false
}

// dropAt reports whether the delivery to reader on ch at cycle is dropped.
func (p *FaultPlan) dropAt(cycle int64, reader, ch int) bool {
	if p == nil || p.DropRate <= 0 {
		return false
	}
	return p.roll(saltDrop, cycle, reader, ch) < p.DropRate
}

// corruptAt reports whether the delivery to reader on ch at cycle is
// garbled and, if so, returns the corrupted copy (one payload bit flipped;
// the bit position is itself seeded).
func (p *FaultPlan) corruptAt(cycle int64, reader, ch int, m Message) (Message, bool) {
	if p == nil || p.CorruptRate <= 0 {
		return m, false
	}
	if p.roll(saltCorrupt, cycle, reader, ch) >= p.CorruptRate {
		return m, false
	}
	h := mix64(p.Seed ^ saltBit)
	h = mix64(h ^ uint64(cycle))
	h = mix64(h ^ uint64(reader))
	h = mix64(h ^ uint64(ch))
	bit := int64(1) << (h >> 2 % 64)
	switch h % 3 {
	case 0:
		m.X ^= bit
	case 1:
		m.Y ^= bit
	default:
		m.Z ^= bit
	}
	return m, true
}

// CrashEvent records one injected crash-stop.
type CrashEvent struct {
	Proc  int   `json:"proc"`
	Cycle int64 `json:"cycle"` // cycle operations completed before stopping
}

// FaultStats counts the faults the engine injected during a run. All
// counters reflect fully resolved cycles only, like the rest of Stats.
type FaultStats struct {
	// Drops is the number of message deliveries suppressed (reader saw
	// silence although the channel was written).
	Drops int64 `json:"drops,omitempty"`
	// Corruptions is the number of deliveries that handed the reader a
	// garbled payload (checksum off).
	Corruptions int64 `json:"corruptions,omitempty"`
	// Detected is the number of corrupted deliveries caught by the
	// per-message checksum and read as silence instead.
	Detected int64 `json:"detected,omitempty"`
	// OutageLosses is the number of messages written onto a dead channel.
	OutageLosses int64 `json:"outage_losses,omitempty"`
	// OutagePerChannel breaks OutageLosses down by channel index; nil when
	// no outage loss occurred. The degradation retry uses it to attribute a
	// failure to specific channels.
	OutagePerChannel []int64 `json:"outage_per_channel,omitempty"`
	// Crashes lists the crash-stops that fired, in processor order.
	Crashes []CrashEvent `json:"crashes,omitempty"`
}

// Total returns the total number of injected fault events.
func (f *FaultStats) Total() int64 {
	if f == nil {
		return 0
	}
	return f.Drops + f.Corruptions + f.Detected + f.OutageLosses + int64(len(f.Crashes))
}

// add folds t into f.
func (f *FaultStats) add(t *FaultStats) {
	f.Drops += t.Drops
	f.Corruptions += t.Corruptions
	f.Detected += t.Detected
	f.OutageLosses += t.OutageLosses
	if t.OutagePerChannel != nil {
		if len(f.OutagePerChannel) < len(t.OutagePerChannel) {
			grown := make([]int64, len(t.OutagePerChannel))
			copy(grown, f.OutagePerChannel)
			f.OutagePerChannel = grown
		}
		for ch, n := range t.OutagePerChannel {
			f.OutagePerChannel[ch] += n
		}
	}
	f.Crashes = append(f.Crashes, t.Crashes...)
}

func (f *FaultStats) clone() FaultStats {
	c := *f
	c.OutagePerChannel = append([]int64(nil), f.OutagePerChannel...)
	c.Crashes = append([]CrashEvent(nil), f.Crashes...)
	return c
}

// OutageSuspects attributes a failure at failCycle to channels: a channel is
// a suspect when it actually lost messages during the run (OutagePerChannel)
// and the plan scripts an outage window for it that is still open at the
// failing cycle — a window that closed long before the failure cannot be
// what is defeating retries. Returns the suspect channels in ascending
// order, or nil when the failure is not attributable to channel loss.
func OutageSuspects(plan *FaultPlan, stats *FaultStats, failCycle int64) []int {
	if plan == nil || stats == nil || len(stats.OutagePerChannel) == 0 {
		return nil
	}
	var out []int
	for ch, n := range stats.OutagePerChannel {
		if n <= 0 {
			continue
		}
		for _, o := range plan.Outages {
			if o.Ch == ch && o.To > failCycle {
				out = append(out, ch)
				break
			}
		}
	}
	return out
}

// faultState is the engine-side runtime of a FaultPlan.
type faultState struct {
	plan    *FaultPlan
	crashAt []int64 // per processor: cycles to complete before crashing, -1 = never

	mu      sync.Mutex
	crashed []CrashEvent // recorded by crashing processor goroutines
}

func newFaultState(plan *FaultPlan, p int) *faultState {
	if !plan.active() {
		return nil
	}
	fs := &faultState{plan: plan, crashAt: make([]int64, p)}
	for i := range fs.crashAt {
		fs.crashAt[i] = -1
	}
	for _, c := range plan.Crashes {
		if c.Proc < 0 || c.Proc >= p {
			continue
		}
		if fs.crashAt[c.Proc] < 0 || c.Cycle < fs.crashAt[c.Proc] {
			fs.crashAt[c.Proc] = c.Cycle
		}
	}
	return fs
}

// crashCycle returns the scheduled crash cycle for proc id, or -1.
func (fs *faultState) crashCycle(id int) int64 {
	if fs == nil {
		return -1
	}
	return fs.crashAt[id]
}

// recordCrash notes that proc id crash-stopped after completing the given
// number of cycles. Safe for concurrent use (crashes fire on processor
// goroutines).
func (fs *faultState) recordCrash(id int, cycle int64) {
	fs.mu.Lock()
	fs.crashed = append(fs.crashed, CrashEvent{Proc: id, Cycle: cycle})
	fs.mu.Unlock()
}

// crashes returns the recorded crash events in processor order, and the
// earliest crash cycle. Call only after every processor goroutine stopped.
func (fs *faultState) crashes() ([]CrashEvent, int64) {
	if fs == nil {
		return nil, 0
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	evs := append([]CrashEvent(nil), fs.crashed...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Proc < evs[j].Proc })
	first := int64(0)
	for i, ev := range evs {
		if i == 0 || ev.Cycle < first {
			first = ev.Cycle
		}
	}
	return evs, first
}

func (fs *faultState) String() string {
	if fs == nil {
		return "faults: none"
	}
	return fmt.Sprintf("faults: seed=%d drop=%g corrupt=%g checksum=%v outages=%d crashes=%d",
		fs.plan.Seed, fs.plan.DropRate, fs.plan.CorruptRate, fs.plan.Checksum, len(fs.plan.Outages), len(fs.plan.Crashes))
}
