package mcb

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
)

// Proc is the handle a processor program uses to interact with the network.
// Exactly one of WriteRead, Write, Read or Idle must be called per cycle as
// long as any other processor is still running; returning from the program
// leaves the lock-step protocol.
//
// A Proc is confined to its program goroutine and must not be shared.
type Proc struct {
	id int
	e  *engine

	auxWords int64    // current auxiliary-memory estimate (words), see AccountAux
	steps    int64    // cycles this processor has participated in
	mirOps   uint64   // ops issued, mirrored into engine.procMirror for the watchdog
	pending  []string // phase markers to attach to the next cycle op, see Phase
}

// Cycles returns the number of cycles this processor has participated in so
// far. While every processor is live, this equals the global cycle count, so
// algorithms use it to record phase boundaries.
func (p *Proc) Cycles() int64 { return p.steps }

// ID returns the processor index in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the number of processors in the network.
func (p *Proc) P() int { return p.e.cfg.P }

// K returns the number of broadcast channels.
func (p *Proc) K() int { return p.e.cfg.K }

// Phase marks the start of a named accounting phase. The marker rides on
// this processor's next cycle operation; from the cycle that operation
// belongs to onward, the engine attributes cycles and messages to the named
// phase (Stats.Phases) until another marker takes over. Marking costs no
// cycles and no messages. Any processor may mark; in a lock-step algorithm
// all processors reach a boundary in the same cycle, so markers from
// different processors carrying the same name coalesce. Repeating the
// current phase's name is a no-op; segments sharing a name merge into one
// Stats entry.
func (p *Proc) Phase(name string) {
	p.pending = append(p.pending, name)
	if p.e.cfg.ProfileLabels {
		p.setProfileLabels(name)
	}
}

// setProfileLabels tags this processor's goroutine with pprof labels so CPU
// profiles attribute samples (local computation, barrier spinning) to the
// processor and its current algorithm phase. Only called when
// Config.ProfileLabels is set; phase marking is cold, so the per-call
// allocations are acceptable.
func (p *Proc) setProfileLabels(phase string) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("mcb_proc", strconv.Itoa(p.id), "mcb_phase", phase)))
}

// fillSlot writes this processor's submission for the next cycle directly
// into its (cache-line padded, single-writer) engine slot, updates the
// watchdog mirror, and hands any queued phase markers to the engine's cold
// side table. Writing in place keeps the hot path free of cycleOp copies.
func (p *Proc) fillSlot(kind opKind, writeCh, readCh int32, msg Message) {
	p.mirOps++
	p.e.procMirror[p.id].v.Store(p.mirOps<<3 | uint64(kind))
	slot := &p.e.slots[p.id].op
	slot.kind = kind
	slot.writeCh = writeCh
	slot.readCh = readCh
	slot.msg = msg
	if len(p.pending) > 0 {
		slot.hasPhases = true
		p.e.phaseSlots[p.id] = p.pending
		p.pending = nil
	} else {
		slot.hasPhases = false
	}
}

// issue submits one cycle operation, firing a scheduled crash-stop first:
// a processor with a FaultPlan crash at cycle c completes exactly c cycle
// operations and dies before issuing the next one. The crash unwinds only
// this goroutine (crashPanic); the run continues without the processor.
// Deterministic: the trigger depends only on this processor's own op count,
// which in a lock-step run equals the global cycle index.
func (p *Proc) issue(kind opKind, writeCh, readCh int32, msg Message) readResult {
	p.steps++
	if fs := p.e.faults; fs != nil {
		if c := fs.crashCycle(p.id); c >= 0 && p.steps > c {
			fs.recordCrash(p.id, c)
			panic(crashPanic{})
		}
	}
	p.fillSlot(kind, writeCh, readCh, msg)
	return p.e.step(p.id, kind)
}

// WriteRead broadcasts m on channel writeCh and reads channel readCh in the
// same cycle. It returns the message observed on readCh and whether the
// channel was written at all this cycle (ok=false reports silence). Reading
// the channel just written observes the processor's own message.
func (p *Proc) WriteRead(writeCh int, m Message, readCh int) (Message, bool) {
	r := p.issue(opWriteRead, int32(writeCh), int32(readCh), m)
	return r.msg, r.ok
}

// Write broadcasts m on channel writeCh and does not read this cycle.
func (p *Proc) Write(writeCh int, m Message) {
	p.issue(opWrite, int32(writeCh), 0, m)
}

// Read reads channel readCh this cycle without writing. ok=false reports
// that no processor wrote the channel (silence).
func (p *Proc) Read(readCh int) (Message, bool) {
	r := p.issue(opRead, 0, int32(readCh), Message{})
	return r.msg, r.ok
}

// Idle spends one cycle without touching any channel.
func (p *Proc) Idle() {
	p.issue(opIdle, 0, 0, Message{})
}

// IdleN spends n cycles idle. n <= 0 is a no-op.
//
// The first cycle goes through the full issue path — it carries any pending
// phase markers and performs the crash-stop check. The remaining cycles take
// a fast path that skips both: no markers can be queued mid-loop, and the
// fast path is only taken when no scheduled crash-stop can fire inside the
// stretch, so per-cycle crash semantics are preserved exactly.
func (p *Proc) IdleN(n int) {
	if n <= 0 {
		return
	}
	p.Idle()
	if n--; n == 0 {
		return
	}
	if fs := p.e.faults; fs != nil {
		if c := fs.crashCycle(p.id); c >= 0 && p.steps+int64(n) > c {
			// The crash-stop fires inside this idle stretch: keep the
			// per-cycle path so it triggers on the exact cycle.
			for i := 0; i < n; i++ {
				p.Idle()
			}
			return
		}
	}
	// The slot content is identical for every remaining cycle, so it is
	// written once; only the arrival (and the watchdog mirror) repeats.
	p.fillSlot(opIdle, 0, 0, Message{})
	if p.e.mode == EngineSharded {
		// One submission covers the whole stretch: the owning worker replays
		// the opIdle slot for the remaining cycles without waking this
		// goroutine (see engine.stepIdleBatch). Steps and the watchdog mirror
		// are pre-credited — the goroutine parks for the stretch, so the
		// per-cycle mirror updates would never be observed mid-flight anyway.
		p.steps += int64(n)
		p.mirOps += uint64(n - 1)
		p.e.procMirror[p.id].v.Store(p.mirOps<<3 | uint64(opIdle))
		p.e.stepIdleBatch(p.id, n)
		return
	}
	mir := &p.e.procMirror[p.id].v
	for i := 0; i < n; i++ {
		p.steps++
		if i > 0 {
			p.mirOps++
			mir.Store(p.mirOps<<3 | uint64(opIdle))
		}
		p.e.step(p.id, opIdle)
	}
}

// Abortf fails the whole computation with a formatted error. It is meant for
// algorithm-level invariant violations; it does not return. The error is a
// structured *AbortError (matching errors.As) wrapping ErrAborted.
func (p *Proc) Abortf(format string, args ...any) {
	p.abortWith(&AbortError{Proc: p.id, VProc: -1, Msg: fmt.Sprintf(format, args...)})
}

// abortWith fails the whole computation with a structured error; it does not
// return. The simulation layer uses it to surface virtual-processor aborts
// with their virtual id attached.
func (p *Proc) abortWith(err error) {
	p.e.abort(err)
	panic(abortPanic{err})
}

// AccountAux adjusts this processor's auxiliary-memory estimate by delta
// words and records the high-water mark in Stats.MaxAux. The engine does not
// measure memory itself; algorithms call this to make their auxiliary-storage
// claims (O(1), O(n_i), ...) observable in experiments.
func (p *Proc) AccountAux(delta int64) {
	p.auxWords += delta
	for {
		cur := p.e.maxAux.Load()
		if p.auxWords <= cur || p.e.maxAux.CompareAndSwap(cur, p.auxWords) {
			return
		}
	}
}

// exit leaves the lock-step protocol. Any engine-failure panic raised while
// exiting is swallowed: the engine result is already determined. A phase
// marker still pending here rides on the exit op, so it registers even when
// it was queued after the processor's last traffic cycle.
func (p *Proc) exit() {
	defer func() { _ = recover() }()
	p.fillSlot(opExit, 0, 0, Message{})
	p.e.step(p.id, opExit)
}
