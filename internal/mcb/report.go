package mcb

import (
	"encoding/json"
	"io"

	"mcbnet/internal/trace"
)

// Report is the machine-readable summary of a run: the network shape, the
// whole-run Stats and the per-phase breakdown, in a stable JSON schema for
// downstream tooling (the -json flags of the CLIs emit it). Extra carries
// caller-specific fields (algorithm name, input size, results) without
// changing the schema of the measured part.
type Report struct {
	// Model names the machine model of the run, e.g. "mcb".
	Model string `json:"model"`
	// P and K are the network shape: processors and broadcast channels.
	P int `json:"p"`
	K int `json:"k"`

	// Cycles and Messages are the two complexity measures of the model.
	Cycles   int64 `json:"cycles"`
	Messages int64 `json:"messages"`
	// MaxAbs is the largest absolute payload field value broadcast.
	MaxAbs int64 `json:"max_abs"`
	// MaxAux is the auxiliary-memory watermark in words (0 if unreported).
	MaxAux int64 `json:"max_aux,omitempty"`
	// PerProc[i] / PerChannel[c] are the per-processor and per-channel
	// message counts.
	PerProc    []int64 `json:"per_proc,omitempty"`
	PerChannel []int64 `json:"per_channel,omitempty"`
	// Utilization is Messages / (Cycles * K): the fraction of channel-cycles
	// carrying a message.
	Utilization float64 `json:"utilization"`

	// Phases is the per-phase breakdown, in first-marked order. Empty if the
	// program never called Phase.
	Phases []PhaseStats `json:"phases,omitempty"`

	// Faults counts the injected faults of the run (nil when no fault was
	// injected).
	Faults *FaultStats `json:"faults,omitempty"`
	// Attempts is the number of attempts the verify-and-retry layer used to
	// produce the result (0 or 1 = single attempt, no retry).
	Attempts int `json:"attempts,omitempty"`
	// Resumes is how many of those attempts continued from a phase-boundary
	// checkpoint instead of restarting from cycle 0.
	Resumes int `json:"resumes,omitempty"`
	// CheckpointPhase names the last accepted checkpoint the final attempt
	// started from ("" when the run never resumed).
	CheckpointPhase string `json:"checkpoint_phase,omitempty"`
	// ReplayedCycles counts cycles that were executed but discarded — work
	// not on the accepted attempt's path. Lower is better; checkpointed
	// recovery exists to shrink it.
	ReplayedCycles int64 `json:"replayed_cycles,omitempty"`
	// DegradedK is the reduced channel count a degraded run finished on
	// (0 when no channel degradation occurred); DeadChannels lists the
	// original channel indices that were dropped.
	DegradedK    int   `json:"degraded_k,omitempty"`
	DeadChannels []int `json:"dead_channels,omitempty"`

	// Extra holds caller-specific fields; keys are caller-defined.
	Extra map[string]any `json:"extra,omitempty"`
}

// NewReport builds a Report from a run's configuration and stats.
func NewReport(cfg Config, s *Stats) *Report {
	r := &Report{
		Model:      "mcb",
		P:          cfg.P,
		K:          cfg.K,
		Cycles:     s.Cycles,
		Messages:   s.Messages,
		MaxAbs:     s.MaxAbs,
		MaxAux:     s.MaxAux,
		PerProc:    append([]int64(nil), s.PerProc...),
		PerChannel: append([]int64(nil), s.PerChannel...),
	}
	if cfg.K > 0 && s.Cycles > 0 {
		r.Utilization = float64(s.Messages) / (float64(s.Cycles) * float64(cfg.K))
	}
	r.Phases = make([]PhaseStats, 0, len(s.Phases))
	for i := range s.Phases {
		r.Phases = append(r.Phases, s.Phases[i].clone())
	}
	if s.Faults.Total() > 0 {
		f := s.Faults.clone()
		r.Faults = &f
	}
	return r
}

// AttachTraceSummary folds a cycle recorder's per-phase timeline — channel
// utilization, silences, collisions, fault counts, cycle ranges — into the
// report's Extra section under "trace", keeping the measured part of the
// schema unchanged. A nil recorder is a no-op.
func AttachTraceSummary(rep *Report, rec *trace.Recorder) {
	if rec == nil {
		return
	}
	if rep.Extra == nil {
		rep.Extra = make(map[string]any)
	}
	rep.Extra["trace"] = map[string]any{
		"events":  rec.Total(),
		"dropped": rec.Dropped(),
		"phases":  rec.Summaries(),
	}
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteJSON writes the indented JSON report plus a trailing newline to w.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
