// Package matrix implements the matrix machinery of Leighton's Columnsort as
// used in Section 5 of the paper: the four transformations (Transpose,
// Un-Diagonalize, Up-Shift, Down-Shift) expressed as permutations of a
// column-major linear list, the 9-phase sorting pipeline, and an in-memory
// reference Columnsort used as the correctness oracle for the distributed
// implementation.
//
// The input is viewed as an m x k matrix — k columns of length m — stored
// column-major: linear position t corresponds to column t/m, row t%m. The
// paper sorts in descending order: after Columnsort, the element of
// (descending) rank t+1 is at linear position t.
package matrix

import "fmt"

// Shape describes an m x k Columnsort matrix: K columns of length M.
type Shape struct {
	M int // column length
	K int // number of columns
}

// N returns the total number of cells.
func (s Shape) N() int { return s.M * s.K }

// Validate checks the Columnsort feasibility conditions: the transformations
// require K to divide M, and correctness requires M >= MinColLen(K).
func (s Shape) Validate() error {
	if s.M < 1 || s.K < 1 {
		return fmt.Errorf("matrix: invalid shape m=%d k=%d", s.M, s.K)
	}
	if s.K > 1 {
		if s.M%s.K != 0 {
			return fmt.Errorf("matrix: column length %d not a multiple of column count %d", s.M, s.K)
		}
		if s.M < MinColLen(s.K) {
			return fmt.Errorf("matrix: column length %d below minimum %d for %d columns", s.M, MinColLen(s.K), s.K)
		}
	}
	return nil
}

// MinColLen returns the minimum column length for which the 9-phase pipeline
// sorts every input with k columns. The paper states m >= k(k-1).
func MinColLen(k int) int {
	if k <= 1 {
		return 1
	}
	return k * (k - 1)
}

// Col and Row convert a linear (column-major) position to coordinates.
func (s Shape) Col(t int) int { return t / s.M }

// Row returns the row of linear position t.
func (s Shape) Row(t int) int { return t % s.M }

// Pos converts (column, row) coordinates to a linear position.
func (s Shape) Pos(col, row int) int { return col*s.M + row }

// A Transform maps the linear position of an element before a transformation
// phase to its position afterwards.
type Transform func(s Shape, t int) int

// Transpose implements the paper's Transpose: take the elements column after
// column (i.e., in linear order) and store them row after row. The t-th
// element in column-major order lands in the t-th row-major slot.
func Transpose(s Shape, t int) int {
	return s.Pos(t%s.K, t/s.K)
}

// Untranspose is the inverse of Transpose: the t-th element in row-major
// order lands in the t-th column-major slot. (Leighton's original phase 4;
// provided for the ablation against the paper's Un-Diagonalize.)
func Untranspose(s Shape, t int) int {
	col, row := s.Col(t), s.Row(t)
	return row*s.K + col
}

// UnDiagonalize implements the paper's phase-4 transformation: take the
// elements diagonal after diagonal — in the (column, row) order (1,1), (2,1),
// (1,2), (3,1), (2,2), (1,3), ..., (k,m) — and store them column after
// column. The element at position t lands in the slot equal to its index in
// the diagonal enumeration.
func UnDiagonalize(s Shape, t int) int {
	c, r := s.Col(t), s.Row(t)
	return diagIndex(s, c, r)
}

// diagIndex returns the 0-based index of cell (c, r) in the diagonal
// enumeration: diagonals d = c+r in increasing order; within a diagonal,
// decreasing column (the paper's (1,1),(2,1),(1,2),(3,1),(2,2),(1,3),...).
func diagIndex(s Shape, c, r int) int {
	d := c + r
	// Number of cells in diagonals 0..d-1.
	before := cellsBeforeDiag(s, d)
	// Within diagonal d, cells are (cMax, d-cMax), (cMax-1, ...), ...,
	// (cMin, d-cMin) with cMax = min(k-1, d), cMin = max(0, d-(m-1)).
	cMax := min(s.K-1, d)
	return before + (cMax - c)
}

// cellsBeforeDiag counts matrix cells on diagonals 0..d-1 in closed form
// (diagonal index is col+row; the matrix has k columns and m rows, with
// m >= k in all valid shapes). Diagonal i has i+1 cells for i < k, k cells
// for k <= i < m, and k-(i-m+1) cells for i >= m.
func cellsBeforeDiag(s Shape, d int) int {
	k, m := s.K, s.M
	if d <= 0 {
		return 0
	}
	total := 0
	d1 := min(d, k)
	total += d1 * (d1 + 1) / 2
	if d > k {
		d2 := min(d, m)
		total += (d2 - k) * k
	}
	if d > m {
		j := d - m // diagonals m .. d-1
		total += j*k - j*(j+1)/2
	}
	return total
}

// UpShift shifts each element floor(m/2) positions in the ascending
// direction of the linear order; the last floor(m/2) elements wrap
// circularly to the beginning.
func UpShift(s Shape, t int) int {
	return (t + s.M/2) % s.N()
}

// DownShift is the inverse of UpShift.
func DownShift(s Shape, t int) int {
	n := s.N()
	return (t + n - s.M/2) % n
}

// Apply permutes data (column-major, length s.N()) according to f, writing
// into out (which must have length s.N()) and returning it. out must not
// alias data.
func Apply(s Shape, data []int64, f Transform, out []int64) []int64 {
	if len(data) != s.N() || len(out) != s.N() {
		panic("matrix: bad slice length")
	}
	for t := range data {
		out[f(s, t)] = data[t]
	}
	return out
}

// InvertPerm returns the inverse permutation table of f over shape s:
// inv[dst] = src.
func InvertPerm(s Shape, f Transform) []int {
	inv := make([]int, s.N())
	for t := 0; t < s.N(); t++ {
		inv[f(s, t)] = t
	}
	return inv
}

// IsPermutation reports whether f is a bijection on [0, s.N()) — a sanity
// check used by tests and by the schedule builder.
func IsPermutation(s Shape, f Transform) bool {
	seen := make([]bool, s.N())
	for t := 0; t < s.N(); t++ {
		d := f(s, t)
		if d < 0 || d >= s.N() || seen[d] {
			return false
		}
		seen[d] = true
	}
	return true
}
