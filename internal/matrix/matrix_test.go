package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcbnet/internal/seq"
)

// cellsBeforeDiagSlow is the O(d) oracle for the closed form.
func cellsBeforeDiagSlow(s Shape, d int) int {
	total := 0
	for i := 0; i < d; i++ {
		cMax := min(s.K-1, i)
		cMin := max(0, i-(s.M-1))
		if cMax >= cMin {
			total += cMax - cMin + 1
		}
	}
	return total
}

func TestCellsBeforeDiagClosedForm(t *testing.T) {
	for _, sh := range []Shape{{M: 2, K: 2}, {M: 6, K: 3}, {M: 12, K: 4}, {M: 20, K: 5}, {M: 7, K: 7}, {M: 30, K: 3}} {
		for d := 0; d <= sh.M+sh.K; d++ {
			if got, want := cellsBeforeDiag(sh, d), cellsBeforeDiagSlow(sh, d); got != want {
				t.Fatalf("shape %v d=%d: %d != %d", sh, d, got, want)
			}
		}
	}
}

func TestTransformsArePermutations(t *testing.T) {
	shapes := []Shape{{M: 2, K: 2}, {M: 4, K: 2}, {M: 6, K: 3}, {M: 12, K: 4}, {M: 24, K: 4}, {M: 20, K: 5}}
	transforms := map[string]Transform{
		"transpose":      Transpose,
		"untranspose":    Untranspose,
		"un-diagonalize": UnDiagonalize,
		"up-shift":       UpShift,
		"down-shift":     DownShift,
	}
	for _, sh := range shapes {
		for name, f := range transforms {
			if !IsPermutation(sh, f) {
				t.Errorf("%s is not a permutation on %v", name, sh)
			}
		}
	}
}

func TestUntransposeInvertsTranspose(t *testing.T) {
	sh := Shape{M: 12, K: 4}
	for t0 := 0; t0 < sh.N(); t0++ {
		if got := Untranspose(sh, Transpose(sh, t0)); got != t0 {
			t.Fatalf("untranspose(transpose(%d)) = %d", t0, got)
		}
	}
}

func TestDownShiftInvertsUpShift(t *testing.T) {
	sh := Shape{M: 6, K: 3}
	for t0 := 0; t0 < sh.N(); t0++ {
		if got := DownShift(sh, UpShift(sh, t0)); got != t0 {
			t.Fatalf("downshift(upshift(%d)) = %d", t0, got)
		}
	}
}

// TestFig1Transpose reproduces the shape of Figure 1's transpose example:
// reading a 4x2 matrix column by column and writing row by row.
func TestFig1Transpose(t *testing.T) {
	sh := Shape{M: 4, K: 2}
	data := []int64{1, 2, 3, 4, 5, 6, 7, 8} // columns: [1 2 3 4], [5 6 7 8]
	out := Apply(sh, data, Transpose, make([]int64, 8))
	// Row-major fill: rows become 1 5 / 2 6 / 3 7 / 4 8 read column-major:
	// column 1 = 1 2 3 4 placed at rows 0..3 of alternating columns.
	want := []int64{1, 3, 5, 7, 2, 4, 6, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("transpose = %v, want %v", out, want)
		}
	}
}

func TestUnDiagonalizeSmall(t *testing.T) {
	// 3 columns x 6 rows. Diagonal order (0-based (col,row)):
	// (0,0) (1,0),(0,1) (2,0),(1,1),(0,2) (2,1),(1,2),(0,3) ...
	sh := Shape{M: 6, K: 3}
	// Element at (c,r) = linear c*6+r. Its destination is its diagonal index.
	type cell struct{ c, r int }
	order := []cell{}
	for d := 0; d <= sh.K+sh.M-2; d++ {
		for c := min(sh.K-1, d); c >= max(0, d-(sh.M-1)); c-- {
			order = append(order, cell{c, d - c})
		}
	}
	if len(order) != sh.N() {
		t.Fatalf("diagonal enumeration covers %d cells, want %d", len(order), sh.N())
	}
	for idx, cl := range order {
		if got := UnDiagonalize(sh, sh.Pos(cl.c, cl.r)); got != idx {
			t.Fatalf("cell (%d,%d): diag index %d, want %d", cl.c, cl.r, got, idx)
		}
	}
}

func TestShapeValidate(t *testing.T) {
	cases := []struct {
		sh Shape
		ok bool
	}{
		{Shape{M: 1, K: 1}, true},
		{Shape{M: 5, K: 1}, true},
		{Shape{M: 2, K: 2}, true},
		{Shape{M: 3, K: 2}, false}, // k does not divide m
		{Shape{M: 4, K: 4}, false}, // m < k(k-1)
		{Shape{M: 12, K: 4}, true}, // m = k(k-1)
		{Shape{M: 0, K: 1}, false},
	}
	for _, c := range cases {
		err := c.sh.Validate()
		if c.ok && err != nil {
			t.Errorf("%v: unexpected error %v", c.sh, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%v: expected error", c.sh)
		}
	}
}

func sortedDesc(in []int64) []int64 {
	out := append([]int64(nil), in...)
	seq.SortInt64Desc(out)
	return out
}

func checkColumnsort(t *testing.T, sh Shape, data []int64, phases []Phase, label string) {
	t.Helper()
	want := sortedDesc(data)
	got := append([]int64(nil), data...)
	RunPipeline(sh, got, phases)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s shape %v: output not sorted at %d: got %v want %v (input %v)",
				label, sh, i, got, want, data)
		}
	}
}

func TestColumnsortExhaustive01K2(t *testing.T) {
	// 0-1 principle, exhaustively for k=2, m=2 (n=4) and m=4 (n=8).
	for _, sh := range []Shape{{M: 2, K: 2}, {M: 4, K: 2}} {
		n := sh.N()
		for mask := 0; mask < 1<<n; mask++ {
			data := make([]int64, n)
			for i := range data {
				data[i] = int64((mask >> i) & 1)
			}
			checkColumnsort(t, sh, data, Phases(), "paper")
		}
	}
}

func TestColumnsortExhaustive01K3(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 2^18 inputs")
	}
	sh := Shape{M: 6, K: 3}
	n := sh.N()
	for mask := 0; mask < 1<<n; mask++ {
		data := make([]int64, n)
		for i := range data {
			data[i] = int64((mask >> i) & 1)
		}
		checkColumnsort(t, sh, data, Phases(), "paper")
	}
}

func TestColumnsortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []Shape{
		{M: 2, K: 2}, {M: 6, K: 3}, {M: 12, K: 4}, {M: 20, K: 5},
		{M: 30, K: 6}, {M: 42, K: 7}, {M: 56, K: 8}, {M: 64, K: 8},
		{M: 240, K: 4}, {M: 132, K: 12},
	}
	for _, sh := range shapes {
		if err := sh.Validate(); err != nil {
			t.Fatalf("shape %v invalid: %v", sh, err)
		}
		for trial := 0; trial < 40; trial++ {
			data := make([]int64, sh.N())
			for i := range data {
				data[i] = rng.Int63n(int64(sh.N()))
			}
			checkColumnsort(t, sh, data, Phases(), "paper")
		}
	}
}

func TestColumnsortLeightonVariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapes := []Shape{{M: 6, K: 3}, {M: 12, K: 4}, {M: 56, K: 8}}
	for _, sh := range shapes {
		for trial := 0; trial < 40; trial++ {
			data := make([]int64, sh.N())
			for i := range data {
				data[i] = rng.Int63n(int64(sh.N()))
			}
			checkColumnsort(t, sh, data, PhasesLeighton(), "leighton")
		}
	}
}

func TestColumnsort01Property(t *testing.T) {
	// Randomized 0-1 principle testing on a larger shape.
	sh := Shape{M: 12, K: 4}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]int64, sh.N())
		ones := 0
		for i := range data {
			data[i] = int64(rng.Intn(2))
			ones += int(data[i])
		}
		got := append([]int64(nil), data...)
		ColumnsortDesc(sh, got)
		for i := range got {
			want := int64(0)
			if i < ones {
				want = 1
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnsortDuplicatesAndExtremes(t *testing.T) {
	sh := Shape{M: 12, K: 4}
	inputs := [][]int64{
		make([]int64, sh.N()), // all zero
	}
	asc := make([]int64, sh.N())
	desc := make([]int64, sh.N())
	for i := range asc {
		asc[i] = int64(i)
		desc[i] = int64(sh.N() - i)
	}
	inputs = append(inputs, asc, desc)
	for _, in := range inputs {
		checkColumnsort(t, sh, in, Phases(), "paper")
	}
}

func TestPlanColumns(t *testing.T) {
	cases := []struct {
		n, kMax int
	}{
		{1, 1}, {10, 1}, {100, 4}, {48, 4}, {1000, 8}, {7, 4}, {1 << 16, 16},
	}
	for _, c := range cases {
		cols, m := PlanColumns(c.n, c.kMax)
		if cols < 1 || cols > c.kMax {
			t.Fatalf("PlanColumns(%d,%d) columns=%d", c.n, c.kMax, cols)
		}
		if cols > 1 {
			sh := Shape{M: m, K: cols}
			if err := sh.Validate(); err != nil {
				t.Fatalf("PlanColumns(%d,%d) gave invalid shape %v: %v", c.n, c.kMax, sh, err)
			}
			if m*cols < c.n {
				t.Fatalf("PlanColumns(%d,%d): capacity %d too small", c.n, c.kMax, m*cols)
			}
		} else if m != c.n {
			t.Fatalf("PlanColumns(%d,%d): single column m=%d", c.n, c.kMax, m)
		}
	}
	// Large n with k columns should beat a single column.
	cols, m := PlanColumns(1<<16, 8)
	if cols != 8 {
		t.Errorf("PlanColumns(65536, 8) columns = %d, want 8", cols)
	}
	if m >= 1<<16 {
		t.Errorf("PlanColumns(65536, 8) m = %d, no improvement", m)
	}
}

func TestInvertPerm(t *testing.T) {
	sh := Shape{M: 12, K: 4}
	inv := InvertPerm(sh, UnDiagonalize)
	for t0 := 0; t0 < sh.N(); t0++ {
		if inv[UnDiagonalize(sh, t0)] != t0 {
			t.Fatalf("bad inverse at %d", t0)
		}
	}
}

func TestMinColLenBoundary(t *testing.T) {
	// m = k(k-1) is the smallest column length the paper admits; shapes just
	// below must be rejected, and the boundary shape must sort correctly
	// (covered by random tests above for several k).
	if MinColLen(1) != 1 || MinColLen(2) != 2 || MinColLen(4) != 12 {
		t.Fatalf("MinColLen values wrong")
	}
	sh := Shape{M: 8, K: 4} // multiple of k but < k(k-1)
	if sh.Validate() == nil {
		t.Fatal("expected validation failure for m < k(k-1)")
	}
}

func TestColumnsortLeightonExhaustive01K2(t *testing.T) {
	for _, sh := range []Shape{{M: 2, K: 2}, {M: 4, K: 2}} {
		n := sh.N()
		for mask := 0; mask < 1<<n; mask++ {
			data := make([]int64, n)
			for i := range data {
				data[i] = int64((mask >> i) & 1)
			}
			checkColumnsort(t, sh, data, PhasesLeighton(), "leighton-01")
		}
	}
}

func TestPlanColumnsMinimizesColumnLength(t *testing.T) {
	// The returned m must be minimal over all feasible column counts.
	for _, c := range []struct{ n, k int }{{100, 4}, {5000, 8}, {48, 16}, {12, 3}} {
		cols, m := PlanColumns(c.n, c.k)
		for cand := 1; cand <= c.k; cand++ {
			var mm int
			if cand == 1 {
				mm = c.n
			} else {
				mm = (c.n + cand - 1) / cand
				if lo := MinColLen(cand); mm < lo {
					mm = lo
				}
				if r := mm % cand; r != 0 {
					mm += cand - r
				}
			}
			if mm < m {
				t.Errorf("PlanColumns(%d,%d)=(%d,%d) but %d columns give m=%d",
					c.n, c.k, cols, m, cand, mm)
			}
		}
	}
}

func TestRunPipelinePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad data length")
		}
	}()
	RunPipeline(Shape{M: 2, K: 2}, []int64{1, 2, 3}, Phases())
}

func TestApplyPanicsOnAliasLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sh := Shape{M: 2, K: 2}
	Apply(sh, make([]int64, 4), Transpose, make([]int64, 3))
}

func TestShapeAccessorsRoundTrip(t *testing.T) {
	sh := Shape{M: 7, K: 3}
	for tpos := 0; tpos < sh.N(); tpos++ {
		if sh.Pos(sh.Col(tpos), sh.Row(tpos)) != tpos {
			t.Fatalf("round trip failed at %d", tpos)
		}
	}
}
