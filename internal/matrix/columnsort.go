package matrix

import "mcbnet/internal/seq"

// PhaseKind distinguishes local-sort phases from communication
// (transformation) phases of the Columnsort pipeline.
type PhaseKind uint8

const (
	// PhaseSort sorts each column locally in descending order.
	PhaseSort PhaseKind = iota
	// PhaseTransform permutes the matrix according to Phase.Transform.
	PhaseTransform
)

// Phase is one step of the Columnsort pipeline.
type Phase struct {
	// Num is the paper's phase number (1..9).
	Num int
	// Kind selects sort vs. transform.
	Kind PhaseKind
	// Transform is the permutation for PhaseTransform phases.
	Transform Transform
	// SkipCol0 marks the paper's phase 7, which sorts every column except
	// column 1 (the elements wrapped around by Up-Shift are shifted straight
	// back by Down-Shift, so their order is immaterial).
	SkipCol0 bool
	// Name is the phase description used in traces and experiment output.
	Name string
}

// Phases returns the paper's 9-phase Columnsort pipeline (Section 5.1 plus
// the phase-9 local sort added in Section 5.2).
func Phases() []Phase {
	return []Phase{
		{Num: 1, Kind: PhaseSort, Name: "sort columns"},
		{Num: 2, Kind: PhaseTransform, Transform: Transpose, Name: "transpose"},
		{Num: 3, Kind: PhaseSort, Name: "sort columns"},
		{Num: 4, Kind: PhaseTransform, Transform: UnDiagonalize, Name: "un-diagonalize"},
		{Num: 5, Kind: PhaseSort, Name: "sort columns"},
		{Num: 6, Kind: PhaseTransform, Transform: UpShift, Name: "up-shift"},
		{Num: 7, Kind: PhaseSort, SkipCol0: true, Name: "sort columns except column 1"},
		{Num: 8, Kind: PhaseTransform, Transform: DownShift, Name: "down-shift"},
		{Num: 9, Kind: PhaseSort, Name: "sort columns"},
	}
}

// PhasesLeighton returns the pipeline with Leighton's original phase 4
// (untranspose instead of un-diagonalize); kept for the scheduling ablation
// and as a cross-check of the paper's variant.
func PhasesLeighton() []Phase {
	ph := Phases()
	ph[3].Transform = Untranspose
	ph[3].Name = "untranspose"
	return ph
}

// ColumnsortDesc sorts data (column-major, length s.N()) in descending order
// in memory by running the full pipeline. It is the reference oracle for the
// distributed implementation; complexity O(n log m) time, O(n) space.
func ColumnsortDesc(s Shape, data []int64) {
	RunPipeline(s, data, Phases())
}

// RunPipeline executes an arbitrary phase pipeline on data in memory.
func RunPipeline(s Shape, data []int64, phases []Phase) {
	if len(data) != s.N() {
		panic("matrix: bad data length")
	}
	buf := make([]int64, s.N())
	for _, ph := range phases {
		switch ph.Kind {
		case PhaseSort:
			for c := 0; c < s.K; c++ {
				if ph.SkipCol0 && c == 0 {
					continue
				}
				seq.SortInt64Desc(data[c*s.M : (c+1)*s.M])
			}
		case PhaseTransform:
			Apply(s, data, ph.Transform, buf)
			copy(data, buf)
		}
	}
}

// PlanColumns chooses the number of columns c and the (padded) column length
// m for sorting n elements with at most kMax columns: the largest c <= kMax
// minimizing m subject to m >= max(ceil(n/c), MinColLen(c)) and c | m.
// Cycle cost of the distributed algorithm is proportional to m, so this
// minimizes cycles; returns c = 1 (single column, m = n) when no multi-column
// shape helps.
func PlanColumns(n, kMax int) (c, m int) {
	if n < 1 {
		panic("matrix: empty input")
	}
	bestC, bestM := 1, n
	for cand := 2; cand <= kMax; cand++ {
		mm := (n + cand - 1) / cand
		if lo := MinColLen(cand); mm < lo {
			mm = lo
		}
		if r := mm % cand; r != 0 {
			mm += cand - r
		}
		if mm < bestM {
			bestC, bestM = cand, mm
		}
	}
	return bestC, bestM
}
