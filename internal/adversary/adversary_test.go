package adversary

import (
	"math"
	"testing"
	"testing/quick"

	"mcbnet/internal/dist"
)

func TestSelectionMedianMessagesLBValues(t *testing.T) {
	// Two processors with 8 elements each: (log2(16)+log2(16)-log2(16))/2 = 2.
	if got := SelectionMedianMessagesLB([]int{8, 8}); math.Abs(got-2) > 1e-9 {
		t.Errorf("got %f, want 2", got)
	}
	// Single processor: zero (everything local).
	if got := SelectionMedianMessagesLB([]int{100}); got != 0 {
		t.Errorf("single proc LB = %f, want 0", got)
	}
	if got := SelectionMedianMessagesLB(nil); got != 0 {
		t.Errorf("empty LB = %f", got)
	}
}

func TestSelectionMessagesLBGeneralRank(t *testing.T) {
	card := []int{16, 16, 16, 16}
	// d = n/2 = 32 >= p: s counts n_i >= d/p = 8 -> s = 4.
	got := SelectionMessagesLB(card, 32)
	want := (3 * math.Log2(2*32.0/4)) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("got %f, want %f", got, want)
	}
	// Small d falls back to the Theorem 1 bound.
	if got := SelectionMessagesLB(card, 2); got != SelectionMedianMessagesLB(card) {
		t.Errorf("small-d fallback mismatch")
	}
}

func TestSortingBounds(t *testing.T) {
	// Even: (n - 0)/2.
	if got := SortingMessagesLB([]int{4, 4, 4}); got != 6 {
		t.Errorf("even messages LB = %f, want 6", got)
	}
	// One-heavy: n=20, nmax=17, nmax2=2 -> (20-15)/2 = 2.5.
	if got := SortingMessagesLB([]int{17, 2, 1}); got != 2.5 {
		t.Errorf("uneven messages LB = %f", got)
	}
	// Cycle bound: dominated by min(nmax, n-nmax) when nmax large.
	if got := SortingCyclesLB([]int{17, 2, 1}, 2); got != 3 {
		t.Errorf("cycles LB = %f, want 3", got)
	}
	// Dominated by messages/k when even.
	if got := SortingCyclesLB([]int{4, 4, 4}, 2); got != 4 {
		t.Errorf("cycles LB = %f, want 4 (min(4,8)=4 vs 6/2=3)", got)
	}
}

func TestAdversaryEliminationCap(t *testing.T) {
	// No single message may eliminate more than c+1 of a pair's 2c
	// candidates.
	ad := NewSelection([]int{10, 10})
	for r := 1; r <= 10; r++ {
		ad2 := NewSelection([]int{10, 10})
		gone, err := ad2.ProcessMessage(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if gone > 11 {
			t.Errorf("rank %d eliminated %d > c+1 = 11", r, gone)
		}
		if gone < 2 {
			t.Errorf("rank %d eliminated %d < 2", r, gone)
		}
	}
	_ = ad
}

func TestAdversaryBestStrategyMeetsLogBound(t *testing.T) {
	// Even an optimal algorithm (always revealing the pair median) needs at
	// least the Theorem 1 message count.
	for _, card := range [][]int{
		{8, 8}, {16, 16, 16, 16}, {32, 1}, {100, 50, 25, 12, 6},
	} {
		ad := NewSelection(card)
		msgs := 0
		for !ad.Done() {
			// Find a pair with candidates and reveal its median.
			sent := false
			for proc, pi := range ad.pairIdx {
				if pi < 0 || ad.pairs[pi].c == 0 {
					continue
				}
				r := (ad.pairs[pi].c + 1) / 2
				if _, err := ad.ProcessMessage(proc, r); err != nil {
					t.Fatal(err)
				}
				msgs++
				sent = true
				break
			}
			if !sent {
				break
			}
		}
		// The closed form is asymptotic: each message may kill m+1 of a
		// pair's 2m candidates, so a pair can die in ceil(log2) messages —
		// up to one below the closed-form term. Allow that slack per pair.
		lb := SelectionMedianMessagesLB(card) - float64(len(card)/2)
		if float64(msgs) < lb-1e-9 {
			t.Errorf("card %v: optimal strategy used %d messages < LB %.2f", card, msgs, lb)
		}
	}
}

func TestAdversaryRandomStrategiesRespectLB(t *testing.T) {
	f := func(seed uint64) bool {
		r := dist.NewRNG(seed)
		p := 2 + r.Intn(8)
		card := make([]int, p)
		for i := range card {
			card[i] = 1 + r.Intn(64)
		}
		ad := NewSelection(card)
		msgs := 0
		for !ad.Done() && msgs < 100000 {
			// Random processor with candidates, random revealed rank.
			var procs []int
			for proc, pi := range ad.pairIdx {
				if pi >= 0 && ad.pairs[pi].c > 0 {
					procs = append(procs, proc)
				}
			}
			if len(procs) == 0 {
				break
			}
			proc := procs[r.Intn(len(procs))]
			c := ad.pairs[ad.pairIdx[proc]].c
			if _, err := ad.ProcessMessage(proc, 1+r.Intn(c)); err != nil {
				return false
			}
			msgs++
		}
		return float64(msgs) >= SelectionMedianMessagesLB(card)-float64(len(card)/2)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAdversaryErrors(t *testing.T) {
	ad := NewSelection([]int{4, 4, 4}) // odd p: processor with smallest card unpaired
	unpaired := -1
	for proc, pi := range ad.pairIdx {
		if pi < 0 {
			unpaired = proc
		}
	}
	if unpaired == -1 {
		t.Fatal("expected an unpaired processor for odd p")
	}
	if _, err := ad.ProcessMessage(unpaired, 1); err == nil {
		t.Error("expected error for unpaired processor")
	}
	if _, err := ad.ProcessMessage(99, 1); err == nil {
		t.Error("expected error for bad processor id")
	}
	if _, err := ad.ProcessMessage(0, 99); err == nil {
		t.Error("expected error for bad rank")
	}
}

func TestBoundsMonotonicity(t *testing.T) {
	// More elements can only raise the bounds.
	a := SelectionMedianMessagesLB([]int{4, 4, 4, 4})
	b := SelectionMedianMessagesLB([]int{8, 8, 8, 8})
	if b <= a {
		t.Errorf("LB not monotone: %f vs %f", a, b)
	}
	if SortingMessagesLB([]int{8, 8}) <= SortingMessagesLB([]int{4, 4}) {
		t.Error("sorting LB not monotone")
	}
}
