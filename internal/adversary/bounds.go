// Package adversary implements Section 4 of the paper: the closed-form
// lower bounds on messages and cycles for sorting and selection (Theorems
// 1-4 and their corollaries), plus an executable version of the
// comparison-based adversary used to prove the selection bound. The
// experiment harness checks every measured run against these bounds — a
// genuine lower bound must sit below every measurement.
package adversary

import (
	"math"
	"sort"
)

// SelectionMedianMessagesLB is Theorem 1: selecting the median of n elements
// distributed with cardinalities card requires
// Omega(sum_i log2(2 n_i) - log2(2 n_max)) messages; the returned value is
// the closed form with the proof's 1/2 constant. Like all Section 4 bounds
// it is asymptotic — tight up to a small additive term per processor pair.
func SelectionMedianMessagesLB(card []int) float64 {
	sum := 0.0
	nmax := 0
	for _, ni := range card {
		sum += math.Log2(2 * float64(ni))
		if ni > nmax {
			nmax = ni
		}
	}
	if nmax == 0 {
		return 0
	}
	return (sum - math.Log2(2*float64(nmax))) / 2
}

// SelectionMessagesLB is Theorem 2: selecting the d-th largest element
// (p <= d <= n/2) requires at least
// (1/2)((s-1) log2(2d/p) + sum_{j=s+1..p} log2(2 n_{i_j})) messages, where
// n_{i_1} >= n_{i_2} >= ... and s is the number of processors with
// n_i >= d/p. For d < p it falls back to the Theorem 1 form.
func SelectionMessagesLB(card []int, d int) float64 {
	p := len(card)
	if p == 0 {
		return 0
	}
	if d < p {
		return SelectionMedianMessagesLB(card)
	}
	sorted := append([]int(nil), card...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	thresh := float64(d) / float64(p)
	s := 0
	for _, ni := range sorted {
		if float64(ni) >= thresh {
			s++
		}
	}
	lb := 0.0
	if s >= 1 {
		lb += float64(s-1) * math.Log2(2*float64(d)/float64(p))
	}
	for j := s; j < p; j++ {
		lb += math.Log2(2 * float64(sorted[j]))
	}
	return lb / 2
}

// SelectionCyclesLB is Corollary 2: the message bound divided by k.
func SelectionCyclesLB(card []int, d, k int) float64 {
	return SelectionMessagesLB(card, d) / float64(k)
}

// SortingMessagesLB is Theorem 3: sorting requires at least
// (n - (n_max - n_max2)) / 2 messages.
func SortingMessagesLB(card []int) float64 {
	n, nmax, nmax2 := 0, 0, 0
	for _, ni := range card {
		n += ni
		if ni > nmax {
			nmax, nmax2 = ni, nmax
		} else if ni > nmax2 {
			nmax2 = ni
		}
	}
	return float64(n-(nmax-nmax2)) / 2
}

// SortingCyclesLB combines Corollary 3 (messages/k) with Theorem 4
// (min{n_max, n - n_max} cycles).
func SortingCyclesLB(card []int, k int) float64 {
	n, nmax := 0, 0
	for _, ni := range card {
		n += ni
		if ni > nmax {
			nmax = ni
		}
	}
	fromMsgs := SortingMessagesLB(card) / float64(k)
	fromMax := float64(min(nmax, n-nmax))
	return math.Max(fromMsgs, fromMax)
}
