package adversary

import (
	"fmt"
	"sort"
)

// Selection implements the Theorem 1 adversary as an executable state
// machine. Processors are paired off in non-increasing cardinality order;
// within a pair both sides hold the same number of median candidates (the
// imbalance is pre-fixed to very-small/very-large values). Whenever a
// message carries a candidate of one side, the adversary fixes that
// candidate and everything on its side of the pair median — at most m+1 of
// the pair's 2m candidates — so an algorithm needs at least log2(2 m_j)
// messages per pair to shrink it to a single candidate.
//
// The machine exists to make the proof's bookkeeping testable: for any
// message strategy, the number of ProcessMessage calls needed to finish is
// at least MessagesLB().
type Selection struct {
	pairIdx []int        // processor id -> pair index, -1 if unpaired
	pairs   []*pairState // per-pair candidate counts
}

type pairState struct {
	a, b int // processor ids (b = -1 for the odd leftover, which starts fixed)
	c    int // candidates per side (the pair holds 2c candidates)
}

// NewSelection builds the adversary for the given cardinalities.
func NewSelection(card []int) *Selection {
	p := len(card)
	ids := make([]int, p)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(x, y int) bool { return card[ids[x]] > card[ids[y]] })
	ad := &Selection{pairIdx: make([]int, p)}
	for i := range ad.pairIdx {
		ad.pairIdx[i] = -1
	}
	for i := 0; i+1 < p; i += 2 {
		a, b := ids[i], ids[i+1]
		// card[a] >= card[b]; the excess card[a]-card[b] at a is pre-fixed,
		// leaving card[b] candidates on each side.
		ps := &pairState{a: a, b: b, c: card[b]}
		ad.pairIdx[a] = len(ad.pairs)
		ad.pairIdx[b] = len(ad.pairs)
		ad.pairs = append(ad.pairs, ps)
	}
	// Odd leftover processor: all its elements are pre-fixed (half small,
	// half large); it never holds candidates.
	return ad
}

// Candidates returns the total number of remaining median candidates.
func (ad *Selection) Candidates() int {
	total := 0
	for _, ps := range ad.pairs {
		total += 2 * ps.c
	}
	return total
}

// Done reports whether at most one candidate remains per the proof's
// termination condition (every pair shrunk to nothing, except possibly one
// single candidate).
func (ad *Selection) Done() bool { return ad.Candidates() <= 1 }

// ProcessMessage feeds the adversary a message that contains the candidate
// of processor proc whose rank among that side's candidates is r (1-based,
// ascending). It returns the number of candidates eliminated; at most c+1 of
// the pair's 2c candidates go per message, and at least one goes whenever
// the side is non-empty. Messages carrying no candidate are simply not fed.
func (ad *Selection) ProcessMessage(proc, r int) (int, error) {
	if proc < 0 || proc >= len(ad.pairIdx) || ad.pairIdx[proc] < 0 {
		return 0, fmt.Errorf("adversary: processor %d holds no candidates", proc)
	}
	ps := ad.pairs[ad.pairIdx[proc]]
	if ps.c == 0 {
		return 0, fmt.Errorf("adversary: pair of processor %d is exhausted", proc)
	}
	if r < 1 || r > ps.c {
		return 0, fmt.Errorf("adversary: rank %d out of [1, %d]", r, ps.c)
	}
	med := (ps.c + 1) / 2
	var gone int
	if r <= med {
		// Fix the candidate and everything smaller on this side very small,
		// and as many on the other side very large.
		gone = 2 * r
		ps.c -= r
	} else {
		// Fix the candidate and everything larger very large, mirrored.
		gone = 2 * (ps.c - r + 1)
		ps.c = r - 1
	}
	return gone, nil
}

// MessagesLB returns the Theorem 1 bound for this instance.
func (ad *Selection) MessagesLB(card []int) float64 {
	return SelectionMedianMessagesLB(card)
}
