package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"mcbnet/internal/core"
	"mcbnet/internal/mcb"
)

// Ops served under /v1/<op>.
var Ops = []string{"sort", "topk", "median", "rank", "multiselect"}

// Request is the JSON body of every operation endpoint; which fields apply
// depends on the op in the URL.
type Request struct {
	// Values is the caller's data set (required, non-empty).
	Values []int64 `json:"values"`
	// Order is "desc" (default, the paper's canonical order) or "asc";
	// sort only.
	Order string `json:"order,omitempty"`
	// K is the result size of a top-k request.
	K int `json:"k,omitempty"`
	// D is the descending rank of a rank request (1 = maximum).
	D int `json:"d,omitempty"`
	// Ds are the descending ranks of a multiselect request.
	Ds []int `json:"ds,omitempty"`
	// BudgetCycles maps onto the engine's MaxCycles: the run serving this
	// request aborts with a budget error beyond it (HTTP 422).
	BudgetCycles int64 `json:"budget_cycles,omitempty"`
	// NoBatch opts this request out of coalescing (a dedicated engine run;
	// the benchmark's unbatched mode).
	NoBatch bool `json:"no_batch,omitempty"`
	// FaultRate enables deterministic fault injection: per-delivery drop
	// and (checksum-guarded) corruption probability. The request is served
	// through the verify-and-retry recovery layer.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// FaultSeed seeds the injected-fault plan.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Retries is the recovery attempt budget of a faulted request.
	Retries int `json:"retries,omitempty"`
}

// Response is the JSON answer of every operation endpoint.
type Response struct {
	Op string `json:"op"`
	// Values: the sorted values (sort), the top-k values in descending
	// order (topk), one value (median, rank), or one value per requested
	// rank (multiselect).
	Values []int64 `json:"values"`
	// Batched reports that a coalesced run served this request; BatchSize
	// is the number of requests that shared it.
	Batched   bool `json:"batched"`
	BatchSize int  `json:"batch_size,omitempty"`
	// Cycles and Messages are the MCB cost of the engine run that served
	// the request (shared across a coalesced batch).
	Cycles   int64 `json:"cycles"`
	Messages int64 `json:"messages"`
	// Attempts is the recovery attempt count of a faulted request.
	Attempts int `json:"attempts,omitempty"`
	// ElapsedMS is the server-side service time (queueing included).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: "bad_request", "saturated", "draining",
	// "budget", or "aborted".
	Kind string `json:"kind"`
	// RetryAfterMS accompanies saturated/draining rejections.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Server is the HTTP facade over a Pool.
type Server struct {
	pool *Pool
	mux  *http.ServeMux
}

// NewServer builds a server over a fresh pool.
func NewServer(cfg Config) (*Server, error) {
	pool, err := NewPool(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{pool: pool, mux: http.NewServeMux()}
	for _, op := range Ops {
		s.mux.HandleFunc("POST /v1/"+op, s.opHandler(op))
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// Pool exposes the underlying pool (tests, stats).
func (s *Server) Pool() *Pool { return s.pool }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the pool; queued work completes, new requests get 503.
func (s *Server) Close() { s.pool.Close() }

const maxBodyBytes = 16 << 20

func (s *Server) opHandler(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decode: %v", err), 0)
			return
		}
		jr, err := buildJobRequest(op, &req)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
			return
		}
		out, err := s.pool.Do(r.Context(), jr)
		if err != nil {
			switch {
			case errors.Is(err, ErrSaturated):
				writeRejection(w, http.StatusTooManyRequests, "saturated", err, s.pool.RetryAfter())
			case errors.Is(err, ErrDraining):
				writeRejection(w, http.StatusServiceUnavailable, "draining", err, s.pool.RetryAfter())
			default: // context cancellation
				writeError(w, 499, "aborted", err.Error(), 0)
			}
			return
		}
		if out.Err != nil {
			var be *mcb.BudgetError
			var ce *mcb.CollisionError
			switch {
			case errors.As(out.Err, &be):
				writeError(w, http.StatusUnprocessableEntity, "budget", out.Err.Error(), 0)
			case errors.Is(out.Err, mcb.ErrAborted) || errors.As(out.Err, &ce):
				// The typed engine taxonomy (aborts, stalls, crashes,
				// corruption, collisions): a server-side run failure.
				writeError(w, http.StatusInternalServerError, "aborted", out.Err.Error(), 0)
			default:
				// Validation the handler missed (defense in depth).
				writeError(w, http.StatusBadRequest, "bad_request", out.Err.Error(), 0)
			}
			return
		}
		writeJSON(w, http.StatusOK, Response{
			Op:        op,
			Values:    out.Values,
			Batched:   out.Batched,
			BatchSize: out.BatchSize,
			Cycles:    out.Cycles,
			Messages:  out.Messages,
			Attempts:  out.Attempts,
			ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		})
	}
}

// buildJobRequest validates the HTTP request into a pool job. Size and rank
// validation happens again inside core.RunBatch; this layer catches what
// must be a 400 before the job is admitted.
func buildJobRequest(op string, req *Request) (JobRequest, error) {
	if len(req.Values) == 0 {
		return JobRequest{}, errors.New("values must be non-empty")
	}
	job := core.BatchJob{Values: req.Values, MaxCycles: req.BudgetCycles}
	switch op {
	case "sort":
		job.Op = core.BatchSort
		switch strings.ToLower(req.Order) {
		case "", "desc", "descending":
			job.Order = core.Descending
		case "asc", "ascending":
			job.Order = core.Ascending
			for _, v := range req.Values {
				if v == math.MinInt64 {
					return JobRequest{}, errors.New("MinInt64 unsupported with ascending order")
				}
			}
		default:
			return JobRequest{}, fmt.Errorf("unknown order %q (want asc or desc)", req.Order)
		}
	case "topk":
		job.Op = core.BatchTopK
		job.TopK = req.K
		if req.K < 1 || req.K > len(req.Values) {
			return JobRequest{}, fmt.Errorf("k %d out of range [1, %d]", req.K, len(req.Values))
		}
	case "median":
		job.Op = core.BatchMedian
	case "rank":
		job.Op = core.BatchRank
		job.D = req.D
		if req.D < 1 || req.D > len(req.Values) {
			return JobRequest{}, fmt.Errorf("d %d out of range [1, %d]", req.D, len(req.Values))
		}
	case "multiselect":
		job.Op = core.BatchMultiSelect
		job.Ds = req.Ds
		if len(req.Ds) == 0 {
			return JobRequest{}, errors.New("ds must be non-empty")
		}
		for _, d := range req.Ds {
			if d < 1 || d > len(req.Values) {
				return JobRequest{}, fmt.Errorf("rank %d out of range [1, %d]", d, len(req.Values))
			}
		}
	default:
		return JobRequest{}, fmt.Errorf("unknown op %q", op)
	}
	jr := JobRequest{Job: job, NoBatch: req.NoBatch, Retries: req.Retries}
	if req.FaultRate < 0 || req.FaultRate >= 1 {
		if req.FaultRate != 0 {
			return JobRequest{}, fmt.Errorf("fault_rate %v out of range [0, 1)", req.FaultRate)
		}
	}
	if req.FaultRate > 0 {
		jr.Faults = &mcb.FaultPlan{
			Seed:        req.FaultSeed,
			DropRate:    req.FaultRate,
			CorruptRate: req.FaultRate,
			Checksum:    true,
		}
	}
	return jr, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.pool.mu.RLock()
	draining := s.pool.draining
	s.pool.mu.RUnlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining", "pool draining", 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, kind, msg string, retryAfter time.Duration) {
	resp := ErrorResponse{Error: msg, Kind: kind}
	if retryAfter > 0 {
		resp.RetryAfterMS = retryAfter.Milliseconds()
	}
	writeJSON(w, code, resp)
}

// writeRejection is the admission-control response: 429 (saturated) or 503
// (draining), always with a Retry-After header (whole seconds, rounded up)
// and the precise retry_after_ms in the body.
func writeRejection(w http.ResponseWriter, code int, kind string, err error, retryAfter time.Duration) {
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	resp := ErrorResponse{Error: err.Error(), Kind: kind, RetryAfterMS: retryAfter.Milliseconds()}
	writeJSON(w, code, resp)
}
