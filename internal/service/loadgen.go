package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"mcbnet/internal/mcb"
)

// The load generator behind cmd/mcbload: it drives a declarative Profile
// against a live mcbd, verifies EVERY 200 response against a sequential
// oracle, aggregates per-(phase, op, mode) throughput and latency
// percentiles into a BenchReport, and collects assertion violations (any
// incorrect answer, an unexpected error, a missing expected rejection).

// LoadOptions configures a profile run.
type LoadOptions struct {
	// Addr is the server base URL ("http://127.0.0.1:8326").
	Addr string
	// Client overrides the HTTP client (nil builds one with generous
	// per-host connection reuse).
	Client *http.Client
	// Logf, when non-nil, receives one progress line per phase.
	Logf func(format string, args ...any)
	// DurationScale multiplies every phase duration (tests and CI smoke
	// shrink profiles with values < 1). Zero means 1.
	DurationScale float64
}

// sample is one completed request observation.
type sample struct {
	op        string
	mode      string
	latencyMS float64
	status    int // HTTP status; 0 = transport error
	correct   bool
	coalesced bool
}

// RunProfile executes the profile and aggregates the report. violations
// lists every failed assertion of the run (empty = the run verifies); err
// reports infrastructure failures (unreachable server, invalid profile).
func RunProfile(profile Profile, opts LoadOptions) (report *BenchReport, violations []string, err error) {
	if err := profile.Validate(); err != nil {
		return nil, nil, err
	}
	scale := opts.DurationScale
	if scale <= 0 {
		scale = 1
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	report = &BenchReport{
		Schema:  ServiceBenchSchema,
		Env:     mcb.CurrentBenchEnv(),
		Profile: profile.Name,
	}
	if stats, err := fetchStats(client, opts.Addr); err == nil {
		report.Server = stats
	}

	for pi, phase := range profile.Phases {
		duration := time.Duration(float64(time.Duration(phase.Duration)) * scale)
		samples, elapsed := runPhase(client, opts.Addr, &profile, pi, duration)
		entries := aggregate(profile.Name, phase.Name, samples, elapsed)
		report.Entries = append(report.Entries, entries...)

		rejected, incorrect, errored, budget := 0, 0, 0, 0
		for _, e := range entries {
			rejected += e.Rejected
			incorrect += e.Incorrect
			errored += e.Errors
			budget += e.BudgetErrors
			if e.Mode == "faulted" && e.Requests > 0 && e.OK == 0 {
				violations = append(violations, fmt.Sprintf("phase %s: no faulted %s request ever succeeded (%d exhausted)", phase.Name, e.Op, e.Exhausted))
			}
			logf("phase %-16s %-11s mode=%-9s requests=%-5d rps=%-8.1f p50=%.2fms p95=%.2fms p99=%.2fms rejected=%d",
				phase.Name, e.Op, e.Mode, e.Requests, e.RPS, e.P50MS, e.P95MS, e.P99MS, e.Rejected)
		}
		if incorrect > 0 {
			violations = append(violations, fmt.Sprintf("phase %s: %d responses failed oracle verification", phase.Name, incorrect))
		}
		if errored > 0 {
			violations = append(violations, fmt.Sprintf("phase %s: %d requests failed with unexpected errors", phase.Name, errored))
		}
		if budget > 0 && !phase.AllowBudgetErrors {
			violations = append(violations, fmt.Sprintf("phase %s: %d unexpected budget rejections", phase.Name, budget))
		}
		if phase.ExpectRejections && rejected == 0 {
			violations = append(violations, fmt.Sprintf("phase %s: expected admission rejections, saw none", phase.Name))
		}
	}

	report.BatchWin = deriveBatchWin(report.Entries)
	return report, violations, nil
}

// runPhase drives one phase's workers until the deadline and returns the
// collected samples plus the measured wall time.
func runPhase(client *http.Client, addr string, profile *Profile, phaseIdx int, duration time.Duration) ([]sample, time.Duration) {
	phase := profile.Phases[phaseIdx]
	workers := phase.Concurrency
	if workers < 1 {
		workers = 1
	}
	// Open-loop pacing: a shared ticker feeds admission tokens at the
	// target rate; a closed loop (Rate == 0) lets each worker fire
	// back-to-back.
	var tokens <-chan time.Time
	var ticker *time.Ticker
	if phase.Rate > 0 {
		ticker = time.NewTicker(time.Duration(float64(time.Second) / phase.Rate))
		tokens = ticker.C
		defer ticker.Stop()
	}

	totalWeight := 0
	for _, spec := range phase.Mix {
		w := spec.Weight
		if w <= 0 {
			w = 1
		}
		totalWeight += w
	}

	start := time.Now()
	deadline := start.Add(duration)
	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(profile.Seed*1_000_003 + int64(phaseIdx)*9973 + int64(worker)))
			var local []sample
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
					}
					if !time.Now().Before(deadline) {
						break
					}
				}
				spec := drawSpec(rng, phase.Mix, totalWeight)
				local = append(local, doRequest(client, addr, profile.Dist, spec, rng))
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return samples, time.Since(start)
}

// drawSpec picks a mix entry by weight.
func drawSpec(rng *rand.Rand, mix []OpSpec, totalWeight int) *OpSpec {
	r := rng.Intn(totalWeight)
	for i := range mix {
		w := mix[i].Weight
		if w <= 0 {
			w = 1
		}
		if r < w {
			return &mix[i]
		}
		r -= w
	}
	return &mix[len(mix)-1]
}

// specMode classifies a spec's request class for aggregation.
func specMode(spec *OpSpec) string {
	switch {
	case spec.FaultRate > 0:
		return "faulted"
	case spec.NoBatch:
		return "unbatched"
	default:
		return "batched"
	}
}

// doRequest generates one request from the spec, sends it, and verifies the
// response against the sequential oracle.
func doRequest(client *http.Client, addr, dist string, spec *OpSpec, rng *rand.Rand) sample {
	values := genValues(rng, dist, spec.N)
	req := Request{
		Values:       values,
		Order:        spec.Order,
		NoBatch:      spec.NoBatch,
		BudgetCycles: spec.BudgetCycles,
		FaultRate:    spec.FaultRate,
		Retries:      spec.Retries,
	}
	if spec.FaultRate > 0 {
		req.FaultSeed = rng.Uint64()
	}
	switch spec.Op {
	case "topk":
		req.K = spec.TopK
		if req.K < 1 {
			req.K = 1 + rng.Intn(spec.N)
		}
	case "rank":
		req.D = 1 + rng.Intn(spec.N)
	case "multiselect":
		ranks := spec.Ranks
		if ranks < 1 {
			ranks = 2
		}
		req.Ds = make([]int, ranks)
		for i := range req.Ds {
			req.Ds[i] = 1 + rng.Intn(spec.N)
		}
	}

	s := sample{op: spec.Op, mode: specMode(spec)}
	body, _ := json.Marshal(&req)
	t0 := time.Now()
	resp, err := client.Post(addr+"/v1/"+spec.Op, "application/json", bytes.NewReader(body))
	s.latencyMS = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return s
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		s.status = 0
		return s
	}
	s.coalesced = out.Batched
	s.correct = verifyOracle(&req, spec.Op, out.Values)
	return s
}

// verifyOracle recomputes the answer sequentially and compares.
func verifyOracle(req *Request, op string, got []int64) bool {
	sorted := append([]int64(nil), req.Values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var want []int64
	switch op {
	case "sort":
		want = sorted
		if req.Order == "asc" || req.Order == "ascending" {
			want = make([]int64, len(sorted))
			for i, v := range sorted {
				want[len(sorted)-1-i] = v
			}
		}
	case "topk":
		want = sorted[:req.K]
	case "median":
		want = []int64{sorted[(len(sorted)+1)/2-1]}
	case "rank":
		want = []int64{sorted[req.D-1]}
	case "multiselect":
		want = make([]int64, len(req.Ds))
		for i, d := range req.Ds {
			want[i] = sorted[d-1]
		}
	default:
		return false
	}
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// genValues draws request values from the profile's distribution.
func genValues(rng *rand.Rand, dist string, n int) []int64 {
	values := make([]int64, n)
	switch dist {
	case "zipf":
		z := rand.NewZipf(rng, 1.3, 8, 1<<16)
		for i := range values {
			values[i] = int64(z.Uint64())
		}
	case "runs":
		// Concatenated sorted runs: the logmerge shape (each run is one
		// shard's already-ordered log).
		const runs = 4
		off := 0
		for r := 0; r < runs; r++ {
			cnt := n / runs
			if r < n%runs {
				cnt++
			}
			run := values[off : off+cnt]
			for i := range run {
				run[i] = rng.Int63n(1 << 20)
			}
			sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
			off += cnt
		}
	default: // uniform
		for i := range values {
			values[i] = rng.Int63n(1 << 20)
		}
	}
	return values
}

// aggregate folds a phase's samples into per-(op, mode) entries.
func aggregate(profile, phase string, samples []sample, elapsed time.Duration) []BenchEntry {
	type key struct{ op, mode string }
	groups := map[key][]sample{}
	var order []key
	for _, s := range samples {
		k := key{s.op, s.mode}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].op != order[j].op {
			return order[i].op < order[j].op
		}
		return order[i].mode < order[j].mode
	})
	entries := make([]BenchEntry, 0, len(order))
	for _, k := range order {
		group := groups[k]
		e := BenchEntry{Profile: profile, Phase: phase, Op: k.op, Mode: k.mode, Requests: len(group)}
		var latencies []float64
		var sum float64
		for _, s := range group {
			switch {
			case s.status == http.StatusOK && s.correct:
				e.OK++
				if s.coalesced {
					e.Coalesced++
				}
				latencies = append(latencies, s.latencyMS)
				sum += s.latencyMS
			case s.status == http.StatusOK:
				e.Incorrect++
			case s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable:
				e.Rejected++
			case s.status == http.StatusUnprocessableEntity:
				e.BudgetErrors++
			case k.mode == "faulted" && s.status >= http.StatusInternalServerError:
				// Retry budget exhausted under injected faults: a typed
				// abort, the contract's accepted failure mode.
				e.Exhausted++
			default:
				e.Errors++
			}
		}
		if secs := elapsed.Seconds(); secs > 0 {
			e.RPS = float64(e.OK) / secs
		}
		if len(latencies) > 0 {
			sort.Float64s(latencies)
			e.MeanMS = sum / float64(len(latencies))
			e.P50MS = Percentile(latencies, 0.50)
			e.P95MS = Percentile(latencies, 0.95)
			e.P99MS = Percentile(latencies, 0.99)
		}
		entries = append(entries, e)
	}
	return entries
}

// deriveBatchWin extracts the batched-vs-unbatched top-k comparison from a
// report's entries (the batch-win profile's phase pair, but any profile
// carrying both modes of the same op works).
func deriveBatchWin(entries []BenchEntry) *BatchWin {
	var unbatched, batched float64
	for _, e := range entries {
		if e.Op != "topk" || e.OK == 0 {
			continue
		}
		switch {
		case e.Mode == "unbatched" && e.RPS > unbatched:
			unbatched = e.RPS
		case e.Mode == "batched" && e.RPS > batched:
			batched = e.RPS
		}
	}
	if unbatched <= 0 || batched <= 0 {
		return nil
	}
	return &BatchWin{UnbatchedRPS: unbatched, BatchedRPS: batched, Ratio: batched / unbatched}
}

// fetchStats snapshots the server's /v1/stats (pool provenance).
func fetchStats(client *http.Client, addr string) (*Stats, error) {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// WaitReady polls /v1/healthz until the server answers or the timeout
// lapses (mcbload's startup handshake with a freshly spawned mcbd).
func WaitReady(addr string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("service at %s not ready after %v: %w", addr, timeout, err)
			}
			return fmt.Errorf("service at %s not ready after %v", addr, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
