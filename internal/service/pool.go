// Package service is the long-lived sort/select service behind cmd/mcbd: a
// warm pool of MCB(p, k) network instances serving sort, top-k, median,
// rank-d and multiselect requests, with a request batcher that coalesces
// small jobs arriving within a window into one shared engine run
// (core.RunBatch partitions the network into per-job subnets) and admission
// control that sheds load with typed saturation errors instead of unbounded
// queueing. See DESIGN.md §5 "Service layer".
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mcbnet/internal/core"
	"mcbnet/internal/mcb"
)

// Admission errors. The HTTP layer maps ErrSaturated to 429 and ErrDraining
// to 503, both with a Retry-After derived from Pool.RetryAfter.
var (
	// ErrSaturated: the bounded request queue is full. Back off and retry.
	ErrSaturated = errors.New("service: pool saturated")
	// ErrDraining: the pool is shutting down and admits no new work.
	ErrDraining = errors.New("service: pool draining")
)

// Config describes the warm pool.
type Config struct {
	// Instances is the number of independent pooled networks; concurrent
	// batches run on separate instances (and separate engine runs), so
	// tenants never share a network run with another instance's load.
	// Default 1.
	Instances int
	// P and K are the geometry of every pooled network. Defaults 32, 8.
	P, K int
	// Engine selects the execution engine for pooled runs.
	Engine mcb.EngineMode
	// BatchWindow is how long an instance holds the first job of a batch
	// open for siblings to coalesce with. Default 2ms.
	BatchWindow time.Duration
	// MaxBatch caps jobs per coalesced run; capped at K (each coalesced
	// job needs at least one channel of its own). Default K.
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrSaturated. Default 64.
	QueueDepth int
	// StallTimeout mirrors mcb.Config.StallTimeout for pooled runs.
	StallTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Instances <= 0 {
		c.Instances = 1
	}
	if c.P <= 0 {
		c.P = 32
	}
	if c.K <= 0 {
		c.K = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 || c.MaxBatch > c.K {
		c.MaxBatch = c.K
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// JobRequest is one admitted unit of work.
type JobRequest struct {
	Job core.BatchJob
	// NoBatch forces a dedicated engine run (the unbatched comparison mode
	// of the service benchmark).
	NoBatch bool
	// Faults, when non-nil, runs the job through the verify-and-retry
	// recovery layer under deterministic fault injection (never coalesced:
	// an injected fault must not fail innocent siblings).
	Faults *mcb.FaultPlan
	// Retries is the retry budget of a faulted job (MaxAttempts).
	Retries int
}

// JobOutcome is the served result.
type JobOutcome struct {
	core.BatchResult
	// Attempts is the verify-and-retry attempt count of a faulted job
	// (0 for the plain path).
	Attempts int
}

// task is a queued job plus its completion channel.
type task struct {
	req  JobRequest
	done chan JobOutcome
}

// Pool is a warm pool of MCB network instances consuming a shared bounded
// queue. Each instance owns a batcher loop: it blocks for work, holds the
// batch open for BatchWindow, and serves the coalesced jobs in one engine
// run.
type Pool struct {
	cfg   Config
	queue chan *task
	wg    sync.WaitGroup

	// mu serializes admission against Close: a reader holds it across the
	// draining check and the queue send, so the queue never sees a send
	// after close.
	mu       sync.RWMutex
	draining bool

	// Counters (atomic; see Stats).
	accepted      atomic.Uint64
	rejected      atomic.Uint64
	completed     atomic.Uint64
	failed        atomic.Uint64
	runs          atomic.Uint64
	coalescedRuns atomic.Uint64
	coalescedJobs atomic.Uint64
	faultedJobs   atomic.Uint64
	serveEWMANs   atomic.Int64 // smoothed per-job service time
}

// NewPool starts cfg.Instances batcher loops.
func NewPool(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.K > cfg.P {
		return nil, fmt.Errorf("service: pool geometry must satisfy K <= P, got P=%d K=%d", cfg.P, cfg.K)
	}
	p := &Pool{cfg: cfg, queue: make(chan *task, cfg.QueueDepth)}
	p.wg.Add(cfg.Instances)
	for i := 0; i < cfg.Instances; i++ {
		go p.instance()
	}
	return p, nil
}

// Config returns the effective (defaulted) pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Do admits the job and blocks until it is served. It returns a non-nil
// error only for admission failures (ErrSaturated, ErrDraining) or a
// canceled context; job-level failures ride in JobOutcome.Err. A job whose
// context is canceled after admission still completes in the background (the
// pool never abandons queued work).
func (p *Pool) Do(ctx context.Context, req JobRequest) (JobOutcome, error) {
	t := &task{req: req, done: make(chan JobOutcome, 1)}
	if err := p.admit(t); err != nil {
		p.rejected.Add(1)
		return JobOutcome{}, err
	}
	p.accepted.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case out := <-t.done:
		return out, nil
	case <-ctx.Done():
		return JobOutcome{}, ctx.Err()
	}
}

// admit enqueues the task unless the pool is draining or the bounded queue
// is full.
func (p *Pool) admit(t *task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return ErrDraining
	}
	select {
	case p.queue <- t:
		return nil
	default:
		return ErrSaturated
	}
}

// Close stops admission, drains the queue, and waits for every instance to
// finish its in-flight work. In-flight and already-queued jobs complete
// normally (and correctly) during the drain; only new admissions fail.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	if !already {
		close(p.queue)
	}
	p.mu.Unlock()
	if !already {
		p.wg.Wait()
	}
}

// RetryAfter estimates when a rejected caller should try again: the queue
// backlog times the smoothed per-job service time, divided across the
// instances, clamped to [50ms, 2s].
func (p *Pool) RetryAfter() time.Duration {
	serve := time.Duration(p.serveEWMANs.Load())
	if serve <= 0 {
		serve = 5 * time.Millisecond
	}
	est := serve * time.Duration(len(p.queue)+1) / time.Duration(p.cfg.Instances)
	if est < 50*time.Millisecond {
		est = 50 * time.Millisecond
	}
	if est > 2*time.Second {
		est = 2 * time.Second
	}
	return est
}

// Stats is a point-in-time snapshot of the pool counters.
type Stats struct {
	Accepted      uint64  `json:"accepted"`
	Rejected      uint64  `json:"rejected"`
	Completed     uint64  `json:"completed"`
	Failed        uint64  `json:"failed"`
	Runs          uint64  `json:"runs"`
	CoalescedRuns uint64  `json:"coalesced_runs"`
	CoalescedJobs uint64  `json:"coalesced_jobs"`
	FaultedJobs   uint64  `json:"faulted_jobs"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	Instances     int     `json:"instances"`
	P             int     `json:"p"`
	K             int     `json:"k"`
	AvgServeMS    float64 `json:"avg_serve_ms"`
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Accepted:      p.accepted.Load(),
		Rejected:      p.rejected.Load(),
		Completed:     p.completed.Load(),
		Failed:        p.failed.Load(),
		Runs:          p.runs.Load(),
		CoalescedRuns: p.coalescedRuns.Load(),
		CoalescedJobs: p.coalescedJobs.Load(),
		FaultedJobs:   p.faultedJobs.Load(),
		QueueDepth:    len(p.queue),
		QueueCap:      cap(p.queue),
		Instances:     p.cfg.Instances,
		P:             p.cfg.P,
		K:             p.cfg.K,
		AvgServeMS:    float64(p.serveEWMANs.Load()) / float64(time.Millisecond),
	}
}

// coalescible reports whether a task may share an engine run with siblings.
func coalescible(t *task) bool {
	return !t.req.NoBatch && t.req.Faults == nil
}

// instance is one batcher loop: pull a task, hold the batch open for
// BatchWindow (coalescible tasks accumulate, a non-coalescible arrival
// closes the batch and is served right after), then execute.
func (p *Pool) instance() {
	defer p.wg.Done()
	for {
		t, ok := <-p.queue
		if !ok {
			return
		}
		if !coalescible(t) {
			p.executeSolo(t)
			continue
		}
		batch := []*task{t}
		var straggler *task
		timer := time.NewTimer(p.cfg.BatchWindow)
	collect:
		for len(batch) < p.cfg.MaxBatch {
			select {
			case t2, ok := <-p.queue:
				if !ok {
					break collect
				}
				if !coalescible(t2) {
					straggler = t2
					break collect
				}
				batch = append(batch, t2)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		p.executeBatch(batch)
		if straggler != nil {
			p.executeSolo(straggler)
		}
	}
}

// executeBatch serves coalescible tasks in one core.RunBatch call (which
// itself handles chunking, failure-isolation fallback and per-job budgets).
func (p *Pool) executeBatch(batch []*task) {
	start := time.Now()
	jobs := make([]core.BatchJob, len(batch))
	for i, t := range batch {
		jobs[i] = t.req.Job
	}
	results, err := core.RunBatch(jobs, core.BatchOptions{
		P: p.cfg.P, K: p.cfg.K,
		Engine:       p.cfg.Engine,
		StallTimeout: p.cfg.StallTimeout,
	})
	p.runs.Add(1)
	if len(batch) > 1 {
		p.coalescedRuns.Add(1)
		p.coalescedJobs.Add(uint64(len(batch)))
	}
	for i, t := range batch {
		out := JobOutcome{}
		if err != nil {
			// Geometry errors cannot happen for a validated pool; surface
			// defensively rather than dropping the task.
			out.Err = err
		} else {
			out.BatchResult = results[i]
		}
		p.finish(t, out, start, len(batch))
	}
}

// executeSolo serves a non-coalescible task: a dedicated engine run, through
// the verify-and-retry recovery layer when fault injection is requested.
func (p *Pool) executeSolo(t *task) {
	start := time.Now()
	var out JobOutcome
	if t.req.Faults != nil {
		p.faultedJobs.Add(1)
		out = p.executeFaulted(t.req)
	} else {
		results, err := core.RunBatch([]core.BatchJob{t.req.Job}, core.BatchOptions{
			P: p.cfg.P, K: p.cfg.K,
			Engine:       p.cfg.Engine,
			StallTimeout: p.cfg.StallTimeout,
			NoCoalesce:   true,
		})
		if err != nil {
			out.Err = err
		} else {
			out.BatchResult = results[0]
		}
	}
	p.runs.Add(1)
	p.finish(t, out, start, 1)
}

// finish delivers an outcome and maintains the counters and the smoothed
// service time (per job: the batch's wall time divided by its size).
func (p *Pool) finish(t *task, out JobOutcome, start time.Time, batchSize int) {
	if out.Err != nil {
		p.failed.Add(1)
	} else {
		p.completed.Add(1)
	}
	perJob := time.Since(start).Nanoseconds() / int64(batchSize)
	old := p.serveEWMANs.Load()
	if old == 0 {
		p.serveEWMANs.Store(perJob)
	} else {
		p.serveEWMANs.Store(old + (perJob-old)/8)
	}
	t.done <- out
}

// executeFaulted runs one job under fault injection through the retry
// recovery layer: the job's values are distributed over the full pooled
// network and the verified entry points re-execute typed failures, so the
// response is correct (or a typed error) even with an adversarial plan.
func (p *Pool) executeFaulted(req JobRequest) JobOutcome {
	job := req.Job
	inputs := splitInputs(job.Values, p.cfg.P)
	retry := mcb.RetryPolicy{MaxAttempts: req.Retries}
	if retry.MaxAttempts < 1 {
		retry.MaxAttempts = 4
	}
	var out JobOutcome
	out.BatchSize = 1
	switch job.Op {
	case core.BatchSort, core.BatchTopK:
		opts := core.SortOptions{
			K: p.cfg.K, Order: job.Order,
			Engine: p.cfg.Engine, MaxCycles: job.MaxCycles, StallTimeout: p.cfg.StallTimeout,
			Faults: req.Faults, Retry: retry,
		}
		if job.Op == core.BatchTopK {
			opts.Order = core.Descending
		}
		outputs, rep, err := core.SortWithRetry(inputs, opts)
		if rep != nil {
			out.Cycles, out.Messages = rep.Stats.Cycles, rep.Stats.Messages
			out.Attempts = rep.Attempts
		}
		if err != nil {
			out.Err = err
			return out
		}
		flat := make([]int64, 0, len(job.Values))
		for _, seg := range outputs {
			flat = append(flat, seg...)
		}
		if job.Op == core.BatchTopK {
			flat = flat[:job.TopK]
		}
		out.Values = flat
	case core.BatchMedian, core.BatchRank, core.BatchMultiSelect:
		ds := job.Ds
		switch job.Op {
		case core.BatchMedian:
			ds = []int{(len(job.Values) + 1) / 2}
		case core.BatchRank:
			ds = []int{job.D}
		}
		out.Values = make([]int64, len(ds))
		for i, d := range ds {
			v, rep, err := core.SelectWithRetry(inputs, core.SelectOptions{
				K: p.cfg.K, D: d,
				Engine: p.cfg.Engine, MaxCycles: job.MaxCycles, StallTimeout: p.cfg.StallTimeout,
				// Each selection re-seeds its plan so repeated queries do
				// not replay the identical fault timeline.
				Faults: reseed(req.Faults, i), Retry: retry,
			})
			if rep != nil {
				out.Cycles += rep.Stats.Cycles
				out.Messages += rep.Stats.Messages
				if rep.Attempts > out.Attempts {
					out.Attempts = rep.Attempts
				}
			}
			if err != nil {
				out.Err = err
				return out
			}
			out.Values[i] = v
		}
	default:
		out.Err = fmt.Errorf("service: unknown op %v", job.Op)
	}
	return out
}

// reseed derives a distinct deterministic plan per sub-query.
func reseed(plan *mcb.FaultPlan, i int) *mcb.FaultPlan {
	if i == 0 {
		return plan
	}
	c := plan.Clone()
	c.Seed = c.Seed*31 + uint64(i)*2654435761
	return c
}

// splitInputs distributes a flat value list evenly over p processors (the
// first n%p hold one extra; trailing processors may be empty).
func splitInputs(values []int64, p int) [][]int64 {
	inputs := make([][]int64, p)
	n := len(values)
	base, rem := n/p, n%p
	off := 0
	for i := 0; i < p; i++ {
		cnt := base
		if i < rem {
			cnt++
		}
		inputs[i] = values[off : off+cnt]
		off += cnt
	}
	return inputs
}

// Percentile returns the q-quantile (0 <= q <= 1) of sorted samples by
// nearest-rank; shared by the load generator and the stats endpoint.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
