package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"mcbnet/internal/mcb"
)

// ServiceBenchSchema identifies the BENCH_service.json artifact family —
// the service-layer sibling of mcbnet/engine-bench/v1.
const ServiceBenchSchema = "mcbnet/service-bench/v1"

// BenchEntry is one measured (phase, op, mode) aggregate of a profile run.
type BenchEntry struct {
	Profile string `json:"profile"`
	Phase   string `json:"phase"`
	Op      string `json:"op"`
	// Mode classifies the request class: "batched" (eligible for
	// coalescing), "unbatched" (NoBatch), or "faulted" (recovery path).
	Mode string `json:"mode"`

	Requests     int `json:"requests"`
	OK           int `json:"ok"`
	Incorrect    int `json:"incorrect"`
	Rejected     int `json:"rejected"` // 429/503 admission rejections
	BudgetErrors int `json:"budget_errors,omitempty"`
	// Exhausted counts fault-injected requests whose retry budget ran out
	// (a typed server-side abort — the accepted faulted outcome besides a
	// verified answer; a silent wrong answer is never accepted).
	Exhausted int `json:"exhausted,omitempty"`
	Errors    int `json:"errors"`
	// Coalesced counts OK responses that were served by a shared run.
	Coalesced int `json:"coalesced"`

	RPS    float64 `json:"rps"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// BatchWin is the acceptance-criterion measurement: requests/sec of the
// batch-win profile's identical top-k load with coalescing off vs on.
type BatchWin struct {
	UnbatchedRPS float64 `json:"unbatched_rps"`
	BatchedRPS   float64 `json:"batched_rps"`
	Ratio        float64 `json:"ratio"`
}

// BenchReport is the BENCH_service.json artifact: sustained-throughput and
// latency-distribution measurements of a profile run against a live mcbd,
// with the runner's environment provenance embedded (the CompareEngineBench
// pattern: comparing sweeps from different machines is refused unless
// explicitly allowed).
type BenchReport struct {
	Schema  string       `json:"schema"`
	Env     mcb.BenchEnv `json:"env"`
	Profile string       `json:"profile"`
	// Server is the serving pool's configuration snapshot (provenance: a
	// baseline measured against a different pool is a different
	// experiment).
	Server   *Stats       `json:"server,omitempty"`
	Entries  []BenchEntry `json:"entries"`
	BatchWin *BatchWin    `json:"batch_win,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBenchReport reads and validates a BENCH_service.json artifact.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != ServiceBenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, ServiceBenchSchema)
	}
	return &r, nil
}

// entryKey identifies comparable entries across reports.
func entryKey(e BenchEntry) string {
	return fmt.Sprintf("%s/%s/%s/%s", e.Profile, e.Phase, e.Op, e.Mode)
}

// CompareServiceBench gates a fresh report against a baseline: every
// baseline entry present in the fresh report must hold its requests/sec
// within ±threshold (fraction), fresh entries must have zero incorrect
// responses, and the batch-win ratio must not collapse below the baseline's
// by more than the threshold. One human-readable line per violation;
// entries present on only one side are reported as notes by name but do not
// gate (the scaffold tolerates profile evolution).
func CompareServiceBench(fresh, baseline *BenchReport, threshold float64) []string {
	var bad []string
	freshByKey := map[string]BenchEntry{}
	for _, e := range fresh.Entries {
		freshKey := entryKey(e)
		freshByKey[freshKey] = e
		if e.Incorrect > 0 {
			bad = append(bad, fmt.Sprintf("%s: %d incorrect responses", freshKey, e.Incorrect))
		}
	}
	keys := make([]string, 0, len(baseline.Entries))
	baseByKey := map[string]BenchEntry{}
	for _, e := range baseline.Entries {
		k := entryKey(e)
		baseByKey[k] = e
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		base := baseByKey[k]
		cur, ok := freshByKey[k]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: baseline entry missing from fresh run", k))
			continue
		}
		if base.RPS <= 0 {
			continue
		}
		ratio := cur.RPS / base.RPS
		if ratio < 1-threshold || ratio > 1+threshold {
			bad = append(bad, fmt.Sprintf("%s: rps %.1f vs baseline %.1f (%+.1f%%, threshold ±%.0f%%)",
				k, cur.RPS, base.RPS, (ratio-1)*100, threshold*100))
		}
	}
	if baseline.BatchWin != nil && fresh.BatchWin != nil &&
		fresh.BatchWin.Ratio < baseline.BatchWin.Ratio*(1-threshold) {
		bad = append(bad, fmt.Sprintf("batch_win: ratio %.2f vs baseline %.2f (threshold -%.0f%%)",
			fresh.BatchWin.Ratio, baseline.BatchWin.Ratio, threshold*100))
	}
	return bad
}
