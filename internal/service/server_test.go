package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mcbnet/internal/core"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeResponse(t *testing.T, raw []byte) Response {
	t.Helper()
	var out Response
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode response: %v (%s)", err, raw)
	}
	return out
}

// TestServerEndpoints drives all five operation endpoints and verifies every
// answer against the sequential oracle.
func TestServerEndpoints(t *testing.T) {
	srv, err := NewServer(Config{P: 24, K: 6, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		job := randomJob(rng)
		var op string
		req := Request{Values: job.Values}
		switch job.Op {
		case core.BatchSort:
			op = "sort"
			if job.Order == core.Ascending {
				req.Order = "asc"
			}
		case core.BatchTopK:
			op, req.K = "topk", job.TopK
		case core.BatchMedian:
			op = "median"
		case core.BatchRank:
			op, req.D = "rank", job.D
		case core.BatchMultiSelect:
			op, req.Ds = "multiselect", job.Ds
		}
		resp, raw := postJSON(t, ts.URL+"/v1/"+op, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d %s: HTTP %d: %s", trial, op, resp.StatusCode, raw)
		}
		out := decodeResponse(t, raw)
		if out.Op != op {
			t.Errorf("trial %d: op echoed as %q, want %q", trial, out.Op, op)
		}
		if want := oracleJob(job); !equalVals(out.Values, want) {
			t.Fatalf("trial %d %s: got %v want %v", trial, op, out.Values, want)
		}
		if out.Cycles <= 0 {
			t.Errorf("trial %d %s: response reports no cycles", trial, op)
		}
	}
}

// TestServerValidation pins the 400 taxonomy.
func TestServerValidation(t *testing.T) {
	srv, err := NewServer(Config{P: 16, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name string
		op   string
		req  Request
	}{
		{"empty values", "sort", Request{}},
		{"bad order", "sort", Request{Values: []int64{1, 2}, Order: "sideways"}},
		{"k too large", "topk", Request{Values: []int64{1, 2}, K: 3}},
		{"k zero", "topk", Request{Values: []int64{1, 2}}},
		{"d out of range", "rank", Request{Values: []int64{1, 2}, D: 0}},
		{"empty ds", "multiselect", Request{Values: []int64{1, 2}}},
		{"ds out of range", "multiselect", Request{Values: []int64{1, 2}, Ds: []int{5}}},
		{"fault rate out of range", "sort", Request{Values: []int64{1, 2}, FaultRate: 1.5}},
	}
	for _, c := range cases {
		resp, raw := postJSON(t, ts.URL+"/v1/"+c.op, c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400 (%s)", c.name, resp.StatusCode, raw)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Kind != "bad_request" {
			t.Errorf("%s: error body %s (err %v)", c.name, raw, err)
		}
	}

	// Unknown JSON fields are rejected (the decoder disallows them).
	resp, _ := postJSON(t, ts.URL+"/v1/sort", map[string]any{"values": []int64{1}, "bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestServerBudget maps a cycle budget the run exceeds onto HTTP 422.
func TestServerBudget(t *testing.T) {
	srv, err := NewServer(Config{P: 16, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, raw := postJSON(t, ts.URL+"/v1/sort", Request{Values: []int64{5, 3, 9, 1}, BudgetCycles: 1})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("HTTP %d, want 422 (%s)", resp.StatusCode, raw)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Kind != "budget" {
		t.Fatalf("error body %s (err %v)", raw, err)
	}
}

// TestServerFaulted runs a fault-injected request through the recovery layer.
func TestServerFaulted(t *testing.T) {
	srv, err := NewServer(Config{P: 16, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	vals := []int64{9, 2, 7, 2, 5, 1, 8, 3}
	resp, raw := postJSON(t, ts.URL+"/v1/median", Request{Values: vals, FaultRate: 0.002, FaultSeed: 7, Retries: 8})
	if resp.StatusCode == http.StatusInternalServerError {
		t.Skipf("retries exhausted (typed abort): %s", raw)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	out := decodeResponse(t, raw)
	if len(out.Values) != 1 || out.Values[0] != 5 {
		t.Fatalf("median of %v: got %v, want [5]", vals, out.Values)
	}
	if out.Attempts < 1 {
		t.Errorf("faulted response reports no attempts")
	}
	if out.Batched {
		t.Errorf("faulted request must not coalesce")
	}
}

// TestServerDraining: after Close, operations answer 503 with the draining
// kind and a Retry-After header, and healthz flips unhealthy.
func TestServerDraining(t *testing.T) {
	srv, err := NewServer(Config{P: 16, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.Close()
	resp, raw := postJSON(t, ts.URL+"/v1/sort", Request{Values: []int64{3, 1, 2}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503 (%s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Kind != "draining" {
		t.Fatalf("error body %s (err %v)", raw, err)
	}
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after Close: HTTP %d, want 503", hr.StatusCode)
	}
}

// TestServerSaturated429: with the single instance pinned by a heavy run and
// the depth-1 queue full, the next request must answer 429 with a
// Retry-After header — and the queued request must still answer correctly.
func TestServerSaturated429(t *testing.T) {
	for attempt := 0; attempt < 5; attempt++ {
		srv, err := NewServer(Config{Instances: 1, P: 32, K: 1, QueueDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		pool := srv.Pool()

		blockerDone := make(chan int, 1)
		go func() {
			resp, _ := postJSON(t, ts.URL+"/v1/sort", Request{Values: heavySortJob(6000).Values, NoBatch: true})
			blockerDone <- resp.StatusCode
		}()
		deadline := time.Now().Add(2 * time.Second)
		for {
			st := pool.Stats()
			if st.Accepted >= 1 && st.QueueDepth == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("blocker never admitted")
			}
			time.Sleep(100 * time.Microsecond)
		}
		fillerDone := make(chan Response, 1)
		go func() {
			resp, raw := postJSON(t, ts.URL+"/v1/topk", Request{Values: []int64{4, 8, 1, 6}, K: 2})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("filler: HTTP %d: %s", resp.StatusCode, raw)
				fillerDone <- Response{}
				return
			}
			fillerDone <- decodeResponse(t, raw)
		}()
		for pool.Stats().QueueDepth == 0 {
			if time.Now().After(deadline) {
				t.Fatal("filler never queued")
			}
			time.Sleep(100 * time.Microsecond)
		}

		resp, raw := postJSON(t, ts.URL+"/v1/median", Request{Values: []int64{1, 2, 3}})
		saturated := resp.StatusCode == http.StatusTooManyRequests
		if saturated {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil || er.Kind != "saturated" || er.RetryAfterMS < 50 {
				t.Errorf("429 body %s (err %v)", raw, err)
			}
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe: HTTP %d: %s", resp.StatusCode, raw)
		}

		filler := <-fillerDone
		if !equalVals(filler.Values, []int64{8, 6}) {
			t.Fatalf("queued request answered %v during saturation, want [8 6]", filler.Values)
		}
		if code := <-blockerDone; code != http.StatusOK {
			t.Fatalf("blocker: HTTP %d", code)
		}
		ts.Close()
		srv.Close()
		if saturated {
			return
		}
		// Blocker finished before the probe: retry with a fresh server.
	}
	t.Fatal("never observed 429 in 5 attempts")
}

// TestServerStats exposes pool counters over /v1/stats.
func TestServerStats(t *testing.T) {
	srv, err := NewServer(Config{P: 16, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, raw := postJSON(t, ts.URL+"/v1/sort", Request{Values: []int64{3, 1, 2}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed < 3 || st.P != 16 || st.K != 4 || st.QueueCap == 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestRunProfileSmoke drives the load generator end-to-end against an
// in-process server with a fast custom profile: report populated, zero
// violations, batch-win derived.
func TestRunProfileSmoke(t *testing.T) {
	srv, err := NewServer(Config{Instances: 2, P: 24, K: 6, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	profile := Profile{
		Name: "test-mini",
		Seed: 9,
		Phases: []Phase{
			{Name: "unbatched", Duration: Duration(250 * time.Millisecond), Concurrency: 6,
				Mix: []OpSpec{{Op: "topk", N: 24, TopK: 4, NoBatch: true}}},
			{Name: "batched", Duration: Duration(250 * time.Millisecond), Concurrency: 6,
				Mix: []OpSpec{{Op: "topk", N: 24, TopK: 4}}},
			{Name: "mixed", Duration: Duration(250 * time.Millisecond), Concurrency: 4,
				Mix: allOpsMix(24)},
		},
	}
	report, violations, err := RunProfile(profile, LoadOptions{Addr: ts.URL, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
	if report.Schema != ServiceBenchSchema || len(report.Entries) == 0 {
		t.Fatalf("report %+v", report)
	}
	total := 0
	for _, e := range report.Entries {
		if e.Incorrect > 0 {
			t.Errorf("%s/%s/%s: %d incorrect", e.Phase, e.Op, e.Mode, e.Incorrect)
		}
		total += e.Requests
	}
	if total == 0 {
		t.Fatal("no requests recorded")
	}
	if report.BatchWin == nil {
		t.Fatal("no batch-win derived from unbatched+batched topk phases")
	}
	t.Logf("batch win: %.2fx (%.1f -> %.1f rps)", report.BatchWin.Ratio, report.BatchWin.UnbatchedRPS, report.BatchWin.BatchedRPS)
}

// TestBuiltinProfilesValidate keeps every builtin profile well-formed.
func TestBuiltinProfilesValidate(t *testing.T) {
	names := BuiltinProfileNames()
	if len(names) < 5 {
		t.Fatalf("builtin profiles: %v", names)
	}
	for _, name := range names {
		p, err := BuiltinProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q names itself %q", name, p.Name)
		}
	}
	if _, err := BuiltinProfile("nope"); err == nil {
		t.Error("unknown profile name accepted")
	}
}

// TestProfileJSONRoundTrip keeps profile files loadable.
func TestProfileJSONRoundTrip(t *testing.T) {
	p, err := BuiltinProfile("smoke-mixed")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("%v\n%s", err, data)
	}
	if back.Phases[0].Duration != p.Phases[0].Duration {
		t.Errorf("duration round-trip: %v != %v", back.Phases[0].Duration, p.Phases[0].Duration)
	}
}

// TestCompareServiceBench pins the gate semantics.
func TestCompareServiceBench(t *testing.T) {
	entry := func(phase, op, mode string, rps float64, incorrect int) BenchEntry {
		return BenchEntry{Profile: "p", Phase: phase, Op: op, Mode: mode, Requests: 10, OK: 10 - incorrect, Incorrect: incorrect, RPS: rps}
	}
	base := &BenchReport{Schema: ServiceBenchSchema, Entries: []BenchEntry{
		entry("a", "topk", "batched", 100, 0),
		entry("a", "sort", "batched", 50, 0),
	}, BatchWin: &BatchWin{Ratio: 4}}

	fresh := &BenchReport{Schema: ServiceBenchSchema, Entries: []BenchEntry{
		entry("a", "topk", "batched", 95, 0),
		entry("a", "sort", "batched", 52, 0),
	}, BatchWin: &BatchWin{Ratio: 3.8}}
	if bad := CompareServiceBench(fresh, base, 0.25); len(bad) != 0 {
		t.Fatalf("clean comparison flagged: %v", bad)
	}

	regressed := &BenchReport{Schema: ServiceBenchSchema, Entries: []BenchEntry{
		entry("a", "topk", "batched", 40, 0), // rps collapse
		entry("a", "sort", "batched", 50, 2), // incorrect answers
	}, BatchWin: &BatchWin{Ratio: 1.1}} // batching win collapse
	bad := CompareServiceBench(regressed, base, 0.25)
	if len(bad) != 3 {
		t.Fatalf("want 3 violations, got %d: %v", len(bad), bad)
	}
	for i, want := range []string{"rps", "incorrect", "batch_win"} {
		found := false
		for _, line := range bad {
			if bytes.Contains([]byte(line), []byte(want)) {
				found = true
			}
		}
		if !found {
			t.Errorf("violation %d: no line mentions %q in %v", i, want, bad)
		}
	}
}
