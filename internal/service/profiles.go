package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// This file is the declarative workload-profile vocabulary of cmd/mcbload:
// a profile is a seeded sequence of phases, each a (request mix, arrival
// process, concurrency, duration) tuple, in the load-profile + phased-run
// harness idiom. The existing examples (topk leaderboard, logmerge,
// sensormedian) appear here as service scenario profiles.

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms", "2s") so profile files stay human-editable.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(parsed)
	return nil
}

// OpSpec is one entry of a phase's request mix.
type OpSpec struct {
	// Op is one of Ops ("sort", "topk", "median", "rank", "multiselect").
	Op string `json:"op"`
	// Weight is the relative draw weight within the mix (default 1).
	Weight int `json:"weight,omitempty"`
	// N is the number of values per request.
	N int `json:"n"`
	// TopK / Ranks parameterize topk and multiselect requests.
	TopK  int `json:"topk,omitempty"`
	Ranks int `json:"ranks,omitempty"`
	// Order applies to sort requests ("desc" default).
	Order string `json:"order,omitempty"`
	// NoBatch opts requests of this spec out of coalescing.
	NoBatch bool `json:"no_batch,omitempty"`
	// BudgetCycles attaches a per-request cycle budget.
	BudgetCycles int64 `json:"budget_cycles,omitempty"`
	// FaultRate/Retries route requests of this spec through the server's
	// fault-injected recovery path.
	FaultRate float64 `json:"fault_rate,omitempty"`
	Retries   int     `json:"retries,omitempty"`
}

// Phase is one timed segment of a profile.
type Phase struct {
	Name     string   `json:"name"`
	Duration Duration `json:"duration"`
	// Concurrency is the number of in-flight workers (default 1).
	Concurrency int `json:"concurrency,omitempty"`
	// Rate, when positive, paces arrivals at this many requests/sec across
	// all workers (open loop); zero means closed loop (each worker fires
	// as soon as its previous request answers).
	Rate float64 `json:"rate,omitempty"`
	// Mix is the weighted request mix of the phase.
	Mix []OpSpec `json:"mix"`
	// ExpectRejections asserts that admission control sheds load during
	// this phase (the over-rate profile): the run fails if no request was
	// answered 429/503.
	ExpectRejections bool `json:"expect_rejections,omitempty"`
	// AllowBudgetErrors tolerates 422 budget rejections in this phase
	// (phases that probe per-request budgets).
	AllowBudgetErrors bool `json:"allow_budget_errors,omitempty"`
}

// Profile is a declarative load profile.
type Profile struct {
	Name string `json:"name"`
	// Seed drives every random draw (mix selection, value generation,
	// fault seeds); a profile run is reproducible given (profile, seed).
	Seed int64 `json:"seed"`
	// Dist shapes request values: "uniform" (default), "zipf" (skewed,
	// the topk leaderboard shape), or "runs" (concatenated sorted runs,
	// the logmerge shape).
	Dist   string  `json:"dist,omitempty"`
	Phases []Phase `json:"phases"`
	// Notes documents scope and deliberate omissions of the profile —
	// printed by `mcbload -list` so coverage decisions are visible where
	// the profiles are chosen, not just in the design doc.
	Notes string `json:"notes,omitempty"`
}

// Validate rejects malformed profiles before any traffic is sent.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile has no name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("profile %q has no phases", p.Name)
	}
	switch p.Dist {
	case "", "uniform", "zipf", "runs":
	default:
		return fmt.Errorf("profile %q: unknown dist %q", p.Name, p.Dist)
	}
	opOK := map[string]bool{}
	for _, op := range Ops {
		opOK[op] = true
	}
	for i, ph := range p.Phases {
		if ph.Duration <= 0 {
			return fmt.Errorf("profile %q phase %d (%s): non-positive duration", p.Name, i, ph.Name)
		}
		if len(ph.Mix) == 0 {
			return fmt.Errorf("profile %q phase %d (%s): empty mix", p.Name, i, ph.Name)
		}
		for j, spec := range ph.Mix {
			if !opOK[spec.Op] {
				return fmt.Errorf("profile %q phase %d mix %d: unknown op %q", p.Name, i, j, spec.Op)
			}
			if spec.N < 1 {
				return fmt.Errorf("profile %q phase %d mix %d: n must be >= 1", p.Name, i, j)
			}
		}
	}
	return nil
}

// Builtin profiles, by name. `smoke-mixed` is the CI service-smoke run: all
// five ops, then a fault-injected segment, then an over-rate segment that
// must be shed by admission control. `batch-win` measures the batching win
// the benchmark gate asserts. The scenario profiles recast the repository
// examples as sustained service load.
var builtinProfiles = map[string]func() Profile{
	"smoke-mixed":   smokeMixedProfile,
	"batch-win":     batchWinProfile,
	"service-bench": serviceBenchProfile,
	"topk":          topkScenarioProfile,
	"logmerge":      logmergeScenarioProfile,
	"sensormedian":  sensorMedianScenarioProfile,
}

// BuiltinProfile returns a named builtin profile.
func BuiltinProfile(name string) (Profile, error) {
	f, ok := builtinProfiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("unknown profile %q (have: %v)", name, BuiltinProfileNames())
	}
	return f(), nil
}

// BuiltinProfileNames lists the builtin profiles, sorted.
func BuiltinProfileNames() []string {
	names := make([]string, 0, len(builtinProfiles))
	for name := range builtinProfiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// allOpsMix is a balanced five-op mix of small requests.
func allOpsMix(n int) []OpSpec {
	return []OpSpec{
		{Op: "sort", Weight: 2, N: n},
		{Op: "sort", Weight: 1, N: n, Order: "asc"},
		{Op: "topk", Weight: 2, N: n, TopK: 8},
		{Op: "median", Weight: 2, N: n},
		{Op: "rank", Weight: 2, N: n},
		{Op: "multiselect", Weight: 1, N: n, Ranks: 3},
	}
}

func smokeMixedProfile() Profile {
	return Profile{
		Name: "smoke-mixed",
		Seed: 1,
		Notes: "Covers ops, fault-injected recovery, and admission-control shedding. " +
			"Sequencer failover (seq-failover) is deliberately not exercised here: mcbd " +
			"runs the in-process engine with no sequencer process to kill — that drill " +
			"lives in the transport-chaos CI job (TestMultiProcSmoke/SequencerFailover).",
		Phases: []Phase{
			{
				Name: "mixed", Duration: Duration(2 * time.Second), Concurrency: 6,
				Mix: allOpsMix(48),
			},
			{
				Name: "faults", Duration: Duration(2 * time.Second), Concurrency: 4,
				// The per-delivery fault rate compounds over a run's message
				// count, and the select protocols are message-heavy (partial
				// sums every filtering iteration), so they run at a lower
				// rate with a deeper retry budget than sort/topk. Retry
				// exhaustion still happens and is tolerated as a typed 500
				// (the Exhausted column); a silent wrong answer never is.
				Mix: []OpSpec{
					{Op: "sort", Weight: 1, N: 32, FaultRate: 0.002, Retries: 6},
					{Op: "topk", Weight: 1, N: 32, TopK: 4, FaultRate: 0.002, Retries: 6},
					{Op: "median", Weight: 1, N: 32, FaultRate: 0.0005, Retries: 12},
					{Op: "rank", Weight: 1, N: 32, FaultRate: 0.0005, Retries: 12},
					{Op: "multiselect", Weight: 1, N: 32, Ranks: 2, FaultRate: 0.0005, Retries: 12},
				},
			},
			{
				Name: "overload", Duration: Duration(1 * time.Second), Concurrency: 64,
				Mix:              allOpsMix(48),
				ExpectRejections: true,
			},
		},
	}
}

// batchWinProfile is the acceptance-criterion measurement: the same 8-way
// concurrent small-top-k load, first with coalescing disabled per request,
// then with it enabled, on the same pool. The report's batch_win block and
// mcbload's -min-batch-win gate derive from the two phases' topk rates.
func batchWinProfile() Profile {
	small := func(noBatch bool) []OpSpec {
		return []OpSpec{{Op: "topk", N: 32, TopK: 8, NoBatch: noBatch}}
	}
	return Profile{
		Name: "batch-win",
		Seed: 2,
		Phases: []Phase{
			{Name: "unbatched", Duration: Duration(3 * time.Second), Concurrency: 8, Mix: small(true)},
			{Name: "batched", Duration: Duration(3 * time.Second), Concurrency: 8, Mix: small(false)},
		},
	}
}

// serviceBenchProfile is the gated benchmark: the batch-win pair plus a
// sustained mixed phase, recorded to BENCH_service.json.
func serviceBenchProfile() Profile {
	p := batchWinProfile()
	p.Name = "service-bench"
	p.Seed = 3
	p.Phases = append(p.Phases, Phase{
		Name: "sustained-mixed", Duration: Duration(3 * time.Second), Concurrency: 6,
		Mix: allOpsMix(64),
	})
	return p
}

// topkScenarioProfile is examples/topk as sustained load: skewed
// (Zipf-distributed) scores, top-k leaderboard queries.
func topkScenarioProfile() Profile {
	return Profile{
		Name: "topk",
		Seed: 4,
		Dist: "zipf",
		Phases: []Phase{
			{Name: "leaderboard", Duration: Duration(3 * time.Second), Concurrency: 8,
				Mix: []OpSpec{
					{Op: "topk", Weight: 3, N: 96, TopK: 10},
					{Op: "rank", Weight: 1, N: 96},
				}},
		},
	}
}

// logmergeScenarioProfile is examples/logmerge as sustained load: requests
// carry concatenated sorted runs (per-shard logs) to be merged into one
// ascending order.
func logmergeScenarioProfile() Profile {
	return Profile{
		Name: "logmerge",
		Seed: 5,
		Dist: "runs",
		Phases: []Phase{
			{Name: "merge", Duration: Duration(3 * time.Second), Concurrency: 6,
				Mix: []OpSpec{{Op: "sort", N: 80, Order: "asc"}}},
		},
	}
}

// sensorMedianScenarioProfile is examples/sensormedian as sustained load:
// noisy uniform readings, median and quantile queries.
func sensorMedianScenarioProfile() Profile {
	return Profile{
		Name: "sensormedian",
		Seed: 6,
		Phases: []Phase{
			{Name: "robust-aggregate", Duration: Duration(3 * time.Second), Concurrency: 6,
				Mix: []OpSpec{
					{Op: "median", Weight: 2, N: 64},
					{Op: "multiselect", Weight: 1, N: 64, Ranks: 3},
				}},
		},
	}
}
