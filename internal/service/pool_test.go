package service

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"mcbnet/internal/core"
	"mcbnet/internal/mcb"
)

// oracleJob computes the sequential expected answer of a batch job.
func oracleJob(job core.BatchJob) []int64 {
	desc := append([]int64(nil), job.Values...)
	sort.Slice(desc, func(i, j int) bool { return desc[i] > desc[j] })
	switch job.Op {
	case core.BatchSort:
		if job.Order == core.Ascending {
			asc := append([]int64(nil), job.Values...)
			sort.Slice(asc, func(i, j int) bool { return asc[i] < asc[j] })
			return asc
		}
		return desc
	case core.BatchTopK:
		return desc[:job.TopK]
	case core.BatchMedian:
		return []int64{desc[(len(desc)+1)/2-1]}
	case core.BatchRank:
		return []int64{desc[job.D-1]}
	case core.BatchMultiSelect:
		out := make([]int64, len(job.Ds))
		for i, d := range job.Ds {
			out[i] = desc[d-1]
		}
		return out
	}
	return nil
}

// randomJob draws a random job of any op with a dense value range (forcing
// duplicates) and uneven sizes.
func randomJob(rng *rand.Rand) core.BatchJob {
	n := 1 + rng.Intn(40)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(2*n + 3))
	}
	job := core.BatchJob{Values: vals, Order: core.Descending}
	switch rng.Intn(5) {
	case 0:
		job.Op = core.BatchSort
		if rng.Intn(2) == 0 {
			job.Order = core.Ascending
		}
	case 1:
		job.Op = core.BatchTopK
		job.TopK = 1 + rng.Intn(n)
	case 2:
		job.Op = core.BatchMedian
	case 3:
		job.Op = core.BatchRank
		job.D = 1 + rng.Intn(n)
	case 4:
		job.Op = core.BatchMultiSelect
		m := 1 + rng.Intn(3)
		for j := 0; j < m; j++ {
			job.Ds = append(job.Ds, 1+rng.Intn(n))
		}
	}
	return job
}

func equalVals(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPoolCoalescesIdentical is the batcher property test: concurrent
// requests admitted within one window coalesce into shared runs and every
// caller's answer is byte-identical to a dedicated (NoBatch) run of the same
// job and to the sequential oracle.
func TestPoolCoalescesIdentical(t *testing.T) {
	pool, err := NewPool(Config{P: 32, K: 8, BatchWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		jobs := make([]core.BatchJob, 8)
		for i := range jobs {
			jobs[i] = randomJob(rng)
		}
		outs := make([]JobOutcome, len(jobs))
		var wg sync.WaitGroup
		for i := range jobs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := pool.Do(context.Background(), JobRequest{Job: jobs[i]})
				if err != nil {
					t.Errorf("trial %d job %d: admission error %v", trial, i, err)
					return
				}
				outs[i] = out
			}(i)
		}
		wg.Wait()
		anyBatched := false
		for i, out := range outs {
			if out.Err != nil {
				t.Fatalf("trial %d job %d: %v", trial, i, out.Err)
			}
			want := oracleJob(jobs[i])
			if !equalVals(out.Values, want) {
				t.Fatalf("trial %d job %d (op %v): got %v want %v", trial, i, jobs[i].Op, out.Values, want)
			}
			solo, err := pool.Do(context.Background(), JobRequest{Job: jobs[i], NoBatch: true})
			if err != nil || solo.Err != nil {
				t.Fatalf("trial %d job %d solo: %v / %v", trial, i, err, solo.Err)
			}
			if !equalVals(out.Values, solo.Values) {
				t.Fatalf("trial %d job %d: coalesced %v != solo %v", trial, i, out.Values, solo.Values)
			}
			if solo.Batched {
				t.Fatalf("trial %d job %d: NoBatch job reported Batched", trial, i)
			}
			anyBatched = anyBatched || out.Batched
		}
		if !anyBatched {
			t.Errorf("trial %d: 8 concurrent jobs within a 20ms window, none coalesced", trial)
		}
	}
	st := pool.Stats()
	if st.CoalescedRuns == 0 || st.CoalescedJobs == 0 {
		t.Errorf("stats never saw a coalesced run: %+v", st)
	}
}

// TestPoolBudgetIsolation: a mid-batch typed failure (a sibling whose cycle
// budget the shared run exceeds) must not poison its siblings — they keep
// correct coalesced answers while the offender alone gets *mcb.BudgetError.
func TestPoolBudgetIsolation(t *testing.T) {
	pool, err := NewPool(Config{P: 24, K: 6, BatchWindow: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rng := rand.New(rand.NewSource(11))
	jobs := make([]core.BatchJob, 5)
	for i := range jobs {
		jobs[i] = randomJob(rng)
	}
	jobs[2].MaxCycles = 1 // no run of any job completes in one cycle

	outs := make([]JobOutcome, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := pool.Do(context.Background(), JobRequest{Job: jobs[i]})
			if err != nil {
				t.Errorf("job %d: admission error %v", i, err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()

	var be *mcb.BudgetError
	if !errors.As(outs[2].Err, &be) {
		t.Fatalf("budgeted job: want *mcb.BudgetError, got %v", outs[2].Err)
	}
	for i, out := range outs {
		if i == 2 {
			continue
		}
		if out.Err != nil {
			t.Fatalf("sibling %d poisoned by budgeted job: %v", i, out.Err)
		}
		if want := oracleJob(jobs[i]); !equalVals(out.Values, want) {
			t.Fatalf("sibling %d: got %v want %v", i, out.Values, want)
		}
	}
}

// TestPoolConcurrentTenants exercises multiple pooled networks under -race:
// several tenants fire mixed requests at a pool with Instances > 1, every
// answer must match the oracle.
func TestPoolConcurrentTenants(t *testing.T) {
	pool, err := NewPool(Config{Instances: 3, P: 24, K: 6, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const tenants = 6
	const perTenant = 15
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + tn)))
			for r := 0; r < perTenant; r++ {
				job := randomJob(rng)
				out, err := pool.Do(context.Background(), JobRequest{Job: job, NoBatch: rng.Intn(4) == 0})
				if err != nil {
					t.Errorf("tenant %d req %d: admission error %v", tn, r, err)
					return
				}
				if out.Err != nil {
					t.Errorf("tenant %d req %d: %v", tn, r, out.Err)
					return
				}
				if want := oracleJob(job); !equalVals(out.Values, want) {
					t.Errorf("tenant %d req %d (op %v): got %v want %v", tn, r, job.Op, out.Values, want)
					return
				}
			}
		}(tn)
	}
	wg.Wait()
	st := pool.Stats()
	if st.Completed != tenants*perTenant {
		t.Errorf("completed %d, want %d (stats %+v)", st.Completed, tenants*perTenant, st)
	}
}

// TestPoolFaultedJob routes a fault-injected job through the recovery layer
// and still demands the exact answer.
func TestPoolFaultedJob(t *testing.T) {
	pool, err := NewPool(Config{P: 16, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rng := rand.New(rand.NewSource(23))
	successes := 0
	for trial := 0; trial < 8; trial++ {
		job := randomJob(rng)
		out, err := pool.Do(context.Background(), JobRequest{
			Job:     job,
			Faults:  &mcb.FaultPlan{Seed: uint64(trial + 1), DropRate: 0.0005, CorruptRate: 0.0005, Checksum: true},
			Retries: 12,
		})
		if err != nil {
			t.Fatalf("trial %d: admission error %v", trial, err)
		}
		if out.Err != nil {
			// Retry exhaustion is the accepted typed failure mode; a silent
			// wrong answer never is.
			t.Logf("trial %d: retries exhausted: %v", trial, out.Err)
			continue
		}
		successes++
		if want := oracleJob(job); !equalVals(out.Values, want) {
			t.Fatalf("trial %d (op %v): got %v want %v", trial, job.Op, out.Values, want)
		}
		if out.Batched {
			t.Fatalf("trial %d: faulted job must not coalesce", trial)
		}
	}
	if successes < 6 {
		t.Errorf("only %d/8 faulted jobs recovered at a 0.2%% fault rate", successes)
	}
	if st := pool.Stats(); st.FaultedJobs == 0 {
		t.Error("stats never counted a faulted job")
	}
}

// heavySortJob is a blocker: a dedicated K=1 rank-sort run broadcasting
// thousands of elements over one channel keeps an instance busy for tens of
// milliseconds.
func heavySortJob(n int) core.BatchJob {
	vals := make([]int64, n)
	rng := rand.New(rand.NewSource(99))
	for i := range vals {
		vals[i] = rng.Int63n(1 << 20)
	}
	return core.BatchJob{Op: core.BatchSort, Values: vals, Order: core.Descending}
}

// TestPoolSaturation: with one instance pinned by a heavy run and the
// bounded queue full, admission must reject with ErrSaturated — and the
// queued in-flight job must still complete correctly.
func TestPoolSaturation(t *testing.T) {
	for attempt := 0; attempt < 5; attempt++ {
		pool, err := NewPool(Config{Instances: 1, P: 32, K: 1, QueueDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		blockerDone := make(chan error, 1)
		go func() {
			_, err := pool.Do(context.Background(), JobRequest{Job: heavySortJob(6000), NoBatch: true})
			blockerDone <- err
		}()
		// Wait for the instance to pull the blocker off the queue.
		deadline := time.Now().Add(2 * time.Second)
		for {
			st := pool.Stats()
			if st.Accepted >= 1 && st.QueueDepth == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("blocker never admitted")
			}
			time.Sleep(100 * time.Microsecond)
		}
		// Fill the queue with one small job while the blocker runs.
		fillerJob := randomJob(rand.New(rand.NewSource(int64(attempt))))
		fillerDone := make(chan JobOutcome, 1)
		go func() {
			out, err := pool.Do(context.Background(), JobRequest{Job: fillerJob})
			if err != nil {
				t.Errorf("filler: admission error %v", err)
			}
			fillerDone <- out
		}()
		for pool.Stats().QueueDepth == 0 {
			if time.Now().After(deadline) {
				t.Fatal("filler never queued")
			}
			time.Sleep(100 * time.Microsecond)
		}
		// Queue full, instance busy: the probe must be shed.
		_, probeErr := pool.Do(context.Background(), JobRequest{Job: randomJob(rand.New(rand.NewSource(5)))})
		if ra := pool.RetryAfter(); ra < 50*time.Millisecond || ra > 2*time.Second {
			t.Errorf("RetryAfter %v outside [50ms, 2s]", ra)
		}
		saturated := errors.Is(probeErr, ErrSaturated)
		if !saturated && probeErr != nil {
			t.Fatalf("probe: unexpected error %v", probeErr)
		}
		out := <-fillerDone
		if out.Err != nil {
			t.Fatalf("queued in-flight job failed during saturation: %v", out.Err)
		}
		if want := oracleJob(fillerJob); !equalVals(out.Values, want) {
			t.Fatalf("queued in-flight job wrong answer: got %v want %v", out.Values, want)
		}
		if err := <-blockerDone; err != nil {
			t.Fatalf("blocker: %v", err)
		}
		pool.Close()
		if saturated {
			if st := pool.Stats(); st.Rejected == 0 {
				t.Error("saturation not counted in stats")
			}
			return
		}
		// The blocker finished before the probe: retry with a fresh pool.
	}
	t.Fatal("never observed saturation in 5 attempts")
}

// TestPoolDrainingAndLeaks: after Close, admission fails with ErrDraining,
// repeated Close is safe, and the instance goroutines are gone.
func TestPoolDrainingAndLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	pool, err := NewPool(Config{Instances: 4, P: 16, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 4; i++ {
		job := randomJob(rng)
		out, err := pool.Do(context.Background(), JobRequest{Job: job})
		if err != nil || out.Err != nil {
			t.Fatalf("warm-up %d: %v / %v", i, err, out.Err)
		}
	}
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Do(context.Background(), JobRequest{Job: randomJob(rng)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Close Do: want ErrDraining, got %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: before %d, now %d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolGeometryValidation rejects K > P.
func TestPoolGeometryValidation(t *testing.T) {
	if _, err := NewPool(Config{P: 4, K: 8}); err == nil {
		t.Fatal("want geometry error for K > P")
	}
}

// TestPercentile pins the nearest-rank convention.
func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	cases := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 2}, {0.75, 3}, {0.95, 4}, {1, 4}}
	for _, c := range cases {
		if got := Percentile(s, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}
