package transport

import (
	"errors"
	"net"
	"sync"
	"time"
)

// FlakyOptions configures deterministic chaos on one direction of a
// connection. Every decision is a pure function of (Seed, frame index), so a
// failing chaos test replays bit-identically from its seed. Rates are
// per-written-frame probabilities in [0, 1]; at most one fault fires per
// frame (they are carved out of one uniform draw in the order drop, dup,
// corrupt, cut), plus an independent latency draw.
//
// The faults map onto the tcp package's failure plane as follows:
//
//	drop      → the receiver sees a sequence gap on the next frame → link error
//	dup       → the receiver's sequence window discards the copy → harmless
//	corrupt   → the frame checksum fails on receipt → link error
//	cut       → half a frame is written, then the conn closes → read error
//	latency   → the frame arrives late; within the peer timeout → harmless
type FlakyOptions struct {
	// Seed drives every decision; distinct seeds give independent chaos.
	Seed uint64
	// DropRate swallows a frame whole (never written).
	DropRate float64
	// DupRate writes a frame twice back to back.
	DupRate float64
	// CorruptRate flips one bit of the frame before writing it.
	CorruptRate float64
	// CutRate writes only the first half of the frame and then severs the
	// connection — the mid-frame cut of a dying peer.
	CutRate float64
	// LatencyRate delays a frame by Latency before writing it.
	LatencyRate float64
	// Latency is the injected delay (default 2ms when only the rate is set).
	Latency time.Duration
}

// Flaky wraps a net.Conn and perturbs written frames per FlakyOptions. It is
// frame-boundary aware because the tcp package writes each frame with a
// single Write call; wrapping both ends of a pipe perturbs both directions.
type Flaky struct {
	net.Conn
	opt FlakyOptions

	mu sync.Mutex
	n  uint64 // frames written so far (the decision index)
}

// errCut is returned by Write after an injected mid-frame cut.
var errCut = errors.New("transport: flaky mid-frame cut")

// WrapFlaky wraps c; a zero-valued options struct passes everything through.
func WrapFlaky(c net.Conn, opt FlakyOptions) *Flaky {
	if opt.LatencyRate > 0 && opt.Latency == 0 {
		opt.Latency = 2 * time.Millisecond
	}
	return &Flaky{Conn: c, opt: opt}
}

// splitmix64 is the same finalizer the fault plane uses: decisions depend
// only on the seeded index, never on timing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a draw to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Write perturbs the frame b per the options, then forwards it. The reported
// length is always len(b) for swallowed frames (the writer must believe the
// frame left) and the underlying conn's answer otherwise.
func (f *Flaky) Write(b []byte) (int, error) {
	f.mu.Lock()
	idx := f.n
	f.n++
	f.mu.Unlock()

	if f.opt.LatencyRate > 0 && unit(splitmix64(f.opt.Seed^0xa5a5a5a5^idx*0x9e3779b97f4a7c15)) < f.opt.LatencyRate {
		time.Sleep(f.opt.Latency)
	}
	u := unit(splitmix64(f.opt.Seed ^ idx*0xd6e8feb86659fd93))
	switch {
	case u < f.opt.DropRate:
		return len(b), nil
	case u < f.opt.DropRate+f.opt.DupRate:
		if n, err := f.Conn.Write(b); err != nil {
			return n, err
		}
		return f.Conn.Write(b)
	case u < f.opt.DropRate+f.opt.DupRate+f.opt.CorruptRate:
		c := make([]byte, len(b))
		copy(c, b)
		bit := splitmix64(f.opt.Seed ^ 0x5bd1e995 ^ idx)
		c[bit%uint64(len(c))] ^= 1 << (bit >> 32 % 8)
		return f.Conn.Write(c)
	case u < f.opt.DropRate+f.opt.DupRate+f.opt.CorruptRate+f.opt.CutRate:
		half := len(b) / 2
		if half > 0 {
			f.Conn.Write(b[:half])
		}
		f.Conn.Close()
		return half, errCut
	}
	return f.Conn.Write(b)
}
