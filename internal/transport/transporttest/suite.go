package transporttest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mcbnet/internal/mcb"
	"mcbnet/internal/transport"
)

// Factory builds the transport under test for one MCB(p, k) run. The
// returned transport must collectively own every processor in [0, p) — a
// single transport.Local{} for the in-process implementation, a Group of
// peer clients (plus whatever server machinery the factory spins up and
// tears down via t.Cleanup) for a distributed one.
type Factory func(t *testing.T, p, k int) transport.Transport

// RunSuite runs the conformance suite against the factory's transports.
func RunSuite(t *testing.T, f Factory) {
	t.Run("Determinism", func(t *testing.T) { testDeterminism(t, f, nil) })
	t.Run("FaultedDeterminism", func(t *testing.T) {
		testDeterminism(t, f, &mcb.FaultPlan{
			Seed: 42, DropRate: 0.08, CorruptRate: 0.04, Checksum: true,
			Outages: []mcb.Outage{{Ch: 1, From: 10, To: 30}},
		})
	})
	t.Run("Exchange", func(t *testing.T) { testExchange(t, f) })
	t.Run("AbortPropagation", func(t *testing.T) { testAbort(t, f) })
	t.Run("Crash", func(t *testing.T) { testCrash(t, f) })
	t.Run("Budget", func(t *testing.T) { testBudget(t, f) })
	t.Run("StallWatchdog", func(t *testing.T) { testStall(t, f) })
	t.Run("ContextCancel", func(t *testing.T) { testCancel(t, f) })
}

// patternPrograms is the deterministic lock-step reference workload: every
// processor spends exactly one cycle per round (writers broadcast, the rest
// read or idle on a seeded schedule), with aligned idle stretches, phase
// markers and aux accounting mixed in. Collision-free by construction:
// round r's writer on channel c is processor (r+c) mod p, distinct across
// c < k <= p. The programs ignore read payloads, so they run identically
// under message-loss fault plans.
func patternPrograms(p, k, rounds int) []func(mcb.Node) {
	progs := make([]func(mcb.Node), p)
	for i := 0; i < p; i++ {
		id := i
		progs[i] = func(n mcb.Node) {
			n.Phase("warmup")
			n.AccountAux(int64(4 * (id + 1)))
			n.IdleN(3)
			for r := 0; r < rounds; r++ {
				if r%8 == 0 {
					n.Phase(fmt.Sprintf("round:%02d", r/8))
				}
				if r > 0 && r%10 == 0 {
					n.IdleN(2)
				}
				c := ((id-r)%p + p) % p
				switch {
				case c < k:
					// Writer on channel c this round; read a neighbor.
					n.WriteRead(c, mcb.Msg(1, int64(r), int64(c), int64(id)), (c+1)%k)
				case (id+r)%5 == 0:
					n.Idle()
				default:
					n.Read((id + r) % k)
				}
			}
			n.Phase("drain")
			n.AccountAux(-int64(2 * (id + 1)))
			n.IdleN(1 + id%2)
		}
	}
	return progs
}

func reportJSON(t *testing.T, cfg mcb.Config, res *mcb.Result) []byte {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	b, err := json.Marshal(mcb.NewReport(cfg, &res.Stats))
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

// testDeterminism requires the transport's run to produce a Report
// byte-identical to the in-process engine's for the same (config, programs)
// — the core guarantee that moving a run onto a distributed transport does
// not change the computation being measured.
func testDeterminism(t *testing.T, f Factory, plan *mcb.FaultPlan) {
	leakCheck(t)
	const p, k, rounds = 6, 3, 40
	cfg := mcb.Config{P: p, K: k, Faults: plan}

	ref, err := mcb.Run(cfg, patternPrograms(p, k, rounds))
	if err != nil {
		t.Fatalf("in-process reference run: %v", err)
	}
	want := reportJSON(t, cfg, ref)

	tr := f(t, p, k)
	defer tr.Close()
	res, err := tr.Run(context.Background(), cfg, patternPrograms(p, k, rounds))
	if err != nil {
		t.Fatalf("transport run: %v", err)
	}
	got := reportJSON(t, cfg, res)
	if !bytes.Equal(got, want) {
		t.Errorf("report diverged from in-process engine:\n got: %s\nwant: %s", got, want)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// testExchange requires a boundary exchange to return the complete blob
// table to every caller.
func testExchange(t *testing.T, f Factory) {
	leakCheck(t)
	const p, k = 6, 3
	tr := f(t, p, k)
	defer tr.Close()

	// A transport is allowed to rendezvous exchanges with engine rounds
	// only; run one round first so lazily-connecting transports are live.
	cfg := mcb.Config{P: p, K: k}
	if _, err := tr.Run(context.Background(), cfg, patternPrograms(p, k, 8)); err != nil {
		t.Fatalf("warmup run: %v", err)
	}

	for round := 0; round < 2; round++ {
		tag := fmt.Sprintf("conformance:%d", round)
		blobs := make([][]byte, p)
		for i := range blobs {
			blobs[i] = []byte(fmt.Sprintf("blob-%d-%s", i, tag))
		}
		got, err := tr.Exchange(tag, blobs)
		if err != nil {
			t.Fatalf("exchange %s: %v", tag, err)
		}
		if len(got) != p {
			t.Fatalf("exchange %s returned %d blobs, want %d", tag, len(got), p)
		}
		for i := range got {
			if want := fmt.Sprintf("blob-%d-%s", i, tag); string(got[i]) != want {
				t.Errorf("exchange %s blob[%d] = %q, want %q", tag, i, got[i], want)
			}
		}
	}
}

// testAbort requires Abortf in a processor program to fail the whole run
// with an *mcb.AbortError attributing the right processor, wherever that
// program executes.
func testAbort(t *testing.T, f Factory) {
	leakCheck(t)
	const p, k = 5, 2
	tr := f(t, p, k)
	defer tr.Close()

	progs := make([]func(mcb.Node), p)
	for i := 0; i < p; i++ {
		id := i
		progs[i] = func(n mcb.Node) {
			n.IdleN(id + 1)
			if id == p-1 {
				n.Abortf("conformance: invariant violated at proc %d", id)
			}
			for {
				n.Idle()
			}
		}
	}
	_, err := tr.Run(context.Background(), mcb.Config{P: p, K: k}, progs)
	var ae *mcb.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("got %v (%T), want *mcb.AbortError", err, err)
	}
	if ae.Proc != p-1 {
		t.Errorf("abort attributed to proc %d, want %d", ae.Proc, p-1)
	}
	if !errors.Is(err, mcb.ErrAborted) {
		t.Errorf("abort error does not wrap ErrAborted")
	}
}

// testCrash requires scripted crash-stops to surface as *mcb.CrashError
// naming the dead processors.
func testCrash(t *testing.T, f Factory) {
	leakCheck(t)
	const p, k = 4, 2
	tr := f(t, p, k)
	defer tr.Close()

	cfg := mcb.Config{
		P: p, K: k,
		StallTimeout: 2 * time.Second,
		Faults:       &mcb.FaultPlan{Crashes: []mcb.Crash{{Proc: 1, Cycle: 6}}},
	}
	progs := make([]func(mcb.Node), p)
	for i := 0; i < p; i++ {
		id := i
		progs[i] = func(n mcb.Node) {
			for r := 0; r < 200; r++ {
				if id == r%p {
					n.Write(0, mcb.Msg(2, int64(r), 0, int64(id)))
				} else {
					n.Read(0)
				}
			}
		}
	}
	_, err := tr.Run(context.Background(), cfg, progs)
	var ce *mcb.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v (%T), want *mcb.CrashError", err, err)
	}
	if len(ce.Procs) != 1 || ce.Procs[0] != 1 {
		t.Errorf("crash names procs %v, want [1]", ce.Procs)
	}
}

// testBudget requires cycle-budget exhaustion to surface as
// *mcb.BudgetError.
func testBudget(t *testing.T, f Factory) {
	leakCheck(t)
	const p, k = 3, 2
	tr := f(t, p, k)
	defer tr.Close()

	progs := make([]func(mcb.Node), p)
	for i := 0; i < p; i++ {
		progs[i] = func(n mcb.Node) {
			for {
				n.Idle()
			}
		}
	}
	_, err := tr.Run(context.Background(), mcb.Config{P: p, K: k, MaxCycles: 40}, progs)
	var be *mcb.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v (%T), want *mcb.BudgetError", err, err)
	}
}

// testStall wedges the lock-step protocol (one processor stops issuing ops
// while the rest wait on it) and requires the stall watchdog to fire with
// per-processor diagnostics. The wedged program unblocks shortly after so
// the leak check can observe a fully drained transport.
func testStall(t *testing.T, f Factory) {
	leakCheck(t)
	const p, k = 4, 2
	tr := f(t, p, k)
	defer tr.Close()

	unblock := make(chan struct{})
	timer := time.AfterFunc(1500*time.Millisecond, func() { close(unblock) })
	defer timer.Stop()

	progs := make([]func(mcb.Node), p)
	for i := 0; i < p; i++ {
		id := i
		progs[i] = func(n mcb.Node) {
			n.IdleN(4)
			if id == 0 {
				<-unblock // wedge: never issues its next op until unblocked
			}
			for {
				n.Idle()
			}
		}
	}
	_, err := tr.Run(context.Background(), mcb.Config{P: p, K: k, StallTimeout: 150 * time.Millisecond}, progs)
	var se *mcb.StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v (%T), want *mcb.StallError", err, err)
	}
	if len(se.Stalled) == 0 {
		t.Errorf("stall carries no per-processor diagnostics")
	}
	timer.Reset(0) // unblock now; the drained goroutines satisfy leakCheck
}

// testCancel requires context cancellation mid-run to return a typed
// *mcb.AbortError promptly, with no peers left running.
func testCancel(t *testing.T, f Factory) {
	leakCheck(t)
	const p, k = 4, 2
	tr := f(t, p, k)
	defer tr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(100*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	progs := make([]func(mcb.Node), p)
	for i := 0; i < p; i++ {
		progs[i] = func(n mcb.Node) {
			for {
				n.Idle()
			}
		}
	}
	start := time.Now()
	_, err := tr.Run(ctx, mcb.Config{P: p, K: k, StallTimeout: time.Minute}, progs)
	var ae *mcb.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("got %v (%T), want *mcb.AbortError", err, err)
	}
	if d := time.Since(start); d > 15*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

// leakCheck snapshots the goroutine count and, after the test AND its
// cleanups (the factory's teardown included) have run, waits for it to
// settle back: a transport must not leak relay, connection or program
// goroutines past Close. Registered as a cleanup before the factory's so it
// runs after them (cleanups are LIFO).
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d live, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
	})
}
