// Package transporttest is the conformance suite every transport.Transport
// implementation must pass. It drives the same deterministic lock-step
// programs through the implementation under test and through the in-process
// engine, and requires byte-identical mcb.NewReport JSON, exact typed-error
// round-trips (abort, crash, stall, budget, context cancellation), working
// boundary exchanges, and zero leaked goroutines after Close.
//
// Distributed transports are exercised through Group: one Transport value
// per peer process role, composed so the suite can make the collective
// Run/Exchange calls of a real peer fleet from a single test process.
package transporttest

import (
	"context"
	"errors"
	"sync"

	"mcbnet/internal/mcb"
	"mcbnet/internal/transport"
)

// Group composes the per-peer transports of one distributed run into a
// single transport.Transport: Run and Exchange fan out to every member
// concurrently (the rendezvous a real peer fleet performs from separate
// processes), Owns is the union. Member programs all execute in this
// process, so a Group run fills the complete per-processor result tables
// locally while still pushing every frame over the members' links.
type Group struct {
	Members []transport.Transport
}

var _ transport.Transport = (*Group)(nil)

// Run executes the round on every member concurrently and returns the
// first non-nil result with the most specific error: a typed engine error
// is preferred over a bare link error, matching what a single peer's driver
// would see.
func (g *Group) Run(ctx context.Context, cfg mcb.Config, programs []func(mcb.Node)) (*mcb.Result, error) {
	results := make([]*mcb.Result, len(g.Members))
	errs := make([]error, len(g.Members))
	var wg sync.WaitGroup
	for i, m := range g.Members {
		wg.Add(1)
		go func(i int, m transport.Transport) {
			defer wg.Done()
			results[i], errs[i] = m.Run(ctx, cfg, programs)
		}(i, m)
	}
	wg.Wait()
	var res *mcb.Result
	for _, r := range results {
		if r != nil {
			res = r
			break
		}
	}
	return res, pickErr(errs)
}

// pickErr selects the error a single-peer driver would act on: nil only if
// every member succeeded, otherwise the first typed engine error, falling
// back to the first link error.
func pickErr(errs []error) error {
	var link error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var le *transport.LinkError
		if errors.As(err, &le) {
			if link == nil {
				link = err
			}
			continue
		}
		return err
	}
	return link
}

// Owns reports whether any member owns the processor.
func (g *Group) Owns(proc int) bool {
	for _, m := range g.Members {
		if m.Owns(proc) {
			return true
		}
	}
	return false
}

// Exchange splits the full blob table by ownership, exchanges through every
// member concurrently, and returns the first member's merged view (all
// views are checked equal in the suite's Exchange test, not here).
func (g *Group) Exchange(tag string, blobs [][]byte) ([][]byte, error) {
	outs := make([][][]byte, len(g.Members))
	errs := make([]error, len(g.Members))
	var wg sync.WaitGroup
	for i, m := range g.Members {
		part := make([][]byte, len(blobs))
		for p := range blobs {
			if m.Owns(p) {
				part[p] = blobs[p]
			}
		}
		wg.Add(1)
		go func(i int, m transport.Transport, part [][]byte) {
			defer wg.Done()
			outs[i], errs[i] = m.Exchange(tag, part)
		}(i, m, part)
	}
	wg.Wait()
	if err := pickErr(errs); err != nil {
		return nil, err
	}
	return outs[0], nil
}

// InProcess reports whether every member is in-process (a Group of one
// Local behaves exactly like Local).
func (g *Group) InProcess() bool {
	for _, m := range g.Members {
		if !m.InProcess() {
			return false
		}
	}
	return true
}

// Close closes every member, returning the first error.
func (g *Group) Close() error {
	var first error
	for _, m := range g.Members {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
