// Package transport defines the seam between the MCB algorithms and the
// machinery that executes their engine rounds. The algorithm drivers
// (internal/core) are written against Transport; the in-process engines
// (internal/mcb's barrier and sharded modes) sit behind Local, and
// internal/transport/tcp runs the same rounds across OS processes with a
// sequencer resolving cycles over length-prefixed checksummed frames.
//
// A Transport executes whole engine rounds, not single cycle ops: Run takes
// the full program set of an MCB(p, k) round and returns the same *mcb.Result
// the in-process engine would. A distributed transport executes only the
// programs of the processors it owns (Owns) — the rest run in peer
// processes — and Exchange moves the per-processor state blobs produced at
// run boundaries so every process holds the full distributed state (which is
// what lets verification, retry decisions and checkpointing run unmodified
// on every peer).
package transport

import (
	"context"

	"mcbnet/internal/mcb"
)

// Transport executes engine rounds and boundary state exchanges.
//
// The algorithm drivers call the methods collectively and in deterministic
// order: every process of a distributed run makes the same Run and Exchange
// calls with the same tags, so a transport may treat each call as a
// rendezvous. Errors from Run are the engine's typed taxonomy (possibly
// wrapping transport-level causes such as LinkError); a non-nil *mcb.Result
// alongside an error covers the completed cycles, exactly as mcb.Run.
type Transport interface {
	// Run executes one engine round. programs must have cfg.P entries; a
	// distributed transport runs only those this process Owns.
	Run(ctx context.Context, cfg mcb.Config, programs []func(mcb.Node)) (*mcb.Result, error)
	// Owns reports whether processor proc's program executes in this
	// process. Local owns everything.
	Owns(proc int) bool
	// Exchange shares per-processor boundary state: blobs has one entry per
	// processor (nil for processors this process does not own) and the
	// result has every processor's blob. The tag names the boundary; all
	// processes of a run must exchange the same tags in the same order.
	Exchange(tag string, blobs [][]byte) ([][]byte, error)
	// InProcess reports whether all processors share this address space —
	// true for Local, letting drivers skip the (identity) exchanges.
	InProcess() bool
	// Close releases transport resources (connections, listeners). Local is
	// a no-op.
	Close() error
}

// Local is the in-process Transport: rounds run on the existing barrier or
// sharded engine (per cfg.Engine), byte-for-byte unchanged on the fast path,
// and exchanges are the identity (every processor already shares memory).
type Local struct{}

// Run executes the round on the in-process engine.
func (Local) Run(ctx context.Context, cfg mcb.Config, programs []func(mcb.Node)) (*mcb.Result, error) {
	return mcb.RunContext(ctx, cfg, programs)
}

// Owns reports true: every processor lives in this process.
func (Local) Owns(int) bool { return true }

// Exchange is the identity: the caller's blobs already cover every
// processor.
func (Local) Exchange(tag string, blobs [][]byte) ([][]byte, error) { return blobs, nil }

// InProcess reports true.
func (Local) InProcess() bool { return true }

// Close is a no-op.
func (Local) Close() error { return nil }

var _ Transport = Local{}

// LinkError reports a transport-level connection failure: a peer link died
// (dial exhausted, read/write deadline, checksum mismatch, sequence gap,
// connection reset) before the round could complete. It wraps mcb.ErrAborted
// so the retry layers treat it like any other typed abort — retryable, and
// recoverable from a checkpoint.
type LinkError struct {
	// Peer names the remote end ("sequencer" from a client, the peer name
	// from the sequencer).
	Peer string
	// Op is what the link was doing ("dial", "read", "write", "frame").
	Op string
	// Err is the underlying cause.
	Err error
}

func (e *LinkError) Error() string {
	return "transport: link to " + e.Peer + " failed during " + e.Op + ": " + e.Err.Error()
}

// Unwrap yields mcb.ErrAborted (and the cause via errors.As on Err).
func (e *LinkError) Unwrap() error { return mcb.ErrAborted }
