package transport_test

import (
	"testing"

	"mcbnet/internal/transport"
	"mcbnet/internal/transport/transporttest"
)

// TestLocalConformance pins the in-process transport to the conformance
// contract — in particular byte-identical reports with a direct mcb.Run,
// which is the fast path's no-regression guarantee at this seam.
func TestLocalConformance(t *testing.T) {
	transporttest.RunSuite(t, func(t *testing.T, p, k int) transport.Transport {
		return transport.Local{}
	})
}
