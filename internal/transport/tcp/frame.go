// Package tcp is the networked Transport: one OS process per processor
// group, plus a sequencer process that hosts the real in-process engine and
// resolves every cycle with the existing resolveFast/resolveGeneral. Peers
// run their processors' actual programs against a remote Node whose cycle
// ops travel to the sequencer as length-prefixed, FNV-1a-checksummed,
// sequence-numbered frames; inside the sequencer each remote processor is a
// relay goroutine feeding the ops into a real mcb engine run. Because the
// resolver, the fault plane and the stats accounting are literally the
// shared code, a distributed run's Report is byte-identical to the
// in-process engine's for the same (seed, config).
//
// See DESIGN.md "Transport layer" for the frame format and the mapping from
// socket events to the typed failure taxonomy.
package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types. A frame is:
//
//	uint32  payload length n (big endian)
//	uint8   type
//	uint32  sequence number (per connection, per direction, starting at 1)
//	uint64  epoch (the sequencer generation this session belongs to)
//	n bytes payload
//	uint64  FNV-1a over type ∥ seq ∥ epoch ∥ payload
//
// The sequence number makes duplicate frames (a retransmitting or chaotic
// link) detectable — the reader discards seq ≤ last — and makes silent frame
// loss detectable as a gap, which is treated as a link failure (the protocol
// has no retransmission; recovery happens a layer up, via retry + checkpoint
// resume).
//
// The epoch stamps every frame with the sequencer generation negotiated at
// the handshake: epoch e is served by candidate e mod C of the peer file's
// ordered sequencer list, and a frame whose epoch disagrees with the
// session's is rejected by tearing the connection down — the fencing that
// stops a zombie sequencer (or a peer stranded in an old generation) from
// feeding stale cycle traffic into a promoted group. Single-sequencer groups
// stay at epoch 0 forever, so the field is inert for them.
const (
	fHello     = 1  // peer → seq: join a job (helloBody)
	fWelcome   = 2  // seq → peer: join verdict (welcomeBody)
	fRound     = 3  // peer → seq: propose an engine round (roundBody)
	fStart     = 4  // seq → peer: round accepted and engine running (startBody)
	fOps       = 5  // peer → seq: cycle ops batch (opsBody)
	fResults   = 6  // seq → peer: cycle results batch (resultsBody)
	fDone      = 7  // seq → peer: round finished (doneBody)
	fXchg      = 8  // peer → seq: boundary state blobs (xchgBody)
	fXchgAll   = 9  // seq → peer: merged boundary state (xchgAllBody)
	fFail      = 10 // seq → peer: session-fatal verdict (failBody)
	fHeartbeat = 11 // both ways: liveness, empty payload
	fBye       = 12 // peer → seq: job complete, empty payload
	fAbort     = 13 // peer → seq: cancel the running round (abortBody)
)

// maxFrame bounds a frame payload; anything larger is a corrupt length
// prefix (the state blobs of test-sized runs are well under this).
const maxFrame = 64 << 20

type frame struct {
	typ   byte
	seq   uint32
	epoch uint64
	pay   []byte
}

// fnv1a64 hashes type ∥ seq ∥ epoch ∥ payload.
func fnv1a64(typ byte, seq uint32, epoch uint64, pay []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	h = (h ^ uint64(typ)) * prime
	var s [12]byte
	binary.BigEndian.PutUint32(s[:4], seq)
	binary.BigEndian.PutUint64(s[4:], epoch)
	for _, b := range s {
		h = (h ^ uint64(b)) * prime
	}
	for _, b := range pay {
		h = (h ^ uint64(b)) * prime
	}
	return h
}

// appendFrame serializes one frame into buf (reused across calls).
func appendFrame(buf []byte, typ byte, seq uint32, epoch uint64, pay []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pay)))
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, seq)
	buf = binary.BigEndian.AppendUint64(buf, epoch)
	buf = append(buf, pay...)
	buf = binary.BigEndian.AppendUint64(buf, fnv1a64(typ, seq, epoch, pay))
	return buf
}

// frameReader decodes frames from one connection, reusing a single payload
// scratch buffer across reads: the steady-state frame traffic of a run (ops,
// results, heartbeats) allocates nothing per frame. The returned frame's
// payload therefore aliases the scratch and is only valid until the next
// read call — a decoder that retains payload bytes past that point (e.g. a
// json.RawMessage carried into another goroutine) must copy them.
type frameReader struct {
	r   *bufio.Reader
	pay []byte
	// hdr and sum live here rather than on read's stack: io.ReadFull takes
	// an interface, so stack arrays passed to it escape (one heap allocation
	// each per frame).
	hdr [17]byte
	sum [8]byte
}

func newFrameReader(r *bufio.Reader) *frameReader {
	return &frameReader{r: r}
}

// read reads and verifies one frame. Length, checksum or sequence violations
// return an error — the connection is then unusable (framing is lost) and
// must be torn down. The frame's payload is valid until the next read.
func (fr *frameReader) read() (frame, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:4])
	if n > maxFrame {
		return frame{}, fmt.Errorf("tcp: frame length %d exceeds limit (corrupt prefix?)", n)
	}
	f := frame{typ: fr.hdr[4], seq: binary.BigEndian.Uint32(fr.hdr[5:9]), epoch: binary.BigEndian.Uint64(fr.hdr[9:17])}
	if uint32(cap(fr.pay)) < n {
		fr.pay = make([]byte, n)
	}
	f.pay = fr.pay[:n]
	if _, err := io.ReadFull(fr.r, f.pay); err != nil {
		return frame{}, err
	}
	if _, err := io.ReadFull(fr.r, fr.sum[:]); err != nil {
		return frame{}, err
	}
	if got, want := binary.BigEndian.Uint64(fr.sum[:]), fnv1a64(f.typ, f.seq, f.epoch, f.pay); got != want {
		return frame{}, fmt.Errorf("tcp: frame checksum mismatch (type %d, seq %d)", f.typ, f.seq)
	}
	return f, nil
}

// seqWindow tracks the per-direction sequence numbers of received frames:
// duplicates are discarded, gaps are link failures.
type seqWindow struct{ last uint32 }

// admit classifies a received sequence number: ok to process, a discardable
// duplicate, or an error (gap — at least one frame was lost in transit).
func (w *seqWindow) admit(seq uint32) (dup bool, err error) {
	switch {
	case seq <= w.last:
		return true, nil
	case seq == w.last+1:
		w.last = seq
		return false, nil
	default:
		return false, fmt.Errorf("tcp: sequence gap: got %d after %d (frame lost)", seq, w.last)
	}
}
