package tcp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempPeerFile(t *testing.T, pf *PeerFile) string {
	t.Helper()
	b, err := json.Marshal(pf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "peers.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func basePeerFile() *PeerFile {
	return &PeerFile{
		Job: "t", P: 4, K: 2,
		Peers: []PeerSpec{{Name: "a", Lo: 0, Hi: 2}, {Name: "b", Lo: 2, Hi: 4}},
	}
}

// TestPeerFileLegacySequencerRoundTrip pins backward compatibility: a file
// with only the single legacy "sequencer" field loads unchanged and yields a
// one-element candidate list.
func TestPeerFileLegacySequencerRoundTrip(t *testing.T) {
	pf := basePeerFile()
	pf.Sequencer = "127.0.0.1:7700"
	got, err := LoadPeerFile(writeTempPeerFile(t, pf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sequencer != "127.0.0.1:7700" || len(got.Sequencers) != 0 {
		t.Fatalf("legacy form mutated on load: %+v", got)
	}
	if c := got.Candidates(); len(c) != 1 || c[0] != "127.0.0.1:7700" {
		t.Fatalf("Candidates() = %v, want the single legacy address", c)
	}
}

// TestPeerFileSequencersRoundTrip pins the new ordered-candidate form.
func TestPeerFileSequencersRoundTrip(t *testing.T) {
	pf := basePeerFile()
	pf.Sequencers = []string{"127.0.0.1:7700", " 127.0.0.1:7701 "}
	got, err := LoadPeerFile(writeTempPeerFile(t, pf))
	if err != nil {
		t.Fatal(err)
	}
	c := got.Candidates()
	if len(c) != 2 || c[0] != "127.0.0.1:7700" || c[1] != "127.0.0.1:7701" {
		t.Fatalf("Candidates() = %v, want two normalized addresses", c)
	}
}

// TestPeerFileBothFormsMustAgree: setting both fields is accepted only when
// the legacy field names the first candidate.
func TestPeerFileBothFormsMustAgree(t *testing.T) {
	pf := basePeerFile()
	pf.Sequencer = "127.0.0.1:7700"
	pf.Sequencers = []string{"127.0.0.1:7700", "127.0.0.1:7701"}
	if err := pf.Validate(); err != nil {
		t.Fatalf("agreeing forms rejected: %v", err)
	}
	pf.Sequencer = "127.0.0.1:9999"
	if err := pf.Validate(); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflicting forms: got %v", err)
	}
}

func TestPeerFileValidateSequencerCandidates(t *testing.T) {
	cases := []struct {
		name string
		seqs []string
		seq  string
		want string
	}{
		{name: "duplicate candidates", seqs: []string{"a:1", "b:2", "a:1"}, want: "duplicate sequencer candidate"},
		{name: "empty entry", seqs: []string{"a:1", "  "}, want: "empty entries"},
		{name: "empty after normalization", seqs: []string{"   "}, want: "no sequencer address"},
		{name: "nothing set", want: "no sequencer address"},
		{name: "whitespace legacy", seq: "  ", want: "no sequencer address"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pf := basePeerFile()
			pf.Sequencer, pf.Sequencers = tc.seq, tc.seqs
			err := pf.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
