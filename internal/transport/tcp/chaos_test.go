package tcp_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/core"
	"mcbnet/internal/mcb"
	"mcbnet/internal/transport"
	"mcbnet/internal/transport/tcp"
)

// These tests exercise the real distributed architecture: every peer runs
// its own redundant copy of the algorithm driver (core.Sort*, exactly as
// cmd/mcbpeer does) over the full inputs, with only the engine rounds and
// boundary exchanges collective. The drivers run as goroutines here instead
// of OS processes — the multi-process variant is the mcbpeer smoke test —
// but each owns a private client, checkpoint store and result table, so the
// coordination paths are the same.

func seededInputs(seed uint64, p, n int) [][]int64 {
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	inputs := make([][]int64, p)
	for i := 0; i < n; i++ {
		id := int(next() % uint64(p))
		inputs[id] = append(inputs[id], int64(next()%2001)-1000)
	}
	return inputs
}

func startSequencer(t *testing.T, job string, p int, wrap func(net.Conn) net.Conn) *tcp.Sequencer {
	t.Helper()
	seq, err := tcp.NewSequencer(tcp.SequencerOptions{Addr: "127.0.0.1:0", Job: job, P: p, Wrap: wrap})
	if err != nil {
		t.Fatalf("sequencer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); seq.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		seq.Close()
		<-done
	})
	return seq
}

type sortResult struct {
	outs [][]int64
	rep  *core.Report
	err  error
}

// TestSortReportParityFourPeers is the acceptance criterion: a 4-peer TCP
// loopback sort must produce outputs and a Report byte-identical to the
// in-process run for the same (seed, config) — with and without transport
// chaos (latency spikes and duplicate frames, which the protocol absorbs).
func TestSortReportParityFourPeers(t *testing.T) {
	const p, k, n = 8, 3, 96
	inputs := seededInputs(0xA11CE, p, n)
	opts := core.SortOptions{K: k, Algorithm: core.AlgoColumnsortGather, StallTimeout: 30 * time.Second}

	wantOuts, wantRep, err := core.Sort(inputs, opts)
	if err != nil {
		t.Fatalf("in-process sort: %v", err)
	}
	wantJSON, err := json.Marshal(wantRep)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		wrap func(net.Conn) net.Conn
	}{
		{"clean", nil},
		{"flaky-dup-latency", func(c net.Conn) net.Conn {
			return transport.WrapFlaky(c, transport.FlakyOptions{
				Seed: 99, DupRate: 0.05, LatencyRate: 0.08, Latency: time.Millisecond,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := startSequencer(t, "parity-"+tc.name, p, tc.wrap)
			results := make([]sortResult, 4)
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				lo, hi := i*2, i*2+2
				cl, err := tcp.NewClient(tcp.ClientOptions{
					Addr: seq.Addr(), Job: "parity-" + tc.name,
					Name: fmt.Sprintf("peer%d", i), Lo: lo, Hi: hi,
					JitterSeed: uint64(i + 1), Wrap: tc.wrap,
				})
				if err != nil {
					t.Fatalf("client %d: %v", i, err)
				}
				t.Cleanup(func() { cl.Close() })
				po := opts
				po.Transport = cl
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					outs, rep, err := core.Sort(inputs, po)
					results[i] = sortResult{outs, rep, err}
				}(i)
			}
			wg.Wait()
			for i, r := range results {
				if r.err != nil {
					t.Fatalf("peer %d: %v", i, r.err)
				}
				if !reflect.DeepEqual(r.outs, wantOuts) {
					t.Errorf("peer %d outputs diverged from the in-process run", i)
				}
				got, err := json.Marshal(r.rep)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(wantJSON) {
					t.Errorf("peer %d report diverged:\n got: %s\nwant: %s", i, got, wantJSON)
				}
			}
		})
	}
}

// TestSelectScalarParityTCP checks the processor-0 scalar exchange: every
// peer — owner of processor 0 or not — must report the same selected value
// and stats as the in-process run.
func TestSelectScalarParityTCP(t *testing.T) {
	const p, k, n = 6, 2, 72
	inputs := seededInputs(0xBEEF, p, n)
	opts := core.SelectOptions{K: k, D: n / 3, StallTimeout: 30 * time.Second}

	want, wantRep, err := core.Select(inputs, opts)
	if err != nil {
		t.Fatalf("in-process select: %v", err)
	}

	seq := startSequencer(t, "select-parity", p, nil)
	type res struct {
		val int64
		rep *core.SelectReport
		err error
	}
	results := make([]res, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		lo, hi := i*2, i*2+2
		cl, err := tcp.NewClient(tcp.ClientOptions{
			Addr: seq.Addr(), Job: "select-parity",
			Name: fmt.Sprintf("peer%d", i), Lo: lo, Hi: hi, JitterSeed: uint64(i + 1),
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		t.Cleanup(func() { cl.Close() })
		po := opts
		po.Transport = cl
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, rep, err := core.Select(inputs, po)
			results[i] = res{val, rep, err}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("peer %d: %v", i, r.err)
		}
		if r.val != want {
			t.Errorf("peer %d selected %d, in-process selected %d", i, r.val, want)
		}
		if r.rep.Stats.Cycles != wantRep.Stats.Cycles || r.rep.Stats.Messages != wantRep.Stats.Messages {
			t.Errorf("peer %d stats (%d cycles, %d messages) diverged from in-process (%d, %d)",
				i, r.rep.Stats.Cycles, r.rep.Stats.Messages, wantRep.Stats.Cycles, wantRep.Stats.Messages)
		}
	}
}

// cutAfter severs the connection after a fixed number of outgoing frames —
// the deterministic stand-in for a peer process dying mid-run.
type cutAfter struct {
	net.Conn
	left int64
}

func (c *cutAfter) Write(b []byte) (int, error) {
	if atomic.AddInt64(&c.left, -1) < 0 {
		c.Conn.Close()
		return 0, errors.New("cut: simulated peer death")
	}
	return c.Conn.Write(b)
}

// TestKillPeerCheckpointResumeTCP is the kill-and-rejoin acceptance story:
// peer b dies mid-run (its link is severed after a fixed frame budget), peer
// a's checkpointed retry loop re-proposes and waits, and a restarted peer b
// — a fresh client and driver over the same checkpoint directory, with
// Resume set — rejoins the job so both drivers complete from the last
// accepted phase boundary.
func TestKillPeerCheckpointResumeTCP(t *testing.T) {
	const p, k, n = 4, 2, 60
	const job = "kill-resume"
	inputs := seededInputs(0xD00D, p, n)
	wantOuts, _, err := core.Sort(inputs, core.SortOptions{K: k, Algorithm: core.AlgoColumnsortGather})
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}

	seq := startSequencer(t, job, p, nil)
	dirA, dirB := t.TempDir(), t.TempDir()

	mkOpts := func(store checkpoint.Store, resume bool, maxAttempts int, tr transport.Transport) core.SortOptions {
		return core.SortOptions{
			K: k, Algorithm: core.AlgoColumnsortGather,
			StallTimeout: 20 * time.Second,
			Retry:        mcb.RetryPolicy{MaxAttempts: maxAttempts, Backoff: 5 * time.Millisecond, JitterSeed: 3},
			Checkpoints:  store,
			Resume:       resume,
			Transport:    tr,
		}
	}
	newClient := func(name string, lo, hi int, wrap func(net.Conn) net.Conn) *tcp.Client {
		cl, err := tcp.NewClient(tcp.ClientOptions{
			Addr: seq.Addr(), Job: job, Name: name, Lo: lo, Hi: hi,
			JitterSeed: uint64(len(name)), Wrap: wrap,
		})
		if err != nil {
			t.Fatalf("client %s: %v", name, err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	storeA, err := checkpoint.NewDir(dirA)
	if err != nil {
		t.Fatal(err)
	}

	// Driver a: patient — retries through the partner's death.
	aDone := make(chan sortResult, 1)
	go func() {
		outs, rep, err := core.SortWithRetry(inputs, mkOpts(storeA, false, 8, newClient("a", 0, 2, nil)))
		aDone <- sortResult{outs, rep, err}
	}()

	// Driver b, first life: its link dies after cutFrames outgoing frames.
	// One attempt only — a real dead process does not retry.
	storeB1, err := checkpoint.NewDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	cut := func(c net.Conn) net.Conn { return &cutAfter{Conn: c, left: cutFrames} }
	_, _, err = core.SortWithRetry(inputs, mkOpts(storeB1, false, 1, newClient("b", 2, 4, cut)))
	if err == nil {
		t.Fatalf("peer b survived a link cut after %d frames; raise the workload or lower cutFrames", cutFrames)
	}
	if !mcb.Retryable(err) {
		t.Fatalf("peer b's death surfaced as non-retryable: %v", err)
	}
	t.Logf("peer b died as planned: %v", err)

	// Driver b, second life: fresh client, same checkpoint directory,
	// Resume set — must pick up from the last accepted boundary.
	storeB2, err := checkpoint.NewDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	outsB, repB, err := core.SortWithRetry(inputs, mkOpts(storeB2, true, 8, newClient("b", 2, 4, nil)))
	if err != nil {
		t.Fatalf("restarted peer b failed: %v", err)
	}
	a := <-aDone
	if a.err != nil {
		t.Fatalf("peer a failed: %v", a.err)
	}
	if !reflect.DeepEqual(outsB, wantOuts) || !reflect.DeepEqual(a.outs, wantOuts) {
		t.Error("kill-and-resume outputs diverged from the uninterrupted run")
	}
	if repB.Resumes < 1 {
		t.Errorf("restarted peer b reports %d resumes; the checkpoint was not used", repB.Resumes)
	}
	t.Logf("peer a: attempts=%d resumes=%d; peer b (restarted): attempts=%d resumes=%d phase=%q",
		a.rep.Attempts, a.rep.Resumes, repB.Attempts, repB.Resumes, repB.CheckpointPhase)
}

// cutFrames is the frame budget of peer b's first life in the kill test:
// past the first phase boundaries (so a checkpoint exists to resume from)
// but well before the run completes. Calibrated against the workload in
// TestKillPeerCheckpointResumeTCP, which fails loudly if the budget ever
// outlives the whole run.
const cutFrames = 260

// TestDegradeOnOutagePermanentCutTCP is the permanent-link-loss acceptance
// story: a scripted outage kills channel 1 forever, every peer's retry
// layer attributes the failure to the outage from the shipped fault
// counters, and the job completes on the k' = 1 survivors.
func TestDegradeOnOutagePermanentCutTCP(t *testing.T) {
	const p, k, n = 4, 2, 48
	const job = "degrade"
	inputs := seededInputs(0xCAFE, p, n)
	want, _, err := core.Sort(inputs, core.SortOptions{K: k, Algorithm: core.AlgoColumnsortGather})
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}

	seq := startSequencer(t, job, p, nil)
	results := make([]sortResult, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		lo, hi := i*2, i*2+2
		cl, err := tcp.NewClient(tcp.ClientOptions{
			Addr: seq.Addr(), Job: job, Name: fmt.Sprintf("peer%d", i),
			Lo: lo, Hi: hi, JitterSeed: uint64(i + 1),
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		t.Cleanup(func() { cl.Close() })
		opts := core.SortOptions{
			K: k, Algorithm: core.AlgoColumnsortGather,
			StallTimeout: 20 * time.Second, MaxCycles: 20000,
			Faults:    &mcb.FaultPlan{Outages: []mcb.Outage{{Ch: 1, From: 25, To: 1 << 50}}},
			Retry:     mcb.RetryPolicy{MaxAttempts: 5, Backoff: 5 * time.Millisecond, JitterSeed: 7, DegradeOnOutage: true},
			Transport: cl,
		}
		wg.Add(1)
		go func(i int, opts core.SortOptions) {
			defer wg.Done()
			outs, rep, err := core.SortWithRetry(inputs, opts)
			results[i] = sortResult{outs, rep, err}
		}(i, opts)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("peer %d: %v", i, r.err)
		}
		if !reflect.DeepEqual(r.outs, want) {
			t.Errorf("peer %d degraded outputs diverged", i)
		}
		if r.rep.DegradedK != 1 {
			t.Errorf("peer %d finished on k'=%d, want 1 (degradation did not fire)", i, r.rep.DegradedK)
		}
	}
}

// TestPartitionReconnectTCP severs a peer's link between rounds and checks
// the next round transparently re-dials and rejoins.
func TestPartitionReconnectTCP(t *testing.T) {
	const p, k, n = 4, 2, 40
	const job = "partition"
	inputs := seededInputs(0xF00D, p, n)
	want, _, err := core.Sort(inputs, core.SortOptions{K: k, Algorithm: core.AlgoRankSort})
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}

	seq := startSequencer(t, job, p, nil)
	clients := make([]*tcp.Client, 2)
	for i := range clients {
		cl, err := tcp.NewClient(tcp.ClientOptions{
			Addr: seq.Addr(), Job: job, Name: fmt.Sprintf("peer%d", i),
			Lo: i * 2, Hi: i*2 + 2, JitterSeed: uint64(i + 1),
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		t.Cleanup(func() { cl.Close() })
		clients[i] = cl
	}
	runBoth := func() error {
		errs := make(chan error, 2)
		for i := range clients {
			opts := core.SortOptions{K: k, Algorithm: core.AlgoRankSort, StallTimeout: 20 * time.Second, Transport: clients[i]}
			go func(opts core.SortOptions) {
				outs, _, err := core.Sort(inputs, opts)
				if err == nil && !reflect.DeepEqual(outs, want) {
					err = errors.New("outputs diverged")
				}
				errs <- err
			}(opts)
		}
		return errors.Join(<-errs, <-errs)
	}
	if err := runBoth(); err != nil {
		t.Fatalf("pre-partition run: %v", err)
	}
	clients[1].Kill() // partition: peer1's link drops between rounds
	if err := runBoth(); err != nil {
		t.Fatalf("post-partition run: %v", err)
	}
}

// TestFlakyCorruptionRecoveryTCP runs a checkpointed sort while every new
// connection gets a fresh deterministic chaos schedule that corrupts and
// cuts frames. Checksums turn corruption into link failures, the retry
// layer re-dials, and checkpoint resume keeps the accumulated progress, so
// the job must still complete with the right answer.
func TestFlakyCorruptionRecoveryTCP(t *testing.T) {
	const p, k, n = 4, 2, 48
	const job = "flaky-corrupt"
	inputs := seededInputs(0x5EED, p, n)
	want, _, err := core.Sort(inputs, core.SortOptions{K: k, Algorithm: core.AlgoColumnsortGather})
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}

	// Per-dial chaos reseeding: each reconnection draws a different fault
	// schedule (deterministic for the test as a whole), so retries are not
	// doomed to die at the same frame index forever.
	var dials uint64
	wrap := func(c net.Conn) net.Conn {
		d := atomic.AddUint64(&dials, 1)
		return transport.WrapFlaky(c, transport.FlakyOptions{
			Seed: 0x1234 + d, CorruptRate: 0.0015, CutRate: 0.0008,
		})
	}
	seq := startSequencer(t, job, p, nil)
	results := make([]sortResult, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cl, err := tcp.NewClient(tcp.ClientOptions{
			Addr: seq.Addr(), Job: job, Name: fmt.Sprintf("peer%d", i),
			Lo: i * 2, Hi: i*2 + 2, JitterSeed: uint64(i + 1), Wrap: wrap,
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		t.Cleanup(func() { cl.Close() })
		opts := core.SortOptions{
			K: k, Algorithm: core.AlgoColumnsortGather,
			StallTimeout: 20 * time.Second,
			Retry:        mcb.RetryPolicy{MaxAttempts: 30, Backoff: 2 * time.Millisecond, JitterSeed: uint64(i + 5)},
			Checkpoints:  checkpoint.NewMem(),
			Transport:    cl,
		}
		wg.Add(1)
		go func(i int, opts core.SortOptions) {
			defer wg.Done()
			outs, rep, err := core.SortWithRetry(inputs, opts)
			results[i] = sortResult{outs, rep, err}
		}(i, opts)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("peer %d never completed under chaos: %v", i, r.err)
		}
		if !reflect.DeepEqual(r.outs, want) {
			t.Errorf("peer %d outputs diverged under chaos", i)
		}
	}
	t.Logf("completed under chaos: peer0 attempts=%d resumes=%d, peer1 attempts=%d resumes=%d, dials=%d",
		results[0].rep.Attempts, results[0].rep.Resumes, results[1].rep.Attempts, results[1].rep.Resumes, atomic.LoadUint64(&dials))
}
