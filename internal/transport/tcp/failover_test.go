package tcp_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/core"
	"mcbnet/internal/mcb"
	"mcbnet/internal/transport/tcp"
)

// failoverLeakCheck is the transporttest leak-check pattern applied locally:
// snapshot the goroutine count and require it to settle back after the test
// and all its cleanups have run.
func failoverLeakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d live, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
	})
}

// startCandidate spins up one sequencer candidate and serves it until the
// test ends (or the test closes it earlier — Close is idempotent).
func startCandidate(t *testing.T, opt tcp.SequencerOptions) *tcp.Sequencer {
	t.Helper()
	seq, err := tcp.NewSequencer(opt)
	if err != nil {
		t.Fatalf("sequencer candidate %d: %v", opt.Index, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); seq.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		seq.Close()
		<-done
	})
	return seq
}

// normalizedReportJSON renders a sort Report with the recovery bookkeeping
// (attempts, resumes, checkpoint phase, replayed cycles) zeroed: everything
// left — the engine Stats, algorithm, phase breakdown — is the accepted
// computation, which failover must not change by a byte.
func normalizedReportJSON(t *testing.T, rep *core.Report) string {
	t.Helper()
	c := *rep
	c.Attempts, c.Resumes, c.CheckpointPhase, c.ReplayedCycles = 0, 0, "", 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSequencerFailoverChaos is the tentpole acceptance test: a 4-peer group
// with two sequencer candidates survives the active sequencer dying at a
// different checkpoint boundary in each iteration. Every peer must finish on
// the standby with (a) outputs and normalized Report byte-identical to the
// fault-free baseline and (b) strictly fewer replayed cycles than a
// from-scratch retry would burn (the whole accepted run).
func TestSequencerFailoverChaos(t *testing.T) {
	const p, k, n = 8, 3, 96
	inputs := seededInputs(0xFA110, p, n)
	// The baseline is a fault-free run of the same checkpointed driver the
	// peers use, so the comparison is like-for-like: failover must not change
	// a byte of the accepted computation.
	wantOuts, wantRep, err := core.SortWithRetry(inputs, core.SortOptions{
		K: k, Algorithm: core.AlgoColumnsortGather,
		Retry:       mcb.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond},
		Checkpoints: checkpoint.NewMem(),
	})
	if err != nil {
		t.Fatalf("in-process baseline: %v", err)
	}
	wantJSON := normalizedReportJSON(t, wantRep)

	failedOver := 0
	for it := 0; it < 3; it++ {
		killPhase := 1 + it
		t.Run(fmt.Sprintf("kill-at-phase-%d", killPhase), func(t *testing.T) {
			job := fmt.Sprintf("seq-failover-%d", it)
			active := startCandidate(t, tcp.SequencerOptions{
				Addr: "127.0.0.1:0", Job: job, P: p,
				Index: 0, Candidates: 2, GatherTimeout: 20 * time.Second,
			})
			standby := startCandidate(t, tcp.SequencerOptions{
				Addr: "127.0.0.1:0", Job: job, P: p,
				Index: 1, Candidates: 2, GatherTimeout: 20 * time.Second,
			})
			addrs := []string{active.Addr(), standby.Addr()}

			stores := make([]*checkpoint.MemStore, 4)
			clients := make([]*tcp.Client, 4)
			for i := range clients {
				stores[i] = checkpoint.NewMem()
				cl, err := tcp.NewClient(tcp.ClientOptions{
					Addrs: addrs, Job: job,
					Name: fmt.Sprintf("peer%d", i), Lo: i * 2, Hi: i*2 + 2,
					DialBackoff: 5 * time.Millisecond, JitterSeed: uint64(i + 1),
				})
				if err != nil {
					t.Fatalf("client %d: %v", i, err)
				}
				t.Cleanup(func() { cl.Close() })
				clients[i] = cl
			}

			results := make([]sortResult, 4)
			var wg sync.WaitGroup
			for i := range clients {
				opts := core.SortOptions{
					K: k, Algorithm: core.AlgoColumnsortGather,
					StallTimeout: 20 * time.Second,
					Retry:        mcb.RetryPolicy{MaxAttempts: 10, Backoff: 5 * time.Millisecond, JitterSeed: uint64(it*10 + i + 1)},
					Checkpoints:  stores[i],
					Transport:    clients[i],
				}
				wg.Add(1)
				go func(i int, opts core.SortOptions) {
					defer wg.Done()
					outs, rep, err := core.SortWithRetry(inputs, opts)
					results[i] = sortResult{outs, rep, err}
				}(i, opts)
			}

			// The killer: once peer 0 has a durable phase >= killPhase
			// checkpoint — proof the run is mid-flight with resumable state —
			// take the active sequencer down hard.
			runDone := make(chan struct{})
			killed := make(chan bool, 1)
			go func() {
				for {
					select {
					case <-runDone:
						killed <- false
						return
					default:
					}
					if snap, err := stores[0].Latest(); err == nil && snap != nil && snap.Phase >= killPhase {
						active.Close()
						killed <- true
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
			wg.Wait()
			close(runDone)

			for i, r := range results {
				if r.err != nil {
					t.Fatalf("peer %d did not survive the sequencer kill: %v", i, r.err)
				}
				if !reflect.DeepEqual(r.outs, wantOuts) {
					t.Errorf("peer %d outputs diverged from the fault-free baseline", i)
				}
				if got := normalizedReportJSON(t, r.rep); got != wantJSON {
					t.Errorf("peer %d report diverged from the fault-free baseline:\n got: %s\nwant: %s", i, got, wantJSON)
				}
				// The recovery-cost bound: checkpointed failover replays only
				// the segment in flight when the sequencer died, strictly less
				// than the whole run a from-scratch retry would repeat.
				if r.rep.ReplayedCycles >= wantRep.Stats.Cycles {
					t.Errorf("peer %d replayed %d cycles, not less than the full run's %d (from-scratch cost)",
						i, r.rep.ReplayedCycles, wantRep.Stats.Cycles)
				}
			}
			if <-killed {
				failedOver++
				for i, cl := range clients {
					if e := cl.Epoch(); e != 1 {
						t.Errorf("client %d finished at epoch %d, want 1 (on the standby)", i, e)
					}
				}
				t.Logf("failover engaged at phase %d: peer0 attempts=%d resumes=%d replayed=%d (full run: %d cycles)",
					killPhase, results[0].rep.Attempts, results[0].rep.Resumes, results[0].rep.ReplayedCycles, wantRep.Stats.Cycles)
			} else {
				t.Logf("run completed before the phase-%d kill landed; no failover this iteration", killPhase)
			}
		})
	}
	if failedOver == 0 {
		t.Fatal("no iteration actually failed over; the kill gating never fired mid-run")
	}
}

// TestSequencerFailoverWrapAround exercises the epoch wrap-around: candidate
// 0 dies (group moves to epoch 1 on candidate 1), is restarted on the same
// address, and then candidate 1 dies mid-run — the group must come back
// around to the restarted candidate 0, which adopts epoch 2 and fences the
// old generation.
func TestSequencerFailoverWrapAround(t *testing.T) {
	const p, k, n = 4, 2, 60
	const job = "seq-wrap"
	inputs := seededInputs(0x44A9, p, n)
	wantOuts, _, err := core.SortWithRetry(inputs, core.SortOptions{
		K: k, Algorithm: core.AlgoColumnsortGather,
		Retry:       mcb.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond},
		Checkpoints: checkpoint.NewMem(),
	})
	if err != nil {
		t.Fatalf("in-process baseline: %v", err)
	}

	mkSeq := func(addr string, index int) *tcp.Sequencer {
		return startCandidate(t, tcp.SequencerOptions{
			Addr: addr, Job: job, P: p,
			Index: index, Candidates: 2, GatherTimeout: 20 * time.Second,
		})
	}
	cand0 := mkSeq("127.0.0.1:0", 0)
	addr0 := cand0.Addr()
	cand1 := mkSeq("127.0.0.1:0", 1)
	addrs := []string{addr0, cand1.Addr()}

	run := func(tag string, stores []*checkpoint.MemStore, clients []*tcp.Client, kill func(chan struct{}) bool) bool {
		t.Helper()
		results := make([]sortResult, len(clients))
		var wg sync.WaitGroup
		for i := range clients {
			opts := core.SortOptions{
				K: k, Algorithm: core.AlgoColumnsortGather,
				StallTimeout: 20 * time.Second,
				Retry:        mcb.RetryPolicy{MaxAttempts: 10, Backoff: 5 * time.Millisecond, JitterSeed: uint64(i + 1)},
				Checkpoints:  stores[i],
				Transport:    clients[i],
			}
			wg.Add(1)
			go func(i int, opts core.SortOptions) {
				defer wg.Done()
				outs, rep, err := core.SortWithRetry(inputs, opts)
				results[i] = sortResult{outs, rep, err}
			}(i, opts)
		}
		runDone := make(chan struct{})
		killedC := make(chan bool, 1)
		go func() { killedC <- kill(runDone) }()
		wg.Wait()
		close(runDone)
		for i, r := range results {
			if r.err != nil {
				t.Fatalf("%s: peer %d failed: %v", tag, i, r.err)
			}
			if !reflect.DeepEqual(r.outs, wantOuts) {
				t.Errorf("%s: peer %d outputs diverged", tag, i)
			}
		}
		return <-killedC
	}
	mkGroup := func(startEpoch uint64) ([]*checkpoint.MemStore, []*tcp.Client) {
		stores := make([]*checkpoint.MemStore, 2)
		clients := make([]*tcp.Client, 2)
		for i := range clients {
			stores[i] = checkpoint.NewMem()
			cl, err := tcp.NewClient(tcp.ClientOptions{
				Addrs: addrs, Job: job, StartEpoch: startEpoch,
				Name: fmt.Sprintf("peer%d", i), Lo: i * 2, Hi: i*2 + 2,
				DialBackoff: 5 * time.Millisecond, JitterSeed: uint64(i + 1),
			})
			if err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
			t.Cleanup(func() { cl.Close() })
			clients[i] = cl
		}
		return stores, clients
	}
	killWhenCheckpointed := func(seq *tcp.Sequencer, store *checkpoint.MemStore) func(chan struct{}) bool {
		return func(runDone chan struct{}) bool {
			for {
				select {
				case <-runDone:
					return false
				default:
				}
				if snap, err := store.Latest(); err == nil && snap != nil && snap.Phase >= 1 {
					seq.Close()
					return true
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}

	// Run 1: candidate 0 dies; the group finishes at epoch 1 on candidate 1.
	stores, clients := mkGroup(0)
	if run("run1", stores, clients, killWhenCheckpointed(cand0, stores[0])) {
		for i, cl := range clients {
			if e := cl.Epoch(); e != 1 {
				t.Errorf("run1: client %d at epoch %d, want 1", i, e)
			}
		}
	} else {
		t.Log("run1 completed before the kill landed; wrap-around is still exercised by run2")
		cand0.Close()
	}
	// Run 2 reuses the peer names, so run 1's sessions must be gone first.
	for _, cl := range clients {
		cl.Close()
	}

	// Candidate 0 comes back on the same address — as far as the peer file
	// is concerned, nothing changed.
	mkSeq(addr0, 0)

	// Run 2: a fresh group starts on candidate 1 (epoch 1, where run 1
	// ended); candidate 1 dies and the sweep wraps around to the restarted
	// candidate 0, which must adopt epoch 2 — fencing its own stale start.
	stores2, clients2 := mkGroup(1)
	killed2 := run("run2", stores2, clients2, killWhenCheckpointed(cand1, stores2[0]))
	if killed2 {
		for i, cl := range clients2 {
			if e := cl.Epoch(); e != 2 {
				t.Errorf("run2: client %d at epoch %d, want 2 (wrap-around)", i, e)
			}
		}
	}
	t.Logf("run2 wrapped=%v, epochs: %d %d", killed2, clients2[0].Epoch(), clients2[1].Epoch())
}

// TestEpochAdoptionFencingAndCatchUp drives the three epoch handshake rules
// directly: a hello with a higher (correctly mapped) epoch is adopted and
// fences the older generation's connections; the fenced peer's next dial is
// rejected as stale with the group's epoch in the welcome; and the peer then
// catches up and rejoins at the new epoch.
func TestEpochAdoptionFencingAndCatchUp(t *testing.T) {
	failoverLeakCheck(t)
	const p = 2
	const job = "epoch-rules"
	seq := startCandidate(t, tcp.SequencerOptions{
		Addr: "127.0.0.1:0", Job: job, P: p,
		Index: 0, Candidates: 2, GatherTimeout: 15 * time.Second,
	})
	// Candidate 1 is never dialed in this test: every epoch involved (0 and
	// 2) maps to candidate 0.
	addrs := []string{seq.Addr(), "127.0.0.1:1"}
	mkClient := func(name string, lo, hi int, startEpoch uint64) *tcp.Client {
		cl, err := tcp.NewClient(tcp.ClientOptions{
			Addrs: addrs, Job: job, Name: name, Lo: lo, Hi: hi,
			StartEpoch: startEpoch, DialBackoff: 5 * time.Millisecond, JitterSeed: uint64(lo + 1),
		})
		if err != nil {
			t.Fatalf("client %s: %v", name, err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	exchange := func(cl *tcp.Client, tag string, blob []byte, errC chan<- error, out *[][]byte) {
		blobs := make([][]byte, p)
		for i := range blobs {
			blobs[i] = blob
		}
		got, err := cl.Exchange(tag, blobs)
		if err == nil {
			*out = got
		}
		errC <- err
	}

	// Epoch 0: a plain collective exchange between x and y.
	x := mkClient("x", 0, 1, 0)
	y := mkClient("y", 1, 2, 0)
	errC := make(chan error, 2)
	var gotX, gotY [][]byte
	go exchange(x, "t1", []byte("x1"), errC, &gotX)
	go exchange(y, "t1", []byte("y1"), errC, &gotY)
	if err := <-errC; err != nil {
		t.Fatalf("epoch-0 exchange: %v", err)
	}
	if err := <-errC; err != nil {
		t.Fatalf("epoch-0 exchange: %v", err)
	}
	if seq.Epoch() != 0 || x.Epoch() != 0 {
		t.Fatalf("epoch drifted before the test began: seq=%d x=%d", seq.Epoch(), x.Epoch())
	}

	// y leaves; y2 arrives claiming epoch 2 (2 mod 2 = candidate 0, so the
	// claim maps here and must be adopted, fencing x's epoch-0 session).
	y.Close()
	y2 := mkClient("y2", 1, 2, 2)
	var gotX2, gotY2 [][]byte
	y2done := make(chan error, 1)
	go exchange(y2, "t2", []byte("y2"), y2done, &gotY2)

	// x's stranded session dies under it (fenced); its retries must walk the
	// stale-reject catch-up path and complete the exchange at epoch 2.
	deadline := time.Now().Add(20 * time.Second)
	for {
		xErr := make(chan error, 1)
		go exchange(x, "t2", []byte("x2"), xErr, &gotX2)
		err := <-xErr
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("x never rejoined after fencing: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-y2done; err != nil {
		t.Fatalf("y2 exchange: %v", err)
	}
	if string(gotX2[0]) != "x2" || string(gotX2[1]) != "y2" {
		t.Errorf("epoch-2 exchange merged wrong blobs: %q %q", gotX2[0], gotX2[1])
	}
	if seq.Epoch() != 2 || x.Epoch() != 2 || y2.Epoch() != 2 {
		t.Errorf("epochs after catch-up: seq=%d x=%d y2=%d, want all 2", seq.Epoch(), x.Epoch(), y2.Epoch())
	}
}

// TestStaleEpochHelloRejected pins the fencing floor: a sequencer that has
// moved to a newer epoch refuses an older-epoch hello outright (the zombie
// client cannot rejoin the past), and the rejection is what carries the
// current epoch forward.
func TestStaleEpochHelloRejected(t *testing.T) {
	failoverLeakCheck(t)
	const job = "stale-hello"
	seq := startCandidate(t, tcp.SequencerOptions{
		Addr: "127.0.0.1:0", Job: job, P: 2,
		Index: 0, Candidates: 3, GatherTimeout: 10 * time.Second,
	})
	addrs := []string{seq.Addr(), "127.0.0.1:1", "127.0.0.1:2"}

	// Move the sequencer to epoch 3 (3 mod 3 = candidate 0, so the claim
	// maps here and is adopted at the handshake).
	mover, err := tcp.NewClient(tcp.ClientOptions{
		Addrs: addrs, Job: job, Name: "mover", Lo: 0, Hi: 1,
		StartEpoch: 3, DialBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	moverDone := make(chan struct{})
	go func() {
		defer close(moverDone)
		blobs := [][]byte{[]byte("m"), nil}
		mover.Exchange("move", blobs) // completes once "late" joins and proposes
	}()
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return seq.Epoch() == 3 }, "epoch adoption")

	// A client dialing at epoch 0 gets a stale rejection whose welcome
	// carries epoch 3; it must adopt it, redial the candidate epoch 3 maps
	// to (this one) and join — proving the rejection is what carries the
	// group's position to laggards.
	late, err := tcp.NewClient(tcp.ClientOptions{
		Addrs: addrs, Job: job, Name: "late", Lo: 1, Hi: 2,
		DialBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lateDone := make(chan struct{})
	go func() {
		defer close(lateDone)
		blobs := [][]byte{nil, []byte("l")}
		late.Exchange("move", blobs)
	}()
	waitFor(func() bool { return late.Epoch() == 3 }, "stale-reject catch-up")

	mover.Close()
	late.Close()
	<-moverDone
	<-lateDone
}

// TestSequencerCloseRacingHandshake: Close() while connections sit in the
// hello wait must return promptly (not wait out PeerTimeout) and leave no
// goroutines behind.
func TestSequencerCloseRacingHandshake(t *testing.T) {
	failoverLeakCheck(t)
	seq, err := tcp.NewSequencer(tcp.SequencerOptions{
		Addr: "127.0.0.1:0", Job: "close-race", P: 2,
		PeerTimeout: 30 * time.Second, // without inflight tracking Close would block this long
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); seq.Serve(context.Background()) }()

	conns := make([]net.Conn, 3)
	for i := range conns {
		c, err := net.Dial("tcp", seq.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the accept loop hand them to handshakes

	start := time.Now()
	seq.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("Close took %v with handshakes in flight; inflight connections are not being cut", d)
	}
	<-done
}

// TestSequencerCloseMidRound: Close() while an engine round is executing
// must tear everything down without leaking relay or connection goroutines.
func TestSequencerCloseMidRound(t *testing.T) {
	failoverLeakCheck(t)
	const p, k, n = 4, 2, 4096
	const job = "close-mid-round"
	inputs := seededInputs(0xC105E, p, n)
	seq := startSequencer(t, job, p, nil)

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cl, err := tcp.NewClient(tcp.ClientOptions{
			Addr: seq.Addr(), Job: job, Name: fmt.Sprintf("peer%d", i),
			Lo: i * 2, Hi: i*2 + 2, DialAttempts: 1, JitterSeed: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		opts := core.SortOptions{K: k, Algorithm: core.AlgoColumnsortGather, StallTimeout: 20 * time.Second, Transport: cl}
		go func() {
			_, _, err := core.Sort(inputs, opts)
			results <- err
		}()
	}
	time.Sleep(250 * time.Millisecond) // deep enough into the run to be mid-round
	seq.Close()
	for i := 0; i < 2; i++ {
		if err := <-results; err == nil {
			t.Error("driver finished cleanly across a sequencer close; the kill landed after completion — raise n")
		}
	}
}
