package tcp

import (
	"context"
	"net"
	"time"

	"mcbnet/internal/mcb"
	"mcbnet/internal/transport"
)

// dialDefaults for ClientOptions' dial knobs.
const (
	defDialAttempts = 8
	defDialBackoff  = 50 * time.Millisecond
	defDialTimeout  = 2 * time.Second
)

// dial connects to addr with capped exponential backoff and deterministic
// seeded jitter — the exact RetryPolicy.BackoffFor schedule, so a fleet of
// peers restarting together (the thundering-herd case the jitter exists for)
// spreads its reconnections. Honors ctx between and during attempts.
func dial(ctx context.Context, addr string, attempts int, backoff time.Duration, jitterSeed uint64, timeout time.Duration) (net.Conn, error) {
	if attempts <= 0 {
		attempts = defDialAttempts
	}
	if backoff <= 0 {
		backoff = defDialBackoff
	}
	if timeout <= 0 {
		timeout = defDialTimeout
	}
	pol := mcb.RetryPolicy{Backoff: backoff, JitterSeed: jitterSeed}
	d := net.Dialer{Timeout: timeout}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			t := time.NewTimer(pol.BackoffFor(a - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, &transport.LinkError{Peer: addr, Op: "dial", Err: ctx.Err()}
			}
		}
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, &transport.LinkError{Peer: addr, Op: "dial", Err: lastErr}
}
