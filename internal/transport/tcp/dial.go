package tcp

import (
	"context"
	"net"
	"time"
)

// dialDefaults for ClientOptions' dial knobs.
const (
	defDialAttempts = 8
	defDialBackoff  = 50 * time.Millisecond
	defDialTimeout  = 2 * time.Second
)

// dialOnce makes a single connection attempt to addr. The retry sweep —
// capped exponential backoff with deterministic seeded jitter, advancing
// down the sequencer candidate list on unreachable addresses — lives in
// Client.ensure, which owns the epoch state the sweep updates.
func dialOnce(ctx context.Context, addr string, timeout time.Duration) (net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	return d.DialContext(ctx, "tcp", addr)
}
