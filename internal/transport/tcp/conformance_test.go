package tcp_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"mcbnet/internal/transport"
	"mcbnet/internal/transport/tcp"
	"mcbnet/internal/transport/transporttest"
)

// startGroup spins up a sequencer plus `peers` clients covering [0, p) on
// loopback, composed into a transporttest.Group. Everything is torn down
// via t.Cleanup; wrap (optional) injects connection chaos on both sides of
// every link.
func startGroup(t *testing.T, peers, p int, wrap func(net.Conn) net.Conn) *transporttest.Group {
	return startGroupCandidates(t, peers, p, 1, wrap)
}

// startGroupCandidates is startGroup with `cands` sequencer candidates: all
// traffic stays at epoch 0 on candidate 0, and the idle standbys must not
// perturb any conformance guarantee.
func startGroupCandidates(t *testing.T, peers, p, cands int, wrap func(net.Conn) net.Conn) *transporttest.Group {
	t.Helper()
	addrs := make([]string, cands)
	for idx := 0; idx < cands; idx++ {
		seq, err := tcp.NewSequencer(tcp.SequencerOptions{
			Addr: "127.0.0.1:0", Job: "conformance", P: p,
			Index: idx, Candidates: cands,
			Wrap: wrap,
		})
		if err != nil {
			t.Fatalf("sequencer candidate %d: %v", idx, err)
		}
		addrs[idx] = seq.Addr()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); seq.Serve(ctx) }()
		t.Cleanup(func() {
			cancel()
			seq.Close()
			<-done
		})
	}

	g := &transporttest.Group{}
	lo := 0
	for i := 0; i < peers; i++ {
		hi := (p * (i + 1)) / peers
		cl, err := tcp.NewClient(tcp.ClientOptions{
			Addrs: addrs, Job: "conformance",
			Name: fmt.Sprintf("peer%d", i), Lo: lo, Hi: hi,
			JitterSeed: uint64(i + 1),
			Wrap:       wrap,
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		g.Members = append(g.Members, cl)
		lo = hi
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func tcpFactory(peers int, wrap func(net.Conn) net.Conn) transporttest.Factory {
	return func(t *testing.T, p, k int) transport.Transport {
		return startGroup(t, peers, p, wrap)
	}
}

// TestTCPConformance runs the transport conformance suite over a real
// sequencer and three peer processes' worth of clients on loopback.
func TestTCPConformance(t *testing.T) {
	transporttest.RunSuite(t, tcpFactory(3, nil))
}

// TestTCPConformanceTwoCandidates reruns the suite with a standby sequencer
// candidate configured: the failover machinery must be fully inert on a
// fault-free run — same epochs, same reports, no stray goroutines.
func TestTCPConformanceTwoCandidates(t *testing.T) {
	transporttest.RunSuite(t, func(t *testing.T, p, k int) transport.Transport {
		return startGroupCandidates(t, 3, p, 2, nil)
	})
}

// TestTCPConformanceFlaky reruns the suite with deterministic latency
// spikes and duplicated frames on every link: both are absorbed by the
// protocol (duplicates fall to the sequence window, latency stays within
// deadlines), so every conformance guarantee — including byte-identical
// reports — must still hold.
func TestTCPConformanceFlaky(t *testing.T) {
	wrap := func(c net.Conn) net.Conn {
		return transport.WrapFlaky(c, transport.FlakyOptions{
			Seed:        7,
			DupRate:     0.05,
			LatencyRate: 0.10,
			Latency:     2 * time.Millisecond,
		})
	}
	transporttest.RunSuite(t, tcpFactory(3, wrap))
}
