package tcp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"mcbnet/internal/mcb"
	"mcbnet/internal/transport"
)

// ClientOptions configures one peer process of a distributed run.
type ClientOptions struct {
	// Addr is the sequencer address (legacy single-candidate form).
	Addr string
	// Addrs is the ordered sequencer candidate list from the peer file;
	// epoch e is served by Addrs[e mod len(Addrs)]. When set it supersedes
	// Addr. A single candidate disables failover: the client stays at epoch
	// 0 and retries the one address, exactly the pre-failover behavior.
	Addrs []string
	// StartEpoch is the epoch the client begins dialing at (0 for a fresh
	// run; a restarted peer may be handed the group's last known epoch).
	StartEpoch uint64
	// Job and Name identify this peer to the sequencer; Lo/Hi is the owned
	// processor range [Lo, Hi).
	Job, Name string
	Lo, Hi    int
	// Resume marks the hello of a restarted peer rejoining a run.
	Resume bool
	// Dial robustness: attempts (default 8), base backoff (default 50ms,
	// doubling, capped), per-attempt timeout (default 2s). JitterSeed
	// de-synchronizes a herd of reconnecting peers deterministically; zero
	// keeps the undithered schedule.
	DialAttempts int
	DialBackoff  time.Duration
	DialTimeout  time.Duration
	JitterSeed   uint64
	// HeartbeatEvery paces liveness frames (default 500ms); PeerTimeout is
	// the per-read deadline on the sequencer link (default 5s); WriteTimeout
	// bounds each frame write (default 10s).
	HeartbeatEvery, PeerTimeout, WriteTimeout time.Duration
	// Wrap, when non-nil, wraps the dialed connection (transport.WrapFlaky
	// in chaos tests).
	Wrap func(net.Conn) net.Conn
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *ClientOptions) defaults() {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 500 * time.Millisecond
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
}

// Client is the peer-side Transport: Run executes the owned processors'
// programs locally against remote Nodes whose cycle ops travel to the
// sequencer, and Exchange rendezvouses boundary state through it. A Client
// survives connection loss between rounds: the next Run or Exchange re-dials
// (with backoff + jitter) and rejoins, which is what makes a killed and
// restarted peer able to resume a checkpointed run.
type Client struct {
	opt   ClientOptions
	cands []string // normalized candidate list; immutable

	mu    sync.Mutex
	sess  *session
	epoch uint64 // current sequencer epoch; candidate = cands[epoch mod C]
}

// NewClient returns a client; the connection is established lazily by the
// first Run or Exchange.
func NewClient(opt ClientOptions) (*Client, error) {
	opt.defaults()
	src := opt.Addrs
	if len(src) == 0 && opt.Addr != "" {
		src = []string{opt.Addr}
	}
	cands := make([]string, 0, len(src))
	for _, a := range src {
		if a = strings.TrimSpace(a); a != "" {
			cands = append(cands, a)
		}
	}
	if len(cands) == 0 || opt.Hi <= opt.Lo || opt.Lo < 0 {
		return nil, fmt.Errorf("tcp: bad client options: addrs %v, range [%d, %d)", src, opt.Lo, opt.Hi)
	}
	return &Client{opt: opt, cands: cands, epoch: opt.StartEpoch}, nil
}

// Epoch returns the client's current sequencer epoch (diagnostics and tests).
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Owns reports whether proc's program executes in this process.
func (c *Client) Owns(proc int) bool { return proc >= c.opt.Lo && proc < c.opt.Hi }

// InProcess reports false: peers hold only their own processors.
func (c *Client) InProcess() bool { return false }

func (c *Client) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// Close says goodbye to the sequencer (best effort) and drops the link.
func (c *Client) Close() error {
	c.mu.Lock()
	s := c.sess
	c.sess = nil
	c.mu.Unlock()
	if s == nil {
		return nil
	}
	s.enqueue(fBye, nil)
	// Give the writer a moment to flush the bye before tearing down.
	timer := time.NewTimer(100 * time.Millisecond)
	select {
	case <-s.dead:
	case <-timer.C:
	}
	timer.Stop()
	s.teardown(nil)
	return nil
}

// session is one live connection to the sequencer.
type session struct {
	cl    *Client
	c     net.Conn
	epoch uint64 // the epoch this session was admitted at; immutable
	p     int    // group size from the welcome; immutable after handshake
	out   chan outMsg

	dead     chan struct{}
	deadOnce sync.Once
	deadMu   sync.Mutex
	deadErr  error

	// Control-frame routing: the client protocol is lock-step (one
	// outstanding request), so capacity-1 channels drained before each
	// request suffice.
	startC  chan startBody
	doneC   chan doneBody
	xchgC   chan xchgAllBody
	failC   chan *wireError
	welcome chan welcomeBody // lazily created; rmu-guarded

	// Active round, for fResults routing.
	rmu   sync.Mutex
	round *clientRound

	wg sync.WaitGroup
}

// clientRound is the peer-local state of one engine round.
type clientRound struct {
	num   uint64
	lo    int
	resC  []chan wireRes // per owned proc, cap 1
	downC chan struct{}  // closed when the round is over (fDone, link loss)
	once  sync.Once
	err   error // set before downC closes on abnormal teardown
}

func (r *clientRound) down(err error) {
	r.once.Do(func() {
		r.err = err
		close(r.downC)
	})
}

// staleEpochError reports a handshake rejection that carried the group's
// newer epoch: the client should adopt it and redial the candidate that
// epoch maps to.
type staleEpochError struct {
	epoch  uint64
	reason string
}

func (e *staleEpochError) Error() string {
	return fmt.Sprintf("tcp: stale epoch, group is at epoch %d: %s", e.epoch, e.reason)
}

// transientRejectError reports a handshake rejection the sequencer flagged as
// about-to-settle (e.g. this peer's previous connection not yet reaped after
// a teardown-and-redial). The sweep retries the same candidate.
type transientRejectError struct {
	reason string
}

func (e *transientRejectError) Error() string {
	return fmt.Sprintf("tcp: transient rejection: %s", e.reason)
}

// ensure returns the live session, dialing and handshaking if needed. The
// dial sweep is the failover state machine: each attempt targets the current
// epoch's candidate; an unreachable candidate advances the epoch (moving to
// the next candidate) when standbys exist, and a stale-epoch rejection jumps
// straight to the epoch the rejecting sequencer reported. A plain reconnect
// to a reachable sequencer never bumps the epoch, so single-sequencer groups
// keep the exact pre-failover redial behavior.
func (c *Client) ensure(ctx context.Context) (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess != nil {
		select {
		case <-c.sess.dead:
			c.sess = nil // fall through to re-dial
		default:
			return c.sess, nil
		}
	}
	attempts, backoff, timeout := c.opt.DialAttempts, c.opt.DialBackoff, c.opt.DialTimeout
	if attempts <= 0 {
		attempts = defDialAttempts
	}
	if backoff <= 0 {
		backoff = defDialBackoff
	}
	if timeout <= 0 {
		timeout = defDialTimeout
	}
	pol := mcb.RetryPolicy{Backoff: backoff, JitterSeed: c.opt.JitterSeed}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			t := time.NewTimer(pol.BackoffFor(a - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, &transport.LinkError{Peer: "sequencer", Op: "dial", Err: ctx.Err()}
			}
		}
		addr := c.cands[c.epoch%uint64(len(c.cands))]
		conn, err := dialOnce(ctx, addr, timeout)
		if err != nil {
			lastErr = &transport.LinkError{Peer: addr, Op: "dial", Err: err}
			if ctx.Err() != nil {
				return nil, lastErr
			}
			if len(c.cands) > 1 {
				c.epoch++
				c.logf("candidate %s unreachable; advancing to epoch %d (%s)",
					addr, c.epoch, c.cands[c.epoch%uint64(len(c.cands))])
			}
			continue
		}
		s, err := c.handshake(ctx, conn, addr)
		if err == nil {
			c.sess = s
			return s, nil
		}
		lastErr = err
		var stale *staleEpochError
		if errors.As(err, &stale) {
			c.logf("sequencer %s says the group is at epoch %d; catching up", addr, stale.epoch)
			c.epoch = stale.epoch
			continue
		}
		var transient *transientRejectError
		if errors.As(err, &transient) {
			c.logf("sequencer %s: %s; retrying", addr, transient.reason)
			continue
		}
		var link *transport.LinkError
		if errors.As(err, &link) {
			// The link died mid-handshake — a sequencer shutting down can
			// accept and then drop the connection. Same treatment as an
			// unreachable candidate.
			if ctx.Err() != nil {
				return nil, lastErr
			}
			if len(c.cands) > 1 {
				c.epoch++
				c.logf("candidate %s dropped the handshake; advancing to epoch %d (%s)",
					addr, c.epoch, c.cands[c.epoch%uint64(len(c.cands))])
			}
			continue
		}
		// Any other rejection (job mismatch, duplicate name, misconfigured
		// candidate list) is fatal: retrying would be rejected identically.
		return nil, err
	}
	return nil, lastErr
}

// handshake runs the hello/welcome exchange on a freshly dialed connection.
// Called with c.mu held.
func (c *Client) handshake(ctx context.Context, conn net.Conn, addr string) (*session, error) {
	if c.opt.Wrap != nil {
		conn = c.opt.Wrap(conn)
	}
	s := &session{
		cl: c, c: conn, epoch: c.epoch,
		out:    make(chan outMsg, 512),
		dead:   make(chan struct{}),
		startC: make(chan startBody, 1),
		doneC:  make(chan doneBody, 1),
		xchgC:  make(chan xchgAllBody, 1),
		failC:  make(chan *wireError, 1),
	}
	s.wg.Add(2)
	go s.writeLoop()
	go s.readLoop()
	s.enqueue(fHello, marshal(helloBody{
		Job: c.opt.Job, Name: c.opt.Name, Lo: c.opt.Lo, Hi: c.opt.Hi, Resume: c.opt.Resume,
	}))
	welcome, err := s.awaitWelcome(ctx)
	if err != nil {
		s.teardown(err)
		return nil, err
	}
	if !welcome.OK {
		err := fmt.Errorf("tcp: sequencer %s rejected peer %q: %s", addr, c.opt.Name, welcome.Reason)
		s.teardown(err)
		if welcome.Epoch > s.epoch {
			return nil, &staleEpochError{epoch: welcome.Epoch, reason: welcome.Reason}
		}
		if welcome.Retry {
			return nil, &transientRejectError{reason: welcome.Reason}
		}
		return nil, err
	}
	s.p = welcome.P
	c.logf("joined %s as %q at epoch %d (procs [%d, %d) of %d)", addr, c.opt.Name, s.epoch, c.opt.Lo, c.opt.Hi, welcome.P)
	return s, nil
}

// noteFail inspects a sequencer-reported step failure for the signature of a
// group that has moved to another sequencer behind this client's back: a
// gather stall whose missing processors are a strict majority of the network.
// A majority cannot be waiting here while making progress elsewhere, so the
// client abandons the session and advances the epoch; the survivors of an
// ordinary peer kill (missing procs a minority) stay put. A peer owning a
// minority of processors stranded alone on a zombie is the documented limit
// of the heuristic — it waits for the gather timeout each attempt.
func (c *Client) noteFail(s *session, err error) {
	var st *mcb.StallError
	if !errors.As(err, &st) || st.Cycle != -1 || len(st.Stalled) == 0 {
		return
	}
	for _, ps := range st.Stalled {
		if ps.LastOp != "unjoined" {
			return
		}
	}
	if s.p <= 0 || 2*len(st.Stalled) <= s.p {
		return
	}
	c.mu.Lock()
	moved := len(c.cands) > 1 && c.sess == s
	if moved {
		c.epoch++
		c.sess = nil
		c.logf("a majority of the group is gone from epoch %d; trying epoch %d", s.epoch, c.epoch)
	}
	c.mu.Unlock()
	if moved {
		s.teardown(&transport.LinkError{Peer: "sequencer", Op: "gather",
			Err: fmt.Errorf("majority of the group missing at epoch %d", s.epoch)})
	}
}

func (s *session) awaitWelcome(ctx context.Context) (welcomeBody, error) {
	select {
	case w := <-s.welcomeC():
		return w, nil
	case <-s.dead:
		return welcomeBody{}, s.deadError()
	case <-ctx.Done():
		return welcomeBody{}, &transport.LinkError{Peer: "sequencer", Op: "hello", Err: ctx.Err()}
	}
}

func (s *session) welcomeC() chan welcomeBody {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if s.welcome == nil {
		s.welcome = make(chan welcomeBody, 1)
	}
	return s.welcome
}

func (s *session) deadError() error {
	s.deadMu.Lock()
	defer s.deadMu.Unlock()
	if s.deadErr != nil {
		return s.deadErr
	}
	return &transport.LinkError{Peer: "sequencer", Op: "read", Err: fmt.Errorf("connection closed")}
}

// teardown closes the link exactly once.
func (s *session) teardown(err error) {
	s.deadOnce.Do(func() {
		s.deadMu.Lock()
		s.deadErr = err
		s.deadMu.Unlock()
		close(s.dead)
		s.c.Close()
	})
	s.rmu.Lock()
	r := s.round
	s.rmu.Unlock()
	if r != nil {
		r.down(s.deadError())
	}
}

func (s *session) enqueue(typ byte, pay []byte) {
	select {
	case s.out <- outMsg{typ, pay}:
	case <-s.dead:
	}
}

func (s *session) writeLoop() {
	defer s.wg.Done()
	hb := time.NewTicker(s.cl.opt.HeartbeatEvery)
	defer hb.Stop()
	var seq uint32
	var buf []byte
	write := func(typ byte, pay []byte) bool {
		seq++
		buf = appendFrame(buf[:0], typ, seq, s.epoch, pay)
		s.c.SetWriteDeadline(time.Now().Add(s.cl.opt.WriteTimeout))
		if _, err := s.c.Write(buf); err != nil {
			s.teardown(&transport.LinkError{Peer: "sequencer", Op: "write", Err: err})
			return false
		}
		return true
	}
	for {
		select {
		case <-s.dead:
			return
		case m := <-s.out:
			if !write(m.typ, m.pay) {
				return
			}
		case <-hb.C:
			if !write(fHeartbeat, nil) {
				return
			}
		}
	}
}

func (s *session) readLoop() {
	defer s.wg.Done()
	fr := newFrameReader(bufio.NewReader(s.c))
	var win seqWindow
	for {
		s.c.SetReadDeadline(time.Now().Add(s.cl.opt.PeerTimeout))
		f, err := fr.read()
		if err != nil {
			s.teardown(&transport.LinkError{Peer: "sequencer", Op: "read", Err: err})
			return
		}
		if f.epoch != s.epoch {
			// The reject welcome echoes the hello's epoch and every admitted
			// session's frames carry the negotiated epoch, so a mismatch means
			// a zombie sequencer generation is talking to us: fence it off.
			s.teardown(&transport.LinkError{Peer: "sequencer", Op: "frame",
				Err: fmt.Errorf("epoch %d frame on an epoch %d session", f.epoch, s.epoch)})
			return
		}
		dup, err := win.admit(f.seq)
		if err != nil {
			s.teardown(&transport.LinkError{Peer: "sequencer", Op: "frame", Err: err})
			return
		}
		if dup {
			continue
		}
		switch f.typ {
		case fHeartbeat:
		case fWelcome:
			var w welcomeBody
			if jsonUnmarshal(f.pay, &w) == nil {
				select {
				case s.welcomeC() <- w:
				default:
				}
			}
		case fStart:
			var b startBody
			if jsonUnmarshal(f.pay, &b) == nil {
				select {
				case s.startC <- b:
				default:
				}
			}
		case fResults:
			var b resultsBody
			if jsonUnmarshal(f.pay, &b) != nil {
				continue
			}
			s.rmu.Lock()
			r := s.round
			s.rmu.Unlock()
			if r == nil || r.num != b.Round {
				continue
			}
			for _, res := range b.Res {
				if i := res.Proc - r.lo; i >= 0 && i < len(r.resC) {
					select {
					case r.resC[i] <- res:
					default: // protocol guarantees one outstanding op; drop excess defensively
					}
				}
			}
		case fDone:
			var b doneBody
			if jsonUnmarshal(f.pay, &b) == nil {
				select {
				case s.doneC <- b:
				default:
				}
			}
		case fXchgAll:
			var b xchgAllBody
			if jsonUnmarshal(f.pay, &b) == nil {
				select {
				case s.xchgC <- b:
				default:
				}
			}
		case fFail:
			var b failBody
			if jsonUnmarshal(f.pay, &b) == nil {
				select {
				case s.failC <- b.Err:
				default:
				}
			}
		default:
			s.teardown(&transport.LinkError{Peer: "sequencer", Op: "frame", Err: fmt.Errorf("unexpected frame type %d", f.typ)})
			return
		}
	}
}

// drain empties the lock-step control channels before a new request.
func (s *session) drain() {
	for {
		select {
		case <-s.startC:
		case <-s.doneC:
		case <-s.xchgC:
		case <-s.failC:
		default:
			return
		}
	}
}

// Run proposes one engine round and executes the owned programs against it.
func (c *Client) Run(ctx context.Context, cfg mcb.Config, programs []func(mcb.Node)) (*mcb.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(programs) != cfg.P {
		return nil, fmt.Errorf("tcp: %d programs for %d processors", len(programs), cfg.P)
	}
	if c.opt.Hi > cfg.P {
		return nil, fmt.Errorf("tcp: owned range [%d, %d) outside [0, %d)", c.opt.Lo, c.opt.Hi, cfg.P)
	}
	cfgJSON, err := encodeConfig(cfg)
	if err != nil {
		return nil, err
	}
	s, err := c.ensure(ctx)
	if err != nil {
		return nil, err
	}
	s.drain()
	s.enqueue(fRound, marshal(roundBody{Cfg: cfgJSON}))

	var start startBody
	select {
	case start = <-s.startC:
	case w := <-s.failC:
		err := decodeErr(w)
		c.noteFail(s, err)
		return nil, err
	case b := <-s.doneC:
		return nil, fmt.Errorf("tcp: unexpected done for round %d before start", b.Round)
	case <-s.dead:
		return nil, s.deadError()
	case <-ctx.Done():
		// Not yet in a round: drop the link so the sequencer's gather does
		// not wait on a peer that will never follow through.
		s.teardown(&transport.LinkError{Peer: "sequencer", Op: "round", Err: ctx.Err()})
		return nil, &mcb.AbortError{Proc: -1, VProc: -1, Msg: "context: " + ctx.Err().Error()}
	}

	r := &clientRound{num: start.Round, lo: c.opt.Lo, downC: make(chan struct{})}
	r.resC = make([]chan wireRes, c.opt.Hi-c.opt.Lo)
	for i := range r.resC {
		r.resC[i] = make(chan wireRes, 1)
	}
	s.rmu.Lock()
	s.round = r
	s.rmu.Unlock()
	defer func() {
		s.rmu.Lock()
		s.round = nil
		s.rmu.Unlock()
	}()

	var wg sync.WaitGroup
	for id := c.opt.Lo; id < c.opt.Hi; id++ {
		n := &rnode{s: s, r: r, id: id, p: cfg.P, k: cfg.K}
		prog := programs[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				switch rec := recover().(type) {
				case nil:
					n.sendExit()
				case nodeDown:
					// Round over (abort, link loss); nothing more to send.
				default:
					// Program bug: mirror the engine by failing the run with
					// a processor-attributed abort, then leave.
					n.sendRaw(wireOp{Proc: n.id, Kind: wAbort,
						Str: fmt.Sprintf("processor %d panicked: %v", n.id, rec)})
				}
			}()
			prog(n)
		}()
	}

	// Supervise: the round ends with fDone, link loss, or cancellation.
	var done doneBody
	var roundErr error
	select {
	case done = <-s.doneC:
		roundErr = decodeErr(done.Err)
		r.down(roundErr)
	case w := <-s.failC:
		roundErr = decodeErr(w)
		r.down(roundErr)
	case <-s.dead:
		roundErr = s.deadError()
		r.down(roundErr)
	case <-ctx.Done():
		// Cancel the whole distributed round, then wait for its verdict so
		// every peer agrees on the typed error.
		s.enqueue(fAbort, marshal(abortBody{Msg: ctx.Err().Error()}))
		grace := time.NewTimer(2 * c.opt.PeerTimeout)
		select {
		case done = <-s.doneC:
			roundErr = decodeErr(done.Err)
		case <-s.dead:
			roundErr = s.deadError()
		case <-grace.C:
			roundErr = &mcb.AbortError{Proc: -1, VProc: -1, Msg: "context: " + ctx.Err().Error()}
			s.teardown(roundErr)
		}
		grace.Stop()
		r.down(roundErr)
	}
	wg.Wait()

	var res *mcb.Result
	if done.Stats != nil {
		res = &mcb.Result{Stats: *done.Stats}
	}
	return res, roundErr
}

// Exchange rendezvouses boundary state blobs through the sequencer.
func (c *Client) Exchange(tag string, blobs [][]byte) ([][]byte, error) {
	s, err := c.ensure(context.Background())
	if err != nil {
		return nil, err
	}
	local := make([][]byte, c.opt.Hi-c.opt.Lo)
	for i := range local {
		if idx := c.opt.Lo + i; idx < len(blobs) {
			local[i] = blobs[idx]
		}
	}
	s.drain()
	s.enqueue(fXchg, marshal(xchgBody{Tag: tag, Lo: c.opt.Lo, Blobs: local}))
	select {
	case all := <-s.xchgC:
		if all.Tag != tag {
			return nil, fmt.Errorf("tcp: exchange tag mismatch: sent %q, got %q", tag, all.Tag)
		}
		return all.Blobs, nil
	case w := <-s.failC:
		err := decodeErr(w)
		c.noteFail(s, err)
		return nil, err
	case <-s.dead:
		return nil, s.deadError()
	}
}

// Kill severs the connection abruptly (no bye): test hook simulating a
// crashed peer process.
func (c *Client) Kill() {
	c.mu.Lock()
	s := c.sess
	c.sess = nil
	c.mu.Unlock()
	if s != nil {
		s.teardown(&transport.LinkError{Peer: "sequencer", Op: "kill", Err: fmt.Errorf("peer killed")})
		s.wg.Wait()
	}
}

var _ transport.Transport = (*Client)(nil)

// nodeDown unwinds a program goroutine when the round is over while the
// program still had cycle ops in flight — the remote analogue of the
// engine's abort panic; the program wrapper absorbs it.
type nodeDown struct{}

// rnode is the remote mcb.Node: every cycle op becomes a wire op to the
// sequencer and blocks on the engine's answer, which keeps the program in
// exact lock-step with the remote cycle resolution.
type rnode struct {
	s  *session
	r  *clientRound
	id int
	p  int
	k  int

	steps   int64
	pending []string
}

func (n *rnode) ID() int { return n.id }
func (n *rnode) P() int  { return n.p }
func (n *rnode) K() int  { return n.k }

func (n *rnode) sendRaw(op wireOp) {
	n.s.enqueue(fOps, marshal(opsBody{Round: n.r.num, Ops: []wireOp{op}}))
}

// op ships one cycle operation and, when await is set, blocks for its
// resolution. A closed round panics nodeDown.
func (n *rnode) op(op wireOp, await bool) wireRes {
	select {
	case <-n.r.downC:
		panic(nodeDown{})
	default:
	}
	op.Proc = n.id
	if len(n.pending) > 0 {
		op.Phases = n.pending
		n.pending = nil
	}
	n.sendRaw(op)
	if !await {
		return wireRes{}
	}
	select {
	case res := <-n.r.resC[n.id-n.r.lo]:
		return res
	case <-n.r.downC:
		panic(nodeDown{})
	}
}

func (n *rnode) WriteRead(writeCh int, m mcb.Message, readCh int) (mcb.Message, bool) {
	n.steps++
	res := n.op(wireOp{Kind: wWriteRead, WCh: writeCh, RCh: readCh, Msg: &m}, true)
	return res.Msg, res.OK
}

func (n *rnode) Write(writeCh int, m mcb.Message) {
	n.steps++
	n.op(wireOp{Kind: wWrite, WCh: writeCh, Msg: &m}, true)
}

func (n *rnode) Read(readCh int) (mcb.Message, bool) {
	n.steps++
	res := n.op(wireOp{Kind: wRead, RCh: readCh}, true)
	return res.Msg, res.OK
}

func (n *rnode) Idle() {
	n.steps++
	n.op(wireOp{Kind: wIdle}, true)
}

func (n *rnode) IdleN(count int) {
	if count <= 0 {
		return
	}
	n.steps += int64(count)
	n.op(wireOp{Kind: wIdleN, N: int64(count)}, true)
}

func (n *rnode) Abortf(format string, args ...any) {
	n.op(wireOp{Kind: wAbort, Str: fmt.Sprintf(format, args...)}, false)
	// Abortf does not return: wait for the round's verdict, then unwind.
	<-n.r.downC
	panic(nodeDown{})
}

func (n *rnode) AccountAux(delta int64) {
	n.op(wireOp{Kind: wAux, N: delta}, false)
}

func (n *rnode) Phase(name string) { n.pending = append(n.pending, name) }

func (n *rnode) Cycles() int64 { return n.steps }

func (n *rnode) sendExit() {
	// Exit never blocks (matching the in-process exit) and still carries
	// pending phase markers.
	defer func() { recover() }() // round may already be fully torn down
	n.op(wireOp{Kind: wExit}, false)
}

var _ mcb.Node = (*rnode)(nil)
