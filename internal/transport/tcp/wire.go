package tcp

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"mcbnet/internal/mcb"
	"mcbnet/internal/transport"
)

// Cycle-op kinds as they travel peer → sequencer. Every op that participates
// in a cycle gets a result frame back (an empty ack for write/idle ops):
// the round trip keeps the remote processor in lock-step with the engine
// exactly as the in-process step() blocking until cycle resolution does, and
// it bounds the per-processor mailbox at one outstanding op.
const (
	wWrite = iota + 1
	wRead
	wWriteRead
	wIdle
	wIdleN // N carries the stretch length; acked once, after the last cycle
	wExit  // leave the protocol; not acked (in-process exit does not block)
	wAux   // AccountAux delta in N; fire-and-forget (pure accounting)
	wAbort // Abortf; Str carries the message; the round's fDone is the answer
)

// wireOp is one remote processor cycle operation.
type wireOp struct {
	Proc   int          `json:"p"`
	Kind   int          `json:"k"`
	WCh    int          `json:"w,omitempty"`
	RCh    int          `json:"r,omitempty"`
	Msg    *mcb.Message `json:"m,omitempty"`
	N      int64        `json:"n,omitempty"`
	Phases []string     `json:"ph,omitempty"` // pending Phase markers, applied before the op
	Str    string       `json:"s,omitempty"`  // wAbort message
}

// wireRes is the engine's answer to one cycle op: the read result for
// reading ops, a bare ack otherwise.
type wireRes struct {
	Proc int         `json:"p"`
	Msg  mcb.Message `json:"m"`
	OK   bool        `json:"ok"`
}

type helloBody struct {
	Job    string `json:"job"`
	Name   string `json:"name"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Resume bool   `json:"resume,omitempty"`
}

type welcomeBody struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
	P      int    `json:"p"`
	// Epoch is the sequencer's current epoch. On a stale-epoch rejection it
	// tells the peer where the group has moved so it can adopt the epoch and
	// redial the candidate that epoch maps to.
	Epoch uint64 `json:"epoch,omitempty"`
	// Retry marks a rejection as transient: the admission raced sequencer
	// state that is about to settle (a dying connection not yet reaped), so
	// the peer should redial within its bounded sweep rather than give up.
	Retry bool `json:"retry,omitempty"`
}

type roundBody struct {
	Tag string          `json:"tag,omitempty"`
	Cfg json.RawMessage `json:"cfg"`
}

type startBody struct {
	Round uint64 `json:"round"`
}

type opsBody struct {
	Round uint64   `json:"round"`
	Ops   []wireOp `json:"ops"`
}

type resultsBody struct {
	Round uint64    `json:"round"`
	Res   []wireRes `json:"res"`
}

type doneBody struct {
	Round uint64     `json:"round"`
	Stats *mcb.Stats `json:"stats,omitempty"` // nil when the engine could not collect a partial result
	Err   *wireError `json:"err,omitempty"`
}

type xchgBody struct {
	Tag   string   `json:"tag"`
	Lo    int      `json:"lo"`
	Blobs [][]byte `json:"blobs"`
}

type xchgAllBody struct {
	Tag   string   `json:"tag"`
	Blobs [][]byte `json:"blobs"`
}

type failBody struct {
	Err *wireError `json:"err"`
}

type abortBody struct {
	Msg string `json:"msg"`
}

// wireConfig is the canonical engine configuration of a round. Every peer
// must propose byte-identical config JSON — the sequencer rejects divergence
// (which would mean the peers' drivers are no longer executing the same
// deterministic computation). Local-only knobs (Recorder, ProfileLabels,
// AbortGrace) stay out; Trace is rejected outright (the trace lives in the
// sequencer's engine and is not shipped back).
type wireConfig struct {
	P         int            `json:"p"`
	K         int            `json:"k"`
	Engine    string         `json:"engine,omitempty"`
	MaxCycles int64          `json:"max_cycles,omitempty"`
	StallNS   int64          `json:"stall_ns,omitempty"`
	MaxAbs    int64          `json:"max_abs,omitempty"`
	Faults    *mcb.FaultPlan `json:"faults,omitempty"`
}

func encodeConfig(cfg mcb.Config) ([]byte, error) {
	if cfg.Trace || cfg.Recorder != nil {
		return nil, errors.New("tcp: Trace/Recorder are not supported over the tcp transport (they observe the sequencer's engine, not the peers)")
	}
	return json.Marshal(wireConfig{
		P: cfg.P, K: cfg.K,
		Engine:    string(cfg.Engine),
		MaxCycles: cfg.MaxCycles,
		StallNS:   int64(cfg.StallTimeout),
		MaxAbs:    cfg.MaxAbs,
		Faults:    cfg.Faults,
	})
}

func decodeConfig(b []byte) (mcb.Config, error) {
	var w wireConfig
	if err := json.Unmarshal(b, &w); err != nil {
		return mcb.Config{}, fmt.Errorf("tcp: bad round config: %w", err)
	}
	return mcb.Config{
		P: w.P, K: w.K,
		Engine:       mcb.EngineMode(w.Engine),
		MaxCycles:    w.MaxCycles,
		StallTimeout: time.Duration(w.StallNS),
		MaxAbs:       w.MaxAbs,
		Faults:       w.Faults,
	}, nil
}

// wireError ships the typed failure taxonomy. Concrete types round-trip as
// their exported fields (time.Duration marshals as integer nanoseconds, so
// the trip is exact); anything unrecognized degrades to Kind "opaque",
// which decodes as a plain non-retryable error.
type wireError struct {
	Kind       string               `json:"kind"`
	Msg        string               `json:"msg,omitempty"`
	Collision  *mcb.CollisionError  `json:"collision,omitempty"`
	Abort      *mcb.AbortError      `json:"abort,omitempty"`
	Crash      *mcb.CrashError      `json:"crash,omitempty"`
	Stall      *mcb.StallError      `json:"stall,omitempty"`
	Budget     *mcb.BudgetError     `json:"budget,omitempty"`
	Corruption *mcb.CorruptionError `json:"corruption,omitempty"`
	LinkPeer   string               `json:"link_peer,omitempty"`
	LinkOp     string               `json:"link_op,omitempty"`
}

func encodeErr(err error) *wireError {
	if err == nil {
		return nil
	}
	var (
		col  *mcb.CollisionError
		ab   *mcb.AbortError
		cr   *mcb.CrashError
		st   *mcb.StallError
		bu   *mcb.BudgetError
		co   *mcb.CorruptionError
		link *transport.LinkError
	)
	switch {
	case errors.As(err, &col):
		return &wireError{Kind: "collision", Collision: col}
	case errors.As(err, &cr):
		return &wireError{Kind: "crash", Crash: cr}
	case errors.As(err, &ab):
		return &wireError{Kind: "abort", Abort: ab}
	case errors.As(err, &st):
		return &wireError{Kind: "stall", Stall: st}
	case errors.As(err, &bu):
		return &wireError{Kind: "budget", Budget: bu}
	case errors.As(err, &co):
		return &wireError{Kind: "corruption", Corruption: co}
	case errors.As(err, &link):
		return &wireError{Kind: "link", LinkPeer: link.Peer, LinkOp: link.Op, Msg: link.Err.Error()}
	case errors.Is(err, mcb.ErrAborted):
		return &wireError{Kind: "aborted", Msg: err.Error()}
	}
	return &wireError{Kind: "opaque", Msg: err.Error()}
}

func decodeErr(w *wireError) error {
	if w == nil {
		return nil
	}
	switch w.Kind {
	case "collision":
		if w.Collision != nil {
			return w.Collision
		}
	case "crash":
		if w.Crash != nil {
			return w.Crash
		}
	case "abort":
		if w.Abort != nil {
			return w.Abort
		}
	case "stall":
		if w.Stall != nil {
			return w.Stall
		}
	case "budget":
		if w.Budget != nil {
			return w.Budget
		}
	case "corruption":
		if w.Corruption != nil {
			return w.Corruption
		}
	case "link":
		return &transport.LinkError{Peer: w.LinkPeer, Op: w.LinkOp, Err: errors.New(w.Msg)}
	case "aborted":
		return fmt.Errorf("%w: %s", mcb.ErrAborted, w.Msg)
	}
	return errors.New(w.Msg)
}

func jsonUnmarshal(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("tcp: bad %T payload: %w", v, err)
	}
	return nil
}

func marshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All wire bodies are plain data structs; a marshal failure is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("tcp: marshal %T: %v", v, err))
	}
	return b
}
