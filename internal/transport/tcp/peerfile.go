package tcp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"mcbnet/internal/mcb"
)

// PeerSpec names one processor group: the peer runs processors [Lo, Hi).
type PeerSpec struct {
	Name string `json:"name"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// CutSpec declares a permanent link loss on a broadcast channel, starting at
// the given cycle. It maps onto the fault plane as a scripted outage that
// never closes, which is exactly what lets RetryPolicy.DegradeOnOutage drop
// the channel and finish the run on the k' < k survivors, unmodified over a
// real socket.
type CutSpec struct {
	Ch   int   `json:"ch"`
	From int64 `json:"from"`
}

// PeerFile is the JSON group configuration cmd/mcbpeer loads: who the
// sequencer is, which peer owns which processors, and any declared channel
// cuts. Example:
//
//	{
//	  "job": "sort-demo",
//	  "sequencer": "127.0.0.1:7700",
//	  "p": 8, "k": 3,
//	  "peers": [
//	    {"name": "a", "lo": 0, "hi": 2},
//	    {"name": "b", "lo": 2, "hi": 4},
//	    {"name": "c", "lo": 4, "hi": 6},
//	    {"name": "d", "lo": 6, "hi": 8}
//	  ],
//	  "cut_channels": [{"ch": 2, "from": 100}]
//	}
// With failover, "sequencer" generalizes to an ordered candidate list:
//
//	"sequencers": ["127.0.0.1:7700", "127.0.0.1:7701"]
//
// Epoch e of a session is served by candidate e mod len(sequencers); the
// single-"sequencer" form is still accepted and means a one-element list
// (whose groups stay at epoch 0 forever — no behavior change).
type PeerFile struct {
	Job string `json:"job"`
	// Sequencer is the legacy single-address form. If Sequencers is also set,
	// Sequencer must equal Sequencers[0].
	Sequencer string `json:"sequencer,omitempty"`
	// Sequencers is the ordered failover candidate list; index 0 is the
	// epoch-0 (initial) sequencer.
	Sequencers  []string   `json:"sequencers,omitempty"`
	P           int        `json:"p"`
	K           int        `json:"k"`
	Peers       []PeerSpec `json:"peers"`
	CutChannels []CutSpec  `json:"cut_channels,omitempty"`
}

// Candidates returns the normalized ordered sequencer candidate list:
// Sequencers if present, else the single legacy Sequencer, with surrounding
// whitespace trimmed. Call Validate first; Candidates does not re-check.
func (pf *PeerFile) Candidates() []string {
	src := pf.Sequencers
	if len(src) == 0 && pf.Sequencer != "" {
		src = []string{pf.Sequencer}
	}
	out := make([]string, 0, len(src))
	for _, addr := range src {
		if addr = strings.TrimSpace(addr); addr != "" {
			out = append(out, addr)
		}
	}
	return out
}

// LoadPeerFile reads and validates a peer file: the peer ranges must
// partition [0, P) exactly (no gaps, no overlaps).
func LoadPeerFile(path string) (*PeerFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pf PeerFile
	if err := json.Unmarshal(b, &pf); err != nil {
		return nil, fmt.Errorf("tcp: peer file %s: %w", path, err)
	}
	if err := pf.Validate(); err != nil {
		return nil, fmt.Errorf("tcp: peer file %s: %w", path, err)
	}
	return &pf, nil
}

// Validate checks the group shape.
func (pf *PeerFile) Validate() error {
	cands := pf.Candidates()
	if len(cands) == 0 {
		return fmt.Errorf("no sequencer address")
	}
	if len(pf.Sequencers) > 0 && len(cands) != len(pf.Sequencers) {
		return fmt.Errorf("sequencer candidate list has empty entries")
	}
	if pf.Sequencer != "" && len(pf.Sequencers) > 0 && strings.TrimSpace(pf.Sequencer) != cands[0] {
		return fmt.Errorf("sequencer %q conflicts with sequencers[0] %q (set one, or make them agree)", pf.Sequencer, cands[0])
	}
	seenSeq := map[string]bool{}
	for _, addr := range cands {
		if seenSeq[addr] {
			return fmt.Errorf("duplicate sequencer candidate %q", addr)
		}
		seenSeq[addr] = true
	}
	if pf.P < 1 || pf.K < 1 || pf.K > pf.P {
		return fmt.Errorf("bad shape p=%d k=%d", pf.P, pf.K)
	}
	if len(pf.Peers) == 0 {
		return fmt.Errorf("no peers")
	}
	specs := append([]PeerSpec(nil), pf.Peers...)
	sort.Slice(specs, func(i, j int) bool { return specs[i].Lo < specs[j].Lo })
	seen := map[string]bool{}
	next := 0
	for _, sp := range specs {
		if sp.Name == "" {
			return fmt.Errorf("peer with empty name")
		}
		if seen[sp.Name] {
			return fmt.Errorf("duplicate peer name %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.Lo != next || sp.Hi <= sp.Lo {
			return fmt.Errorf("peer ranges must partition [0, %d): %q covers [%d, %d) after %d", pf.P, sp.Name, sp.Lo, sp.Hi, next)
		}
		next = sp.Hi
	}
	if next != pf.P {
		return fmt.Errorf("peer ranges cover [0, %d), want [0, %d)", next, pf.P)
	}
	for _, cut := range pf.CutChannels {
		if cut.Ch < 0 || cut.Ch >= pf.K {
			return fmt.Errorf("cut channel %d outside [0, %d)", cut.Ch, pf.K)
		}
	}
	return nil
}

// Find returns the spec for the named peer, or nil.
func (pf *PeerFile) Find(name string) *PeerSpec {
	for i := range pf.Peers {
		if pf.Peers[i].Name == name {
			return &pf.Peers[i]
		}
	}
	return nil
}

// Outages renders the declared channel cuts as permanent scripted outages
// for a FaultPlan.
func (pf *PeerFile) Outages() []mcb.Outage {
	out := make([]mcb.Outage, 0, len(pf.CutChannels))
	for _, cut := range pf.CutChannels {
		out = append(out, mcb.Outage{Ch: cut.Ch, From: cut.From, To: math.MaxInt64})
	}
	return out
}
