package tcp_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mcbnet/internal/checkpoint"
)

// TestMultiProcSmoke is the end-to-end OS-process smoke test: it builds
// cmd/mcbpeer, spawns one sequencer-hosting peer plus three plain peers on
// loopback, and checks (a) a clean 4-process run yields byte-identical
// engine reports on every peer and (b) SIGKILLing a peer mid-run and
// restarting it with -resume completes the job via checkpointed recovery.
//
// Gated behind MCBNET_MULTIPROC=1 (it builds a binary and forks processes);
// the transport-chaos CI job runs it.
func TestMultiProcSmoke(t *testing.T) {
	if os.Getenv("MCBNET_MULTIPROC") == "" {
		t.Skip("set MCBNET_MULTIPROC=1 to run the multi-process smoke test")
	}
	bin := filepath.Join(t.TempDir(), "mcbpeer")
	build := exec.Command("go", "build", "-o", bin, "mcbnet/cmd/mcbpeer")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build mcbpeer: %v\n%s", err, out)
	}

	t.Run("CleanRunIdenticalReports", func(t *testing.T) {
		dir := t.TempDir()
		peers := writePeerFile(t, dir, "smoke-clean")
		procs := make([]*exec.Cmd, 4)
		outs := make([]string, 4)
		for i, name := range []string{"a", "b", "c", "d"} {
			outs[i] = filepath.Join(dir, name+".json")
			args := []string{"-peers", peers, "-name", name, "-n", "512", "-seed", "3", "-json"}
			if i == 0 {
				args = append(args, "-seq")
			}
			procs[i] = startPeer(t, bin, dir, outs[i], args)
			if i == 0 {
				time.Sleep(200 * time.Millisecond) // let the sequencer bind first
			}
		}
		reports := make([]map[string]any, 4)
		for i, pc := range procs {
			if err := pc.Wait(); err != nil {
				t.Fatalf("peer %d: %v", i, err)
			}
			reports[i] = readReport(t, outs[i])
			delete(reports[i], "extra") // per-peer name and wall time, by design
		}
		want, _ := json.Marshal(reports[0])
		for i := 1; i < 4; i++ {
			got, _ := json.Marshal(reports[i])
			if string(got) != string(want) {
				t.Errorf("peer %d report diverged:\n got: %s\nwant: %s", i, got, want)
			}
		}
	})

	t.Run("KillPeerResume", func(t *testing.T) {
		dir := t.TempDir()
		peers := writePeerFile(t, dir, "smoke-kill")
		common := []string{"-peers", peers, "-n", "4096", "-seed", "5"}
		outs := map[string]string{}
		start := func(name string, extra ...string) *exec.Cmd {
			outs[name] = filepath.Join(dir, name+".out.json")
			ck := filepath.Join(dir, "ck-"+name[:1])
			args := append(append([]string(nil), common...),
				"-name", name[:1], "-checkpoint-dir", ck, "-json")
			return startPeer(t, bin, dir, outs[name], append(args, extra...))
		}
		survivors := []*exec.Cmd{
			start("a", "-seq", "-retries", "12"),
		}
		time.Sleep(200 * time.Millisecond)
		survivors = append(survivors,
			start("c", "-retries", "12"),
			start("d", "-retries", "12"),
		)
		victim := start("b1", "-retries", "1")

		// Kill b as soon as it has accepted a mid-run checkpoint (a durable
		// phase >= 1 snapshot — counting directory entries is not enough,
		// since the store's in-flight .tmp file is an entry too), then
		// restart it with -resume over the same store.
		ckB := filepath.Join(dir, "ck-b")
		deadline := time.Now().Add(30 * time.Second)
		for {
			if st, err := checkpoint.NewDir(ckB); err == nil {
				if snap, err := st.Latest(); err == nil && snap != nil && snap.Phase >= 1 {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("peer b never wrote a mid-run checkpoint")
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := victim.Process.Kill(); err != nil {
			t.Fatalf("kill peer b: %v", err)
		}
		victim.Wait() // reap; a SIGKILL exit is the expected outcome
		time.Sleep(300 * time.Millisecond)

		restarted := start("b2", "-resume", "-retries", "12")
		if err := restarted.Wait(); err != nil {
			t.Fatalf("restarted peer b: %v", err)
		}
		for i, pc := range survivors {
			if err := pc.Wait(); err != nil {
				t.Fatalf("survivor %d: %v", i, err)
			}
		}
		rb := readReport(t, outs["b2"])
		if resumes, _ := rb["resumes"].(float64); resumes < 1 {
			t.Errorf("restarted peer reports %v resumes; checkpointed recovery was not used", rb["resumes"])
		}
		// Survivors executed the whole accepted path themselves and must
		// agree on it exactly; the restarted peer's report covers only its
		// post-resume segments, so it is compared on completion, not cost.
		ra, _ := json.Marshal(stripPerPeer(readReport(t, outs["a"])))
		for _, name := range []string{"c", "d"} {
			if got, _ := json.Marshal(stripPerPeer(readReport(t, outs[name]))); string(got) != string(ra) {
				t.Errorf("survivor %s report diverged from a:\n got: %s\nwant: %s", name, got, ra)
			}
		}
		t.Logf("restarted peer: attempts=%v resumes=%v phase=%v",
			rb["attempts"], rb["resumes"], rb["checkpoint_phase"])
	})

	t.Run("SequencerFailover", func(t *testing.T) {
		// Two dedicated sequencer processes serve candidates 0 and 1 of the
		// peer file's "sequencers" list. SIGKILLing the active one after the
		// peers have checkpointed must leave the run to finish on the standby,
		// with reports byte-identical to a fault-free group's modulo the
		// recovery counters, and a replay cost strictly below a from-scratch
		// rerun.
		runGroup := func(job string, kill bool) (reports map[string]map[string]any, replayed, cycles float64) {
			dir := t.TempDir()
			peers := writePeerFileCandidates(t, dir, job)
			seqArgs := func(idx int) []string {
				return []string{"-peers", peers, "-standby-seq", fmt.Sprint(idx),
					"-gather-timeout", "15s", "-v"}
			}
			active := startPeer(t, bin, dir, filepath.Join(dir, "seq0.out"), seqArgs(0))
			startPeer(t, bin, dir, filepath.Join(dir, "seq1.out"), seqArgs(1)) // standby; reaped by cleanup
			time.Sleep(200 * time.Millisecond)

			common := []string{"-peers", peers, "-n", "4096", "-seed", "5", "-retries", "12", "-json", "-v"}
			outs := map[string]string{}
			procs := map[string]*exec.Cmd{}
			for _, name := range []string{"a", "b", "c", "d"} {
				outs[name] = filepath.Join(dir, name+".out.json")
				args := append(append([]string(nil), common...),
					"-name", name, "-checkpoint-dir", filepath.Join(dir, "ck-"+name))
				procs[name] = startPeer(t, bin, dir, outs[name], args)
			}

			if kill {
				ckA := filepath.Join(dir, "ck-a")
				deadline := time.Now().Add(30 * time.Second)
				for {
					if st, err := checkpoint.NewDir(ckA); err == nil {
						if snap, err := st.Latest(); err == nil && snap != nil && snap.Phase >= 1 {
							break
						}
					}
					if time.Now().After(deadline) {
						t.Fatal("peer a never wrote a mid-run checkpoint")
					}
					time.Sleep(10 * time.Millisecond)
				}
				if err := active.Process.Kill(); err != nil {
					t.Fatalf("kill active sequencer: %v", err)
				}
				active.Wait() // reap; a SIGKILL exit is the expected outcome
			}

			reports = map[string]map[string]any{}
			for _, name := range []string{"a", "b", "c", "d"} {
				if err := procs[name].Wait(); err != nil {
					t.Fatalf("%s peer %s: %v", job, name, err)
				}
				reports[name] = readReport(t, outs[name])
			}
			replayed, _ = reports["a"]["replayed_cycles"].(float64)
			cycles, _ = reports["a"]["cycles"].(float64)
			return reports, replayed, cycles
		}

		base, _, baseCycles := runGroup("failover-base", false)
		got, replayed, cycles := runGroup("failover-kill", true)

		want, _ := json.Marshal(stripRecovery(base["a"]))
		for _, name := range []string{"a", "b", "c", "d"} {
			if g, _ := json.Marshal(stripRecovery(got[name])); string(g) != string(want) {
				t.Errorf("failover peer %s report diverged from fault-free run:\n got: %s\nwant: %s", name, g, want)
			}
		}
		if attempts, _ := got["a"]["attempts"].(float64); attempts < 2 {
			t.Errorf("peer a reports %v attempts; the kill did not interrupt the run", attempts)
		}
		if cycles != baseCycles {
			t.Errorf("failover run cost %v cycles, fault-free run %v", cycles, baseCycles)
		}
		if replayed >= cycles {
			t.Errorf("replayed %v cycles, not strictly below the full run's %v: checkpointed resume did not bound the replay", replayed, cycles)
		}
		t.Logf("failover run: attempts=%v resumes=%v replayed=%v of %v cycles",
			got["a"]["attempts"], got["a"]["resumes"], replayed, cycles)
	})
}

func writePeerFile(t *testing.T, dir, job string) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	path := filepath.Join(dir, "peers.json")
	spec := fmt.Sprintf(`{
  "job": %q, "sequencer": %q, "p": 8, "k": 3,
  "peers": [
    {"name": "a", "lo": 0, "hi": 2},
    {"name": "b", "lo": 2, "hi": 4},
    {"name": "c", "lo": 4, "hi": 6},
    {"name": "d", "lo": 6, "hi": 8}
  ]
}`, job, addr)
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writePeerFileCandidates is writePeerFile with an ordered two-entry
// "sequencers" candidate list instead of the legacy single address.
func writePeerFileCandidates(t *testing.T, dir, job string) string {
	t.Helper()
	addrs := make([]string, 2)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	path := filepath.Join(dir, "peers.json")
	spec := fmt.Sprintf(`{
  "job": %q, "sequencers": [%q, %q], "p": 8, "k": 3,
  "peers": [
    {"name": "a", "lo": 0, "hi": 2},
    {"name": "b", "lo": 2, "hi": 4},
    {"name": "c", "lo": 4, "hi": 6},
    {"name": "d", "lo": 6, "hi": 8}
  ]
}`, job, addrs[0], addrs[1])
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func startPeer(t *testing.T, bin, dir, stdout string, args []string) *exec.Cmd {
	t.Helper()
	f, err := os.Create(stdout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	cmd.Stdout = f
	cmd.Stderr = os.Stderr
	// With MCBNET_LOGDIR set (the CI chaos job points it at an artifact
	// directory), each process's stderr is preserved there instead of being
	// interleaved into the test output, and its stdout file is copied in on
	// teardown — so a failed run leaves every peer's logs and report behind.
	if ld := os.Getenv("MCBNET_LOGDIR"); ld != "" {
		prefix := strings.ReplaceAll(t.Name(), "/", "_") + "-" + filepath.Base(stdout)
		lf, lerr := os.Create(filepath.Join(ld, prefix+".stderr.log"))
		if lerr != nil {
			t.Fatal(lerr)
		}
		cmd.Stderr = lf
		t.Cleanup(func() {
			lf.Close()
			if b, rerr := os.ReadFile(stdout); rerr == nil {
				os.WriteFile(filepath.Join(ld, prefix), b, 0o644)
			}
		})
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %v: %v", args, err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

func readReport(t *testing.T, path string) map[string]any {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("parse %s: %v\n%s", path, err, b)
	}
	return m
}

func stripPerPeer(m map[string]any) map[string]any {
	delete(m, "extra")
	return m
}

// stripRecovery drops the per-peer and recovery-cost fields so a failover
// run's report can be compared byte-for-byte against a fault-free run's.
func stripRecovery(m map[string]any) map[string]any {
	out := map[string]any{}
	for k, v := range m {
		out[k] = v
	}
	delete(out, "extra")
	delete(out, "attempts")
	delete(out, "resumes")
	delete(out, "checkpoint_phase")
	delete(out, "replayed_cycles")
	return out
}
