package tcp

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcbnet/internal/mcb"
	"mcbnet/internal/transport"
)

// SequencerOptions configures the round sequencer process.
type SequencerOptions struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// Job names the computation; peers must hello with the same name.
	Job string
	// P is the network size; peer ranges must partition [0, P).
	P int
	// Index is this sequencer's position in the peer file's ordered candidate
	// list and Candidates is that list's length. Session epoch e is served by
	// candidate e mod Candidates, so this sequencer starts at epoch Index and
	// only ever adopts a higher epoch that maps back to it (a promotion, or a
	// wrap-around after every other candidate was consumed). Zero values mean
	// a single-sequencer group (candidate 0 of 1), which stays at epoch 0
	// forever — the failover machinery is inert for it.
	Index, Candidates int
	// HeartbeatEvery paces liveness frames on idle connections (default
	// 500ms). PeerTimeout is the per-read deadline — a connection silent for
	// this long is declared dead (default 5s). WriteTimeout bounds each
	// frame write (default 10s).
	HeartbeatEvery, PeerTimeout, WriteTimeout time.Duration
	// GatherTimeout bounds how long the sequencer waits for every processor
	// range to be covered by a proposing peer before failing the waiting
	// peers with a StallError naming the missing ranges; they retry, so a
	// killed peer has this long per attempt to rejoin (default 2 minutes).
	GatherTimeout time.Duration
	// AbortGrace is passed to the engine runs (default: engine default).
	AbortGrace time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Wrap, when non-nil, wraps every accepted connection (chaos tests).
	Wrap func(net.Conn) net.Conn
}

func (o *SequencerOptions) defaults() {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 500 * time.Millisecond
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.GatherTimeout <= 0 {
		o.GatherTimeout = 2 * time.Minute
	}
	if o.Candidates <= 0 {
		o.Candidates = 1
	}
}

// Sequencer accepts peer connections and runs their proposed engine rounds
// on the real in-process engine: each remote processor is a relay goroutine
// that replays the peer's cycle ops into a local mcb.Node, so resolveFast /
// resolveGeneral, the fault plane, stats and phase accounting are the
// engine's own code and a distributed Report is byte-identical to an
// in-process one.
type Sequencer struct {
	opt SequencerOptions
	ln  net.Listener

	events chan seqEvent
	round  atomic.Pointer[roundState]

	mu       sync.Mutex
	byName   map[string]*seqConn
	inflight map[net.Conn]struct{} // handshakes pending; Close cuts them short
	epoch    uint64                // invariant: every alive conn was admitted at this epoch
	hadPeers bool
	roundNum uint64

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type seqEvent struct {
	kind int // evProposal, evDied, evAbort
	conn *seqConn
	msg  string
}

const (
	evProposal = iota + 1
	evDied
	evAbort
)

type proposal struct {
	kind  int // pRound, pXchg, pBye
	tag   string
	cfg   []byte
	blobs [][]byte // xchg: blobs for [lo, hi)
}

const (
	pRound = iota + 1
	pXchg
	pBye
)

// roundState routes fOps frames to the relay mailboxes of the active round.
type roundState struct {
	num    uint64
	lo     int // always 0; kept for clarity of indexing
	boxes  []*mailbox
	abortC chan struct{}
	cancel context.CancelCauseFunc
}

// mailbox is the unbounded per-processor op queue between a connection
// reader and a relay goroutine. Unbounded so a reader never blocks on a
// slow relay (a blocked reader would wedge the whole connection, including
// the other processors' ops the cycle is waiting for).
type mailbox struct {
	mu  sync.Mutex
	q   []boxedOp
	sig chan struct{}
}

type boxedOp struct {
	op   wireOp
	from *seqConn
}

func newMailbox() *mailbox { return &mailbox{sig: make(chan struct{}, 1)} }

func (b *mailbox) push(op wireOp, from *seqConn) {
	b.mu.Lock()
	b.q = append(b.q, boxedOp{op, from})
	b.mu.Unlock()
	select {
	case b.sig <- struct{}{}:
	default:
	}
}

// pop blocks for the next op; aborted=true reports that the round failed
// (abortC closed) and the relay must leave the protocol.
func (b *mailbox) pop(abortC <-chan struct{}) (boxedOp, bool) {
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			op := b.q[0]
			b.q = b.q[1:]
			b.mu.Unlock()
			return op, false
		}
		b.mu.Unlock()
		select {
		case <-b.sig:
		case <-abortC:
			return boxedOp{}, true
		}
	}
}

// seqConn is one peer connection.
type seqConn struct {
	s     *Sequencer
	c     net.Conn
	name  string
	lo    int
	hi    int
	epoch uint64 // the epoch this connection was admitted at; immutable

	out      chan outMsg
	dead     chan struct{}
	deadOnce sync.Once

	mu    sync.Mutex
	prop  *proposal
	alive bool
}

type outMsg struct {
	typ byte
	pay []byte
}

// NewSequencer listens on opt.Addr; call Serve to run the session.
func NewSequencer(opt SequencerOptions) (*Sequencer, error) {
	opt.defaults()
	if opt.Index < 0 || opt.Index >= opt.Candidates {
		return nil, fmt.Errorf("tcp: sequencer candidate index %d outside [0, %d)", opt.Index, opt.Candidates)
	}
	ln, err := net.Listen("tcp", opt.Addr)
	if err != nil {
		return nil, err
	}
	return &Sequencer{
		opt:      opt,
		ln:       ln,
		events:   make(chan seqEvent, 256),
		byName:   make(map[string]*seqConn),
		inflight: make(map[net.Conn]struct{}),
		epoch:    uint64(opt.Index),
		closed:   make(chan struct{}),
	}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Sequencer) Addr() string { return s.ln.Addr().String() }

// Epoch returns the sequencer's current epoch (diagnostics and tests).
func (s *Sequencer) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func (s *Sequencer) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Close tears the sequencer down: the listener and every connection close
// and Serve returns.
func (s *Sequencer) Close() error {
	s.closeOnce.Do(func() { close(s.closed); s.ln.Close() })
	s.mu.Lock()
	conns := make([]*seqConn, 0, len(s.byName))
	for _, sc := range s.byName {
		conns = append(conns, sc)
	}
	pending := make([]net.Conn, 0, len(s.inflight))
	for c := range s.inflight {
		pending = append(pending, c)
	}
	s.mu.Unlock()
	// Cut in-flight handshakes short: without this, wg.Wait would block for
	// up to PeerTimeout on a connection that never sent its hello.
	for _, c := range pending {
		c.Close()
	}
	for _, sc := range conns {
		sc.die(fmt.Errorf("sequencer closed"))
	}
	s.wg.Wait()
	return nil
}

// Serve accepts peers and executes their collective proposals — engine
// rounds, boundary exchanges — until every peer says bye, ctx is cancelled,
// or Close is called. It is the whole session loop of a distributed run.
func (s *Sequencer) Serve(ctx context.Context) error {
	// A sequencer whose session loop has returned must not keep accepting:
	// a standalone process would have exited, taking its listener with it.
	// Leaving the listener open would admit peers into a session nobody
	// drives — they would hang instead of sweeping to the next candidate.
	defer s.closeOnce.Do(func() { close(s.closed); s.ln.Close() })
	s.wg.Add(1)
	go s.acceptLoop()

	gather := time.NewTimer(s.opt.GatherTimeout)
	defer gather.Stop()
	for {
		select {
		case <-s.closed:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-gather.C:
			if done, err := s.onGatherTimeout(); done {
				return err
			}
			gather.Reset(s.opt.GatherTimeout)
		case ev := <-s.events:
			if ev.kind != evProposal && ev.kind != evDied {
				continue // stray abort outside a round
			}
			peers, ok := s.ready()
			if !ok {
				continue
			}
			done, err := s.execute(ctx, peers)
			if done {
				return err
			}
			if !gather.Stop() {
				select {
				case <-gather.C:
				default:
				}
			}
			gather.Reset(s.opt.GatherTimeout)
		}
	}
}

// ready reports whether the alive peers cover [0, P) exactly and all have a
// pending proposal; it returns them ordered by range.
func (s *Sequencer) ready() ([]*seqConn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var peers []*seqConn
	for _, sc := range s.byName {
		sc.mu.Lock()
		alive, prop := sc.alive, sc.prop
		sc.mu.Unlock()
		if !alive {
			continue
		}
		if prop == nil {
			return nil, false
		}
		peers = append(peers, sc)
	}
	if len(peers) == 0 {
		return nil, false
	}
	for i := 0; i < len(peers); i++ {
		for j := i + 1; j < len(peers); j++ {
			if peers[j].lo < peers[i].lo {
				peers[i], peers[j] = peers[j], peers[i]
			}
		}
	}
	next := 0
	for _, sc := range peers {
		if sc.lo != next {
			return nil, false
		}
		next = sc.hi
	}
	if next != s.opt.P {
		return nil, false
	}
	return peers, true
}

// onGatherTimeout fails every waiting peer with a StallError naming the
// uncovered processor ranges (they retry and re-propose), or ends the
// session when every peer is gone and none came back.
func (s *Sequencer) onGatherTimeout() (sessionOver bool, err error) {
	s.mu.Lock()
	var alive []*seqConn
	for _, sc := range s.byName {
		sc.mu.Lock()
		if sc.alive {
			alive = append(alive, sc)
		}
		sc.mu.Unlock()
	}
	hadPeers := s.hadPeers
	s.mu.Unlock()
	if len(alive) == 0 {
		if hadPeers {
			return true, &transport.LinkError{Peer: "peers", Op: "gather", Err: fmt.Errorf("all peers lost and none rejoined within %v", s.opt.GatherTimeout)}
		}
		return false, nil
	}
	// Some peers wait; name the missing processors so the diagnostics say
	// who is being waited for.
	covered := make([]bool, s.opt.P)
	waiting := false
	for _, sc := range alive {
		sc.mu.Lock()
		if sc.prop != nil {
			waiting = true
		}
		sc.mu.Unlock()
		for i := sc.lo; i < sc.hi && i < s.opt.P; i++ {
			covered[i] = true
		}
	}
	if !waiting {
		return false, nil // nobody is blocked on the gather
	}
	var missing []mcb.ProcState
	for i, c := range covered {
		if !c {
			missing = append(missing, mcb.ProcState{Proc: i, LastOp: "unjoined"})
		}
	}
	stall := &mcb.StallError{Timeout: s.opt.GatherTimeout, Cycle: -1, Stalled: missing}
	s.logf("gather timeout: failing %d waiting peer(s): %v", len(alive), stall)
	for _, sc := range alive {
		sc.mu.Lock()
		sc.prop = nil
		sc.mu.Unlock()
		sc.send(fFail, marshal(failBody{Err: encodeErr(stall)}))
	}
	return false, nil
}

// execute runs one agreed collective step. sessionOver reports that Serve
// should return.
func (s *Sequencer) execute(ctx context.Context, peers []*seqConn) (sessionOver bool, err error) {
	props := make([]*proposal, len(peers))
	for i, sc := range peers {
		sc.mu.Lock()
		props[i] = sc.prop
		sc.prop = nil
		sc.mu.Unlock()
	}
	kind := props[0].kind
	// A rejoining peer opens its attempt with a phase-sync exchange. The
	// rest of the group may be blocked proposing a different step without
	// ever having seen a failed attempt (the peer died exactly at a round
	// boundary, so the survivors just stalled in this gather) — that is a
	// recoverable disagreement, not a driver divergence: fail the step
	// retryably so every driver backs off and re-proposes the sync.
	resync := -1
	for i, p := range props {
		if p.kind == pXchg && strings.HasSuffix(p.tag, ":phase-sync") {
			resync = i
			break
		}
	}
	for i, p := range props {
		if p.kind != kind || p.tag != props[0].tag || string(p.cfg) != string(props[0].cfg) {
			if resync >= 0 {
				rs := &transport.LinkError{Peer: peers[resync].name, Op: "resync",
					Err: fmt.Errorf("peer rejoined and requested a phase resync")}
				s.logf("peer %q requested a phase resync; failing the step retryably for all peers", peers[resync].name)
				for _, sc := range peers {
					sc.send(fFail, marshal(failBody{Err: encodeErr(rs)}))
				}
				return false, nil
			}
			// The peers' drivers diverged — they are no longer executing the
			// same deterministic computation. Fatal and not retryable: a
			// retry would diverge identically.
			div := fmt.Errorf("tcp: protocol divergence: peer %q proposed a different step than peer %q (kind %d vs %d, tag %q vs %q)",
				peers[i].name, peers[0].name, p.kind, kind, p.tag, props[0].tag)
			s.logf("%v", div)
			for _, sc := range peers {
				sc.send(fFail, marshal(failBody{Err: encodeErr(div)}))
			}
			return false, nil
		}
	}
	switch kind {
	case pBye:
		s.logf("all peers done")
		return true, nil
	case pXchg:
		merged := make([][]byte, s.opt.P)
		for i, sc := range peers {
			for j, b := range props[i].blobs {
				if idx := sc.lo + j; idx < s.opt.P {
					merged[idx] = b
				}
			}
		}
		pay := marshal(xchgAllBody{Tag: props[0].tag, Blobs: merged})
		for _, sc := range peers {
			sc.send(fXchgAll, pay)
		}
		return false, nil
	case pRound:
		s.runRound(ctx, peers, props[0].cfg)
		return false, nil
	}
	return false, nil
}

// runRound executes one engine round over the peers' relayed processors.
func (s *Sequencer) runRound(ctx context.Context, peers []*seqConn, cfgJSON []byte) {
	cfg, err := decodeConfig(cfgJSON)
	if err == nil && cfg.P != s.opt.P {
		err = fmt.Errorf("tcp: round config P=%d, sequencer serves P=%d", cfg.P, s.opt.P)
	}
	if err != nil {
		for _, sc := range peers {
			sc.send(fFail, marshal(failBody{Err: encodeErr(err)}))
		}
		return
	}
	cfg.AbortC = make(chan struct{})
	cfg.AbortGrace = s.opt.AbortGrace

	s.mu.Lock()
	s.roundNum++
	num := s.roundNum
	s.mu.Unlock()

	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	rs := &roundState{num: num, abortC: cfg.AbortC, cancel: cancel}
	rs.boxes = make([]*mailbox, cfg.P)
	progs := make([]func(mcb.Node), cfg.P)
	for i := range rs.boxes {
		rs.boxes[i] = newMailbox()
		progs[i] = relayProgram(rs, i)
	}
	s.round.Store(rs)
	defer s.round.Store(nil)

	type runOut struct {
		res *mcb.Result
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		r, rerr := mcb.RunContext(rctx, cfg, progs)
		resCh <- runOut{r, rerr}
	}()

	s.logf("round %d: %d peers, p=%d k=%d", num, len(peers), cfg.P, cfg.K)
	startPay := marshal(startBody{Round: num})
	for _, sc := range peers {
		sc.send(fStart, startPay)
	}

	var out runOut
	for waiting := true; waiting; {
		select {
		case out = <-resCh:
			waiting = false
		case ev := <-s.events:
			member := false
			for _, sc := range peers {
				if sc == ev.conn {
					member = true
				}
			}
			if !member {
				continue // a rejoiner's event; not part of this round
			}
			switch ev.kind {
			case evDied:
				// A peer link died mid-round: its processors will never op
				// again, so fail fast with the diagnosis the watchdog would
				// eventually produce — a stall attributed to that peer's
				// processors — rather than waiting out the stall timeout.
				stalled := make([]mcb.ProcState, 0, ev.conn.hi-ev.conn.lo)
				for p := ev.conn.lo; p < ev.conn.hi; p++ {
					stalled = append(stalled, mcb.ProcState{Proc: p, LastOp: "link-lost"})
				}
				cancel(&mcb.StallError{Timeout: s.opt.PeerTimeout, Cycle: -1, Stalled: stalled})
				s.logf("round %d: peer %q lost (%s); aborting", num, ev.conn.name, ev.msg)
			case evAbort:
				cancel(&mcb.AbortError{Proc: -1, VProc: -1, Msg: "peer " + ev.conn.name + " cancelled: " + ev.msg})
			case evProposal:
				// A proposal cannot arrive from a peer participating in this
				// round (its Run blocks until fDone); it is a rejoiner ahead
				// of the next gather. Leave it pending.
			}
		case <-ctx.Done():
			cancel(context.Cause(ctx))
		}
	}

	done := doneBody{Round: num, Err: encodeErr(out.err)}
	if out.res != nil {
		done.Stats = &out.res.Stats
	}
	pay := marshal(done)
	s.mu.Lock()
	var alive []*seqConn
	for _, sc := range s.byName {
		sc.mu.Lock()
		if sc.alive {
			alive = append(alive, sc)
		}
		sc.mu.Unlock()
	}
	s.mu.Unlock()
	for _, sc := range alive {
		sc.send(fDone, pay)
	}
	if out.err != nil {
		s.logf("round %d failed: %v", num, out.err)
	} else {
		s.logf("round %d ok: %d cycles, %d messages", num, out.res.Stats.Cycles, out.res.Stats.Messages)
	}
}

// relayProgram returns the engine program standing in for remote processor
// id: it replays the ops the owning peer sends, one cycle at a time, and
// ships each cycle's result back. Crash-stops fire inside the node ops
// (panicking this goroutine exactly like a local processor); engine aborts
// close abortC, which unwinds the relay through the normal exit path.
func relayProgram(rs *roundState, id int) func(mcb.Node) {
	return func(n mcb.Node) {
		box := rs.boxes[id]
		for {
			bop, aborted := box.pop(rs.abortC)
			if aborted {
				return
			}
			op := bop.op
			for _, ph := range op.Phases {
				n.Phase(ph)
			}
			var msg mcb.Message
			if op.Msg != nil {
				msg = *op.Msg
			}
			res := wireRes{Proc: id}
			switch op.Kind {
			case wExit:
				return
			case wAux:
				n.AccountAux(op.N)
				continue // pure accounting: no cycle, no ack
			case wAbort:
				n.Abortf("%s", op.Str) // does not return
			case wWrite:
				n.Write(op.WCh, msg)
			case wRead:
				res.Msg, res.OK = n.Read(op.RCh)
			case wWriteRead:
				res.Msg, res.OK = n.WriteRead(op.WCh, msg, op.RCh)
			case wIdle:
				n.Idle()
			case wIdleN:
				n.IdleN(int(op.N))
			default:
				n.Abortf("tcp: unknown wire op kind %d", op.Kind)
			}
			bop.from.send(fResults, marshal(resultsBody{Round: rs.num, Res: []wireRes{res}}))
		}
	}
}

// acceptLoop admits peer connections.
func (s *Sequencer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.opt.Wrap != nil {
			c = s.opt.Wrap(c)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handshake(c)
		}()
	}
}

// track registers an in-flight handshake connection so Close can cut it
// short; reports false when the sequencer is already closed.
func (s *Sequencer) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.inflight[c] = struct{}{}
	return true
}

func (s *Sequencer) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.inflight, c)
	s.mu.Unlock()
}

// handshake admits one connection: hello in, welcome out, then the
// connection joins the session. The hello frame's header epoch is the peer's
// claim about which sequencer generation it is in; admission negotiates it
// against s.epoch (see the epoch rules on the frame format in frame.go).
func (s *Sequencer) handshake(c net.Conn) {
	if !s.track(c) {
		c.Close()
		return
	}
	defer s.untrack(c)
	fr := newFrameReader(bufio.NewReader(c))
	c.SetReadDeadline(time.Now().Add(s.opt.PeerTimeout))
	f, err := fr.read()
	if err != nil || f.typ != fHello {
		c.Close()
		return
	}
	var hello helloBody
	if err := jsonUnmarshal(f.pay, &hello); err != nil {
		c.Close()
		return
	}
	reject := func(reason string, cur uint64, transient bool) {
		// The reject welcome echoes the hello's header epoch so the peer's
		// reader accepts the frame whatever epoch it is in; the body's Epoch
		// carries the group's actual position so a stale peer can catch up.
		buf := appendFrame(nil, fWelcome, 1, f.epoch, marshal(welcomeBody{OK: false, Reason: reason, P: s.opt.P, Epoch: cur, Retry: transient}))
		c.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
		c.Write(buf)
		c.Close()
	}
	if s.opt.Job != "" && hello.Job != s.opt.Job {
		reject(fmt.Sprintf("job %q, sequencer serves %q", hello.Job, s.opt.Job), s.Epoch(), false)
		return
	}
	if hello.Lo < 0 || hello.Hi > s.opt.P || hello.Hi <= hello.Lo {
		reject(fmt.Sprintf("range [%d, %d) outside [0, %d)", hello.Lo, hello.Hi, s.opt.P), s.Epoch(), false)
		return
	}
	sc := &seqConn{s: s, c: c, name: hello.Name, lo: hello.Lo, hi: hello.Hi,
		out: make(chan outMsg, 256), dead: make(chan struct{})}
	cands := uint64(s.opt.Candidates)
	s.mu.Lock()
	he, cur := f.epoch, s.epoch
	if he < cur {
		s.mu.Unlock()
		reject(fmt.Sprintf("stale epoch %d, group is at epoch %d", he, cur), cur, false)
		return
	}
	if he%cands != uint64(s.opt.Index) {
		s.mu.Unlock()
		reject(fmt.Sprintf("epoch %d is served by candidate %d, this sequencer is candidate %d (misconfigured peer file?)", he, he%cands, s.opt.Index), cur, false)
		return
	}
	if he > cur {
		// A promotion, or a wrap-around back to this candidate: adopt the
		// higher epoch.
		s.epoch = he
		cur = he
		s.logf("adopting epoch %d (hello from %q); fencing older connections", he, hello.Name)
	}
	// Fence every connection from an older generation — zombie-epoch traffic
	// must not reach the current session. die() can block on the events
	// channel, so it runs after the lock is released; until then a fenced
	// conn's alive flag still reads true, which is why staleness is judged by
	// epoch, not liveness.
	var fenced []*seqConn
	for _, old := range s.byName {
		old.mu.Lock()
		stale := old.alive && old.epoch < cur
		old.mu.Unlock()
		if stale {
			fenced = append(fenced, old)
		}
	}
	if old, ok := s.byName[hello.Name]; ok {
		old.mu.Lock()
		dup := old.alive && old.epoch == cur
		old.mu.Unlock()
		if dup {
			s.mu.Unlock()
			for _, oc := range fenced {
				oc.die(fmt.Errorf("fenced: superseded by epoch %d", cur))
			}
			// Transient: a peer that tore down and redialed can beat its own
			// FIN here, so its previous connection still reads alive. By the
			// peer's next sweep attempt the old conn is reaped; only a genuine
			// name collision keeps being rejected until the sweep is exhausted.
			reject(fmt.Sprintf("peer %q already connected", hello.Name), cur, true)
			return
		}
	}
	sc.epoch = cur
	s.byName[hello.Name] = sc
	s.hadPeers = true
	sc.mu.Lock()
	sc.alive = true
	sc.mu.Unlock()
	s.mu.Unlock()
	for _, oc := range fenced {
		oc.die(fmt.Errorf("fenced: superseded by epoch %d", cur))
	}
	s.logf("peer %q joined at epoch %d: procs [%d, %d)%s", hello.Name, cur, hello.Lo, hello.Hi,
		map[bool]string{true: " (resume)", false: ""}[hello.Resume])

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sc.writeLoop()
	}()
	sc.send(fWelcome, marshal(welcomeBody{OK: true, P: s.opt.P, Epoch: cur}))
	sc.readLoop(fr)
}

// die marks the connection dead exactly once and tells the orchestrator.
func (sc *seqConn) die(err error) {
	sc.deadOnce.Do(func() {
		sc.mu.Lock()
		sc.alive = false
		sc.prop = nil
		sc.mu.Unlock()
		close(sc.dead)
		sc.c.Close()
		msg := "closed"
		if err != nil {
			msg = err.Error()
		}
		select {
		case sc.s.events <- seqEvent{kind: evDied, conn: sc, msg: msg}:
		case <-sc.s.closed:
		}
	})
}

// send enqueues one frame; drops it if the connection is dead.
func (sc *seqConn) send(typ byte, pay []byte) {
	select {
	case sc.out <- outMsg{typ, pay}:
	case <-sc.dead:
	}
}

func (sc *seqConn) writeLoop() {
	hb := time.NewTicker(sc.s.opt.HeartbeatEvery)
	defer hb.Stop()
	var seq uint32
	var buf []byte
	write := func(typ byte, pay []byte) bool {
		seq++
		buf = appendFrame(buf[:0], typ, seq, sc.epoch, pay)
		sc.c.SetWriteDeadline(time.Now().Add(sc.s.opt.WriteTimeout))
		if _, err := sc.c.Write(buf); err != nil {
			sc.die(&transport.LinkError{Peer: sc.name, Op: "write", Err: err})
			return false
		}
		return true
	}
	for {
		select {
		case <-sc.dead:
			return
		case m := <-sc.out:
			if !write(m.typ, m.pay) {
				return
			}
		case <-hb.C:
			if !write(fHeartbeat, nil) {
				return
			}
		}
	}
}

func (sc *seqConn) readLoop(fr *frameReader) {
	var win seqWindow
	win.last = 1 // the hello consumed seq 1
	for {
		sc.c.SetReadDeadline(time.Now().Add(sc.s.opt.PeerTimeout))
		f, err := fr.read()
		if err != nil {
			sc.die(&transport.LinkError{Peer: sc.name, Op: "read", Err: err})
			return
		}
		if f.epoch != sc.epoch {
			sc.die(&transport.LinkError{Peer: sc.name, Op: "frame",
				Err: fmt.Errorf("epoch %d frame on an epoch %d session", f.epoch, sc.epoch)})
			return
		}
		dup, err := win.admit(f.seq)
		if err != nil {
			sc.die(&transport.LinkError{Peer: sc.name, Op: "frame", Err: err})
			return
		}
		if dup {
			continue
		}
		switch f.typ {
		case fHeartbeat:
		case fOps:
			var body opsBody
			if err := jsonUnmarshal(f.pay, &body); err != nil {
				sc.die(&transport.LinkError{Peer: sc.name, Op: "frame", Err: err})
				return
			}
			rs := sc.s.round.Load()
			if rs == nil || rs.num != body.Round {
				continue // stale ops from a finished round
			}
			for _, op := range body.Ops {
				if op.Proc < 0 || op.Proc >= len(rs.boxes) {
					continue
				}
				rs.boxes[op.Proc].push(op, sc)
			}
		case fRound:
			var body roundBody
			if err := jsonUnmarshal(f.pay, &body); err != nil {
				sc.die(&transport.LinkError{Peer: sc.name, Op: "frame", Err: err})
				return
			}
			// body.Cfg is a json.RawMessage aliasing the frameReader's scratch
			// buffer, and the proposal outlives this read — copy it.
			sc.propose(&proposal{kind: pRound, tag: body.Tag, cfg: append([]byte(nil), body.Cfg...)})
		case fXchg:
			var body xchgBody
			if err := jsonUnmarshal(f.pay, &body); err != nil {
				sc.die(&transport.LinkError{Peer: sc.name, Op: "frame", Err: err})
				return
			}
			sc.propose(&proposal{kind: pXchg, tag: body.Tag, blobs: body.Blobs})
		case fBye:
			sc.propose(&proposal{kind: pBye})
		case fAbort:
			var body abortBody
			jsonUnmarshal(f.pay, &body)
			select {
			case sc.s.events <- seqEvent{kind: evAbort, conn: sc, msg: body.Msg}:
			case <-sc.s.closed:
			}
		default:
			sc.die(&transport.LinkError{Peer: sc.name, Op: "frame", Err: fmt.Errorf("unexpected frame type %d", f.typ)})
			return
		}
	}
}

func (sc *seqConn) propose(p *proposal) {
	sc.mu.Lock()
	sc.prop = p
	sc.mu.Unlock()
	select {
	case sc.s.events <- seqEvent{kind: evProposal, conn: sc}:
	case <-sc.s.closed:
	}
}
