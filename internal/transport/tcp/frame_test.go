package tcp

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, pay := range payloads {
		buf = appendFrame(buf, byte(i+1), uint32(i+1), pay)
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i, pay := range payloads {
		f, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.typ != byte(i+1) || f.seq != uint32(i+1) || !bytes.Equal(f.pay, pay) {
			t.Fatalf("frame %d round-tripped as type=%d seq=%d len=%d", i, f.typ, f.seq, len(f.pay))
		}
	}
	if _, err := readFrame(r); err == nil {
		t.Fatal("read past the last frame succeeded")
	}
}

func TestFrameChecksumDetectsBitFlips(t *testing.T) {
	base := appendFrame(nil, fOps, 7, []byte(`{"round":1}`))
	// Flip one bit at every position past the length prefix; each flip must
	// be rejected (length-prefix flips are covered by the limit check and
	// read-shortfall instead).
	for i := 4; i < len(base); i++ {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x10
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(mut))); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestFrameLengthLimit(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, fOps, 0, 0, 0, 1}
	_, err := readFrame(bufio.NewReader(bytes.NewReader(hdr)))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized length prefix: got %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	full := appendFrame(nil, fResults, 3, []byte("payload"))
	for cut := 1; cut < len(full); cut++ {
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Fatalf("truncation at %d/%d bytes went undetected", cut, len(full))
		}
	}
}

func TestSeqWindow(t *testing.T) {
	var w seqWindow
	for seq := uint32(1); seq <= 3; seq++ {
		dup, err := w.admit(seq)
		if dup || err != nil {
			t.Fatalf("admit(%d): dup=%v err=%v", seq, dup, err)
		}
	}
	// Duplicates (a chaotic link re-sending) are discardable, not fatal.
	for _, seq := range []uint32{1, 2, 3} {
		dup, err := w.admit(seq)
		if !dup || err != nil {
			t.Fatalf("admit(dup %d): dup=%v err=%v", seq, dup, err)
		}
	}
	// A gap means a frame was silently lost: link failure.
	if _, err := w.admit(5); err == nil {
		t.Fatal("sequence gap went undetected")
	}
}
