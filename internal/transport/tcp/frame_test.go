package tcp

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	// Epochs exercise zero, small, and full-width values.
	epochs := []uint64{0, 1, 7, 1<<63 + 42}
	for i, pay := range payloads {
		buf = appendFrame(buf, byte(i+1), uint32(i+1), epochs[i], pay)
	}
	fr := newFrameReader(bufio.NewReader(bytes.NewReader(buf)))
	for i, pay := range payloads {
		f, err := fr.read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.typ != byte(i+1) || f.seq != uint32(i+1) || f.epoch != epochs[i] || !bytes.Equal(f.pay, pay) {
			t.Fatalf("frame %d round-tripped as type=%d seq=%d epoch=%d len=%d", i, f.typ, f.seq, f.epoch, len(f.pay))
		}
	}
	if _, err := fr.read(); err == nil {
		t.Fatal("read past the last frame succeeded")
	}
}

func TestFrameChecksumDetectsBitFlips(t *testing.T) {
	base := appendFrame(nil, fOps, 7, 3, []byte(`{"round":1}`))
	// Flip one bit at every position past the length prefix — the epoch field
	// included; each flip must be rejected (length-prefix flips are covered
	// by the limit check and read-shortfall instead).
	for i := 4; i < len(base); i++ {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x10
		if _, err := newFrameReader(bufio.NewReader(bytes.NewReader(mut))).read(); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestFrameLengthLimit(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, fOps, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	_, err := newFrameReader(bufio.NewReader(bytes.NewReader(hdr))).read()
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized length prefix: got %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	full := appendFrame(nil, fResults, 3, 1, []byte("payload"))
	for cut := 1; cut < len(full); cut++ {
		if _, err := newFrameReader(bufio.NewReader(bytes.NewReader(full[:cut]))).read(); err == nil {
			t.Fatalf("truncation at %d/%d bytes went undetected", cut, len(full))
		}
	}
}

// TestFrameReaderReusesScratch pins the scratch-buffer contract: after the
// first read, payloads that fit the grown scratch allocate nothing, and a
// frame's payload aliases the scratch (so it is only valid until the next
// read — decoders that retain bytes must copy).
func TestFrameReaderReusesScratch(t *testing.T) {
	var buf []byte
	for seq := uint32(1); seq <= 16; seq++ {
		buf = appendFrame(buf, fOps, seq, 0, bytes.Repeat([]byte{byte(seq)}, 512))
	}
	fr := newFrameReader(bufio.NewReader(bytes.NewReader(buf)))
	first, err := fr.read()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(7, func() {
		if _, err := fr.read(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame read allocates %.1f times per frame, want 0", allocs)
	}
	// The first frame's payload was overwritten by the later reads: aliasing
	// is the documented cost of the reuse.
	if first.pay[0] == 1 {
		t.Fatal("payload survived subsequent reads; scratch is not being reused")
	}
}

// BenchmarkFrameRead measures the steady-state decode path of one connection:
// b.ReportAllocs keeps the zero-allocation property visible in CI output.
func BenchmarkFrameRead(b *testing.B) {
	pay := bytes.Repeat([]byte{0x5A}, 1024)
	one := appendFrame(nil, fOps, 1, 0, pay)
	// A looping reader that replays the same encoded frame forever.
	fr := newFrameReader(bufio.NewReader(&repeatReader{b: one}))
	b.SetBytes(int64(len(one)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fr.read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameAppend measures the encode path (already buffer-reusing).
func BenchmarkFrameAppend(b *testing.B) {
	pay := bytes.Repeat([]byte{0x5A}, 1024)
	var buf []byte
	b.SetBytes(int64(len(pay)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendFrame(buf[:0], fOps, uint32(i+1), 0, pay)
	}
	_ = buf
}

// repeatReader replays one byte slice endlessly.
type repeatReader struct {
	b   []byte
	off int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.b) {
		r.off = 0
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

func TestSeqWindow(t *testing.T) {
	var w seqWindow
	for seq := uint32(1); seq <= 3; seq++ {
		dup, err := w.admit(seq)
		if dup || err != nil {
			t.Fatalf("admit(%d): dup=%v err=%v", seq, dup, err)
		}
	}
	// Duplicates (a chaotic link re-sending) are discardable, not fatal.
	for _, seq := range []uint32{1, 2, 3} {
		dup, err := w.admit(seq)
		if !dup || err != nil {
			t.Fatalf("admit(dup %d): dup=%v err=%v", seq, dup, err)
		}
	}
	// A gap means a frame was silently lost: link failure.
	if _, err := w.admit(5); err == nil {
		t.Fatal("sequence gap went undetected")
	}
}
