package crew

import (
	"errors"
	"testing"
	"time"

	"mcbnet/internal/core"
	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
	"mcbnet/internal/seq"
)

func cfg(p, cells int) Config {
	return Config{P: p, Cells: cells, StallTimeout: 10 * time.Second}
}

func TestReadObservesPreStepMemory(t *testing.T) {
	// In one step, a reader sees the value from before the concurrent write.
	got := make([]Value, 2)
	progs := []func(*Proc){
		func(pr *Proc) {
			pr.Write(0, Value{A: 1}) // step 1
			pr.Write(0, Value{A: 2}) // step 2
		},
		func(pr *Proc) {
			pr.Idle()           // step 1
			got[1] = pr.Read(0) // step 2: sees step-1 value
		},
	}
	if _, err := Run(cfg(2, 1), progs); err != nil {
		t.Fatal(err)
	}
	if got[1].A != 1 {
		t.Errorf("read saw %d, want the pre-step value 1", got[1].A)
	}
}

func TestMemoryPersists(t *testing.T) {
	var v Value
	progs := []func(*Proc){
		func(pr *Proc) {
			pr.Write(3, Value{A: 42})
			pr.Idle()
			pr.Idle()
		},
		func(pr *Proc) {
			pr.Idle()
			pr.Idle()
			v = pr.Read(3) // many steps later: still there
		},
	}
	if _, err := Run(cfg(2, 4), progs); err != nil {
		t.Fatal(err)
	}
	if v.A != 42 {
		t.Errorf("persistent read = %d, want 42", v.A)
	}
}

func TestConcurrentReadAllowed(t *testing.T) {
	const p = 6
	got := make([]int64, p)
	prog := func(pr *Proc) {
		if pr.ID() == 0 {
			pr.Write(0, Value{A: 9})
		} else {
			pr.Idle()
		}
		got[pr.ID()] = pr.Read(0).A // all p read the same cell together
	}
	if _, err := RunUniform(cfg(p, 2), prog); err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != 9 {
			t.Errorf("proc %d read %d", i, g)
		}
	}
}

func TestExclusiveWriteViolation(t *testing.T) {
	prog := func(pr *Proc) {
		pr.Write(1, Value{A: int64(pr.ID())})
	}
	if _, err := RunUniform(cfg(3, 2), prog); !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
}

func TestInvalidCellAborts(t *testing.T) {
	for _, bad := range []func(pr *Proc){
		func(pr *Proc) { pr.Read(9) },
		func(pr *Proc) { pr.Write(-1, Value{}) },
	} {
		if _, err := RunUniform(cfg(2, 2), bad); !errors.Is(err, ErrAborted) {
			t.Fatalf("expected abort, got %v", err)
		}
	}
}

func TestStepAndStatsAccounting(t *testing.T) {
	res, err := RunUniform(cfg(2, 2), func(pr *Proc) {
		pr.Step(0, pr.ID(), Value{A: int64(pr.ID())})
		pr.Idle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steps != 2 {
		t.Errorf("steps = %d, want 2", res.Stats.Steps)
	}
	if res.Stats.Reads != 2 || res.Stats.Writes != 2 {
		t.Errorf("reads/writes = %d/%d, want 2/2", res.Stats.Reads, res.Stats.Writes)
	}
	if res.Stats.CellsTouched != 2 {
		t.Errorf("cells touched = %d, want 2", res.Stats.CellsTouched)
	}
}

func TestMaxSteps(t *testing.T) {
	c := cfg(1, 1)
	c.MaxSteps = 4
	_, err := RunUniform(c, func(pr *Proc) {
		for {
			pr.Idle()
		}
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
}

// --- MCB adapter tests: Section 9's CREW port ---

func TestAdapterBroadcastAndSilence(t *testing.T) {
	const p, k = 4, 2
	got := make([]int64, p)
	silent := make([]bool, p)
	prog := func(pr *Proc) {
		n := NewMCBNode(pr, k)
		if n.ID() == 1 {
			m, ok := n.WriteRead(0, mcb.MsgX(1, 55), 0)
			if !ok {
				n.Abortf("writer lost own message")
			}
			got[n.ID()] = m.X
		} else {
			m, ok := n.Read(0)
			if ok {
				got[n.ID()] = m.X
			}
		}
		// Next cycle: nobody writes; the stale cell must read as silence.
		_, ok := n.Read(0)
		silent[n.ID()] = !ok
	}
	if _, err := RunUniform(cfg(p, k), prog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		if got[i] != 55 {
			t.Errorf("proc %d got %d", i, got[i])
		}
		if !silent[i] {
			t.Errorf("proc %d saw a stale cell as a message", i)
		}
	}
}

// TestColumnsortOnCREW is the Section 9 claim end to end: the MCB
// Columnsort running on the CREW machine with only k <= p shared cells.
func TestColumnsortOnCREW(t *testing.T) {
	const n, p, k = 512, 8, 4
	r := dist.NewRNG(91)
	inputs := dist.Values(r, dist.Even(n, p))
	outputs := make([][]int64, p)
	res, err := RunUniform(cfg(p, k), func(pr *Proc) {
		node := NewMCBNode(pr, k)
		outputs[node.ID()] = core.SortNode(node, inputs[node.ID()], core.AlgoColumnsortGather)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify global descending order with preserved cardinalities.
	flat := dist.Flatten(inputs)
	seq.SortInt64Desc(flat)
	idx := 0
	for i := range outputs {
		if len(outputs[i]) != len(inputs[i]) {
			t.Fatalf("proc %d cardinality changed", i)
		}
		for _, v := range outputs[i] {
			if v != flat[idx] {
				t.Fatalf("global rank %d: got %d, want %d", idx, v, flat[idx])
			}
			idx++
		}
	}
	// The paper's point: auxiliary shared memory is at most p cells.
	if res.Stats.CellsTouched > p {
		t.Errorf("shared cells touched = %d > p = %d", res.Stats.CellsTouched, p)
	}
	t.Logf("CREW Columnsort: %d steps, %d shared cells", res.Stats.Steps, res.Stats.CellsTouched)
}

func TestSelectOnCREW(t *testing.T) {
	const n, p, k = 256, 8, 4
	r := dist.NewRNG(92)
	inputs := dist.Values(r, dist.NearlyEven(n, p))
	want := func() int64 {
		flat := dist.Flatten(inputs)
		seq.SortInt64Desc(flat)
		return flat[n/2-1]
	}()
	got := make([]int64, p)
	if _, err := RunUniform(cfg(p, k), func(pr *Proc) {
		node := NewMCBNode(pr, k)
		got[node.ID()] = core.SelectNode(node, inputs[node.ID()], n/2, 0)
	}); err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != want {
			t.Errorf("proc %d selected %d, want %d", i, g, want)
		}
	}
}

func TestAdapterMisuse(t *testing.T) {
	// Invalid k for the adapter and invalid channels through it.
	if _, err := RunUniform(cfg(2, 2), func(pr *Proc) {
		NewMCBNode(pr, 3) // k > cells
	}); !errors.Is(err, ErrAborted) {
		t.Errorf("expected abort for k > cells, got %v", err)
	}
	if _, err := RunUniform(cfg(2, 2), func(pr *Proc) {
		n := NewMCBNode(pr, 2)
		n.Read(5)
	}); !errors.Is(err, ErrAborted) {
		t.Errorf("expected abort for bad channel, got %v", err)
	}
}

func TestAdapterIdleNAndAccounting(t *testing.T) {
	if _, err := RunUniform(cfg(2, 2), func(pr *Proc) {
		n := NewMCBNode(pr, 2)
		n.AccountAux(5)
		n.IdleN(3)
		if n.Cycles() != 3 {
			n.Abortf("cycles = %d, want 3", n.Cycles())
		}
		if n.MaxAux() != 5 {
			n.Abortf("aux = %d", n.MaxAux())
		}
	}); err != nil {
		t.Fatal(err)
	}
}
