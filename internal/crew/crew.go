// Package crew implements a synchronous Concurrent-Read Exclusive-Write
// (CREW) shared-memory machine ([Snir83] in the paper) and an adapter that
// presents it as an MCB network, realizing Section 9's observation: the
// Columnsort algorithm for even distributions can be used in the CREW model
// with only p shared memory cells of auxiliary storage.
//
// The machine has P processors and a fixed number of shared cells. Each
// synchronous step, every processor may read one cell and write one cell;
// reads observe the memory state from before the step's writes; two writes
// to the same cell in the same step violate exclusive-write and fail the
// computation (mirroring the MCB collision rule).
package crew

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Value is the content of one shared memory cell: a constant number of
// machine words, matching the MCB message size.
type Value struct {
	A, B, C, D int64
}

// Config describes the machine.
type Config struct {
	// P is the number of processors.
	P int
	// Cells is the shared memory size.
	Cells int
	// MaxSteps aborts runaway computations (0 = no limit).
	MaxSteps int64
	// StallTimeout aborts when no step completes for this long (default 30s).
	StallTimeout time.Duration
}

// Stats counts the machine's costs.
type Stats struct {
	// Steps is the number of synchronous steps.
	Steps int64
	// Reads and Writes count cell accesses.
	Reads, Writes int64
	// CellsTouched is the number of distinct cells ever written — the
	// auxiliary shared-memory footprint.
	CellsTouched int
}

// Result is the outcome of a run.
type Result struct {
	Stats Stats
}

// ErrAborted is wrapped by all abort errors.
var ErrAborted = errors.New("crew: run aborted")

type opKind uint8

const (
	opNone opKind = 1 << iota
	opRead
	opWrite
	opExit opKind = 0
)

type stepOp struct {
	kind      opKind // bitmask of opRead|opWrite; 0 = exit; opNone = idle
	readCell  int
	writeCell int
	writeVal  Value
}

type generation struct{ ch chan struct{} }

// Proc is the per-processor handle. Each step every live processor must
// call exactly one of Step, Read, Write or Idle.
type Proc struct {
	id int
	e  *engine
}

// ID returns the processor index.
func (p *Proc) ID() int { return p.id }

// P returns the number of processors.
func (p *Proc) P() int { return p.e.cfg.P }

// Cells returns the shared memory size.
func (p *Proc) Cells() int { return p.e.cfg.Cells }

// Step reads readCell and writes writeVal to writeCell in one synchronous
// step; the read observes the pre-step memory.
func (p *Proc) Step(readCell int, writeCell int, writeVal Value) Value {
	r := p.e.step(p.id, stepOp{kind: opRead | opWrite, readCell: readCell, writeCell: writeCell, writeVal: writeVal})
	return r
}

// Read reads one cell this step.
func (p *Proc) Read(cell int) Value {
	return p.e.step(p.id, stepOp{kind: opRead, readCell: cell})
}

// Write writes one cell this step.
func (p *Proc) Write(cell int, v Value) {
	p.e.step(p.id, stepOp{kind: opWrite, writeCell: cell, writeVal: v})
}

// Idle spends one step without touching memory.
func (p *Proc) Idle() {
	p.e.step(p.id, stepOp{kind: opNone})
}

// Abortf fails the whole computation.
func (p *Proc) Abortf(format string, args ...any) {
	err := fmt.Errorf("%w: processor %d: %s", ErrAborted, p.id, fmt.Sprintf(format, args...))
	p.e.abort(err)
	panic(crewAbort{err})
}

type crewAbort struct{ err error }

type engine struct {
	cfg     Config
	mem     []Value
	touched []bool
	slots   []stepOp
	results []Value
	live    []bool
	liveN   int

	mu       sync.Mutex
	arrived  int32
	expected int32
	gen      *generation

	stats    Stats
	steps    int64
	failed   bool
	abortErr error
	aborted  chan struct{}
	abortOne sync.Once
	allDone  chan struct{}
}

func (e *engine) abort(err error) {
	e.mu.Lock()
	if e.abortErr == nil {
		e.abortErr = err
	}
	e.failed = true
	e.mu.Unlock()
	e.abortOne.Do(func() { close(e.aborted) })
}

func (e *engine) isFailed() (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failed, e.abortErr
}

func (e *engine) step(id int, op stepOp) Value {
	if failed, err := e.isFailed(); failed {
		panic(crewAbort{err})
	}
	e.mu.Lock()
	g := e.gen
	e.slots[id] = op
	e.arrived++
	leader := e.arrived == e.expected
	e.mu.Unlock()
	if leader {
		e.resolve(g)
		if op.kind == opExit {
			return Value{}
		}
		if failed, err := e.isFailed(); failed {
			panic(crewAbort{err})
		}
		return e.results[id]
	}
	if op.kind == opExit {
		return Value{}
	}
	select {
	case <-g.ch:
	case <-e.aborted:
		_, err := e.isFailed()
		panic(crewAbort{err})
	}
	if failed, err := e.isFailed(); failed {
		panic(crewAbort{err})
	}
	return e.results[id]
}

func (e *engine) resolve(g *generation) {
	p := e.cfg.P
	anyWork := false
	// Read phase: observe pre-step memory.
	for id := 0; id < p; id++ {
		if !e.live[id] {
			continue
		}
		op := &e.slots[id]
		if op.kind&opRead != 0 {
			if op.readCell < 0 || op.readCell >= e.cfg.Cells {
				e.abort(fmt.Errorf("%w: processor %d read invalid cell %d", ErrAborted, id, op.readCell))
				close(g.ch)
				return
			}
			e.results[id] = e.mem[op.readCell]
			e.stats.Reads++
		}
		if op.kind != opExit {
			anyWork = true
		}
	}
	// Write phase: exclusive write.
	writer := map[int]int{}
	for id := 0; id < p; id++ {
		if !e.live[id] {
			continue
		}
		op := &e.slots[id]
		if op.kind&opWrite == 0 {
			continue
		}
		if op.writeCell < 0 || op.writeCell >= e.cfg.Cells {
			e.abort(fmt.Errorf("%w: processor %d wrote invalid cell %d", ErrAborted, id, op.writeCell))
			close(g.ch)
			return
		}
		if prev, ok := writer[op.writeCell]; ok {
			e.abort(fmt.Errorf("%w: exclusive-write violation on cell %d (processors %d and %d)", ErrAborted, op.writeCell, prev, id))
			close(g.ch)
			return
		}
		writer[op.writeCell] = id
		e.mem[op.writeCell] = op.writeVal
		if !e.touched[op.writeCell] {
			e.touched[op.writeCell] = true
			e.stats.CellsTouched++
		}
		e.stats.Writes++
	}
	if anyWork {
		e.stats.Steps++
		e.steps = e.stats.Steps
	}
	for id := 0; id < p; id++ {
		if e.live[id] && e.slots[id].kind == opExit {
			e.live[id] = false
			e.liveN--
		}
	}
	if e.cfg.MaxSteps > 0 && e.stats.Steps > e.cfg.MaxSteps {
		e.abort(fmt.Errorf("%w: step limit %d exceeded", ErrAborted, e.cfg.MaxSteps))
		close(g.ch)
		return
	}
	if e.liveN == 0 {
		close(e.allDone)
		close(g.ch)
		return
	}
	e.mu.Lock()
	e.arrived = 0
	e.expected = int32(e.liveN)
	e.gen = &generation{ch: make(chan struct{})}
	e.mu.Unlock()
	close(g.ch)
}

// Run executes one program per processor.
func Run(cfg Config, programs []func(*Proc)) (*Result, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("crew: P must be >= 1, got %d", cfg.P)
	}
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("crew: Cells must be >= 1, got %d", cfg.Cells)
	}
	if len(programs) != cfg.P {
		return nil, fmt.Errorf("crew: %d programs for %d processors", len(programs), cfg.P)
	}
	e := &engine{
		cfg:     cfg,
		mem:     make([]Value, cfg.Cells),
		touched: make([]bool, cfg.Cells),
		slots:   make([]stepOp, cfg.P),
		results: make([]Value, cfg.P),
		live:    make([]bool, cfg.P),
		aborted: make(chan struct{}),
		allDone: make(chan struct{}),
	}
	for i := range e.live {
		e.live[i] = true
	}
	e.liveN = cfg.P
	e.expected = int32(cfg.P)
	e.gen = &generation{ch: make(chan struct{})}

	var wg sync.WaitGroup
	for i := 0; i < cfg.P; i++ {
		pr := &Proc{id: i, e: e}
		prog := programs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				switch r := recover().(type) {
				case nil:
					pr.exit()
				case crewAbort:
				default:
					e.abort(fmt.Errorf("%w: processor %d panicked: %v", ErrAborted, pr.id, r))
					pr.exit()
				}
			}()
			prog(pr)
		}()
	}

	stall := cfg.StallTimeout
	if stall == 0 {
		stall = 30 * time.Second
	}
	tick := time.NewTicker(stall)
	defer tick.Stop()
	last := int64(-1)
	for {
		select {
		case <-e.allDone:
			wg.Wait()
			if _, err := e.isFailed(); err != nil {
				return nil, err
			}
			return &Result{Stats: e.stats}, nil
		case <-e.aborted:
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
			}
			_, err := e.isFailed()
			return nil, err
		case <-tick.C:
			e.mu.Lock()
			cur := e.steps
			e.mu.Unlock()
			if cur == last {
				e.abort(fmt.Errorf("%w: no step completed in %v", ErrAborted, stall))
			} else {
				last = cur
			}
		}
	}
}

// RunUniform runs the same program on every processor.
func RunUniform(cfg Config, program func(*Proc)) (*Result, error) {
	progs := make([]func(*Proc), cfg.P)
	for i := range progs {
		progs[i] = program
	}
	return Run(cfg, progs)
}

func (p *Proc) exit() {
	defer func() { _ = recover() }()
	p.e.step(p.id, stepOp{kind: opExit})
}
