package crew

import "mcbnet/internal/mcb"

// MCBNode adapts a CREW processor to the mcb.Node interface, so every MCB
// algorithm in this repository runs on the shared-memory machine unchanged:
// broadcast channel c becomes shared cell c, used as a single-slot mailbox.
//
// One MCB cycle maps to two CREW steps: a write step (writers store their
// message, stamped with the current cycle number) followed by a read step
// (readers load the cell and treat a stale stamp as silence — CREW memory
// persists, MCB channels do not). Collision-freedom maps to exclusive-write.
//
// Running the even-distribution Columnsort through this adapter with k = p
// cells realizes Section 9's claim that the auxiliary shared memory can be
// reduced to p cells.
type MCBNode struct {
	pr    *Proc
	k     int
	cycle int64
	aux   int64
}

var _ mcb.Node = (*MCBNode)(nil)

// NewMCBNode wraps a CREW processor as an MCB(p.P(), k) node; k must not
// exceed the machine's cell count.
func NewMCBNode(pr *Proc, k int) *MCBNode {
	if k < 1 || k > pr.Cells() {
		pr.Abortf("crew: MCB adapter needs 1 <= k <= cells, got k=%d cells=%d", k, pr.Cells())
	}
	return &MCBNode{pr: pr, k: k}
}

// ID returns the processor index.
func (n *MCBNode) ID() int { return n.pr.ID() }

// P returns the number of processors.
func (n *MCBNode) P() int { return n.pr.P() }

// K returns the number of emulated broadcast channels.
func (n *MCBNode) K() int { return n.k }

func (n *MCBNode) checkCh(ch int) {
	if ch < 0 || ch >= n.k {
		n.pr.Abortf("crew: channel %d out of range [0,%d)", ch, n.k)
	}
}

func encode(m mcb.Message, cycle int64) Value {
	// Pack the tag into the stamp word: D = cycle<<8 | tag.
	return Value{A: m.X, B: m.Y, C: m.Z, D: cycle<<8 | int64(m.Tag)}
}

func decode(v Value, cycle int64) (mcb.Message, bool) {
	if v.D>>8 != cycle {
		return mcb.Message{}, false // stale cell: MCB silence
	}
	return mcb.Message{Tag: uint8(v.D & 0xff), X: v.A, Y: v.B, Z: v.C}, true
}

// WriteRead broadcasts on writeCh and reads readCh in the same MCB cycle
// (two CREW steps).
func (n *MCBNode) WriteRead(writeCh int, m mcb.Message, readCh int) (mcb.Message, bool) {
	n.checkCh(writeCh)
	n.checkCh(readCh)
	n.cycle++
	n.pr.Write(writeCh, encode(m, n.cycle))
	return decode(n.pr.Read(readCh), n.cycle)
}

// Write broadcasts on writeCh.
func (n *MCBNode) Write(writeCh int, m mcb.Message) {
	n.checkCh(writeCh)
	n.cycle++
	n.pr.Write(writeCh, encode(m, n.cycle))
	n.pr.Idle()
}

// Read reads readCh; a stale cell reports silence.
func (n *MCBNode) Read(readCh int) (mcb.Message, bool) {
	n.checkCh(readCh)
	n.cycle++
	n.pr.Idle()
	return decode(n.pr.Read(readCh), n.cycle)
}

// Idle spends one MCB cycle (two CREW steps).
func (n *MCBNode) Idle() {
	n.cycle++
	n.pr.Idle()
	n.pr.Idle()
}

// IdleN spends nn MCB cycles.
func (n *MCBNode) IdleN(nn int) {
	for i := 0; i < nn; i++ {
		n.Idle()
	}
}

// Abortf fails the whole computation.
func (n *MCBNode) Abortf(format string, args ...any) {
	n.pr.Abortf(format, args...)
}

// AccountAux tracks the auxiliary-memory estimate locally (reported by
// MaxAux).
func (n *MCBNode) AccountAux(delta int64) { n.aux += delta }

// Phase is a no-op: the CREW machine owns the run accounting and has no
// phase attribution of its own.
func (n *MCBNode) Phase(name string) {}

// MaxAux returns the current local auxiliary estimate.
func (n *MCBNode) MaxAux() int64 { return n.aux }

// Cycles returns the number of MCB cycles spent through this adapter.
func (n *MCBNode) Cycles() int64 { return n.cycle }
