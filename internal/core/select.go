package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/mcb"
	"mcbnet/internal/partial"
	"mcbnet/internal/seq"
	"mcbnet/internal/trace"
	"mcbnet/internal/transport"
)

// SelectAlgorithm selects the selection strategy.
type SelectAlgorithm int

const (
	// SelFiltering is the Section 8 algorithm: repeated median-of-medians
	// filtering, then collection of the surviving candidates at P_1.
	// Theta(p log(kn/p)) messages, Theta((p/k) log(kn/p)) cycles.
	SelFiltering SelectAlgorithm = iota
	// SelSortBaseline is the naive approach the paper argues against: sort
	// everything with the Section 5 algorithm and read off the rank —
	// Theta(n) messages.
	SelSortBaseline
)

func (a SelectAlgorithm) String() string {
	if a == SelSortBaseline {
		return "sort-baseline"
	}
	return "filtering"
}

// SelectOptions configures a distributed selection.
type SelectOptions struct {
	// K is the number of broadcast channels.
	K int
	// D is the rank to select, 1-based in the paper's descending order:
	// D = 1 is the maximum, D = ceil(n/2) the median, D = n the minimum.
	D int
	// Threshold is the paper's m*: filtering stops once at most this many
	// candidates remain and the survivors are collected at P_1. Zero means
	// the paper's choice max(1, p/k).
	Threshold int
	// Algorithm selects filtering (default) or the sort baseline.
	Algorithm SelectAlgorithm
	// MaxCycles, StallTimeout, Trace, Recorder and ProfileLabels mirror
	// SortOptions.
	MaxCycles     int64
	StallTimeout  time.Duration
	Trace         bool
	Recorder      *trace.Recorder
	ProfileLabels bool
	// Engine selects the execution engine (mirrors SortOptions.Engine).
	Engine mcb.EngineMode
	// Faults enables deterministic fault injection (see mcb.FaultPlan).
	Faults *mcb.FaultPlan
	// Retry configures the verify-and-retry layer; only SelectWithRetry
	// consults it. With Retry.DegradeOnCrash set, a crashed run is retried
	// with the dead processors' inputs treated as empty.
	Retry mcb.RetryPolicy
	// Verifier overrides the output check SelectWithRetry applies after
	// every successful attempt. Nil means the default VerifySelect (rank
	// verification by recount).
	Verifier SelectVerifier
	// Checkpoints and Resume mirror SortOptions: with a store set,
	// SelectWithRetry runs the filtering algorithm as per-iteration segments
	// with phase-boundary snapshots, resuming from the last accepted one on
	// a typed failure (and across process restarts with Resume).
	Checkpoints checkpoint.Store
	Resume      bool
	// Transport and Ctx mirror SortOptions: where the processor programs
	// execute (nil = in-process) and the context that can cancel the run.
	Transport transport.Transport
	Ctx       context.Context
}

// SelectReport carries the run statistics and filtering diagnostics. The
// diagnostics are derived from the engine's per-phase accounting
// (Stats.Phases): candidate counts are globally known, so the filtering
// program encodes them in its phase names and no side-channel counters are
// needed.
type SelectReport struct {
	Stats     mcb.Stats
	Algorithm SelectAlgorithm
	// FilterPhases is the number of filtering phases executed.
	FilterPhases int
	// Candidates[i] is the candidate count at the start of phase i, followed
	// by the final count entering the termination phase.
	Candidates []int
	// PurgeFractions[i] is the fraction of candidates purged by phase i
	// (Figure 2's invariant: at least 1/4 unless the phase terminated).
	PurgeFractions []float64
	// Filter is the per-filter-phase breakdown: candidates, purge fraction
	// and the engine cost of each iteration.
	Filter []FilterPhase
	// Attempts is the number of attempts the retry layer used (0 or 1 =
	// single attempt).
	Attempts int
	// DeadProcs lists the processors graceful degradation gave up on: their
	// elements are not part of the answered rank space. Empty for a full
	// (non-degraded) result.
	DeadProcs []int
	// Resumes, CheckpointPhase, ReplayedCycles, DegradedK and DeadChannels
	// mirror Report: checkpoint/resume and channel-degradation metadata.
	Resumes         int
	CheckpointPhase string
	ReplayedCycles  int64
	DegradedK       int
	DeadChannels    []int
	Trace           *mcb.Trace
}

// FilterPhase is the accounting of one filtering iteration, derived from the
// engine phase of the same name.
type FilterPhase struct {
	// Name is the engine phase name (e.g. "select:filter:03:m=117").
	Name string
	// Candidates is the candidate count entering the iteration.
	Candidates int
	// PurgedFraction is the fraction of candidates the iteration purged
	// (1 when it terminated by finding the answer).
	PurgedFraction float64
	// Cycles and Messages are the engine cost of the iteration.
	Cycles   int64
	Messages int64
}

// Select finds the value of descending rank opts.D among the elements
// distributed as inputs over an MCB(len(inputs), opts.K) network.
func Select(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	p := len(inputs)
	if err := validateSelect(inputs, opts); err != nil {
		return 0, nil, err
	}
	threshold := selectThreshold(p, opts.K, opts.Threshold)

	report := &SelectReport{Algorithm: opts.Algorithm}
	var result int64
	progs := make([]func(mcb.Node), p)
	for i := range progs {
		in := inputs[i]
		id := i
		progs[i] = func(pr mcb.Node) {
			mine := makeElems(id, in)
			var got elem
			if opts.Algorithm == SelSortBaseline {
				got = selectBySorting(pr, mine, opts.D, "select:")
			} else {
				got = selectFiltering(pr, mine, opts.D, threshold, "select:")
			}
			if id == 0 {
				result = got.V
			}
		}
	}
	cfg := mcb.Config{P: p, K: opts.K, Trace: opts.Trace, MaxCycles: opts.MaxCycles, StallTimeout: opts.StallTimeout,
		Faults: opts.Faults, Recorder: opts.Recorder, ProfileLabels: opts.ProfileLabels, Engine: opts.Engine}
	env := opts.runEnv()
	res, err := env.run(cfg, progs)
	if res != nil {
		report.Stats = res.Stats
		report.Trace = res.Trace
		report.derivePhaseDiagnostics()
	}
	if err != nil {
		// The partial report covers the cycles that completed before the
		// abort (nil when the engine could not collect them safely).
		if res == nil {
			report = nil
		}
		return 0, report, err
	}
	// The answer was captured at processor 0; under a distributed transport
	// only the peer hosting it has it.
	if err := exchangeScalar(env, "select:result", p, &result); err != nil {
		return 0, report, err
	}
	return result, report, nil
}

// validateSelect checks the inputs and options shared by Select and the
// checkpointed selection driver.
func validateSelect(inputs [][]int64, opts SelectOptions) error {
	p := len(inputs)
	if p == 0 {
		return fmt.Errorf("core: no processors")
	}
	if opts.K < 1 || opts.K > p {
		return fmt.Errorf("core: K must satisfy 1 <= K <= P, got K=%d p=%d", opts.K, p)
	}
	n := 0
	for _, in := range inputs {
		n += len(in)
	}
	if n == 0 {
		return fmt.Errorf("core: the distributed set is empty")
	}
	if opts.D < 1 || opts.D > n {
		return fmt.Errorf("core: rank D=%d out of range [1, %d]", opts.D, n)
	}
	return nil
}

// selectThreshold resolves the filtering threshold m*: the explicit request,
// or the paper's max(1, p/k). The checkpointed driver recomputes it when a
// channel-degraded run continues on k' < k channels.
func selectThreshold(p, k, requested int) int {
	if requested > 0 {
		return requested
	}
	if t := p / k; t > 1 {
		return t
	}
	return 1
}

// derivePhaseDiagnostics rebuilds the filtering diagnostics (FilterPhases,
// Candidates, PurgeFractions, Filter) from Stats.Phases. The filtering
// program encodes the globally known candidate count in each phase name
// ("...filter:NN:m=M", "...collect:m=M"), so the purge fraction of phase i
// is 1 - m_{i+1}/m_i; a "...found" phase closes its iteration with fraction
// 1 (the iteration located the answer exactly).
func (r *SelectReport) derivePhaseDiagnostics() {
	prev := 0
	open := false // a filter iteration awaiting its successor's count
	closeWith := func(f float64) {
		if !open {
			return
		}
		r.Filter[len(r.Filter)-1].PurgedFraction = f
		r.PurgeFractions = append(r.PurgeFractions, f)
		open = false
	}
	for i := range r.Stats.Phases {
		ph := &r.Stats.Phases[i]
		switch {
		case strings.Contains(ph.Name, "filter:"):
			m, ok := phaseCandidates(ph.Name)
			if !ok {
				continue
			}
			closeWith(1 - float64(m)/float64(prev))
			r.FilterPhases++
			r.Candidates = append(r.Candidates, m)
			r.Filter = append(r.Filter, FilterPhase{
				Name: ph.Name, Candidates: m,
				Cycles: ph.Cycles, Messages: ph.Messages,
			})
			prev = m
			open = true
		case strings.Contains(ph.Name, "collect:"):
			m, ok := phaseCandidates(ph.Name)
			if !ok {
				continue
			}
			closeWith(1 - float64(m)/float64(prev))
			r.Candidates = append(r.Candidates, m)
		case strings.HasSuffix(ph.Name, "found"):
			closeWith(1)
		}
	}
}

// phaseCandidates extracts the candidate count from a phase name carrying a
// trailing "m=<count>".
func phaseCandidates(name string) (int, bool) {
	i := strings.LastIndex(name, "m=")
	if i < 0 {
		return 0, false
	}
	m, err := strconv.Atoi(name[i+2:])
	return m, err == nil
}

// selectFiltering is the Section 8 algorithm. Every processor keeps its
// surviving candidates as a descending-sorted list, so the local median is
// an index lookup, counting against med* is a binary search, and purging is
// a truncation. Each filtering phase: sort the (med_i, m_i) pairs with the
// Section 5 sorter, prefix-sum the sorted counts to find the weighted median
// med* (the first processor whose count prefix reaches ceil(m/2) broadcasts
// it), count the candidates >= med* network-wide, then keep one side. At
// least a quarter of the candidates are purged per phase; once at most m*
// remain they are collected at P_1, which selects locally and broadcasts.
//
// phases is the phase-name prefix for engine-side accounting: each filter
// iteration is its own phase, named with the (globally known) candidate
// count so diagnostics derive from mcb.Stats.Phases alone (see
// SelectReport.derivePhaseDiagnostics). Empty disables marking, for use as
// a subroutine inside another program's phases.
func selectFiltering(pr mcb.Node, mine []elem, d, threshold int, phases string) elem {
	cands := append([]elem(nil), mine...)
	seq.Sort(cands, func(a, b elem) bool { return a.greater(b) })
	pr.AccountAux(int64(len(cands)))

	var m int
	if phases != "" {
		m = int(partial.PhasedTotal(pr, int64(len(cands)), partial.Sum, phases+"init"))
	} else {
		m = int(partial.Total(pr, int64(len(cands)), partial.Sum))
	}

	for iter := 0; m > threshold; iter++ {
		var found bool
		var res elem
		cands, d, m, found, res = filterIteration(pr, cands, d, m, iter, phases)
		if found {
			return res
		}
	}
	return collectSurvivors(pr, cands, d, m, phases)
}

// filterIteration runs one filtering phase over the descending-sorted local
// candidate list: weighted-median election, network-wide counting, then a
// purge of one side (or exact termination). It returns the surviving local
// candidates and the updated (d, m); found/res report that med* was the
// answer. The checkpointed driver runs each iteration as its own segment —
// the loop state (cands, d, m, iter) is exactly what a phase-boundary
// snapshot carries.
func filterIteration(pr mcb.Node, cands []elem, d, m, iter int, phases string) ([]elem, int, int, bool, elem) {
	id := pr.ID()
	if phases != "" {
		pr.Phase(fmt.Sprintf("%sfilter:%02d:m=%d", phases, iter, m))
	}
	// Local median: descending rank ceil(mi/2); a dummy below all real
	// elements when no candidates remain here.
	pair := elem{V: math.MinInt64, T: -(int64(id) + 1), P: 0}
	if len(cands) > 0 {
		med := cands[(len(cands)+1)/2-1]
		pair = elem{V: med.V, T: med.T, P: int64(len(cands))}
	}
	// Sort the pairs with the Section 5 sorter (one pair per processor;
	// counts ride in the payload).
	sorted := gatherSort(pr, []elem{pair}, nil, nil)
	myPair := sorted[0]

	// Weighted median: first processor where the count prefix reaches
	// ceil(m/2) broadcasts its median as med*.
	before, at, _ := partial.Sums(pr, myPair.P, partial.Sum)
	half := int64((m + 1) / 2)
	chosen := before < half && at >= half
	var msg mcb.Message
	var ok bool
	if chosen {
		msg, ok = pr.WriteRead(0, elem{V: myPair.V, T: myPair.T}.msg(tagSel), 0)
	} else {
		msg, ok = pr.Read(0)
	}
	if !ok {
		pr.Abortf("core: selection: no weighted median broadcast")
	}
	medStar := elemFromMsg(msg)

	// Count candidates >= med* network-wide. cands is descending, so the
	// local count is the boundary index.
	localGE := lowerBoundSmaller(cands, medStar)
	mGE := int(partial.Total(pr, int64(localGE), partial.Sum))

	switch {
	case mGE == d:
		// med* is the answer: close this iteration's phase with a
		// zero-cycle marker (it rides on the processor's next cycle op,
		// the exit at the latest).
		if phases != "" {
			pr.Phase(phases + "found")
		}
		return cands, d, m, true, medStar
	case mGE > d:
		// The target is above med*: purge everything <= med*. Exactly
		// one candidate equals med*, so mGE-1 remain.
		keep := localGE
		if keep > 0 && cands[keep-1].same(medStar) {
			keep--
		}
		return cands[:keep], d, mGE - 1, false, elem{}
	default:
		// The target is below med*: purge everything >= med*.
		return cands[localGE:], d - mGE, m - mGE, false, elem{}
	}
}

// collectSurvivors is the termination phase: the m surviving candidates are
// collected at P_1 in prefix order; it selects rank d locally and broadcasts
// the result, which every processor returns.
func collectSurvivors(pr mcb.Node, cands []elem, d, m int, phases string) elem {
	id := pr.ID()
	if phases != "" {
		pr.Phase(fmt.Sprintf("%scollect:m=%d", phases, m))
	}
	before, _, _ := partial.Sums(pr, int64(len(cands)), partial.Sum)
	offset := int(before)
	var collected []elem
	if id == 0 {
		collected = append(collected, cands...)
	}
	for c := 0; c < m; c++ {
		switch {
		case id != 0 && c >= offset && c < offset+len(cands):
			pr.Write(0, cands[c-offset].msg(tagSel))
		case id == 0 && c >= len(cands):
			msg, ok := pr.Read(0)
			if !ok {
				pr.Abortf("core: selection: missing candidate %d", c)
			}
			collected = append(collected, elemFromMsg(msg))
		default:
			pr.Idle()
		}
	}
	var resMsg mcb.Message
	var ok bool
	if id == 0 {
		if d < 1 || d > len(collected) {
			pr.Abortf("core: selection: rank %d outside %d survivors", d, len(collected))
		}
		seq.Sort(collected, func(a, b elem) bool { return a.greater(b) })
		resMsg, ok = pr.WriteRead(0, collected[d-1].msg(tagSel), 0)
	} else {
		resMsg, ok = pr.Read(0)
	}
	if !ok {
		pr.Abortf("core: selection: missing result broadcast")
	}
	return elemFromMsg(resMsg)
}

// selectBySorting is the naive baseline: sort everything, then the processor
// owning global rank d broadcasts it. phases is the phase-name prefix for
// engine-side accounting; empty disables marking.
func selectBySorting(pr mcb.Node, mine []elem, d int, phases string) elem {
	ni := len(mine)
	if phases != "" {
		pr.Phase(phases + "sort")
	}
	out := gatherSort(pr, mine, nil, nil)
	// Recover my rank range: sorting preserves cardinalities, so it is the
	// prefix of ni. One more Partial-Sums is cheap relative to the sort.
	var at int64
	if phases != "" {
		_, at, _ = partial.PhasedSums(pr, int64(ni), partial.Sum, phases+"rank")
		pr.Phase(phases + "pick")
	} else {
		_, at, _ = partial.Sums(pr, int64(ni), partial.Sum)
	}
	lo := int(at) - ni
	var msg mcb.Message
	var ok bool
	if d-1 >= lo && d-1 < lo+ni {
		msg, ok = pr.WriteRead(0, out[d-1-lo].msg(tagSel), 0)
	} else {
		msg, ok = pr.Read(0)
	}
	if !ok {
		pr.Abortf("core: baseline selection: missing result broadcast")
	}
	return elemFromMsg(msg)
}
