package core

import (
	"testing"
	"testing/quick"
	"time"

	"mcbnet/internal/dist"
	"mcbnet/internal/seq"
)

func opts(k int, algo Algorithm) SortOptions {
	return SortOptions{K: k, Algorithm: algo, StallTimeout: 20 * time.Second}
}

// checkSorted verifies the sort contract: cardinalities preserved, each
// processor's slice is the correct contiguous rank segment of the global
// multiset.
func checkSorted(t *testing.T, inputs, outputs [][]int64, order Order, label string) {
	t.Helper()
	flat := dist.Flatten(inputs)
	want := append([]int64(nil), flat...)
	if order == Descending {
		seq.SortInt64Desc(want)
	} else {
		seq.SortInt64Asc(want)
	}
	idx := 0
	for i := range inputs {
		if len(outputs[i]) != len(inputs[i]) {
			t.Fatalf("%s: processor %d has %d elements, want %d", label, i, len(outputs[i]), len(inputs[i]))
		}
		for j, v := range outputs[i] {
			if v != want[idx] {
				t.Fatalf("%s: processor %d position %d = %d, want %d (global rank %d)",
					label, i, j, v, want[idx], idx)
			}
			idx++
		}
	}
}

func runSortCase(t *testing.T, inputs [][]int64, k int, algo Algorithm, label string) *Report {
	t.Helper()
	outputs, rep, err := Sort(inputs, opts(k, algo))
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	checkSorted(t, inputs, outputs, Descending, label)
	return rep
}

var sortAlgos = []Algorithm{
	AlgoColumnsortGather, AlgoColumnsortVirtual, AlgoRankSort, AlgoMergeSort,
}

func TestSortTiny(t *testing.T) {
	cases := []struct {
		name   string
		inputs [][]int64
		k      int
	}{
		{"p1", [][]int64{{3, 1, 2}}, 1},
		{"p2k1", [][]int64{{5, 1}, {4, 2}}, 1},
		{"p2k2", [][]int64{{5, 1}, {4, 2}}, 2},
		{"p3uneven", [][]int64{{9}, {1, 7, 3}, {2, 8}}, 2},
		{"p4single", [][]int64{{4}, {2}, {3}, {1}}, 2},
		{"p4k4", [][]int64{{4, 8}, {2, 6}, {3, 7}, {1, 5}}, 4},
	}
	for _, c := range cases {
		for _, algo := range sortAlgos {
			runSortCase(t, c.inputs, c.k, algo, c.name+"/"+algo.String())
		}
	}
}

func TestSortEvenDistributions(t *testing.T) {
	r := dist.NewRNG(101)
	configs := []struct{ n, p, k int }{
		{64, 8, 2}, {64, 8, 4}, {64, 8, 8},
		{256, 16, 4}, {1024, 16, 4}, {1024, 32, 8},
		{4096, 16, 2},
	}
	for _, c := range configs {
		inputs := dist.Values(r, dist.Even(c.n, c.p))
		for _, algo := range sortAlgos {
			label := algo.String()
			runSortCase(t, inputs, c.k, algo, label)
		}
	}
}

func TestSortUnevenDistributions(t *testing.T) {
	r := dist.NewRNG(102)
	configs := []struct{ n, p, k int }{
		{100, 7, 3}, {333, 9, 4}, {1000, 16, 4}, {500, 10, 10},
	}
	for _, c := range configs {
		for _, card := range []dist.Cardinalities{
			dist.RandomComposition(r, c.n, c.p),
			dist.OneHeavy(c.n, c.p, 0.5),
			dist.Geometric(c.n, c.p),
		} {
			inputs := dist.Values(r, card)
			for _, algo := range sortAlgos {
				runSortCase(t, inputs, c.k, algo, algo.String())
			}
		}
	}
}

func TestSortDuplicates(t *testing.T) {
	r := dist.NewRNG(103)
	inputs := dist.ValuesWithDuplicates(r, dist.RandomComposition(r, 300, 8))
	for _, algo := range sortAlgos {
		runSortCase(t, inputs, 4, algo, "dups/"+algo.String())
	}
}

func TestSortAdversarialCircular(t *testing.T) {
	// The Theorem 3 lower-bound distribution, where every sorted neighbor
	// pair crosses processors.
	card := dist.Cardinalities{13, 11, 12, 13, 11}
	inputs := dist.AdversarialCircular(card)
	for _, algo := range sortAlgos {
		runSortCase(t, inputs, 3, algo, "adversarial/"+algo.String())
	}
}

func TestSortPresortedInputs(t *testing.T) {
	// Already sorted (descending across processors) and anti-sorted inputs.
	sorted := [][]int64{{12, 11, 10}, {9, 8, 7}, {6, 5, 4}, {3, 2, 1}}
	reversed := [][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}
	for _, algo := range sortAlgos {
		runSortCase(t, sorted, 2, algo, "sorted/"+algo.String())
		runSortCase(t, reversed, 2, algo, "reversed/"+algo.String())
	}
}

func TestSortAscendingOrder(t *testing.T) {
	r := dist.NewRNG(104)
	inputs := dist.Values(r, dist.RandomComposition(r, 120, 6))
	outputs, _, err := Sort(inputs, SortOptions{K: 3, Order: Ascending})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, inputs, outputs, Ascending, "ascending")
}

func TestSortRecursive(t *testing.T) {
	r := dist.NewRNG(105)
	// Small n relative to k, where the direct algorithm cannot use all
	// channels as columns.
	configs := []struct{ p, ni, k int }{
		{16, 4, 8}, {16, 2, 16}, {32, 4, 16}, {64, 2, 16}, {8, 8, 8}, {27, 3, 9},
	}
	for _, c := range configs {
		inputs := dist.Values(r, dist.Even(c.p*c.ni, c.p))
		rep := runSortCase(t, inputs, c.k, AlgoColumnsortRecursive, "recursive")
		if rep.Algorithm != AlgoColumnsortRecursive {
			t.Fatalf("algorithm = %v", rep.Algorithm)
		}
	}
}

func TestSortRecursiveRejectsUneven(t *testing.T) {
	_, _, err := Sort([][]int64{{1, 2}, {3}}, opts(2, AlgoColumnsortRecursive))
	if err == nil {
		t.Fatal("expected error for uneven recursive sort")
	}
}

func TestSortInputValidation(t *testing.T) {
	if _, _, err := Sort(nil, opts(1, AlgoAuto)); err == nil {
		t.Error("expected error for no processors")
	}
	if _, _, err := Sort([][]int64{{1}}, opts(0, AlgoAuto)); err == nil {
		t.Error("expected error for K=0")
	}
	if _, _, err := Sort([][]int64{{1}}, opts(2, AlgoAuto)); err == nil {
		t.Error("expected error for K>p")
	}
	if _, _, err := Sort([][]int64{{}, {}}, opts(1, AlgoAuto)); err == nil {
		t.Error("expected error for an entirely empty set")
	}
}

func TestSortAutoSelection(t *testing.T) {
	r := dist.NewRNG(106)
	// k=1 -> rank-sort.
	in := dist.Values(r, dist.Even(32, 4))
	_, rep, err := Sort(in, opts(1, AlgoAuto))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != AlgoRankSort {
		t.Errorf("k=1 auto = %v, want rank-sort", rep.Algorithm)
	}
	// Large n, several channels -> gather columnsort.
	in = dist.Values(r, dist.Even(4096, 16))
	_, rep, err = Sort(in, opts(8, AlgoAuto))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != AlgoColumnsortGather {
		t.Errorf("auto = %v, want gather", rep.Algorithm)
	}
	checkSortedOK := rep.Columns >= 2
	if !checkSortedOK {
		t.Errorf("gather used %d columns", rep.Columns)
	}
}

func TestSortProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := dist.NewRNG(seed)
		p := 2 + r.Intn(8)
		n := p + r.Intn(120)
		k := 1 + r.Intn(p)
		card := dist.RandomComposition(r, n, p)
		var inputs [][]int64
		if seed%2 == 0 {
			inputs = dist.Values(r, card)
		} else {
			inputs = dist.ValuesWithDuplicates(r, card)
		}
		algo := sortAlgos[int(seed%uint64(len(sortAlgos)))]
		if algo == AlgoMergeSort && n > 80 {
			n = 80 // merge-sort rounds are 4 cycles/element; keep quick runs quick
		}
		outputs, _, err := Sort(inputs, opts(k, algo))
		if err != nil {
			t.Logf("seed %d algo %v: %v", seed, algo, err)
			return false
		}
		flat := dist.Flatten(inputs)
		seq.SortInt64Desc(flat)
		idx := 0
		for i := range outputs {
			for _, v := range outputs[i] {
				if v != flat[idx] {
					return false
				}
				idx++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortComplexityEven(t *testing.T) {
	// Cor 5: Theta(n) messages, Theta(n/k) cycles for even distributions with
	// n >= k^2(k-1). Check generous constant-factor envelopes.
	r := dist.NewRNG(107)
	for _, c := range []struct{ n, p, k int }{
		{4096, 16, 4}, {8192, 16, 8}, {16384, 32, 8},
	} {
		inputs := dist.Values(r, dist.Even(c.n, c.p))
		rep := runSortCase(t, inputs, c.k, AlgoColumnsortGather, "complexity")
		msgs, cycles := rep.Stats.Messages, rep.Stats.Cycles
		if msgs > int64(12*c.n) {
			t.Errorf("n=%d k=%d: %d messages > 12n", c.n, c.k, msgs)
		}
		if lim := int64(16 * (c.n/c.k + c.p)); cycles > lim {
			t.Errorf("n=%d k=%d: %d cycles > %d", c.n, c.k, cycles, lim)
		}
	}
}

func TestSortComplexityUneven(t *testing.T) {
	// Cor 6: Theta(max{n/k, n_max}) cycles.
	r := dist.NewRNG(108)
	n, p, k := 8192, 16, 8
	card := dist.OneHeavy(n, p, 0.5) // n_max = n/2 dominates n/k
	inputs := dist.Values(r, card)
	rep := runSortCase(t, inputs, k, AlgoColumnsortGather, "uneven-complexity")
	nmax := int64(card.Max())
	if rep.Stats.Cycles > 16*nmax {
		t.Errorf("cycles %d > 16*n_max (%d)", rep.Stats.Cycles, 16*nmax)
	}
	if rep.Stats.Messages > int64(12*n) {
		t.Errorf("messages %d > 12n", rep.Stats.Messages)
	}
}

func TestMergeSortConstantAuxMemory(t *testing.T) {
	// Section 6.1: Merge-Sort uses O(1) auxiliary memory beyond the owned
	// elements: MaxAux <= 2*n_max + c.
	r := dist.NewRNG(109)
	card := dist.Even(128, 8)
	inputs := dist.Values(r, card)
	rep := runSortCase(t, inputs, 1, AlgoMergeSort, "mergesort-mem")
	if lim := int64(2*card.Max() + 16); rep.Stats.MaxAux > lim {
		t.Errorf("MaxAux = %d > %d", rep.Stats.MaxAux, lim)
	}
}

func TestVirtualVsGatherMemory(t *testing.T) {
	// Section 6.1's point: the virtual mode avoids the O(n/k) memory at
	// representatives.
	r := dist.NewRNG(110)
	n, p, k := 4096, 32, 4
	inputs := dist.Values(r, dist.Even(n, p))
	repG := runSortCase(t, inputs, k, AlgoColumnsortGather, "gather")
	repV := runSortCase(t, inputs, k, AlgoColumnsortVirtual, "virtual")
	if repV.Stats.MaxAux >= repG.Stats.MaxAux {
		t.Errorf("virtual MaxAux %d not below gather %d", repV.Stats.MaxAux, repG.Stats.MaxAux)
	}
	// Virtual per-processor memory stays near 3*n_i (cells + rank-sort copy).
	ni := n / p
	if lim := int64(6*ni + 64); repV.Stats.MaxAux > lim {
		t.Errorf("virtual MaxAux %d > %d", repV.Stats.MaxAux, lim)
	}
}

func TestSortDeterministicStats(t *testing.T) {
	r1 := dist.NewRNG(111)
	r2 := dist.NewRNG(111)
	in1 := dist.Values(r1, dist.RandomComposition(r1, 200, 8))
	in2 := dist.Values(r2, dist.RandomComposition(r2, 200, 8))
	_, a, err := Sort(in1, opts(4, AlgoColumnsortGather))
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Sort(in2, opts(4, AlgoColumnsortGather))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Messages != b.Stats.Messages {
		t.Errorf("nondeterministic: %v vs %v", a.Stats, b.Stats)
	}
}

func TestSortPhaseBreakdownRecorded(t *testing.T) {
	r := dist.NewRNG(112)
	inputs := dist.Values(r, dist.Even(512, 8))
	_, rep, err := Sort(inputs, opts(4, AlgoColumnsortGather))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PhaseCycles) < 5 {
		t.Fatalf("phase breakdown too short: %v", rep.PhaseCycles)
	}
	var total int64
	for _, pc := range rep.PhaseCycles {
		total += pc.Cycles
	}
	if total != rep.Stats.Cycles {
		t.Errorf("phase cycles sum %d != total %d", total, rep.Stats.Cycles)
	}
}
