package core

import (
	"mcbnet/internal/matrix"
	"mcbnet/internal/mcb"
	"mcbnet/internal/schedule"
	"mcbnet/internal/seq"
)

// recursiveSort is the recursive Columnsort of Section 6.2, for even
// distributions whose n is too small to use all k channels as columns
// (n < k^2(k-1)). Each level splits its sub-network into c virtual columns
// of span/c processors; transformation phases route at processor granularity
// over all of the level's channels (the paper's segment-parallel broadcast),
// while sorting phases recurse into the columns in parallel, each with a
// 1/c share of the channels. The recursion bottoms out at single-processor
// columns (a free local sort) or at groups too small to split, which fall
// back to a group-local Rank-Sort on one channel.
//
// Every control-flow decision depends only on (span, channels, n_i), which
// is identical across sibling columns, so siblings stay in lock-step; the
// one asymmetric case — phase 7 skipping column 1 — idles that column for
// exactly its siblings' recursive sort cost.
//
// Positions coincide with target ranks throughout (even distribution, no
// padding), so no redistribution phase is needed.
func recursiveSort(pr mcb.Node, mine []elem, rec *phaser, rep *Report) []elem {
	p, k := pr.P(), pr.K()
	ni := len(mine)
	cells := append([]elem(nil), mine...)
	pr.AccountAux(int64(2 * ni))
	st := &recState{pr: pr, ni: ni, cells: cells}
	if rep != nil && pr.ID() == 0 {
		rep.Columns = chooseRecCols(p, k, ni)
		rep.ColumnLen = 0
		if rep.Columns > 1 {
			rep.ColumnLen = p * ni / rep.Columns
		}
	}
	rec.mark("recursive-columnsort")
	st.sort(0, p, 0, k)
	return st.cells
}

// recState carries one processor's view of the recursion.
type recState struct {
	pr    mcb.Node
	ni    int
	cells []elem // contents of my ni fixed positions [id*ni, (id+1)*ni)
}

// chooseRecCols picks the number of columns for a sub-network of span
// processors and `chans` channels: the largest c in [2, chans] dividing span
// such that the column length m = span*ni/c is a multiple of c and at least
// MinColLen(c). Returns 1 if no valid split exists.
func chooseRecCols(span, chans, ni int) int {
	for c := min(chans, span); c >= 2; c-- {
		if span%c != 0 {
			continue
		}
		m := span * ni / c
		if m%c != 0 || m < c*(c-1) {
			continue
		}
		return c
	}
	return 1
}

// recCost returns the exact number of cycles st.sort spends on a sub-network
// of span processors and chans channels (identical for all siblings).
func recCost(span, chans, ni int) int64 {
	if span == 1 {
		return 0
	}
	c := chooseRecCols(span, chans, ni)
	if c < 2 {
		return 2 * int64(span) * int64(ni) // group Rank-Sort
	}
	sub := recCost(span/c, chans/c, ni)
	total := 5 * sub // phases 1, 3, 5, 7, 9
	for _, kind := range []schedule.TransformKind{
		schedule.KindTranspose, schedule.KindUnDiagonalize,
		schedule.KindUpShift, schedule.KindDownShift,
	} {
		total += int64(recSchedule(span, c, ni, chans, kind).NumCycles())
	}
	return total
}

// sort sorts the contents of processors [prLo, prHi) over channels
// [chLo, chHi), descending by position.
func (st *recState) sort(prLo, prHi, chLo, chHi int) {
	span := prHi - prLo
	if span == 1 {
		seq.Sort(st.cells, func(a, b elem) bool { return a.greater(b) })
		return
	}
	chans := chHi - chLo
	c := chooseRecCols(span, chans, st.ni)
	if c < 2 {
		st.rankSortGroup(prLo, prHi, chLo)
		return
	}
	subSpan := span / c
	subCh := chans / c
	myCol := (st.pr.ID() - prLo) / subSpan
	colPrLo := prLo + myCol*subSpan
	colChLo := chLo + myCol*subCh

	phaseSort := func(skipCol0 bool) {
		if skipCol0 && myCol == 0 {
			st.pr.IdleN(int(recCost(subSpan, subCh, st.ni)))
			return
		}
		st.sort(colPrLo, colPrLo+subSpan, colChLo, colChLo+subCh)
	}
	phaseTransform := func(kind schedule.TransformKind) {
		sched := recSchedule(span, c, st.ni, chans, kind)
		sh := matrix.Shape{M: span * st.ni / c, K: c}
		st.runTransform(prLo, chLo, sched, sh, kindTransform(kind))
	}

	phaseSort(false) // 1
	phaseTransform(schedule.KindTranspose)
	phaseSort(false) // 3
	phaseTransform(schedule.KindUnDiagonalize)
	phaseSort(false) // 5
	phaseTransform(schedule.KindUpShift)
	phaseSort(true) // 7: skip column 1
	phaseTransform(schedule.KindDownShift)
	phaseSort(false) // 9
}

// runTransform plays a relative processor-granularity schedule. Contents
// move to their nominal destinations via a double buffer; intra-processor
// moves (which the schedule omits) are free local copies computed from the
// transform itself.
func (st *recState) runTransform(prLo, chLo int, sched *schedule.Schedule, sh matrix.Shape, f matrix.Transform) {
	pr, ni := st.pr, st.ni
	me := pr.ID() - prLo // relative owner id
	base := me * ni      // my first relative position
	next := make([]elem, ni)
	for r := 0; r < ni; r++ {
		dst := f(sh, base+r)
		if dst/ni == me {
			next[dst-base] = st.cells[r]
		}
	}
	for _, assigns := range sched.Cycles {
		var send, recv *schedule.Assign
		for i := range assigns {
			a := &assigns[i]
			if a.Src/ni == me {
				send = a
			}
			if a.Dst/ni == me {
				recv = a
			}
		}
		switch {
		case send != nil && recv != nil:
			msg, ok := pr.WriteRead(chLo+send.Ch, st.cells[send.Src-base].msg(tagElem), chLo+recv.Ch)
			if !ok {
				pr.Abortf("core: recursive transform missing element")
			}
			next[recv.Dst-base] = elemFromMsg(msg)
		case send != nil:
			pr.Write(chLo+send.Ch, st.cells[send.Src-base].msg(tagElem))
		case recv != nil:
			msg, ok := pr.Read(chLo + recv.Ch)
			if !ok {
				pr.Abortf("core: recursive transform missing element")
			}
			next[recv.Dst-base] = elemFromMsg(msg)
		default:
			pr.Idle()
		}
	}
	st.cells = next
}

// rankSortGroup is the even-distribution group Rank-Sort fallback: the
// sub-network [prLo, prHi) sorts its span*ni positions over one channel in
// 2*span*ni cycles. No dummies, no prologue — offsets are arithmetic.
func (st *recState) rankSortGroup(prLo, prHi, ch int) {
	pr, ni := st.pr, st.ni
	span := prHi - prLo
	m := span * ni
	lo := (pr.ID() - prLo) * ni
	hi := lo + ni

	sorted := append([]elem(nil), st.cells...)
	seq.Sort(sorted, func(a, b elem) bool { return a.greater(b) })
	diff := make([]int, ni+1)
	pr.AccountAux(int64(2*ni + 1))
	for t := 0; t < m; t++ {
		var msg mcb.Message
		var ok bool
		if t >= lo && t < hi {
			msg, ok = pr.WriteRead(ch, sorted[t-lo].msg(tagRank), ch)
		} else {
			msg, ok = pr.Read(ch)
		}
		if !ok {
			pr.Abortf("core: group rank-sort missing broadcast %d", t)
		}
		diff[lowerBoundSmaller(sorted, elemFromMsg(msg))]++
	}
	ranks := make([]int, ni)
	acc := 0
	for i := range sorted {
		acc += diff[i]
		ranks[i] = acc
	}
	send := 0
	for r := 0; r < m; r++ {
		holder := send < ni && ranks[send] == r
		target := r >= lo && r < hi
		switch {
		case holder && target:
			st.cells[r-lo] = sorted[send]
			send++
			pr.Idle()
		case holder:
			pr.Write(ch, sorted[send].msg(tagRank))
			send++
		case target:
			msg, ok := pr.Read(ch)
			if !ok {
				pr.Abortf("core: group rank-sort missing rank %d", r)
			}
			st.cells[r-lo] = elemFromMsg(msg)
		default:
			pr.Idle()
		}
	}
	pr.AccountAux(int64(-(2*ni + 1)))
}
