package core

import (
	"fmt"
	"math"

	"mcbnet/internal/mcb"
)

// Sort sorts a set of elements distributed among p = len(inputs) processors
// on an MCB(p, opts.K) network. inputs[i] is the list held by processor i;
// the paper assumes n_i > 0 w.l.o.g., but empty processors are accepted (the
// set as a whole must be non-empty). The result preserves cardinalities:
// outputs[i] has len(inputs[i]) elements and receives the contiguous rank
// segment [n+_{i-1}+1, n+_i] — the largest elements go to processor 1 under
// the default Descending order.
//
// Duplicate values are allowed; they are disambiguated internally by the
// paper's lexicographic-triple device.
func Sort(inputs [][]int64, opts SortOptions) ([][]int64, *Report, error) {
	p := len(inputs)
	algo, err := validateSort(inputs, opts)
	if err != nil {
		return nil, nil, err
	}

	report := &Report{Algorithm: algo}
	outputs := make([][]int64, p)
	negate := opts.Order == Ascending

	progs := make([]func(mcb.Node), p)
	for i := range progs {
		in := inputs[i]
		id := i
		progs[i] = func(pr mcb.Node) {
			vals := in
			if negate {
				vals = make([]int64, len(in))
				for j, v := range in {
					vals[j] = -v
				}
			}
			mine := makeElems(id, vals)
			// Every processor marks; markers carrying the same name in the
			// same cycle coalesce at the engine.
			r := &phaser{pr}
			var sortedElems []elem
			switch algo {
			case AlgoColumnsortGather:
				sortedElems = gatherSort(pr, mine, r, report)
			case AlgoColumnsortVirtual:
				sortedElems = virtualSort(pr, mine, r, report)
			case AlgoRankSort:
				sortedElems = rankSortWhole(pr, mine, r)
			case AlgoMergeSort:
				sortedElems = mergeSortWhole(pr, mine, r)
			case AlgoColumnsortRecursive:
				sortedElems = recursiveSort(pr, mine, r, report)
			default:
				pr.Abortf("core: unknown algorithm %v", algo)
			}
			out := make([]int64, len(sortedElems))
			for j, e := range sortedElems {
				if negate {
					out[j] = -e.V
				} else {
					out[j] = e.V
				}
			}
			outputs[id] = out
		}
	}
	env := opts.runEnv()
	res, err := env.run(opts.engineConfig(p), progs)
	if res != nil {
		report.Stats = res.Stats
		report.Trace = res.Trace
		report.PhaseCycles = phaseCyclesFrom(res.Stats.Phases)
	}
	if err != nil {
		// The partial report covers the cycles that completed before the
		// abort (nil when the engine could not collect them safely).
		if res == nil {
			report = nil
		}
		return nil, report, err
	}
	// Under a distributed transport only the hosted processors' outputs were
	// produced locally; gather the rest from the peer group. The Columnsort
	// geometry is recorded by processor 0's program, so peers that do not
	// host it fetch it the same way.
	if err := exchangeSlices(env, "sort:outputs", outputs); err != nil {
		return nil, report, err
	}
	geom := sortGeometry{Columns: report.Columns, ColumnLen: report.ColumnLen}
	if err := exchangeScalar(env, "sort:geometry", p, &geom); err != nil {
		return nil, report, err
	}
	report.Columns, report.ColumnLen = geom.Columns, geom.ColumnLen
	return outputs, report, nil
}

// sortGeometry carries the processor-0-recorded Columnsort geometry to the
// rest of a distributed peer group.
type sortGeometry struct {
	Columns   int `json:"columns"`
	ColumnLen int `json:"column_len"`
}

// validateSort checks the inputs and options shared by Sort and the
// checkpointed sort driver, and resolves AlgoAuto to a concrete algorithm.
func validateSort(inputs [][]int64, opts SortOptions) (Algorithm, error) {
	p := len(inputs)
	if p == 0 {
		return 0, fmt.Errorf("core: no processors")
	}
	if opts.K < 1 || opts.K > p {
		return 0, fmt.Errorf("core: K must satisfy 1 <= K <= p, got K=%d p=%d", opts.K, p)
	}
	// The paper assumes n_i > 0 w.l.o.g.; this implementation also accepts
	// empty processors (they contribute nothing and receive nothing), as
	// long as the set itself is non-empty.
	n := 0
	for i, in := range inputs {
		if len(in) >= 1<<31 {
			return 0, fmt.Errorf("core: processor %d holds too many elements", i)
		}
		n += len(in)
		if opts.Order == Ascending {
			for _, v := range in {
				if v == math.MinInt64 {
					return 0, fmt.Errorf("core: MinInt64 unsupported with Ascending order")
				}
			}
		}
	}

	if n == 0 {
		return 0, fmt.Errorf("core: the distributed set is empty")
	}

	algo := opts.Algorithm
	if algo == AlgoAuto {
		algo = chooseAlgorithm(inputs, opts.K)
	}
	if algo == AlgoColumnsortRecursive {
		for i := range inputs {
			if len(inputs[i]) != len(inputs[0]) {
				return 0, fmt.Errorf("core: recursive Columnsort requires an even distribution (processor %d has %d elements, processor 0 has %d)",
					i, len(inputs[i]), len(inputs[0]))
			}
		}
	}
	return algo, nil
}

// chooseAlgorithm implements AlgoAuto: Rank-Sort when only a single channel
// or a single usable column exists, otherwise gathered Columnsort.
func chooseAlgorithm(inputs [][]int64, k int) Algorithm {
	if k == 1 {
		return AlgoRankSort
	}
	n := 0
	for _, in := range inputs {
		n += len(in)
	}
	if maxUsableCols(n, k) == 1 {
		// Too few elements to form multiple columns; a single-channel sort
		// avoids the gather/scatter overhead.
		return AlgoRankSort
	}
	return AlgoColumnsortGather
}
