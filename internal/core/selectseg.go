package core

import (
	"errors"
	"fmt"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/mcb"
	"mcbnet/internal/partial"
	"mcbnet/internal/seq"
)

// This file is the checkpointed execution path of the Section 8 filtering
// selection. The filtering loop is naturally segmented: its complete state
// between iterations is (local candidate lists, d, m, iteration count), which
// is exactly what a Snapshot carries. Each iteration runs as its own engine
// invocation; a typed failure replays only the failed iteration. Unlike the
// sort, the candidate state is independent of the channel count, so a
// channel-degraded run resumes from the last checkpoint at k' < k instead of
// restarting.

// selSegKind enumerates the segment shapes of the filtering selection.
type selSegKind int

const (
	selInit    selSegKind = iota // local sort + network-wide count
	selFilter                    // one filtering iteration
	selCollect                   // survivor collection at P_1 (terminal)
)

// selSegOut is the host-visible outcome of one selection segment: the
// per-processor surviving candidates plus the globally agreed scalars
// (identical at every processor; captured from processor 0).
type selSegOut struct {
	state [][]checkpoint.Elem
	d, m  int
	found bool // selFilter: the iteration located the answer exactly
	res   elem // the answer when found (or the selCollect result)
}

// runSelectSegment executes one selection segment as its own engine run.
// state is the snapshot element state entering the segment (raw per-processor
// inputs for selInit, descending-sorted candidate lists otherwise) and is
// cloned before injection.
func runSelectSegment(env runEnv, kind selSegKind, state [][]checkpoint.Elem, d, m, iter int, cfg mcb.Config) (*selSegOut, *mcb.Result, error) {
	p := cfg.P
	elems := make([][]elem, p)
	for i, l := range state {
		e, err := ckptToElems(l)
		if err != nil {
			return nil, nil, fmt.Errorf("core: bad checkpoint state for processor %d: %w", i, err)
		}
		elems[i] = e
	}
	out := &selSegOut{state: make([][]checkpoint.Elem, p)}
	nextElems := make([][]elem, p)

	progs := make([]func(mcb.Node), p)
	for i := range progs {
		id := i
		progs[i] = func(pr mcb.Node) {
			switch kind {
			case selInit:
				cands := append([]elem(nil), elems[id]...)
				seq.Sort(cands, func(a, b elem) bool { return a.greater(b) })
				pr.AccountAux(int64(len(cands)))
				total := int(partial.PhasedTotal(pr, int64(len(cands)), partial.Sum, "select:init"))
				nextElems[id] = cands
				if id == 0 {
					out.d, out.m = d, total
				}
			case selFilter:
				cands, nd, nm, found, res := filterIteration(pr, elems[id], d, m, iter, "select:")
				nextElems[id] = cands
				if id == 0 {
					out.d, out.m, out.found, out.res = nd, nm, found, res
				}
			case selCollect:
				got := collectSurvivors(pr, elems[id], d, m, "select:")
				if id == 0 {
					out.res = got
				}
			}
		}
	}
	res, err := env.run(cfg, progs)
	if err != nil {
		return nil, res, err
	}
	for i, l := range nextElems {
		out.state[i] = elemsToCkpt(l)
	}
	// Under a distributed transport only the hosted processors computed
	// their candidate lists, and the agreed scalars were captured at
	// processor 0: exchange both so every peer's driver continues from the
	// identical boundary.
	if xerr := exchangeSlices(env, "select:seg:state", out.state); xerr != nil {
		return nil, res, xerr
	}
	scalars := selSegScalars{D: out.d, M: out.m, Found: out.found, Res: out.res}
	if xerr := exchangeScalar(env, "select:seg:scalars", p, &scalars); xerr != nil {
		return nil, res, xerr
	}
	out.d, out.m, out.found, out.res = scalars.D, scalars.M, scalars.Found, scalars.Res
	return out, res, nil
}

// selSegScalars is the wire form of a segment's globally agreed scalars for
// the processor-0 exchange (elem's fields are exported, so the trip through
// JSON is exact).
type selSegScalars struct {
	D     int  `json:"d"`
	M     int  `json:"m"`
	Found bool `json:"found,omitempty"`
	Res   elem `json:"res"`
}

// verifySelectSnapshot accepts a selection boundary only when the surviving
// candidates are a sub-multiset of the inputs, their total count agrees with
// the snapshot's m, and the target rank is still inside the candidate set.
func verifySelectSnapshot(s *checkpoint.Snapshot, want map[elemKey]int) error {
	if err := verifySnapshotMultiset(s, want, false); err != nil {
		return err
	}
	_, n := snapshotElemCounts(s)
	if n != s.M {
		return fmt.Errorf("snapshot holds %d candidates, m says %d", n, s.M)
	}
	if s.D < 1 || s.D > s.M {
		return fmt.Errorf("snapshot rank d=%d outside [1, %d]", s.D, s.M)
	}
	return nil
}

// selectSnapshotUsable validates an on-disk snapshot against the run being
// resumed. Aux[0] carries the originally requested rank (d mutates as sides
// are purged); the tail lists dead original channels of a recorded
// degradation.
func selectSnapshotUsable(s *checkpoint.Snapshot, p, k, origD int, cards []int, want map[elemKey]int) error {
	switch {
	case s.Kind != "select":
		return fmt.Errorf("snapshot kind %q, want select", s.Kind)
	case s.Algo != SelFiltering.String():
		return fmt.Errorf("snapshot algorithm %q, want %q", s.Algo, SelFiltering)
	case s.P != p:
		return fmt.Errorf("snapshot has p=%d, run has p=%d", s.P, p)
	case s.K+len(s.Aux)-1 != k:
		return fmt.Errorf("snapshot has k=%d with %d dead channels, run has k=%d", s.K, len(s.Aux)-1, k)
	case len(s.Aux) < 1 || s.Aux[0] != int64(origD):
		return fmt.Errorf("snapshot selects a different rank")
	case !equalCards(s.Cards, cards):
		return fmt.Errorf("snapshot cardinalities differ from the inputs")
	}
	return verifySelectSnapshot(s, want)
}

// selectCheckpointed is the checkpoint/resume driver for the filtering
// selection: SelectWithRetry routes here when opts.Checkpoints is set and the
// algorithm is SelFiltering. Structure mirrors sortCheckpointed; the
// differences are that a channel degradation resumes from the checkpoint
// (candidate state is k-agnostic, only the threshold m* is recomputed), and
// that DegradeOnCrash falls back to a full restart with the dead processors
// emptied (their candidates are lost, so no checkpoint containing them can
// be trusted).
func selectCheckpointed(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	p := len(inputs)
	if err := validateSelect(inputs, opts); err != nil {
		return 0, nil, err
	}
	if opts.Algorithm != SelFiltering {
		return 0, nil, errNotSegmentable
	}
	verifier := opts.Verifier
	if verifier == nil {
		verifier = VerifySelect
	}
	store := opts.Checkpoints
	pol := opts.Retry
	maxAtt := retryAttempts(pol)
	env := opts.runEnv()

	cs := newChanState(opts.K, opts.Faults)
	cur := inputs
	cards := cardsOf(cur)
	elems := inputElems(cur, false)
	want := elemCounts(elems)
	var deadProcs []int

	freshSnap := func() *checkpoint.Snapshot {
		s := &checkpoint.Snapshot{
			Kind: "select", Algo: SelFiltering.String(), P: p, K: cs.k(),
			D: opts.D, M: multisetTotal(want),
			Cards: append([]int(nil), cards...),
			Aux:   append([]int64{int64(opts.D)}, cs.deadAux()...),
			State: make([][]checkpoint.Elem, p),
		}
		for i, l := range elems {
			s.State[i] = elemsToCkpt(l)
		}
		return s
	}

	rep := &SelectReport{Algorithm: SelFiltering}
	var accepted mcb.Stats

	var snap *checkpoint.Snapshot
	if opts.Resume {
		if ls, lerr := store.Latest(); lerr == nil && ls != nil {
			if rerr := selectSnapshotUsable(ls, p, opts.K, opts.D, cards, want); rerr == nil {
				if cs.restoreDead(ls.Aux[1:]) {
					snap = ls
					if ls.Phase > 0 {
						// A cross-process continuation is a resume: this
						// invocation starts at an accepted boundary, not
						// cycle 0.
						ls.Resumes++
					}
					rep.Resumes = ls.Resumes
					rep.CheckpointPhase = ls.PhaseName
				}
			}
		}
	}
	if snap == nil {
		if err := store.Clear(); err != nil {
			return 0, nil, err
		}
		snap = freshSnap()
		if err := store.Save(snap); err != nil {
			return 0, nil, err
		}
	}
	if len(cs.deadOrig) > 0 {
		rep.DegradedK = cs.k()
		rep.DeadChannels = append([]int(nil), cs.deadOrig...)
	}
	hist := newPhaseHistory()
	hist.record(snap, &accepted)
	// Distributed runs align the peer drivers at the start of every attempt
	// (see resyncPhases); in-process runs skip the exchange entirely.
	needSync := true

	finishReport := func() {
		rep.Stats = accepted
		rep.derivePhaseDiagnostics()
		rep.Attempts = snap.Attempt + 1
		rep.Resumes = snap.Resumes
		rep.ReplayedCycles = snap.ReplayedCycles
		rep.DeadProcs = append([]int(nil), deadProcs...)
	}

	restart := func() error {
		snap2 := freshSnap()
		snap2.Attempt = snap.Attempt
		snap2.Resumes = snap.Resumes
		snap2.ReplayedCycles = snap.ReplayedCycles + snap.CyclesDone
		snap = snap2
		accepted = mcb.Stats{}
		hist.reset()
		hist.record(snap, &accepted)
		if err := store.Clear(); err != nil {
			return err
		}
		return store.Save(snap)
	}

	accept := func(cand *checkpoint.Snapshot, res *mcb.Result) error {
		cand.CyclesDone += res.Stats.Cycles
		cand.MessagesDone += res.Stats.Messages
		cand.Aux = append([]int64{int64(opts.D)}, cs.deadAux()...)
		cand.K = cs.k()
		if err := verifySelectSnapshot(cand, want); err != nil {
			return corruptionError("select checkpoint", err)
		}
		if err := store.Save(cand); err != nil {
			return err
		}
		snap = cand
		accepted.Add(&res.Stats)
		hist.record(snap, &accepted)
		return nil
	}

	var lastErr error
	for {
		if needSync {
			rs, rerr := resyncPhases(env, "select", p, snap, hist, &accepted)
			if rerr != nil {
				if !mcb.Retryable(rerr) {
					finishReport()
					return 0, rep, rerr
				}
				lastErr = rerr
				snap.Attempt++
				if snap.Attempt >= maxAtt {
					finishReport()
					return 0, rep, lastErr
				}
				retryBackoff(pol, snap.Attempt)
				continue
			}
			if rs != snap {
				snap = rs
				rep.CheckpointPhase = snap.PhaseName
			}
			needSync = false
		}
		threshold := selectThreshold(p, cs.k(), opts.Threshold)
		snap.Threshold = threshold
		plan := cs.curPlan.ForAttempt(snap.Attempt).Shift(snap.CyclesDone)
		cfg := mcb.Config{
			P: p, K: cs.k(), Trace: opts.Trace, StallTimeout: opts.StallTimeout,
			Faults: plan, Recorder: opts.Recorder, ProfileLabels: opts.ProfileLabels,
			Engine:    opts.Engine,
			MaxCycles: segmentBudget(opts.MaxCycles, snap.CyclesDone),
		}

		var (
			kind selSegKind
			name string
		)
		switch {
		case snap.Phase == 0:
			kind, name = selInit, "select:init"
		case snap.M > threshold:
			kind, name = selFilter, fmt.Sprintf("select:filter:%02d", snap.Iter)
		default:
			kind, name = selCollect, "select:collect"
		}

		out, res, err := runSelectSegment(env, kind, snap.State, snap.D, snap.M, snap.Iter, cfg)
		if err == nil {
			switch {
			case kind == selCollect || out.found:
				// Terminal: verify the answer against the (possibly
				// degraded) inputs by recount.
				val := out.res.V
				if verr := verifier(cur, opts.D, val); verr != nil {
					err = corruptionError("select", verr)
					break
				}
				accepted.Add(&res.Stats)
				snap.CyclesDone += res.Stats.Cycles
				snap.MessagesDone += res.Stats.Messages
				finishReport()
				return val, rep, nil
			default:
				cand := snap.Clone()
				cand.Phase++
				cand.PhaseName = name
				cand.State = out.state
				cand.D, cand.M = out.d, out.m
				if kind == selFilter {
					cand.Iter++
				}
				err = accept(cand, res)
				if err == nil {
					continue
				}
				var ce *mcb.CorruptionError
				if !errors.As(err, &ce) {
					return 0, nil, err // store failure
				}
			}
		}

		// Segment failed (typed engine error, corrupt boundary, or a wrong
		// final answer): the cycles it burned are replayed work.
		lastErr = err
		if res != nil {
			snap.ReplayedCycles += res.Stats.Cycles
		}
		if !mcb.Retryable(err) {
			finishReport()
			return 0, rep, err
		}
		snap.Attempt++
		if snap.Attempt >= maxAtt {
			finishReport()
			return 0, rep, lastErr
		}
		retryBackoff(pol, snap.Attempt)
		needSync = true

		var crash *mcb.CrashError
		switch {
		case pol.DegradeOnCrash && errors.As(err, &crash):
			// Give the dead processors up: their candidates are lost, so
			// every checkpoint containing them is untrustworthy — restart
			// with the processors emptied and their scheduled crashes
			// removed.
			cur = emptyProcs(cur, crash.Procs)
			deadProcs = mergeProcs(deadProcs, crash.Procs)
			cs.curPlan = cs.curPlan.WithoutCrashes(crash.Procs)
			cards = cardsOf(cur)
			elems = inputElems(cur, false)
			want = elemCounts(elems)
			remaining := multisetTotal(want)
			if opts.D > remaining {
				finishReport()
				return 0, rep, fmt.Errorf("core: graceful degradation lost too many elements: rank %d > %d survivors: %w", opts.D, remaining, err)
			}
			if rerr := restart(); rerr != nil {
				return 0, nil, rerr
			}
		case isCorruption(err):
			// The accepted checkpoints may carry the same silent corruption:
			// full restart.
			if rerr := restart(); rerr != nil {
				return 0, nil, rerr
			}
		default:
			if suspects := outageSuspects(pol, plan, res); len(suspects) > 0 && cs.k()-len(suspects) >= 1 {
				// Candidate state does not depend on k: drop the dead
				// channels and resume from the same checkpoint on the
				// survivors.
				cs.degrade(suspects)
				rep.DegradedK = cs.k()
				rep.DeadChannels = append([]int(nil), cs.deadOrig...)
			}
			snap.Resumes++
			rep.CheckpointPhase = snap.PhaseName
		}
	}
}

// multisetTotal sums a multiset's counts.
func multisetTotal(want map[elemKey]int) int {
	n := 0
	for _, c := range want {
		n += c
	}
	return n
}

// isCorruption reports whether err is (or wraps) a CorruptionError.
func isCorruption(err error) bool {
	var ce *mcb.CorruptionError
	return errors.As(err, &ce)
}
