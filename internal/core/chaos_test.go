package core

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/mcb"
)

// This file is the chaos suite of the failure plane: hundreds of randomized
// (but seeded — every failure is replayable from the iteration's plan)
// fault plans against the sorting and selection stacks, asserting the
// robustness contract:
//
//   - every run returns either a verified-correct result or a typed error
//     from the mcb taxonomy — never a silent wrong answer;
//   - no run deadlocks: a StallError (the lock-step protocols never block
//     outside the engine barrier, so a stall is the deadlock proxy) fails
//     the suite, and every run finishes within the watchdog budget;
//   - partial Stats accompanying failures stay consistent (per-processor
//     and per-channel message counts each sum to the message total);
//   - no processor goroutines leak across runs.

// chaosPlan draws a random fault plan. Rates are kept low enough that a
// retry has a fighting chance, and high enough that a fair share of runs
// fault; scripted outages and crashes are mixed in.
func chaosPlan(r *rand.Rand, p, k int) *mcb.FaultPlan {
	plan := &mcb.FaultPlan{Seed: r.Uint64(), Checksum: r.Float64() < 0.75}
	if r.Float64() < 0.5 {
		plan.DropRate = r.Float64() * 0.03
	}
	if r.Float64() < 0.4 {
		plan.CorruptRate = r.Float64() * 0.03
	}
	if r.Float64() < 0.3 {
		from := int64(r.Intn(300))
		plan.Outages = append(plan.Outages, mcb.Outage{
			Ch:   r.Intn(k),
			From: from,
			To:   from + int64(1+r.Intn(40)),
		})
	}
	if r.Float64() < 0.3 {
		plan.Crashes = append(plan.Crashes, mcb.Crash{
			Proc:  r.Intn(p),
			Cycle: int64(r.Intn(200)),
		})
	}
	return plan
}

// chaosInputs draws ~n small values spread over p processors (empty
// processors allowed, at least one element total).
func chaosInputs(r *rand.Rand, p, n int) [][]int64 {
	inputs := make([][]int64, p)
	for i := 0; i < n; i++ {
		id := r.Intn(p)
		inputs[id] = append(inputs[id], r.Int63n(200)-100)
	}
	if total(inputs) == 0 {
		inputs[0] = append(inputs[0], r.Int63n(200)-100)
	}
	return inputs
}

func total(inputs [][]int64) int {
	n := 0
	for _, in := range inputs {
		n += len(in)
	}
	return n
}

// requireTypedFailure asserts err belongs to the typed taxonomy and is not a
// stall (the deadlock proxy).
func requireTypedFailure(t *testing.T, iter int, err error) {
	t.Helper()
	var se *mcb.StallError
	if errors.As(err, &se) {
		t.Fatalf("iteration %d: chaos run stalled (deadlock proxy): %v", iter, err)
	}
	var col *mcb.CollisionError
	if !errors.Is(err, mcb.ErrAborted) && !errors.As(err, &col) {
		t.Fatalf("iteration %d: untyped failure %T: %v", iter, err, err)
	}
}

// requireStatsConsistent asserts the partial-stats invariant: counters
// reflect fully resolved cycles only, so the three message tallies agree
// even for a run that aborted mid-cycle.
func requireStatsConsistent(t *testing.T, iter int, s *mcb.Stats) {
	t.Helper()
	var perProc, perChan int64
	for _, v := range s.PerProc {
		perProc += v
	}
	for _, v := range s.PerChannel {
		perChan += v
	}
	if perProc != s.Messages || perChan != s.Messages {
		t.Fatalf("iteration %d: inconsistent partial stats: Messages=%d sum(PerProc)=%d sum(PerChannel)=%d",
			iter, s.Messages, perProc, perChan)
	}
	var phaseMsgs int64
	for _, ph := range s.Phases {
		phaseMsgs += ph.Messages
	}
	if phaseMsgs > s.Messages {
		t.Fatalf("iteration %d: phase messages %d exceed total %d", iter, phaseMsgs, s.Messages)
	}
}

// requireGoroutineDrain polls until the goroutine count returns to the
// baseline, failing with a full stack dump on leak.
func requireGoroutineDrain(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestChaosSort(t *testing.T) {
	chaosSort(t, mcb.EngineGoroutine, 0xC0FFEE, 120)
}

// TestChaosSortSharded re-runs the sort chaos suite on the sharded engine:
// the full failure plane (drops, corruption, outages, crash-stops) plus the
// retry layer must behave identically when shard workers, not a global
// barrier, coordinate the processors. Run under -race in CI.
func TestChaosSortSharded(t *testing.T) {
	chaosSort(t, mcb.EngineSharded, 0x5A4DED, 60)
}

func chaosSort(t *testing.T, engine mcb.EngineMode, seed int64, iterations int) {
	base := runtime.NumGoroutine()
	r := rand.New(rand.NewSource(seed))
	failed, recovered := 0, 0
	if engine == mcb.EngineSharded {
		// Rotate the worker count too: the sharded engine derives its shard
		// layout from GOMAXPROCS, so the same fault plans replay against
		// single-worker, few-worker and one-worker-per-core topologies.
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	}
	gmps := []int{1, 2, 4, runtime.NumCPU()}
	for iter := 0; iter < iterations; iter++ {
		if engine == mcb.EngineSharded {
			runtime.GOMAXPROCS(gmps[iter%len(gmps)])
		}
		p := 3 + r.Intn(4)
		k := 1 + r.Intn(p)
		inputs := chaosInputs(r, p, p+r.Intn(40))
		o := SortOptions{
			K: k,
			// The cycle budget converts corrupted-count runaway loops into a
			// typed BudgetError instead of minutes of spinning.
			MaxCycles:    8000,
			StallTimeout: 15 * time.Second,
			Faults:       chaosPlan(r, p, k),
			Retry:        mcb.RetryPolicy{MaxAttempts: 2},
			Engine:       engine,
		}
		outs, rep, err := SortWithRetry(inputs, o)
		if err != nil {
			failed++
			requireTypedFailure(t, iter, err)
		} else {
			if rep.Attempts > 1 {
				recovered++
			}
			checkSorted(t, inputs, outs, Descending, "chaos sort")
		}
		if rep != nil {
			requireStatsConsistent(t, iter, &rep.Stats)
		}
	}
	t.Logf("chaos sort: %d/%d runs failed with a typed error, %d recovered via retry", failed, iterations, recovered)
	if failed == 0 {
		t.Error("chaos plans never faulted a sort; the suite is not exercising the failure plane")
	}
	if failed == iterations {
		t.Error("every chaos sort failed; rates leave the retry layer nothing to verify")
	}
	requireGoroutineDrain(t, base)
}

// TestChaosResumeMatrix is the chaos suite of the checkpoint/resume plane:
//
//   - answers: whatever faults strike, an accepted checkpointed run must
//     answer exactly what the uninterrupted run answers — resuming from a
//     snapshot must never bend the result;
//   - replay economy: for a late-phase deterministic fault, resuming from
//     checkpoints replays strictly fewer cycles than whole-run restarts;
//   - degradation: a permanent scripted outage defeats plain retry (the
//     outage never heals, every attempt dies the same death) but a
//     checkpointed run with DegradeOnOutage finishes on the k' < k
//     surviving channels.
func TestChaosResumeMatrix(t *testing.T) {
	t.Run("answers-identical", func(t *testing.T) {
		base := runtime.NumGoroutine()
		r := rand.New(rand.NewSource(0x2E5C0E))
		const iterations = 60
		sortResumes, selResumes, failed := 0, 0, 0
		for iter := 0; iter < iterations; iter++ {
			p := 3 + r.Intn(4)
			k := 2 + r.Intn(p-1)
			inputs := chaosInputs(r, p, p+r.Intn(40))
			// Stochastic faults only: they reseed per attempt, so a resumed
			// segment has a fighting chance while scripted faults would
			// recur deterministically.
			plan := &mcb.FaultPlan{Seed: r.Uint64(), Checksum: true, DropRate: r.Float64() * 0.02, CorruptRate: r.Float64() * 0.02}

			wantOuts, _, err := Sort(inputs, SortOptions{K: k, Algorithm: AlgoColumnsortGather})
			if err != nil {
				t.Fatalf("iteration %d: fault-free sort failed: %v", iter, err)
			}
			o := SortOptions{
				K: k, Algorithm: AlgoColumnsortGather,
				MaxCycles: 8000, StallTimeout: 15 * time.Second,
				Faults:      plan,
				Retry:       mcb.RetryPolicy{MaxAttempts: 4},
				Checkpoints: checkpoint.NewMem(),
			}
			outs, rep, err := SortWithRetry(inputs, o)
			if err != nil {
				failed++
				requireTypedFailure(t, iter, err)
			} else {
				if !reflect.DeepEqual(outs, wantOuts) {
					t.Fatalf("iteration %d: resumed sort (resumes=%d) differs from uninterrupted run", iter, rep.Resumes)
				}
				sortResumes += rep.Resumes
			}
			if rep != nil {
				requireStatsConsistent(t, iter, &rep.Stats)
			}

			n := total(inputs)
			d := 1 + r.Intn(n)
			wantVal, _, err := Select(inputs, SelectOptions{K: k, D: d})
			if err != nil {
				t.Fatalf("iteration %d: fault-free select failed: %v", iter, err)
			}
			so := SelectOptions{
				K: k, D: d,
				MaxCycles: 8000, StallTimeout: 15 * time.Second,
				Faults:      plan,
				Retry:       mcb.RetryPolicy{MaxAttempts: 4},
				Checkpoints: checkpoint.NewMem(),
			}
			val, srep, err := SelectWithRetry(inputs, so)
			if err != nil {
				failed++
				requireTypedFailure(t, iter, err)
			} else {
				if val != wantVal {
					t.Fatalf("iteration %d: resumed select answered %d, uninterrupted %d (resumes=%d)", iter, val, wantVal, srep.Resumes)
				}
				selResumes += srep.Resumes
			}
			if srep != nil {
				requireStatsConsistent(t, iter, &srep.Stats)
			}
		}
		t.Logf("resume matrix: %d sort resumes, %d select resumes, %d typed failures over %d iterations",
			sortResumes, selResumes, failed, iterations)
		if sortResumes == 0 && selResumes == 0 {
			t.Error("chaos plans never forced a checkpoint resume; the matrix is not exercising recovery")
		}
		requireGoroutineDrain(t, base)
	})

	t.Run("late-fault-replays-less", func(t *testing.T) {
		r := rand.New(rand.NewSource(0x1A7E))
		inputs := chaosInputs(r, 8, 120)
		n := total(inputs)
		opts := SelectOptions{K: 2, D: n / 3, StallTimeout: 15 * time.Second}

		want, wantRep, err := Select(inputs, opts)
		if err != nil {
			t.Fatalf("fault-free select failed: %v", err)
		}
		// Channel 0 dies for good halfway through and never heals: plain
		// retry can only recover by restarting the whole run on the
		// surviving channel; the checkpointed run resumes from its last
		// boundary instead.
		mk := func(ckpt bool) SelectOptions {
			o := opts
			o.Faults = permanentOutage(0, wantRep.Stats.Cycles/2)
			o.Retry = mcb.RetryPolicy{MaxAttempts: 4, DegradeOnOutage: true}
			if ckpt {
				o.Checkpoints = checkpoint.NewMem()
			}
			return o
		}
		plainVal, plainRep, err := SelectWithRetry(inputs, mk(false))
		if err != nil {
			t.Fatalf("plain degraded select failed: %v", err)
		}
		ckptVal, ckptRep, err := SelectWithRetry(inputs, mk(true))
		if err != nil {
			t.Fatalf("checkpointed degraded select failed: %v", err)
		}
		if plainVal != want || ckptVal != want {
			t.Fatalf("degraded answers differ: want %d, plain %d, checkpointed %d", want, plainVal, ckptVal)
		}
		if plainRep.DegradedK != 1 || ckptRep.DegradedK != 1 {
			t.Fatalf("both paths should have degraded to k'=1: plain %+v, ckpt %+v", plainRep.DegradedK, ckptRep.DegradedK)
		}
		if plainRep.ReplayedCycles == 0 {
			t.Fatal("plain retry reports no replayed cycles; the fault did not strike late")
		}
		if ckptRep.ReplayedCycles >= plainRep.ReplayedCycles {
			t.Fatalf("checkpointed resume replayed %d cycles, whole-run restart replayed %d — checkpoints bought nothing",
				ckptRep.ReplayedCycles, plainRep.ReplayedCycles)
		}
		t.Logf("late-phase outage: plain restart replayed %d cycles, checkpointed resume replayed %d",
			plainRep.ReplayedCycles, ckptRep.ReplayedCycles)
	})

	t.Run("outage-degradation-beats-plain-retry", func(t *testing.T) {
		r := rand.New(rand.NewSource(0xDE6D))
		inputs := chaosInputs(r, 6, 60)
		opts := SortOptions{K: 3, Algorithm: AlgoColumnsortGather, StallTimeout: 15 * time.Second}

		want, wantRep, err := Sort(inputs, opts)
		if err != nil {
			t.Fatalf("fault-free sort failed: %v", err)
		}
		outageFrom := wantRep.Stats.Cycles / 2

		// Plain retry without degradation: the scripted outage persists
		// across attempts (a dead transceiver does not heal because the
		// computation restarted), so every attempt dies and the policy
		// exhausts MaxAttempts.
		po := opts
		po.Faults = permanentOutage(1, outageFrom)
		po.Retry = mcb.RetryPolicy{MaxAttempts: 3}
		if _, _, err := SortWithRetry(inputs, po); err == nil {
			t.Fatal("plain retry survived a permanent outage; the scenario is not exercising degradation")
		}

		co := opts
		co.Faults = permanentOutage(1, outageFrom)
		co.Retry = mcb.RetryPolicy{MaxAttempts: 4, DegradeOnOutage: true}
		co.Checkpoints = checkpoint.NewMem()
		outs, rep, err := SortWithRetry(inputs, co)
		if err != nil {
			t.Fatalf("degraded checkpointed sort failed: %v", err)
		}
		if !reflect.DeepEqual(outs, want) {
			t.Fatal("degraded sort outputs differ from the uninterrupted run")
		}
		if rep.DegradedK != 2 || len(rep.DeadChannels) != 1 || rep.DeadChannels[0] != 1 {
			t.Fatalf("expected degradation to k'=2 with channel 1 dead, got %+v", rep)
		}
		if rep.ReplayedCycles == 0 {
			t.Fatal("degraded run reports no replayed cycles; the outage did not strike mid-run")
		}
		t.Logf("permanent outage on channel 1: completed at k'=%d after %d attempts, %d replayed cycles",
			rep.DegradedK, rep.Attempts, rep.ReplayedCycles)
	})
}

func TestChaosSelect(t *testing.T) {
	base := runtime.NumGoroutine()
	r := rand.New(rand.NewSource(0xBADD1CE))
	const iterations = 100
	failed, recovered, degraded := 0, 0, 0
	for iter := 0; iter < iterations; iter++ {
		p := 3 + r.Intn(4)
		k := 1 + r.Intn(p)
		inputs := chaosInputs(r, p, p+r.Intn(40))
		n := total(inputs)
		o := SelectOptions{
			K:            k,
			D:            1 + r.Intn(n),
			MaxCycles:    8000,
			StallTimeout: 15 * time.Second,
			Faults:       chaosPlan(r, p, k),
			Retry:        mcb.RetryPolicy{MaxAttempts: 2, DegradeOnCrash: r.Float64() < 0.5},
		}
		val, rep, err := SelectWithRetry(inputs, o)
		if err != nil {
			failed++
			requireTypedFailure(t, iter, err)
		} else {
			if rep.Attempts > 1 {
				recovered++
			}
			// A degraded answer is ranked over the survivors, not the full
			// input — re-verify against the surviving elements.
			cur := inputs
			if len(rep.DeadProcs) > 0 {
				degraded++
				cur = emptyProcs(inputs, rep.DeadProcs)
			}
			if verr := VerifySelect(cur, o.D, val); verr != nil {
				t.Fatalf("iteration %d: accepted answer fails recount: %v", iter, verr)
			}
		}
		if rep != nil {
			requireStatsConsistent(t, iter, &rep.Stats)
		}
	}
	t.Logf("chaos select: %d/%d runs failed with a typed error, %d recovered via retry, %d degraded", failed, iterations, recovered, degraded)
	if failed == 0 {
		t.Error("chaos plans never faulted a selection; the suite is not exercising the failure plane")
	}
	if failed == iterations {
		t.Error("every chaos selection failed; rates leave the retry layer nothing to verify")
	}
	requireGoroutineDrain(t, base)
}
