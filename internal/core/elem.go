// Package core implements the paper's primary contributions on top of the
// MCB network substrate: the distributed sorting algorithms of Sections 5-7
// (Columnsort with gathered or virtual columns, Rank-Sort, Merge-Sort, the
// recursive variant, and uneven-distribution support) and the selection
// algorithm of Section 8 (median-of-medians filtering).
package core

import "mcbnet/internal/mcb"

// elem is an element made distinct per the paper's w.l.o.g. device: each
// value xi at processor Pi is replaced by the triple (xi, i, j) compared
// lexicographically. We fold (i, j) into a single tiebreak word T. P is an
// opaque payload that rides along without affecting comparisons — the
// selection algorithm uses it to carry the candidate count m_i when sorting
// (median, count) pairs with the Section 5 sorter.
type elem struct {
	V int64 // user value
	T int64 // unique tiebreak: ownerID<<31 | localIndex
	P int64 // opaque payload, ignored by comparisons
}

// greater is the paper's canonical descending comparison: a precedes b in
// sorted order iff a > b lexicographically on (V, T).
func (a elem) greater(b elem) bool {
	if a.V != b.V {
		return a.V > b.V
	}
	return a.T > b.T
}

// geq reports a >= b lexicographically (payload P is ignored).
func (a elem) geq(b elem) bool { return a.same(b) || a.greater(b) }

// same reports identity of the (V, T) key.
func (a elem) same(b elem) bool { return a.V == b.V && a.T == b.T }

// msg encodes the element as a broadcast message.
func (a elem) msg(tag uint8) mcb.Message { return mcb.Msg(tag, a.V, a.T, a.P) }

// elemFromMsg decodes an element from a message.
func elemFromMsg(m mcb.Message) elem { return elem{V: m.X, T: m.Y, P: m.Z} }

// cell is one matrix position: either a real element or a padding dummy.
// Dummies compare below every real element (they sink to the end of the
// descending order) and are never broadcast — receivers detect them as
// silence on the channel.
type cell struct {
	e     elem
	dummy bool
}

// greaterCell orders cells descending with dummies last.
func greaterCell(a, b cell) bool {
	switch {
	case a.dummy && b.dummy:
		return false
	case a.dummy:
		return false
	case b.dummy:
		return true
	default:
		return a.e.greater(b.e)
	}
}

// makeElems wraps raw per-processor values into distinct elements with the
// tiebreak T = id<<31 | j (local indices are bounded by 2^31 at the API
// boundary, so tiebreaks are unique network-wide).
func makeElems(id int, vals []int64) []elem {
	out := make([]elem, len(vals))
	for j, v := range vals {
		out[j] = elem{V: v, T: int64(id)<<31 | int64(j)}
	}
	return out
}
