package core

import (
	"fmt"

	"mcbnet/internal/mcb"
)

// MultiSelect finds the values of several descending ranks in a single
// network computation: the filtering selections run back to back inside one
// lock-step program, so the per-run engine overhead is paid once and the
// total cost is the sum of the individual selections (each
// O(p log(kn/p)) messages). Ranks may be given in any order and may repeat;
// results are returned in the same order as ds.
func MultiSelect(inputs [][]int64, ds []int, opts SelectOptions) ([]int64, *SelectReport, error) {
	p := len(inputs)
	if p == 0 {
		return nil, nil, fmt.Errorf("core: no processors")
	}
	if opts.K < 1 || opts.K > p {
		return nil, nil, fmt.Errorf("core: K must satisfy 1 <= K <= P, got K=%d p=%d", opts.K, p)
	}
	if len(ds) == 0 {
		return nil, nil, fmt.Errorf("core: no ranks requested")
	}
	n := 0
	for _, in := range inputs {
		n += len(in)
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("core: the distributed set is empty")
	}
	for _, d := range ds {
		if d < 1 || d > n {
			return nil, nil, fmt.Errorf("core: rank %d out of range [1, %d]", d, n)
		}
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = p / opts.K
	}
	if threshold < 1 {
		threshold = 1
	}

	report := &SelectReport{Algorithm: SelFiltering}
	results := make([]int64, len(ds))
	progs := make([]func(mcb.Node), p)
	for i := range progs {
		id := i
		in := inputs[i]
		progs[i] = func(pr mcb.Node) {
			mine := makeElems(id, in)
			for qi, d := range ds {
				// Per-query phase prefixes keep the queries' filter phases
				// distinct in Stats.Phases (same-name phases merge).
				got := selectFiltering(pr, mine, d, threshold, fmt.Sprintf("select:q%02d:", qi))
				if id == 0 {
					results[qi] = got.V
				}
			}
		}
	}
	cfg := mcb.Config{P: p, K: opts.K, Trace: opts.Trace, MaxCycles: opts.MaxCycles, StallTimeout: opts.StallTimeout,
		Recorder: opts.Recorder, ProfileLabels: opts.ProfileLabels, Engine: opts.Engine}
	env := opts.runEnv()
	res, err := env.run(cfg, progs)
	if err != nil {
		return nil, nil, err
	}
	report.Stats = res.Stats
	report.Trace = res.Trace
	report.derivePhaseDiagnostics()
	// All answers were captured at processor 0; under a distributed
	// transport only the peer hosting it has them.
	if err := exchangeScalar(env, "multiselect:results", p, &results); err != nil {
		return nil, nil, err
	}
	return results, report, nil
}
