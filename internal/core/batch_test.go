package core

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcbnet/internal/mcb"
)

// batchOracle computes the expected answer of a job sequentially.
func batchOracle(job BatchJob) []int64 {
	sorted := append([]int64(nil), job.Values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] }) // descending
	switch job.Op {
	case BatchSort:
		if job.Order == Ascending {
			for i, j := 0, len(sorted)-1; i < j; i, j = i+1, j-1 {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
		return sorted
	case BatchTopK:
		return sorted[:job.TopK]
	case BatchMedian:
		return []int64{sorted[(len(sorted)+1)/2-1]}
	case BatchRank:
		return []int64{sorted[job.D-1]}
	case BatchMultiSelect:
		out := make([]int64, len(job.Ds))
		for i, d := range job.Ds {
			out[i] = sorted[d-1]
		}
		return out
	}
	return nil
}

// randomBatchJob draws a job with ragged sizes, duplicates and negatives.
func randomBatchJob(rng *rand.Rand) BatchJob {
	n := 1 + rng.Intn(40)
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(rng.Intn(2*n) - n) // dense range forces duplicates
	}
	job := BatchJob{Values: values}
	switch rng.Intn(5) {
	case 0:
		job.Op = BatchSort
		if rng.Intn(2) == 0 {
			job.Order = Ascending
		}
	case 1:
		job.Op = BatchTopK
		job.TopK = 1 + rng.Intn(n)
	case 2:
		job.Op = BatchMedian
	case 3:
		job.Op = BatchRank
		job.D = 1 + rng.Intn(n)
	case 4:
		job.Op = BatchMultiSelect
		job.Ds = make([]int, 1+rng.Intn(3))
		for i := range job.Ds {
			job.Ds[i] = 1 + rng.Intn(n)
		}
	}
	return job
}

// TestBatchMatchesIndividual is the coalescing property: a coalesced batch
// returns byte-identical per-caller answers to individual runs of the same
// jobs — across ragged sizes, all five ops, duplicates, and batch sizes
// from 1 up to past the per-run channel cap (forcing chunking).
func TestBatchMatchesIndividual(t *testing.T) {
	opts := BatchOptions{P: 24, K: 6}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		J := 1 + rng.Intn(9) // up to K+3: exercises the chunking path
		jobs := make([]BatchJob, J)
		for i := range jobs {
			jobs[i] = randomBatchJob(rng)
		}
		batched, err := RunBatch(jobs, opts)
		if err != nil {
			t.Fatalf("trial %d: RunBatch: %v", trial, err)
		}
		individual, err := RunBatch(jobs, BatchOptions{P: opts.P, K: opts.K, NoCoalesce: true})
		if err != nil {
			t.Fatalf("trial %d: RunBatch(NoCoalesce): %v", trial, err)
		}
		for i := range jobs {
			if batched[i].Err != nil {
				t.Fatalf("trial %d job %d (%v): batched error: %v", trial, i, jobs[i].Op, batched[i].Err)
			}
			if individual[i].Err != nil {
				t.Fatalf("trial %d job %d (%v): individual error: %v", trial, i, jobs[i].Op, individual[i].Err)
			}
			want := batchOracle(jobs[i])
			if !reflect.DeepEqual(batched[i].Values, want) {
				t.Errorf("trial %d job %d (%v): batched = %v, oracle = %v", trial, i, jobs[i].Op, batched[i].Values, want)
			}
			if !reflect.DeepEqual(batched[i].Values, individual[i].Values) {
				t.Errorf("trial %d job %d (%v): batched = %v, individual = %v", trial, i, jobs[i].Op, batched[i].Values, individual[i].Values)
			}
		}
		if J >= 2 {
			for i := 0; i < min(J, opts.K); i++ {
				if !batched[i].Batched {
					t.Errorf("trial %d job %d: expected Batched=true in a %d-job batch", trial, i, J)
				}
			}
		}
	}
}

// TestBatchBudgetIsolation is the failure-isolation property: a mid-batch
// typed failure (here a 1-cycle budget, guaranteed to blow) must surface as
// a typed error on the offending job only — siblings fall back to
// individual runs and still answer correctly.
func TestBatchBudgetIsolation(t *testing.T) {
	jobs := []BatchJob{
		{Op: BatchTopK, Values: []int64{5, 1, 9, 3, 9, 2}, TopK: 3},
		{Op: BatchRank, Values: []int64{4, 8, 15, 16, 23, 42}, D: 2, MaxCycles: 1},
		{Op: BatchMedian, Values: []int64{10, 20, 30, 40, 50}},
	}
	results, err := RunBatch(jobs, BatchOptions{P: 12, K: 4})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	var be *mcb.BudgetError
	if results[1].Err == nil || !errors.As(results[1].Err, &be) {
		t.Fatalf("job 1: want *mcb.BudgetError, got %v", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("sibling job %d poisoned: %v", i, results[i].Err)
		}
		if want := batchOracle(jobs[i]); !reflect.DeepEqual(results[i].Values, want) {
			t.Errorf("sibling job %d = %v, want %v", i, results[i].Values, want)
		}
		if !results[i].Batched {
			t.Errorf("sibling job %d: the coalesced answer should stand (Batched=true)", i)
		}
	}
	if results[1].Batched {
		t.Error("job 1: the budget verdict must come from a dedicated run (Batched=false)")
	}
}

// TestBatchValidation: malformed jobs are rejected without an engine run and
// without affecting valid siblings.
func TestBatchValidation(t *testing.T) {
	jobs := []BatchJob{
		{Op: BatchSort, Values: nil},
		{Op: BatchRank, Values: []int64{1, 2}, D: 3},
		{Op: BatchTopK, Values: []int64{1, 2}, TopK: 0},
		{Op: BatchMultiSelect, Values: []int64{1, 2}},
		{Op: BatchMedian, Values: []int64{3, 1, 2}},
	}
	results, err := RunBatch(jobs, BatchOptions{P: 8, K: 2})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i := 0; i < 4; i++ {
		if results[i].Err == nil {
			t.Errorf("job %d: expected a validation error", i)
		}
	}
	if results[4].Err != nil {
		t.Fatalf("valid job rejected: %v", results[4].Err)
	}
	if got, want := results[4].Values, []int64{2}; !reflect.DeepEqual(got, want) {
		t.Errorf("median = %v, want %v", got, want)
	}
	if _, err := RunBatch(jobs, BatchOptions{P: 2, K: 4}); err == nil {
		t.Error("K > P accepted")
	}
}

// TestBatchEngines: the coalesced run answers identically on both execution
// engines (the subnet view adds no engine-specific behavior).
func TestBatchEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	jobs := make([]BatchJob, 4)
	for i := range jobs {
		jobs[i] = randomBatchJob(rng)
	}
	for _, engine := range []mcb.EngineMode{mcb.EngineGoroutine, mcb.EngineSharded} {
		results, err := RunBatch(jobs, BatchOptions{P: 16, K: 4, Engine: engine})
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		for i := range jobs {
			if results[i].Err != nil {
				t.Fatalf("engine %q job %d: %v", engine, i, results[i].Err)
			}
			if want := batchOracle(jobs[i]); !reflect.DeepEqual(results[i].Values, want) {
				t.Errorf("engine %q job %d = %v, want %v", engine, i, results[i].Values, want)
			}
		}
	}
}

// BenchmarkBatchTopK measures the batching win the service benchmark gate
// asserts end to end: 8 small top-k jobs served by one coalesced run vs 8
// individual runs on the same network.
func BenchmarkBatchTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	jobs := make([]BatchJob, 8)
	for i := range jobs {
		values := make([]int64, 32)
		for j := range values {
			values[j] = rng.Int63n(1 << 20)
		}
		jobs[i] = BatchJob{Op: BatchTopK, Values: values, TopK: 8}
	}
	for _, mode := range []struct {
		name       string
		noCoalesce bool
	}{{"batched", false}, {"unbatched", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := BatchOptions{P: 32, K: 8, NoCoalesce: mode.noCoalesce}
			for i := 0; i < b.N; i++ {
				results, err := RunBatch(jobs, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
