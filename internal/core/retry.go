package core

import (
	"errors"
	"fmt"
	"time"

	"mcbnet/internal/mcb"
)

// This file is the algorithm-level verify-and-retry recovery layer. Each
// attempt runs on a fresh network (a new engine, fresh goroutines, fresh
// stall-watchdog baseline) under a per-attempt fault plan derived with
// mcb.FaultPlan.ForAttempt: stochastic faults strike elsewhere on a retry,
// scripted crashes and outages persist. A run is accepted only if it
// returned without an engine error AND its output passed verification;
// everything else is retried up to Retry.MaxAttempts times, so a faulted
// run is detected and re-executed rather than silently wrong.
//
// With a checkpoint store configured (SortOptions.Checkpoints /
// SelectOptions.Checkpoints), eligible algorithms run segmented instead:
// the drivers in sortseg.go and selectseg.go snapshot the distributed state
// at every phase boundary and resume from the last accepted one, replaying
// only the failed segment. Algorithms without a segmented path fall back to
// the whole-run loops below.

func retryAttempts(pol mcb.RetryPolicy) int {
	if pol.MaxAttempts < 1 {
		return 1
	}
	return pol.MaxAttempts
}

// retryBackoff sleeps before retry attempt a (1-based attempt index of the
// upcoming attempt). The schedule — capped exponential doubling with the
// policy's deterministic seeded jitter — is mcb.RetryPolicy.BackoffFor, the
// single implementation shared with the engine-level retry layer and the
// tcp transport's dial loop.
func retryBackoff(pol mcb.RetryPolicy, a int) {
	if a <= 0 {
		return
	}
	if d := pol.BackoffFor(a - 1); d > 0 {
		time.Sleep(d)
	}
}

// SortWithRetry sorts like Sort, but re-executes faulted runs: an attempt is
// accepted only when the engine reports no error and the output passes the
// verifier (default VerifySort: sortedness, cardinality preservation,
// multiset-permutation of the input). The returned Report carries the
// attempt count; on final failure the last attempt's error (typed, matching
// errors.As against the mcb taxonomy) and partial report are returned.
//
// With opts.Checkpoints set and a gathered-Columnsort run, the sort executes
// as phase segments with boundary snapshots and resume-from-checkpoint
// recovery (see sortCheckpointed). With Retry.DegradeOnOutage set, a failure
// attributable to scripted channel outages re-runs the sort on the k' < k
// surviving channels instead of hoping the channel heals.
func SortWithRetry(inputs [][]int64, opts SortOptions) ([][]int64, *Report, error) {
	if opts.Checkpoints != nil {
		outs, rep, err := sortCheckpointed(inputs, opts)
		if !errors.Is(err, errNotSegmentable) {
			return outs, rep, err
		}
		// No segmented path for this algorithm: whole-run attempts below.
	}
	verifier := opts.Verifier
	if verifier == nil {
		verifier = VerifySort
	}
	max := retryAttempts(opts.Retry)
	cs := newChanState(opts.K, opts.Faults)
	var (
		lastRep  *Report
		lastErr  error
		replayed int64
	)
	for a := 0; a < max; a++ {
		retryBackoff(opts.Retry, a)
		aopts := opts
		aopts.K = cs.k()
		plan := cs.curPlan.ForAttempt(a)
		aopts.Faults = plan
		outs, rep, err := Sort(inputs, aopts)
		if rep != nil {
			rep.Attempts = a + 1
			rep.ReplayedCycles = replayed
			if len(cs.deadOrig) > 0 {
				rep.DegradedK = cs.k()
				rep.DeadChannels = append([]int(nil), cs.deadOrig...)
			}
			lastRep = rep
		}
		if err != nil {
			lastErr = err
			if rep != nil {
				replayed += rep.Stats.Cycles
			}
			if !mcb.Retryable(err) {
				return nil, lastRep, err
			}
			degradeOnSuspects(opts.Retry, cs, plan, rep)
			continue
		}
		if verr := verifier(inputs, outs, opts.Order); verr != nil {
			lastErr = corruptionError("sort", verr)
			replayed += rep.Stats.Cycles
			continue
		}
		return outs, rep, nil
	}
	return nil, lastRep, lastErr
}

// degradeOnSuspects applies the k' < k channel degradation to a failed plain
// (non-checkpointed) attempt: when the failure is attributable to scripted
// outages, the suspect channels are dropped so the next attempt runs on the
// survivors.
func degradeOnSuspects(pol mcb.RetryPolicy, cs *chanState, plan *mcb.FaultPlan, stats interface{ faultStats() (*mcb.FaultStats, int64) }) {
	if !pol.DegradeOnOutage || stats == nil {
		return
	}
	fs, cycles := stats.faultStats()
	if fs == nil {
		return
	}
	suspects := mcb.OutageSuspects(plan, fs, cycles)
	if len(suspects) > 0 && cs.k()-len(suspects) >= 1 {
		cs.degrade(suspects)
	}
}

// faultStats exposes the engine fault counters of a (possibly partial)
// report to the degradation logic.
func (r *Report) faultStats() (*mcb.FaultStats, int64) {
	if r == nil {
		return nil, 0
	}
	return &r.Stats.Faults, r.Stats.Cycles
}

func (r *SelectReport) faultStats() (*mcb.FaultStats, int64) {
	if r == nil {
		return nil, 0
	}
	return &r.Stats.Faults, r.Stats.Cycles
}

// SelectWithRetry selects like Select, but re-executes faulted runs and
// verifies every accepted answer by recount (default VerifySelect). With
// Retry.DegradeOnCrash set it additionally degrades gracefully: after a
// CrashError, the next attempt treats the crashed processors as empty — the
// protocols are silence-tolerant, so the computation proceeds without them
// and answers rank opts.D over the surviving elements. The report lists the
// processors given up on in DeadProcs.
//
// With opts.Checkpoints set and the filtering algorithm, the selection runs
// as per-iteration segments with boundary snapshots (see selectCheckpointed).
// With Retry.DegradeOnOutage set, outage-attributable failures drop the dead
// channels and continue on the survivors.
func SelectWithRetry(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	if opts.Checkpoints != nil {
		val, rep, err := selectCheckpointed(inputs, opts)
		if !errors.Is(err, errNotSegmentable) {
			return val, rep, err
		}
	}
	verifier := opts.Verifier
	if verifier == nil {
		verifier = VerifySelect
	}
	max := retryAttempts(opts.Retry)
	cur := inputs
	cs := newChanState(opts.K, opts.Faults)
	var (
		dead     []int
		lastRep  *SelectReport
		lastErr  error
		replayed int64
	)
	for a := 0; a < max; a++ {
		retryBackoff(opts.Retry, a)
		aopts := opts
		aopts.K = cs.k()
		plan := cs.curPlan.ForAttempt(a)
		aopts.Faults = plan
		val, rep, err := Select(cur, aopts)
		if rep != nil {
			rep.Attempts = a + 1
			rep.ReplayedCycles = replayed
			rep.DeadProcs = append([]int(nil), dead...)
			if len(cs.deadOrig) > 0 {
				rep.DegradedK = cs.k()
				rep.DeadChannels = append([]int(nil), cs.deadOrig...)
			}
			lastRep = rep
		}
		if err != nil {
			lastErr = err
			if rep != nil {
				replayed += rep.Stats.Cycles
			}
			var ce *mcb.CrashError
			if opts.Retry.DegradeOnCrash && errors.As(err, &ce) {
				// Give the dead processors up: their elements are lost; the
				// next attempt runs with them empty and without their
				// scheduled crashes (the degraded run models restarted,
				// empty replacements).
				cur = emptyProcs(cur, ce.Procs)
				dead = mergeProcs(dead, ce.Procs)
				cs.curPlan = cs.curPlan.WithoutCrashes(ce.Procs)
				remaining := 0
				for _, in := range cur {
					remaining += len(in)
				}
				if opts.D > remaining {
					return 0, lastRep, fmt.Errorf("core: graceful degradation lost too many elements: rank %d > %d survivors: %w", opts.D, remaining, err)
				}
				continue
			}
			if !mcb.Retryable(err) {
				return 0, lastRep, err
			}
			degradeOnSuspects(opts.Retry, cs, plan, rep)
			continue
		}
		if verr := verifier(cur, opts.D, val); verr != nil {
			lastErr = corruptionError("select", verr)
			replayed += rep.Stats.Cycles
			continue
		}
		return val, rep, nil
	}
	return 0, lastRep, lastErr
}

// emptyProcs returns a copy of inputs with the given processors' lists
// emptied (the processor count is unchanged: the protocols accept empty
// processors).
func emptyProcs(inputs [][]int64, procs []int) [][]int64 {
	out := append([][]int64(nil), inputs...)
	for _, id := range procs {
		if id >= 0 && id < len(out) {
			out[id] = nil
		}
	}
	return out
}

// mergeProcs unions two processor-id lists, keeping increasing order.
func mergeProcs(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, lists := range [2][]int{a, b} {
		for _, id := range lists {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
