package core

import (
	"errors"
	"fmt"
	"time"

	"mcbnet/internal/mcb"
)

// This file is the algorithm-level verify-and-retry recovery layer. Each
// attempt runs on a fresh network (a new engine, fresh goroutines, fresh
// stall-watchdog baseline) under a per-attempt fault plan derived with
// mcb.FaultPlan.ForAttempt: stochastic faults strike elsewhere on a retry,
// scripted crashes and outages persist. A run is accepted only if it
// returned without an engine error AND its output passed verification;
// everything else is retried up to Retry.MaxAttempts times, so a faulted
// run is detected and re-executed rather than silently wrong.

func retryAttempts(pol mcb.RetryPolicy) int {
	if pol.MaxAttempts < 1 {
		return 1
	}
	return pol.MaxAttempts
}

// retryBackoff sleeps before retry attempt a (1-based attempt index of the
// upcoming attempt), doubling the policy's base backoff each time.
func retryBackoff(pol mcb.RetryPolicy, a int) {
	if pol.Backoff > 0 && a > 0 {
		time.Sleep(pol.Backoff << (a - 1))
	}
}

// SortWithRetry sorts like Sort, but re-executes faulted runs: an attempt is
// accepted only when the engine reports no error and the output passes the
// verifier (default VerifySort: sortedness, cardinality preservation,
// multiset-permutation of the input). The returned Report carries the
// attempt count; on final failure the last attempt's error (typed, matching
// errors.As against the mcb taxonomy) and partial report are returned.
func SortWithRetry(inputs [][]int64, opts SortOptions) ([][]int64, *Report, error) {
	verifier := opts.Verifier
	if verifier == nil {
		verifier = VerifySort
	}
	max := retryAttempts(opts.Retry)
	var (
		lastRep *Report
		lastErr error
	)
	for a := 0; a < max; a++ {
		retryBackoff(opts.Retry, a)
		aopts := opts
		aopts.Faults = opts.Faults.ForAttempt(a)
		outs, rep, err := Sort(inputs, aopts)
		if rep != nil {
			rep.Attempts = a + 1
			lastRep = rep
		}
		if err != nil {
			lastErr = err
			if !mcb.Retryable(err) {
				return nil, lastRep, err
			}
			continue
		}
		if verr := verifier(inputs, outs, opts.Order); verr != nil {
			lastErr = corruptionError("sort", verr)
			continue
		}
		return outs, rep, nil
	}
	return nil, lastRep, lastErr
}

// SelectWithRetry selects like Select, but re-executes faulted runs and
// verifies every accepted answer by recount (default VerifySelect). With
// Retry.DegradeOnCrash set it additionally degrades gracefully: after a
// CrashError, the next attempt treats the crashed processors as empty — the
// protocols are silence-tolerant, so the computation proceeds without them
// and answers rank opts.D over the surviving elements. The report lists the
// processors given up on in DeadProcs.
func SelectWithRetry(inputs [][]int64, opts SelectOptions) (int64, *SelectReport, error) {
	verifier := opts.Verifier
	if verifier == nil {
		verifier = VerifySelect
	}
	max := retryAttempts(opts.Retry)
	cur := inputs
	plan := opts.Faults
	var (
		dead    []int
		lastRep *SelectReport
		lastErr error
	)
	for a := 0; a < max; a++ {
		retryBackoff(opts.Retry, a)
		aopts := opts
		aopts.Faults = plan.ForAttempt(a)
		val, rep, err := Select(cur, aopts)
		if rep != nil {
			rep.Attempts = a + 1
			rep.DeadProcs = append([]int(nil), dead...)
			lastRep = rep
		}
		if err != nil {
			lastErr = err
			var ce *mcb.CrashError
			if opts.Retry.DegradeOnCrash && errors.As(err, &ce) {
				// Give the dead processors up: their elements are lost; the
				// next attempt runs with them empty and without their
				// scheduled crashes (the degraded run models restarted,
				// empty replacements).
				cur = emptyProcs(cur, ce.Procs)
				dead = mergeProcs(dead, ce.Procs)
				plan = plan.WithoutCrashes(ce.Procs)
				remaining := 0
				for _, in := range cur {
					remaining += len(in)
				}
				if opts.D > remaining {
					return 0, lastRep, fmt.Errorf("core: graceful degradation lost too many elements: rank %d > %d survivors: %w", opts.D, remaining, err)
				}
				continue
			}
			if !mcb.Retryable(err) {
				return 0, lastRep, err
			}
			continue
		}
		if verr := verifier(cur, opts.D, val); verr != nil {
			lastErr = corruptionError("select", verr)
			continue
		}
		return val, rep, nil
	}
	return 0, lastRep, lastErr
}

// emptyProcs returns a copy of inputs with the given processors' lists
// emptied (the processor count is unchanged: the protocols accept empty
// processors).
func emptyProcs(inputs [][]int64, procs []int) [][]int64 {
	out := append([][]int64(nil), inputs...)
	for _, id := range procs {
		if id >= 0 && id < len(out) {
			out[id] = nil
		}
	}
	return out
}

// mergeProcs unions two processor-id lists, keeping increasing order.
func mergeProcs(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, lists := range [2][]int{a, b} {
		for _, id := range lists {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
