package core

import (
	"testing"

	"mcbnet/internal/dist"
)

// TestSoakAllAlgorithms is a wide randomized sweep (not part of the regular
// suite; run explicitly).
func TestSoakAllAlgorithms(t *testing.T) {
	for seed := uint64(0); seed < 400; seed++ {
		r := dist.NewRNG(7000 + seed)
		p := 2 + r.Intn(12)
		n := p + r.Intn(300)
		k := 1 + r.Intn(p)
		card := dist.RandomComposition(r, n, p)
		var inputs [][]int64
		switch seed % 3 {
		case 0:
			inputs = dist.Values(r, card)
		case 1:
			inputs = dist.ValuesWithDuplicates(r, card)
		default:
			inputs = dist.AdversarialCircular(card)
		}
		algo := sortAlgos[int(seed)%len(sortAlgos)]
		if algo == AlgoMergeSort && n > 150 {
			continue
		}
		outputs, _, err := Sort(inputs, opts(k, algo))
		if err != nil {
			t.Fatalf("seed %d %v p=%d n=%d k=%d: %v", seed, algo, p, n, k, err)
		}
		checkSorted(t, inputs, outputs, Descending, "soak")
		d := 1 + r.Intn(n)
		got, _, err := Select(inputs, selOpts(k, d))
		if err != nil {
			t.Fatalf("seed %d select: %v", seed, err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Fatalf("seed %d select d=%d: %d != %d", seed, d, got, want)
		}
	}
}
