package core

import (
	"errors"
	"testing"
	"time"

	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
)

// Edge-case and failure-injection coverage for the sort/select drivers.

func TestSortAllEqualValues(t *testing.T) {
	inputs := [][]int64{{7, 7, 7}, {7}, {7, 7}}
	for _, algo := range sortAlgos {
		outputs, _, err := Sort(inputs, opts(2, algo))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for i, out := range outputs {
			if len(out) != len(inputs[i]) {
				t.Fatalf("%v: cardinality changed", algo)
			}
			for _, v := range out {
				if v != 7 {
					t.Fatalf("%v: value %d", algo, v)
				}
			}
		}
	}
}

func TestSortSingletonsEveryK(t *testing.T) {
	// n == p: every processor holds exactly one element (the configuration
	// the selection algorithm uses to sort its (median, count) pairs).
	const p = 12
	r := dist.NewRNG(401)
	inputs := make([][]int64, p)
	for i := range inputs {
		inputs[i] = []int64{int64(r.Intn(100))}
	}
	for k := 1; k <= p; k++ {
		for _, algo := range sortAlgos {
			runSortCase(t, inputs, k, algo, "singletons")
		}
	}
}

func TestSortNegativeValues(t *testing.T) {
	inputs := [][]int64{{-5, 3}, {0, -100}, {42, -1}}
	for _, algo := range sortAlgos {
		runSortCase(t, inputs, 2, algo, "negatives/"+algo.String())
	}
	outputs, _, err := Sort(inputs, SortOptions{K: 2, Order: Ascending})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, inputs, outputs, Ascending, "negatives-asc")
}

func TestSortMaxCyclesAborts(t *testing.T) {
	r := dist.NewRNG(402)
	inputs := dist.Values(r, dist.Even(1024, 8))
	_, _, err := Sort(inputs, SortOptions{K: 2, MaxCycles: 10})
	if !errors.Is(err, mcb.ErrAborted) {
		t.Fatalf("expected cycle-limit abort, got %v", err)
	}
}

func TestSelectMaxCyclesAborts(t *testing.T) {
	r := dist.NewRNG(403)
	inputs := dist.Values(r, dist.Even(1024, 8))
	_, _, err := Select(inputs, SelectOptions{K: 2, D: 512, MaxCycles: 5})
	if !errors.Is(err, mcb.ErrAborted) {
		t.Fatalf("expected cycle-limit abort, got %v", err)
	}
}

func TestSortStallTimeoutConfigured(t *testing.T) {
	// A healthy run completes well before the stall timeout fires.
	r := dist.NewRNG(404)
	inputs := dist.Values(r, dist.Even(64, 4))
	_, _, err := Sort(inputs, SortOptions{K: 2, StallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortAscendingPproperty(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		r := dist.NewRNG(500 + seed)
		p := 2 + r.Intn(6)
		n := p + r.Intn(100)
		inputs := dist.Values(r, dist.RandomComposition(r, n, p))
		outputs, _, err := Sort(inputs, SortOptions{K: 1 + r.Intn(p), Order: Ascending})
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, inputs, outputs, Ascending, "asc-prop")
	}
}

func TestSortLopsidedTwoProcs(t *testing.T) {
	// Extreme two-processor skew: one element vs many.
	big := make([]int64, 200)
	r := dist.NewRNG(405)
	for i := range big {
		big[i] = int64(r.Intn(1000))
	}
	inputs := [][]int64{{500}, big}
	for _, algo := range sortAlgos {
		runSortCase(t, inputs, 2, algo, "lopsided/"+algo.String())
	}
}

func TestSortVirtualManyGroupsFewChannels(t *testing.T) {
	// More processors than channels with a skew that forces uneven group
	// sizes in virtual mode.
	r := dist.NewRNG(406)
	card := dist.Geometric(800, 20)
	inputs := dist.Values(r, card)
	runSortCase(t, inputs, 3, AlgoColumnsortVirtual, "virtual-many-groups")
}

func TestSelectRankOneAndN(t *testing.T) {
	// d=1 (max) and d=n (min) take different purge directions every phase.
	r := dist.NewRNG(407)
	inputs := dist.Values(r, dist.OneHeavy(512, 8, 0.7))
	for _, d := range []int{1, 512} {
		got, _, err := Select(inputs, selOpts(4, d))
		if err != nil {
			t.Fatal(err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Errorf("d=%d: got %d, want %d", d, got, want)
		}
	}
}

func TestSelectWithTraceEnabled(t *testing.T) {
	r := dist.NewRNG(408)
	inputs := dist.Values(r, dist.Even(256, 8))
	_, rep, err := Select(inputs, SelectOptions{K: 4, D: 128, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || len(rep.Trace.Cycles) == 0 {
		t.Fatal("expected a trace")
	}
	var msgs int64
	for _, c := range rep.Trace.Cycles {
		msgs += int64(len(c.Writes))
	}
	if msgs != rep.Stats.Messages {
		t.Errorf("trace messages %d != stats %d", msgs, rep.Stats.Messages)
	}
}

func TestSortNodeAutoOnSingleChannel(t *testing.T) {
	const p = 4
	r := dist.NewRNG(409)
	inputs := dist.Values(r, dist.NearlyEven(40, p))
	outputs := make([][]int64, p)
	if _, err := mcb.RunUniform(mcb.Config{P: p, K: 1}, func(pr mcb.Node) {
		outputs[pr.ID()] = SortNode(pr, inputs[pr.ID()], AlgoAuto)
	}); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, inputs, outputs, Descending, "node-auto-k1")
}

func TestMessageMagnitudeBounded(t *testing.T) {
	// The O(log beta) claim: no broadcast field exceeds a polynomial in the
	// input magnitude and network size. With values < 2^20, tiebreaks are
	// bounded by p<<31, counts by n.
	r := dist.NewRNG(410)
	inputs := dist.Values(r, dist.Even(512, 8))
	_, rep, err := Sort(inputs, opts(4, AlgoColumnsortGather))
	if err != nil {
		t.Fatal(err)
	}
	if lim := int64(8)<<31 | (1 << 21); rep.Stats.MaxAbs > lim {
		t.Errorf("MaxAbs %d exceeds the O(log beta) word bound %d", rep.Stats.MaxAbs, lim)
	}
}

// TestSortQuarterMillion exercises the engine and algorithm at a larger
// scale; skipped under -short.
func TestSortQuarterMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run")
	}
	const n, p, k = 262144, 16, 16
	r := dist.NewRNG(999)
	inputs := dist.Values(r, dist.Even(n, p))
	outputs, rep, err := Sort(inputs, SortOptions{K: k, StallTimeout: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check boundaries rather than the full O(n log n) reference sort.
	prev := int64(1 << 62)
	for i := range outputs {
		if outputs[i][0] > prev {
			t.Fatalf("boundary violation at processor %d", i)
		}
		for j := 1; j < len(outputs[i]); j++ {
			if outputs[i][j] > outputs[i][j-1] {
				t.Fatalf("intra-processor order violation at %d/%d", i, j)
			}
		}
		prev = outputs[i][len(outputs[i])-1]
	}
	if ratio := float64(rep.Stats.Cycles) / float64(n/k); ratio > 8 {
		t.Errorf("cycles/(n/k) = %.2f at large scale", ratio)
	}
}

func TestSortWithEmptyProcessors(t *testing.T) {
	// The paper's n_i > 0 assumption is w.l.o.g.; the implementation accepts
	// empty processors directly.
	inputs := [][]int64{{9, 3}, {}, {7, 1, 5}, {}, {2}}
	for _, algo := range sortAlgos {
		for k := 1; k <= 3; k++ {
			outputs, _, err := Sort(inputs, opts(k, algo))
			if err != nil {
				t.Fatalf("%v k=%d: %v", algo, k, err)
			}
			checkSorted(t, inputs, outputs, Descending, "empty/"+algo.String())
			if len(outputs[1]) != 0 || len(outputs[3]) != 0 {
				t.Fatalf("%v: empty processors received elements", algo)
			}
		}
	}
}

func TestSortAllButOneEmpty(t *testing.T) {
	inputs := [][]int64{{}, {}, {4, 1, 3, 2}, {}}
	for _, algo := range sortAlgos {
		outputs, _, err := Sort(inputs, opts(2, algo))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		checkSorted(t, inputs, outputs, Descending, "one-holder/"+algo.String())
	}
}

func TestSelectWithEmptyProcessors(t *testing.T) {
	inputs := [][]int64{{9, 3}, {}, {7, 1, 5}, {}}
	for d := 1; d <= 5; d++ {
		got, _, err := Select(inputs, selOpts(2, d))
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Errorf("d=%d: got %d, want %d", d, got, want)
		}
	}
}

func TestEmptySetRejected(t *testing.T) {
	if _, _, err := Sort([][]int64{{}, {}}, opts(1, AlgoAuto)); err == nil {
		t.Error("expected error for empty set (sort)")
	}
	if _, _, err := Select([][]int64{{}}, selOpts(1, 1)); err == nil {
		t.Error("expected error for empty set (select)")
	}
}

func TestSortEmptyProcsProperty(t *testing.T) {
	for seed := uint64(0); seed < 16; seed++ {
		r := dist.NewRNG(600 + seed)
		p := 3 + r.Intn(8)
		inputs := make([][]int64, p)
		n := 0
		for i := range inputs {
			ni := r.Intn(12) // zero allowed
			for j := 0; j < ni; j++ {
				inputs[i] = append(inputs[i], int64(r.Intn(50)))
			}
			n += ni
		}
		if n == 0 {
			inputs[0] = []int64{1}
		}
		algo := sortAlgos[int(seed)%len(sortAlgos)]
		outputs, _, err := Sort(inputs, opts(1+r.Intn(p), algo))
		if err != nil {
			t.Fatalf("seed %d %v: %v", seed, algo, err)
		}
		checkSorted(t, inputs, outputs, Descending, "empty-prop")
	}
}

func TestSortAdversarialAlternating(t *testing.T) {
	// Theorem 4's distribution: the heavy processor holds every other rank.
	card := dist.OneHeavy(200, 8, 0.4)
	inputs := dist.AdversarialAlternating(card, 0)
	for _, algo := range sortAlgos {
		rep := runSortCase(t, inputs, 4, algo, "thm4/"+algo.String())
		// Theorem 4: at least min(n_max, n-n_max) cycles regardless of k.
		if lb := int64(min(card.Max(), 200-card.Max())); rep.Stats.Cycles < lb {
			t.Errorf("%v: cycles %d below the Theorem 4 bound %d", algo, rep.Stats.Cycles, lb)
		}
	}
}
