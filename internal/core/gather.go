package core

import (
	"mcbnet/internal/matrix"
	"mcbnet/internal/mcb"
	"mcbnet/internal/schedule"
	"mcbnet/internal/seq"
)

// gatherSort is the Columnsort implementation of Sections 5.2 and 7.2: after
// group formation, all elements of each group are collected into the group's
// representative (phase 0), Columnsort's phases 1-9 run among the
// representatives (local sorts cost no cycles; transformation phases follow
// collision-free schedules), and phase 10 redistributes the sorted elements,
// broadcasting each element twice so that processors whose target ranks span
// two columns can read both. Dummy padding cells are never broadcast;
// receivers observe silence. Total cost: O(n) messages and O(n/k + n_max)
// cycles.
func gatherSort(pr mcb.Node, mine []elem, rec *phaser, rep *Report) []elem {
	id := pr.ID()
	ni := len(mine)

	rec.mark("phase0a:formation")
	g := formGroups(pr, ni, pr.K())
	G := len(g.groups)
	m := g.paddedColLen()
	sh := matrix.Shape{M: m, K: G}
	if rep != nil && id == 0 {
		rep.Columns, rep.ColumnLen = G, m
	}

	isRep := id == g.groups[g.myGroup].rep
	myCol := g.myGroup

	rec.mark("phase0b:collection")
	col := collectColumn(pr, mine, g, m, isRep, myCol)

	// Phases 1-9 among representatives.
	runColumnsortPhases(pr, sh, isRep, myCol, col, rec)

	// Phase 10: redistribution.
	rec.mark("phase10:redistribution")
	return redistribute(pr, sh, g, isRep, myCol, col, ni)
}

// collectColumn is phase 0b: element collection into the representatives, m
// cycles. Group members broadcast their elements consecutively on the group
// channel, offset by their prefix within the group; the representative (the
// group's last member) listens and returns the gathered, dummy-padded
// column. Non-representatives return nil.
func collectColumn(pr mcb.Node, mine []elem, g *groupInfo, m int, isRep bool, myCol int) []cell {
	ni := len(mine)
	var col []cell
	if isRep {
		col = make([]cell, m)
		for i := range col {
			col[i].dummy = true
		}
		for j, e := range mine {
			col[g.myOffset+j] = cell{e: e}
		}
		pr.AccountAux(int64(2 * m)) // the gathered column (the paper's O(n/k) extra memory)
	}
	for c := 0; c < m; c++ {
		switch {
		case !isRep && c >= g.myOffset && c < g.myOffset+ni:
			pr.Write(myCol, mine[c-g.myOffset].msg(tagCollect))
		case isRep && c < g.myOffset:
			msg, ok := pr.Read(myCol)
			if !ok {
				pr.Abortf("core: missing collection element %d", c)
			}
			col[c] = cell{e: elemFromMsg(msg)}
		default:
			pr.Idle()
		}
	}
	return col
}

// runColumnsortPhases executes the 9-phase pipeline with columns held at
// representatives. Non-representatives idle through the transformation
// cycles (they recompute the same schedules from the shared shape).
func runColumnsortPhases(pr mcb.Node, sh matrix.Shape, isRep bool, myCol int, col []cell, rec *phaser) {
	if sh.K == 1 {
		if isRep {
			sortCells(col)
		}
		rec.mark("phases1-9:single-column-sort")
		return
	}
	for _, ph := range matrix.Phases() {
		switch ph.Kind {
		case matrix.PhaseSort:
			if isRep && !(ph.SkipCol0 && myCol == 0) {
				sortCells(col)
			}
			// Local sorting costs no cycles.
		case matrix.PhaseTransform:
			kind, ok := schedule.KindOf(ph.Name)
			if !ok {
				pr.Abortf("core: unknown transform %q", ph.Name)
			}
			sched := scheduleFor(sh, kind)
			rec.mark("phase" + itoa(ph.Num) + ":" + ph.Name)
			runTransform(pr, sh, ph.Transform, sched, isRep, myCol, col)
		}
	}
}

// runTransform plays one transformation schedule. Representatives move their
// intra-column cells locally for free, broadcast scheduled cells (staying
// silent for dummies), and read incoming cells (silence = dummy). col is
// updated in place at representatives.
func runTransform(pr mcb.Node, sh matrix.Shape, f matrix.Transform, sched *schedule.Schedule, isRep bool, myCol int, col []cell) {
	var next []cell
	if isRep {
		next = make([]cell, len(col))
		for r := 0; r < sh.M; r++ {
			src := sh.Pos(myCol, r)
			dst := f(sh, src)
			if sh.Col(dst) == myCol {
				next[sh.Row(dst)] = col[r]
			}
		}
	}
	for _, assigns := range sched.Cycles {
		if !isRep {
			pr.Idle()
			continue
		}
		var send, recv *schedule.Assign
		for i := range assigns {
			a := &assigns[i]
			if sh.Col(a.Src) == myCol {
				send = a
			}
			if sh.Col(a.Dst) == myCol {
				recv = a
			}
		}
		sending := send != nil && !col[sh.Row(send.Src)].dummy
		switch {
		case sending && recv != nil:
			msg, ok := pr.WriteRead(send.Ch, col[sh.Row(send.Src)].e.msg(tagElem), recv.Ch)
			storeCell(next, sh.Row(recv.Dst), msg, ok)
		case sending:
			pr.Write(send.Ch, col[sh.Row(send.Src)].e.msg(tagElem))
		case recv != nil:
			msg, ok := pr.Read(recv.Ch)
			storeCell(next, sh.Row(recv.Dst), msg, ok)
		default:
			pr.Idle()
		}
	}
	if isRep {
		copy(col, next)
	}
}

func storeCell(next []cell, row int, msg mcb.Message, ok bool) {
	if ok {
		next[row] = cell{e: elemFromMsg(msg)}
	} else {
		next[row] = cell{dummy: true}
	}
}

// redistribute is phase 10: after phase 9, the element of descending rank
// r (0-based) sits at column r/m, row r%m, with all dummies past rank n-1.
// Representatives broadcast their columns twice (cycles r and m+r); each
// processor's target ranks span at most two consecutive columns, read one
// per pass. Representatives take their own column's ranks locally.
func redistribute(pr mcb.Node, sh matrix.Shape, g *groupInfo, isRep bool, myCol int, col []cell, ni int) []elem {
	m := sh.M
	lo, hi := g.rankRange(ni)
	c1, c2 := lo/m, (hi-1)/m
	out := make([]elem, ni)
	passes := 2
	if sh.K == 1 {
		passes = 1
	}
	for pass := 0; pass < passes; pass++ {
		// Column read (if any) this pass: c1 on pass 0, c2 on pass 1.
		readCol := -1
		if pass == 0 && (!isRep || c1 != myCol) {
			readCol = c1
		} else if pass == 1 && c2 != c1 && (!isRep || c2 != myCol) {
			readCol = c2
		}
		for r := 0; r < m; r++ {
			rank := readCol*m + r
			wantRead := readCol >= 0 && rank >= lo && rank < hi
			sendReal := isRep && !col[r].dummy
			switch {
			case sendReal && wantRead:
				msg, ok := pr.WriteRead(myCol, col[r].e.msg(tagElem), readCol)
				if !ok {
					pr.Abortf("core: missing redistribution rank %d", rank)
				}
				out[rank-lo] = elemFromMsg(msg)
			case sendReal:
				pr.Write(myCol, col[r].e.msg(tagElem))
			case wantRead:
				msg, ok := pr.Read(readCol)
				if !ok {
					pr.Abortf("core: missing redistribution rank %d", rank)
				}
				out[rank-lo] = elemFromMsg(msg)
			default:
				pr.Idle()
			}
		}
	}
	if isRep {
		// Take my own column's portion locally.
		for r := 0; r < m; r++ {
			rank := myCol*m + r
			if rank >= lo && rank < hi {
				if col[r].dummy {
					pr.Abortf("core: dummy at owned rank %d", rank)
				}
				out[rank-lo] = col[r].e
			}
		}
		pr.AccountAux(int64(-2 * len(col)))
	}
	return out
}

// sortCells sorts a column descending with dummies last.
func sortCells(col []cell) {
	seq.Sort(col, greaterCell)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
