package core

import (
	"fmt"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/mcb"
)

// This file is the shared infrastructure of the checkpointed (segmented)
// execution paths: element-state conversion to and from checkpoint snapshots,
// multiset verification of a snapshot against the run's inputs, and the
// channel bookkeeping of the k' < k degradation retry. The drivers live in
// sortseg.go and selectseg.go.

// elemKey is the network-unique identity of an element: the (V, T) pair of
// the paper's lexicographic-triple device (T is unique network-wide).
type elemKey struct{ v, t int64 }

// inputElems builds the internal-space element lists exactly as the
// processor programs do (negated under Ascending order), so host-side
// multiset verification compares like with like.
func inputElems(inputs [][]int64, negate bool) [][]elem {
	out := make([][]elem, len(inputs))
	for i, in := range inputs {
		vals := in
		if negate {
			vals = make([]int64, len(in))
			for j, v := range in {
				vals[j] = -v
			}
		}
		out[i] = makeElems(i, vals)
	}
	return out
}

// elemCounts builds the (V, T) multiset of a distributed element state.
func elemCounts(state [][]elem) map[elemKey]int {
	m := make(map[elemKey]int)
	for _, l := range state {
		for _, e := range l {
			m[elemKey{e.V, e.T}]++
		}
	}
	return m
}

// snapshotElemCounts builds the (V, T) multiset of a snapshot's non-dummy
// elements, and returns the non-dummy element count.
func snapshotElemCounts(s *checkpoint.Snapshot) (map[elemKey]int, int) {
	m := make(map[elemKey]int)
	n := 0
	for _, l := range s.State {
		for _, e := range l {
			if e.Dummy {
				continue
			}
			m[elemKey{e.V, e.T}]++
			n++
		}
	}
	return m, n
}

// verifySnapshotMultiset checks a snapshot's non-dummy elements against the
// input multiset before the snapshot is accepted. A sort boundary must
// conserve the multiset exactly; a selection boundary holds a subset (purged
// candidates are gone for good). Either way no element may appear that the
// input never contained — that is the corruption signal.
func verifySnapshotMultiset(s *checkpoint.Snapshot, want map[elemKey]int, exact bool) error {
	got, n := snapshotElemCounts(s)
	for k, c := range got {
		if c > want[k] {
			return fmt.Errorf("element (%d,%d) appears %d times, input has %d", k.v, k.t, c, want[k])
		}
	}
	if exact {
		total := 0
		for _, c := range want {
			total += c
		}
		if n != total {
			return fmt.Errorf("snapshot holds %d elements, input has %d", n, total)
		}
	}
	return nil
}

// elemsToCkpt converts an element list to snapshot form (no dummies).
func elemsToCkpt(l []elem) []checkpoint.Elem {
	out := make([]checkpoint.Elem, len(l))
	for i, e := range l {
		out[i] = checkpoint.Elem{V: e.V, T: e.T, P: e.P}
	}
	return out
}

// ckptToElems converts snapshot elements back, rejecting dummies (element
// lists never contain padding).
func ckptToElems(l []checkpoint.Elem) ([]elem, error) {
	out := make([]elem, len(l))
	for i, e := range l {
		if e.Dummy {
			return nil, fmt.Errorf("unexpected dummy cell at index %d", i)
		}
		out[i] = elem{V: e.V, T: e.T, P: e.P}
	}
	return out, nil
}

// cellsToCkpt converts a gathered column (including its padding dummies,
// whose positions are part of the mid-Columnsort state) to snapshot form.
func cellsToCkpt(l []cell) []checkpoint.Elem {
	out := make([]checkpoint.Elem, len(l))
	for i, c := range l {
		if c.dummy {
			out[i] = checkpoint.Elem{Dummy: true}
		} else {
			out[i] = checkpoint.Elem{V: c.e.V, T: c.e.T, P: c.e.P}
		}
	}
	return out
}

// ckptToCells converts snapshot elements back into column cells.
func ckptToCells(l []checkpoint.Elem) []cell {
	out := make([]cell, len(l))
	for i, e := range l {
		if e.Dummy {
			out[i] = cell{dummy: true}
		} else {
			out[i] = cell{e: elem{V: e.V, T: e.T, P: e.P}}
		}
	}
	return out
}

// cardsOf returns the per-processor cardinalities of the inputs.
func cardsOf(inputs [][]int64) []int {
	cards := make([]int, len(inputs))
	for i := range inputs {
		cards[i] = len(inputs[i])
	}
	return cards
}

func equalCards(a []int, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chanState is the channel bookkeeping of the k' < k degradation retry. The
// run always executes on a dense channel index space [0, k'); survivors maps
// those back to the caller's original channel indices, and the fault plan is
// kept remapped accordingly.
type chanState struct {
	origK     int
	survivors []int // survivors[cur] = original index of current channel cur
	deadOrig  []int // dropped channels, original indices, ascending
	basePlan  *mcb.FaultPlan
	curPlan   *mcb.FaultPlan // basePlan with dead outages removed, survivors renumbered
}

func newChanState(k int, plan *mcb.FaultPlan) *chanState {
	cs := &chanState{origK: k, basePlan: plan, curPlan: plan}
	cs.survivors = make([]int, k)
	for i := range cs.survivors {
		cs.survivors[i] = i
	}
	return cs
}

func (cs *chanState) k() int { return len(cs.survivors) }

// degrade drops the given current-space channels: it records their original
// indices as dead, renumbers the survivors, and remaps the fault plan into
// the new dense space. Returns false when fewer than one channel would
// survive (degradation impossible).
func (cs *chanState) degrade(curDead []int) bool {
	if len(curDead) == 0 || cs.k()-len(curDead) < 1 {
		return false
	}
	deadSet := make(map[int]bool, len(curDead))
	for _, ch := range curDead {
		deadSet[ch] = true
		cs.deadOrig = append(cs.deadOrig, cs.survivors[ch])
	}
	sortInts(cs.deadOrig)
	var kept []int
	oldToNew := make([]int, cs.k())
	for cur, orig := range cs.survivors {
		if deadSet[cur] {
			oldToNew[cur] = -1
			continue
		}
		oldToNew[cur] = len(kept)
		kept = append(kept, orig)
	}
	cs.survivors = kept
	// Remap the plan: dead channels' outages vanish with the channels, the
	// survivors' windows follow their new indices.
	plan := cs.curPlan.WithoutOutages(curDead)
	if plan != nil {
		for i := range plan.Outages {
			plan.Outages[i].Ch = oldToNew[plan.Outages[i].Ch]
		}
	}
	cs.curPlan = plan
	return true
}

// restoreDead replays a recorded degradation (cross-process resume: the
// snapshot carries the dead original channel indices). Returns false if the
// list is not a valid strict subset of the original channels.
func (cs *chanState) restoreDead(deadOrig []int64) bool {
	if len(deadOrig) == 0 {
		return true
	}
	cur := make([]int, 0, len(deadOrig))
	for _, o := range deadOrig {
		found := -1
		for c, orig := range cs.survivors {
			if int64(orig) == o {
				found = c
				break
			}
		}
		if found < 0 {
			return false
		}
		cur = append(cur, found)
	}
	return cs.degrade(cur)
}

// deadAux renders the dead-channel list for Snapshot.Aux.
func (cs *chanState) deadAux() []int64 {
	if len(cs.deadOrig) == 0 {
		return nil
	}
	out := make([]int64, len(cs.deadOrig))
	for i, ch := range cs.deadOrig {
		out[i] = int64(ch)
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// outageSuspects inspects a failed segment and returns the current-space
// channels the failure is attributable to (nil when degradation does not
// apply). plan must be the exact plan the failed run executed under, so the
// window coordinates match the run's cycle numbering.
func outageSuspects(pol mcb.RetryPolicy, plan *mcb.FaultPlan, res *mcb.Result) []int {
	if !pol.DegradeOnOutage || res == nil {
		return nil
	}
	return mcb.OutageSuspects(plan, &res.Stats.Faults, res.Stats.Cycles)
}

// segmentBudget converts a whole-run MaxCycles budget into the budget of the
// next segment, given the accepted cycles so far. An exhausted budget leaves
// 1 cycle so the engine raises its usual typed BudgetError.
func segmentBudget(maxCycles, done int64) int64 {
	if maxCycles <= 0 {
		return 0
	}
	if rem := maxCycles - done; rem > 0 {
		return rem
	}
	return 1
}
