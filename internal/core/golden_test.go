package core

import (
	"testing"

	"mcbnet/internal/dist"
)

// Golden regression tests: the engine is fully deterministic, so canonical
// configurations have exact cycle/message counts. A change here means the
// protocol itself changed — intentional protocol edits must update these
// numbers consciously (they are the measurements EXPERIMENTS.md reports).
func TestGoldenCosts(t *testing.T) {
	cases := []struct {
		name         string
		run          func() (cycles, msgs int64)
		cycles, msgs int64
	}{
		{
			name: "sort-even-n4096-p16-k8",
			run: func() (int64, int64) {
				inputs := dist.Values(dist.NewRNG(4096), dist.Even(4096, 16))
				rep := mustReport(t, inputs, 8, AlgoColumnsortGather)
				return rep.Stats.Cycles, rep.Stats.Messages
			},
			cycles: 3096, msgs: 21568,
		},
		{
			name: "sort-ranksort-n512-p8-k1",
			run: func() (int64, int64) {
				inputs := dist.Values(dist.NewRNG(512), dist.Even(512, 8))
				rep := mustReport(t, inputs, 1, AlgoRankSort)
				return rep.Stats.Cycles, rep.Stats.Messages
			},
			cycles: 1047, msgs: 972,
		},
		{
			name: "sort-mergesort-n512-p8-k1",
			run: func() (int64, int64) {
				inputs := dist.Values(dist.NewRNG(512), dist.Even(512, 8))
				rep := mustReport(t, inputs, 1, AlgoMergeSort)
				return rep.Stats.Cycles, rep.Stats.Messages
			},
			cycles: 2079, msgs: 1710,
		},
		{
			name: "select-n4096-p16-k4-median",
			run: func() (int64, int64) {
				inputs := dist.Values(dist.NewRNG(4096), dist.Even(4096, 16))
				_, rep, err := Select(inputs, selOpts(4, 2048))
				if err != nil {
					t.Fatal(err)
				}
				return rep.Stats.Cycles, rep.Stats.Messages
			},
			cycles: 945, msgs: 2106,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cycles, msgs := c.run()
			if cycles != c.cycles || msgs != c.msgs {
				t.Errorf("got (cycles=%d, msgs=%d), golden (cycles=%d, msgs=%d) — protocol changed?",
					cycles, msgs, c.cycles, c.msgs)
			}
		})
	}
}

func mustReport(t *testing.T, inputs [][]int64, k int, algo Algorithm) *Report {
	t.Helper()
	_, rep, err := Sort(inputs, opts(k, algo))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// FuzzSortSmall decodes arbitrary bytes into a small distributed instance
// and checks the sorting contract end to end.
func FuzzSortSmall(f *testing.F) {
	f.Add([]byte{3, 2, 1, 9, 8, 7, 6, 5}, uint8(2), uint8(0))
	f.Add([]byte{255, 0, 255, 0}, uint8(1), uint8(2))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, algoRaw uint8) {
		if len(data) < 2 || len(data) > 64 {
			t.Skip()
		}
		// First byte picks p; remaining bytes are dealt round-robin.
		p := int(data[0])%6 + 1
		vals := data[1:]
		if len(vals) < p {
			t.Skip()
		}
		inputs := make([][]int64, p)
		for i, b := range vals {
			inputs[i%p] = append(inputs[i%p], int64(b)-128)
		}
		k := int(kRaw)%p + 1
		algo := sortAlgos[int(algoRaw)%len(sortAlgos)]
		outputs, _, err := Sort(inputs, opts(k, algo))
		if err != nil {
			t.Fatalf("%v (p=%d k=%d): %v", algo, p, k, err)
		}
		checkSorted(t, inputs, outputs, Descending, "fuzz")
	})
}

// FuzzSelectSmall mirrors FuzzSortSmall for selection.
func FuzzSelectSmall(f *testing.F) {
	f.Add([]byte{3, 2, 1, 9, 8, 7, 6, 5}, uint8(2), uint8(3))
	f.Add([]byte{0, 0, 0, 0}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, dRaw uint8) {
		if len(data) < 2 || len(data) > 64 {
			t.Skip()
		}
		p := int(data[0])%6 + 1
		vals := data[1:]
		if len(vals) < p {
			t.Skip()
		}
		inputs := make([][]int64, p)
		n := 0
		for i, b := range vals {
			inputs[i%p] = append(inputs[i%p], int64(b))
			n++
		}
		d := int(dRaw)%n + 1
		got, _, err := Select(inputs, selOpts(int(kRaw)%p+1, d))
		if err != nil {
			t.Fatal(err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Fatalf("d=%d: got %d, want %d", d, got, want)
		}
	})
}
