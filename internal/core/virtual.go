package core

import (
	"mcbnet/internal/matrix"
	"mcbnet/internal/mcb"
	"mcbnet/internal/schedule"
	"mcbnet/internal/seq"
)

// virtualSort is the memory-efficient Columnsort of Section 6.1: each group
// of processors acts as a single virtual processor holding one virtual
// column, so phases 0 and 10 (gather/scatter into representatives) are not
// needed and no processor ever stores more than its own share of the column.
//
// Column positions are assigned to group members contiguously (member with
// within-group offset o owns positions [o, o+n_i)); the padding tail is
// owned by the representative. Sorting phases run Rank-Sort inside every
// group in parallel (one channel per group), which leaves each column in
// canonical order: the element of column rank r sits at position r, dummies
// at the tail. Transformation phases use matching schedules (each column
// sends exactly one element and receives exactly one per cycle), and the
// member that broadcasts stores the element received in the same cycle over
// the slot it just vacated — the paper's O(1)-auxiliary-memory device. The
// resulting intra-column disorder is repaired by the next sorting phase; the
// one exception, column 1 after Up-Shift (phase 7 skips it), is handled by
// shifting back exactly the slots that received the wrapped elements.
func virtualSort(pr mcb.Node, mine []elem, rec *phaser, rep *Report) []elem {
	id := pr.ID()
	ni := len(mine)

	rec.mark("formation")
	g := formGroups(pr, ni, pr.K())
	G := len(g.groups)
	m := g.paddedColLen()
	sh := matrix.Shape{M: m, K: G}
	if rep != nil && id == 0 {
		rep.Columns, rep.ColumnLen = G, m
	}

	vc := newVirtualColumn(pr, g, m, mine)

	if G == 1 {
		// Single column: one group-wide Rank-Sort is the whole sort, and
		// positions already equal global ranks.
		rec.mark("single-column-ranksort")
		vc.rankSort(pr, false)
		return vc.ownedReal(pr)
	}

	for _, ph := range matrix.Phases() {
		switch ph.Kind {
		case matrix.PhaseSort:
			skip := ph.SkipCol0 && vc.col == 0
			rec.mark("phase" + itoa(ph.Num) + ":ranksort")
			vc.rankSort(pr, skip)
		case matrix.PhaseTransform:
			kind, ok := schedule.KindOf(ph.Name)
			if !ok {
				pr.Abortf("core: unknown transform %q", ph.Name)
			}
			sched := scheduleFor(sh, kind)
			// Phase 8 remap: column 0 skipped phase 7, so its wrapped
			// elements still sit in the slots that sent during phase 6
			// (rows [m/2, m)); it must send those back instead of the
			// canonical down-shift rows [0, m/2).
			remap := ph.Num == 8
			rec.mark("phase" + itoa(ph.Num) + ":" + ph.Name)
			vc.runTransform(pr, sh, sched, remap)
		}
	}

	rec.mark("phase10:redistribution")
	return vc.redistribute(pr, sh, g, ni)
}

// virtualColumn is one processor's share of its group's column.
type virtualColumn struct {
	col     int // column (= group) index, also the group's channel
	m       int // column length
	grpSize int // number of real elements initially in the group

	// Owned positions: [lo, hi) plus, at the representative, the padding
	// tail [tailLo, m).
	lo, hi int
	tailLo int // m if no tail owned
	cells  []cell
}

func newVirtualColumn(pr mcb.Node, g *groupInfo, m int, mine []elem) *virtualColumn {
	meta := g.groups[g.myGroup]
	vc := &virtualColumn{
		col:     g.myGroup,
		m:       m,
		grpSize: meta.size,
		lo:      g.myOffset,
		hi:      g.myOffset + len(mine),
		tailLo:  m,
	}
	owned := len(mine)
	if pr.ID() == meta.rep {
		vc.tailLo = meta.size
		owned += m - meta.size
	}
	vc.cells = make([]cell, owned)
	for j, e := range mine {
		vc.cells[j] = cell{e: e}
	}
	for j := len(mine); j < owned; j++ {
		vc.cells[j] = cell{dummy: true}
	}
	pr.AccountAux(int64(2 * owned))
	return vc
}

// owns reports whether this processor owns column position pos, and returns
// the local cell index.
func (vc *virtualColumn) owns(pos int) (int, bool) {
	switch {
	case pos >= vc.lo && pos < vc.hi:
		return pos - vc.lo, true
	case pos >= vc.tailLo && pos < vc.m:
		return (vc.hi - vc.lo) + (pos - vc.tailLo), true
	default:
		return 0, false
	}
}

// ownedCount returns the number of positions owned.
func (vc *virtualColumn) ownedCount() int { return len(vc.cells) }

// rankSort sorts this group's column in place (descending, dummies last)
// using the group's channel: phase A broadcasts every cell in position order
// (silence for dummies) while members rank their own cells; phase B
// broadcasts in rank order into canonical positions. 2m cycles for every
// group in parallel; when skip is set the group idles the same 2m cycles to
// stay in lock-step (the paper's phase 7 for column 1).
func (vc *virtualColumn) rankSort(pr mcb.Node, skip bool) {
	m, ch := vc.m, vc.col
	if skip {
		pr.IdleN(2 * m)
		return
	}
	// Local cells sorted descending (dummies last) so rank updates are a
	// binary search; remember nothing else — contents are replaced in phase B.
	own := append([]cell(nil), vc.cells...)
	seq.Sort(own, greaterCell)
	nReal := 0
	for _, c := range own {
		if !c.dummy {
			nReal++
		}
	}
	diff := make([]int, nReal+1)
	pr.AccountAux(int64(2*len(own) + 1))

	realCount := 0 // real cells in the whole column, counted from broadcasts
	for pos := 0; pos < m; pos++ {
		var msg mcb.Message
		var ok bool
		if li, mineP := vc.owns(pos); mineP {
			c := vc.cells[li]
			if c.dummy {
				_, _ = pr.Read(ch) // silent slot; observe own silence
				continue
			}
			msg, ok = pr.WriteRead(ch, c.e.msg(tagRank), ch)
		} else {
			msg, ok = pr.Read(ch)
		}
		if !ok {
			continue // dummy slot elsewhere
		}
		realCount++
		e := elemFromMsg(msg)
		idx := lowerBoundSmallerCells(own[:nReal], e)
		diff[idx]++
	}
	ranks := make([]int, nReal)
	acc := 0
	for i := 0; i < nReal; i++ {
		acc += diff[i]
		ranks[i] = acc
	}

	// Phase B: rank r goes to position r; positions >= realCount are dummy.
	send := 0
	for pos := 0; pos < m; pos++ {
		li, mineP := vc.owns(pos)
		holder := send < nReal && ranks[send] == pos
		switch {
		case pos >= realCount:
			if mineP {
				vc.cells[li] = cell{dummy: true}
			}
			pr.Idle()
		case holder && mineP:
			vc.cells[li] = own[send]
			send++
			pr.Idle()
		case holder:
			pr.Write(ch, own[send].e.msg(tagRank))
			send++
		case mineP:
			msg, ok := pr.Read(ch)
			if !ok {
				pr.Abortf("core: virtual rank-sort missing rank %d", pos)
			}
			vc.cells[li] = cell{e: elemFromMsg(msg)}
		default:
			pr.Idle()
		}
	}
	pr.AccountAux(int64(-(2*len(own) + 1)))
}

// lowerBoundSmallerCells returns the smallest index i with e > own[i].e in a
// descending real-cell prefix.
func lowerBoundSmallerCells(own []cell, e elem) int {
	lo, hi := 0, len(own)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.greater(own[mid].e) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// runTransform plays a matching schedule: per cycle, if this column sends,
// the member owning the (possibly remapped) source slot broadcasts its
// content (silence for a dummy) and stores the element received in the same
// cycle over that slot. remap shifts column 0's source rows by m/2 (phase 8
// after the unsorted phase 7).
func (vc *virtualColumn) runTransform(pr mcb.Node, sh matrix.Shape, sched *schedule.Schedule, remap bool) {
	for _, assigns := range sched.Cycles {
		var send, recv *schedule.Assign
		for i := range assigns {
			a := &assigns[i]
			if sh.Col(a.Src) == vc.col {
				send = a
			}
			if sh.Col(a.Dst) == vc.col {
				recv = a
			}
		}
		if send == nil {
			// Matching property: no send means no receive either.
			pr.Idle()
			continue
		}
		if recv == nil {
			pr.Abortf("core: virtual transform: send without receive")
		}
		srcRow := sh.Row(send.Src)
		if remap && vc.col == 0 {
			// Phase 6 vacated (and refilled with wraps) rows [m-floor(m/2), m);
			// map the canonical down-shift rows [0, floor(m/2)) onto them.
			srcRow = (srcRow + sh.M - sh.M/2) % sh.M
		}
		li, mineP := vc.owns(srcRow)
		if !mineP {
			pr.Idle()
			continue
		}
		c := vc.cells[li]
		if c.dummy {
			msg, ok := pr.Read(recv.Ch)
			storeCell(vc.cells, li, msg, ok)
		} else {
			msg, ok := pr.WriteRead(send.Ch, c.e.msg(tagElem), recv.Ch)
			storeCell(vc.cells, li, msg, ok)
		}
	}
}

// redistribute delivers each processor its target rank segment. After phase
// 9 every column is canonical, so the element of global rank r sits at
// position r%m of column r/m; position owners broadcast their column twice
// (two passes) and receivers read the one or two columns their segment
// spans, taking locally owned ranks for free.
func (vc *virtualColumn) redistribute(pr mcb.Node, sh matrix.Shape, g *groupInfo, ni int) []elem {
	m := sh.M
	lo, hi := g.rankRange(ni)
	c1, c2 := lo/m, (hi-1)/m
	out := make([]elem, ni)
	for pass := 0; pass < 2; pass++ {
		readCol := -1
		if pass == 0 {
			readCol = c1
		} else if c2 != c1 {
			readCol = c2
		}
		for r := 0; r < m; r++ {
			li, mineP := vc.owns(r)
			sendReal := mineP && !vc.cells[li].dummy
			rank := readCol*m + r
			wantRank := readCol >= 0 && rank >= lo && rank < hi
			// A wanted rank in my own column at a position I own myself is
			// taken locally (reading my own channel while writing it would
			// be the same element anyway).
			if wantRank && readCol == vc.col && mineP {
				if !sendReal {
					pr.Abortf("core: dummy at owned rank %d", rank)
				}
				out[rank-lo] = vc.cells[li].e
				pr.Write(vc.col, vc.cells[li].e.msg(tagElem))
				continue
			}
			switch {
			case sendReal && wantRank:
				msg, ok := pr.WriteRead(vc.col, vc.cells[li].e.msg(tagElem), readCol)
				if !ok {
					pr.Abortf("core: virtual redistribution missing rank %d", rank)
				}
				out[rank-lo] = elemFromMsg(msg)
			case sendReal:
				pr.Write(vc.col, vc.cells[li].e.msg(tagElem))
			case wantRank:
				msg, ok := pr.Read(readCol)
				if !ok {
					pr.Abortf("core: virtual redistribution missing rank %d", rank)
				}
				out[rank-lo] = elemFromMsg(msg)
			default:
				pr.Idle()
			}
		}
	}
	return out
}

// ownedReal returns the real cells at owned positions in position order —
// the output segment when positions coincide with global ranks (G == 1).
func (vc *virtualColumn) ownedReal(pr mcb.Node) []elem {
	out := make([]elem, 0, vc.hi-vc.lo)
	for pos := vc.lo; pos < vc.hi; pos++ {
		li, _ := vc.owns(pos)
		if vc.cells[li].dummy {
			pr.Abortf("core: dummy at owned rank position %d", pos)
		}
		out = append(out, vc.cells[li].e)
	}
	return out
}
