package core

import (
	"errors"
	"testing"

	"mcbnet/internal/mcb"
)

func TestVerifySortAccepts(t *testing.T) {
	in := [][]int64{{3, 1}, {4, 1, 5}, {2}}
	out := [][]int64{{5, 4}, {3, 2, 1}, {1}}
	if err := VerifySort(in, out, Descending); err != nil {
		t.Fatal(err)
	}
	inA := [][]int64{{3, 1}, {2}}
	outA := [][]int64{{1, 2}, {3}}
	if err := VerifySort(inA, outA, Ascending); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySortRejects(t *testing.T) {
	in := [][]int64{{3, 1}, {4, 1, 5}, {2}}
	cases := []struct {
		name string
		out  [][]int64
	}{
		{"unsorted", [][]int64{{4, 5}, {3, 2, 1}, {1}}},
		{"cardinality", [][]int64{{5, 4, 3}, {2, 1}, {1}}},
		{"lost element", [][]int64{{5, 4}, {3, 2, 2}, {1}}},
		{"foreign element", [][]int64{{7, 5}, {4, 3, 2}, {1}}},
		{"wrong processor count", [][]int64{{5, 4}, {3, 2, 1, 1}}},
	}
	for _, c := range cases {
		if err := VerifySort(in, c.out, Descending); err == nil {
			t.Errorf("%s: VerifySort accepted a wrong output %v", c.name, c.out)
		}
	}
}

func TestVerifySelect(t *testing.T) {
	in := [][]int64{{9, 5}, {7, 5, 1}}
	// Descending: 9 7 5 5 1.
	good := []struct {
		d   int
		val int64
	}{{1, 9}, {2, 7}, {3, 5}, {4, 5}, {5, 1}}
	for _, g := range good {
		if err := VerifySelect(in, g.d, g.val); err != nil {
			t.Errorf("rank %d value %d wrongly rejected: %v", g.d, g.val, err)
		}
	}
	bad := []struct {
		d   int
		val int64
	}{{1, 7}, {2, 5}, {5, 5}, {3, 4} /* absent value */, {2, 9}}
	for _, b := range bad {
		if err := VerifySelect(in, b.d, b.val); err == nil {
			t.Errorf("rank %d value %d wrongly accepted", b.d, b.val)
		}
	}
}

func TestCorruptionErrorTyped(t *testing.T) {
	err := corruptionError("sort", errors.New("order violated"))
	var ce *mcb.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T, want *mcb.CorruptionError", err)
	}
	if ce.Op != "sort" {
		t.Fatalf("Op = %q, want sort", ce.Op)
	}
	if !errors.Is(err, mcb.ErrAborted) {
		t.Fatal("CorruptionError must wrap ErrAborted")
	}
}
