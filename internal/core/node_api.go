package core

import (
	"mcbnet/internal/mcb"
	"mcbnet/internal/partial"
)

// This file exposes the algorithms as lock-step subroutines over any
// mcb.Node — a processor of a real engine run or of a simulated network
// (Section 2). All processors must call the same function in the same cycle
// with consistent arguments; the function returns when the collective
// computation completes at this processor.

// SortNode sorts the distributed set from inside a running network program:
// vals is this processor's list (n_i > 0), and the returned slice is this
// processor's segment of the descending order (cardinality preserved). The
// selection of AlgoAuto requires only globally known quantities.
func SortNode(pr mcb.Node, vals []int64, algo Algorithm) []int64 {
	mine := makeElems(pr.ID(), vals)
	var sorted []elem
	switch algo {
	case AlgoAuto:
		// k==1 favours Rank-Sort, otherwise gathered Columnsort; matching
		// the driver requires n, which is not yet known here, so the
		// node-level auto rule uses only k.
		if pr.K() == 1 {
			sorted = rankSortWhole(pr, mine, nil)
		} else {
			sorted = gatherSort(pr, mine, nil, nil)
		}
	case AlgoColumnsortGather:
		sorted = gatherSort(pr, mine, nil, nil)
	case AlgoColumnsortVirtual:
		sorted = virtualSort(pr, mine, nil, nil)
	case AlgoRankSort:
		sorted = rankSortWhole(pr, mine, nil)
	case AlgoMergeSort:
		sorted = mergeSortWhole(pr, mine, nil)
	case AlgoColumnsortRecursive:
		sorted = recursiveSort(pr, mine, nil, nil)
	default:
		pr.Abortf("core: unknown algorithm %v", algo)
	}
	out := make([]int64, len(sorted))
	for j, e := range sorted {
		out[j] = e.V
	}
	return out
}

// SelectNode returns the value of descending rank d from inside a running
// network program. threshold <= 0 selects the paper's m* = max(1, p/k).
func SelectNode(pr mcb.Node, vals []int64, d, threshold int) int64 {
	if threshold <= 0 {
		threshold = pr.P() / pr.K()
		if threshold < 1 {
			threshold = 1
		}
	}
	mine := makeElems(pr.ID(), vals)
	return selectFiltering(pr, mine, d, threshold, "").V
}

// MaxNode returns the maximum element of the distributed set: a single
// Partial-Sums total with the max operator — O(p/k + log k) cycles, O(p)
// messages.
func MaxNode(pr mcb.Node, vals []int64) int64 {
	local := vals[0]
	for _, v := range vals[1:] {
		if v > local {
			local = v
		}
	}
	return totalMax(pr, local)
}

// MinNode returns the minimum element of the distributed set.
func MinNode(pr mcb.Node, vals []int64) int64 {
	local := vals[0]
	for _, v := range vals[1:] {
		if v < local {
			local = v
		}
	}
	return -totalMax(pr, -local)
}

// RankOfNode returns the descending rank x would have in the distributed
// set: 1 + the number of elements strictly greater than x. One Partial-Sums
// total.
func RankOfNode(pr mcb.Node, vals []int64, x int64) int {
	greater := 0
	for _, v := range vals {
		if v > x {
			greater++
		}
	}
	return 1 + int(totalSum(pr, int64(greater)))
}

// totalMax and totalSum are tiny wrappers over Partial-Sums totals.
func totalMax(pr mcb.Node, v int64) int64 { return partial.Total(pr, v, partial.Max) }
func totalSum(pr mcb.Node, v int64) int64 { return partial.Total(pr, v, partial.Sum) }
