package core

import (
	"fmt"
	"math"
	"time"

	"mcbnet/internal/mcb"
)

// This file is the batched entry point of the service layer (internal/
// service): several small independent jobs — sort, top-k, median, rank-d,
// multiselect — coalesce into ONE engine run of a pooled MCB(p, k) network.
// The network is partitioned into disjoint subnets (a contiguous processor
// range plus a contiguous channel range per job, the §7.2 uneven-distribution
// machinery absorbing ragged value counts and empty processors), and every
// job's program runs concurrently behind a subnetNode view, so a batch of J
// jobs costs max-of-J cycle counts instead of sum-of-J and pays the per-run
// engine spin-up once. Answers are value-deterministic — a job's output is a
// pure function of its own multiset — so batched and individual runs return
// byte-identical results; the batcher property tests hold it to that.

// BatchOp names one service operation of a BatchJob.
type BatchOp int

const (
	// BatchSort sorts the job's values (Order selects the direction).
	BatchSort BatchOp = iota
	// BatchTopK returns the TopK largest values in descending order.
	BatchTopK
	// BatchMedian returns the paper's median: descending rank ceil(n/2).
	BatchMedian
	// BatchRank returns the value of descending rank D (1 = maximum).
	BatchRank
	// BatchMultiSelect returns the values of the descending ranks Ds, in
	// the order requested.
	BatchMultiSelect
)

func (op BatchOp) String() string {
	switch op {
	case BatchSort:
		return "sort"
	case BatchTopK:
		return "topk"
	case BatchMedian:
		return "median"
	case BatchRank:
		return "rank"
	case BatchMultiSelect:
		return "multiselect"
	}
	return fmt.Sprintf("BatchOp(%d)", int(op))
}

// BatchJob is one caller's request inside a batch.
type BatchJob struct {
	Op     BatchOp
	Values []int64
	// Order applies to BatchSort only (BatchTopK is always descending).
	Order Order
	// TopK is the result size of a BatchTopK job (1 <= TopK <= n).
	TopK int
	// D is the descending rank of a BatchRank job.
	D int
	// Ds are the descending ranks of a BatchMultiSelect job.
	Ds []int
	// MaxCycles is this job's cycle budget: the engine run serving the job
	// aborts with a *mcb.BudgetError beyond it. A coalesced run executes
	// under the loosest sibling budget; a job whose shared run overran its
	// own budget is then re-served by a dedicated run under the exact
	// budget (as is every job of a shared run that failed outright), so a
	// blown budget surfaces only on the job that owns it and never poisons
	// siblings. Zero means no limit.
	MaxCycles int64
}

// BatchResult is the outcome of one job.
type BatchResult struct {
	// Values is the job's answer: the sorted values (BatchSort), the top-k
	// values in descending order (BatchTopK), a single value (BatchMedian,
	// BatchRank) or one value per requested rank (BatchMultiSelect).
	Values []int64
	// Err is the job's typed failure (validation errors, or the engine's
	// error taxonomy surfaced from the individual re-run). Nil on success.
	Err error
	// Batched reports that the coalesced run served this job; false means
	// an individual run did (NoCoalesce, a singleton batch, or the
	// failure-isolation fallback).
	Batched bool
	// BatchSize is the number of jobs sharing the run that served this one.
	BatchSize int
	// Cycles and Messages are the engine cost of the run that served the
	// job (shared by all jobs of a coalesced run).
	Cycles   int64
	Messages int64
}

// BatchOptions describes the pooled network a batch runs on.
type BatchOptions struct {
	// P and K are the pooled network's geometry (1 <= K <= P). A coalesced
	// run serves at most K jobs (each needs a channel), so larger batches
	// are chunked.
	P, K int
	// Engine selects the execution engine (mcb.EngineAuto by default).
	Engine mcb.EngineMode
	// StallTimeout mirrors mcb.Config.StallTimeout.
	StallTimeout time.Duration
	// NoCoalesce forces one engine run per job — the unbatched mode the
	// service benchmark compares against.
	NoCoalesce bool
}

// batchGroup is one job's slice of a coalesced run: a contiguous processor
// range [pOff, pOff+pN) and channel range [cOff, cOff+cN) of the pooled
// network, plus the per-processor output capture.
type batchGroup struct {
	job  *BatchJob
	algo Algorithm // resolved sorting algorithm (sort/top-k jobs)
	d    int       // resolved descending rank (median/rank jobs)

	pOff, pN int
	cOff, cN int

	outs   [][]int64 // per-group-processor sorted segments (sort/top-k)
	single []int64   // rank answers, written by group processor 0

	// Run accounting, filled by runBatchGroups.
	runCycles   int64
	runMessages int64
	coalesced   bool
	batchSize   int
}

// RunBatch executes the jobs on an MCB(opts.P, opts.K) network. Unless
// opts.NoCoalesce is set, valid jobs coalesce into shared engine runs of up
// to opts.K jobs each; a typed engine failure of a shared run falls back to
// one individual run per job so the failure lands only on the job that owns
// it. The returned slice is aligned with jobs; it never carries fewer
// entries, and RunBatch itself errors only on an invalid network geometry.
func RunBatch(jobs []BatchJob, opts BatchOptions) ([]BatchResult, error) {
	if opts.P < 1 || opts.K < 1 || opts.K > opts.P {
		return nil, fmt.Errorf("core: batch network must satisfy 1 <= K <= P, got P=%d K=%d", opts.P, opts.K)
	}
	results := make([]BatchResult, len(jobs))
	var valid []int
	for i := range jobs {
		if err := validateBatchJob(&jobs[i]); err != nil {
			results[i].Err = err
			continue
		}
		valid = append(valid, i)
	}

	if opts.NoCoalesce {
		for _, i := range valid {
			runBatchSingle(&jobs[i], &results[i], opts)
		}
		return results, nil
	}
	maxPerRun := opts.K
	for len(valid) > 0 {
		chunk := valid
		if len(chunk) > maxPerRun {
			chunk = chunk[:maxPerRun]
		}
		valid = valid[len(chunk):]
		if len(chunk) == 1 {
			runBatchSingle(&jobs[chunk[0]], &results[chunk[0]], opts)
			continue
		}
		if err := runBatchCoalesced(jobs, chunk, results, opts); err != nil {
			// Failure isolation: re-run every job of the failed shared run
			// individually under its own budget. The offending job earns
			// its typed error; siblings complete.
			for _, i := range chunk {
				runBatchSingle(&jobs[i], &results[i], opts)
			}
		}
	}
	return results, nil
}

// validateBatchJob rejects malformed jobs before any engine run; median jobs
// get their rank resolved here (D := ceil(n/2)) so the program builder only
// sees concrete ranks.
func validateBatchJob(job *BatchJob) error {
	n := len(job.Values)
	if n == 0 {
		return fmt.Errorf("core: batch %s job with no values", job.Op)
	}
	if n >= 1<<31 {
		return fmt.Errorf("core: batch %s job holds too many elements", job.Op)
	}
	switch job.Op {
	case BatchSort:
		if job.Order == Ascending {
			for _, v := range job.Values {
				if v == math.MinInt64 {
					return fmt.Errorf("core: MinInt64 unsupported with Ascending order")
				}
			}
		}
	case BatchTopK:
		if job.TopK < 1 || job.TopK > n {
			return fmt.Errorf("core: top-k size %d out of range [1, %d]", job.TopK, n)
		}
	case BatchMedian:
	case BatchRank:
		if job.D < 1 || job.D > n {
			return fmt.Errorf("core: rank %d out of range [1, %d]", job.D, n)
		}
	case BatchMultiSelect:
		if len(job.Ds) == 0 {
			return fmt.Errorf("core: multiselect job with no ranks")
		}
		for _, d := range job.Ds {
			if d < 1 || d > n {
				return fmt.Errorf("core: rank %d out of range [1, %d]", d, n)
			}
		}
	default:
		return fmt.Errorf("core: unknown batch op %v", job.Op)
	}
	return nil
}

// resolveGroup fills the algorithm/rank resolution of a group from the
// globally known (n, k) of its subnet.
func (g *batchGroup) resolve() {
	n := len(g.job.Values)
	switch g.job.Op {
	case BatchSort, BatchTopK:
		// The driver's AlgoAuto rule over the subnet geometry: Rank-Sort
		// when only one channel or one usable column exists, gathered
		// Columnsort otherwise.
		if g.cN == 1 || maxUsableCols(n, g.cN) == 1 {
			g.algo = AlgoRankSort
		} else {
			g.algo = AlgoColumnsortGather
		}
	case BatchMedian:
		g.d = (n + 1) / 2
	case BatchRank:
		g.d = g.job.D
	}
}

// runBatchSingle serves one job with a dedicated engine run over the full
// pooled network under the job's own budget.
func runBatchSingle(job *BatchJob, res *BatchResult, opts BatchOptions) {
	g := &batchGroup{job: job, pOff: 0, pN: opts.P, cOff: 0, cN: opts.K}
	g.resolve()
	groups := []*batchGroup{g}
	err := runBatchGroups(groups, opts, job.MaxCycles, false)
	collectGroup(g, res, err)
}

// runBatchCoalesced serves the chunk's jobs concurrently in one engine run,
// each on its own subnet. The run's budget is the largest sibling budget
// (unlimited if any job is unlimited): jobs share cycles, so a tighter cap
// would let a cheap sibling's budget abort an expensive job — exact per-job
// budgets are enforced by the individual fallback.
func runBatchCoalesced(jobs []BatchJob, chunk []int, results []BatchResult, opts BatchOptions) error {
	groups := make([]*batchGroup, len(chunk))
	budget := int64(0)
	unlimited := false
	for gi, i := range chunk {
		groups[gi] = &batchGroup{job: &jobs[i]}
		if jobs[i].MaxCycles == 0 {
			unlimited = true
		} else if jobs[i].MaxCycles > budget {
			budget = jobs[i].MaxCycles
		}
	}
	if unlimited {
		budget = 0
	}
	// Partition processors and channels evenly; the first P%J (K%J) groups
	// take the extra. A group never gets more channels than processors.
	J := len(groups)
	pOff, cOff := 0, 0
	for gi, g := range groups {
		g.pN = opts.P / J
		if gi < opts.P%J {
			g.pN++
		}
		g.cN = opts.K / J
		if gi < opts.K%J {
			g.cN++
		}
		if g.cN > g.pN {
			g.cN = g.pN
		}
		g.pOff, g.cOff = pOff, cOff
		pOff += g.pN
		cOff += g.cN
		if g.pN < 1 {
			return fmt.Errorf("core: batch of %d jobs does not fit %d processors", J, opts.P)
		}
		g.resolve()
	}
	err := runBatchGroups(groups, opts, budget, true)
	for gi, i := range chunk {
		collectGroup(groups[gi], &results[i], err)
	}
	if err == nil {
		// Post-run budget enforcement: the shared run executed under the
		// loosest sibling budget, so a job whose own budget is smaller than
		// the cycles actually spent has not had its limit honored yet. Such
		// a job is re-served by a dedicated run under its exact budget — a
		// genuinely over-budget job earns its typed *mcb.BudgetError there
		// without touching the siblings' coalesced answers.
		for gi, i := range chunk {
			if jobs[i].MaxCycles > 0 && groups[gi].runCycles > jobs[i].MaxCycles {
				runBatchSingle(&jobs[i], &results[i], opts)
			}
		}
	}
	return err
}

// runBatchGroups builds the per-processor programs and executes one engine
// run; each group's output captures are filled in on success.
func runBatchGroups(groups []*batchGroup, opts BatchOptions, maxCycles int64, coalesced bool) error {
	progs := make([]func(mcb.Node), opts.P)
	for _, g := range groups {
		g.outs = make([][]int64, g.pN)
		switch g.job.Op {
		case BatchMedian, BatchRank:
			g.single = make([]int64, 1)
		case BatchMultiSelect:
			g.single = make([]int64, len(g.job.Ds))
		}
		for local := 0; local < g.pN; local++ {
			progs[g.pOff+local] = batchProgram(g, local)
		}
	}
	// Processors beyond the partition (only possible when a group was
	// clamped) idle one cycle and leave.
	for i := range progs {
		if progs[i] == nil {
			progs[i] = func(pr mcb.Node) { pr.Idle() }
		}
	}
	cfg := mcb.Config{
		P: opts.P, K: opts.K,
		Engine:       opts.Engine,
		MaxCycles:    maxCycles,
		StallTimeout: opts.StallTimeout,
	}
	res, err := mcb.Run(cfg, progs)
	for _, g := range groups {
		if res != nil {
			g.runCycles, g.runMessages = res.Stats.Cycles, res.Stats.Messages
		}
		g.coalesced = coalesced
		g.batchSize = len(groups)
	}
	return err
}

// batchProgram is the lock-step program of group-local processor `local`:
// it narrows the real node to the group's subnet view and runs the job's
// collective subroutine over this processor's share of the values.
func batchProgram(g *batchGroup, local int) func(mcb.Node) {
	return func(pr mcb.Node) {
		sub := &subnetNode{pr: pr, pOff: g.pOff, pN: g.pN, cOff: g.cOff, cN: g.cN}
		vals := batchShare(g.job.Values, g.pN, local)
		switch g.job.Op {
		case BatchSort, BatchTopK:
			negate := g.job.Op == BatchSort && g.job.Order == Ascending
			in := vals
			if negate {
				in = make([]int64, len(vals))
				for j, v := range vals {
					in[j] = -v
				}
			}
			mine := makeElems(local, in)
			var sorted []elem
			if g.algo == AlgoRankSort {
				sorted = rankSortWhole(sub, mine, nil)
			} else {
				sorted = gatherSort(sub, mine, nil, nil)
			}
			out := make([]int64, len(sorted))
			for j, e := range sorted {
				if negate {
					out[j] = -e.V
				} else {
					out[j] = e.V
				}
			}
			g.outs[local] = out
		case BatchMedian, BatchRank:
			v := selectFiltering(sub, makeElems(local, vals), g.d, subnetThreshold(g), "").V
			if local == 0 {
				g.single[0] = v
			}
		case BatchMultiSelect:
			mine := makeElems(local, vals)
			for qi, d := range g.job.Ds {
				v := selectFiltering(sub, mine, d, subnetThreshold(g), "").V
				if local == 0 {
					g.single[qi] = v
				}
			}
		}
	}
}

// subnetThreshold is the paper's m* = max(1, p/k) over the subnet geometry.
func subnetThreshold(g *batchGroup) int {
	t := g.pN / g.cN
	if t < 1 {
		t = 1
	}
	return t
}

// batchShare returns group-local processor `local`'s slice of the job's
// values: an even split, the first n%pN processors holding one extra (a
// ragged — possibly empty — distribution the §7.2 machinery accepts).
func batchShare(values []int64, pN, local int) []int64 {
	n := len(values)
	base, rem := n/pN, n%pN
	lo := local*base + min(local, rem)
	cnt := base
	if local < rem {
		cnt++
	}
	return values[lo : lo+cnt]
}

// collectGroup assembles a group's BatchResult after a run. A nil runErr
// means the run completed and the captures are valid; sorting answers are
// flattened in group-processor order (processor 0 holds the largest values
// under the canonical descending order).
func collectGroup(g *batchGroup, res *BatchResult, runErr error) {
	res.Batched = g.coalesced
	res.BatchSize = g.batchSize
	res.Cycles, res.Messages = g.runCycles, g.runMessages
	if runErr != nil {
		res.Err = runErr
		res.Values = nil
		return
	}
	res.Err = nil
	switch g.job.Op {
	case BatchSort, BatchTopK:
		out := make([]int64, 0, len(g.job.Values))
		for _, seg := range g.outs {
			out = append(out, seg...)
		}
		if g.job.Op == BatchTopK {
			out = out[:g.job.TopK]
		}
		res.Values = out
	default:
		res.Values = append([]int64(nil), g.single...)
	}
}

// subnetNode presents a contiguous (processor range, channel range) window
// of a live engine run as a self-contained MCB(pN, cN) network: the batch
// runner's device for executing several independent collective programs
// concurrently in one run without cross-talk. Channel remapping is the whole
// isolation argument — a subroutine can only name channels in [0, K()), and
// those resolve into this group's window. Phase markers are silenced (like
// VProc.Phase, concurrent jobs would misattribute the shared cycle
// accounting); everything else forwards.
type subnetNode struct {
	pr       mcb.Node
	pOff, pN int
	cOff, cN int
}

func (s *subnetNode) ID() int { return s.pr.ID() - s.pOff }
func (s *subnetNode) P() int  { return s.pN }
func (s *subnetNode) K() int  { return s.cN }

func (s *subnetNode) ch(c int) int {
	if c < 0 || c >= s.cN {
		s.pr.Abortf("core: batch subnet channel %d out of range [0, %d)", c, s.cN)
	}
	return s.cOff + c
}

func (s *subnetNode) WriteRead(writeCh int, m mcb.Message, readCh int) (mcb.Message, bool) {
	return s.pr.WriteRead(s.ch(writeCh), m, s.ch(readCh))
}
func (s *subnetNode) Write(writeCh int, m mcb.Message)    { s.pr.Write(s.ch(writeCh), m) }
func (s *subnetNode) Read(readCh int) (mcb.Message, bool) { return s.pr.Read(s.ch(readCh)) }
func (s *subnetNode) Idle()                               { s.pr.Idle() }
func (s *subnetNode) IdleN(n int)                         { s.pr.IdleN(n) }
func (s *subnetNode) Abortf(format string, args ...any)   { s.pr.Abortf(format, args...) }
func (s *subnetNode) AccountAux(delta int64)              { s.pr.AccountAux(delta) }
func (s *subnetNode) Phase(name string)                   {}
func (s *subnetNode) Cycles() int64                       { return s.pr.Cycles() }

var _ mcb.Node = (*subnetNode)(nil)
