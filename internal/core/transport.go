package core

import (
	"context"
	"encoding/json"
	"fmt"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/mcb"
	"mcbnet/internal/transport"
)

// This file is the algorithm drivers' attachment to the transport seam.
//
// Every driver (Sort, Select, the checkpointed segment loops) is itself
// deterministic host code: given the same inputs and options it computes the
// same segment plan, the same engine configs, the same verification
// decisions. Under a distributed transport each peer process runs the SAME
// driver redundantly over the SAME inputs, and only the engine runs are
// collective — the transport keeps the peers' processor programs in
// lock-step on one shared engine. The one thing a peer cannot compute
// locally is what the processors it does NOT host produced, so after every
// successful run the drivers exchange those per-processor results (and the
// globally agreed scalars captured at processor 0) through
// Transport.Exchange. The in-process transport owns every processor, making
// the exchanges no-ops: the local fast path is untouched.

// runEnv bundles the execution target of one engine run: the transport that
// hosts the processor programs and the context that can cancel the run.
type runEnv struct {
	t   transport.Transport
	ctx context.Context
}

// newRunEnv resolves the options' transport knobs: a nil transport means
// in-process execution, a nil context means background.
func newRunEnv(t transport.Transport, ctx context.Context) runEnv {
	if t == nil {
		t = transport.Local{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return runEnv{t: t, ctx: ctx}
}

func (o SortOptions) runEnv() runEnv   { return newRunEnv(o.Transport, o.Ctx) }
func (o SelectOptions) runEnv() runEnv { return newRunEnv(o.Transport, o.Ctx) }

// run executes one collective engine run on the environment's transport.
func (e runEnv) run(cfg mcb.Config, progs []func(mcb.Node)) (*mcb.Result, error) {
	return e.t.Run(e.ctx, cfg, progs)
}

// exchangeSlices shares a per-processor result table across the peer group
// after a successful run: each peer contributes the entries of the
// processors it hosted and receives everyone else's, so that every peer
// leaves the exchange with the identical complete table (which keeps the
// redundant drivers deterministic). In-process transports host every
// processor and skip the exchange entirely.
func exchangeSlices[S any](env runEnv, tag string, vals []S) error {
	if env.t.InProcess() {
		return nil
	}
	blobs := make([][]byte, len(vals))
	for i := range vals {
		if !env.t.Owns(i) {
			continue
		}
		b, err := json.Marshal(vals[i])
		if err != nil {
			return fmt.Errorf("core: encode %s[%d]: %w", tag, i, err)
		}
		blobs[i] = b
	}
	got, err := env.t.Exchange(tag, blobs)
	if err != nil {
		return err
	}
	if len(got) != len(vals) {
		return fmt.Errorf("core: exchange %s returned %d entries, want %d", tag, len(got), len(vals))
	}
	for i := range vals {
		if env.t.Owns(i) {
			continue
		}
		var v S
		if err := json.Unmarshal(got[i], &v); err != nil {
			return fmt.Errorf("core: decode %s[%d]: %w", tag, i, err)
		}
		vals[i] = v
	}
	return nil
}

// phaseHistory keeps every boundary snapshot this process has accepted in
// the current checkpointed run (and the accepted-cost stats at each), keyed
// by snapshot phase. It exists for one distributed failure mode: a peer
// process can be killed in the window between a collective segment
// completing and its local store.Save, leaving its store one boundary
// behind the survivors'. On rejoin the restarted peer proposes the earlier
// segment while the survivors propose the later one — a permanent protocol
// divergence. The resync exchange below detects the skew and rewinds the
// peers that ran ahead to the group minimum, which the history makes
// possible without re-reading the store.
type phaseHistory struct {
	snaps map[int]*checkpoint.Snapshot
	stats map[int]mcb.Stats
}

func newPhaseHistory() *phaseHistory {
	return &phaseHistory{snaps: map[int]*checkpoint.Snapshot{}, stats: map[int]mcb.Stats{}}
}

// record remembers an accepted boundary and the accepted-path cost at it.
// The snapshot is stored by reference (each accepted boundary is already a
// fresh Clone); the stats are deep-copied because the caller keeps mutating
// its accumulator.
func (h *phaseHistory) record(snap *checkpoint.Snapshot, accepted *mcb.Stats) {
	h.snaps[snap.Phase] = snap
	var c mcb.Stats
	c.Add(accepted)
	h.stats[snap.Phase] = c
}

// reset discards the history (a full restart invalidates every boundary).
func (h *phaseHistory) reset() {
	h.snaps = map[int]*checkpoint.Snapshot{}
	h.stats = map[int]mcb.Stats{}
}

// resyncPhases aligns a distributed checkpointed driver with its peer group
// at the start of an attempt: every peer contributes the phase of the
// boundary it is about to continue from, and peers that ran ahead of the
// group minimum rewind to it (replaying the rewound segments, which keeps
// kill-and-rejoin convergent instead of diverging forever on mismatched
// proposals). Returns the possibly-rewound snapshot and updates *accepted
// to the cost recorded at that boundary. In-process transports skip the
// exchange — there is exactly one driver, nothing to align.
func resyncPhases(env runEnv, kind string, p int, snap *checkpoint.Snapshot, hist *phaseHistory, accepted *mcb.Stats) (*checkpoint.Snapshot, error) {
	if env.t.InProcess() {
		return snap, nil
	}
	phases := make([]int, p)
	for i := range phases {
		phases[i] = snap.Phase
	}
	if err := exchangeSlices(env, kind+":phase-sync", phases); err != nil {
		return snap, err
	}
	min := phases[0]
	for _, ph := range phases[1:] {
		if ph < min {
			min = ph
		}
	}
	if min == snap.Phase {
		return snap, nil
	}
	old := hist.snaps[min]
	if old == nil {
		// Unreachable when stores skew by the save window only (a peer can
		// never be behind a boundary the group passed without it); surfacing
		// it beats proposing diverged steps forever.
		return snap, fmt.Errorf("core: peer group resumed %s at phase %d, before this process's history (at %d)", kind, min, snap.Phase)
	}
	rw := old.Clone()
	rw.Attempt = snap.Attempt
	rw.Resumes = snap.Resumes
	rw.ReplayedCycles = snap.ReplayedCycles + (snap.CyclesDone - rw.CyclesDone)
	at := hist.stats[min]
	var st mcb.Stats
	st.Add(&at) // detach: the caller mutates *accepted in place
	*accepted = st
	return rw, nil
}

// exchangeScalar shares a value captured at processor 0 (the selection
// drivers' globally agreed scalars) across the peer group: the peer hosting
// processor 0 contributes it, everyone else receives it in blob slot 0.
func exchangeScalar[T any](env runEnv, tag string, p int, v *T) error {
	if env.t.InProcess() {
		return nil
	}
	blobs := make([][]byte, p)
	if env.t.Owns(0) {
		b, err := json.Marshal(*v)
		if err != nil {
			return fmt.Errorf("core: encode %s: %w", tag, err)
		}
		blobs[0] = b
	}
	got, err := env.t.Exchange(tag, blobs)
	if err != nil {
		return err
	}
	if env.t.Owns(0) {
		return nil
	}
	if len(got) == 0 || got[0] == nil {
		return fmt.Errorf("core: exchange %s carried no processor-0 scalar", tag)
	}
	if err := json.Unmarshal(got[0], v); err != nil {
		return fmt.Errorf("core: decode %s: %w", tag, err)
	}
	return nil
}
