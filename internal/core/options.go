package core

import (
	"context"
	"fmt"
	"time"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/mcb"
	"mcbnet/internal/trace"
	"mcbnet/internal/transport"
)

// Order selects the output order. The paper's canonical order is descending
// (rank 1 is the largest element); Ascending is provided for convenience and
// is implemented by negating the comparison at the boundary.
type Order int

const (
	// Descending is the paper's order: P_1 receives the largest elements.
	Descending Order = iota
	// Ascending reverses the paper's order: P_1 receives the smallest.
	Ascending
)

// Algorithm selects the sorting algorithm.
type Algorithm int

const (
	// AlgoAuto picks an algorithm from (n, p, k, distribution): Columnsort
	// with gathered columns in general, Rank-Sort when only one channel or
	// one column is usable.
	AlgoAuto Algorithm = iota
	// AlgoColumnsortGather is Sections 5.2/7.2: elements are collected into
	// up to k representative processors (phase 0), Columnsort runs among the
	// representatives, and phase 10 redistributes. Needs O(n/k + n_max)
	// auxiliary memory at representatives.
	AlgoColumnsortGather
	// AlgoColumnsortVirtual is Section 6.1: each group of processors acts as
	// one virtual column; sorting phases use Rank-Sort inside each group, so
	// no processor ever stores more than O(n_i) words.
	AlgoColumnsortVirtual
	// AlgoRankSort is the single-channel Rank-Sort of Section 6.1 run over
	// the whole network on channel 0: O(n) cycles and messages.
	AlgoRankSort
	// AlgoMergeSort is the single-channel Merge-Sort of Section 6.1: O(n)
	// cycles and messages with O(1) auxiliary memory per processor.
	AlgoMergeSort
	// AlgoColumnsortRecursive is Section 6.2: recursive virtual columns for
	// inputs too small to use all k channels as columns (n < k^2(k-1)).
	// Requires an even distribution.
	AlgoColumnsortRecursive
)

func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoColumnsortGather:
		return "columnsort-gather"
	case AlgoColumnsortVirtual:
		return "columnsort-virtual"
	case AlgoRankSort:
		return "rank-sort"
	case AlgoMergeSort:
		return "merge-sort"
	case AlgoColumnsortRecursive:
		return "columnsort-recursive"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// SortOptions configures a distributed sort.
type SortOptions struct {
	// K is the number of broadcast channels (1 <= K <= p). Required.
	K int
	// Order selects ascending or descending output; default Descending.
	Order Order
	// Algorithm selects the algorithm; default AlgoAuto.
	Algorithm Algorithm
	// MaxCycles aborts runaway runs (0 = engine default of no limit).
	MaxCycles int64
	// StallTimeout aborts on lock-step protocol bugs (0 = engine default).
	StallTimeout time.Duration
	// Trace enables full traffic tracing (tests only).
	Trace bool
	// Recorder, when non-nil, streams per-cycle events into preallocated
	// ring buffers for JSONL/Perfetto export (see internal/trace and
	// mcb.Config.Recorder). Retry attempts sharing the options append to
	// the same recorder.
	Recorder *trace.Recorder
	// ProfileLabels attaches pprof phase labels to processor goroutines
	// (see mcb.Config.ProfileLabels).
	ProfileLabels bool
	// Engine selects the execution engine that steps the processors
	// (mcb.EngineAuto, mcb.EngineGoroutine or mcb.EngineSharded). The zero
	// value is EngineAuto: sharded coordination once p reaches the
	// p >> cores regime, classic per-processor barrier below it.
	Engine mcb.EngineMode
	// Faults enables deterministic fault injection (see mcb.FaultPlan).
	Faults *mcb.FaultPlan
	// Retry configures the verify-and-retry layer; only SortWithRetry
	// consults it (plain Sort runs a single unverified attempt).
	Retry mcb.RetryPolicy
	// Verifier overrides the output check SortWithRetry applies after every
	// successful attempt. Nil means the default VerifySort (sortedness,
	// cardinality preservation, and multiset-permutation of the input).
	Verifier SortVerifier
	// Checkpoints, when non-nil, makes SortWithRetry run the sort as a
	// sequence of phase segments, snapshotting the distributed state into the
	// store at every phase boundary (after multiset verification). A typed
	// failure then resumes from the last accepted checkpoint instead of
	// replaying the run from cycle 0. Plain Sort ignores it.
	Checkpoints checkpoint.Store
	// Resume makes SortWithRetry first consult Checkpoints.Latest() and, if
	// a compatible snapshot for these inputs exists (same shape, same
	// cardinalities, multiset-consistent), continue from it — the
	// cross-process resume path of cmd/mcbsort -resume. Without Resume, a
	// checkpointed run clears stale snapshots and starts fresh.
	Resume bool
	// Transport selects where the processor programs execute. Nil (or
	// transport.Local{}) runs them in-process on this machine's engine —
	// the fast path, byte-for-byte unchanged. A tcp.Client runs this
	// process's processor range against a remote sequencer's engine, with
	// the per-processor results exchanged across the peer group after every
	// successful run (see internal/transport).
	Transport transport.Transport
	// Ctx, when non-nil, cancels the run: cancellation surfaces as a typed
	// *mcb.AbortError (or the typed cause installed via
	// context.WithCancelCause) from the engine, locally and over a tcp
	// transport alike. Nil means context.Background().
	Ctx context.Context
}

func (o SortOptions) engineConfig(p int) mcb.Config {
	return mcb.Config{
		P: p, K: o.K,
		Trace:         o.Trace,
		MaxCycles:     o.MaxCycles,
		StallTimeout:  o.StallTimeout,
		Faults:        o.Faults,
		Recorder:      o.Recorder,
		ProfileLabels: o.ProfileLabels,
		Engine:        o.Engine,
	}
}

// Report augments the engine stats with algorithm-level accounting.
type Report struct {
	Stats mcb.Stats
	// Algorithm actually used (resolved from AlgoAuto).
	Algorithm Algorithm
	// Columns is the number of Columnsort columns used (0 for non-Columnsort
	// algorithms).
	Columns int
	// ColumnLen is the padded column length m (0 for non-Columnsort).
	ColumnLen int
	// PhaseCycles maps phase labels to the cycle count spent, derived from
	// the engine's per-phase accounting (Stats.Phases carries the full
	// breakdown including messages and per-channel counts).
	PhaseCycles []PhaseCycle
	// Attempts is the number of attempts the retry layer used (0 or 1 =
	// single attempt).
	Attempts int
	// Resumes is how many failures were recovered by continuing from a
	// phase-boundary checkpoint instead of restarting from cycle 0.
	Resumes int
	// CheckpointPhase names the last accepted checkpoint the final attempt
	// started from ("" when the run never resumed).
	CheckpointPhase string
	// ReplayedCycles counts cycles executed but discarded — work that is not
	// part of the accepted run (failed attempts, rolled-back segments).
	ReplayedCycles int64
	// DegradedK is the reduced channel count a channel-degraded run finished
	// on (0 = no degradation); DeadChannels lists the dropped original
	// channel indices.
	DegradedK    int
	DeadChannels []int
	// Trace is the engine trace when requested.
	Trace *mcb.Trace
}

// PhaseCycle records one phase boundary.
type PhaseCycle struct {
	Label  string
	Cycles int64
}

// phaser forwards phase-start marks to the node's engine-side accounting
// (mcb.Stats.Phases). A nil phaser silences marking, so an algorithm invoked
// as a subroutine (e.g. the pair sort inside each selection filter phase)
// does not split its caller's phase.
type phaser struct{ pr mcb.Node }

// mark declares that the named phase starts with this processor's next
// cycle operation.
func (r *phaser) mark(label string) {
	if r != nil {
		r.pr.Phase(label)
	}
}

// phaseCyclesFrom projects the engine's per-phase breakdown onto the legacy
// label/cycles pairs of Report.PhaseCycles.
func phaseCyclesFrom(phases []mcb.PhaseStats) []PhaseCycle {
	if len(phases) == 0 {
		return nil
	}
	out := make([]PhaseCycle, len(phases))
	for i, ph := range phases {
		out[i] = PhaseCycle{Label: ph.Name, Cycles: ph.Cycles}
	}
	return out
}
