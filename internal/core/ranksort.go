package core

import (
	"mcbnet/internal/mcb"
	"mcbnet/internal/partial"
	"mcbnet/internal/seq"
)

// prefixAndTotal computes each processor's inclusive cardinality prefix and
// the global total: Partial-Sums plus one broadcast from the last processor.
func prefixAndTotal(pr mcb.Node, ni int) (prefix, n int) {
	p, id := pr.P(), pr.ID()
	_, at, _ := partial.Sums(pr, int64(ni), partial.Sum)
	prefix = int(at)
	if p == 1 {
		return prefix, ni
	}
	if id == p-1 {
		pr.Write(0, mcb.MsgX(tagN, at))
		return prefix, int(at)
	}
	m, ok := pr.Read(0)
	if !ok {
		pr.Abortf("core: missing total-count broadcast")
	}
	return prefix, int(m.X)
}

// rankSortWhole is the single-channel Rank-Sort of Section 6.1 run over the
// entire network on channel 0. Phase A broadcasts every element once, in
// processor order, while every processor maintains rank counters for its own
// elements (a binary search plus suffix-difference array per broadcast);
// phase B broadcasts the elements in rank order, each read by its target
// processor — elements already at their target move locally without a
// message. 2n cycles (plus the Partial-Sums prologue) and at most 2n
// messages; O(n_i) auxiliary words per processor.
func rankSortWhole(pr mcb.Node, mine []elem, rec *phaser) []elem {
	ni := len(mine)
	rec.mark("ranksort:prefix")
	prefix, n := prefixAndTotal(pr, ni)
	lo, hi := prefix-ni, prefix

	// Local descending sort so each broadcast updates ranks in O(log n_i).
	sorted := append([]elem(nil), mine...)
	seq.Sort(sorted, func(a, b elem) bool { return a.greater(b) })
	diff := make([]int, ni+1)
	pr.AccountAux(int64(3*ni + 1))

	// Phase A: broadcast every element once, in processor order; the writer
	// reads its own channel so all processors see the identical stream.
	// rank(x) = #{e : e > x}; each broadcast e increments the rank of the
	// suffix of sorted[] that is smaller than e.
	rec.mark("ranksort:phaseA")
	for t := 0; t < n; t++ {
		var msg mcb.Message
		var ok bool
		if t >= lo && t < hi {
			msg, ok = pr.WriteRead(0, sorted[t-lo].msg(tagRank), 0)
		} else {
			msg, ok = pr.Read(0)
		}
		if !ok {
			pr.Abortf("core: rank-sort missed broadcast %d", t)
		}
		e := elemFromMsg(msg)
		// First index with e > sorted[idx]; the suffix from idx gains a rank.
		idx := lowerBoundSmaller(sorted, e)
		diff[idx]++
	}
	// ranks[i] = descending rank of sorted[i]; strictly increasing in i.
	ranks := make([]int, ni)
	acc := 0
	for i := range sorted {
		acc += diff[i]
		ranks[i] = acc
	}

	// Phase B: broadcast in rank order; target processors collect their
	// segment [lo, hi).
	rec.mark("ranksort:phaseB")
	out := make([]elem, ni)
	send := 0 // next local element (by ascending rank) to broadcast
	for r := 0; r < n; r++ {
		holder := send < ni && ranks[send] == r
		target := r >= lo && r < hi
		switch {
		case holder && target:
			out[r-lo] = sorted[send]
			send++
			pr.Idle() // element already in place; no message needed
		case holder:
			pr.Write(0, sorted[send].msg(tagRank))
			send++
		case target:
			msg, ok := pr.Read(0)
			if !ok {
				pr.Abortf("core: rank-sort missing rank %d", r)
			}
			out[r-lo] = elemFromMsg(msg)
		default:
			pr.Idle()
		}
	}
	pr.AccountAux(int64(-(3*ni + 1)))
	return out
}

// lowerBoundSmaller returns the smallest index i with e > sorted[i], where
// sorted is descending; returns len(sorted) if e is smaller or equal to all.
func lowerBoundSmaller(sorted []elem, e elem) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.greater(sorted[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
