package core

import (
	"fmt"
	"sync"

	"mcbnet/internal/matrix"
	"mcbnet/internal/schedule"
)

// Schedules are pure functions of globally known quantities, so in the real
// network every processor computes them independently. In the simulator all
// processors share one address space, so we memoize: the first processor to
// need a schedule builds it, the rest reuse it. This changes no observable
// behaviour (cycles/messages), only host CPU time.
var schedCache sync.Map // string key -> *schedule.Schedule

func scheduleFor(sh matrix.Shape, kind schedule.TransformKind) *schedule.Schedule {
	key := fmt.Sprintf("t/%d/%d/%d", sh.M, sh.K, kind)
	if v, ok := schedCache.Load(key); ok {
		return v.(*schedule.Schedule)
	}
	s := schedule.ForTransform(sh, kind)
	actual, _ := schedCache.LoadOrStore(key, s)
	return actual.(*schedule.Schedule)
}

// recSchedule builds (and memoizes) the processor-granularity schedule for
// one transformation of the recursive Columnsort: a sub-network of span
// processors, each holding ni consecutive positions, viewed as c columns of
// length m = span*ni/c, routed over `chans` channels. Positions, owners and
// channels in the returned schedule are all relative to the sub-network, so
// sibling sub-networks (which are isomorphic) share the identical schedule.
func recSchedule(span, c, ni, chans int, kind schedule.TransformKind) *schedule.Schedule {
	key := fmt.Sprintf("r/%d/%d/%d/%d/%d", span, c, ni, chans, kind)
	if v, ok := schedCache.Load(key); ok {
		return v.(*schedule.Schedule)
	}
	sh := matrix.Shape{M: span * ni / c, K: c}
	f := kindTransform(kind)
	owner := func(pos int) int { return pos / ni }
	s := schedule.Route(schedule.TransformMoves(sh, f), owner, owner, chans)
	actual, _ := schedCache.LoadOrStore(key, s)
	return actual.(*schedule.Schedule)
}

// kindTransform maps a TransformKind to its permutation.
func kindTransform(kind schedule.TransformKind) matrix.Transform {
	switch kind {
	case schedule.KindTranspose:
		return matrix.Transpose
	case schedule.KindUnDiagonalize:
		return matrix.UnDiagonalize
	case schedule.KindUpShift:
		return matrix.UpShift
	case schedule.KindDownShift:
		return matrix.DownShift
	case schedule.KindUntranspose:
		return matrix.Untranspose
	}
	panic("core: bad transform kind")
}
