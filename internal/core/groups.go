package core

import (
	"mcbnet/internal/mcb"
	"mcbnet/internal/partial"
)

// Message tags used by the sorting protocols.
const (
	tagN       uint8 = 1 // total-count broadcast
	tagRep     uint8 = 2 // group-representative announcement (X=rep id, Y=group size)
	tagCollect uint8 = 3 // element collection
	tagElem    uint8 = 4 // element in a transformation or redistribution phase
	tagRank    uint8 = 5 // rank-sort broadcasts
	tagMerge   uint8 = 6 // merge-sort protocol
	tagSel     uint8 = 7 // selection protocol
)

// groupMeta describes one group (= one Columnsort column) globally.
type groupMeta struct {
	rep  int // highest-numbered processor of the group
	size int // number of real elements in the group (m_g)
}

// groupInfo is the outcome of group formation at one processor.
type groupInfo struct {
	n      int // total number of elements in the network
	nMax   int // largest n_i
	prefix int // this processor's original inclusive prefix n+_i

	myGroup  int // index of this processor's group
	myOffset int // offset of this processor's first element within its group

	groups []groupMeta // the global group table, identical at every processor
}

// rankRange returns the descending 0-based rank interval [lo, hi) owned by
// this processor after sorting (sorting preserves cardinalities).
func (g *groupInfo) rankRange(ni int) (lo, hi int) {
	return g.prefix - ni, g.prefix
}

// maxUsableCols returns the largest column count c <= k admissible for n
// elements: the paper requires n >= c^2(c-1) so that columns of length
// ~ceil(n/c) satisfy the Columnsort constraint m >= c(c-1).
func maxUsableCols(n, k int) int {
	c := 1
	for cand := 2; cand <= k; cand++ {
		if n >= cand*cand*(cand-1) {
			c = cand
		}
	}
	return c
}

// formGroups is phase 0a of Sections 5.2/7.2: it computes the global
// quantities (n, n_max, prefix sums) with Partial-Sums and forms groups of
// roughly equal element count, ceil(n/c) <= m_g <= ceil(n/c) + n_max - 1,
// one group at a time. The representative of each group announces (rep id,
// group size) on channel 0, so the group table — and everything derived from
// it — is identical global knowledge afterwards. Costs O(p/k + log k + c)
// cycles and O(p) messages.
//
// All processors must call formGroups in the same cycle, passing their own
// cardinality n_i.
func formGroups(pr mcb.Node, ni int, targetCols int) *groupInfo {
	p, id := pr.P(), pr.ID()
	g := &groupInfo{myGroup: -1}

	// Prefix sums of cardinalities and the two global aggregates.
	_, at, next := partial.Sums(pr, int64(ni), partial.Sum)
	g.prefix = int(at)
	g.nMax = int(partial.Total(pr, int64(ni), partial.Max))
	// Total n: the last processor holds it; one broadcast.
	if p == 1 {
		g.n = ni
	} else if id == p-1 {
		g.n = int(at)
		pr.Write(0, mcb.MsgX(tagN, at))
	} else {
		m, ok := pr.Read(0)
		if !ok {
			pr.Abortf("core: missing total-count broadcast")
		}
		g.n = int(m.X)
	}

	// Group size limit: ceil(n/c) + n_max - 1 guarantees at most c groups
	// (every group except possibly the last has at least ceil(n/c)
	// elements).
	cols := targetCols
	if mc := maxUsableCols(g.n, targetCols); mc < cols {
		cols = mc
	}
	limit := (g.n+cols-1)/cols + g.nMax - 1

	revAt, revNext := int(at), int(next)
	for {
		isRep := g.myGroup == -1 && revAt <= limit && (id == p-1 || revNext > limit)
		var rep, size int
		if isRep {
			m, ok := pr.WriteRead(0, mcb.Msg(tagRep, int64(id), int64(revAt), 0), 0)
			if !ok {
				pr.Abortf("core: lost own representative broadcast")
			}
			rep, size = int(m.X), int(m.Y)
		} else {
			m, ok := pr.Read(0)
			if !ok {
				pr.Abortf("core: missing representative broadcast")
			}
			rep, size = int(m.X), int(m.Y)
		}
		gi := len(g.groups)
		g.groups = append(g.groups, groupMeta{rep: rep, size: size})
		if g.myGroup == -1 {
			if id <= rep {
				g.myGroup = gi
				g.myOffset = revAt - ni
			} else {
				revAt -= size
				revNext -= size
			}
		}
		if rep == p-1 {
			break
		}
	}
	return g
}

// paddedColLen returns the common padded column length m: at least every
// group size and the Columnsort minimum for G columns, rounded up to a
// multiple of G.
func (g *groupInfo) paddedColLen() int {
	G := len(g.groups)
	m := 0
	for _, gr := range g.groups {
		if gr.size > m {
			m = gr.size
		}
	}
	if G > 1 {
		if lo := G * (G - 1); m < lo {
			m = lo
		}
		if r := m % G; r != 0 {
			m += G - r
		}
	}
	return m
}
