package core

import (
	"fmt"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/matrix"
	"mcbnet/internal/mcb"
	"mcbnet/internal/schedule"
)

// This file is the checkpointed execution path of the gathered-Columnsort
// sort: the monolithic pipeline of gatherSort is cut at its phase boundaries
// into segments, each run as its own engine invocation on a fresh network.
// Between segments the full distributed state (the gathered columns at the
// representatives) is host-held, snapshotted into the checkpoint store after
// multiset verification, and re-injected into the next segment's programs —
// so a typed failure replays only the failed segment, and a resumed host
// process continues from the last accepted boundary on disk.

// hostGroups replicates the outcome of the formGroups network protocol as a
// pure function of the cardinalities and the channel count: the group table
// is deterministic global knowledge, so the host can recompute it when
// resuming without replaying phase 0a. TestComputeGroupTableMatchesProtocol
// cross-checks it against the protocol.
type hostGroups struct {
	n, nMax int
	m       int // padded column length
	G       int // number of groups (= Columnsort columns)

	prefix   []int // inclusive cardinality prefix per processor
	myGroup  []int
	myOffset []int
	groups   []groupMeta
}

// computeGroupTable mirrors formGroups: prefix sums, the group-size limit
// ceil(n/c) + nMax - 1, and the greedy representative-selection rounds.
// Assigned processors always form a prefix of the id space, so the rounds
// reduce to a single left-to-right sweep with a running base offset.
func computeGroupTable(cards []int, k int) *hostGroups {
	p := len(cards)
	hg := &hostGroups{
		prefix:   make([]int, p),
		myGroup:  make([]int, p),
		myOffset: make([]int, p),
	}
	at := 0
	for i, c := range cards {
		at += c
		hg.prefix[i] = at
		if c > hg.nMax {
			hg.nMax = c
		}
	}
	hg.n = at
	cols := k
	if mc := maxUsableCols(hg.n, k); mc < cols {
		cols = mc
	}
	limit := (hg.n+cols-1)/cols + hg.nMax - 1

	base := 0  // elements already assigned to earlier groups
	start := 0 // first unassigned processor
	for {
		rep := -1
		for i := start; i < p; i++ {
			if hg.prefix[i]-base > limit {
				break // prefixes are non-decreasing: nobody further qualifies
			}
			if i == p-1 || hg.prefix[i+1]-base > limit {
				rep = i
				break
			}
		}
		size := hg.prefix[rep] - base
		gi := len(hg.groups)
		hg.groups = append(hg.groups, groupMeta{rep: rep, size: size})
		for i := start; i <= rep; i++ {
			hg.myGroup[i] = gi
			hg.myOffset[i] = (hg.prefix[i] - base) - cards[i]
		}
		if rep == p-1 {
			break
		}
		base = hg.prefix[rep]
		start = rep + 1
	}
	hg.G = len(hg.groups)
	hg.m = (&groupInfo{groups: hg.groups}).paddedColLen()
	return hg
}

// infoFor reconstructs processor id's groupInfo, as formGroups would have
// produced it.
func (hg *hostGroups) infoFor(id int) *groupInfo {
	return &groupInfo{
		n: hg.n, nMax: hg.nMax, prefix: hg.prefix[id],
		myGroup: hg.myGroup[id], myOffset: hg.myOffset[id],
		groups: hg.groups,
	}
}

// sortSegKind enumerates the segment shapes of the gathered Columnsort.
type sortSegKind int

const (
	segCollect      sortSegKind = iota // phase 0: formation + collection
	segTransform                       // one local sort + one transformation phase
	segRedistribute                    // final local sort + phase 10
)

// sortSegment describes one independently startable phase segment.
type sortSegment struct {
	name          string // checkpoint phase name (matches the engine phase label)
	kind          sortSegKind
	transformName string           // schedule name for segTransform
	transform     matrix.Transform // permutation for segTransform
	sortSkipCol0  bool             // the preceding local sort skips column 0 (paper's phase 7)
}

// sortSegments builds the segment plan for G columns: collection, one
// segment per Columnsort transformation phase (each prefixed by its
// cost-free local sort), and redistribution (prefixed by the final sort).
// G == 1 degenerates to [collect, redistribute].
func sortSegments(G int) []sortSegment {
	segs := []sortSegment{{name: "phase0:collect", kind: segCollect}}
	if G > 1 {
		skip := false
		for _, ph := range matrix.Phases() {
			switch ph.Kind {
			case matrix.PhaseSort:
				skip = ph.SkipCol0
			case matrix.PhaseTransform:
				segs = append(segs, sortSegment{
					name:          "phase" + itoa(ph.Num) + ":" + ph.Name,
					kind:          segTransform,
					transformName: ph.Name,
					transform:     ph.Transform,
					sortSkipCol0:  skip,
				})
			}
		}
	}
	return append(segs, sortSegment{name: "phase10:redistribution", kind: segRedistribute})
}

// runSortSegment executes one segment as its own engine run. state is the
// snapshot element state entering the segment (per-processor inputs for
// segCollect, gathered columns otherwise); it is cloned before injection, so
// a failed run never taints the checkpointed state. It returns the state
// after the boundary (nil for segRedistribute) and, for segRedistribute, the
// per-processor sorted outputs in internal element space.
func runSortSegment(env runEnv, seg sortSegment, state [][]checkpoint.Elem, hg *hostGroups, cfg mcb.Config) (nextState [][]checkpoint.Elem, outs [][]elem, res *mcb.Result, err error) {
	p := cfg.P
	sh := matrix.Shape{M: hg.m, K: hg.G}
	cols := make([][]cell, p)
	elems := make([][]elem, p)
	for i, l := range state {
		if seg.kind == segCollect {
			e, cerr := ckptToElems(l)
			if cerr != nil {
				return nil, nil, nil, fmt.Errorf("core: bad checkpoint state for processor %d: %w", i, cerr)
			}
			elems[i] = e
		} else {
			cols[i] = ckptToCells(l)
		}
	}
	outCols := make([][]cell, p)
	outElems := make([][]elem, p)

	progs := make([]func(mcb.Node), p)
	for i := range progs {
		id := i
		progs[i] = func(pr mcb.Node) {
			rec := &phaser{pr}
			g := hg.infoFor(id)
			isRep := id == g.groups[g.myGroup].rep
			myCol := g.myGroup
			switch seg.kind {
			case segCollect:
				rec.mark("phase0a:formation")
				// Run the real protocol (its cycles are part of the cost);
				// the host-computed table must agree with its outcome.
				pg := formGroups(pr, len(elems[id]), pr.K())
				if pg.myGroup != g.myGroup || pg.myOffset != g.myOffset || len(pg.groups) != len(g.groups) {
					pr.Abortf("core: group table mismatch between protocol and host (proc %d)", id)
				}
				rec.mark("phase0b:collection")
				outCols[id] = collectColumn(pr, elems[id], g, hg.m, isRep, myCol)
			case segTransform:
				col := cols[id]
				if isRep {
					pr.AccountAux(int64(2 * hg.m))
					if !(seg.sortSkipCol0 && myCol == 0) {
						sortCells(col)
					}
				}
				kind, ok := schedule.KindOf(seg.transformName)
				if !ok {
					pr.Abortf("core: unknown transform %q", seg.transformName)
				}
				sched := scheduleFor(sh, kind)
				rec.mark(seg.name)
				runTransform(pr, sh, seg.transform, sched, isRep, myCol, col)
				outCols[id] = col
			case segRedistribute:
				col := cols[id]
				if isRep {
					pr.AccountAux(int64(2 * hg.m))
					sortCells(col)
				}
				if hg.G == 1 {
					rec.mark("phases1-9:single-column-sort")
				}
				rec.mark("phase10:redistribution")
				ni := hg.prefix[id]
				if id > 0 {
					ni -= hg.prefix[id-1]
				}
				outElems[id] = redistribute(pr, sh, g, isRep, myCol, col, ni)
			}
		}
	}
	res, err = env.run(cfg, progs)
	if err != nil {
		return nil, nil, res, err
	}
	if seg.kind == segRedistribute {
		// Under a distributed transport only the hosted processors'
		// outputs were produced locally; gather the rest so every peer's
		// driver sees the identical final table.
		if xerr := exchangeSlices(env, "sort:"+seg.name, outElems); xerr != nil {
			return nil, nil, res, xerr
		}
		return nil, outElems, res, nil
	}
	nextState = make([][]checkpoint.Elem, p)
	for i, c := range outCols {
		if c != nil {
			nextState[i] = cellsToCkpt(c)
		}
	}
	// Boundary state exchange: every peer snapshots (and verifies) the
	// complete distributed state, keeping the redundant checkpoint drivers
	// byte-identical across the group.
	if xerr := exchangeSlices(env, "sort:"+seg.name, nextState); xerr != nil {
		return nil, nil, res, xerr
	}
	return nextState, nil, res, nil
}

// sortCheckpointed is the checkpoint/resume driver for the gathered
// Columnsort: SortWithRetry routes here when opts.Checkpoints is set and the
// algorithm resolves to AlgoColumnsortGather. It executes the segment plan,
// saving a verified snapshot at every boundary; a retryable failure resumes
// from the last accepted boundary (only the failed segment is replayed), a
// failure attributable to scripted channel outages degrades to k' < k
// surviving channels (restarting from phase 0 — the column structure depends
// on k), and a failed final verification falls back to a full restart, since
// multiset conservation cannot vouch for element positions.
func sortCheckpointed(inputs [][]int64, opts SortOptions) ([][]int64, *Report, error) {
	p := len(inputs)
	algo, err := validateSort(inputs, opts)
	if err != nil {
		return nil, nil, err
	}
	if algo != AlgoColumnsortGather {
		return nil, nil, errNotSegmentable
	}
	verifier := opts.Verifier
	if verifier == nil {
		verifier = VerifySort
	}
	store := opts.Checkpoints
	negate := opts.Order == Ascending
	order := 0
	if negate {
		order = 1
	}
	cards := cardsOf(inputs)
	elems := inputElems(inputs, negate)
	want := elemCounts(elems)
	pol := opts.Retry
	maxAtt := retryAttempts(pol)
	env := opts.runEnv()

	cs := newChanState(opts.K, opts.Faults)

	freshSnap := func() *checkpoint.Snapshot {
		s := &checkpoint.Snapshot{
			Kind: "sort", Algo: algo.String(), P: p, K: cs.k(),
			Order: order, Cards: append([]int(nil), cards...),
			Aux:   cs.deadAux(),
			State: make([][]checkpoint.Elem, p),
		}
		for i, l := range elems {
			s.State[i] = elemsToCkpt(l)
		}
		return s
	}

	rep := &Report{Algorithm: algo}
	var accepted mcb.Stats // cost of the accepted path executed by this process

	var snap *checkpoint.Snapshot
	if opts.Resume {
		if ls, lerr := store.Latest(); lerr == nil && ls != nil {
			if rerr := sortSnapshotUsable(ls, algo, p, opts.K, order, cards, want); rerr == nil {
				if cs.restoreDead(ls.Aux) {
					snap = ls
					if ls.Phase > 0 {
						// A cross-process continuation is a resume: this
						// invocation starts at an accepted boundary, not
						// cycle 0.
						ls.Resumes++
					}
					rep.Resumes = ls.Resumes
					rep.CheckpointPhase = ls.PhaseName
				}
			}
		}
	}
	if snap == nil {
		// Fresh start (or unusable on-disk state): discard stale snapshots
		// and anchor the run with its phase-0 snapshot.
		if err := store.Clear(); err != nil {
			return nil, nil, err
		}
		snap = freshSnap()
		if err := store.Save(snap); err != nil {
			return nil, nil, err
		}
	}
	if len(cs.deadOrig) > 0 {
		rep.DegradedK = cs.k()
		rep.DeadChannels = append([]int(nil), cs.deadOrig...)
	}

	hg := computeGroupTable(cards, cs.k())
	segs := sortSegments(hg.G)
	hist := newPhaseHistory()
	hist.record(snap, &accepted)
	// Distributed runs align the peer drivers at the start of every attempt
	// (see resyncPhases); in-process runs skip the exchange entirely.
	needSync := true

	finishReport := func() {
		rep.Stats = accepted
		rep.Attempts = snap.Attempt + 1
		rep.Resumes = snap.Resumes
		rep.ReplayedCycles = snap.ReplayedCycles
		rep.PhaseCycles = phaseCyclesFrom(accepted.Phases)
		rep.Columns, rep.ColumnLen = hg.G, hg.m
	}

	// restart resets to phase 0 under the current channel state, discarding
	// every accepted cycle (they become replayed work).
	restart := func() error {
		snap2 := freshSnap()
		snap2.Attempt = snap.Attempt
		snap2.Resumes = snap.Resumes
		snap2.ReplayedCycles = snap.ReplayedCycles + snap.CyclesDone
		snap = snap2
		accepted = mcb.Stats{}
		hist.reset()
		hist.record(snap, &accepted)
		if err := store.Clear(); err != nil {
			return err
		}
		return store.Save(snap)
	}

	var lastErr error
	for {
		if needSync {
			rs, rerr := resyncPhases(env, "sort", p, snap, hist, &accepted)
			if rerr != nil {
				if !mcb.Retryable(rerr) {
					finishReport()
					return nil, rep, rerr
				}
				lastErr = rerr
				snap.Attempt++
				if snap.Attempt >= maxAtt {
					finishReport()
					return nil, rep, lastErr
				}
				retryBackoff(pol, snap.Attempt)
				continue
			}
			if rs != snap {
				// Rewound to the group minimum: report the boundary the run
				// actually continues from.
				snap = rs
				rep.CheckpointPhase = snap.PhaseName
			}
			needSync = false
		}
		seg := segs[snap.Phase]
		plan := cs.curPlan.ForAttempt(snap.Attempt).Shift(snap.CyclesDone)
		cfg := opts.engineConfig(p)
		cfg.K = cs.k()
		cfg.Faults = plan
		cfg.MaxCycles = segmentBudget(opts.MaxCycles, snap.CyclesDone)

		nextState, outs, res, err := runSortSegment(env, seg, snap.State, hg, cfg)
		if err == nil && seg.kind != segRedistribute {
			// Boundary reached: snapshot, verify, accept.
			cand := snap.Clone()
			cand.Phase++
			cand.PhaseName = seg.name
			cand.State = nextState
			cand.CyclesDone += res.Stats.Cycles
			cand.MessagesDone += res.Stats.Messages
			if verr := verifySnapshotMultiset(cand, want, true); verr != nil {
				err = corruptionError("sort checkpoint", verr)
			} else {
				if serr := store.Save(cand); serr != nil {
					return nil, nil, serr
				}
				snap = cand
				accepted.Add(&res.Stats)
				hist.record(snap, &accepted)
				continue
			}
		}
		if err == nil {
			// Final segment done: convert and verify the outputs.
			outputs := make([][]int64, p)
			for i, l := range outs {
				o := make([]int64, len(l))
				for j, e := range l {
					if negate {
						o[j] = -e.V
					} else {
						o[j] = e.V
					}
				}
				outputs[i] = o
			}
			if verr := verifier(inputs, outputs, opts.Order); verr != nil {
				// The accepted checkpoints may carry the same silent
				// corruption (multiset conservation does not check
				// positions): fall back to a full restart.
				err = corruptionError("sort", verr)
				lastErr = err
				snap.ReplayedCycles += res.Stats.Cycles
				snap.Attempt++
				if snap.Attempt >= maxAtt {
					finishReport()
					return nil, rep, lastErr
				}
				retryBackoff(pol, snap.Attempt)
				needSync = true
				if rerr := restart(); rerr != nil {
					return nil, nil, rerr
				}
				continue
			}
			accepted.Add(&res.Stats)
			snap.CyclesDone += res.Stats.Cycles
			snap.MessagesDone += res.Stats.Messages
			finishReport()
			return outputs, rep, nil
		}

		// Segment failed: the cycles it burned are replayed work.
		lastErr = err
		if res != nil {
			snap.ReplayedCycles += res.Stats.Cycles
		}
		if !mcb.Retryable(err) {
			finishReport()
			return nil, rep, err
		}
		snap.Attempt++
		if snap.Attempt >= maxAtt {
			finishReport()
			return nil, rep, lastErr
		}
		retryBackoff(pol, snap.Attempt)
		needSync = true

		if suspects := outageSuspects(pol, plan, res); len(suspects) > 0 && cs.k()-len(suspects) >= 1 {
			// The failure is attributable to scripted channel outages:
			// drop the dead channels and re-run on the k' survivors. The
			// Columnsort column structure depends on k, so the degraded
			// sort restarts from phase 0.
			cs.degrade(suspects)
			rep.DegradedK = cs.k()
			rep.DeadChannels = append([]int(nil), cs.deadOrig...)
			hg = computeGroupTable(cards, cs.k())
			segs = sortSegments(hg.G)
			if rerr := restart(); rerr != nil {
				return nil, nil, rerr
			}
			continue
		}

		// Resume from the last accepted boundary: only the failed segment
		// is replayed.
		snap.Resumes++
		rep.CheckpointPhase = snap.PhaseName
	}
}

// sortSnapshotUsable validates an on-disk snapshot against the run being
// resumed: kind, algorithm, shape, order and cardinalities must match, and
// the snapshot's elements must be drawn from the input multiset (exactly,
// for a sort). K may be smaller than the run's K (a recorded degradation,
// restored separately via Aux).
func sortSnapshotUsable(s *checkpoint.Snapshot, algo Algorithm, p, k, order int, cards []int, want map[elemKey]int) error {
	switch {
	case s.Kind != "sort":
		return fmt.Errorf("snapshot kind %q, want sort", s.Kind)
	case s.Algo != algo.String():
		return fmt.Errorf("snapshot algorithm %q, want %q", s.Algo, algo)
	case s.P != p:
		return fmt.Errorf("snapshot has p=%d, run has p=%d", s.P, p)
	case s.K+len(s.Aux) != k:
		return fmt.Errorf("snapshot has k=%d with %d dead channels, run has k=%d", s.K, len(s.Aux), k)
	case s.Order != order:
		return fmt.Errorf("snapshot order %d, run order %d", s.Order, order)
	case !equalCards(s.Cards, cards):
		return fmt.Errorf("snapshot cardinalities differ from the inputs")
	case s.Phase >= len(sortSegments(computeGroupTable(cards, s.K).G)):
		return fmt.Errorf("snapshot phase %d out of range", s.Phase)
	}
	return verifySnapshotMultiset(s, want, true)
}

// errNotSegmentable reports that the resolved algorithm has no segmented
// execution path; SortWithRetry falls back to whole-run attempts.
var errNotSegmentable = fmt.Errorf("core: algorithm not segmentable")
