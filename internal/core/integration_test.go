package core

import (
	"testing"
	"time"

	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
	"mcbnet/internal/seq"
)

// These tests exercise whole stacks end to end: the paper's algorithms as
// node-level subroutines, composed protocols, and — the deepest stack — the
// sorting algorithm running unchanged on a *simulated* MCB network hosted on
// a smaller real one (Section 2's simulation theorem carrying Section 5's
// algorithm).

func TestSortOnSimulatedNetwork(t *testing.T) {
	// Virtual MCB(8, 4) sorting, hosted on MCB(2, 2): q = 4 virtual
	// processors per host, 2 virtual channels per host channel.
	const pv, kv = 8, 4
	r := dist.NewRNG(42)
	card := dist.RandomComposition(r, 96, pv)
	inputs := dist.Values(r, card)
	outputs := make([][]int64, pv)

	res, err := mcb.SimulateUniform(
		mcb.Config{P: 2, K: 2, StallTimeout: 30 * time.Second}, pv, kv,
		func(v *mcb.VProc) {
			outputs[v.ID()] = SortNode(v, inputs[v.ID()], AlgoColumnsortGather)
		})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, inputs, outputs, Descending, "simulated-sort")
	if res.Stats.Cycles == 0 || res.Stats.Messages == 0 {
		t.Fatal("simulation consumed no host resources?")
	}
	t.Logf("virtual sort cost %d host cycles, %d host messages", res.Stats.Cycles, res.Stats.Messages)
}

func TestSelectOnSimulatedNetwork(t *testing.T) {
	const pv, kv = 4, 2
	r := dist.NewRNG(43)
	inputs := dist.Values(r, dist.Even(64, pv))
	want := kthLargestRef(inputs, 32)
	got := make([]int64, pv)
	_, err := mcb.SimulateUniform(
		mcb.Config{P: 2, K: 1, StallTimeout: 30 * time.Second}, pv, kv,
		func(v *mcb.VProc) {
			got[v.ID()] = SelectNode(v, inputs[v.ID()], 32, 0)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != want {
			t.Fatalf("vproc %d got %d, want %d", i, g, want)
		}
	}
}

func TestNodeAPIsInsideOneProgram(t *testing.T) {
	// Compose several collective subroutines sequentially inside a single
	// network program: max, min, rank, then a sort.
	const p, k = 8, 4
	r := dist.NewRNG(44)
	inputs := dist.Values(r, dist.NearlyEven(100, p))
	flat := dist.Flatten(inputs)
	wantSorted := append([]int64(nil), flat...)
	seq.SortInt64Desc(wantSorted)
	wantMax, wantMin := wantSorted[0], wantSorted[len(wantSorted)-1]

	type result struct {
		max, min int64
		rankMax  int
		sorted   []int64
	}
	results := make([]result, p)
	_, err := mcb.RunUniform(mcb.Config{P: p, K: k, StallTimeout: 30 * time.Second}, func(pr mcb.Node) {
		id := pr.ID()
		results[id].max = MaxNode(pr, inputs[id])
		results[id].min = MinNode(pr, inputs[id])
		results[id].rankMax = RankOfNode(pr, inputs[id], results[id].max)
		results[id].sorted = SortNode(pr, inputs[id], AlgoColumnsortVirtual)
	})
	if err != nil {
		t.Fatal(err)
	}
	outputs := make([][]int64, p)
	for i, res := range results {
		if res.max != wantMax {
			t.Errorf("proc %d max = %d, want %d", i, res.max, wantMax)
		}
		if res.min != wantMin {
			t.Errorf("proc %d min = %d, want %d", i, res.min, wantMin)
		}
		if res.rankMax != 1 {
			t.Errorf("proc %d rank of max = %d, want 1", i, res.rankMax)
		}
		outputs[i] = res.sorted
	}
	checkSorted(t, inputs, outputs, Descending, "composed")
}

func TestRankOfNodeValues(t *testing.T) {
	const p, k = 4, 2
	inputs := [][]int64{{10, 40}, {20}, {30, 50}, {60}}
	// Descending ranks: 60->1, 50->2, 40->3, 30->4, 20->5, 10->6.
	// RankOf(35) = 1 + #{>35} = 4.
	got := make([]int, p)
	_, err := mcb.RunUniform(mcb.Config{P: p, K: k}, func(pr mcb.Node) {
		got[pr.ID()] = RankOfNode(pr, inputs[pr.ID()], 35)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != 4 {
			t.Errorf("proc %d RankOf(35) = %d, want 4", i, g)
		}
	}
}

func TestTraceConsistency(t *testing.T) {
	// Full-trace integration check: trace message count equals Stats, no
	// cycle carries more writes than channels, and every write's channel is
	// within range.
	r := dist.NewRNG(45)
	inputs := dist.Values(r, dist.RandomComposition(r, 120, 6))
	_, rep, err := Sort(inputs, SortOptions{K: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var msgs int64
	for _, cyc := range rep.Trace.Cycles {
		if len(cyc.Writes) > 3 {
			t.Fatalf("cycle %d has %d writes > k", cyc.Cycle, len(cyc.Writes))
		}
		seen := map[int]bool{}
		for _, w := range cyc.Writes {
			if w.Ch < 0 || w.Ch >= 3 {
				t.Fatalf("write on channel %d", w.Ch)
			}
			if seen[w.Ch] {
				t.Fatalf("two writes on channel %d in cycle %d", w.Ch, cyc.Cycle)
			}
			seen[w.Ch] = true
			msgs++
		}
	}
	if msgs != rep.Stats.Messages {
		t.Fatalf("trace has %d messages, stats say %d", msgs, rep.Stats.Messages)
	}
	if int64(len(rep.Trace.Cycles)) != rep.Stats.Cycles {
		t.Fatalf("trace has %d cycles, stats say %d", len(rep.Trace.Cycles), rep.Stats.Cycles)
	}
	if err := mcb.ValidateTrace(rep.Trace, 6, 3); err != nil {
		t.Fatalf("full-run trace failed model validation: %v", err)
	}
}

func TestSortThenSelectAgree(t *testing.T) {
	// Cross-check the two primary contributions against each other on the
	// same workload.
	r := dist.NewRNG(46)
	inputs := dist.Values(r, dist.Geometric(400, 10))
	outputs, _, err := Sort(inputs, SortOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	flat := dist.Flatten(outputs) // descending by construction
	for _, d := range []int{1, 57, 200, 399, 400} {
		got, _, err := Select(inputs, SelectOptions{K: 4, D: d})
		if err != nil {
			t.Fatal(err)
		}
		if got != flat[d-1] {
			t.Errorf("d=%d: select %d, sort says %d", d, got, flat[d-1])
		}
	}
}
