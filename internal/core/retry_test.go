package core

import (
	"errors"
	"testing"
	"time"

	"mcbnet/internal/mcb"
	"mcbnet/internal/seq"
)

func retrySortOpts(k int, plan *mcb.FaultPlan, attempts int) SortOptions {
	return SortOptions{
		K:            k,
		MaxCycles:    1 << 20,
		StallTimeout: 20 * time.Second,
		Faults:       plan,
		Retry:        mcb.RetryPolicy{MaxAttempts: attempts},
	}
}

// TestSortWithRetryVerifierDrivesAttempts: the retry loop re-executes when
// the verifier rejects, and the accepted report carries the attempt count.
func TestSortWithRetryVerifierDrivesAttempts(t *testing.T) {
	inputs := [][]int64{{3, 1}, {4, 1}, {5, 9}, {2, 6}}
	calls := 0
	o := retrySortOpts(2, nil, 4)
	o.Verifier = func(in, out [][]int64, order Order) error {
		calls++
		if calls < 3 {
			return errors.New("synthetic rejection")
		}
		return VerifySort(in, out, order)
	}
	outs, rep, err := SortWithRetry(inputs, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d verifier calls=%d, want 3 and 3", rep.Attempts, calls)
	}
	checkSorted(t, inputs, outs, Descending, "verifier-driven retry")
}

// TestSortWithRetryRecoversFromFaults: under a low stochastic fault rate
// some seeds fault the first attempt and recover on a later one. The seed
// scan is deterministic — the engine replays each (seed, plan) identically —
// so this asserts real fault recovery, not luck.
func TestSortWithRetryRecoversFromFaults(t *testing.T) {
	inputs := make([][]int64, 8)
	for i := range inputs {
		for j := 0; j < 8; j++ {
			inputs[i] = append(inputs[i], int64((i*37+j*11)%64))
		}
	}
	found := false
	for seed := uint64(1); seed <= 60 && !found; seed++ {
		plan := &mcb.FaultPlan{Seed: seed, DropRate: 0.002, CorruptRate: 0.002, Checksum: true}
		outs, rep, err := SortWithRetry(inputs, retrySortOpts(4, plan, 8))
		if err != nil {
			// This seed faulted all 8 attempts; the error must be typed.
			if !mcb.Retryable(err) {
				t.Fatalf("seed %d: exhausted retries with a non-retryable error: %v", seed, err)
			}
			continue
		}
		if rep.Attempts > 1 {
			checkSorted(t, inputs, outs, Descending, "fault recovery")
			found = true
		}
	}
	if !found {
		t.Fatal("no seed in 1..60 produced a faulted-then-recovered sort (attempts > 1)")
	}
}

// TestSortWithRetryNonRetryableImmediate: validation errors recur
// deterministically and must not burn attempts.
func TestSortWithRetryNonRetryableImmediate(t *testing.T) {
	_, _, err := SortWithRetry([][]int64{{1}}, retrySortOpts(0, nil, 5))
	if err == nil {
		t.Fatal("expected a validation error for K=0")
	}
	if mcb.Retryable(err) {
		t.Fatalf("validation error classified retryable: %v", err)
	}
}

// TestSelectWithRetryGracefulDegradation: a scripted crash kills a
// processor; with DegradeOnCrash the next attempt gives its elements up and
// answers the rank over the survivors.
func TestSelectWithRetryGracefulDegradation(t *testing.T) {
	inputs := [][]int64{
		{90, 10, 55},
		{70, 30},
		{100, 20, 60, 40}, // crashes: these elements are lost
		{80, 50},
		{35, 65},
	}
	const d = 4
	o := SelectOptions{
		K:            2,
		D:            d,
		MaxCycles:    1 << 20,
		StallTimeout: 20 * time.Second,
		Faults:       &mcb.FaultPlan{Seed: 1, Crashes: []mcb.Crash{{Proc: 2, Cycle: 1}}},
		Retry:        mcb.RetryPolicy{MaxAttempts: 3, DegradeOnCrash: true},
	}
	val, rep, err := SelectWithRetry(inputs, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (crash, then degraded success)", rep.Attempts)
	}
	if len(rep.DeadProcs) != 1 || rep.DeadProcs[0] != 2 {
		t.Fatalf("DeadProcs = %v, want [2]", rep.DeadProcs)
	}
	// Expected: rank d of the survivors' multiset.
	var survivors []int64
	for i, in := range inputs {
		if i != 2 {
			survivors = append(survivors, in...)
		}
	}
	seq.SortInt64Desc(survivors)
	if want := survivors[d-1]; val != want {
		t.Fatalf("degraded selection = %d, want rank %d of survivors = %d", val, d, want)
	}
}

// TestSelectWithRetryDegradationLosesTooMuch: when the crash takes more
// elements than the requested rank leaves room for, the degradation path
// must fail loudly (typed, wrapping the CrashError) instead of answering a
// different question.
func TestSelectWithRetryDegradationLosesTooMuch(t *testing.T) {
	inputs := [][]int64{{5, 3}, {9, 1, 7, 2}, {4, 6}}
	o := SelectOptions{
		K:            1,
		D:            6, // survivors hold only 4 elements after the crash
		MaxCycles:    1 << 20,
		StallTimeout: 20 * time.Second,
		Faults:       &mcb.FaultPlan{Seed: 1, Crashes: []mcb.Crash{{Proc: 1, Cycle: 0}}},
		Retry:        mcb.RetryPolicy{MaxAttempts: 3, DegradeOnCrash: true},
	}
	_, _, err := SelectWithRetry(inputs, o)
	if err == nil {
		t.Fatal("expected the degradation to refuse a rank beyond the survivors")
	}
	if !errors.Is(err, mcb.ErrAborted) {
		t.Fatalf("degradation failure must stay in the typed taxonomy, got %v", err)
	}
	var ce *mcb.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("degradation failure must wrap the causing CrashError, got %v", err)
	}
}

// TestSelectWithRetryWithoutDegradeCrashFails: the same crash without
// DegradeOnCrash exhausts the attempts (the scripted crash recurs) and
// surfaces the CrashError.
func TestSelectWithRetryWithoutDegradeCrashFails(t *testing.T) {
	inputs := [][]int64{{5, 3}, {9, 1}, {4, 6}}
	o := SelectOptions{
		K:            1,
		D:            2,
		MaxCycles:    1 << 20,
		StallTimeout: 20 * time.Second,
		Faults:       &mcb.FaultPlan{Seed: 1, Crashes: []mcb.Crash{{Proc: 1, Cycle: 0}}},
		Retry:        mcb.RetryPolicy{MaxAttempts: 2},
	}
	_, rep, err := SelectWithRetry(inputs, o)
	var ce *mcb.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want CrashError", err)
	}
	if rep == nil || rep.Attempts != 2 {
		t.Fatalf("report = %+v, want 2 exhausted attempts", rep)
	}
}

func TestMergeProcs(t *testing.T) {
	got := mergeProcs([]int{3, 1}, []int{2, 1, 5})
	want := []int{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("mergeProcs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeProcs = %v, want %v", got, want)
		}
	}
}

func TestEmptyProcsCopies(t *testing.T) {
	in := [][]int64{{1}, {2}, {3}}
	out := emptyProcs(in, []int{1, 7})
	if len(out) != 3 || out[1] != nil || len(in[1]) != 1 {
		t.Fatalf("emptyProcs mutated the input or wrong shape: in=%v out=%v", in, out)
	}
}
