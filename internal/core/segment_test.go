package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mcbnet/internal/checkpoint"
	"mcbnet/internal/mcb"
)

// Tests of the segmented (checkpointed) execution paths: the host-side group
// table replica, fault-free equivalence with the monolithic paths, snapshot
// determinism, and cross-process resume through an on-disk store.

// TestComputeGroupTableMatchesProtocol cross-checks the host-side group-table
// replica against the real formGroups network protocol for a spread of
// shapes, including empty processors and single-channel networks.
func TestComputeGroupTableMatchesProtocol(t *testing.T) {
	r := rand.New(rand.NewSource(0x6709))
	for trial := 0; trial < 60; trial++ {
		p := 2 + r.Intn(7)
		k := 1 + r.Intn(p)
		cards := make([]int, p)
		n := 0
		for i := range cards {
			cards[i] = r.Intn(9)
			n += cards[i]
		}
		if n == 0 {
			cards[r.Intn(p)] = 1 + r.Intn(8)
		}

		hg := computeGroupTable(cards, k)

		infos := make([]*groupInfo, p)
		progs := make([]func(mcb.Node), p)
		for i := range progs {
			id := i
			progs[i] = func(pr mcb.Node) {
				infos[id] = formGroups(pr, cards[id], pr.K())
			}
		}
		if _, err := mcb.Run(mcb.Config{P: p, K: k}, progs); err != nil {
			t.Fatalf("trial %d: formGroups run failed: %v", trial, err)
		}

		for id, g := range infos {
			h := hg.infoFor(id)
			if g.n != h.n || g.nMax != h.nMax || g.prefix != h.prefix ||
				g.myGroup != h.myGroup || g.myOffset != h.myOffset {
				t.Fatalf("trial %d (cards=%v k=%d): proc %d: protocol %+v, host %+v",
					trial, cards, k, id, g, h)
			}
			if !reflect.DeepEqual(g.groups, h.groups) {
				t.Fatalf("trial %d (cards=%v k=%d): groups: protocol %v, host %v",
					trial, cards, k, g.groups, h.groups)
			}
			if got := g.paddedColLen(); got != hg.m {
				t.Fatalf("trial %d: padded column length: protocol %d, host %d", trial, got, hg.m)
			}
		}
	}
}

// TestCheckpointedSortMatchesPlain runs the segmented sort without faults
// against the monolithic sort across shapes (including the single-column
// degenerate) and both orders, requiring identical outputs and a snapshot
// saved at every phase boundary.
func TestCheckpointedSortMatchesPlain(t *testing.T) {
	r := rand.New(rand.NewSource(0x5E65))
	for trial := 0; trial < 24; trial++ {
		p := 2 + r.Intn(6)
		k := 1 + r.Intn(p)
		inputs := chaosInputs(r, p, p+r.Intn(50))
		order := Descending
		if trial%2 == 1 {
			order = Ascending
		}
		opts := SortOptions{K: k, Order: order, Algorithm: AlgoColumnsortGather}

		want, wantRep, err := Sort(inputs, opts)
		if err != nil {
			t.Fatalf("trial %d: plain sort failed: %v", trial, err)
		}

		store := checkpoint.NewMem()
		copts := opts
		copts.Checkpoints = store
		got, rep, err := SortWithRetry(inputs, copts)
		if err != nil {
			t.Fatalf("trial %d: checkpointed sort failed: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (p=%d k=%d): outputs differ\nplain: %v\nckpt:  %v", trial, p, k, want, got)
		}
		if rep.Attempts != 1 || rep.Resumes != 0 || rep.ReplayedCycles != 0 {
			t.Fatalf("trial %d: fault-free run reports recovery: %+v", trial, rep)
		}
		if rep.Columns != wantRep.Columns || rep.ColumnLen != wantRep.ColumnLen {
			t.Fatalf("trial %d: shape mismatch: plain (%d,%d), ckpt (%d,%d)",
				trial, wantRep.Columns, wantRep.ColumnLen, rep.Columns, rep.ColumnLen)
		}
		// One fresh anchor plus one snapshot per non-terminal segment.
		segs := len(sortSegments(rep.Columns))
		if got, want := len(store.History()), segs; got != want {
			t.Fatalf("trial %d: %d snapshots saved, want %d (segments=%d)", trial, got, want, segs)
		}
		// The segmented run costs exactly the same cycles and messages as the
		// monolithic one (segmentation moves phase boundaries, not traffic).
		if rep.Stats.Cycles != wantRep.Stats.Cycles || rep.Stats.Messages != wantRep.Stats.Messages {
			t.Fatalf("trial %d: cost differs: plain %d cycles/%d msgs, ckpt %d cycles/%d msgs",
				trial, wantRep.Stats.Cycles, wantRep.Stats.Messages, rep.Stats.Cycles, rep.Stats.Messages)
		}
	}
}

// TestCheckpointedSelectMatchesPlain mirrors the sort equivalence test for
// the filtering selection.
func TestCheckpointedSelectMatchesPlain(t *testing.T) {
	r := rand.New(rand.NewSource(0xDEC1))
	for trial := 0; trial < 24; trial++ {
		p := 2 + r.Intn(6)
		k := 1 + r.Intn(p)
		inputs := chaosInputs(r, p, p+r.Intn(60))
		n := total(inputs)
		opts := SelectOptions{K: k, D: 1 + r.Intn(n)}

		want, wantRep, err := Select(inputs, opts)
		if err != nil {
			t.Fatalf("trial %d: plain select failed: %v", trial, err)
		}

		copts := opts
		copts.Checkpoints = checkpoint.NewMem()
		got, rep, err := SelectWithRetry(inputs, copts)
		if err != nil {
			t.Fatalf("trial %d: checkpointed select failed: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d (p=%d k=%d d=%d): plain %d, checkpointed %d", trial, p, k, opts.D, want, got)
		}
		if rep.Attempts != 1 || rep.Resumes != 0 || rep.ReplayedCycles != 0 {
			t.Fatalf("trial %d: fault-free run reports recovery: %+v", trial, rep)
		}
		if rep.Stats.Cycles != wantRep.Stats.Cycles || rep.Stats.Messages != wantRep.Stats.Messages {
			t.Fatalf("trial %d: cost differs: plain %d cycles/%d msgs, ckpt %d cycles/%d msgs",
				trial, wantRep.Stats.Cycles, wantRep.Stats.Messages, rep.Stats.Cycles, rep.Stats.Messages)
		}
		if rep.FilterPhases != wantRep.FilterPhases {
			t.Fatalf("trial %d: filter phases: plain %d, ckpt %d", trial, wantRep.FilterPhases, rep.FilterPhases)
		}
	}
}

// TestCheckpointedSnapshotsDeterministic runs the same checkpointed sort
// under different GOMAXPROCS settings and requires byte-identical snapshot
// streams: goroutine scheduling must not leak into the recovery state.
func TestCheckpointedSnapshotsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(0x60D1))
	inputs := chaosInputs(r, 5, 40)
	opts := SortOptions{K: 3, Algorithm: AlgoColumnsortGather}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var histories [][][]byte
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		store := checkpoint.NewMem()
		copts := opts
		copts.Checkpoints = store
		if _, _, err := SortWithRetry(inputs, copts); err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		histories = append(histories, store.History())
	}
	if len(histories[0]) != len(histories[1]) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(histories[0]), len(histories[1]))
	}
	for i := range histories[0] {
		if !reflect.DeepEqual(histories[0][i], histories[1][i]) {
			t.Fatalf("snapshot %d differs between GOMAXPROCS settings", i)
		}
	}
}

// permanentOutage scripts a channel dying at cycle from and never healing.
func permanentOutage(ch int, from int64) *mcb.FaultPlan {
	return &mcb.FaultPlan{Outages: []mcb.Outage{{Ch: ch, From: from, To: 1 << 50}}}
}

// TestCheckpointedSortResumesAcrossStores simulates the kill-and-resume
// story inside one test process: invocation 1 (its own DirStore handle)
// fails mid-run out of attempts and leaves its boundary snapshots on disk;
// invocation 2, with a fresh handle on the same directory and Resume set,
// must finish from the stored state — skipping the accepted prefix — and
// produce exactly the monolithic answer.
func TestCheckpointedSortResumesAcrossStores(t *testing.T) {
	r := rand.New(rand.NewSource(0x0D15C))
	inputs := chaosInputs(r, 6, 60)
	opts := SortOptions{K: 3, Algorithm: AlgoColumnsortGather, StallTimeout: 15 * time.Second}

	want, wantRep, err := Sort(inputs, opts)
	if err != nil {
		t.Fatalf("plain sort failed: %v", err)
	}
	fullCycles := wantRep.Stats.Cycles

	dir := t.TempDir()
	store1, err := checkpoint.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	o1 := opts
	o1.Checkpoints = store1
	o1.Faults = permanentOutage(1, fullCycles/2)
	o1.Retry = mcb.RetryPolicy{MaxAttempts: 1}
	if _, rep1, err := SortWithRetry(inputs, o1); err == nil {
		t.Fatalf("invocation 1 was meant to die mid-run (outage from cycle %d), but succeeded: %+v", fullCycles/2, rep1)
	}

	store2, err := checkpoint.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	o2 := opts
	o2.Checkpoints = store2
	o2.Resume = true
	got, rep2, err := SortWithRetry(inputs, o2)
	if err != nil {
		t.Fatalf("resumed invocation failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed outputs differ from the uninterrupted sort\nwant: %v\ngot:  %v", want, got)
	}
	if rep2.Stats.Cycles >= fullCycles {
		t.Fatalf("resumed invocation executed %d cycles, a full run costs %d — it did not use the checkpoints", rep2.Stats.Cycles, fullCycles)
	}
	if rep2.CheckpointPhase == "" {
		t.Fatalf("resumed invocation reports no checkpoint phase: %+v", rep2)
	}
	if rep2.Resumes == 0 {
		t.Fatalf("cross-process continuation was not counted as a resume: %+v", rep2)
	}
}

// TestCheckpointedSortIgnoresForeignSnapshot: resuming against a store
// populated by a different input set must fall back to a fresh (correct)
// run, not resurrect the foreign state.
func TestCheckpointedSortIgnoresForeignSnapshot(t *testing.T) {
	r := rand.New(rand.NewSource(0xF0E1))
	foreign := chaosInputs(r, 5, 40)
	inputs := chaosInputs(r, 5, 47)

	dir := t.TempDir()
	store1, err := checkpoint.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := SortOptions{K: 2, Algorithm: AlgoColumnsortGather, Checkpoints: store1}
	if _, _, err := SortWithRetry(foreign, o); err != nil {
		t.Fatalf("foreign run failed: %v", err)
	}
	// The foreign run finished; re-fail it artificially by re-saving its
	// snapshots is unnecessary — its store still holds boundary snapshots.

	store2, err := checkpoint.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	o2 := SortOptions{K: 2, Algorithm: AlgoColumnsortGather, Checkpoints: store2, Resume: true}
	got, rep, err := SortWithRetry(inputs, o2)
	if err != nil {
		t.Fatalf("sort over foreign store failed: %v", err)
	}
	checkSorted(t, inputs, got, Descending, "foreign-store sort")
	if rep.CheckpointPhase != "" || rep.Resumes != 0 {
		t.Fatalf("run resumed from a foreign snapshot: %+v", rep)
	}
}

// TestCheckpointedSelectResumesAcrossStores is the selection variant of the
// two-invocation resume.
func TestCheckpointedSelectResumesAcrossStores(t *testing.T) {
	r := rand.New(rand.NewSource(0x0D15E))
	inputs := chaosInputs(r, 8, 120)
	n := total(inputs)
	opts := SelectOptions{K: 2, D: n / 2, StallTimeout: 15 * time.Second}

	want, wantRep, err := Select(inputs, opts)
	if err != nil {
		t.Fatalf("plain select failed: %v", err)
	}
	fullCycles := wantRep.Stats.Cycles

	dir := t.TempDir()
	store1, err := checkpoint.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	o1 := opts
	o1.Checkpoints = store1
	o1.Faults = permanentOutage(0, fullCycles/2)
	o1.Retry = mcb.RetryPolicy{MaxAttempts: 1}
	if _, _, err := SelectWithRetry(inputs, o1); err == nil {
		t.Fatalf("invocation 1 was meant to die mid-run (outage from cycle %d), but succeeded", fullCycles/2)
	}

	store2, err := checkpoint.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	o2 := opts
	o2.Checkpoints = store2
	o2.Resume = true
	got, rep2, err := SelectWithRetry(inputs, o2)
	if err != nil {
		t.Fatalf("resumed invocation failed: %v", err)
	}
	if got != want {
		t.Fatalf("resumed selection answered %d, uninterrupted answered %d", got, want)
	}
	if rep2.Stats.Cycles >= fullCycles {
		t.Fatalf("resumed invocation executed %d cycles, a full run costs %d — it did not use the checkpoints", rep2.Stats.Cycles, fullCycles)
	}
	if rep2.Resumes == 0 {
		t.Fatalf("cross-process continuation was not counted as a resume: %+v", rep2)
	}
}
