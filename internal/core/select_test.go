package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mcbnet/internal/dist"
	"mcbnet/internal/seq"
)

func selOpts(k, d int) SelectOptions {
	return SelectOptions{K: k, D: d, StallTimeout: 20 * time.Second}
}

// kthLargestRef is the reference answer on the flattened multiset.
func kthLargestRef(inputs [][]int64, d int) int64 {
	flat := dist.Flatten(inputs)
	seq.SortInt64Desc(flat)
	return flat[d-1]
}

func TestSelectTiny(t *testing.T) {
	inputs := [][]int64{{9, 3}, {7}, {1, 5, 4}}
	for d := 1; d <= 6; d++ {
		got, _, err := Select(inputs, selOpts(2, d))
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Errorf("d=%d: got %d, want %d", d, got, want)
		}
	}
}

func TestSelectSingleProcessor(t *testing.T) {
	inputs := [][]int64{{5, 2, 8, 1}}
	got, _, err := Select(inputs, selOpts(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("got %d, want 5", got)
	}
}

func TestSelectMedianVariousConfigs(t *testing.T) {
	r := dist.NewRNG(201)
	configs := []struct{ n, p, k int }{
		{64, 8, 2}, {256, 16, 4}, {1000, 16, 4}, {777, 13, 3},
		{2048, 32, 8}, {100, 100, 10},
	}
	for _, c := range configs {
		card := dist.NearlyEven(c.n, c.p)
		inputs := dist.Values(r, card)
		d := (c.n + 1) / 2
		got, rep, err := Select(inputs, selOpts(c.k, d))
		if err != nil {
			t.Fatalf("n=%d p=%d k=%d: %v", c.n, c.p, c.k, err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Errorf("n=%d p=%d k=%d: got %d, want %d", c.n, c.p, c.k, got, want)
		}
		if rep.FilterPhases == 0 && c.n > c.p {
			t.Errorf("n=%d: expected at least one filtering phase", c.n)
		}
	}
}

func TestSelectUnevenAndDuplicates(t *testing.T) {
	r := dist.NewRNG(202)
	for _, card := range []dist.Cardinalities{
		dist.OneHeavy(500, 10, 0.6),
		dist.Geometric(300, 8),
		dist.RandomComposition(r, 400, 12),
	} {
		n := card.N()
		inputs := dist.ValuesWithDuplicates(r, card)
		for _, d := range []int{1, n / 4, (n + 1) / 2, n - 1, n} {
			got, _, err := Select(inputs, selOpts(4, d))
			if err != nil {
				t.Fatalf("d=%d: %v", d, err)
			}
			if want := kthLargestRef(inputs, d); got != want {
				t.Errorf("d=%d: got %d, want %d", d, got, want)
			}
		}
	}
}

func TestSelectExtremeRanks(t *testing.T) {
	r := dist.NewRNG(203)
	inputs := dist.Values(r, dist.Even(256, 8))
	for _, d := range []int{1, 2, 255, 256} {
		got, _, err := Select(inputs, selOpts(4, d))
		if err != nil {
			t.Fatal(err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Errorf("d=%d: got %d, want %d", d, got, want)
		}
	}
}

func TestSelectSortBaseline(t *testing.T) {
	r := dist.NewRNG(204)
	inputs := dist.Values(r, dist.RandomComposition(r, 300, 8))
	d := 150
	got, rep, err := Select(inputs, SelectOptions{K: 4, D: d, Algorithm: SelSortBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if want := kthLargestRef(inputs, d); got != want {
		t.Errorf("got %d, want %d", got, want)
	}
	if rep.Algorithm != SelSortBaseline {
		t.Errorf("algorithm = %v", rep.Algorithm)
	}
}

func TestSelectFilteringBeatsBaselineOnMessages(t *testing.T) {
	// Section 8's motivation: filtering uses O(p log(kn/p)) messages versus
	// Theta(n) for sorting.
	r := dist.NewRNG(205)
	n, p, k := 16384, 16, 4
	inputs := dist.Values(r, dist.Even(n, p))
	d := n / 2
	_, repF, err := Select(inputs, selOpts(k, d))
	if err != nil {
		t.Fatal(err)
	}
	_, repS, err := Select(inputs, SelectOptions{K: k, D: d, Algorithm: SelSortBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if repF.Stats.Messages*4 > repS.Stats.Messages {
		t.Errorf("filtering %d messages not well below baseline %d",
			repF.Stats.Messages, repS.Stats.Messages)
	}
	if repF.Stats.Cycles >= repS.Stats.Cycles {
		t.Errorf("filtering %d cycles not below baseline %d",
			repF.Stats.Cycles, repS.Stats.Cycles)
	}
}

func TestSelectPurgeFractionInvariant(t *testing.T) {
	// Figure 2 / Section 8.2: every filtering phase purges at least 1/4 of
	// the candidates.
	r := dist.NewRNG(206)
	inputs := dist.Values(r, dist.Even(4096, 16))
	_, rep, err := Select(inputs, selOpts(4, 2048))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilterPhases < 2 {
		t.Fatalf("expected multiple filtering phases, got %d", rep.FilterPhases)
	}
	for i, f := range rep.PurgeFractions {
		if f < 0.25-1e-9 {
			t.Errorf("phase %d purged only %.3f < 1/4 (candidates %v)", i, f, rep.Candidates)
		}
	}
	// Phase count bound: O(log_{4/3}(n/m*)).
	bound := int(math.Ceil(math.Log(float64(4096))/math.Log(4.0/3.0))) + 2
	if rep.FilterPhases > bound {
		t.Errorf("%d filtering phases > bound %d", rep.FilterPhases, bound)
	}
}

func TestSelectComplexity(t *testing.T) {
	// Cor 7: Theta(p log(kn/p)) messages and Theta((p/k) log(kn/p)) cycles.
	r := dist.NewRNG(207)
	for _, c := range []struct{ n, p, k int }{
		{4096, 16, 4}, {16384, 16, 4}, {16384, 64, 8},
	} {
		inputs := dist.Values(r, dist.Even(c.n, c.p))
		_, rep, err := Select(inputs, selOpts(c.k, c.n/2))
		if err != nil {
			t.Fatal(err)
		}
		logTerm := math.Log2(float64(c.k*c.n) / float64(c.p))
		msgBound := int64(40 * float64(c.p) * logTerm)
		cycBound := int64(60 * (float64(c.p)/float64(c.k) + math.Log2(float64(c.p)) + float64(c.k)) * logTerm)
		if rep.Stats.Messages > msgBound {
			t.Errorf("n=%d p=%d k=%d: %d messages > %d", c.n, c.p, c.k, rep.Stats.Messages, msgBound)
		}
		if rep.Stats.Cycles > cycBound {
			t.Errorf("n=%d p=%d k=%d: %d cycles > %d", c.n, c.p, c.k, rep.Stats.Cycles, cycBound)
		}
	}
}

func TestSelectThresholdOverride(t *testing.T) {
	r := dist.NewRNG(208)
	inputs := dist.Values(r, dist.Even(512, 8))
	// Large threshold: no filtering, straight to collection.
	got, rep, err := Select(inputs, SelectOptions{K: 2, D: 100, Threshold: 512})
	if err != nil {
		t.Fatal(err)
	}
	if want := kthLargestRef(inputs, 100); got != want {
		t.Errorf("got %d, want %d", got, want)
	}
	if rep.FilterPhases != 0 {
		t.Errorf("expected 0 filtering phases, got %d", rep.FilterPhases)
	}
}

func TestSelectValidation(t *testing.T) {
	if _, _, err := Select(nil, selOpts(1, 1)); err == nil {
		t.Error("expected error for no processors")
	}
	if _, _, err := Select([][]int64{{1}}, selOpts(1, 0)); err == nil {
		t.Error("expected error for D=0")
	}
	if _, _, err := Select([][]int64{{1}}, selOpts(1, 2)); err == nil {
		t.Error("expected error for D>n")
	}
	if _, _, err := Select([][]int64{{}, {}}, selOpts(1, 1)); err == nil {
		t.Error("expected error for an entirely empty set")
	}
}

func TestSelectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := dist.NewRNG(seed)
		p := 2 + r.Intn(8)
		n := p + r.Intn(200)
		k := 1 + r.Intn(p)
		card := dist.RandomComposition(r, n, p)
		var inputs [][]int64
		if seed%2 == 0 {
			inputs = dist.Values(r, card)
		} else {
			inputs = dist.ValuesWithDuplicates(r, card)
		}
		d := 1 + r.Intn(n)
		got, _, err := Select(inputs, selOpts(k, d))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return got == kthLargestRef(inputs, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectDeterministic(t *testing.T) {
	r := dist.NewRNG(209)
	inputs := dist.Values(r, dist.Even(1024, 16))
	_, a, err := Select(inputs, selOpts(4, 512))
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Select(inputs, selOpts(4, 512))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Messages != b.Stats.Messages {
		t.Errorf("nondeterministic: %v vs %v", a.Stats, b.Stats)
	}
}

func TestMultiSelect(t *testing.T) {
	r := dist.NewRNG(210)
	inputs := dist.Values(r, dist.RandomComposition(r, 600, 12))
	ds := []int{1, 300, 599, 300, 42}
	got, rep, err := MultiSelect(inputs, ds, selOpts(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if want := kthLargestRef(inputs, d); got[i] != want {
			t.Errorf("ds[%d]=%d: got %d, want %d", i, d, got[i], want)
		}
	}
	// One run must be cheaper than the sum of the phases' engine overheads
	// is hard to assert directly; instead check the cost is bounded by
	// len(ds) independent selections.
	single, srep, err := Select(inputs, selOpts(4, 300))
	if err != nil {
		t.Fatal(err)
	}
	_ = single
	if rep.Stats.Cycles > int64(len(ds)+1)*srep.Stats.Cycles {
		t.Errorf("multi-select cycles %d exceed %d x single (%d)", rep.Stats.Cycles, len(ds)+1, srep.Stats.Cycles)
	}
}

func TestMultiSelectValidation(t *testing.T) {
	if _, _, err := MultiSelect([][]int64{{1}}, nil, selOpts(1, 0)); err == nil {
		t.Error("expected error for empty rank list")
	}
	if _, _, err := MultiSelect([][]int64{{1}}, []int{2}, selOpts(1, 0)); err == nil {
		t.Error("expected error for rank out of range")
	}
	if _, _, err := MultiSelect(nil, []int{1}, selOpts(1, 0)); err == nil {
		t.Error("expected error for no processors")
	}
}
