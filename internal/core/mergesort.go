package core

import (
	"mcbnet/internal/mcb"
	"mcbnet/internal/seq"
)

const (
	tagMergeElem  uint8 = 0x20 // element broadcast (head pop, replacement)
	tagMergeTop   uint8 = 0x21 // head's new top for re-insertion
	tagMergeRank  uint8 = 0x22 // P_b's (rank+1, pointer) with a pointer
	tagMergeRank0 uint8 = 0x23 // P_b's (rank+1) without a pointer
)

// mergeSortWhole is the single-channel Merge-Sort of Section 6.1. Each
// processor first sorts its own list in place; the processors then maintain
// a distributed linked list of their current top elements, ordered
// descending: every processor knows its own top, its rank in the list, and a
// pointer to the next smaller top. Each round moves the globally largest
// remaining element (the head's top) to its target processor and re-inserts
// the head's new top with a constant number of broadcasts; the target ships
// its smallest remaining input element to the head as a replacement, keeping
// every processor's storage at O(1) beyond its own n_i elements.
//
// Complexity: 4 cycles and at most 4 messages per output element, plus the
// O(p) list construction — O(n) cycles and messages total on one channel.
func mergeSortWhole(pr mcb.Node, mine []elem, rec *phaser) []elem {
	p, id := pr.P(), pr.ID()
	ni := len(mine)
	rec.mark("mergesort:prefix+localsort")
	prefix, n := prefixAndTotal(pr, ni)
	lo, hi := prefix-ni, prefix

	// Local sort, in place (the input slice is this processor's storage).
	in := append([]elem(nil), mine...)
	seq.Sort(in, func(a, b elem) bool { return a.greater(b) })
	out := make([]elem, ni)
	pr.AccountAux(int64(2*ni) + 8)
	if p == 1 {
		return in
	}

	// Linked-list state. A processor with no elements never joins the list
	// (rank 0) and only observes.
	inList := in // descending; inList[0] is my top
	rank := 0    // 1-based rank in the distributed list; 0 = not in list
	var ptr elem
	hasPtr := false

	// Initial construction: every processor broadcasts its top in id order
	// (silence for an empty processor); all listeners fold each top into
	// (rank, ptr) on the fly.
	rec.mark("mergesort:list-construction")
	var myTop elem
	if ni > 0 {
		myTop = inList[0]
		rank = 1
	}
	for i := 0; i < p; i++ {
		var msg mcb.Message
		var ok bool
		if i == id && ni > 0 {
			msg, ok = pr.WriteRead(0, myTop.msg(tagMergeElem), 0)
		} else {
			msg, ok = pr.Read(0)
		}
		if !ok {
			continue // an empty processor's slot
		}
		e := elemFromMsg(msg)
		if ni == 0 || e.same(myTop) {
			continue
		}
		if e.greater(myTop) {
			rank++
		} else if !hasPtr || e.greater(ptr) {
			ptr, hasPtr = e, true
		}
	}

	step := func(write bool, msg mcb.Message) (mcb.Message, bool) {
		if write {
			return pr.WriteRead(0, msg, 0)
		}
		return pr.Read(0)
	}

	rec.mark("mergesort:rounds")
	for r := 0; r < n; r++ {
		isHead := rank == 1
		isTarget := r >= lo && r < hi

		// Cycle 1: the head broadcasts its top element E; everyone
		// decrements their rank (removing the head); the target stores E.
		var headMsg mcb.Message
		if isHead {
			headMsg = inList[0].msg(tagMergeElem)
		}
		msg, ok := step(isHead, headMsg)
		if !ok {
			pr.Abortf("core: merge-sort round %d: no head", r)
		}
		e := elemFromMsg(msg)
		if isTarget {
			out[r-lo] = e
		}
		if rank >= 1 {
			rank--
		}
		if isHead {
			inList = inList[1:]
		}

		// Cycle 2: the target ships its smallest remaining input element to
		// the head as a replacement (silence if the target is the head, or
		// it has at most one input left — its top must stay valid).
		sendRepl := isTarget && !isHead && len(inList) >= 2
		var replMsg mcb.Message
		if sendRepl {
			replMsg = inList[len(inList)-1].msg(tagMergeElem)
		}
		msg, ok = step(sendRepl, replMsg)
		if sendRepl {
			inList = inList[:len(inList)-1]
		}
		if ok && isHead {
			inList = insertDesc(inList, elemFromMsg(msg))
		}

		// Cycle 3: the head broadcasts its new top T for re-insertion
		// (silence if its list is now empty — it leaves the linked list).
		sendTop := isHead && len(inList) > 0
		var topMsg mcb.Message
		if sendTop {
			topMsg = inList[0].msg(tagMergeTop)
		}
		msg, ok = step(sendTop, topMsg)
		inserting := ok
		var T elem
		if inserting {
			T = elemFromMsg(msg)
			if !isHead && rank >= 1 && T.greater(inList[0]) {
				// T will sit above me.
				rank++
			}
		}

		// Cycle 4: the unique P_b with top > T and pointer < T (or no
		// pointer) announces (rank_b + 1, its pointer); the head adopts them
		// and P_b repoints to T. Silence means T is the new maximum: the
		// head takes rank 1 and keeps its old pointer (the largest other
		// top).
		isPb := inserting && !isHead && rank >= 1 && inList[0].greater(T) &&
			(!hasPtr || T.greater(ptr))
		var pbMsg mcb.Message
		if isPb {
			tag := tagMergeRank0
			if hasPtr {
				tag = tagMergeRank
			}
			pbMsg = mcb.Msg(tag, int64(rank+1), ptr.V, ptr.T)
		}
		msg, ok = step(isPb, pbMsg)
		if isPb {
			ptr, hasPtr = T, true
		}
		if isHead && inserting {
			if ok {
				rank = int(msg.X)
				if msg.Tag == tagMergeRank {
					ptr, hasPtr = elem{V: msg.Y, T: msg.Z}, true
				} else {
					hasPtr = false
				}
			} else {
				rank = 1
				// Old pointer (the largest remaining other top) is kept.
			}
		}
	}
	return out
}

// insertDesc inserts e into a descending-sorted slice, keeping order.
func insertDesc(s []elem, e elem) []elem {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].greater(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, elem{})
	copy(s[lo+1:], s[lo:])
	s[lo] = e
	return s
}
