package core

import (
	"fmt"

	"mcbnet/internal/mcb"
)

// This file is the output-verification half of the verify-and-retry
// recovery layer. Under fault injection a run can terminate "successfully"
// with a silently wrong answer (e.g. an undetected payload corruption sent
// an element to the wrong processor). Verification is cheap relative to the
// distributed computation — O(n) sequential work — and turns a silent wrong
// answer into a typed *mcb.CorruptionError the retry loop can act on.

// SortVerifier checks a sort's outputs against its inputs. A nil verifier
// in SortOptions means the default VerifySort.
type SortVerifier func(inputs, outputs [][]int64, order Order) error

// SelectVerifier checks a selection result against the inputs it was drawn
// from. A nil verifier in SelectOptions means the default VerifySelect.
type SelectVerifier func(inputs [][]int64, d int, value int64) error

// VerifySort is the default sort verifier: outputs must preserve
// per-processor cardinalities, be globally ordered across the processor
// sequence, and be a multiset permutation of the inputs.
func VerifySort(inputs, outputs [][]int64, order Order) error {
	if len(outputs) != len(inputs) {
		return fmt.Errorf("got %d output lists for %d processors", len(outputs), len(inputs))
	}
	// ge reports a >= b in the output order's sense (descending: larger
	// elements come first).
	ge := func(a, b int64) bool {
		if order == Ascending {
			return a <= b
		}
		return a >= b
	}
	var prev int64
	havePrev := false
	for i, out := range outputs {
		if len(out) != len(inputs[i]) {
			return fmt.Errorf("processor %d holds %d elements, had %d (cardinality not preserved)", i, len(out), len(inputs[i]))
		}
		for j, v := range out {
			if havePrev && !ge(prev, v) {
				return fmt.Errorf("order violated at processor %d element %d: %d then %d", i, j, prev, v)
			}
			prev, havePrev = v, true
		}
	}
	counts := make(map[int64]int)
	for _, in := range inputs {
		for _, v := range in {
			counts[v]++
		}
	}
	for i, out := range outputs {
		for _, v := range out {
			counts[v]--
			if counts[v] < 0 {
				return fmt.Errorf("processor %d holds %d, which appears more often than in the input", i, v)
			}
		}
	}
	for v, c := range counts {
		if c != 0 {
			return fmt.Errorf("input element %d lost (%d occurrence(s) missing from the output)", v, c)
		}
	}
	return nil
}

// VerifySelect is the default selection verifier: it recounts the inputs and
// checks that value really has descending rank d — i.e. with g elements
// strictly greater and e copies of value present, g < d <= g+e.
func VerifySelect(inputs [][]int64, d int, value int64) error {
	var greater, equal int
	for _, in := range inputs {
		for _, v := range in {
			switch {
			case v > value:
				greater++
			case v == value:
				equal++
			}
		}
	}
	if equal == 0 {
		return fmt.Errorf("value %d does not occur in the input", value)
	}
	if !(greater < d && d <= greater+equal) {
		return fmt.Errorf("value %d spans descending ranks %d..%d, not rank %d", value, greater+1, greater+equal, d)
	}
	return nil
}

// corruptionError wraps a verification failure into the typed taxonomy.
func corruptionError(op string, err error) error {
	return &mcb.CorruptionError{Op: op, Detail: err.Error()}
}
