// Package shoutecho implements the Shout-Echo broadcast model of Santoro
// and Sidney ([Sant82, Sant83] in the paper) and the port of the paper's
// selection algorithm to it, which Section 9 reports improves the previous
// best Shout-Echo selection bound by a factor of O(log p) ([Marb85]).
//
// In the Shout-Echo model a basic communication activity (a "round")
// consists of one processor broadcasting a message (the shout) and receiving
// a reply from every other processor (the echoes). Unlike the MCB model,
// a round is a single indivisible activity involving all processors; the
// complexity measures are the number of rounds and the total number of
// messages (one shout plus p-1 echoes per round).
package shoutecho

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mcbnet/internal/mcb"
)

// Message reuses the MCB message format (a tag plus three words).
type Message = mcb.Message

// Config describes a Shout-Echo network.
type Config struct {
	// P is the number of processors.
	P int
	// MaxRounds aborts runaway computations; zero means no limit.
	MaxRounds int64
	// StallTimeout aborts when no round completes for this long (default
	// 30s).
	StallTimeout time.Duration
}

// Stats counts the model's costs.
type Stats struct {
	// Rounds is the number of shout-echo activities.
	Rounds int64
	// Messages counts one shout plus p-1 echoes per round.
	Messages int64
}

// Result is the outcome of a run.
type Result struct {
	Stats Stats
}

// ErrAborted is wrapped by all abort errors.
var ErrAborted = errors.New("shoutecho: run aborted")

type opKind uint8

const (
	opShout opKind = iota
	opEcho
	opExit
)

type roundOp struct {
	kind  opKind
	shout Message
	reply func(Message) Message
}

type roundResult struct {
	shout  Message   // for echoers: the shout heard
	echoes []Message // for the shouter: replies indexed by processor
}

// Proc is the per-processor handle. In every round each live processor must
// call exactly one of Shout or Echo; returning from the program leaves the
// protocol.
type Proc struct {
	id int
	e  *engine
}

// ID returns the processor index in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the number of processors.
func (p *Proc) P() int { return p.e.cfg.P }

// Shout broadcasts m and returns the echoes, indexed by processor id (the
// shouter's own slot is the zero Message).
func (p *Proc) Shout(m Message) []Message {
	r := p.e.step(p.id, roundOp{kind: opShout, shout: m})
	return r.echoes
}

// Echo participates in the round as a replier: reply is called with the
// shout and must return this processor's echo. Echo returns the shout heard.
func (p *Proc) Echo(reply func(shout Message) Message) Message {
	r := p.e.step(p.id, roundOp{kind: opEcho, reply: reply})
	return r.shout
}

// Abortf fails the whole computation.
func (p *Proc) Abortf(format string, args ...any) {
	err := fmt.Errorf("%w: processor %d: %s", ErrAborted, p.id, fmt.Sprintf(format, args...))
	p.e.abort(err)
	panic(seAbort{err})
}

type seAbort struct{ err error }

type generation struct{ ch chan struct{} }

type engine struct {
	cfg     Config
	slots   []roundOp
	results []roundResult
	live    []bool
	liveN   int

	arrived  int32
	expected int32
	mu       sync.Mutex // guards arrived (simplicity over throughput)
	gen      *generation

	stats    Stats
	rounds   int64
	failed   bool
	abortErr error
	aborted  chan struct{}
	abortOne sync.Once
	allDone  chan struct{}
}

func (e *engine) abort(err error) {
	e.mu.Lock()
	if e.abortErr == nil {
		e.abortErr = err
	}
	e.failed = true
	e.mu.Unlock()
	e.abortOne.Do(func() { close(e.aborted) })
}

func (e *engine) isFailed() (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failed, e.abortErr
}

func (e *engine) step(id int, op roundOp) roundResult {
	if failed, err := e.isFailed(); failed {
		panic(seAbort{err})
	}
	e.mu.Lock()
	g := e.gen
	e.slots[id] = op
	e.arrived++
	leader := e.arrived == e.expected
	e.mu.Unlock()
	if leader {
		e.resolve(g)
		if op.kind == opExit {
			return roundResult{}
		}
		if failed, err := e.isFailed(); failed {
			panic(seAbort{err})
		}
		return e.results[id]
	}
	if op.kind == opExit {
		return roundResult{}
	}
	select {
	case <-g.ch:
	case <-e.aborted:
		_, err := e.isFailed()
		panic(seAbort{err})
	}
	if failed, err := e.isFailed(); failed {
		panic(seAbort{err})
	}
	return e.results[id]
}

func (e *engine) resolve(g *generation) {
	p := e.cfg.P
	shouter := -1
	anyWork := false
	for id := 0; id < p; id++ {
		if !e.live[id] {
			continue
		}
		switch e.slots[id].kind {
		case opShout:
			if shouter >= 0 {
				e.abort(fmt.Errorf("%w: processors %d and %d shout in the same round", ErrAborted, shouter, id))
				close(g.ch)
				return
			}
			shouter = id
			anyWork = true
		case opEcho:
			anyWork = true
		}
	}
	if anyWork {
		if shouter < 0 {
			e.abort(fmt.Errorf("%w: round with echoes but no shouter", ErrAborted))
			close(g.ch)
			return
		}
		shout := e.slots[shouter].shout
		echoes := make([]Message, p)
		for id := 0; id < p; id++ {
			if !e.live[id] || id == shouter {
				continue
			}
			if e.slots[id].kind == opEcho {
				echoes[id] = e.slots[id].reply(shout)
			}
		}
		e.results[shouter] = roundResult{echoes: echoes}
		for id := 0; id < p; id++ {
			if e.live[id] && id != shouter && e.slots[id].kind == opEcho {
				e.results[id] = roundResult{shout: shout}
			}
		}
		e.stats.Rounds++
		e.stats.Messages += int64(e.liveN) // 1 shout + liveN-1 echoes
		e.rounds = e.stats.Rounds
	}
	for id := 0; id < p; id++ {
		if e.live[id] && e.slots[id].kind == opExit {
			e.live[id] = false
			e.liveN--
		}
	}
	if e.cfg.MaxRounds > 0 && e.stats.Rounds > e.cfg.MaxRounds {
		e.abort(fmt.Errorf("%w: round limit %d exceeded", ErrAborted, e.cfg.MaxRounds))
		close(g.ch)
		return
	}
	if e.liveN == 0 {
		close(e.allDone)
		close(g.ch)
		return
	}
	e.mu.Lock()
	e.arrived = 0
	e.expected = int32(e.liveN)
	e.gen = &generation{ch: make(chan struct{})}
	e.mu.Unlock()
	close(g.ch)
}

// Run executes one program per processor.
func Run(cfg Config, programs []func(*Proc)) (*Result, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("shoutecho: P must be >= 1, got %d", cfg.P)
	}
	if len(programs) != cfg.P {
		return nil, fmt.Errorf("shoutecho: %d programs for %d processors", len(programs), cfg.P)
	}
	e := &engine{
		cfg:     cfg,
		slots:   make([]roundOp, cfg.P),
		results: make([]roundResult, cfg.P),
		live:    make([]bool, cfg.P),
		aborted: make(chan struct{}),
		allDone: make(chan struct{}),
	}
	for i := range e.live {
		e.live[i] = true
	}
	e.liveN = cfg.P
	e.expected = int32(cfg.P)
	e.gen = &generation{ch: make(chan struct{})}

	var wg sync.WaitGroup
	for i := 0; i < cfg.P; i++ {
		pr := &Proc{id: i, e: e}
		prog := programs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				switch r := recover().(type) {
				case nil:
					pr.exit()
				case seAbort:
					// engine already failed
				default:
					e.abort(fmt.Errorf("%w: processor %d panicked: %v", ErrAborted, pr.id, r))
					pr.exit()
				}
			}()
			prog(pr)
		}()
	}

	stall := cfg.StallTimeout
	if stall == 0 {
		stall = 30 * time.Second
	}
	tick := time.NewTicker(stall)
	defer tick.Stop()
	last := int64(-1)
	for {
		select {
		case <-e.allDone:
			wg.Wait()
			if _, err := e.isFailed(); err != nil {
				return nil, err
			}
			return &Result{Stats: e.stats}, nil
		case <-e.aborted:
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
			}
			_, err := e.isFailed()
			return nil, err
		case <-tick.C:
			e.mu.Lock()
			cur := e.rounds
			e.mu.Unlock()
			if cur == last {
				e.abort(fmt.Errorf("%w: no round completed in %v", ErrAborted, stall))
			} else {
				last = cur
			}
		}
	}
}

// RunUniform runs the same program on every processor.
func RunUniform(cfg Config, program func(*Proc)) (*Result, error) {
	progs := make([]func(*Proc), cfg.P)
	for i := range progs {
		progs[i] = program
	}
	return Run(cfg, progs)
}

func (p *Proc) exit() {
	defer func() { _ = recover() }()
	p.e.step(p.id, roundOp{kind: opExit})
}
