package shoutecho

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"mcbnet/internal/dist"
	"mcbnet/internal/mcb"
	"mcbnet/internal/seq"
)

func cfg(p int) Config {
	return Config{P: p, StallTimeout: 10 * time.Second}
}

func TestShoutEchoRound(t *testing.T) {
	const p = 5
	got := make([][]Message, p)
	heard := make([]Message, p)
	prog := func(pr *Proc) {
		if pr.ID() == 2 {
			got[2] = pr.Shout(mcb.MsgX(1, 42))
			return
		}
		heard[pr.ID()] = pr.Echo(func(s Message) Message {
			return mcb.MsgX(2, s.X*10+int64(pr.ID()))
		})
	}
	res, err := RunUniform(cfg(p), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Stats.Rounds)
	}
	if res.Stats.Messages != p {
		t.Errorf("messages = %d, want %d (1 shout + %d echoes)", res.Stats.Messages, p, p-1)
	}
	for j := 0; j < p; j++ {
		if j == 2 {
			continue
		}
		if heard[j].X != 42 {
			t.Errorf("proc %d heard %v", j, heard[j])
		}
		if got[2][j].X != 420+int64(j) {
			t.Errorf("echo from %d = %v", j, got[2][j])
		}
	}
}

func TestTwoShoutersFail(t *testing.T) {
	prog := func(pr *Proc) {
		if pr.ID() < 2 {
			pr.Shout(mcb.MsgX(0, 0))
		} else {
			pr.Echo(func(Message) Message { return Message{} })
		}
	}
	if _, err := RunUniform(cfg(4), prog); !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
}

func TestEchoesWithoutShouterFail(t *testing.T) {
	prog := func(pr *Proc) {
		pr.Echo(func(Message) Message { return Message{} })
	}
	if _, err := RunUniform(cfg(3), prog); !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
}

func TestRoundLimit(t *testing.T) {
	c := cfg(2)
	c.MaxRounds = 5
	prog := func(pr *Proc) {
		for {
			if pr.ID() == 0 {
				pr.Shout(Message{})
			} else {
				pr.Echo(func(Message) Message { return Message{} })
			}
		}
	}
	if _, err := RunUniform(c, prog); !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
}

func TestProgramPanicReported(t *testing.T) {
	prog := func(pr *Proc) {
		if pr.ID() == 1 {
			panic("bug")
		}
		if pr.ID() == 0 {
			pr.Shout(Message{})
		} else {
			pr.Echo(func(Message) Message { return Message{} })
		}
	}
	if _, err := RunUniform(cfg(3), prog); !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
}

func TestMax(t *testing.T) {
	inputs := [][]int64{{3, 9, 1}, {12, 4}, {7}, {2, 11}}
	got, res, err := Max(inputs, cfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Errorf("max = %d, want 12", got)
	}
	if res.Stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Stats.Rounds)
	}
}

func kthLargestRef(inputs [][]int64, d int) int64 {
	flat := dist.Flatten(inputs)
	seq.SortInt64Desc(flat)
	return flat[d-1]
}

func TestSelectBasic(t *testing.T) {
	inputs := [][]int64{{9, 3}, {7}, {1, 5, 4}}
	for d := 1; d <= 6; d++ {
		got, _, err := Select(inputs, d, cfg(0))
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Errorf("d=%d: got %d, want %d", d, got, want)
		}
	}
}

func TestSelectConfigsAndRanks(t *testing.T) {
	r := dist.NewRNG(301)
	for _, c := range []struct{ n, p int }{{64, 4}, {500, 10}, {2048, 16}, {100, 100}} {
		card := dist.NearlyEven(c.n, c.p)
		inputs := dist.Values(r, card)
		for _, d := range []int{1, c.n / 3, (c.n + 1) / 2, c.n} {
			got, _, err := Select(inputs, d, cfg(0))
			if err != nil {
				t.Fatalf("n=%d p=%d d=%d: %v", c.n, c.p, d, err)
			}
			if want := kthLargestRef(inputs, d); got != want {
				t.Errorf("n=%d p=%d d=%d: got %d, want %d", c.n, c.p, d, got, want)
			}
		}
	}
}

func TestSelectDuplicates(t *testing.T) {
	r := dist.NewRNG(302)
	inputs := dist.ValuesWithDuplicates(r, dist.Geometric(300, 6))
	for _, d := range []int{1, 150, 300} {
		got, _, err := Select(inputs, d, cfg(0))
		if err != nil {
			t.Fatal(err)
		}
		if want := kthLargestRef(inputs, d); got != want {
			t.Errorf("d=%d: got %d, want %d", d, got, want)
		}
	}
}

func TestSelectRoundsLogarithmic(t *testing.T) {
	// [Marb85]: O(log n) rounds. Three rounds per phase, >= 1/4 purged per
	// phase: rounds <= 3*log_{4/3}(n) + 3.
	r := dist.NewRNG(303)
	for _, n := range []int{256, 4096, 65536} {
		inputs := dist.Values(r, dist.Even(n, 16))
		_, rep, err := Select(inputs, n/2, cfg(0))
		if err != nil {
			t.Fatal(err)
		}
		bound := int64(3*math.Log(float64(n))/math.Log(4.0/3.0)) + 6
		if rep.Stats.Rounds > bound {
			t.Errorf("n=%d: %d rounds > bound %d", n, rep.Stats.Rounds, bound)
		}
		// And a sanity lower bound: at least log2-ish phases.
		if rep.FilterPhases < 3 {
			t.Errorf("n=%d: only %d phases", n, rep.FilterPhases)
		}
	}
}

func TestSelectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := dist.NewRNG(seed)
		p := 2 + r.Intn(8)
		n := p + r.Intn(150)
		card := dist.RandomComposition(r, n, p)
		inputs := dist.Values(r, card)
		d := 1 + r.Intn(n)
		got, _, err := Select(inputs, d, cfg(0))
		if err != nil {
			return false
		}
		return got == kthLargestRef(inputs, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectValidation(t *testing.T) {
	if _, _, err := Select(nil, 1, cfg(0)); err == nil {
		t.Error("expected error for empty network")
	}
	if _, _, err := Select([][]int64{{1}}, 2, cfg(0)); err == nil {
		t.Error("expected error for rank out of range")
	}
	if _, _, err := Select([][]int64{{}, {}}, 1, cfg(0)); err == nil {
		t.Error("expected error for an entirely empty set")
	}
	// Empty processors are fine as long as the set is non-empty.
	if v, _, err := Select([][]int64{{5}, {}}, 1, cfg(0)); err != nil || v != 5 {
		t.Errorf("empty-processor select = %d, %v", v, err)
	}
}

func TestSelectMessagesPerRound(t *testing.T) {
	inputs := [][]int64{{5, 1}, {3, 9}, {2, 8}, {7, 4}}
	_, rep, err := Select(inputs, 4, cfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Messages != rep.Stats.Rounds*4 {
		t.Errorf("messages = %d, want rounds*p = %d", rep.Stats.Messages, rep.Stats.Rounds*4)
	}
}
