package shoutecho

import (
	"fmt"

	"mcbnet/internal/mcb"
	"mcbnet/internal/seq"
)

// This file ports the paper's Section 8 selection algorithm to the
// Shout-Echo model, the adaptation Section 9 reports as [Marb85]. The
// filtering idea is identical, but a shout-echo round gathers one value from
// every processor at once, so the coordinator (P_1) computes the weighted
// median of the local medians exactly — no distributed sort or Partial-Sums
// is needed — and each filtering phase costs a constant number of rounds.
// With at least a quarter of the candidates purged per phase, selection
// takes O(log n) rounds, an O(log p) improvement over the tournament-style
// approach of the earlier Shout-Echo literature.

const (
	tagQuery   uint8 = 0x30 // coordinator asks for (med, count)
	tagMed     uint8 = 0x31 // echo: X=med.V, Y=med.T, Z=count
	tagCount   uint8 = 0x32 // coordinator shouts med*; echo: X=count >= med*
	tagVerdict uint8 = 0x33 // coordinator shouts (case, mGE) to finish the phase
	tagDone    uint8 = 0x34 // coordinator shouts the selected value
)

// SelectReport carries the cost and diagnostics of a Shout-Echo selection.
type SelectReport struct {
	Stats        Stats
	FilterPhases int
}

// Select returns the element of descending rank d (1 = maximum) of the set
// distributed as inputs over a Shout-Echo network with p = len(inputs)
// processors. Processor 0 coordinates.
func Select(inputs [][]int64, d int, cfg Config) (int64, *SelectReport, error) {
	p := len(inputs)
	if p == 0 {
		return 0, nil, fmt.Errorf("shoutecho: no processors")
	}
	cfg.P = p
	n := 0
	for _, in := range inputs {
		n += len(in)
	}
	if n == 0 {
		return 0, nil, fmt.Errorf("shoutecho: the distributed set is empty")
	}
	if d < 1 || d > n {
		return 0, nil, fmt.Errorf("shoutecho: rank %d out of [1, %d]", d, n)
	}

	report := &SelectReport{}
	var result int64
	progs := make([]func(*Proc), p)
	for i := range progs {
		id := i
		in := inputs[i]
		progs[i] = func(pr *Proc) {
			v, phases := selectProgram(pr, id, in, d)
			if id == 0 {
				result = v
				report.FilterPhases = phases
			}
		}
	}
	res, err := Run(cfg, progs)
	if err != nil {
		return 0, nil, err
	}
	report.Stats = res.Stats
	return result, report, nil
}

// pair is a distinct element (value, tiebreak), the paper's lexicographic
// triple folded into two words.
type pair struct{ v, t int64 }

func (a pair) greater(b pair) bool {
	if a.v != b.v {
		return a.v > b.v
	}
	return a.t > b.t
}

func selectProgram(pr *Proc, id int, in []int64, d int) (int64, int) {
	// Candidates, kept sorted descending.
	cands := make([]pair, len(in))
	for j, v := range in {
		cands[j] = pair{v: v, t: int64(id)<<31 | int64(j)}
	}
	seq.Sort(cands, func(a, b pair) bool { return a.greater(b) })

	countGE := func(x pair) int {
		lo, hi := 0, len(cands)
		for lo < hi {
			mid := (lo + hi) / 2
			if x.greater(cands[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}

	phases := 0
	for {
		phases++
		// Round 1: coordinator collects (median, count) from everyone.
		var meds []mcb.Message
		var myMed mcb.Message
		if len(cands) > 0 {
			med := cands[(len(cands)+1)/2-1]
			myMed = mcb.Msg(tagMed, med.v, med.t, int64(len(cands)))
		} else {
			myMed = mcb.Msg(tagMed, -1<<63, -(int64(id) + 1), 0)
		}
		if id == 0 {
			meds = pr.Shout(mcb.MsgX(tagQuery, 0))
			meds[0] = myMed
		} else {
			pr.Echo(func(Message) Message { return myMed })
		}

		// Coordinator: weighted median of the medians.
		var medStar pair
		if id == 0 {
			type mc struct {
				med pair
				c   int64
			}
			list := make([]mc, 0, pr.P())
			total := int64(0)
			for _, m := range meds {
				list = append(list, mc{med: pair{v: m.X, t: m.Y}, c: m.Z})
				total += m.Z
			}
			seq.Sort(list, func(a, b mc) bool { return a.med.greater(b.med) })
			half := (total + 1) / 2
			acc := int64(0)
			for _, e := range list {
				acc += e.c
				if acc >= half {
					medStar = e.med
					break
				}
			}
		}

		// Round 2: coordinator shouts med*; echoes return local counts >= med*.
		var mGE int
		if id == 0 {
			echoes := pr.Shout(mcb.Msg(tagCount, medStar.v, medStar.t, 0))
			mGE = countGE(medStar)
			for j, m := range echoes {
				if j != 0 {
					mGE += int(m.X)
				}
			}
		} else {
			shout := pr.Echo(func(s Message) Message {
				medStar = pair{v: s.X, t: s.Y}
				return mcb.MsgX(tagCount, int64(countGE(pair{v: s.X, t: s.Y})))
			})
			medStar = pair{v: shout.X, t: shout.Y}
		}

		// Round 3: coordinator announces the verdict (everyone needs mGE and
		// the case to purge consistently); or the final answer.
		if id == 0 {
			verdict := int64(0) // 0: done, 1: keep >, 2: keep <
			switch {
			case mGE == d:
				verdict = 0
			case mGE > d:
				verdict = 1
			default:
				verdict = 2
			}
			pr.Shout(mcb.Msg(tagVerdict, verdict, int64(mGE), medStar.v))
			switch verdict {
			case 0:
				return medStar.v, phases
			case 1:
				keep := countGE(medStar)
				if keep > 0 && cands[keep-1] == medStar {
					keep--
				}
				cands = cands[:keep]
			case 2:
				cands = cands[countGE(medStar):]
				d -= mGE
			}
		} else {
			var verdict int64
			var mGE64 int64
			pr.Echo(func(s Message) Message {
				verdict, mGE64 = s.X, s.Y
				return mcb.MsgX(tagDone, 0)
			})
			switch verdict {
			case 0:
				return medStar.v, phases // medStar.v carried in the verdict too
			case 1:
				keep := countGE(medStar)
				if keep > 0 && cands[keep-1] == medStar {
					keep--
				}
				cands = cands[:keep]
			case 2:
				cands = cands[countGE(medStar):]
				d -= int(mGE64)
			}
		}
	}
}

// Max returns the maximum of the distributed set in two rounds: the
// coordinator collects local maxima, then announces the winner.
func Max(inputs [][]int64, cfg Config) (int64, *Result, error) {
	p := len(inputs)
	if p == 0 {
		return 0, nil, fmt.Errorf("shoutecho: no processors")
	}
	cfg.P = p
	var result int64
	progs := make([]func(*Proc), p)
	for i := range progs {
		id := i
		in := inputs[i]
		progs[i] = func(pr *Proc) {
			local := in[0]
			for _, v := range in[1:] {
				if v > local {
					local = v
				}
			}
			if id == 0 {
				echoes := pr.Shout(mcb.MsgX(tagQuery, 0))
				best := local
				for j, m := range echoes {
					if j != 0 && m.X > best {
						best = m.X
					}
				}
				pr.Shout(mcb.MsgX(tagDone, best))
				result = best
			} else {
				pr.Echo(func(Message) Message { return mcb.MsgX(tagMed, local) })
				pr.Echo(func(Message) Message { return mcb.MsgX(tagDone, 0) })
			}
		}
	}
	res, err := Run(cfg, progs)
	if err != nil {
		return 0, nil, err
	}
	return result, res, nil
}
