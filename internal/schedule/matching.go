package schedule

import "mcbnet/internal/matrix"

// RouteMatching builds a transformation schedule at column granularity in
// which every cycle is a perfect matching over the columns: each column
// sends at most one element and receives at most one element, and — crucial
// for the virtual-column mode of Section 6.1 — a column receives in a cycle
// if and only if it also sends in that cycle (intra-column moves count as
// silent self-loops). This is what allows a virtual processor to store the
// element received during a cycle over the one just sent, using O(1)
// auxiliary memory.
//
// The construction colors the m-regular column-to-column multigraph of the
// permutation (self-loops included) with exactly m colors; each color class
// is a perfect matching and becomes one cycle. Channels are assigned by
// source column, matching the paper's convention. Self-loop edges produce no
// Assign (no message is sent), so intra-column content simply stays put.
func RouteMatching(sh matrix.Shape, f matrix.Transform) *Schedule {
	n := sh.N()
	edges := make([]Edge, n)
	moves := make([]Move, n)
	for t := 0; t < n; t++ {
		d := f(sh, t)
		edges[t] = Edge{U: sh.Col(t), V: sh.Col(d)}
		moves[t] = Move{Src: t, Dst: d}
	}
	colors, numColors := ColorBipartite(edges, sh.K, sh.K)
	out := &Schedule{Cycles: make([][]Assign, numColors)}
	for i, c := range colors {
		if edges[i].U == edges[i].V {
			continue // self-loop: content stays, no message
		}
		out.Cycles[c] = append(out.Cycles[c], Assign{Src: moves[i].Src, Dst: moves[i].Dst, Ch: edges[i].U})
	}
	return out
}
