// Package schedule builds collision-free broadcast schedules for the
// transformation phases of the distributed Columnsort (Section 5.2 of the
// paper).
//
// A transformation phase must move every element of the matrix to a new
// position while respecting the MCB constraints: per cycle, each processor
// writes at most one channel, reads at most one channel, no two processors
// write the same channel, and at most k channels exist. The paper gives a
// closed-form schedule for the transpose and remarks that "similar schemes
// can be devised" for the other transformations. This package provides both:
//
//   - closed-form schedules for Transpose, Up-Shift and Down-Shift; and
//   - a general scheduler for any permutation, based on bipartite
//     edge coloring: the moves between owners form a bipartite multigraph
//     whose proper edge coloring with Delta colors (König's theorem) yields a
//     schedule of exactly max-degree cycles; color classes larger than k are
//     split to respect the channel budget.
//
// Schedules depend only on globally known quantities (shape, cardinalities),
// so every processor computes the identical schedule locally — no
// coordination messages are needed, exactly as the paper assumes.
package schedule

import (
	"fmt"

	"mcbnet/internal/matrix"
)

// Move is a single element relocation between abstract positions.
type Move struct {
	Src, Dst int
}

// Assign is a scheduled move: in its cycle, the owner of Src broadcasts on
// channel Ch and the owner of Dst reads channel Ch.
type Assign struct {
	Src, Dst, Ch int
}

// Schedule lists, for each cycle, the assignments executed in that cycle.
type Schedule struct {
	Cycles [][]Assign
}

// NumCycles returns the schedule length.
func (s *Schedule) NumCycles() int { return len(s.Cycles) }

// NumMoves returns the total number of scheduled moves.
func (s *Schedule) NumMoves() int {
	n := 0
	for _, c := range s.Cycles {
		n += len(c)
	}
	return n
}

// Validate checks the MCB constraints against owner maps: per cycle each
// owner sends at most once and receives at most once, no channel is written
// twice, channels are within [0, k), and no move is intra-owner (those must
// be performed locally, without a message).
func (s *Schedule) Validate(srcOwner, dstOwner func(pos int) int, k int) error {
	for cyc, assigns := range s.Cycles {
		usedCh := map[int]int{}
		sent := map[int]bool{}
		rcvd := map[int]bool{}
		for _, a := range assigns {
			if a.Ch < 0 || a.Ch >= k {
				return fmt.Errorf("schedule: cycle %d: channel %d out of range", cyc, a.Ch)
			}
			su, du := srcOwner(a.Src), dstOwner(a.Dst)
			if su == du {
				return fmt.Errorf("schedule: cycle %d: intra-owner move %d->%d (owner %d)", cyc, a.Src, a.Dst, su)
			}
			if prev, ok := usedCh[a.Ch]; ok {
				return fmt.Errorf("schedule: cycle %d: channel %d written by owners %d and %d (collision)", cyc, a.Ch, prev, su)
			}
			usedCh[a.Ch] = su
			if sent[su] {
				return fmt.Errorf("schedule: cycle %d: owner %d sends twice", cyc, su)
			}
			sent[su] = true
			if rcvd[du] {
				return fmt.Errorf("schedule: cycle %d: owner %d receives twice", cyc, du)
			}
			rcvd[du] = true
		}
	}
	return nil
}

// Route schedules the given moves (intra-owner moves are dropped — they are
// free local copies) on k channels. Owners are identified by srcOwner/
// dstOwner over positions. The schedule length is at most
// ceil(Delta * ceil(c/k)) where Delta is the maximum per-owner degree and c
// the largest color class; for a Delta-regular move set with at most k
// senders, the length is exactly Delta.
func Route(moves []Move, srcOwner, dstOwner func(pos int) int, k int) *Schedule {
	// Filter local moves and build the bipartite multigraph on owner ids.
	type edge struct {
		u, v int // src owner, dst owner
		mv   Move
	}
	var edges []edge
	maxOwner := -1
	for _, m := range moves {
		su, du := srcOwner(m.Src), dstOwner(m.Dst)
		if su > maxOwner {
			maxOwner = su
		}
		if du > maxOwner {
			maxOwner = du
		}
		if su == du {
			continue
		}
		edges = append(edges, edge{u: su, v: du, mv: m})
	}
	if len(edges) == 0 {
		return &Schedule{}
	}
	nOwners := maxOwner + 1
	es := make([]Edge, len(edges))
	for i, e := range edges {
		es[i] = Edge{U: e.u, V: e.v}
	}
	colors, numColors := ColorBipartite(es, nOwners, nOwners)
	// Group by color; split classes over k channels into sub-cycles.
	classes := make([][]int, numColors)
	for i, c := range colors {
		classes[c] = append(classes[c], i)
	}
	var out Schedule
	for _, class := range classes {
		for off := 0; off < len(class); off += k {
			end := off + k
			if end > len(class) {
				end = len(class)
			}
			cyc := make([]Assign, 0, end-off)
			for ch, ei := range class[off:end] {
				cyc = append(cyc, Assign{Src: edges[ei].mv.Src, Dst: edges[ei].mv.Dst, Ch: ch})
			}
			out.Cycles = append(out.Cycles, cyc)
		}
	}
	return &out
}

// ColumnOwner returns the owner map for column-granularity scheduling over
// shape sh: the owner of a linear position is its column.
func ColumnOwner(sh matrix.Shape) func(pos int) int {
	return func(pos int) int { return sh.Col(pos) }
}

// TransformMoves expands a matrix transform into explicit moves.
func TransformMoves(sh matrix.Shape, f matrix.Transform) []Move {
	out := make([]Move, sh.N())
	for t := 0; t < sh.N(); t++ {
		out[t] = Move{Src: t, Dst: f(sh, t)}
	}
	return out
}

// ForTransform builds a schedule for transform f at column granularity
// (processor i holds column i, channel i belongs to column i when possible).
// Known transforms use closed forms completing in the optimal number of
// cycles; others fall back to the general Route scheduler.
func ForTransform(sh matrix.Shape, kind TransformKind) *Schedule {
	switch kind {
	case KindTranspose:
		return TransposeClosed(sh)
	case KindUpShift:
		return UpShiftClosed(sh)
	case KindDownShift:
		return DownShiftClosed(sh)
	case KindUnDiagonalize:
		return RouteMatching(sh, matrix.UnDiagonalize)
	case KindUntranspose:
		return RouteMatching(sh, matrix.Untranspose)
	}
	panic("schedule: unknown transform kind")
}

// TransformKind names the Columnsort transformations for schedule selection.
type TransformKind uint8

const (
	KindTranspose TransformKind = iota
	KindUnDiagonalize
	KindUpShift
	KindDownShift
	KindUntranspose
)

// KindOf maps a pipeline phase transform name to its kind.
func KindOf(name string) (TransformKind, bool) {
	switch name {
	case "transpose":
		return KindTranspose, true
	case "un-diagonalize":
		return KindUnDiagonalize, true
	case "up-shift":
		return KindUpShift, true
	case "down-shift":
		return KindDownShift, true
	case "untranspose":
		return KindUntranspose, true
	}
	return 0, false
}
