package schedule

// Bipartite edge coloring. By König's edge-coloring theorem every bipartite
// multigraph can be properly edge-colored with Delta colors (Delta = maximum
// degree); for a Delta-regular graph each color class is then a perfect
// matching. The algorithm below is the classical alternating-path method:
// insert edges one at a time; if the first free color alpha at u differs
// from the first free color beta at v, flip the alpha/beta alternating path
// starting at v (which provably does not reach u), freeing alpha at both
// endpoints. Complexity O(E * L) where L is the flipped path length
// (bounded by the number of vertices).

// Edge is an edge of a bipartite multigraph between left vertex U and right
// vertex V.
type Edge struct {
	U, V int
}

// ColorBipartite returns a proper edge coloring of the bipartite multigraph
// using exactly Delta colors (numColors = Delta): colors[i] is the color of
// edges[i], and no two edges sharing an endpoint have the same color.
func ColorBipartite(edges []Edge, nU, nV int) (colors []int, numColors int) {
	if len(edges) == 0 {
		return nil, 0
	}
	degU := make([]int, nU)
	degV := make([]int, nV)
	for _, e := range edges {
		degU[e.U]++
		degV[e.V]++
	}
	delta := 0
	for _, d := range degU {
		if d > delta {
			delta = d
		}
	}
	for _, d := range degV {
		if d > delta {
			delta = d
		}
	}
	// slotU[u*delta+c] = edge index colored c at u, or -1. hintU[u] is a
	// lower bound on the smallest free color at u, making the free-color
	// scan amortized O(1): it only moves forward except when a flip frees a
	// smaller color, which resets it.
	slotU := newSlots(nU * delta)
	slotV := newSlots(nV * delta)
	hintU := make([]int32, nU)
	hintV := make([]int32, nV)
	colors = make([]int, len(edges))
	for i := range colors {
		colors[i] = -1
	}
	freeAt := func(slots []int32, hints []int32, vert int) int {
		base := vert * delta
		c := int(hints[vert])
		for ; c < delta; c++ {
			if slots[base+c] < 0 {
				break
			}
		}
		if c >= delta {
			panic("schedule: no free color (degree exceeds delta?)")
		}
		hints[vert] = int32(c)
		return c
	}
	freeColor := func(hints []int32, vert, c int) {
		if int32(c) < hints[vert] {
			hints[vert] = int32(c)
		}
	}
	var path []int32 // reused buffer of edge indices along the flip path
	for ei, e := range edges {
		alpha := freeAt(slotU, hintU, e.U)
		beta := freeAt(slotV, hintV, e.V)
		if alpha != beta {
			// Walk the alternating path from v: edges colored alpha, beta,
			// alpha, ... starting with the alpha edge at v.
			path = path[:0]
			onRight := true
			vert := e.V
			want := alpha
			for {
				var eid int32
				if onRight {
					eid = slotV[vert*delta+want]
				} else {
					eid = slotU[vert*delta+want]
				}
				if eid < 0 {
					break
				}
				path = append(path, eid)
				pe := edges[eid]
				if onRight {
					vert = pe.U
				} else {
					vert = pe.V
				}
				onRight = !onRight
				if want == alpha {
					want = beta
				} else {
					want = alpha
				}
			}
			// Flip colors along the path: clear all slots first, then re-add
			// with swapped colors (avoids transient conflicts).
			for _, eid := range path {
				pe := edges[eid]
				c := colors[eid]
				slotU[pe.U*delta+c] = -1
				slotV[pe.V*delta+c] = -1
				freeColor(hintU, pe.U, c)
				freeColor(hintV, pe.V, c)
			}
			for _, eid := range path {
				pe := edges[eid]
				c := alpha + beta - colors[eid] // swap alpha <-> beta
				colors[eid] = c
				slotU[pe.U*delta+c] = eid
				slotV[pe.V*delta+c] = eid
			}
		}
		colors[ei] = alpha
		slotU[e.U*delta+alpha] = int32(ei)
		slotV[e.V*delta+alpha] = int32(ei)
	}
	return colors, delta
}

func newSlots(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}
