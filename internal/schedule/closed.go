package schedule

import "mcbnet/internal/matrix"

// TransposeClosed is the paper's closed-form transpose schedule (Section
// 5.2): during cycle j, column i broadcasts the element in row (i+j) mod m on
// channel i, and column d reads channel (d-j) mod k. It completes in exactly
// m cycles with one message per column per cycle.
//
// Correctness: the element of column i at row r = (i+j) mod m has linear
// position t = i*m + r and destination t' = Transpose(t) in column t mod k =
// (i*m + r) mod k = r mod k = (i+j) mod k (k divides m). For fixed j the k
// senders hit k distinct destination columns, so every column receives
// exactly one element per cycle.
func TransposeClosed(sh matrix.Shape) *Schedule {
	m, k := sh.M, sh.K
	out := &Schedule{Cycles: make([][]Assign, m)}
	for j := 0; j < m; j++ {
		cyc := make([]Assign, 0, k)
		for i := 0; i < k; i++ {
			r := (i + j) % m
			src := sh.Pos(i, r)
			dst := matrix.Transpose(sh, src)
			if sh.Col(dst) == i {
				continue // intra-column move: local copy, no message
			}
			cyc = append(cyc, Assign{Src: src, Dst: dst, Ch: i})
		}
		out.Cycles[j] = cyc
	}
	return out
}

// UpShiftClosed schedules the Up-Shift: column i must send its last
// floor(m/2) elements to column (i+1) mod k (the rest move within the
// column, for free). During cycle j, column i broadcasts the element in row
// m - floor(m/2) + j on channel i; column i reads channel (i-1) mod k.
// floor(m/2) cycles, one message per column per cycle.
func UpShiftClosed(sh matrix.Shape) *Schedule {
	m, k := sh.M, sh.K
	s := m / 2
	out := &Schedule{Cycles: make([][]Assign, s)}
	for j := 0; j < s; j++ {
		cyc := make([]Assign, 0, k)
		for i := 0; i < k; i++ {
			src := sh.Pos(i, m-s+j)
			dst := matrix.UpShift(sh, src)
			if sh.Col(dst) == i {
				continue // k == 1
			}
			cyc = append(cyc, Assign{Src: src, Dst: dst, Ch: i})
		}
		out.Cycles[j] = cyc
	}
	return out
}

// DownShiftClosed schedules the Down-Shift: column i sends its first
// floor(m/2) elements to column (i-1) mod k. During cycle j, column i
// broadcasts the element in row j on channel i; column i reads channel
// (i+1) mod k.
func DownShiftClosed(sh matrix.Shape) *Schedule {
	m, k := sh.M, sh.K
	s := m / 2
	out := &Schedule{Cycles: make([][]Assign, s)}
	for j := 0; j < s; j++ {
		cyc := make([]Assign, 0, k)
		for i := 0; i < k; i++ {
			src := sh.Pos(i, j)
			dst := matrix.DownShift(sh, src)
			if sh.Col(dst) == i {
				continue
			}
			cyc = append(cyc, Assign{Src: src, Dst: dst, Ch: i})
		}
		out.Cycles[j] = cyc
	}
	return out
}
